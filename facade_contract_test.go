package rsugibbs

import (
	"context"
	"errors"
	"io"
	"testing"
)

// TestFacadeContract is the compile-time contract of the public façade:
// it references every exported type, constant, function variable and
// option, so renaming or dropping any of them breaks this test's build
// rather than a downstream user's. The runtime body is deliberately
// thin — behavior is covered by the per-subsystem tests; this file
// pins the surface.
func TestFacadeContract(t *testing.T) {
	// Types. A var of each aliased type proves the alias still exists
	// and still names a type.
	var (
		_ *Gray
		_ *LabelMap
		_ *VectorField
		_ *Scene
		_ *MotionScene
		_ *StereoScene
		_ *Rand
		_ *Model
		_ *Segmentation
		_ *Motion
		_ *Stereo
		_ *Restoration
		_ App
		_ *Solver
		_ Config
		_ *Result
		_ Backend
		_ CheckpointSpec
		_ *Snapshot
		_ SnapshotFingerprint
		_ ChainCheckpointPolicy
		_ FaultOptions
		_ FaultPolicy
		_ *FaultSchedule
		_ *FaultAudit
		_ FaultEvent
		_ *Unit
		_ UnitConfig
		_ IntensityMap
		_ SamplingMode
		_ *Circuit
		_ *Network
		_ Workload
		_ *GPU
		_ *Accelerator
		_ PerformanceReport
		_ *Prototype
		_ ChainOptions
		_ *ChainResult
		_ Neighborhood
		_ PipelineConfig
		_ PipelineStats
		_ *AgingCircuit
		_ Wearout
		_ *StagedAccelerator
		_ AccelConfig
		_ AccelStats
		_ SamplerBackend
		_ SamplerCapabilities
		_ SpikingSpec
		_ MeanFieldSpec
		_ Option
		_ Recorder
		_ *MetricsRegistry
		_ *MetricsSnapshot
		_ MetricsEvent
		_ *EventSink
	)

	// Backend and policy constants, sampling modes, neighborhoods.
	for _, b := range []Backend{SoftwareGibbs, SoftwareFirstToFire, Metropolis, RSU, PrototypeBackend} {
		_ = b
	}
	for _, p := range []FaultPolicy{FaultPolicyNone, FaultPolicyRemap, FaultPolicyResample, FaultPolicyQuarantine, FaultPolicyFallback} {
		_ = p
	}
	_, _ = Ideal, Physical
	_, _ = FirstOrder, SecondOrder

	// Function variables. Assigning to the blank identifier references
	// each without invoking it.
	_, _, _, _ = NewGray, NewLabelMap, ReadPGMFile, WritePGMFile
	_, _, _, _ = BlobScene, TwoRegionScene, MotionPair, StereoPair
	_ = NewRand
	_, _, _, _, _ = NewSegmentation, NewMotion, NewStereo, NewRestoration, KMeans1D
	_, _ = NewSolver, NewSolverOpts
	_, _, _ = Backends, ParseBackend, LookupBackend
	_, _, _ = WithBackendName, WithSpiking, WithMeanField
	_, _ = SaveSnapshot, LoadSnapshot
	_, _ = ParseFaults, ParseFaultPolicy
	_, _, _ = NewUnit, BuildUnit, BuildIntensityMap
	_, _ = DefaultCircuit, DefaultLadderCircuit
	_, _, _ = TitanX, DefaultAccelerator, Performance
	_, _, _ = SegmentationWorkload, MotionWorkload, StereoWorkload
	_, _ = RSUG1Budget45, RSUG1Budget15
	_ = NewPrototype
	_, _, _ = EffectiveSampleSize, IntegratedAutocorrTime, GelmanRubin
	_ = SimulatePipeline
	_ = NewAgingCircuit
	_ = DefaultStagedAccelerator
	_, _ = RunAccelerator, PaperAccelConfig
	_, _, _, _, _ = NewMetrics, NewEventSink, ServeMetrics, MetricsHandler, ValidateMetricsJSON

	// Typed errors: the short aliases must be the same sentinel values
	// as their long names, and each must survive errors.Is through a
	// wrap.
	pairs := []struct {
		name        string
		short, long error
	}{
		{"corrupt", ErrCorrupt, ErrSnapshotCorrupt},
		{"version", ErrVersion, ErrSnapshotVersion},
		{"mismatch", ErrMismatch, ErrSnapshotMismatch},
	}
	for _, p := range pairs {
		if p.short != p.long {
			t.Errorf("alias %s diverged from its long name", p.name)
		}
		if !errors.Is(io.EOF, io.EOF) || !errors.Is(p.short, p.long) {
			t.Errorf("errors.Is(%s) broken", p.name)
		}
	}
	if ErrInvalidConfig == nil {
		t.Error("ErrInvalidConfig is nil")
	}
}

// TestFacadeOptions drives NewSolverOpts with every option constructor
// and checks the resulting run behaves: options must land in the
// config (observable through Result), and invalid combinations must
// wrap ErrInvalidConfig exactly like a literal Config would.
func TestFacadeOptions(t *testing.T) {
	src := NewRand(1)
	scene := BlobScene(32, 32, 3, 6, src)
	app, err := NewSegmentation(scene.Image, scene.Means, 2, 12)
	if err != nil {
		t.Fatal(err)
	}

	reg := NewMetrics()
	solver, err := NewSolverOpts(app,
		WithBackend(RSU),
		WithRSUWidth(2),
		WithIterations(24),
		WithBurnIn(8),
		WithCompile(true),
		WithWorkers(2),
		WithSeed(7),
		WithAnneal(4, 0.9),
		WithRecorder(reg),
		WithCheckpoint(CheckpointSpec{Path: t.TempDir() + "/ck.snap", EverySweeps: 10}),
		WithFaults(FaultOptions{Schedule: "dead:unit=1,sweep=4", Seed: 3, Policy: FaultPolicyRemap}),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := solver.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 24 {
		t.Fatalf("WithIterations not applied: ran %d sweeps", res.Iterations)
	}
	if res.FaultAudit == nil {
		t.Fatal("WithFaults not applied: no audit on result")
	}
	if res.Metrics == nil {
		t.Fatal("WithRecorder not applied: no metrics snapshot on result")
	}
	if n := res.Metrics.Counter("gibbs.sweeps"); n != 24 {
		t.Fatalf("metrics snapshot counted %d sweeps, want 24", n)
	}

	// Later options must win.
	s2, err := NewSolverOpts(app, WithIterations(5), WithIterations(9), WithBurnIn(1))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s2.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r2.Iterations != 9 {
		t.Fatalf("later option did not win: %d iterations", r2.Iterations)
	}

	// Validation parity with literal configs.
	if _, err := NewSolverOpts(app, WithIterations(-1)); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("negative iterations: got %v, want ErrInvalidConfig", err)
	}
	if _, err := NewSolverOpts(app, WithFaults(FaultOptions{Schedule: "dead:unit=1,sweep=4"})); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("faults on software backend: got %v, want ErrInvalidConfig", err)
	}
}

// TestFacadeBackendRegistry pins the registry surface: every registered
// name round-trips through ParseBackend/String, resolves through
// LookupBackend, and is accepted by WithBackendName; unknown names are
// rejected wrapping ErrInvalidConfig at both parse and solve time.
func TestFacadeBackendRegistry(t *testing.T) {
	src := NewRand(1)
	scene := BlobScene(16, 16, 2, 6, src)
	app, err := NewSegmentation(scene.Image, scene.Means, 2, 12)
	if err != nil {
		t.Fatal(err)
	}

	names := Backends()
	if len(names) < 7 {
		t.Fatalf("registry lists %d backends, want >= 7: %v", len(names), names)
	}
	for _, name := range names {
		b, err := ParseBackend(name)
		if err != nil {
			t.Fatal(err)
		}
		if b.String() != name {
			t.Fatalf("ParseBackend(%q).String() = %q", name, b.String())
		}
		be, ok := LookupBackend(name)
		if !ok || be.Name() != name {
			t.Fatalf("LookupBackend(%q) failed", name)
		}
		if _, err := NewSolverOpts(app, WithBackendName(name), WithIterations(3), WithBurnIn(1)); err != nil {
			t.Fatalf("WithBackendName(%q) rejected: %v", name, err)
		}
	}
	// The compatibility constants resolve to their historical names.
	if SoftwareGibbs.String() != "software-gibbs" || RSU.String() != "rsu" || PrototypeBackend.String() != "prototype" {
		t.Fatal("compatibility constants renamed")
	}
	if _, err := ParseBackend("sram-sampler"); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("unknown parse: got %v, want ErrInvalidConfig", err)
	}
	if _, err := NewSolverOpts(app, WithBackendName("sram-sampler")); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("unknown backend name: got %v, want ErrInvalidConfig", err)
	}
	if _, ok := LookupBackend("sram-sampler"); ok {
		t.Fatal("unknown name resolved")
	}

	// The approximate-backend option constructors select their backend
	// and carry the knobs.
	s, err := NewSolverOpts(app, WithSpiking(SpikingSpec{Bits: 4}), WithIterations(6), WithBurnIn(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.SamplerName != "spiking-b4" {
		t.Fatalf("WithSpiking ran sampler %q", res.SamplerName)
	}
	s, err = NewSolverOpts(app, WithMeanField(MeanFieldSpec{}), WithIterations(6), WithBurnIn(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err = s.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.SamplerName != "meanfield" {
		t.Fatalf("WithMeanField ran sampler %q", res.SamplerName)
	}
}
