// Command obsvalidate schema-validates metrics snapshots written by
// the -metrics flag of the other commands (internal/obs.Snapshot
// JSON). It exits nonzero on the first invalid file — the CI obs-smoke
// job runs it over freshly produced snapshots so the exported schema
// cannot drift silently.
//
// Usage:
//
//	obsvalidate obs.json [more.json ...]
package main

import (
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: obsvalidate <snapshot.json> [...]")
		os.Exit(2)
	}
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "obsvalidate: %v\n", err)
			os.Exit(1)
		}
		if err := obs.ValidateSnapshotJSON(data); err != nil {
			fmt.Fprintf(os.Stderr, "obsvalidate: %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid (schema v%d)\n", path, obs.SchemaVersion)
	}
}
