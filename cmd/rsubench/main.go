// Command rsubench runs the fixed kernel-benchmark suite (exact-Gibbs
// sweep throughput across grid sizes, label counts and evaluation
// backends) and manages the committed BENCH_kernel.json artifact.
//
// Usage:
//
//	rsubench                                 # full suite, table on stdout
//	rsubench -json BENCH_kernel.json         # also write the JSON artifact
//	rsubench -baseline 127.8 -json ...       # record a pre-kernel same-machine reference
//	rsubench -quick                          # acceptance configuration only
//	rsubench -compare old.json new.json      # file vs file: fail on >threshold% ns/site regression
//	rsubench -quick -compare BENCH_kernel.json
//	                                         # CI gate: re-run the quick suite and check the
//	                                         # machine-portable invariants of the committed report
//	rsubench -threshold 5                    # regression tolerance in percent (default 5)
//	rsubench -quick -backend spiking         # run the suite on another registry backend
//
// The file-vs-file mode assumes both reports were measured on the same
// machine (absolute ns/site comparison, benchstat style). The CI gate
// mode deliberately checks only ratios and allocation counts, which
// transfer across machines.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/bench"
	"repro/internal/sampler"
)

func main() {
	jsonPath := flag.String("json", "", "write the machine-readable report to this file (e.g. BENCH_kernel.json)")
	quick := flag.Bool("quick", false, "run only the acceptance configuration (256x256, M=16)")
	compare := flag.Bool("compare", false, "compare mode: two file args = file vs file; one file arg = gate the current tree against it")
	threshold := flag.Float64("threshold", 5, "regression threshold in percent")
	baseline := flag.Float64("baseline", 0, "pre-kernel ns/site on the acceptance config (same machine), recorded in the report")
	backend := flag.String("backend", "", "sampler backend for the suite ("+strings.Join(sampler.Names(), " | ")+"; empty = software-gibbs)")
	flag.Parse()

	// The flag package stops at the first positional argument; accept
	// `rsubench -compare old.json new.json -threshold 5` by re-parsing
	// trailing flags interleaved with the report files.
	var files []string
	rest := flag.Args()
	for len(rest) > 0 {
		if strings.HasPrefix(rest[0], "-") {
			if err := flag.CommandLine.Parse(rest); err != nil {
				os.Exit(2)
			}
			rest = flag.Args()
			continue
		}
		files = append(files, rest[0])
		rest = rest[1:]
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, *jsonPath, *quick, *compare, *threshold, *baseline, *backend, files); err != nil {
		fmt.Fprintf(os.Stderr, "rsubench: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, jsonPath string, quick, compare bool, threshold, baseline float64, backend string, args []string) error {
	if !compare {
		if len(args) != 0 {
			return fmt.Errorf("unexpected arguments %v (did you mean -compare?)", args)
		}
		rep, err := bench.RunKernelSuite(ctx, quick, baseline, backend)
		if err != nil {
			return err
		}
		return bench.WriteKernelReport(os.Stdout, rep, jsonPath)
	}
	switch len(args) {
	case 2:
		ref, err := bench.LoadKernelReport(args[0])
		if err != nil {
			return err
		}
		cur, err := bench.LoadKernelReport(args[1])
		if err != nil {
			return err
		}
		if bad := bench.CompareKernelReports(ref, cur, threshold); len(bad) > 0 {
			for _, b := range bad {
				fmt.Fprintf(os.Stderr, "REGRESSION: %s\n", b)
			}
			return fmt.Errorf("%d regression(s) beyond %.1f%%", len(bad), threshold)
		}
		fmt.Printf("no regressions beyond %.1f%% (%s vs %s)\n", threshold, args[0], args[1])
		return nil
	case 1:
		ref, err := bench.LoadKernelReport(args[0])
		if err != nil {
			return err
		}
		return bench.GateKernelReport(ctx, os.Stdout, ref, threshold)
	default:
		return fmt.Errorf("-compare needs one (gate) or two (diff) report files, got %d args", len(args))
	}
}
