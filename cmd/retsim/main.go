// Command retsim samples time-to-fluorescence values from a simulated
// RET circuit and prints a histogram against the ideal exponential law —
// a direct view of the physical substrate the RSU-G builds on (§2.3).
//
// Usage:
//
//	retsim -code 15 -n 100000
//	retsim -bank binary -code 7
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"repro/internal/obs"
	"repro/internal/ret"
	"repro/internal/rng"
)

func main() {
	code := flag.Int("code", 15, "4-bit LED intensity code (0-15)")
	n := flag.Int("n", 50000, "number of TTF samples")
	bank := flag.String("bank", "ladder", "LED sizing: ladder | binary")
	bins := flag.Int("bins", 24, "histogram bins")
	seed := flag.Uint64("seed", 1, "random seed")
	metricsOut := flag.String("metrics", "", "write a metrics snapshot (TTF histogram, JSON) to this file")
	flag.Parse()

	if *code < 0 || *code > 15 {
		fmt.Fprintln(os.Stderr, "retsim: code must be 0-15")
		os.Exit(1)
	}
	src := rng.New(*seed)
	var circuit *ret.Circuit
	switch *bank {
	case "ladder":
		circuit = ret.DefaultLadderCircuit(src)
	case "binary":
		circuit = ret.DefaultCircuit(src)
	default:
		fmt.Fprintln(os.Stderr, "retsim: bank must be ladder or binary")
		os.Exit(1)
	}

	rate := circuit.EffectiveRate(uint8(*code))
	fmt.Printf("RET circuit (%s bank), code %d\n", *bank, *code)
	fmt.Printf("  effective rate: %.3g Hz", rate)
	if rate > 0 {
		fmt.Printf("  (mean TTF %.3g ns)", 1e9/rate)
	}
	fmt.Println()
	if rate == 0 {
		fmt.Println("  dark code: the circuit never fires")
		return
	}

	// rec is the interface view of reg: assigned only when non-nil so
	// the obs nil-guard helpers keep their fast path (a typed-nil
	// *obs.Registry inside the interface would dodge it).
	var reg *obs.Registry
	var rec obs.Recorder
	if *metricsOut != "" {
		reg = obs.New()
		rec = reg
	}

	window := 5 / rate // cover ~5 mean lifetimes
	xs := make([]float64, 0, *n)
	saturated := 0
	for i := 0; i < *n; i++ {
		t := circuit.SampleTTF(uint8(*code), window, src)
		if math.IsInf(t, 1) || t > window {
			saturated++
			obs.Add(rec, "retsim.saturated", 1)
			continue
		}
		xs = append(xs, t)
		// TTF in integer nanoseconds lands in the registry's power-of-4
		// bucket ladder, a coarse machine-readable mirror of the text
		// histogram printed below.
		obs.Observe(rec, "retsim.ttf_ns", t*1e9)
	}
	counts := rng.Histogram(xs, 0, window, *bins)
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	binW := window / float64(*bins)
	fmt.Printf("  %d samples, %d beyond window\n", len(xs), saturated)
	fmt.Println("  TTF histogram (observed # vs ideal exponential x):")
	for i, c := range counts {
		barLen := 0
		if maxC > 0 {
			barLen = c * 50 / maxC
		}
		lo := float64(i) * binW
		ideal := float64(len(xs)) * (math.Exp(-rate*lo) - math.Exp(-rate*(lo+binW))) /
			(1 - math.Exp(-rate*window))
		idealPos := int(ideal * 50 / float64(maxC))
		row := []byte(strings.Repeat("#", barLen) + strings.Repeat(" ", 52-barLen))
		if idealPos >= 0 && idealPos < len(row) {
			row[idealPos] = 'x'
		}
		fmt.Printf("  %6.2fns |%s| %d\n", lo*1e9, string(row), c)
	}
	s := rng.Summarize(xs)
	fmt.Printf("  sample mean %.3g ns (ideal %.3g ns), KS vs Exp: %.4f\n",
		s.Mean*1e9, 1e9/rate, rng.KSExponential(xs, rate))

	if reg != nil {
		obs.Add(rec, "retsim.samples", int64(len(xs)))
		obs.Gauge(rec, "retsim.mean_ttf_ns", s.Mean*1e9)
		if err := reg.Snapshot().WriteFile(*metricsOut); err != nil {
			fmt.Fprintf(os.Stderr, "retsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  metrics snapshot -> %s\n", *metricsOut)
	}
}
