// Command rsulint runs the project's static-analysis suite over the
// module: five analyzers (detrand, rngshare, bitwidth, floateq,
// deadassign) that mechanically enforce the reproduction's determinism,
// datapath bit-width and RNG-ownership invariants. It is stdlib-only:
// packages are parsed and type-checked from source, so it needs no
// pre-built export data and no external dependencies.
//
// Usage:
//
//	rsulint [-json] [-allow list] [packages]
//
// Packages default to ./... relative to the enclosing module. The
// allowlist exempts packages from analyzers; each comma-separated entry
// is "prefix" (skip every analyzer) or "prefix:name+name" (skip the
// named analyzers). The default exempts CLI entry points (repro/cmd,
// repro/examples) from detrand only — they may legitimately read the
// wall clock to print timings, but every other invariant still applies
// to them.
//
// Individual findings can be silenced in source with a trailing or
// immediately preceding comment:
//
//	//lint:ignore rsulint/<analyzer> reason
//
// Exit status: 0 clean, 1 findings reported, 2 load or usage failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/bitwidth"
	"repro/internal/analysis/deadassign"
	"repro/internal/analysis/detrand"
	"repro/internal/analysis/floateq"
	"repro/internal/analysis/rngshare"
)

var analyzers = []*analysis.Analyzer{
	bitwidth.Analyzer,
	deadassign.Analyzer,
	detrand.Analyzer,
	floateq.Analyzer,
	rngshare.Analyzer,
}

const defaultAllow = "repro/cmd:detrand,repro/examples:detrand"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("rsulint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	allowFlag := fs.String("allow", defaultAllow, "package allowlist: comma-separated prefix[:analyzer+analyzer] entries")
	list := fs.Bool("analyzers", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: rsulint [-json] [-allow list] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	allow, err := analysis.ParseAllowList(*allowFlag)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	paths, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	var pkgs []*analysis.Package
	loadFailed := false
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintln(stderr, err)
			loadFailed = true
			continue
		}
		pkgs = append(pkgs, pkg)
	}
	if loadFailed {
		return 2
	}

	findings := analysis.RunAll(pkgs, analyzers, allow)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "rsulint: %d finding(s) across %d package(s)\n", len(findings), len(pkgs))
		}
		return 1
	}
	return 0
}
