// Command rsulint runs the project's static-analysis suite over the
// module: nine analyzers that mechanically enforce the reproduction's
// invariants — determinism (detrand, rngshare), datapath bit-widths
// (bitwidth), float discipline (floateq), dead stores (deadassign),
// context-first cancellation flow (ctxflow), allocation-free hot
// kernels (hotalloc), checkpoint field balance (ckptfield) and error
// identity (errwrap). It is stdlib-only: packages are parsed and
// type-checked from source, so it needs no pre-built export data and no
// external dependencies.
//
// Usage:
//
//	rsulint [-json] [-fix] [-hot-escape] [-allow list] [packages]
//
// Packages default to ./... relative to the enclosing module. The
// allowlist exempts packages from analyzers; each comma-separated entry
// is "prefix" (skip every analyzer) or "prefix:name+name" (skip the
// named analyzers). The default exempts CLI entry points (repro/cmd,
// repro/examples) from detrand only — they may legitimately read the
// wall clock to print timings, but every other invariant still applies
// to them.
//
// -fix renders suggested rewrites as dry-run diffs on stdout; nothing
// is written back. -hot-escape recompiles the packages containing
// //rsulint:hot functions with -gcflags=-m in a throwaway build cache
// and reports compiler-proven heap escapes inside the hot ranges —
// exact where the AST mode approximates, at the cost of a fresh build.
//
// Individual findings can be silenced in source with a trailing or
// immediately preceding comment:
//
//	//lint:ignore rsulint/<analyzer> reason
//
// A comment that suppresses nothing is itself reported (analyzer
// "staleignore") so the escape hatches cannot outlive the code they
// excused.
//
// Exit status: 0 clean, 1 findings reported, 2 load or usage failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/bitwidth"
	"repro/internal/analysis/ckptfield"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/deadassign"
	"repro/internal/analysis/detrand"
	"repro/internal/analysis/errwrap"
	"repro/internal/analysis/floateq"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/rngshare"
)

var analyzers = []*analysis.Analyzer{
	bitwidth.Analyzer,
	ckptfield.Analyzer,
	ctxflow.Analyzer,
	deadassign.Analyzer,
	detrand.Analyzer,
	errwrap.Analyzer,
	floateq.Analyzer,
	hotalloc.Analyzer,
	rngshare.Analyzer,
}

const defaultAllow = "repro/cmd:detrand,repro/examples:detrand"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("rsulint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	fixOut := fs.Bool("fix", false, "render suggested fixes as dry-run diffs (no files are modified)")
	hotEscape := fs.Bool("hot-escape", false, "cross-check //rsulint:hot functions against compiler escape analysis (recompiles)")
	allowFlag := fs.String("allow", defaultAllow, "package allowlist: comma-separated prefix[:analyzer+analyzer] entries")
	list := fs.Bool("analyzers", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: rsulint [-json] [-fix] [-hot-escape] [-allow list] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	allow, err := analysis.ParseAllowList(*allowFlag)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	paths, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	var pkgs []*analysis.Package
	loadFailed := false
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintln(stderr, err)
			loadFailed = true
			continue
		}
		pkgs = append(pkgs, pkg)
	}
	if loadFailed {
		return 2
	}

	// Facts span every loaded package (requested plus dependencies) so
	// cross-package knowledge — deprecation marks, hot annotations —
	// resolves even when linting a subset.
	facts := analysis.NewFacts(loader.Packages())
	findings := analysis.RunAllOpts(pkgs, analyzers, allow, analysis.Options{
		Facts:       facts,
		ReportStale: true,
	})
	if *hotEscape {
		escapes, err := hotalloc.EscapeCheck(root, pkgs, facts)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		findings = append(findings, escapes...)
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
			if *fixOut && f.Fix != nil {
				printFixDiff(stdout, f)
			}
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "rsulint: %d finding(s) across %d package(s)\n", len(findings), len(pkgs))
		}
		return 1
	}
	return 0
}

// printFixDiff renders one suggested fix as a dry-run unified-style
// diff: the source lines spanning the replaced byte range, before and
// after. Nothing is written back — the diff is the deliverable.
func printFixDiff(out *os.File, f analysis.Finding) {
	data, err := os.ReadFile(f.File)
	if err != nil || f.Fix.Start > len(data) || f.Fix.End > len(data) || f.Fix.Start > f.Fix.End {
		return
	}
	// Widen [Start, End) to whole lines.
	lo := f.Fix.Start
	for lo > 0 && data[lo-1] != '\n' {
		lo--
	}
	hi := f.Fix.End
	for hi < len(data) && data[hi] != '\n' {
		hi++
	}
	oldBlock := string(data[lo:hi])
	newBlock := string(data[lo:f.Fix.Start]) + f.Fix.NewText + string(data[f.Fix.End:hi])
	fmt.Fprintf(out, "\t--- %s:%d\n", f.File, f.Line)
	for _, line := range splitBlock(oldBlock) {
		fmt.Fprintf(out, "\t- %s\n", line)
	}
	for _, line := range splitBlock(newBlock) {
		fmt.Fprintf(out, "\t+ %s\n", line)
	}
}

// splitBlock splits a diff block into lines, representing the empty
// block (a pure deletion) as no lines at all.
func splitBlock(s string) []string {
	s = strings.TrimSuffix(s, "\n")
	if strings.TrimSpace(s) == "" {
		return nil
	}
	return strings.Split(s, "\n")
}
