// Command paperbench regenerates every table and figure of the paper's
// evaluation section as text (plus PGM images for Figure 7).
//
// Usage:
//
//	paperbench                  # everything
//	paperbench -table 2         # one table (1-4)
//	paperbench -figure 8        # one figure (7 or 8)
//	paperbench -experiment xyz  # ratio | accelerator | fidelity | ablation | observed
//	paperbench -out DIR         # where Figure 7 PGMs are written
//	paperbench -experiment sweep -sweepjson BENCH_sweep.json
//	                            # sweep-engine throughput report
//	paperbench -experiment faults -faultsjson BENCH_faults.json
//	                            # fault-injection rate x policy sweep
//	paperbench -experiment backends -backendsjson BENCH_backends.json
//	                            # cross-backend accuracy/throughput/energy Pareto sweep
//	paperbench -experiment backends -backendscompare BENCH_backends.json
//	                            # CI gate: re-run the sweep, compare deterministic columns
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
)

func main() {
	table := flag.Int("table", 0, "regenerate one table (1-4)")
	figure := flag.Int("figure", 0, "regenerate one figure (7 or 8)")
	experiment := flag.String("experiment", "", "ratio | accelerator | fidelity | ablation | gpusim | sweep | faults | backends | checkpoint | observed")
	outDir := flag.String("out", ".", "directory for Figure 7 PGM output")
	csvDir := flag.String("csv", "", "also write CSV series (table2, figure8, ratio, size sweep) into this directory")
	sweepJSON := flag.String("sweepjson", "", "with -experiment sweep: also write the machine-readable report to this file (e.g. BENCH_sweep.json)")
	sweepBaseline := flag.Float64("sweepbaseline", 0, "with -sweepjson: measured seed-tree ns/site for the acceptance config, recorded in the report")
	faultsJSON := flag.String("faultsjson", "", "with -experiment faults: also write the machine-readable report to this file (e.g. BENCH_faults.json)")
	backendsJSON := flag.String("backendsjson", "", "with -experiment backends: also write the machine-readable report to this file (e.g. BENCH_backends.json)")
	backendsCompare := flag.String("backendscompare", "", "with -experiment backends: gate the sweep's deterministic columns against this committed report")
	metricsOut := flag.String("metrics", "", "write a metrics snapshot (JSON) to this file after the run")
	httpAddr := flag.String("http", "", "serve live /metrics, /debug/vars and /debug/pprof on this address")
	timeout := flag.Duration("timeout", 0, "abort the report after this wall time (0: none); sections stop at the next boundary")
	flag.Parse()

	// SIGINT/SIGTERM stop the report at the next section boundary (and
	// cancel in-flight context-aware experiments) so partially written
	// artifacts are flushed rather than torn. -timeout bounds the same
	// context, taking the identical graceful path.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var reg *obs.Registry
	if *metricsOut != "" || *httpAddr != "" {
		reg = obs.New()
	}
	if *httpAddr != "" {
		addr, shutdown, err := obs.Serve(*httpAddr, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = shutdown(sctx)
		}()
		fmt.Printf("observability endpoint on http://%s\n", addr)
	}

	w := os.Stdout
	run := func(name string, f func(io.Writer) error) {
		if err := ctx.Err(); err != nil {
			fmt.Fprintf(w, "\ninterrupted; skipping remaining sections\n")
			os.Exit(130)
		}
		fmt.Fprintf(w, "\n==== %s ====\n", name)
		endSection := func() {}
		if reg != nil {
			endSection = reg.Span("paperbench.section")
			reg.Add("paperbench.sections", 1)
			reg.Emit(obs.Event{Kind: "paperbench.section", Fields: map[string]any{"name": name}})
		}
		defer endSection()
		if err := f(w); err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				fmt.Fprintf(w, "\ninterrupted; skipping remaining sections\n")
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "paperbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	selected := *table != 0 || *figure != 0 || *experiment != ""

	if *table == 1 || !selected {
		run("Table 1", bench.Table1)
	}
	if *table == 2 || !selected {
		run("Table 2", bench.Table2)
	}
	if *table == 3 || !selected {
		run("Table 3", bench.Table3)
	}
	if *table == 4 || !selected {
		run("Table 4", bench.Table4)
	}
	if *figure == 7 || !selected {
		run("Figure 7", func(w io.Writer) error { return bench.Figure7(ctx, w, *outDir) })
	}
	if *figure == 8 || !selected {
		run("Figure 8", bench.Figure8)
	}
	if *experiment == "accelerator" || !selected {
		run("Accelerator analysis (8.2)", func(w io.Writer) error { return bench.Accelerator(ctx, w) })
	}
	if *experiment == "ratio" || !selected {
		run("Prototype ratio sweep (7)", bench.Ratio)
	}
	if *experiment == "fidelity" || !selected {
		run("Functional fidelity", func(w io.Writer) error { return bench.Fidelity(ctx, w) })
	}
	if *experiment == "ablation" || !selected {
		run("Design ablations", func(w io.Writer) error { return bench.Ablation(ctx, w) })
	}
	if *experiment == "gpusim" || !selected {
		run("Bottom-up GPU simulation", bench.GPUSim)
	}
	if *experiment == "faults" || !selected {
		run("Fault injection and degradation", func(w io.Writer) error {
			if *faultsJSON != "" {
				return bench.FaultsJSON(ctx, w, *faultsJSON)
			}
			return bench.Faults(ctx, w)
		})
	}
	// Host-speed measurements, not paper artifacts: only on request.
	if *experiment == "backends" {
		run("Cross-backend Pareto sweep", func(w io.Writer) error {
			if *backendsCompare != "" {
				return bench.BackendsCompare(ctx, w, *backendsCompare)
			}
			if *backendsJSON != "" {
				return bench.BackendsJSON(ctx, w, *backendsJSON)
			}
			return bench.Backends(ctx, w)
		})
	}
	if *experiment == "checkpoint" {
		run("Checkpoint overhead", func(w io.Writer) error {
			return bench.Checkpoint(ctx, w)
		})
	}
	if *experiment == "sweep" {
		run("Sweep engine throughput", func(w io.Writer) error {
			if *sweepJSON != "" {
				return bench.SweepJSON(ctx, w, *sweepJSON, *sweepBaseline)
			}
			return bench.Sweep(ctx, w)
		})
	}
	if *experiment == "observed" {
		run("Recorder overhead and determinism", func(w io.Writer) error {
			return bench.Observed(ctx, w, reg)
		})
	}
	if *csvDir != "" {
		if err := bench.WriteCSVSeries(*csvDir); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: csv: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "\nwrote CSV series to %s\n", *csvDir)
	}
	if *metricsOut != "" {
		if err := reg.Snapshot().WriteFile(*metricsOut); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: metrics: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "\nmetrics snapshot -> %s\n", *metricsOut)
	}
}
