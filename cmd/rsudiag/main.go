// Command rsudiag inspects an RSU-G design: the LED intensity ladder,
// the energy→intensity LUT and its compressed threshold form, the
// latency table across label counts and widths, the cycle-accurate
// pipeline simulation, and the wear-out lifetime estimate. With
// -faults it instead runs a small segmentation through the fault-
// injection subsystem and reports the online monitors' findings.
//
// Usage:
//
//	rsudiag                      # everything, default design
//	rsudiag -bank binary -t 12   # paper-literal LED sizing, temperature 12
//	rsudiag -faults "dead:unit=3,sweep=2;hot:rate=1e-3,storm=6" \
//	        -policy remap -faultlog audit.ndjson -metrics obs.json
//	                             # fault diagnosis + streamed event log
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/accel"
	"repro/internal/apps"
	"repro/internal/fault"
	"repro/internal/img"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/ret"
	"repro/internal/rng"
	"repro/internal/rsu"
)

func main() {
	bank := flag.String("bank", "ladder", "LED sizing: ladder | binary")
	temp := flag.Float64("t", 12, "LUT temperature (8-bit energy units per e-fold)")
	faults := flag.String("faults", "", "fault schedule DSL; runs a 32x32 segmentation diagnosis through the fault subsystem instead of the design report")
	policy := flag.String("policy", "remap", "with -faults: degradation policy (none | remap | resample | quarantine | fallback)")
	faultSeed := flag.Uint64("faultseed", 1, "with -faults: schedule expansion seed")
	faultLog := flag.String("faultlog", "", "with -faults: stream detection events and the final audit as NDJSON to this file (- for stdout)")
	metricsOut := flag.String("metrics", "", "with -faults: write a metrics snapshot (JSON) to this file after the diagnosis")
	flag.Parse()

	if *faults != "" {
		// SIGINT/SIGTERM cancel the diagnosis at the next sweep boundary;
		// the findings gathered so far are still printed and the event
		// log still flushed (no mid-write death).
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if err := faultDiag(ctx, *faults, *policy, *faultSeed, *faultLog, *metricsOut); err != nil {
			fmt.Fprintln(os.Stderr, "rsudiag:", err)
			os.Exit(1)
		}
		return
	}
	if *metricsOut != "" {
		fmt.Fprintln(os.Stderr, "rsudiag: -metrics needs -faults")
		os.Exit(2)
	}

	src := rng.New(1)
	var circuit *ret.Circuit
	switch *bank {
	case "ladder":
		circuit = ret.DefaultLadderCircuit(src)
	case "binary":
		circuit = ret.DefaultCircuit(src)
	default:
		fmt.Fprintln(os.Stderr, "rsudiag: bank must be ladder or binary")
		os.Exit(1)
	}

	unit, err := rsu.New(rsu.Config{M: 5, Width: 1, ClockHz: 1e9, Circuit: circuit})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rsudiag:", err)
		os.Exit(1)
	}

	fmt.Printf("== LED intensity ladder (%s) ==\n", *bank)
	levels := unit.Levels()
	maxLevel := 0.0
	for _, l := range levels {
		if l > maxLevel {
			maxLevel = l
		}
	}
	for c, l := range levels {
		bar := int(l / maxLevel * 40)
		fmt.Printf("  code %2d  %10.3g Hz  %s\n", c, l, stars(bar))
	}

	lut, err := rsu.BuildIntensityMap(levels, *temp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rsudiag:", err)
		os.Exit(1)
	}
	unit.SetMap(lut)

	fmt.Printf("\n== Intensity LUT (temperature %.1f) as energy runs ==\n", *temp)
	tm, err := rsu.CompressMap(lut)
	if err != nil {
		fmt.Printf("  (not threshold-compressible: %v)\n", err)
	} else {
		lo, hi := tm.Words()
		fmt.Printf("  map_lo=0x%016x map_hi=0x%016x\n", lo, hi)
		prev := -1
		for r := 0; r < 16; r++ {
			if int(tm.Starts[r]) == prev {
				continue
			}
			prev = int(tm.Starts[r])
			fmt.Printf("  E >= %3d -> code %2d (%.3g Hz)\n", tm.Starts[r], tm.Codes[r], levels[tm.Codes[r]])
		}
	}

	fmt.Printf("\n== Latency table (cycles per variable; closed form | pipeline sim) ==\n")
	fmt.Printf("  %6s %8s %8s %8s %8s\n", "M", "K=1", "K=4", "K=16", "K=64")
	for _, m := range []int{2, 5, 16, 49, 64} {
		fmt.Printf("  %6d", m)
		for _, k := range []int{1, 4, 16, 64} {
			u, err := rsu.New(rsu.Config{M: m, Width: k, ClockHz: 1e9, Circuit: circuit})
			if err != nil {
				fmt.Fprintln(os.Stderr, "rsudiag:", err)
				os.Exit(1)
			}
			stats, err := rsu.SimulatePipeline(rsu.PipelineConfig{M: m, Width: k, Replicas: 4}, 1)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rsudiag:", err)
				os.Exit(1)
			}
			fmt.Printf(" %3d|%-4d", u.EvalTiming().Cycles, stats.FirstLatency)
		}
		fmt.Println()
	}

	fmt.Printf("\n== Throughput (M=49, RSU-G1, 1000 variables) ==\n")
	for _, replicas := range []int{1, 2, 4} {
		stats, err := rsu.SimulatePipeline(rsu.PipelineConfig{M: 49, Width: 1, Replicas: replicas}, 1000)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rsudiag:", err)
			os.Exit(1)
		}
		fmt.Printf("  %d replicas: %.2f cycles/variable, %d stall cycles\n",
			replicas, stats.ThroughputCyclesPerVariable, stats.StallCycles)
	}

	fmt.Printf("\n== Power / area (15nm, Tables 3-4) ==\n")
	b := power.RSUG1Budget(power.N15)
	fmt.Printf("  %.2f mW, %.0f um^2 per RSU-G1\n", b.TotalPowerMW(), b.TotalAreaUM2())

	fmt.Printf("\n== Wear-out (mean 1e6 excitations/network, full-drive 4ns ops) ==\n")
	aging, err := ret.NewAgingCircuit(circuit, ret.Wearout{MeanExcitations: 1e6})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rsudiag:", err)
		os.Exit(1)
	}
	ops := aging.OperationsUntil(0.9, 15, 4e-9)
	fmt.Printf("  sampling operations to 10%% rate loss: %.3g\n", ops)
	fmt.Printf("  at 1 GHz issue: %.3g seconds of continuous operation\n", ops*4e-9)
}

// faultDiag runs a fixed 32x32 segmentation through accel.RunFaulty
// with the given schedule and policy and prints the monitors' findings.
// With logPath set, detection events stream as NDJSON lines while the
// run executes — serialized by the event sink's encoder lock, so W=N
// runs can no longer interleave partial lines — followed by a final
// fault.audit summary line. With metricsPath set, the recorder snapshot
// is written after the run.
func faultDiag(ctx context.Context, spec, policyName string, seed uint64, logPath, metricsPath string) error {
	p, err := fault.ParsePolicy(policyName)
	if err != nil {
		return err
	}
	scene := img.BlobScene(32, 32, 3, 6, rng.New(41))
	app, err := apps.NewSegmentation(scene.Image, scene.Means, 2, 12)
	if err != nil {
		return err
	}
	unit, err := apps.BuildUnit(app, nil, 1, rsu.Ideal)
	if err != nil {
		return err
	}
	cfg := accel.PaperConfig(5, 24, 7)

	var reg *obs.Registry
	var sink *obs.EventSink
	if logPath != "" || metricsPath != "" {
		reg = obs.New()
		// Assigned only when non-nil: a nil *obs.Registry inside the
		// interface would dodge the recorder's nil fast path.
		cfg.Recorder = reg
	}
	if logPath != "" {
		var lw io.Writer = os.Stdout
		if logPath != "-" {
			f, err := os.Create(logPath)
			if err != nil {
				return err
			}
			defer f.Close()
			lw = f
		}
		sink = obs.NewEventSink(lw)
		reg.StreamTo(sink)
	}

	_, mode, stats, fstats, err := accel.RunFaulty(ctx, app, unit, cfg, fault.Options{
		Schedule: spec, Seed: seed, Policy: p,
	})
	if err != nil {
		if fstats.Audit == nil || !(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			return err
		}
		fmt.Println("interrupted; reporting the sweeps that completed")
	}
	audit := fstats.Audit

	fmt.Printf("== Fault diagnosis (32x32 segmentation, %d iterations, policy %s) ==\n", cfg.Iterations, p)
	fmt.Printf("  schedule: %s (seed %d)\n", spec, seed)
	fmt.Printf("  mislabel rate %.3f | simulated %.3gs\n", mode.MislabelRate(scene.Truth), stats.Seconds)
	fmt.Printf("  sites: %d RSU, %d fallback, %d skipped\n",
		fstats.RSUSites, fstats.FallbackSites, fstats.SkippedSites)
	s := audit.Summary
	fmt.Printf("  audit: %d injected = %d detected + %d masked + %d late (+%d unaccounted); %d events, %d false alarms\n",
		s.Injected, s.Detected, s.Masked, s.Late, s.Unaccounted, s.Events, s.FalseAlarms)
	fmt.Printf("  degradation: %d resamples, %d rejects, %d remaps (%d spares), %d quarantined, %d fallback units, %d timer saturations\n",
		s.Resamples, s.Rejects, s.Remaps, s.SparesUsed, s.QuarantinedUnits, s.FallbackUnits, s.TimerSaturations)
	for _, e := range audit.Events {
		fmt.Printf("  event %3d  sweep %3d  unit %3d  replica %2d  %-9s measure %.3g threshold %.3g  %s\n",
			e.Seq, e.Sweep, e.Unit, e.Replica, e.Suspect, e.Measure, e.Threshold, e.Action)
	}

	if sink != nil {
		// Close the stream with one summary line so the log is
		// self-contained: detection events first, verdict last.
		reg.Emit(obs.Event{Kind: "fault.audit", Fields: map[string]any{
			"injected": s.Injected, "detected": s.Detected, "masked": s.Masked,
			"late": s.Late, "unaccounted": s.Unaccounted,
			"events": s.Events, "false_alarms": s.FalseAlarms,
			"resamples": s.Resamples, "rejects": s.Rejects,
			"remaps": s.Remaps, "spares_used": s.SparesUsed,
			"quarantined_units": s.QuarantinedUnits, "fallback_units": s.FallbackUnits,
			"timer_saturations": s.TimerSaturations,
			"policy":            p.String(), "schedule": spec, "seed": seed,
		}})
		if err := sink.Err(); err != nil {
			return fmt.Errorf("fault log: %w", err)
		}
		if logPath != "-" {
			fmt.Printf("  streamed %d event lines -> %s\n", sink.Count(), logPath)
		}
	}
	if metricsPath != "" {
		if err := reg.Snapshot().WriteFile(metricsPath); err != nil {
			return err
		}
		fmt.Printf("  metrics snapshot -> %s\n", metricsPath)
	}
	return nil
}

func stars(n int) string {
	s := make([]byte, n)
	for i := range s {
		s[i] = '#'
	}
	return string(s)
}
