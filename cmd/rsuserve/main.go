// Command rsuserve runs MRF inference as a service: a multi-tenant
// HTTP/JSON job API over the checkpoint-backed solver runtime in
// internal/serve.
//
// Usage:
//
//	rsuserve -state /var/lib/rsuserve -addr :8080
//	rsuserve -state DIR -queue 64 -shards 4 -tenants 'alice=5:10,bob=1:2'
//
// Submit a job and watch it:
//
//	curl -s -X POST -H 'X-Tenant: alice' -d '{"app":"segmentation"}' \
//	    http://localhost:8080/v1/jobs
//	curl -s http://localhost:8080/v1/jobs/alice-000000/events
//	curl -s http://localhost:8080/v1/jobs/alice-000000/labels > out.pgm
//
// SIGTERM/SIGINT drain gracefully: admission turns off (503), in-flight
// chains checkpoint at their next sweep boundary and park as preempted,
// and a restart with the same -state resumes them bit-exactly.
//
// Two-node failover (DESIGN.md §15): run a standby, point the primary
// at it, and a dead primary's jobs resume on the standby from their
// replicated snapshots:
//
//	rsuserve -state /var/lib/rsu-b -addr :8081 -node b -standby
//	rsuserve -state /var/lib/rsu-a -addr :8080 -node a -peer http://host-b:8081
//
// A planned handoff drains one job to the peer at its next sweep
// boundary:
//
//	curl -s -X POST -d '{"id":"alice-000000"}' http://localhost:8080/v1/admin/migrate
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/serve/backoff"
	"repro/internal/serve/migrate"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address for the job API and /metrics")
	stateDir := flag.String("state", "", "durable state directory (journal, checkpoints, outputs); required")
	queueDepth := flag.Int("queue", 64, "admission queue depth; submits past it are shed with 429")
	shards := flag.Int("shards", 2, "solver shard count (jobs running concurrently)")
	workerOverride := flag.Int("workers", 0, "override every job's solver worker count (0: honor the spec)")
	cacheSize := flag.Int("model-cache", 8, "compiled-model cache capacity (-1 disables)")
	ckptEvery := flag.Int("ckpt-every", 1, "checkpoint cadence in sweeps")
	retries := flag.Int("retries", 3, "max retry attempts for transient failures")
	backoffBase := flag.Duration("backoff-base", 100*time.Millisecond, "first retry delay")
	backoffCap := flag.Duration("backoff-cap", 2*time.Second, "retry delay ceiling")
	backoffSeed := flag.Uint64("backoff-seed", 1, "seed for retry jitter (separate from all chain seeds)")
	tenantsFlag := flag.String("tenants", "", "per-tenant limits: name=rate:inflight[,name=rate:inflight...] (rate req/s, 0 unlimited)")
	defaultRate := flag.Float64("default-rate", 0, "default tenant rate limit (req/s, 0 unlimited)")
	defaultInflight := flag.Int("default-inflight", 0, "default tenant in-flight quota (0 unlimited)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight chains to checkpoint on shutdown")
	peer := flag.String("peer", "", "standby base URL (http://host:port); makes this node a replicating primary")
	standby := flag.Bool("standby", false, "run as the replication receiver and failover target")
	nodeID := flag.String("node", "", "stable node identity for the lease ledger (default: absolute -state path)")
	leaseTTL := flag.Duration("lease-ttl", 3*time.Second, "ownership lease duration (heartbeat cadence derives from it)")
	heartbeatEvery := flag.Duration("heartbeat-every", 0, "heartbeat/liveness-check cadence (default lease-ttl/3)")
	missLimit := flag.Int("miss-limit", 3, "consecutive missed heartbeats before the standby takes over")
	flag.Parse()

	if *stateDir == "" {
		fmt.Fprintln(os.Stderr, "rsuserve: -state is required")
		os.Exit(2)
	}
	tenants, err := parseTenants(*tenantsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rsuserve: %v\n", err)
		os.Exit(2)
	}
	var migrateCfg *migrate.Config
	if *peer != "" || *standby {
		node := *nodeID
		if node == "" {
			if abs, aerr := filepath.Abs(*stateDir); aerr == nil {
				node = abs
			} else {
				node = *stateDir
			}
		}
		migrateCfg = &migrate.Config{
			NodeID:         node,
			Peer:           *peer,
			Standby:        *standby,
			LeaseTTL:       *leaseTTL,
			HeartbeatEvery: *heartbeatEvery,
			MissLimit:      *missLimit,
		}
	}

	cfg := serve.Config{
		StateDir:              *stateDir,
		QueueDepth:            *queueDepth,
		Shards:                *shards,
		WorkerOverride:        *workerOverride,
		ModelCacheSize:        *cacheSize,
		CheckpointEverySweeps: *ckptEvery,
		Retry: backoff.Policy{
			Base:       *backoffBase,
			Cap:        *backoffCap,
			Factor:     2,
			Jitter:     0.5,
			MaxRetries: *retries,
		},
		BackoffSeed: *backoffSeed,
		Tenants:     tenants,
		DefaultLimits: serve.TenantLimits{
			RatePerSec:  *defaultRate,
			MaxInFlight: *defaultInflight,
		},
		Recorder: obs.New(),
		Now:      time.Now,
		Migrate:  migrateCfg,
	}

	if err := run(cfg, *addr, *drainTimeout); err != nil {
		fmt.Fprintf(os.Stderr, "rsuserve: %v\n", err)
		os.Exit(1)
	}
}

func run(cfg serve.Config, addr string, drainTimeout time.Duration) error {
	s, err := serve.New(cfg)
	if err != nil {
		return err
	}

	// The run context dies on the second signal (hard stop); the first
	// signal triggers the graceful drain below.
	runCtx, cancelRun := context.WithCancel(context.Background())
	defer cancelRun()
	if err := s.Start(runCtx); err != nil {
		return err
	}

	bound, shutdownHTTP, err := obs.ServeHandler(addr, s.Handler())
	if err != nil {
		return err
	}
	fmt.Printf("rsuserve: serving on http://%s (state %s)\n", bound, cfg.StateDir)

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	sig := <-sigc
	fmt.Printf("rsuserve: %v: draining (in-flight chains checkpoint at their next sweep boundary)\n", sig)

	// Escalation: a second signal aborts the drain wait.
	drainCtx, cancelDrain := context.WithTimeout(runCtx, drainTimeout)
	defer cancelDrain()
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "rsuserve: second signal: hard stop")
		cancelRun()
	}()

	drainErr := s.Drain(drainCtx)
	httpErr := shutdownHTTP(drainCtx)
	if drainErr != nil {
		return drainErr
	}
	if httpErr != nil {
		return httpErr
	}
	fmt.Println("rsuserve: drained; restart with the same -state to resume parked jobs")
	return nil
}

// parseTenants parses "name=rate:inflight,..." into tenant limits.
func parseTenants(s string) (map[string]serve.TenantLimits, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]serve.TenantLimits{}
	for _, part := range strings.Split(s, ",") {
		name, spec, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("tenant %q: want name=rate:inflight", part)
		}
		rateStr, inflightStr, ok := strings.Cut(spec, ":")
		if !ok {
			return nil, fmt.Errorf("tenant %q: want name=rate:inflight", part)
		}
		rate, err := strconv.ParseFloat(rateStr, 64)
		if err != nil {
			return nil, fmt.Errorf("tenant %q: rate: %w", name, err)
		}
		inflight, err := strconv.Atoi(inflightStr)
		if err != nil {
			return nil, fmt.Errorf("tenant %q: inflight: %w", name, err)
		}
		out[name] = serve.TenantLimits{RatePerSec: rate, MaxInFlight: inflight}
	}
	return out, nil
}
