// Command mrfdemo runs one of the paper's vision applications end to
// end: it reads (or synthesizes) input images, runs MRF-MCMC inference
// on the selected backend, writes the result as PGM, and prints quality
// and modeled-performance summaries.
//
// Usage:
//
//	mrfdemo -app segmentation [-in image.pgm] [-labels 5]
//	mrfdemo -app motion
//	mrfdemo -app stereo
//	mrfdemo -app restoration -order 2
//	mrfdemo -app segmentation -backend rsu -width 4 -iters 200
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/img"
	"repro/internal/mrf"
	"repro/internal/obs"
	"repro/internal/rng"
)

func main() {
	appName := flag.String("app", "segmentation", "segmentation | motion | stereo | restoration")
	backend := flag.String("backend", "rsu", "sampling backend: "+strings.Join(core.Backends(), " | "))
	width := flag.Int("width", 1, "RSU-G width K")
	iters := flag.Int("iters", 100, "MCMC iterations")
	burn := flag.Int("burn", 30, "burn-in iterations")
	inPath := flag.String("in", "", "input PGM (synthesized if empty)")
	labels := flag.Int("labels", 5, "segmentation label count")
	size := flag.Int("size", 128, "synthetic scene size")
	outDir := flag.String("out", ".", "output directory")
	seed := flag.Uint64("seed", 1, "random seed")
	order := flag.Int("order", 1, "restoration neighborhood order (1 or 2)")
	ckptPath := flag.String("checkpoint", "", "checkpoint file (enables periodic snapshots; empty disables)")
	ckptEvery := flag.Int("ckpt-every", 10, "checkpoint every N sweeps (with -checkpoint)")
	ckptInterval := flag.Duration("ckpt-interval", 0, "also checkpoint every D wall time (with -checkpoint)")
	resume := flag.Bool("resume", false, "resume from -checkpoint if it exists")
	metricsOut := flag.String("metrics", "", "write a metrics snapshot (JSON) to this file after the run")
	httpAddr := flag.String("http", "", "serve live /metrics, /debug/vars and /debug/pprof on this address")
	timeout := flag.Duration("timeout", 0, "abort the run after this wall time (0: none); the chain stops at a sweep boundary and partial outputs are flushed")
	flag.Parse()

	// SIGINT/SIGTERM cancel the run context: the chain stops at the next
	// sweep boundary, a final checkpoint is written (when -checkpoint is
	// set), and partial outputs are flushed instead of dying mid-write.
	// -timeout bounds the same context, so expiry takes the same graceful
	// path as an interrupt.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var ckpt *core.CheckpointSpec
	if *ckptPath != "" {
		ckpt = &core.CheckpointSpec{
			Path:        *ckptPath,
			EverySweeps: *ckptEvery,
			Every:       *ckptInterval,
			Now:         time.Now,
			Resume:      *resume,
		}
	} else if *resume {
		fmt.Fprintln(os.Stderr, "mrfdemo: -resume needs -checkpoint")
		os.Exit(2)
	}

	var rec *obs.Registry
	if *metricsOut != "" || *httpAddr != "" {
		rec = obs.New()
	}
	if *httpAddr != "" {
		addr, shutdown, err := obs.Serve(*httpAddr, rec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mrfdemo: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = shutdown(sctx)
		}()
		fmt.Printf("observability endpoint on http://%s\n", addr)
	}

	if err := run(ctx, *appName, *backend, *width, *iters, *burn, *inPath, *labels, *size, *outDir, *seed, *order, ckpt, rec); err != nil {
		fmt.Fprintf(os.Stderr, "mrfdemo: %v\n", err)
		os.Exit(1)
	}
	if *metricsOut != "" {
		if err := rec.Snapshot().WriteFile(*metricsOut); err != nil {
			fmt.Fprintf(os.Stderr, "mrfdemo: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("metrics snapshot -> %s\n", *metricsOut)
	}
}

func run(ctx context.Context, appName, backendName string, width, iters, burn int, inPath string, labels, size int, outDir string, seed uint64, order int, ckpt *core.CheckpointSpec, rec *obs.Registry) error {
	// Legacy spellings predating the registry names stay accepted.
	switch backendName {
	case "software":
		backendName = "software-gibbs"
	case "first-to-fire":
		backendName = "software-first-to-fire"
	}
	if _, err := core.ParseBackend(backendName); err != nil {
		return err
	}
	cfg := core.Config{
		BackendName: backendName, RSUWidth: width,
		Iterations: iters, BurnIn: burn, Seed: seed,
		Checkpoint: ckpt,
	}
	if rec != nil {
		// Assigned only when non-nil: a nil *obs.Registry inside the
		// interface would dodge the recorder's nil fast path.
		cfg.Recorder = rec
	}
	src := rng.New(seed)

	switch appName {
	case "segmentation":
		var image *img.Gray
		var truth *img.LabelMap
		if inPath != "" {
			var err error
			image, err = img.ReadPGMFile(inPath)
			if err != nil {
				return err
			}
		} else {
			scene := img.BlobScene(size, size, labels, 8, src)
			image, truth = scene.Image, scene.Truth
			if err := img.WritePGMFile(filepath.Join(outDir, "segmentation_input.pgm"), image); err != nil {
				return err
			}
		}
		means := apps.KMeans1D(image, labels, 20)
		app, err := apps.NewSegmentation(image, means, 2, 12)
		if err != nil {
			return err
		}
		res, err := solve(ctx, app, cfg)
		if err != nil {
			return err
		}
		palette := make([]uint8, labels)
		for i, m := range app.Means6 {
			palette[i] = m << 2
		}
		out := filepath.Join(outDir, "segmentation_labels.pgm")
		if err := img.WritePGMFile(out, res.MAP.Render(palette)); err != nil {
			return err
		}
		if err := img.WritePGMFile(filepath.Join(outDir, "segmentation_confidence.pgm"), res.Confidence); err != nil {
			return err
		}
		fmt.Printf("segmentation: %dx%d, M=%d, backend=%s -> %s\n", image.W, image.H, labels, backendName, out)
		if truth != nil {
			fmt.Printf("  mislabel rate vs ground truth: %.4f\n", res.MAP.MislabelRate(truth))
		}
		fmt.Printf("  final energy: %s\n", finalEnergy(res.EnergyTrace))
		return nil

	case "motion":
		scene := img.MotionPair(size, size, 2, -1, 3, 2, src)
		app, err := apps.NewMotionEstimation(scene.Frame1, scene.Frame2, 3, 1, 8)
		if err != nil {
			return err
		}
		res, err := solve(ctx, app, cfg)
		if err != nil {
			return err
		}
		field := app.Field(res.MAP)
		// Render the field with the optical-flow color wheel.
		out := filepath.Join(outDir, "motion_flow.ppm")
		if err := img.WritePPMFile(out, img.FlowToColor(field, 3)); err != nil {
			return err
		}
		fmt.Printf("motion: %dx%d, M=49, backend=%s -> %s\n", size, size, backendName, out)
		fmt.Printf("  average endpoint error: %.4f\n", field.AvgEndpointError(scene.Truth))
		return nil

	case "stereo":
		scene := img.StereoPair(size, size, 5, 3, 2, src)
		app, err := apps.NewStereoVision(scene.Left, scene.Right, 5, 1, 8)
		if err != nil {
			return err
		}
		res, err := solve(ctx, app, cfg)
		if err != nil {
			return err
		}
		palette := []uint8{0, 60, 120, 180, 240}
		out := filepath.Join(outDir, "stereo_disparity.pgm")
		if err := img.WritePGMFile(out, res.MAP.Render(palette)); err != nil {
			return err
		}
		fmt.Printf("stereo: %dx%d, M=5, backend=%s -> %s\n", size, size, backendName, out)
		fmt.Printf("  mislabel rate vs ground truth: %.4f\n", res.MAP.MislabelRate(scene.Truth))
		return nil

	case "restoration":
		var observed *img.Gray
		if inPath != "" {
			var err error
			observed, err = img.ReadPGMFile(inPath)
			if err != nil {
				return err
			}
		} else {
			scene := img.BlobScene(size, size, 4, 15, src)
			observed = scene.Image
		}
		hood := mrf.FirstOrder
		lambdaDiag := 0.0
		if order == 2 {
			hood = mrf.SecondOrder
			lambdaDiag = 1
		}
		app, err := apps.NewRestoration(observed, 4, 2, lambdaDiag, 12, hood)
		if err != nil {
			return err
		}
		res, err := solve(ctx, app, cfg)
		if err != nil {
			return err
		}
		out := filepath.Join(outDir, "restoration_out.pgm")
		if err := img.WritePGMFile(out, app.Render(res.MAP)); err != nil {
			return err
		}
		fmt.Printf("restoration: %dx%d, %v prior, backend=%s -> %s\n",
			observed.W, observed.H, hood, backendName, out)
		fmt.Printf("  final energy: %s\n", finalEnergy(res.EnergyTrace))
		return nil
	}
	return fmt.Errorf("unknown app %q", appName)
}

func solve(ctx context.Context, app apps.App, cfg core.Config) (*core.Result, error) {
	s, err := core.NewSolver(app, cfg)
	if err != nil {
		return nil, err
	}
	res, err := s.Solve(ctx)
	if err != nil {
		if res != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			// Graceful interruption: the final checkpoint (if armed) is
			// already durable; flush what the chain produced so far.
			fmt.Printf("  interrupted after %d/%d sweeps; flushing partial output\n",
				res.Iterations, cfg.Iterations)
			return res, nil
		}
		return nil, err
	}
	return res, nil
}

// finalEnergy formats the last energy-trace entry ("n/a" when the run
// was interrupted before the first sweep completed).
func finalEnergy(trace []float64) string {
	if len(trace) == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.0f", trace[len(trace)-1])
}
