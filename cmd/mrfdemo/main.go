// Command mrfdemo runs one of the paper's vision applications end to
// end: it reads (or synthesizes) input images, runs MRF-MCMC inference
// on the selected backend, writes the result as PGM, and prints quality
// and modeled-performance summaries.
//
// Usage:
//
//	mrfdemo -app segmentation [-in image.pgm] [-labels 5]
//	mrfdemo -app motion
//	mrfdemo -app stereo
//	mrfdemo -app restoration -order 2
//	mrfdemo -app segmentation -backend rsu -width 4 -iters 200
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/img"
	"repro/internal/mrf"
	"repro/internal/rng"
)

func main() {
	appName := flag.String("app", "segmentation", "segmentation | motion | stereo | restoration")
	backend := flag.String("backend", "rsu", "software | first-to-fire | metropolis | rsu")
	width := flag.Int("width", 1, "RSU-G width K")
	iters := flag.Int("iters", 100, "MCMC iterations")
	burn := flag.Int("burn", 30, "burn-in iterations")
	inPath := flag.String("in", "", "input PGM (synthesized if empty)")
	labels := flag.Int("labels", 5, "segmentation label count")
	size := flag.Int("size", 128, "synthetic scene size")
	outDir := flag.String("out", ".", "output directory")
	seed := flag.Uint64("seed", 1, "random seed")
	order := flag.Int("order", 1, "restoration neighborhood order (1 or 2)")
	flag.Parse()

	if err := run(*appName, *backend, *width, *iters, *burn, *inPath, *labels, *size, *outDir, *seed, *order); err != nil {
		fmt.Fprintf(os.Stderr, "mrfdemo: %v\n", err)
		os.Exit(1)
	}
}

func run(appName, backendName string, width, iters, burn int, inPath string, labels, size int, outDir string, seed uint64, order int) error {
	var backend core.Backend
	switch backendName {
	case "software":
		backend = core.SoftwareGibbs
	case "first-to-fire":
		backend = core.SoftwareFirstToFire
	case "metropolis":
		backend = core.Metropolis
	case "rsu":
		backend = core.RSU
	default:
		return fmt.Errorf("unknown backend %q", backendName)
	}
	cfg := core.Config{
		Backend: backend, RSUWidth: width,
		Iterations: iters, BurnIn: burn, Seed: seed,
	}
	src := rng.New(seed)

	switch appName {
	case "segmentation":
		var image *img.Gray
		var truth *img.LabelMap
		if inPath != "" {
			var err error
			image, err = img.ReadPGMFile(inPath)
			if err != nil {
				return err
			}
		} else {
			scene := img.BlobScene(size, size, labels, 8, src)
			image, truth = scene.Image, scene.Truth
			if err := img.WritePGMFile(filepath.Join(outDir, "segmentation_input.pgm"), image); err != nil {
				return err
			}
		}
		means := apps.KMeans1D(image, labels, 20)
		app, err := apps.NewSegmentation(image, means, 2, 12)
		if err != nil {
			return err
		}
		res, err := solve(app, cfg)
		if err != nil {
			return err
		}
		palette := make([]uint8, labels)
		for i, m := range app.Means6 {
			palette[i] = m << 2
		}
		out := filepath.Join(outDir, "segmentation_labels.pgm")
		if err := img.WritePGMFile(out, res.MAP.Render(palette)); err != nil {
			return err
		}
		if err := img.WritePGMFile(filepath.Join(outDir, "segmentation_confidence.pgm"), res.Confidence); err != nil {
			return err
		}
		fmt.Printf("segmentation: %dx%d, M=%d, backend=%s -> %s\n", image.W, image.H, labels, backendName, out)
		if truth != nil {
			fmt.Printf("  mislabel rate vs ground truth: %.4f\n", res.MAP.MislabelRate(truth))
		}
		fmt.Printf("  final energy: %.0f\n", res.EnergyTrace[len(res.EnergyTrace)-1])
		return nil

	case "motion":
		scene := img.MotionPair(size, size, 2, -1, 3, 2, src)
		app, err := apps.NewMotionEstimation(scene.Frame1, scene.Frame2, 3, 1, 8)
		if err != nil {
			return err
		}
		res, err := solve(app, cfg)
		if err != nil {
			return err
		}
		field := app.Field(res.MAP)
		// Render the field with the optical-flow color wheel.
		out := filepath.Join(outDir, "motion_flow.ppm")
		if err := img.WritePPMFile(out, img.FlowToColor(field, 3)); err != nil {
			return err
		}
		fmt.Printf("motion: %dx%d, M=49, backend=%s -> %s\n", size, size, backendName, out)
		fmt.Printf("  average endpoint error: %.4f\n", field.AvgEndpointError(scene.Truth))
		return nil

	case "stereo":
		scene := img.StereoPair(size, size, 5, 3, 2, src)
		app, err := apps.NewStereoVision(scene.Left, scene.Right, 5, 1, 8)
		if err != nil {
			return err
		}
		res, err := solve(app, cfg)
		if err != nil {
			return err
		}
		palette := []uint8{0, 60, 120, 180, 240}
		out := filepath.Join(outDir, "stereo_disparity.pgm")
		if err := img.WritePGMFile(out, res.MAP.Render(palette)); err != nil {
			return err
		}
		fmt.Printf("stereo: %dx%d, M=5, backend=%s -> %s\n", size, size, backendName, out)
		fmt.Printf("  mislabel rate vs ground truth: %.4f\n", res.MAP.MislabelRate(scene.Truth))
		return nil

	case "restoration":
		var observed *img.Gray
		if inPath != "" {
			var err error
			observed, err = img.ReadPGMFile(inPath)
			if err != nil {
				return err
			}
		} else {
			scene := img.BlobScene(size, size, 4, 15, src)
			observed = scene.Image
		}
		hood := mrf.FirstOrder
		lambdaDiag := 0.0
		if order == 2 {
			hood = mrf.SecondOrder
			lambdaDiag = 1
		}
		app, err := apps.NewRestoration(observed, 4, 2, lambdaDiag, 12, hood)
		if err != nil {
			return err
		}
		res, err := solve(app, cfg)
		if err != nil {
			return err
		}
		out := filepath.Join(outDir, "restoration_out.pgm")
		if err := img.WritePGMFile(out, app.Render(res.MAP)); err != nil {
			return err
		}
		fmt.Printf("restoration: %dx%d, %v prior, backend=%s -> %s\n",
			observed.W, observed.H, hood, backendName, out)
		fmt.Printf("  final energy: %.0f\n", res.EnergyTrace[len(res.EnergyTrace)-1])
		return nil
	}
	return fmt.Errorf("unknown app %q", appName)
}

func solve(app apps.App, cfg core.Config) (*core.Result, error) {
	s, err := core.NewSolver(app, cfg)
	if err != nil {
		return nil, err
	}
	return s.Solve()
}
