package rsugibbs

import (
	"context"
	"testing"
)

// TestQuickstart exercises the doc-comment quickstart end to end
// through the public façade only.
func TestQuickstart(t *testing.T) {
	src := NewRand(1)
	scene := BlobScene(48, 48, 5, 8, src)
	app, err := NewSegmentation(scene.Image, scene.Means, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	solver, err := NewSolver(app, Config{
		Backend: RSU, Iterations: 50, BurnIn: 20, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := solver.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rate := res.MAP.MislabelRate(scene.Truth); rate > 0.10 {
		t.Fatalf("quickstart mislabel rate %v", rate)
	}
}

// TestFacadePerformancePath exercises the architecture-model façade.
func TestFacadePerformancePath(t *testing.T) {
	rep, err := Performance(SegmentationWorkload(320, 320))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GPUSeconds <= 0 || rep.AccelSeconds <= 0 {
		t.Fatalf("bad report %+v", rep)
	}
	if TitanX().Threads() != 3072 {
		t.Fatal("TitanX facade broken")
	}
	if DefaultAccelerator().Units() != 336 {
		t.Fatal("accelerator facade broken")
	}
}

// TestFacadePowerBudgets checks the Tables 3-4 façade.
func TestFacadePowerBudgets(t *testing.T) {
	if RSUG1Budget15().TotalPowerMW() != 3.91 {
		t.Fatal("15nm power budget")
	}
	if RSUG1Budget45().TotalAreaUM2() != 5673 {
		t.Fatal("45nm area budget")
	}
}

// TestFacadePrototype drives the §7 bench emulation via the façade.
func TestFacadePrototype(t *testing.T) {
	p := NewPrototype()
	src := NewRand(3)
	r := p.MeasureRatio(10, 50000, src)
	if r < 7 || r > 13 {
		t.Fatalf("measured ratio %v for commanded 10", r)
	}
}

// TestFacadePGMRoundTrip checks the image I/O façade.
func TestFacadePGMRoundTrip(t *testing.T) {
	g := NewGray(4, 3)
	g.Fill(77)
	path := t.TempDir() + "/x.pgm"
	if err := WritePGMFile(path, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPGMFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(got) {
		t.Fatal("round trip failed")
	}
}
