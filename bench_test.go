// Root benchmark harness: one benchmark per table and figure of the
// paper's evaluation (§8). Functional benchmarks execute the real code
// at laptop-scale sizes; modeled quantities (Table 2 times, Figure 8
// speedups, accelerator bounds, power/area) are attached as custom
// benchmark metrics so `go test -bench` regenerates every reported
// number in one run. cmd/paperbench prints the same results as text
// tables.
package rsugibbs

import (
	"context"
	"testing"

	"repro/internal/arch"
	"repro/internal/power"
	"repro/internal/prototype"
)

// --- Table 1: cycles to sample from different distributions ---------

func BenchmarkTable1Exponential(b *testing.B) {
	b.ReportAllocs()
	src := NewRand(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = src.Exponential(1.5)
	}
	_ = sink
	reportCycles(b)
}

func BenchmarkTable1Normal(b *testing.B) {
	b.ReportAllocs()
	src := NewRand(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = src.Normal(0, 1)
	}
	_ = sink
	reportCycles(b)
}

func BenchmarkTable1Gamma(b *testing.B) {
	b.ReportAllocs()
	src := NewRand(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = src.Gamma(2.5, 1)
	}
	_ = sink
	reportCycles(b)
}

// reportCycles attaches the modeled E5-2640 cycle count (2.5 GHz).
func reportCycles(b *testing.B) {
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)*2.5, "cycles@2.5GHz")
}

// --- Table 2: application execution times ----------------------------

// benchTable2 runs one real MCMC iteration of the application at
// laptop scale and attaches the modeled full-scale times.
func benchTable2(b *testing.B, app string, size string) {
	g := arch.TitanX()
	for _, r := range arch.Table2(g) {
		if r.App == app && r.Size == size {
			b.ReportMetric(r.Seconds[arch.Baseline], "modelGPU-s")
			b.ReportMetric(r.Seconds[arch.Optimized], "modelOptGPU-s")
			b.ReportMetric(r.Seconds[arch.RSUG1], "modelRSUG1-s")
			b.ReportMetric(r.Seconds[arch.RSUG4], "modelRSUG4-s")
		}
	}
}

func BenchmarkTable2SegmentationSmall(b *testing.B) {
	b.ReportAllocs()
	scene := BlobScene(64, 64, 5, 6, NewRand(1))
	app, err := NewSegmentation(scene.Image, scene.Means, 2, 12)
	if err != nil {
		b.Fatal(err)
	}
	solver, err := NewSolver(app, Config{Backend: SoftwareGibbs, Iterations: 1, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.Solve(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	benchTable2(b, "segmentation", "Small")
}

func BenchmarkTable2SegmentationHD(b *testing.B) {
	b.ReportAllocs()
	// Functional kernel at reduced size; modeled metrics at HD.
	scene := BlobScene(64, 64, 5, 6, NewRand(1))
	app, err := NewSegmentation(scene.Image, scene.Means, 2, 12)
	if err != nil {
		b.Fatal(err)
	}
	solver, err := NewSolver(app, Config{Backend: RSU, Iterations: 1, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.Solve(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	benchTable2(b, "segmentation", "HD")
}

func BenchmarkTable2MotionSmall(b *testing.B) {
	b.ReportAllocs()
	scene := MotionPair(48, 48, 2, -1, 3, 2, NewRand(3))
	app, err := NewMotion(scene.Frame1, scene.Frame2, 3, 1, 8)
	if err != nil {
		b.Fatal(err)
	}
	solver, err := NewSolver(app, Config{Backend: SoftwareGibbs, Iterations: 1, Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.Solve(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	benchTable2(b, "motion", "Small")
}

func BenchmarkTable2MotionHD(b *testing.B) {
	b.ReportAllocs()
	scene := MotionPair(48, 48, 2, -1, 3, 2, NewRand(3))
	app, err := NewMotion(scene.Frame1, scene.Frame2, 3, 1, 8)
	if err != nil {
		b.Fatal(err)
	}
	solver, err := NewSolver(app, Config{Backend: RSU, RSUWidth: 4, Iterations: 1, Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.Solve(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	benchTable2(b, "motion", "HD")
}

// --- Tables 3 and 4: power and area ----------------------------------

func BenchmarkTable3Power(b *testing.B) {
	b.ReportAllocs()
	var total float64
	for i := 0; i < b.N; i++ {
		total = power.RSUG1Budget(power.N15).TotalPowerMW()
	}
	b.ReportMetric(total, "mW/unit")
	b.ReportMetric(power.SystemAggregate("gpu", 3072, power.N15).PowerW, "W/3072units")
	b.ReportMetric(power.SystemAggregate("acc", 336, power.N15).PowerW, "W/336units")
}

func BenchmarkTable4Area(b *testing.B) {
	b.ReportAllocs()
	var total float64
	for i := 0; i < b.N; i++ {
		total = power.RSUG1Budget(power.N15).TotalAreaUM2()
	}
	b.ReportMetric(total, "um2/unit")
}

// --- Figure 7: prototype segmentation --------------------------------

func BenchmarkFigure7PrototypeIteration(b *testing.B) {
	b.ReportAllocs()
	scene := TwoRegionScene(50, 67, 10, NewRand(7))
	app, err := NewSegmentation(scene.Image, scene.Means, 2, 40)
	if err != nil {
		b.Fatal(err)
	}
	factory := prototypeFactory()
	m := app.Model()
	init := NewLabelMap(50, 67)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runChain(m, init, factory, 1, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(prototype.RunTime(50*67, 10), "modelBench-s")
}

// --- Figure 8: RSU speedups over GPU ---------------------------------

func BenchmarkFigure8Speedups(b *testing.B) {
	b.ReportAllocs()
	g := arch.TitanX()
	var rows []arch.SpeedupRow
	for i := 0; i < b.N; i++ {
		rows = arch.Figure8(g)
	}
	for _, r := range rows {
		if r.Size != "HD" {
			continue
		}
		name := r.App + "-" + r.Unit.String() + "-x"
		b.ReportMetric(r.OverGPU, name)
	}
}

// --- §8.2: discrete accelerator bound --------------------------------

func BenchmarkAcceleratorBound(b *testing.B) {
	b.ReportAllocs()
	g := arch.TitanX()
	a := arch.DefaultAccelerator()
	var rows []arch.AccelRow
	for i := 0; i < b.N; i++ {
		rows = arch.AcceleratorAnalysis(g, a)
	}
	for _, r := range rows {
		if r.Size != "HD" {
			continue
		}
		b.ReportMetric(r.OverGPU, r.App+"-overGPU-x")
	}
	b.ReportMetric(float64(a.Units()), "units")
}

// --- Ablations --------------------------------------------------------

func BenchmarkAblationRSUSampleWidth1(b *testing.B) {
	b.ReportAllocs()
	benchRSUSample(b, 1)
}

func BenchmarkAblationRSUSampleWidth4(b *testing.B) {
	b.ReportAllocs()
	benchRSUSample(b, 4)
}

func benchRSUSample(b *testing.B, width int) {
	scene := BlobScene(32, 32, 5, 6, NewRand(9))
	app, err := NewSegmentation(scene.Image, scene.Means, 2, 12)
	if err != nil {
		b.Fatal(err)
	}
	unit, err := BuildUnit(app, nil, width, Ideal)
	if err != nil {
		b.Fatal(err)
	}
	src := NewRand(10)
	lm := app.InitLabels()
	in := app.RSUInput(lm, 16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		unit.Sample(in, src)
	}
	b.StopTimer()
	b.ReportMetric(float64(unit.EvalTiming().Cycles), "modelCycles/var")
}

func BenchmarkAblationLUTBuild(b *testing.B) {
	b.ReportAllocs()
	circuit := DefaultLadderCircuit(NewRand(11))
	cfg := UnitConfig{M: 5, Width: 1, ClockHz: 1e9, Circuit: circuit}
	unit, err := NewUnit(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := BuildIntensityMap(unit.Levels(), 12); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPhysicalSampling(b *testing.B) {
	b.ReportAllocs()
	scene := BlobScene(32, 32, 5, 6, NewRand(12))
	app, err := NewSegmentation(scene.Image, scene.Means, 2, 12)
	if err != nil {
		b.Fatal(err)
	}
	unit, err := BuildUnit(app, nil, 1, Physical)
	if err != nil {
		b.Fatal(err)
	}
	src := NewRand(13)
	lm := app.InitLabels()
	in := app.RSUInput(lm, 16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		unit.Sample(in, src)
	}
}

func BenchmarkRSUUnitLatencyModel(b *testing.B) {
	b.ReportAllocs()
	circuit := DefaultLadderCircuit(NewRand(14))
	var cycles int
	for i := 0; i < b.N; i++ {
		u, err := NewUnit(UnitConfig{M: 49, Width: 1, Vector: true, ClockHz: 1e9, Circuit: circuit})
		if err != nil {
			b.Fatal(err)
		}
		cycles = u.EvalTiming().Cycles
	}
	b.ReportMetric(float64(cycles), "cycles/var-M49-G1")
}

func BenchmarkAcceleratorFunctional(b *testing.B) {
	b.ReportAllocs()
	scene := BlobScene(48, 48, 5, 6, NewRand(15))
	app, err := NewSegmentation(scene.Image, scene.Means, 2, 12)
	if err != nil {
		b.Fatal(err)
	}
	unit, err := BuildUnit(app, nil, 1, Ideal)
	if err != nil {
		b.Fatal(err)
	}
	var stats AccelStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, s, err := RunAccelerator(context.Background(), app, unit, PaperAccelConfig(5, 5, uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		stats = s
	}
	b.StopTimer()
	b.ReportMetric(stats.Seconds, "modelAccel-s")
}

func BenchmarkStagedAcceleratorBound(b *testing.B) {
	b.ReportAllocs()
	s := DefaultStagedAccelerator()
	w := SegmentationWorkload(320, 320)
	var t float64
	for i := 0; i < b.N; i++ {
		t = s.Time(w)
	}
	b.ReportMetric(t, "staged-s")
	b.ReportMetric(s.Accelerator.Time(w), "dram-s")
}

func BenchmarkPipelineThroughputM49(b *testing.B) {
	b.ReportAllocs()
	var stats PipelineStats
	for i := 0; i < b.N; i++ {
		s, err := SimulatePipeline(PipelineConfig{M: 49, Width: 1, Replicas: 4}, 1000)
		if err != nil {
			b.Fatal(err)
		}
		stats = s
	}
	b.ReportMetric(stats.ThroughputCyclesPerVariable, "cycles/var")
}

// --- Sweep engine (BENCH_sweep.json) ---------------------------------

// BenchmarkSweepEngine runs a full segmentation solve through the
// façade with and without the compiled sweep fast path
// (Config.Compile). The per-site numbers behind the committed
// BENCH_sweep.json come from internal/bench (`make sweep-report`);
// this benchmark shows the same speedup end to end, label maps
// bit-identical between the two sub-benchmarks.
func BenchmarkSweepEngine(b *testing.B) {
	b.ReportAllocs()
	for _, compiled := range []bool{false, true} {
		name := "closure"
		if compiled {
			name = "compiled"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			scene := BlobScene(96, 96, 5, 6, NewRand(1))
			app, err := NewSegmentation(scene.Image, scene.Means, 2, 12)
			if err != nil {
				b.Fatal(err)
			}
			solver, err := NewSolver(app, Config{
				Backend: SoftwareGibbs, Iterations: 4,
				Compile: compiled, Seed: 2,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := solver.Solve(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
