package rsugibbs

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/checkpoint/chaostest"
)

// TestRecorderDeterminism pins the observability layer's core
// guarantee: recording reads clocks and counters only, never the RNG
// streams, so an observed run is byte-identical to an unobserved one.
// Checked on every backend at both ends of the worker range (the
// engine takes different code paths at W=1 and W=N).
func TestRecorderDeterminism(t *testing.T) {
	src := NewRand(11)
	scene := BlobScene(32, 32, 3, 6, src)
	app, err := NewSegmentation(scene.Image, scene.Means, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}

	backends := []struct {
		name string
		b    Backend
	}{
		{"software", SoftwareGibbs},
		{"first-to-fire", SoftwareFirstToFire},
		{"metropolis", Metropolis},
		{"rsu", RSU},
	}
	for _, bk := range backends {
		for _, w := range []int{1, workers} {
			solve := func(rec Recorder) string {
				t.Helper()
				cfg := Config{
					Backend: bk.b, RSUWidth: 1,
					Iterations: 12, BurnIn: 4, Seed: 5, Workers: w,
					Recorder: rec,
				}
				s, err := NewSolver(app, cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := s.Solve(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				return chaostest.Digest(res)
			}
			plain := solve(nil)
			observed := solve(NewMetrics())
			if plain != observed {
				t.Errorf("%s W=%d: observed run diverged from unobserved (digest %.12s vs %.12s)",
					bk.name, w, plain, observed)
			}
		}
	}
}
