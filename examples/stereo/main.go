// Stereo example: disparity estimation on a synthetic rectified pair
// (paper §8.1, evaluated on the CPU). Shows the RSU backend recovering
// the raised central plane, and the single-core CPU speedup estimate
// the paper reports as "over 100".
package main

import (
	"context"
	"fmt"
	"log"

	rsugibbs "repro"
)

func main() {
	src := rsugibbs.NewRand(21)
	scene := rsugibbs.StereoPair(128, 96, 5, 3, 2, src)

	app, err := rsugibbs.NewStereo(scene.Left, scene.Right, 5, 1, 8)
	if err != nil {
		log.Fatal(err)
	}

	for _, v := range []struct {
		name    string
		backend rsugibbs.Backend
	}{
		{"exact software Gibbs", rsugibbs.SoftwareGibbs},
		{"RSU-G1 (emulated)", rsugibbs.RSU},
	} {
		solver, err := rsugibbs.NewSolver(app, rsugibbs.Config{
			Backend: v.backend, Iterations: 80, BurnIn: 30, Seed: 23,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := solver.Solve(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s mislabel rate %.4f\n", v.name, res.MAP.MislabelRate(scene.Truth))
		if v.backend == rsugibbs.RSU {
			palette := []uint8{0, 60, 120, 180, 240}
			if err := rsugibbs.WritePGMFile("stereo_disparity.pgm", res.MAP.Render(palette)); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Println("wrote stereo_disparity.pgm")
}
