// Prototype example: the paper's §7 macro-scale RSU-G2 bench, emulated.
// Reproduces both prototype experiments: (1) the parameterization sweep
// — commanded vs achieved relative probabilities from 1:1 to 255:1 —
// and (2) a two-label segmentation after 10 MCMC iterations (Figure 7),
// with the bench's wall-clock estimate (the laser-controller interface
// dominates at ~60 s/iteration).
package main

import (
	"context"
	"fmt"
	"log"

	rsugibbs "repro"
)

func main() {
	// Experiment 1: parameterization accuracy.
	p := rsugibbs.NewPrototype()
	src := rsugibbs.NewRand(5)
	fmt.Println("commanded ratio -> measured (one laser setting, 50k races each)")
	for _, ratio := range []float64{1, 4, 16, 30, 64, 128, 255} {
		m := p.MeasureRatio(ratio, 50000, src)
		fmt.Printf("  %6.0f : 1  ->  %8.1f : 1   (%.1f%% off)\n",
			ratio, m, 100*abs(m-ratio)/ratio)
	}

	// Experiment 2: Figure 7 — two-label segmentation in 10 iterations.
	scene := rsugibbs.TwoRegionScene(50, 67, 10, src)
	app, err := rsugibbs.NewSegmentation(scene.Image, scene.Means, 2, 40)
	if err != nil {
		log.Fatal(err)
	}
	solver, err := rsugibbs.NewSolver(app, rsugibbs.Config{
		Backend: rsugibbs.PrototypeBackend, Iterations: 10, BurnIn: 2, Seed: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := solver.Solve(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	if err := rsugibbs.WritePGMFile("prototype_input.pgm", scene.Image); err != nil {
		log.Fatal(err)
	}
	if err := rsugibbs.WritePGMFile("prototype_iter10.pgm", res.Final.Render([]uint8{0, 255})); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFigure 7 rerun: 50x67 image, 10 iterations on the emulated bench\n")
	fmt.Printf("  mislabel rate vs truth: %.3f\n", res.Final.MislabelRate(scene.Truth))
	fmt.Println("  wrote prototype_input.pgm and prototype_iter10.pgm")
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
