// Restoration example: Bayesian image denoising — the original Gibbs
// application (Geman & Geman 1984, the paper's ref [11]) — run with
// first-order and second-order smoothness priors, the latter on an
// emulated RSU-G8 with diagonal-neighbor registers (the paper's §9
// extension direction).
package main

import (
	"context"
	"fmt"
	"log"

	rsugibbs "repro"
)

func main() {
	// Build a clean 4-level scene and corrupt it heavily.
	src := rsugibbs.NewRand(31)
	clean := rsugibbs.NewGray(128, 128)
	levels := []uint8{34, 98, 162, 226}
	for y := 0; y < 128; y++ {
		for x := 0; x < 128; x++ {
			region := 0
			switch {
			case (x-40)*(x-40)+(y-48)*(y-48) < 900:
				region = 3
			case x > 80:
				region = 2
			case y > 88:
				region = 1
			}
			clean.Set(x, y, levels[region])
		}
	}
	noisy := clean.Clone()
	for i := range noisy.Pix {
		v := float64(noisy.Pix[i]) + src.Normal(0, 12)
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		noisy.Pix[i] = uint8(v)
	}
	if err := rsugibbs.WritePGMFile("restoration_noisy.pgm", noisy); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("noisy input MSE vs clean: %.1f\n\n", mse(noisy, clean))

	type variant struct {
		name    string
		hood    rsugibbs.Neighborhood
		diag    float64
		backend rsugibbs.Backend
	}
	for _, v := range []variant{
		{"first-order, software Gibbs", rsugibbs.FirstOrder, 0, rsugibbs.SoftwareGibbs},
		{"first-order, RSU-G1", rsugibbs.FirstOrder, 0, rsugibbs.RSU},
		{"second-order, software Gibbs", rsugibbs.SecondOrder, 1, rsugibbs.SoftwareGibbs},
		{"second-order, RSU-G8", rsugibbs.SecondOrder, 1, rsugibbs.RSU},
	} {
		app, err := rsugibbs.NewRestoration(noisy, 4, 2, v.diag, 12, v.hood)
		if err != nil {
			log.Fatal(err)
		}
		solver, err := rsugibbs.NewSolver(app, rsugibbs.Config{
			Backend: v.backend, Iterations: 80, BurnIn: 30, Seed: 33,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := solver.Solve(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		restored := app.Render(res.MAP)
		cycles := "-"
		if u := solver.Unit(); u != nil {
			cycles = fmt.Sprintf("%d cycles/var", u.EvalTiming().Cycles)
		}
		fmt.Printf("%-30s restored MSE %.1f  (%s)\n", v.name, mse(restored, clean), cycles)
		if v.backend == rsugibbs.RSU && v.hood == rsugibbs.SecondOrder {
			if err := rsugibbs.WritePGMFile("restoration_rsu_g8.pgm", restored); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Println("\nwrote restoration_noisy.pgm and restoration_rsu_g8.pgm")
}

func mse(a, b *rsugibbs.Gray) float64 {
	sum := 0.0
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		sum += d * d
	}
	return sum / float64(len(a.Pix))
}
