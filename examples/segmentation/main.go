// Segmentation example: the paper's first evaluation workload (§8.1).
// Generates a noisy multi-region scene, estimates label means with
// k-means, then compares every backend — exact Gibbs, ideal
// first-to-fire, Metropolis, and RSU-G at widths 1 and 4 — on quality
// and modeled hardware latency. Writes input and result PGMs.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	rsugibbs "repro"
)

func main() {
	src := rsugibbs.NewRand(3)
	scene := rsugibbs.BlobScene(128, 128, 5, 10, src)
	if err := rsugibbs.WritePGMFile("segmentation_input.pgm", scene.Image); err != nil {
		log.Fatal(err)
	}

	// Estimate the label means from the image itself (as a real user
	// would; the scene's true means are only used for scoring).
	means := rsugibbs.KMeans1D(scene.Image, 5, 20)
	app, err := rsugibbs.NewSegmentation(scene.Image, means, 2, 12)
	if err != nil {
		log.Fatal(err)
	}

	type variant struct {
		name string
		cfg  rsugibbs.Config
	}
	variants := []variant{
		{"exact software Gibbs", rsugibbs.Config{Backend: rsugibbs.SoftwareGibbs}},
		{"ideal first-to-fire", rsugibbs.Config{Backend: rsugibbs.SoftwareFirstToFire}},
		{"Metropolis", rsugibbs.Config{Backend: rsugibbs.Metropolis}},
		{"RSU-G1 (emulated)", rsugibbs.Config{Backend: rsugibbs.RSU, RSUWidth: 1}},
		{"RSU-G4 (emulated)", rsugibbs.Config{Backend: rsugibbs.RSU, RSUWidth: 4}},
	}

	fmt.Printf("%-22s %-14s %-14s %s\n", "backend", "mislabel rate", "final energy", "cycles/variable")
	var best *rsugibbs.Result
	for _, v := range variants {
		cfg := v.cfg
		cfg.Iterations, cfg.BurnIn, cfg.Seed = 120, 40, 9
		solver, err := rsugibbs.NewSolver(app, cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := solver.Solve(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		cycles := "-"
		if u := solver.Unit(); u != nil {
			cycles = fmt.Sprintf("%d", u.EvalTiming().Cycles)
		}
		fmt.Printf("%-22s %-14.4f %-14.0f %s\n", v.name,
			res.MAP.MislabelRate(scene.Truth),
			res.EnergyTrace[len(res.EnergyTrace)-1], cycles)
		if v.name == "RSU-G1 (emulated)" {
			best = res
		}
	}

	// Write the RSU result rendered with the estimated means.
	palette := make([]uint8, len(app.Means6))
	for i, m := range app.Means6 {
		palette[i] = m << 2
	}
	if err := rsugibbs.WritePGMFile("segmentation_rsu.pgm", best.MAP.Render(palette)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote segmentation_input.pgm and segmentation_rsu.pgm")
	if _, err := os.Stat("segmentation_rsu.pgm"); err != nil {
		log.Fatal(err)
	}
}
