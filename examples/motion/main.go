// Motion example: dense motion estimation over a 7x7 search window
// (M=49 labels), the paper's most RSU-friendly workload — wide label
// spaces amortize the unit's fixed costs, which is why motion sees the
// largest speedups (Figure 8). Compares software and RSU backends and
// reports the modeled HD-frame times.
package main

import (
	"context"
	"fmt"
	"log"

	rsugibbs "repro"
)

func main() {
	// Two synthetic frames: textured background, central object moving
	// by (+2, -1) pixels.
	src := rsugibbs.NewRand(11)
	scene := rsugibbs.MotionPair(128, 128, 2, -1, 3, 2, src)

	app, err := rsugibbs.NewMotion(scene.Frame1, scene.Frame2, 3, 1, 8)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("dense motion estimation, 128x128, M=49 (7x7 window)")
	for _, v := range []struct {
		name    string
		backend rsugibbs.Backend
		width   int
	}{
		{"exact software Gibbs", rsugibbs.SoftwareGibbs, 0},
		{"RSU-G1 (emulated)", rsugibbs.RSU, 1},
		{"RSU-G4 (emulated)", rsugibbs.RSU, 4},
	} {
		solver, err := rsugibbs.NewSolver(app, rsugibbs.Config{
			Backend: v.backend, RSUWidth: v.width,
			Iterations: 60, BurnIn: 20, Seed: 13,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := solver.Solve(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		field := app.Field(res.MAP)
		fmt.Printf("  %-22s avg endpoint error %.4f\n", v.name, field.AvgEndpointError(scene.Truth))
	}

	rep, err := rsugibbs.Performance(rsugibbs.MotionWorkload(1920, 1080))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nModeled HD motion (400 iterations):\n")
	fmt.Printf("  GPU %.2fs -> RSU-G1 %.2fs (%.1fx) -> RSU-G4 %.2fs (%.1fx) -> accelerator %.3fs (%.1fx)\n",
		rep.GPUSeconds,
		rep.RSUG1Seconds, rep.GPUSeconds/rep.RSUG1Seconds,
		rep.RSUG4Seconds, rep.GPUSeconds/rep.RSUG4Seconds,
		rep.AccelSeconds, rep.GPUSeconds/rep.AccelSeconds)
}
