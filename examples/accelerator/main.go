// Accelerator example: architecture exploration with the §8.2 models.
// Sweeps image size, RSU width and memory bandwidth to show where the
// speedups come from and where the bandwidth wall sits — the design
// conversation of the paper's evaluation, runnable in milliseconds.
package main

import (
	"fmt"

	rsugibbs "repro"
)

func main() {
	gpu := rsugibbs.TitanX()

	fmt.Println("== Speedup vs image size (motion estimation, RSU-G1 GPU over baseline GPU) ==")
	for _, s := range [][2]int{{160, 160}, {320, 320}, {640, 480}, {1280, 720}, {1920, 1080}} {
		w := rsugibbs.MotionWorkload(s[0], s[1])
		rep, err := rsugibbs.Performance(w)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %5dx%-5d GPU %7.3fs  RSU-G1 %7.3fs  speedup %.1fx\n",
			s[0], s[1], rep.GPUSeconds, rep.RSUG1Seconds, rep.GPUSeconds/rep.RSUG1Seconds)
	}

	fmt.Println("\n== Accelerator bound vs memory bandwidth (motion, HD) ==")
	hd := rsugibbs.MotionWorkload(1920, 1080)
	repHD, err := rsugibbs.Performance(hd)
	if err != nil {
		panic(err)
	}
	for _, bwGB := range []float64{84, 168, 336, 672, 1344} {
		a := rsugibbs.DefaultAccelerator()
		a.MemBW = bwGB * 1e9
		t := a.Time(hd)
		fmt.Printf("  %6.0f GB/s: %6.4fs (%4d units, %.1fx over the %v GPU)\n",
			bwGB, t, a.Units(), repHD.GPUSeconds/t, gpu.Name)
	}

	fmt.Println("\n== Where RSU width stops helping (motion, HD, modeled GPU time) ==")
	// Wider units shrink the per-variable step count; once the kernel's
	// fixed overhead or the memory floor dominates, width is wasted —
	// the Table 2 seg rows (G1 == G4) are the same effect.
	for _, k := range []int{1, 2, 4, 8, 16, 49} {
		steps := (49 + k - 1) / k
		fmt.Printf("  K=%-3d -> %2d steps/variable\n", k, steps)
	}
	fmt.Println("  (segmentation's M=5 means even K=1 is close to the fixed-cost floor,")
	fmt.Println("   which is why Table 2 shows identical RSU-G1 and RSU-G4 times there)")
}
