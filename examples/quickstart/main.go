// Quickstart: segment a synthetic noisy scene with an emulated RSU-G
// molecular-optical Gibbs sampling unit, and compare against exact
// software Gibbs — the smallest end-to-end use of the public API.
package main

import (
	"context"
	"fmt"
	"log"

	rsugibbs "repro"
)

func main() {
	// A 96x96 five-region scene with Gaussian noise and known truth.
	src := rsugibbs.NewRand(42)
	scene := rsugibbs.BlobScene(96, 96, 5, 8, src)

	app, err := rsugibbs.NewSegmentation(scene.Image, scene.Means, 2, 12)
	if err != nil {
		log.Fatal(err)
	}

	for _, backend := range []rsugibbs.Backend{rsugibbs.SoftwareGibbs, rsugibbs.RSU} {
		solver, err := rsugibbs.NewSolver(app, rsugibbs.Config{
			Backend:    backend,
			Iterations: 80,
			BurnIn:     30,
			Seed:       7,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := solver.Solve(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s mislabel rate %.4f  final energy %.0f\n",
			res.SamplerName, res.MAP.MislabelRate(scene.Truth),
			res.EnergyTrace[len(res.EnergyTrace)-1])
	}

	// What would this workload cost on the paper's architectures?
	rep, err := rsugibbs.Performance(rsugibbs.SegmentationWorkload(1920, 1080))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nModeled HD segmentation (5000 iterations):\n")
	fmt.Printf("  GPU %.2fs | Opt GPU %.2fs | RSU-G1 GPU %.2fs | accelerator %.3fs (%d units, %.2f mW each)\n",
		rep.GPUSeconds, rep.OptGPUSeconds, rep.RSUG1Seconds,
		rep.AccelSeconds, rep.AcceleratorUnit, rep.UnitPowerMW)
}
