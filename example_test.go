package rsugibbs_test

import (
	"context"
	"fmt"

	rsugibbs "repro"
)

// ExampleNewSolver runs the quickstart flow: build a synthetic scene,
// segment it with an emulated RSU-G unit, and score against the truth.
func ExampleNewSolver() {
	scene := rsugibbs.BlobScene(48, 48, 5, 6, rsugibbs.NewRand(42))
	app, err := rsugibbs.NewSegmentation(scene.Image, scene.Means, 2, 12)
	if err != nil {
		panic(err)
	}
	solver, err := rsugibbs.NewSolver(app, rsugibbs.Config{
		Backend: rsugibbs.RSU, Iterations: 60, BurnIn: 20, Seed: 7,
	})
	if err != nil {
		panic(err)
	}
	res, err := solver.Solve(context.Background())
	if err != nil {
		panic(err)
	}
	fmt.Println("recovered:", res.MAP.MislabelRate(scene.Truth) < 0.05)
	// Output: recovered: true
}

// ExamplePerformance queries the §8 architecture models for the paper's
// HD motion workload.
func ExamplePerformance() {
	rep, err := rsugibbs.Performance(rsugibbs.MotionWorkload(1920, 1080))
	if err != nil {
		panic(err)
	}
	fmt.Printf("GPU %.2fs, RSU-G4 GPU %.2fs, accelerator bound %.3fs (%d units)\n",
		rep.GPUSeconds, rep.RSUG4Seconds, rep.AccelSeconds, rep.AcceleratorUnit)
	// Output: GPU 7.17s, RSU-G4 GPU 0.21s, accelerator bound 0.133s (336 units)
}

// ExampleSimulatePipeline validates the paper's RSU-G1 latency formula
// with the cycle-accurate pipeline model.
func ExampleSimulatePipeline() {
	stats, err := rsugibbs.SimulatePipeline(rsugibbs.PipelineConfig{
		M: 49, Width: 1, Replicas: 4,
	}, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println("latency:", stats.FirstLatency, "cycles") // 7 + (M-1)
	// Output: latency: 55 cycles
}

// ExampleGelmanRubin checks chain mixing with the R-hat diagnostic.
func ExampleGelmanRubin() {
	src := rsugibbs.NewRand(3)
	chains := make([][]float64, 3)
	for i := range chains {
		chains[i] = make([]float64, 500)
		for j := range chains[i] {
			chains[i][j] = src.Normal(100, 5)
		}
	}
	rhat, err := rsugibbs.GelmanRubin(chains)
	if err != nil {
		panic(err)
	}
	fmt.Println("mixed:", rhat < 1.05)
	// Output: mixed: true
}
