package rsugibbs

import (
	"repro/internal/core"
	"repro/internal/obs"
)

// Option mutates a Config. The With* constructors below compose into
// NewSolverOpts, the functional-options alternative to filling a
// Config literal — later options win, and every combination is
// validated by NewSolver exactly as a literal Config would be.
type Option func(*Config)

// WithBackend selects the sampling engine by compatibility constant
// (default SoftwareGibbs). Prefer WithBackendName: the registry accepts
// names for every backend, including ones without a constant.
func WithBackend(b Backend) Option {
	return func(c *Config) { c.Backend = b }
}

// WithBackendName selects the sampling engine by registry name — see
// Backends() for the available names. Unknown names fail solver
// construction with an error wrapping ErrInvalidConfig.
func WithBackendName(name string) Option {
	return func(c *Config) { c.BackendName = name }
}

// WithSpiking selects the spiking digital-neuron backend and sets its
// comparator bit width and tick length τ (zero fields pick the package
// defaults).
func WithSpiking(spec SpikingSpec) Option {
	return func(c *Config) {
		c.BackendName = "spiking"
		c.Spiking = &spec
	}
}

// WithMeanField selects the deterministic mean-field backend for binary
// MRFs and sets its damping factor and fixed-point tolerance (zero
// fields pick the package defaults).
func WithMeanField(spec MeanFieldSpec) Option {
	return func(c *Config) {
		c.BackendName = "meanfield"
		c.MeanField = &spec
	}
}

// WithIterations sets the MCMC sweep budget.
func WithIterations(n int) Option {
	return func(c *Config) { c.Iterations = n }
}

// WithBurnIn sets the sweeps discarded before mode tracking.
func WithBurnIn(n int) Option {
	return func(c *Config) { c.BurnIn = n }
}

// WithCompile toggles the precomputed-potential sweep engine. Sampled
// labels are bit-identical either way; compiling trades table memory
// for closure-free inner loops.
func WithCompile(on bool) Option {
	return func(c *Config) { c.Compile = on }
}

// WithWorkers sets checkerboard parallelism. Seeded results are
// identical for every worker count (RNG streams attach to rows).
func WithWorkers(n int) Option {
	return func(c *Config) { c.Workers = n }
}

// WithSeed fixes the chain seed for reproducible runs.
func WithSeed(seed uint64) Option {
	return func(c *Config) { c.Seed = seed }
}

// WithRSUWidth sets the unit width K for the RSU backend.
func WithRSUWidth(k int) Option {
	return func(c *Config) { c.RSUWidth = k }
}

// WithAnneal enables geometric simulated-annealing cooling from startT
// decaying by rate per sweep (floored at the model temperature).
func WithAnneal(startT, rate float64) Option {
	return func(c *Config) { c.Anneal = &core.AnnealSpec{StartT: startT, Rate: rate} }
}

// WithRecorder injects the observability layer: sweep and color-phase
// timings, checkpoint and fault events, backend counters. Recording
// never touches the RNG streams, so an observed run produces
// byte-identical labels to an unobserved one. Pass a *MetricsRegistry
// (NewMetrics) to also receive Result.Metrics snapshots.
func WithRecorder(r Recorder) Option {
	return func(c *Config) { c.Recorder = r }
}

// WithCheckpoint arms durable snapshots and crash recovery.
func WithCheckpoint(spec CheckpointSpec) Option {
	return func(c *Config) { c.Checkpoint = &spec }
}

// WithFaults arms the fault-injection and graceful-degradation
// subsystem on the RSU backend.
func WithFaults(fo FaultOptions) Option {
	return func(c *Config) { c.Faults = &fo }
}

// NewSolverOpts builds a solver from options over a small sensible
// default (SoftwareGibbs backend, 100 iterations, 30 burn-in, seed 0).
// Equivalent to NewSolver with the corresponding Config literal; the
// same validation applies and errors wrap ErrInvalidConfig.
func NewSolverOpts(app App, opts ...Option) (*Solver, error) {
	cfg := Config{Iterations: 100, BurnIn: 30}
	for _, o := range opts {
		o(&cfg)
	}
	return core.NewSolver(app, cfg)
}

// Observability layer (internal/obs): a zero-dependency metrics,
// tracing and structured-event subsystem threaded through the whole
// solver stack. Inject with WithRecorder (or Config.Recorder); a nil
// recorder records nothing and costs nothing.
type (
	// Recorder is the instrumentation surface the solver stack accepts.
	Recorder = obs.Recorder
	// MetricsRegistry is the concrete mutex-guarded Recorder.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a deterministic point-in-time metrics export
	// (Result.Metrics and MetricsRegistry.Snapshot).
	MetricsSnapshot = obs.Snapshot
	// MetricsEvent is one structured observability record.
	MetricsEvent = obs.Event
	// EventSink streams events as NDJSON, one complete line per event,
	// safe for concurrent emitters.
	EventSink = obs.EventSink
)

// Observability constructors and helpers.
var (
	// NewMetrics returns an empty metrics registry.
	NewMetrics = obs.New
	// NewEventSink returns an NDJSON event sink over a writer.
	NewEventSink = obs.NewEventSink
	// ServeMetrics starts the /metrics + /debug/vars + /debug/pprof
	// endpoint on an address and returns the bound address and a
	// shutdown func.
	ServeMetrics = obs.Serve
	// MetricsHandler serves a live registry over HTTP.
	MetricsHandler = obs.Handler
	// ValidateMetricsJSON schema-validates a serialized snapshot.
	ValidateMetricsJSON = obs.ValidateSnapshotJSON
)

// Short aliases of the typed errors, for errors.Is branching through
// the façade alone.
var (
	// ErrCorrupt marks a truncated or checksum-failed snapshot
	// (alias of ErrSnapshotCorrupt).
	ErrCorrupt = ErrSnapshotCorrupt
	// ErrVersion marks a snapshot format-version skew (alias of
	// ErrSnapshotVersion).
	ErrVersion = ErrSnapshotVersion
	// ErrMismatch marks a snapshot/configuration mismatch (alias of
	// ErrSnapshotMismatch).
	ErrMismatch = ErrSnapshotMismatch
)
