#!/usr/bin/env bash
# serve-smoke: end-to-end drain/restart exercise of the real rsuserve
# binary (`make serve-smoke`, CI job serve-smoke).
#
#   1. build cmd/rsuserve and start it on an ephemeral port with two
#      rate-limited tenants and a fresh state directory
#   2. submit a batch of jobs over HTTP from both tenants
#   3. SIGTERM the daemon mid-flight — in-flight chains checkpoint at
#      their next sweep boundary and park as preempted
#   4. restart on the same state directory and poll until every
#      accepted job is terminal
#   5. assert all jobs completed, the restarted process recovered work
#      (serve_jobs_recovered in /metrics), and the admission gauges are
#      exported
#
# Requires: curl, jq (both present on the CI image).
set -euo pipefail

BIN=$(mktemp -d)/rsuserve
STATE=$(mktemp -d)
LOG1=$(mktemp) LOG2=$(mktemp)
PID=""
PIDS=()
# cleanup runs on every exit path — success, die, set -e failure, or a
# signal — and reaps every daemon this script ever started plus any
# children they forked, so CI never accumulates orphaned rsuserve
# processes.
cleanup() {
    status=$?
    trap - EXIT INT TERM
    for pid in ${PIDS+"${PIDS[@]}"}; do
        pkill -9 -P "$pid" 2>/dev/null || true
        kill -9 "$pid" 2>/dev/null || true
    done
    rm -rf "$(dirname "$BIN")" "$STATE" "$LOG1" "$LOG2"
    exit "$status"
}
trap cleanup EXIT INT TERM

say() { printf 'serve-smoke: %s\n' "$*"; }
die() { say "FAIL: $*"; exit 1; }

go build -o "$BIN" ./cmd/rsuserve

# start_server LOGFILE: launches the daemon on an ephemeral port, sets
# PID and ADDR from its startup line.
start_server() {
    "$BIN" -state "$STATE" -addr 127.0.0.1:0 -shards 2 -workers 2 \
        -tenants 'alice=0:0,bob=0:0' >"$1" 2>&1 &
    PID=$!
    PIDS+=("$PID")
    for _ in $(seq 1 100); do
        ADDR=$(sed -n 's#^rsuserve: serving on http://\([^ ]*\).*#\1#p' "$1")
        [ -n "$ADDR" ] && return 0
        kill -0 "$PID" 2>/dev/null || { cat "$1"; die "daemon exited during startup"; }
        sleep 0.1
    done
    cat "$1"
    die "daemon never reported its address"
}

say "run 1: starting daemon"
start_server "$LOG1"
say "run 1: serving on $ADDR (state $STATE)"

# Submit 6 jobs alternating between the two tenants: chains long enough
# to still be mid-flight when the SIGTERM lands.
IDS=()
for i in $(seq 0 5); do
    tenant=alice; [ $((i % 2)) -eq 1 ] && tenant=bob
    id=$(curl -sf -X POST -H "X-Tenant: $tenant" \
        -d "{\"app\":\"segmentation\",\"size\":16,\"iterations\":$((300 + 50 * i)),\"burn_in\":10,\"seed\":$((100 + i)),\"scene_seed\":7}" \
        "http://$ADDR/v1/jobs" | jq -r .id)
    [ -n "$id" ] && [ "$id" != null ] || die "submit $i returned no job id"
    IDS+=("$id")
done
say "submitted ${#IDS[@]} jobs across 2 tenants: ${IDS[*]}"

# Let the stream get demonstrably mid-flight (at least one durable chain
# snapshot) before pulling the plug.
for _ in $(seq 1 100); do
    count=$(ls "$STATE"/ckpt/*.ckpt 2>/dev/null | wc -l)
    [ "$count" -ge 1 ] && break
    sleep 0.1
done
[ "$count" -ge 1 ] || die "no chain checkpointed within 10s"

say "run 1: SIGTERM mid-flight ($count chains checkpointed so far)"
kill -TERM "$PID"
wait "$PID" || die "daemon exited non-zero on drain: $(cat "$LOG1")"
grep -q "drained" "$LOG1" || die "daemon did not report a clean drain"
PID=""

say "run 2: restarting on the same state directory"
start_server "$LOG2"
say "run 2: serving on $ADDR"

# Poll until every accepted job is terminal (the restarted daemon
# resumes parked chains from their snapshots).
deadline=$((SECONDS + 120))
while :; do
    jobs=$(curl -sf "http://$ADDR/v1/jobs")
    terminal=$(jq '[.jobs[] | select(.terminal)] | length' <<<"$jobs")
    [ "$terminal" -eq "${#IDS[@]}" ] && break
    [ "$SECONDS" -lt "$deadline" ] || {
        jq . <<<"$jobs"
        die "jobs not terminal after restart ($terminal/${#IDS[@]})"
    }
    sleep 0.2
done

bad=$(jq -r '.jobs[] | select(.state != "done") | "\(.id) \(.state) \(.error)"' <<<"$jobs")
[ -z "$bad" ] || die "jobs not completed: $bad"
say "all ${#IDS[@]} jobs terminal and done after drain + restart"

# Labels of a resumed job must be servable.
curl -sf "http://$ADDR/v1/jobs/${IDS[0]}/labels" | head -c2 | grep -q P5 \
    || die "labels of ${IDS[0]} not a PGM"

# The restarted daemon must admit it recovered parked work, and the
# admission gauges must be exported.
metrics=$(curl -sf "http://$ADDR/metrics")
for want in serve_jobs_recovered serve_queue_depth serve_jobs_running; do
    grep -q "$want" <<<"$metrics" || die "/metrics missing $want"
done
recovered=$(awk '/^serve_jobs_recovered/ {print $2}' <<<"$metrics")
[ "${recovered%%.*}" -ge 1 ] || die "serve_jobs_recovered = $recovered, want >= 1"
say "recovered $recovered parked jobs; admission gauges exported"

say "run 2: SIGTERM (clean shutdown)"
kill -TERM "$PID"
wait "$PID" || die "restarted daemon exited non-zero: $(cat "$LOG2")"
PID=""

say "PASS"
