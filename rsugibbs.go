// Package rsugibbs is the public API of this reproduction of
// "Accelerating Markov Random Field Inference Using Molecular Optical
// Gibbs Sampling Units" (Wang et al., ISCA 2016).
//
// It curates the internal packages into one import:
//
//   - build a vision application (Segmentation, Motion, Stereo) over a
//     first-order MRF with smoothness priors,
//   - solve it with a Solver on a selectable backend — exact software
//     Gibbs, ideal first-to-fire, Metropolis, an emulated RSU-G
//     molecular-optical sampling unit of any width, or the approximate
//     spiking-neuron and mean-field engines from the related
//     literature — all behind an open registry (Backends,
//     WithBackendName) new backends plug into,
//   - and query the paper's architecture models (GPU, discrete
//     accelerator, power, area) for the equivalent workload.
//
// The names below are aliases of the internal implementation types, so
// values flow freely between this façade and the deeper APIs for users
// who need the full surface (internal/rsu for the functional unit,
// internal/ret for the RET physics, internal/arch for timing models).
//
// Quickstart:
//
//	src := rsugibbs.NewRand(1)
//	scene := rsugibbs.BlobScene(128, 128, 5, 8, src)
//	app, _ := rsugibbs.NewSegmentation(scene.Image, scene.Means, 2, 12)
//	solver, _ := rsugibbs.NewSolver(app, rsugibbs.Config{
//		Backend: rsugibbs.RSU, Iterations: 100, BurnIn: 30,
//		Compile: true, // precomputed-table sweep engine, bit-identical
//	})
//	res, _ := solver.Solve(context.Background())
//	fmt.Println(res.MAP.MislabelRate(scene.Truth))
//
// Or, with functional options and metrics:
//
//	reg := rsugibbs.NewMetrics()
//	solver, _ := rsugibbs.NewSolverOpts(app,
//		rsugibbs.WithBackend(rsugibbs.RSU),
//		rsugibbs.WithIterations(100), rsugibbs.WithBurnIn(30),
//		rsugibbs.WithCompile(true), rsugibbs.WithRecorder(reg),
//	)
//	res, _ := solver.Solve(ctx)
//	fmt.Println(res.Metrics.Counter("gibbs.sweeps"))
package rsugibbs

import (
	"repro/internal/accel"
	"repro/internal/apps"
	"repro/internal/arch"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gibbs"
	"repro/internal/img"
	"repro/internal/mrf"
	"repro/internal/power"
	"repro/internal/prototype"
	"repro/internal/ret"
	"repro/internal/rng"
	"repro/internal/rsu"
	"repro/internal/sampler"
	"repro/internal/sampler/meanfield"
	"repro/internal/sampler/spiking"
)

// Images and label fields.
type (
	// Gray is an 8-bit grayscale image.
	Gray = img.Gray
	// LabelMap is a per-pixel label field (the MRF's random variables).
	LabelMap = img.LabelMap
	// VectorField is a per-pixel motion field.
	VectorField = img.VectorField
	// Scene couples a synthetic observation with its ground truth.
	Scene = img.Scene
	// MotionScene is a synthetic frame pair with true motion.
	MotionScene = img.MotionScene
	// StereoScene is a synthetic stereo pair with true disparity.
	StereoScene = img.StereoScene
)

// Image constructors and I/O.
var (
	// NewGray allocates a zeroed grayscale image.
	NewGray = img.NewGray
	// NewLabelMap allocates a zeroed label map.
	NewLabelMap = img.NewLabelMap
	// ReadPGMFile and WritePGMFile move images to and from disk.
	ReadPGMFile  = img.ReadPGMFile
	WritePGMFile = img.WritePGMFile
	// BlobScene, TwoRegionScene, MotionPair and StereoPair generate the
	// synthetic workloads used throughout the evaluation.
	BlobScene      = img.BlobScene
	TwoRegionScene = img.TwoRegionScene
	MotionPair     = img.MotionPair
	StereoPair     = img.StereoPair
)

// Randomness.
type (
	// Rand is the deterministic random source used everywhere.
	Rand = rng.Source
)

// NewRand returns a seeded deterministic random source.
func NewRand(seed uint64) *Rand { return rng.New(seed) }

// The MRF model layer.
type (
	// Model is a first-order MRF with smoothness priors (paper Eq. 1).
	Model = mrf.Model
)

// Applications (paper §8.1).
type (
	// Segmentation labels pixels by intensity cluster (M <= 8).
	Segmentation = apps.Segmentation
	// Motion estimates a dense motion field over a (2R+1)^2 window.
	Motion = apps.MotionEstimation
	// Stereo assigns disparities to a rectified pair.
	Stereo = apps.StereoVision
	// Restoration denoises an image over quantized intensity levels
	// (Geman & Geman, the paper's ref [11]); supports the second-order
	// neighborhood extension.
	Restoration = apps.Restoration
	// App is the common application interface.
	App = apps.App
)

// Application constructors and helpers.
var (
	// NewSegmentation builds the segmentation app from an image and
	// label means (see KMeans1D).
	NewSegmentation = apps.NewSegmentation
	// NewMotion builds the motion app from two frames and a window
	// radius (3 = the paper's 7x7, 49 labels).
	NewMotion = apps.NewMotionEstimation
	// NewStereo builds the stereo app from a rectified pair.
	NewStereo = apps.NewStereoVision
	// NewRestoration builds the denoising app over nLevels intensities.
	NewRestoration = apps.NewRestoration
	// KMeans1D estimates segmentation label means from an image.
	KMeans1D = apps.KMeans1D
)

// Solver layer (internal/core).
type (
	// Solver runs MCMC inference for an application on a backend.
	Solver = core.Solver
	// Config selects the backend and chain parameters.
	Config = core.Config
	// Result carries the MAP estimate and diagnostics.
	Result = core.Result
	// Backend selects the sampling engine by registry index; prefer
	// selecting by name (WithBackendName / Config.BackendName).
	Backend = core.Backend
)

// Compatibility backend constants: aliases of the first five registry
// entries. The registry (Backends, WithBackendName) is the source of
// truth; newer backends — "spiking", "meanfield" — have no constant.
const (
	// SoftwareGibbs is the exact softmax Gibbs kernel.
	SoftwareGibbs = core.SoftwareGibbs
	// SoftwareFirstToFire races ideal exponential clocks (the RSU
	// principle without hardware quantization).
	SoftwareFirstToFire = core.SoftwareFirstToFire
	// Metropolis is the uniform-proposal MH kernel.
	Metropolis = core.Metropolis
	// RSU emulates the paper's RSU-G functional unit.
	RSU = core.RSU
	// PrototypeBackend drives the emulated §7 macro bench (2 labels).
	PrototypeBackend = core.Prototype
)

// Backend registry (internal/sampler): every sampling engine registers
// a named descriptor with declared capabilities, and solvers resolve
// names through it — the seam new backends plug into without touching
// core.
type (
	// SamplerBackend is one registered engine: name, capability
	// descriptor, per-solver instance construction.
	SamplerBackend = sampler.Backend
	// SamplerCapabilities declares what a backend supports: label-count
	// bounds, exactness, determinism, checkpoint and fault support.
	SamplerCapabilities = sampler.Capabilities
	// SpikingSpec tunes the spiking digital-neuron backend (comparator
	// bit width, tick length τ).
	SpikingSpec = spiking.Spec
	// MeanFieldSpec tunes the deterministic mean-field backend (damping
	// factor, fixed-point tolerance).
	MeanFieldSpec = meanfield.Spec
)

// Registry lookups.
var (
	// Backends returns the registered backend names in registry order.
	Backends = core.Backends
	// ParseBackend resolves a registered name to its Backend value;
	// unknown names wrap ErrInvalidConfig.
	ParseBackend = core.ParseBackend
	// LookupBackend returns the registered backend descriptor for a
	// name (capability introspection).
	LookupBackend = sampler.Lookup
)

// NewSolver builds a solver for an application.
var NewSolver = core.NewSolver

// ErrInvalidConfig is wrapped by every configuration-validation error
// from NewSolver and Config.Validate.
var ErrInvalidConfig = core.ErrInvalidConfig

// Crash-safe runtime (internal/checkpoint): durable snapshots,
// cancellation, and bit-exact resume. Arm Config.Checkpoint and call
// Solver.Solve with a cancellable context; a run killed at any sweep
// and resumed from its last checkpoint produces output byte-identical
// to an uninterrupted one.
type (
	// CheckpointSpec arms periodic durable snapshots and resume on a
	// Solver (Config.Checkpoint).
	CheckpointSpec = core.CheckpointSpec
	// Snapshot is one versioned, checksummed chain snapshot.
	Snapshot = checkpoint.Snapshot
	// SnapshotFingerprint identifies the run configuration a snapshot
	// belongs to.
	SnapshotFingerprint = checkpoint.Fingerprint
	// ChainCheckpointPolicy configures snapshots at the gibbs layer.
	ChainCheckpointPolicy = gibbs.CheckpointPolicy
)

// Checkpoint I/O and errors.
var (
	// SaveSnapshot writes a snapshot atomically (temp file + rename).
	SaveSnapshot = checkpoint.Save
	// LoadSnapshot reads and fully validates a snapshot.
	LoadSnapshot = checkpoint.Load
	// ErrSnapshotCorrupt marks a truncated or checksum-failed snapshot.
	ErrSnapshotCorrupt = checkpoint.ErrCorrupt
	// ErrSnapshotVersion marks a format-version skew.
	ErrSnapshotVersion = checkpoint.ErrVersion
	// ErrSnapshotMismatch marks a snapshot/configuration mismatch.
	ErrSnapshotMismatch = checkpoint.ErrMismatch
)

// Fault injection and graceful degradation (internal/fault, DESIGN.md
// §9): arm Config.Faults with a schedule and a policy, and the solver
// threads deterministic fault injection, online detection and the
// selected degradation response through the RSU sampling path.
type (
	// FaultOptions arms the fault subsystem on a Solver (Config.Faults)
	// or an accelerator run.
	FaultOptions = fault.Options
	// FaultPolicy selects the degradation response to a detection.
	FaultPolicy = fault.Policy
	// FaultSchedule is a parsed fault-injection schedule (ParseFaults).
	FaultSchedule = fault.Schedule
	// FaultAudit reconciles injected against detected faults; Result
	// carries one when faults were armed.
	FaultAudit = fault.Audit
	// FaultEvent is one structured online-detection record.
	FaultEvent = fault.Event
)

// Degradation policies.
const (
	// FaultPolicyNone detects but never reacts (the unprotected
	// baseline).
	FaultPolicyNone = fault.PolicyNone
	// FaultPolicyRemap rotates a spare RET circuit into the suspect's
	// lane slot.
	FaultPolicyRemap = fault.PolicyRemap
	// FaultPolicyResample redraws suspect samples a bounded number of
	// times.
	FaultPolicyResample = fault.PolicyResample
	// FaultPolicyQuarantine freezes the faulty unit's sites.
	FaultPolicyQuarantine = fault.PolicyQuarantine
	// FaultPolicyFallback reroutes the faulty unit to the exact CMOS
	// kernel.
	FaultPolicyFallback = fault.PolicyFallback
)

// Fault DSL helpers.
var (
	// ParseFaults parses the fault-schedule DSL (e.g.
	// "dead:unit=3,sweep=10;hot:rate=1e-3,storm=6").
	ParseFaults = fault.Parse
	// ParseFaultPolicy parses a policy name (none | remap | resample |
	// quarantine | fallback).
	ParseFaultPolicy = fault.ParsePolicy
)

// The RSU-G functional unit (paper §4–§6).
type (
	// Unit is an RSU-G sampling unit.
	Unit = rsu.Unit
	// UnitConfig configures an RSU-G (labels, width, weights, circuit).
	UnitConfig = rsu.Config
	// IntensityMap is the 256x4-bit energy-to-intensity LUT.
	IntensityMap = rsu.IntensityMap
	// SamplingMode selects ideal-exponential or photon-level TTFs.
	SamplingMode = rsu.SamplingMode
)

// RSU helpers.
var (
	// NewUnit constructs an RSU-G from a full configuration.
	NewUnit = rsu.New
	// BuildUnit constructs an RSU-G matched to an application.
	BuildUnit = apps.BuildUnit
	// BuildIntensityMap builds the LUT for an LED ladder + temperature.
	BuildIntensityMap = rsu.BuildIntensityMap
)

// RSU sampling modes.
const (
	// Ideal draws TTFs from the asymptotic exponential law (fast).
	Ideal = rsu.Ideal
	// Physical runs the photon-level RET simulation (slow, exact).
	Physical = rsu.Physical
)

// RET physics layer (paper §2.3).
type (
	// Circuit is a RET circuit: LED bank + network ensemble + SPAD.
	Circuit = ret.Circuit
	// Network is a RET network (CTMC over exciton positions).
	Network = ret.Network
)

// RET constructors.
var (
	// DefaultCircuit is the paper-literal binary-weighted design.
	DefaultCircuit = ret.DefaultCircuit
	// DefaultLadderCircuit is the high-dynamic-range geometric design.
	DefaultLadderCircuit = ret.DefaultLadderCircuit
)

// Architecture models (paper §8).
type (
	// Workload describes one application run for the timing models.
	Workload = arch.Workload
	// GPU is the calibrated GPU timing model.
	GPU = arch.GPU
	// Accelerator is the bandwidth-bound discrete accelerator.
	Accelerator = arch.Accelerator
	// PerformanceReport aggregates the modeled §8 numbers.
	PerformanceReport = core.PerformanceReport
)

// Architecture helpers.
var (
	// TitanX returns the GTX Titan X model of the evaluation.
	TitanX = arch.TitanX
	// DefaultAccelerator returns the 336 GB/s / 336-unit design point.
	DefaultAccelerator = arch.DefaultAccelerator
	// SegmentationWorkload/MotionWorkload/StereoWorkload build the
	// standard workloads at a given size.
	SegmentationWorkload = arch.Segmentation
	MotionWorkload       = arch.Motion
	StereoWorkload       = arch.Stereo
	// Performance returns modeled times/power/area for a workload.
	Performance = core.Performance
)

// Power and area models (paper Tables 3–4).
var (
	// RSUG1Power45 and RSUG1Power15 return the per-unit budgets.
	RSUG1Budget45 = func() power.Budget { return power.RSUG1Budget(power.N45) }
	RSUG1Budget15 = func() power.Budget { return power.RSUG1Budget(power.N15) }
)

// Prototype emulation (paper §7).
type (
	// Prototype is the emulated two-channel macro-scale RSU-G2.
	Prototype = prototype.RSUG2
)

// NewPrototype returns the default emulated bench.
var NewPrototype = prototype.New

// Chain options for users who drive internal/gibbs directly.
type (
	// ChainOptions configures an MCMC run at the gibbs layer.
	ChainOptions = gibbs.Options
	// ChainResult is the gibbs-layer result.
	ChainResult = gibbs.Result
)

// Chain diagnostics.
var (
	// EffectiveSampleSize estimates chain ESS from an energy trace.
	EffectiveSampleSize = gibbs.EffectiveSampleSize
	// IntegratedAutocorrTime estimates τ from a trace.
	IntegratedAutocorrTime = gibbs.IntegratedAutocorrTime
	// GelmanRubin computes R̂ over independent chains.
	GelmanRubin = gibbs.GelmanRubin
)

// Neighborhood structure (second-order MRF extension, paper §9).
type (
	// Neighborhood selects 4- or 8-connected cliques.
	Neighborhood = mrf.Neighborhood
)

// Neighborhoods.
const (
	// FirstOrder is the paper's 4-connected neighborhood.
	FirstOrder = mrf.FirstOrder
	// SecondOrder adds the four diagonal cliques (§9 extension).
	SecondOrder = mrf.SecondOrder
)

// Pipeline simulation (validates the §5 latency/throughput claims).
type (
	// PipelineConfig shapes a cycle-accurate RSU-G pipeline simulation.
	PipelineConfig = rsu.PipelineConfig
	// PipelineStats reports latency, throughput and stalls.
	PipelineStats = rsu.PipelineStats
)

// SimulatePipeline runs the cycle-stepped RSU-G pipeline model.
var SimulatePipeline = rsu.SimulatePipeline

// Chromophore wear-out (paper §9).
type (
	// AgingCircuit wraps a RET circuit with photobleaching wear-out.
	AgingCircuit = ret.AgingCircuit
	// Wearout parameterizes the photobleaching process.
	Wearout = ret.Wearout
)

// NewAgingCircuit wraps a circuit with a wear-out model.
var NewAgingCircuit = ret.NewAgingCircuit

// Staged accelerator (the §8.2 on-chip-storage design point).
type (
	// StagedAccelerator adds an SRAM frame store to the accelerator.
	StagedAccelerator = arch.StagedAccelerator
)

// DefaultStagedAccelerator returns the 24 MB / 4x-bandwidth design.
var DefaultStagedAccelerator = arch.DefaultStagedAccelerator

// Functional discrete-accelerator simulation (§6.2).
type (
	// AccelConfig shapes a functional accelerator run.
	AccelConfig = accel.Config
	// AccelStats reports simulated cycles and boundedness.
	AccelStats = accel.Stats
)

// Accelerator simulation helpers.
var (
	// RunAccelerator simulates the RSU-G array end to end: real
	// inference plus hardware-style cycle accounting.
	RunAccelerator = accel.Run
	// PaperAccelConfig is the §8.2 design point (336 units, 336 GB/s).
	PaperAccelConfig = accel.PaperConfig
)
