# Tier-1 flow for the RSU-G reproduction.
#
#   make build   compile everything
#   make vet     go vet over the module
#   make lint    rsulint static-analysis suite (determinism, bit-width,
#                RNG-ownership, ctx-flow, hot-allocation, checkpoint-field
#                and error-wrapping invariants) — must exit clean
#   make lint-escape  lint plus the compiler-assisted escape cross-check
#                of //rsulint:hot functions (slower: rebuilds with -m)
#   make fuzz-smoke   30s coverage-guided fuzz of the snapshot decoder
#   make test    full test suite
#   make race    race-detector pass over the whole module
#   make bench   sweep-engine micro-benchmarks + throughput report
#   make chaos   kill-and-recover harness (subprocess SIGKILL + resume)
#   make obs-smoke  recorder determinism + metrics-snapshot schema gate
#   make backends-smoke  approximate-sampler invariance tests + the
#                cross-backend Pareto sweep gated against BENCH_backends.json
#   make serve-smoke  end-to-end rsuserve drain/restart exercise
#   make serve-chaos  serving chaos harness (SIGKILL + resume) under -race
#   make migrate-chaos  two-node failover chaos matrix (primary SIGKILL,
#                standby takeover, fencing) ×8 plus one -race pass

GO ?= go

.PHONY: build vet lint lint-escape test race bench chaos sweep-report faults-report obs-smoke kernel-report bench-smoke backends-report backends-smoke fuzz-smoke serve-smoke serve-chaos migrate-chaos all

all: build vet lint test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific analyzers (cmd/rsulint): bitwidth, ckptfield, ctxflow,
# deadassign, detrand, errwrap, floateq, hotalloc, rngshare — plus stale
# //lint:ignore detection. Exit 1 on any finding — the tree stays
# lint-clean.
lint:
	$(GO) run ./cmd/rsulint ./...

# Lint plus the escape-analysis cross-check: rebuilds every package that
# contains a //rsulint:hot function with -gcflags=-m (fresh build cache)
# and fails if the compiler reports a heap escape inside a hot function
# or any same-package callee on its hot path.
lint-escape:
	$(GO) run ./cmd/rsulint -hot-escape ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench BenchmarkSweep -benchtime 1s ./internal/gibbs/

# Kill-and-recover chaos harness: SIGKILLs checkpointing subprocesses at
# randomized sweep boundaries, resumes each from the last durable
# snapshot, and requires byte-equality with the uninterrupted run.
chaos:
	$(GO) test -count=3 -run 'TestKillAndRecover' ./internal/checkpoint/chaostest/

# Regenerates the committed BENCH_sweep.json (pass SEED_NS to record a
# seed-tree baseline measurement).
sweep-report:
	$(GO) run ./cmd/paperbench -experiment sweep -sweepjson BENCH_sweep.json $(if $(SEED_NS),-sweepbaseline $(SEED_NS))

# Regenerates the committed BENCH_faults.json (fully deterministic —
# the CI faults-smoke job diffs a fresh run against it byte-for-byte).
faults-report:
	$(GO) run ./cmd/paperbench -experiment faults -faultsjson BENCH_faults.json

# Regenerates the committed BENCH_kernel.json (pass BASELINE_NS to
# record a pre-kernel same-machine reference ns/site).
kernel-report:
	$(GO) run ./cmd/rsubench -json BENCH_kernel.json $(if $(BASELINE_NS),-baseline $(BASELINE_NS))

# Kernel perf-regression gate: re-run the acceptance configuration and
# check the machine-portable invariants of the committed report
# (compiled-vs-closure speedup ratio within 5%, steady-state sweeps
# allocation-free).
bench-smoke:
	$(GO) run ./cmd/rsubench -quick -compare BENCH_kernel.json -threshold 5

# Regenerates the committed BENCH_backends.json (deterministic columns
# only change when a chain, knob or the energy model changes).
backends-report:
	$(GO) run ./cmd/paperbench -experiment backends -backendsjson BENCH_backends.json

# Backend-registry gate: the new approximate samplers' invariants
# (spiking W=1 == W=N byte-equality, mean-field fixed-point
# reproducibility, registry/enum equivalence), then the cross-backend
# Pareto sweep with its deterministic columns (label digests, accuracy,
# agreement, modeled energy) held to the committed BENCH_backends.json.
# ns/site is machine-dependent and never gated.
backends-smoke:
	$(GO) test ./internal/sampler/... -run 'TestWorkerInvariance|TestFixedPoint|TestRunReset|TestDistribution'
	$(GO) test ./internal/core/ -run 'TestBackendNameEquivalence|TestParseBackendRoundTrip|TestCapabilityChecks'
	$(GO) run ./cmd/paperbench -experiment backends -backendscompare BENCH_backends.json

# Coverage-guided fuzz of the snapshot decoder: 30 seconds of arbitrary
# bytes through Decode, asserting the typed-error contract (ErrCorrupt /
# ErrVersion only) and that every accepted input re-encodes to a
# canonical fixed point.
fuzz-smoke:
	$(GO) test -fuzz=FuzzCheckpointLoad -fuzztime=30s ./internal/checkpoint

# End-to-end serving exercise against the real binary: build
# cmd/rsuserve, start it with two tenants, submit jobs over HTTP,
# SIGTERM mid-flight (graceful drain checkpoints in-flight chains),
# restart on the same state directory, and require every accepted job
# to reach a terminal state with the admission gauges exported.
serve-smoke:
	bash scripts/serve-smoke.sh

# Serving chaos harness under the race detector: the test binary
# re-executes itself as a daemon, floods it from two tenants, SIGKILLs
# it at a seeded-random point, restarts at a different worker count,
# and requires every job to end completed / resumed-and-completed
# (digest-identical to an uninterrupted golden run) /
# deadline-exceeded-with-partial.
serve-chaos:
	$(GO) test -race -run 'TestServeChaosSIGKILLResume' ./internal/serve/

# Two-node failover chaos matrix: a standby and a replicating primary
# from the same self-exec harness, the primary SIGKILLed at a seeded-
# random replication boundary mid two-tenant stream. The standby must
# take over, finish every job digest-identical to an unkilled golden
# run at a different worker count, and fence the resurrected primary.
# Eight seeded repetitions, then one pass under the race detector.
migrate-chaos:
	$(GO) test -count=8 -run 'TestMigrateChaosFailover' ./internal/serve/
	$(GO) test -race -count=1 -run 'TestMigrateChaosFailover' ./internal/serve/

# Observability gate: run the recorder-overhead + determinism
# experiment (fails if an observed run diverges from an unobserved
# one), write a metrics snapshot, and schema-validate it.
obs-smoke:
	$(GO) run ./cmd/paperbench -experiment observed -metrics /tmp/obs-smoke.json
	$(GO) run ./cmd/obsvalidate /tmp/obs-smoke.json
