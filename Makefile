# Tier-1 flow for the RSU-G reproduction.
#
#   make build   compile everything
#   make test    full test suite
#   make race    race-detector pass over the concurrent packages
#   make bench   sweep-engine micro-benchmarks + throughput report

GO ?= go

.PHONY: build test race bench sweep-report all

all: build test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The sweep engine is the only concurrency in the repo; gibbs exercises
# the worker pool and rng the per-row stream splitting.
race:
	$(GO) test -race ./internal/gibbs/... ./internal/rng/...

bench:
	$(GO) test -run xxx -bench BenchmarkSweep -benchtime 1s ./internal/gibbs/

# Regenerates the committed BENCH_sweep.json (pass SEED_NS to record a
# seed-tree baseline measurement).
sweep-report:
	$(GO) run ./cmd/paperbench -experiment sweep -sweepjson BENCH_sweep.json $(if $(SEED_NS),-sweepbaseline $(SEED_NS))
