package rsugibbs

import (
	"context"
	"repro/internal/gibbs"
	"repro/internal/img"
	"repro/internal/mrf"
	"repro/internal/prototype"
)

// prototypeFactory returns the emulated RSU-G2 sampler factory for the
// Figure 7 benchmark.
func prototypeFactory() gibbs.Factory {
	return prototype.NewSampler(prototype.New())
}

// runChain is a thin wrapper so benchmarks can drive the gibbs layer
// directly without re-exporting it.
func runChain(m *mrf.Model, init *img.LabelMap, f gibbs.Factory, iters int, seed uint64) (*gibbs.Result, error) {
	return gibbs.Run(context.Background(), m, init, f, gibbs.Options{Iterations: iters, Schedule: gibbs.Raster}, seed)
}
