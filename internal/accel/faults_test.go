package accel

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/fault"
	"repro/internal/img"
)

// TestRunFaultyHealthyMatchesRun: an empty schedule with untripped
// monitors must consume the same RNG stream as the plain run —
// identical labelings and identical array timing.
func TestRunFaultyHealthyMatchesRun(t *testing.T) {
	app, _, unit := segSetup(t, 24, 24)
	cfg := PaperConfig(5, 20, 7)
	lm, mode, stats, err := Run(context.Background(), app, unit, cfg)
	if err != nil {
		t.Fatal(err)
	}
	flm, fmode, fstats, fs, err := RunFaulty(context.Background(), app, unit, cfg, fault.Options{Policy: fault.PolicyRemap})
	if err != nil {
		t.Fatal(err)
	}
	if !sameLabels(lm, flm) || !sameLabels(mode, fmode) {
		t.Error("fault-free RunFaulty diverged from Run")
	}
	if stats.Cycles != fstats.Cycles {
		t.Errorf("fault-free timing differs: %v vs %v cycles", stats.Cycles, fstats.Cycles)
	}
	if fs.FallbackSites != 0 || fs.SkippedSites != 0 || fs.Audit.Summary.Injected != 0 {
		t.Errorf("fault-free run degraded something: %+v", fs)
	}
}

// TestRunFaultyDeterministic: fixed seeds must give byte-identical
// audits and labelings across repeat runs.
func TestRunFaultyDeterministic(t *testing.T) {
	app, _, unit := segSetup(t, 24, 24)
	cfg := PaperConfig(5, 20, 7)
	opt := fault.Options{
		Schedule: "dead:unit=3,sweep=2;hot:rate=2e-3,storm=6",
		Seed:     11,
		Policy:   fault.PolicyRemap,
	}
	var ref []byte
	var refCycles float64
	for i := 0; i < 2; i++ {
		lm, _, stats, fs, err := RunFaulty(context.Background(), app, unit, cfg, opt)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := fs.Audit.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		buf.Write(labelBytes(lm))
		if ref == nil {
			ref, refCycles = buf.Bytes(), stats.Cycles
			if fs.Audit.Summary.Injected == 0 {
				t.Fatal("schedule injected nothing")
			}
			continue
		}
		if !bytes.Equal(ref, buf.Bytes()) || stats.Cycles != refCycles {
			t.Error("repeat run differs")
		}
	}
}

// TestRunFaultyDegradationTiming: quarantine frees array time while
// fallback pays control-core time — the accelerator-level timing model
// of the policy trade-off.
func TestRunFaultyDegradationTiming(t *testing.T) {
	app, _, unit := segSetup(t, 24, 24)
	cfg := PaperConfig(5, 24, 7)
	const schedule = "dead:unit=3,sweep=2;dead:unit=9,sweep=4"

	run := func(p fault.Policy) (Stats, FaultStats) {
		t.Helper()
		_, _, stats, fs, err := RunFaulty(context.Background(), app, unit, cfg, fault.Options{Schedule: schedule, Policy: p})
		if err != nil {
			t.Fatal(err)
		}
		if fs.Audit.Summary.Unaccounted != 0 {
			t.Fatalf("policy %v: unaccounted injections: %+v", p, fs.Audit.Summary)
		}
		return stats, fs
	}

	none, _ := run(fault.PolicyNone)
	quar, qfs := run(fault.PolicyQuarantine)
	fb, ffs := run(fault.PolicyFallback)

	if qfs.SkippedSites == 0 {
		t.Error("quarantine skipped nothing")
	}
	if quar.Cycles >= none.Cycles {
		t.Errorf("quarantine (%v cycles) should cost less than none (%v)", quar.Cycles, none.Cycles)
	}
	if ffs.FallbackSites == 0 || ffs.FallbackCycles <= 0 {
		t.Error("fallback rerouted nothing")
	}
	if fb.Cycles <= none.Cycles {
		t.Errorf("fallback (%v cycles) should cost more than none (%v)", fb.Cycles, none.Cycles)
	}
}

func sameLabels(a, b *img.LabelMap) bool {
	if a.W != b.W || a.H != b.H {
		return false
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			return false
		}
	}
	return true
}

func labelBytes(lm *img.LabelMap) []byte {
	out := make([]byte, len(lm.Labels))
	for i, l := range lm.Labels {
		out[i] = byte(l)
	}
	return out
}
