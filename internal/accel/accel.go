// Package accel is a functional simulator of the paper's discrete
// accelerator (§3, §6.2): an array of RSU-G units behind custom control
// logic that streams the image from DRAM, updates one checkerboard
// color at a time, and is designed so "the upper bound is dictated by
// memory bandwidth limitations".
//
// Unlike internal/arch (analytic bounds only), this simulator actually
// performs the inference — every pixel update goes through a real
// emulated RSU-G — while accounting cycles the way the hardware would:
// per color phase, the unit array sustains Units parallel evaluations
// pipelined at the unit's per-variable throughput, and the memory
// system delivers BytesPerPixel per site at MemBW. The phase time is
// the max of the two; tests verify the simulated totals converge to the
// §8.2 analytic bound whenever memory is the bottleneck.
package accel

import (
	"context"
	"fmt"

	"repro/internal/apps"
	"repro/internal/img"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/rsu"
)

// Config describes the accelerator organization.
type Config struct {
	// Units is the number of RSU-G units in the array (336 in the
	// paper's 336 GB/s design).
	Units int
	// ClockHz is the accelerator clock (1 GHz).
	ClockHz float64
	// MemBW is the DRAM bandwidth in bytes/s.
	MemBW float64
	// BytesPerPixel is the per-site DRAM traffic per iteration (5 for
	// segmentation, 54 for motion; §8.2).
	BytesPerPixel float64
	// Iterations is the MCMC iteration count.
	Iterations int
	// Seed drives the (deterministic) sampling.
	Seed uint64
	// Recorder optionally receives pipeline instrumentation: color-phase
	// spans, site/sweep counters, compute- vs memory-bound phase counts
	// and the unit's pipeline timing gauges. Nil records nothing; the
	// field never influences sampling and is excluded from Validate.
	Recorder obs.Recorder
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Units < 1 || c.ClockHz <= 0 || c.MemBW <= 0 || c.BytesPerPixel <= 0 || c.Iterations < 1 {
		return fmt.Errorf("accel: invalid config %+v", c)
	}
	return nil
}

// Stats reports the simulated run.
type Stats struct {
	// Cycles is the total simulated cycle count.
	Cycles float64
	// Seconds is Cycles / ClockHz.
	Seconds float64
	// ComputeBoundPhases and MemoryBoundPhases count which resource
	// limited each color phase.
	ComputeBoundPhases, MemoryBoundPhases int
	// AnalyticBoundSeconds is the §8.2 bytes/bandwidth lower bound for
	// the same run, for comparison.
	AnalyticBoundSeconds float64
}

// Run performs `cfg.Iterations` checkerboard sweeps of the application
// on the simulated accelerator and returns the final labeling, the
// per-site mode over the second half of the run (a marginal-MAP
// estimate), and the timing statistics. Cancellation is cooperative and
// checked between sweeps; on ctx cancel Run returns the state simulated
// so far (final labels, mode over completed post-half sweeps,
// accumulated cycle stats) together with an error wrapping ctx.Err().
func Run(ctx context.Context, a apps.App, unit *rsu.Unit, cfg Config) (*img.LabelMap, *img.LabelMap, Stats, error) {
	var stats Stats
	if err := cfg.Validate(); err != nil {
		return nil, nil, stats, err
	}
	m := a.Model()
	if err := m.Validate(); err != nil {
		return nil, nil, stats, err
	}
	lm := a.InitLabels()
	src := rng.New(cfg.Seed)

	// Per-variable pipelined cost of one unit, in cycles: the initiation
	// interval is steps×interval (EvalTiming without the constant drain,
	// which is amortized across the wave).
	timing := unit.EvalTiming()
	perVarCycles := float64(timing.Steps)
	if r := unit.Config().Replicas; r < rsu.QuiescenceCycles {
		perVarCycles *= float64((rsu.QuiescenceCycles + r - 1) / r)
	}
	drain := float64(timing.Cycles) - perVarCycles + 1

	rec := cfg.Recorder
	obs.Gauge(rec, "accel.pipeline.eval_cycles", float64(timing.Cycles))
	obs.Gauge(rec, "accel.pipeline.eval_steps", float64(timing.Steps))
	obs.Gauge(rec, "accel.pipeline.per_var_cycles", perVarCycles)
	obs.Gauge(rec, "accel.pipeline.drain_cycles", drain)

	counts := make([]uint32, m.W*m.H*m.M)
	half := cfg.Iterations / 2

	bytesPerSecond := cfg.MemBW
	var stopErr error
	for it := 0; it < cfg.Iterations; it++ {
		if err := ctx.Err(); err != nil {
			stopErr = fmt.Errorf("accel: run stopped before sweep %d/%d: %w", it, cfg.Iterations, err)
			break
		}
		for color := 0; color < m.Hood.Colors(); color++ {
			endPhase := obs.Span(rec, "accel.color_phase")
			sites := 0
			for y := 0; y < m.H; y++ {
				for x := 0; x < m.W; x++ {
					if m.Hood.ColorOf(x, y) != color {
						continue
					}
					sites++
					in := a.RSUInput(lm, x, y)
					label, _ := unit.Sample(in, src)
					lm.Set(x, y, int(label))
				}
			}
			// Phase timing: Units-wide array, pipelined issue.
			computeCycles := float64(sites)/float64(cfg.Units)*perVarCycles + drain
			memoryCycles := float64(sites) * cfg.BytesPerPixel / bytesPerSecond * cfg.ClockHz
			if computeCycles >= memoryCycles {
				stats.ComputeBoundPhases++
				stats.Cycles += computeCycles
				obs.Add(rec, "accel.phases.compute_bound", 1)
			} else {
				stats.MemoryBoundPhases++
				stats.Cycles += memoryCycles
				obs.Add(rec, "accel.phases.memory_bound", 1)
			}
			obs.Add(rec, "accel.sites", int64(sites))
			endPhase()
		}
		obs.Add(rec, "accel.sweeps", 1)
		if it >= half {
			for i, l := range lm.Labels {
				counts[i*m.M+int(l)]++
			}
		}
	}
	stats.Seconds = stats.Cycles / cfg.ClockHz
	stats.AnalyticBoundSeconds = float64(m.W*m.H) * float64(cfg.Iterations) * cfg.BytesPerPixel / cfg.MemBW

	mode := img.NewLabelMap(m.W, m.H)
	for i := 0; i < m.W*m.H; i++ {
		best, bestC := 0, uint32(0)
		for l := 0; l < m.M; l++ {
			if c := counts[i*m.M+l]; c > bestC {
				best, bestC = l, c
			}
		}
		mode.Labels[i] = uint8(best)
	}
	return lm, mode, stats, stopErr
}

// RunCtx simulates the accelerator with explicit cancellation.
//
// Deprecated: Run now takes the context as its first argument; RunCtx
// is an alias kept for one release so existing callers keep compiling.
func RunCtx(ctx context.Context, a apps.App, unit *rsu.Unit, cfg Config) (*img.LabelMap, *img.LabelMap, Stats, error) {
	return Run(ctx, a, unit, cfg)
}

// PaperConfig returns the §8.2 design point for a workload: 336 units,
// 1 GHz, 336 GB/s, with the workload's per-pixel traffic.
func PaperConfig(bytesPerPixel float64, iterations int, seed uint64) Config {
	return Config{
		Units: 336, ClockHz: 1e9, MemBW: 336e9,
		BytesPerPixel: bytesPerPixel,
		Iterations:    iterations,
		Seed:          seed,
	}
}
