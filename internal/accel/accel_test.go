package accel

import (
	"context"
	"math"
	"testing"

	"repro/internal/apps"
	"repro/internal/gibbs"
	"repro/internal/img"
	"repro/internal/rng"
	"repro/internal/rsu"
)

func segSetup(t testing.TB, w, h int) (*apps.Segmentation, img.Scene, *rsu.Unit) {
	t.Helper()
	scene := img.BlobScene(w, h, 5, 6, rng.New(1))
	app, err := apps.NewSegmentation(scene.Image, scene.Means, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	unit, err := apps.BuildUnit(app, nil, 1, rsu.Ideal)
	if err != nil {
		t.Fatal(err)
	}
	return app, scene, unit
}

func TestConfigValidate(t *testing.T) {
	good := PaperConfig(5, 10, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mutate := range []func(*Config){
		func(c *Config) { c.Units = 0 },
		func(c *Config) { c.ClockHz = 0 },
		func(c *Config) { c.MemBW = 0 },
		func(c *Config) { c.BytesPerPixel = 0 },
		func(c *Config) { c.Iterations = 0 },
	} {
		cfg := good
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config accepted: %+v", cfg)
		}
	}
}

// TestAcceleratorProducesGoodLabeling: the functional simulation must
// actually solve the inference problem.
func TestAcceleratorProducesGoodLabeling(t *testing.T) {
	app, scene, unit := segSetup(t, 40, 40)
	_, mode, stats, err := Run(context.Background(), app, unit, PaperConfig(5, 50, 2))
	if err != nil {
		t.Fatal(err)
	}
	if rate := mode.MislabelRate(scene.Truth); rate > 0.10 {
		t.Fatalf("accelerator mislabel rate %v", rate)
	}
	if stats.Cycles <= 0 || stats.Seconds <= 0 {
		t.Fatalf("bad stats %+v", stats)
	}
}

// TestMemoryBoundConvergesToAnalyticBound: with the paper's design point
// and a compute-rich array, large images make every phase memory bound
// and the simulated time approaches bytes/bandwidth (§8.2's claim that
// the accelerator's "upper bound is dictated by memory bandwidth").
func TestMemoryBoundConvergesToAnalyticBound(t *testing.T) {
	app, _, unit := segSetup(t, 96, 96)
	cfg := PaperConfig(5, 10, 3)
	// Make memory clearly the bottleneck: slow DRAM relative to the
	// array's compute throughput.
	cfg.MemBW = 1e9
	_, _, stats, err := Run(context.Background(), app, unit, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MemoryBoundPhases == 0 || stats.ComputeBoundPhases != 0 {
		t.Fatalf("expected all phases memory bound: %+v", stats)
	}
	if ratio := stats.Seconds / stats.AnalyticBoundSeconds; ratio < 0.999 || ratio > 1.01 {
		t.Fatalf("memory-bound time %v vs analytic bound %v (ratio %v)",
			stats.Seconds, stats.AnalyticBoundSeconds, ratio)
	}
}

// TestComputeBoundWhenStarvedOfUnits: with one unit the array is
// compute bound and much slower than the bandwidth bound.
func TestComputeBoundWhenStarvedOfUnits(t *testing.T) {
	app, _, unit := segSetup(t, 48, 48)
	cfg := PaperConfig(5, 5, 4)
	cfg.Units = 1
	_, _, stats, err := Run(context.Background(), app, unit, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ComputeBoundPhases == 0 {
		t.Fatalf("expected compute-bound phases: %+v", stats)
	}
	if stats.Seconds < 2*stats.AnalyticBoundSeconds {
		t.Fatalf("single-unit time %v suspiciously close to bandwidth bound %v",
			stats.Seconds, stats.AnalyticBoundSeconds)
	}
}

// TestUnitsScalingReducesTime: doubling the array shortens compute-bound
// runs and never lengthens them.
func TestUnitsScalingReducesTime(t *testing.T) {
	app, _, unit := segSetup(t, 48, 48)
	prev := math.Inf(1)
	for _, units := range []int{1, 4, 16, 64} {
		cfg := PaperConfig(5, 5, 5)
		cfg.Units = units
		_, _, stats, err := Run(context.Background(), app, unit, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Seconds > prev*1.001 {
			t.Fatalf("time increased with more units: %v -> %v at %d units", prev, stats.Seconds, units)
		}
		prev = stats.Seconds
	}
}

// TestAcceleratorMatchesGibbsRSURun: the functional result must agree
// statistically with the gibbs-layer RSU chain (same kernel, different
// driver).
func TestAcceleratorMatchesGibbsRSURun(t *testing.T) {
	app, scene, unit := segSetup(t, 32, 32)
	_, mode, _, err := Run(context.Background(), app, unit, PaperConfig(5, 60, 6))
	if err != nil {
		t.Fatal(err)
	}
	hw, err := apps.RunRSU(context.Background(), app, unit, app.InitLabels(), gibbs.Options{
		Iterations: 60, BurnIn: 30, Schedule: gibbs.Checkerboard, TrackMode: true,
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if agree := mode.Agreement(hw.MAP); agree < 0.93 {
		t.Fatalf("accelerator/gibbs agreement %v", agree)
	}
	_ = scene
}
