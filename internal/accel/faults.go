package accel

import (
	"context"
	"fmt"

	"repro/internal/apps"
	"repro/internal/fault"
	"repro/internal/img"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/rsu"
)

// Control-core cost of one CMOS-fallback site evaluation, per §2.2 /
// Table 1: ~100 cycles of parameterization plus ~100 of exponentiation
// per label, plus the categorical draw. Fallback sites run on the
// accelerator's scalar control processor, serially with the array.
const (
	fallbackCyclesPerLabel = 200
	fallbackSampleCycles   = 588
)

// FaultStats extends Stats with the fault subsystem's accounting for a
// RunFaulty invocation.
type FaultStats struct {
	// RSUSites, FallbackSites and SkippedSites partition the site
	// evaluations: drawn on the (possibly degraded) RSU array, rerouted
	// to the control core's exact CMOS kernel, or frozen by quarantine.
	RSUSites, FallbackSites, SkippedSites uint64
	// FallbackCycles is the control-core time spent on rerouted sites
	// (already included in Stats.Cycles).
	FallbackCycles float64
	// Audit reconciles injected against detected faults.
	Audit *fault.Audit
}

// RunFaulty is Run with the fault-injection subsystem in the loop: the
// schedule in fopt is compiled over the image geometry (fault unit =
// image row), every TTF measurement feeds the online monitors, and the
// selected policy degrades around detections. Quarantined rows stop
// consuming array or memory time; fallback rows are evaluated by the
// scalar control core at software cost, serial with the array — the
// timing model of graceful degradation. Cancellation is cooperative and
// checked between sweeps; on ctx cancel RunFaulty returns the state
// simulated so far — including the audit of the sweeps that did run —
// together with an error wrapping ctx.Err().
func RunFaulty(ctx context.Context, a apps.App, unit *rsu.Unit, cfg Config, fopt fault.Options) (*img.LabelMap, *img.LabelMap, Stats, FaultStats, error) {
	var stats Stats
	var fstats FaultStats
	if err := cfg.Validate(); err != nil {
		return nil, nil, stats, fstats, err
	}
	m := a.Model()
	if err := m.Validate(); err != nil {
		return nil, nil, stats, fstats, err
	}
	sched, err := fault.Parse(fopt.Schedule)
	if err != nil {
		return nil, nil, stats, fstats, err
	}
	sched.Seed = fopt.Seed
	tl, err := sched.Compile(m.H, cfg.Iterations, m.W, unit.Config().Replicas)
	if err != nil {
		return nil, nil, stats, fstats, err
	}
	rec := cfg.Recorder
	if fopt.Recorder == nil {
		fopt.Recorder = rec
	}
	sess := fault.NewSession(tl, fopt)

	lm := a.InitLabels()
	src := rng.New(cfg.Seed)

	timing := unit.EvalTiming()
	perVarCycles := float64(timing.Steps)
	if r := unit.Config().Replicas; r < rsu.QuiescenceCycles {
		perVarCycles *= float64((rsu.QuiescenceCycles + r - 1) / r)
	}
	drain := float64(timing.Cycles) - perVarCycles + 1
	perFallbackCycles := float64(m.M*fallbackCyclesPerLabel + fallbackSampleCycles)

	counts := make([]uint32, m.W*m.H*m.M)
	half := cfg.Iterations / 2
	var rateBuf []float64

	var stopErr error
	for it := 0; it < cfg.Iterations; it++ {
		if err := ctx.Err(); err != nil {
			stopErr = fmt.Errorf("accel: faulty run stopped before sweep %d/%d: %w", it, cfg.Iterations, err)
			break
		}
		sess.BeginSweep(it)
		for color := 0; color < m.Hood.Colors(); color++ {
			endPhase := obs.Span(rec, "accel.color_phase")
			rsuSites, fbSites := 0, 0
			for y := 0; y < m.H; y++ {
				uc := sess.Unit(y)
				for x := 0; x < m.W; x++ {
					if m.Hood.ColorOf(x, y) != color {
						continue
					}
					switch uc.Directive() {
					case fault.DirectiveSkip:
						fstats.SkippedSites++
						continue
					case fault.DirectiveFallback:
						fbSites++
						fstats.FallbackSites++
						rateBuf = m.ConditionalRates(rateBuf, lm, x, y)
						lm.Set(x, y, src.CategoricalRates(rateBuf))
						continue
					}
					in := a.RSUInput(lm, x, y)
				sample:
					for tries := 0; ; tries++ {
						label, _ := unit.SampleFaulty(in, src, uc)
						switch uc.AfterSample(tries) {
						case fault.ReactAccept:
							rsuSites++
							fstats.RSUSites++
							lm.Set(x, y, int(label))
							break sample
						case fault.ReactResample:
							continue
						default: // ReactReject
							if uc.Directive() == fault.DirectiveFallback {
								fbSites++
								fstats.FallbackSites++
								rateBuf = m.ConditionalRates(rateBuf, lm, x, y)
								lm.Set(x, y, src.CategoricalRates(rateBuf))
							} else {
								rsuSites++
								fstats.RSUSites++
							}
							break sample
						}
					}
				}
			}
			computeCycles := float64(rsuSites)/float64(cfg.Units)*perVarCycles + drain
			memoryCycles := float64(rsuSites) * cfg.BytesPerPixel / cfg.MemBW * cfg.ClockHz
			if computeCycles >= memoryCycles {
				stats.ComputeBoundPhases++
				stats.Cycles += computeCycles
				obs.Add(rec, "accel.phases.compute_bound", 1)
			} else {
				stats.MemoryBoundPhases++
				stats.Cycles += memoryCycles
				obs.Add(rec, "accel.phases.memory_bound", 1)
			}
			fb := float64(fbSites) * perFallbackCycles
			stats.Cycles += fb
			fstats.FallbackCycles += fb
			obs.Add(rec, "accel.sites", int64(rsuSites))
			obs.Add(rec, "accel.fallback_sites", int64(fbSites))
			endPhase()
		}
		obs.Add(rec, "accel.sweeps", 1)
		if it >= half {
			for i, l := range lm.Labels {
				counts[i*m.M+int(l)]++
			}
		}
	}
	stats.Seconds = stats.Cycles / cfg.ClockHz
	stats.AnalyticBoundSeconds = float64(m.W*m.H) * float64(cfg.Iterations) * cfg.BytesPerPixel / cfg.MemBW

	mode := img.NewLabelMap(m.W, m.H)
	for i := 0; i < m.W*m.H; i++ {
		best, bestC := 0, uint32(0)
		for l := 0; l < m.M; l++ {
			if c := counts[i*m.M+l]; c > bestC {
				best, bestC = l, c
			}
		}
		mode.Labels[i] = uint8(best)
	}
	fstats.Audit = sess.Audit()
	fstats.Audit.Schedule = fopt.Schedule
	return lm, mode, stats, fstats, stopErr
}

// RunFaultyCtx simulates the degraded accelerator with explicit
// cancellation.
//
// Deprecated: RunFaulty now takes the context as its first argument;
// RunFaultyCtx is an alias kept for one release so existing callers
// keep compiling.
func RunFaultyCtx(ctx context.Context, a apps.App, unit *rsu.Unit, cfg Config, fopt fault.Options) (*img.LabelMap, *img.LabelMap, Stats, FaultStats, error) {
	return RunFaulty(ctx, a, unit, cfg, fopt)
}
