// Package fixed implements the limited-precision arithmetic of the RSU-G
// datapath (paper §4.4 and §5.2).
//
// The hardware represents random-variable labels as 6-bit unsigned
// integers (M <= 64 labels). A 6-bit label is interpreted either as a
// scalar (only the low 3 bits used) or as a packed 2-D vector
// [x1, x2] with 3 bits per component (e.g. a motion vector within a
// 7x7 search window, offset-encoded). Clique potential energies are
// 8-bit with saturating addition; QD-LED intensity codes are 4-bit.
package fixed

import "fmt"

// Bit widths of the RSU-G datapath.
const (
	LabelBits     = 6 // random-variable labels: M <= 64
	ScalarBits    = 3 // scalar labels / vector components
	EnergyBits    = 8 // summed clique potential energies
	IntensityBits = 4 // QD-LED intensity code (4 binary LEDs)

	MaxLabel     = 1<<LabelBits - 1     // 63
	MaxScalar    = 1<<ScalarBits - 1    // 7
	MaxEnergy    = 1<<EnergyBits - 1    // 255
	MaxIntensity = 1<<IntensityBits - 1 // 15
	MaxLabels    = 1 << LabelBits       // 64 possible labels
)

// Label is a 6-bit random-variable value as carried on the RSU-G
// datapath. The zero value is label 0.
type Label uint8

// NewLabel returns v as a Label, panicking if v exceeds 6 bits.
// Construction is the validation point: downstream datapath code may
// assume every Label is in range.
func NewLabel(v int) Label {
	if v < 0 || v > MaxLabel {
		panic(fmt.Sprintf("fixed: label %d outside 6-bit range", v))
	}
	return Label(v)
}

// ClampLabel saturates v into the 6-bit label range.
func ClampLabel(v int) Label {
	if v < 0 {
		return 0
	}
	if v > MaxLabel {
		return MaxLabel
	}
	return Label(v)
}

// Vec splits a 6-bit label into its two 3-bit vector components
// [x1, x2] (paper §5.2: "the 6-bit value is split into 3 bits for x1
// and 3 bits for x2"). x1 occupies the high 3 bits.
func (l Label) Vec() (x1, x2 uint8) {
	return uint8(l) >> ScalarBits, uint8(l) & MaxScalar
}

// Scalar interprets the label as a scalar: only the low 3 bits are used
// and the second component is zero (paper §5.2).
func (l Label) Scalar() uint8 { return uint8(l) & MaxScalar }

// PackVec builds a 6-bit vector label from two 3-bit components.
// It panics if either component exceeds 3 bits.
func PackVec(x1, x2 uint8) Label {
	if x1 > MaxScalar || x2 > MaxScalar {
		panic(fmt.Sprintf("fixed: vector component (%d,%d) outside 3-bit range", x1, x2))
	}
	return Label(x1<<ScalarBits | x2)
}

// Energy is an 8-bit clique-potential energy value.
type Energy uint8

// Intensity is a 4-bit QD-LED intensity code: the index of one of the
// 16 LED drive levels of the intensity-mapping pipeline stage (§5.2).
// The zero value is code 0 (conventionally the dimmest/dark rung of a
// ladder, though ladders choose their own code order).
type Intensity uint8

// NewIntensity returns v as an Intensity, panicking if v exceeds 4 bits.
// Like NewLabel, construction is the validation point: downstream
// datapath code may assume every Intensity is in range.
func NewIntensity(v int) Intensity {
	if v < 0 || v > MaxIntensity {
		panic(fmt.Sprintf("fixed: intensity code %d outside 4-bit range", v))
	}
	return Intensity(v)
}

// ClampIntensity saturates v into the 4-bit intensity range.
func ClampIntensity(v int) Intensity {
	if v < 0 {
		return 0
	}
	if v > MaxIntensity {
		return MaxIntensity
	}
	return Intensity(v)
}

// SatAddEnergy adds energies with saturation at 255, matching the
// fixed-width adders of the energy-calculation pipeline stage.
func SatAddEnergy(a, b Energy) Energy {
	s := uint16(a) + uint16(b)
	if s > MaxEnergy {
		return MaxEnergy
	}
	return Energy(s)
}

// SumEnergies saturating-sums a set of energies (the five clique
// potentials of Eq. 1: one singleton + four doubletons).
func SumEnergies(es ...Energy) Energy {
	var acc Energy
	for _, e := range es {
		acc = SatAddEnergy(acc, e)
	}
	return acc
}

// SqDiff3 computes the squared difference of two 3-bit values; the
// result fits in 6 bits (max 49).
func SqDiff3(a, b uint8) Energy {
	d := int(a&MaxScalar) - int(b&MaxScalar)
	return Energy(d * d)
}

// DoubletonEnergy computes the smoothness doubleton clique potential of
// Eq. (2) between two labels: the sum of per-component squared
// differences, each weighted by w (an integer weight pre-scaled into the
// fixed-point domain). For scalar labels pass vector=false, which uses
// only the low 3 bits and treats the second component as zero.
func DoubletonEnergy(a, b Label, vector bool, w uint8) Energy {
	if !vector {
		return mulSat(SqDiff3(a.Scalar(), b.Scalar()), w)
	}
	a1, a2 := a.Vec()
	b1, b2 := b.Vec()
	return SatAddEnergy(mulSat(SqDiff3(a1, b1), w), mulSat(SqDiff3(a2, b2), w))
}

func mulSat(e Energy, w uint8) Energy {
	p := uint32(e) * uint32(w)
	if p > MaxEnergy {
		return MaxEnergy
	}
	return Energy(p)
}

// SingletonEnergy computes the data term as the weighted squared
// difference of two 6-bit data values, saturated to 8 bits (paper §4.3:
// "the squared difference between two data values"). Any scalar weights
// are assumed pre-factored into the inputs per §5.2; weight w covers the
// remaining integer scale.
func SingletonEnergy(d1, d2 uint8, w uint8) Energy {
	diff := int(d1&MaxLabel) - int(d2&MaxLabel)
	p := uint32(diff*diff) * uint32(w)
	if p > MaxEnergy {
		return MaxEnergy
	}
	return Energy(p)
}

// Quantize6 maps an 8-bit sample value (0..255) onto the 6-bit data
// range (0..63) by dropping the two low bits, as when staging image
// intensities into the RSU-G data registers.
func Quantize6(v uint8) uint8 { return v >> 2 }

// Dequantize6 maps a 6-bit value back to the center of its 8-bit bucket.
func Dequantize6(v uint8) uint8 { return v<<2 | 0x2 }

// QuantizeEnergy maps a non-negative float energy into the 8-bit energy
// domain with saturation; scale sets the fixed-point resolution
// (energy units per float unit).
func QuantizeEnergy(e float64, scale float64) Energy {
	if e <= 0 {
		return 0
	}
	q := int(e*scale + 0.5)
	if q > MaxEnergy {
		return MaxEnergy
	}
	return Energy(q)
}

// CollapseEqualLabels implements the §4.4 recommendation: when multiple
// labels always produce energies within eps of one another they have
// (near-)equal selection probability, so they should be collapsed into a
// single representative before execution. Given per-label canonical
// energies, it returns a mapping from original label index to collapsed
// label index and the number of collapsed classes. Labels are grouped
// greedily in index order.
func CollapseEqualLabels(energies []float64, eps float64) (mapping []int, classes int) {
	mapping = make([]int, len(energies))
	reps := []float64{}
	for i, e := range energies {
		found := -1
		for j, r := range reps {
			if diff := e - r; diff <= eps && diff >= -eps {
				found = j
				break
			}
		}
		if found < 0 {
			reps = append(reps, e)
			found = len(reps) - 1
		}
		mapping[i] = found
	}
	return mapping, len(reps)
}
