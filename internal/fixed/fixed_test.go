package fixed

import (
	"testing"
	"testing/quick"
)

func TestNewLabelBounds(t *testing.T) {
	if l := NewLabel(0); l != 0 {
		t.Fatalf("NewLabel(0) = %d", l)
	}
	if l := NewLabel(63); l != 63 {
		t.Fatalf("NewLabel(63) = %d", l)
	}
	for _, v := range []int{-1, 64, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLabel(%d) did not panic", v)
				}
			}()
			NewLabel(v)
		}()
	}
}

func TestClampLabel(t *testing.T) {
	cases := []struct {
		in   int
		want Label
	}{{-5, 0}, {0, 0}, {30, 30}, {63, 63}, {64, 63}, {999, 63}}
	for _, c := range cases {
		if got := ClampLabel(c.in); got != c.want {
			t.Errorf("ClampLabel(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestVecPackRoundTrip(t *testing.T) {
	f := func(a, b uint8) bool {
		x1, x2 := a&MaxScalar, b&MaxScalar
		l := PackVec(x1, x2)
		g1, g2 := l.Vec()
		return g1 == x1 && g2 == x2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackVecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PackVec(8,0) did not panic")
		}
	}()
	PackVec(8, 0)
}

func TestScalarUsesLowBits(t *testing.T) {
	l := PackVec(5, 3) // bits 101 011
	if s := l.Scalar(); s != 3 {
		t.Fatalf("Scalar() = %d, want low 3 bits = 3", s)
	}
}

func TestSatAddEnergy(t *testing.T) {
	if got := SatAddEnergy(100, 100); got != 200 {
		t.Errorf("100+100 = %d", got)
	}
	if got := SatAddEnergy(200, 100); got != 255 {
		t.Errorf("saturation failed: %d", got)
	}
	if got := SatAddEnergy(255, 255); got != 255 {
		t.Errorf("saturation failed: %d", got)
	}
}

// Property: saturating addition is commutative, monotone, and never
// exceeds MaxEnergy.
func TestSatAddProperties(t *testing.T) {
	f := func(a, b, c uint8) bool {
		ea, eb := Energy(a), Energy(b)
		s := SatAddEnergy(ea, eb)
		if s != SatAddEnergy(eb, ea) {
			return false
		}
		if uint16(s) > MaxEnergy {
			return false
		}
		// monotonicity: adding more never reduces the sum
		return SatAddEnergy(s, Energy(c)) >= s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSumEnergies(t *testing.T) {
	if got := SumEnergies(10, 20, 30); got != 60 {
		t.Errorf("SumEnergies = %d", got)
	}
	if got := SumEnergies(100, 100, 100); got != 255 {
		t.Errorf("SumEnergies saturation = %d", got)
	}
	if got := SumEnergies(); got != 0 {
		t.Errorf("empty SumEnergies = %d", got)
	}
}

func TestSqDiff3(t *testing.T) {
	if got := SqDiff3(7, 0); got != 49 {
		t.Errorf("SqDiff3(7,0) = %d", got)
	}
	if got := SqDiff3(3, 3); got != 0 {
		t.Errorf("SqDiff3(3,3) = %d", got)
	}
	if got := SqDiff3(2, 5); got != 9 {
		t.Errorf("SqDiff3(2,5) = %d", got)
	}
	// high bits are masked
	if got := SqDiff3(0xFF, 0x07); got != 0 {
		t.Errorf("SqDiff3 mask failed: %d", got)
	}
}

func TestDoubletonEnergyScalar(t *testing.T) {
	a, b := NewLabel(2), NewLabel(6)
	if got := DoubletonEnergy(a, b, false, 1); got != 16 {
		t.Errorf("scalar doubleton = %d, want 16", got)
	}
	if got := DoubletonEnergy(a, b, false, 3); got != 48 {
		t.Errorf("weighted doubleton = %d, want 48", got)
	}
	if got := DoubletonEnergy(a, a, false, 9); got != 0 {
		t.Errorf("self doubleton = %d", got)
	}
}

func TestDoubletonEnergyVector(t *testing.T) {
	a := PackVec(1, 2)
	b := PackVec(4, 6)
	// (4-1)^2 + (6-2)^2 = 9 + 16 = 25
	if got := DoubletonEnergy(a, b, true, 1); got != 25 {
		t.Errorf("vector doubleton = %d, want 25", got)
	}
	// saturation with large weight
	if got := DoubletonEnergy(a, b, true, 40); got != 255 {
		t.Errorf("vector doubleton saturation = %d", got)
	}
}

// Property: doubleton energy is symmetric — the smoothness prior is an
// undirected potential.
func TestDoubletonSymmetry(t *testing.T) {
	f := func(a, b, w uint8, vector bool) bool {
		la, lb := Label(a&MaxLabel), Label(b&MaxLabel)
		return DoubletonEnergy(la, lb, vector, w) == DoubletonEnergy(lb, la, vector, w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: doubleton energy is zero iff the used label bits agree.
func TestDoubletonIdentity(t *testing.T) {
	f := func(a uint8, vector bool, w uint8) bool {
		la := Label(a & MaxLabel)
		return DoubletonEnergy(la, la, vector, w) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSingletonEnergy(t *testing.T) {
	if got := SingletonEnergy(10, 14, 1); got != 16 {
		t.Errorf("singleton = %d, want 16", got)
	}
	if got := SingletonEnergy(0, 63, 1); got != 255 {
		t.Errorf("singleton saturation = %d, want 255", got)
	}
	if got := SingletonEnergy(5, 5, 200); got != 0 {
		t.Errorf("identical data singleton = %d", got)
	}
}

func TestQuantize6RoundTrip(t *testing.T) {
	f := func(v uint8) bool {
		q := Quantize6(v)
		if q > 63 {
			return false
		}
		d := Dequantize6(q)
		// Dequantization error is at most 2 intensity steps.
		diff := int(v) - int(d)
		if diff < 0 {
			diff = -diff
		}
		return diff <= 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Quantize6 is monotone non-decreasing.
func TestQuantize6Monotone(t *testing.T) {
	f := func(a, b uint8) bool {
		if a > b {
			a, b = b, a
		}
		return Quantize6(a) <= Quantize6(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeEnergy(t *testing.T) {
	if got := QuantizeEnergy(-3, 1); got != 0 {
		t.Errorf("negative energy = %d", got)
	}
	if got := QuantizeEnergy(10.4, 1); got != 10 {
		t.Errorf("QuantizeEnergy(10.4) = %d", got)
	}
	if got := QuantizeEnergy(10.6, 1); got != 11 {
		t.Errorf("QuantizeEnergy(10.6) = %d", got)
	}
	if got := QuantizeEnergy(1000, 1); got != 255 {
		t.Errorf("saturation = %d", got)
	}
	if got := QuantizeEnergy(2, 16); got != 32 {
		t.Errorf("scaled = %d", got)
	}
}

func TestCollapseEqualLabels(t *testing.T) {
	mapping, classes := CollapseEqualLabels([]float64{1, 1.05, 5, 5.01, 9}, 0.1)
	if classes != 3 {
		t.Fatalf("classes = %d, want 3", classes)
	}
	want := []int{0, 0, 1, 1, 2}
	for i := range want {
		if mapping[i] != want[i] {
			t.Fatalf("mapping = %v, want %v", mapping, want)
		}
	}
}

func TestCollapseEqualLabelsDistinct(t *testing.T) {
	mapping, classes := CollapseEqualLabels([]float64{1, 2, 3}, 0.5)
	if classes != 3 {
		t.Fatalf("classes = %d", classes)
	}
	for i, m := range mapping {
		if m != i {
			t.Fatalf("mapping = %v", mapping)
		}
	}
}

func TestCollapseEqualLabelsEmpty(t *testing.T) {
	mapping, classes := CollapseEqualLabels(nil, 1)
	if len(mapping) != 0 || classes != 0 {
		t.Fatalf("empty collapse: %v %d", mapping, classes)
	}
}

// TestDoubletonEnergyMatchesFloatReference: exhaustively cross-check the
// fixed-point doubleton against a float reference over the whole 6-bit
// label space (both interpretations, weight 1).
func TestDoubletonEnergyMatchesFloatReference(t *testing.T) {
	ref := func(a, b Label, vector bool) int {
		if !vector {
			d := int(a&MaxScalar) - int(b&MaxScalar)
			return d * d
		}
		a1, a2 := a.Vec()
		b1, b2 := b.Vec()
		d1 := int(a1) - int(b1)
		d2 := int(a2) - int(b2)
		return d1*d1 + d2*d2
	}
	for a := 0; a < 64; a++ {
		for b := 0; b < 64; b++ {
			la, lb := Label(a), Label(b)
			for _, vector := range []bool{false, true} {
				want := ref(la, lb, vector)
				if want > MaxEnergy {
					want = MaxEnergy
				}
				if got := DoubletonEnergy(la, lb, vector, 1); int(got) != want {
					t.Fatalf("a=%d b=%d vector=%v: %d != %d", a, b, vector, got, want)
				}
			}
		}
	}
}
