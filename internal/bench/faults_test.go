package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"testing"

	"repro/internal/fault"
)

func reportJSON(t *testing.T) []byte {
	t.Helper()
	rep, err := runFaults(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(data, '\n')
}

// TestFaultsReportDeterministic: the whole report — labels, cycle
// counts, audit summaries — is a pure function of the fixed seeds.
func TestFaultsReportDeterministic(t *testing.T) {
	a := reportJSON(t)
	b := reportJSON(t)
	if !bytes.Equal(a, b) {
		t.Error("two runFaults invocations produced different reports")
	}
}

// TestFaultsAcceptance pins the tentpole acceptance criterion: at the
// 1e-3 fault/sample point every protective policy holds label accuracy
// within 5% of the fault-free baseline, the unprotected baseline
// measurably degrades, and the audit accounts for every injection.
func TestFaultsAcceptance(t *testing.T) {
	rep, err := runFaults(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	a := rep.Acceptance
	if a.Rate != 1e-3 {
		t.Fatalf("acceptance evaluated at %g, want 1e-3", a.Rate)
	}
	if !a.ProtectedWithin5Pct {
		t.Errorf("worst protective policy loses %.2f%% accuracy, budget is 5%%", a.MaxProtectedLossPct)
	}
	if !a.NoneDegrades {
		t.Errorf("no-policy loses %.2f%% vs worst protected %.2f%% — not measurably degraded",
			a.NoneLossPct, a.MaxProtectedLossPct)
	}
	// Points are rate-major in faultPolicies order; 1e-3 is rate index 1.
	points := rep.Points[1*len(faultPolicies) : 2*len(faultPolicies)]
	for _, p := range points {
		if p.Audit.Unaccounted != 0 {
			t.Errorf("policy %s at rate %g: %d unaccounted injections (injected %d, detected %d, masked %d, late %d)",
				p.Policy, p.Rate, p.Audit.Unaccounted, p.Audit.Injected,
				p.Audit.Detected, p.Audit.Masked, p.Audit.Late)
		}
		if p.Audit.Detected+p.Audit.Masked+p.Audit.Late != p.Audit.Injected {
			t.Errorf("policy %s: buckets do not partition the injections: %+v", p.Policy, p.Audit)
		}
	}
	// Degradation timing sanity at the acceptance rate: quarantine must
	// be cheaper than leaving faults in place, fallback more expensive.
	var none, quarantine, fallback FaultPoint
	for _, p := range points {
		switch p.Policy {
		case fault.PolicyNone.String():
			none = p
		case fault.PolicyQuarantine.String():
			quarantine = p
		case fault.PolicyFallback.String():
			fallback = p
		}
	}
	if !(quarantine.Seconds < none.Seconds && none.Seconds < fallback.Seconds) {
		t.Errorf("timing ordering violated: quarantine %.3g, none %.3g, fallback %.3g seconds",
			quarantine.Seconds, none.Seconds, fallback.Seconds)
	}
}

// TestFaultsGolden diffs a freshly generated report against the
// committed BENCH_faults.json — the determinism gate for the degraded
// path (the CI faults-smoke job runs the same comparison through
// paperbench). Regenerate with:
//
//	go run ./cmd/paperbench -experiment faults -faultsjson BENCH_faults.json
func TestFaultsGolden(t *testing.T) {
	golden, err := os.ReadFile("../../BENCH_faults.json")
	if err != nil {
		t.Fatalf("missing committed golden: %v", err)
	}
	got := reportJSON(t)
	if !bytes.Equal(got, golden) {
		t.Error("report drifted from committed BENCH_faults.json; regenerate with " +
			"`go run ./cmd/paperbench -experiment faults -faultsjson BENCH_faults.json` " +
			"and review the diff")
	}
}
