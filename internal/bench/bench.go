// Package bench is the experiment harness: it regenerates every table
// and figure of the paper's evaluation as formatted text (plus PGM
// images for Figure 7) and records paper-vs-measured comparisons.
// cmd/paperbench is a thin CLI over this package; the root-level Go
// benchmarks reuse the same entry points.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// WriteTo renders the table with aligned columns.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Comparison records one paper-vs-measured data point for
// EXPERIMENTS.md-style reporting.
type Comparison struct {
	Metric   string
	Paper    float64
	Measured float64
}

// RelDiff returns |measured-paper|/|paper| (infinite for paper==0).
func (c Comparison) RelDiff() float64 {
	if c.Paper == 0 {
		if c.Measured == 0 {
			return 0
		}
		return 1e308
	}
	d := (c.Measured - c.Paper) / c.Paper
	if d < 0 {
		d = -d
	}
	return d
}

// FormatComparisons renders a comparison list as a table.
func FormatComparisons(title string, cs []Comparison, w io.Writer) error {
	t := Table{Title: title, Header: []string{"metric", "paper", "measured", "rel.diff"}}
	for _, c := range cs {
		t.AddRow(c.Metric,
			fmt.Sprintf("%.4g", c.Paper),
			fmt.Sprintf("%.4g", c.Measured),
			fmt.Sprintf("%.1f%%", 100*c.RelDiff()))
	}
	_, err := t.WriteTo(w)
	return err
}
