package bench

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/gibbs"
)

// checkpointSweeps is the chain length of one timed run: long enough
// that an every-10-sweeps policy fires twice per run, short enough that
// testing.Benchmark converges quickly.
const checkpointSweeps = 20

// CheckpointMeasurement is one timed configuration of the checkpoint
// overhead experiment.
type CheckpointMeasurement struct {
	Config      string  `json:"config"`
	NsPerSweep  float64 `json:"ns_per_sweep"`
	NsPerSite   float64 `json:"ns_per_site"`
	SnapshotLen int     `json:"snapshot_bytes,omitempty"`
}

// measureCheckpointed times checkpointSweeps-sweep exact-Gibbs runs on
// the acceptance grid (256x256, M=16, compiled, checkerboard), with a
// durable every-N-sweeps checkpoint policy when everySweeps > 0.
func measureCheckpointed(ctx context.Context, everySweeps int, path string) (CheckpointMeasurement, error) {
	model, init := sweepModel(sweepGridW, sweepGridH, 16)
	if err := model.Compile(); err != nil {
		return CheckpointMeasurement{}, err
	}
	opt := gibbs.Options{
		Iterations: checkpointSweeps,
		Schedule:   gibbs.Checkerboard,
		Workers:    runtime.GOMAXPROCS(0),
	}
	name := "no checkpoints"
	if everySweeps > 0 {
		opt.Checkpoint = &gibbs.CheckpointPolicy{
			EverySweeps: everySweeps,
			Sink:        func(s *checkpoint.Snapshot) error { return checkpoint.Save(path, s) },
		}
		name = fmt.Sprintf("checkpoint every %d sweeps", everySweeps)
	}
	var runErr error
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gibbs.Run(ctx, model, init, gibbs.NewExactGibbs(), opt, 7); err != nil {
				runErr = err
				b.FailNow()
			}
		}
	})
	if runErr != nil {
		return CheckpointMeasurement{}, runErr
	}
	meas := CheckpointMeasurement{
		Config:     name,
		NsPerSweep: float64(r.NsPerOp()) / checkpointSweeps,
		NsPerSite:  float64(r.NsPerOp()) / checkpointSweeps / float64(sweepGridW*sweepGridH),
	}
	if path != "" {
		if fi, err := os.Stat(path); err == nil {
			meas.SnapshotLen = int(fi.Size())
		}
	}
	return meas, nil
}

// Checkpoint measures the wall-clock overhead of the durable-snapshot
// policy on the acceptance configuration (exact-Gibbs checkerboard,
// 256x256, M=16, compiled): a run checkpointing every 10 sweeps vs the
// same run with checkpoints off. The acceptance bound for the
// every-10-sweeps policy is < 5% (ISSUE 4); the experiment also
// verifies the written snapshot round-trips through Load. ctx cancels
// cooperatively between (and, via gibbs.Run, inside) the timed
// configurations.
func Checkpoint(ctx context.Context, w io.Writer) error {
	dir, err := os.MkdirTemp("", "ckpt-bench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "bench.ckpt")

	base, err := measureCheckpointed(ctx, 0, "")
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("bench: checkpoint experiment stopped: %w", err)
	}
	every10, err := measureCheckpointed(ctx, 10, path)
	if err != nil {
		return err
	}
	// The durable artifact the overhead pays for must actually load.
	snap, err := checkpoint.Load(path)
	if err != nil {
		return fmt.Errorf("bench: written snapshot does not load: %w", err)
	}

	t := Table{
		Title: fmt.Sprintf("Checkpoint overhead (exact Gibbs, %dx%d, M=16, compiled, %d sweeps/run, %d worker(s))",
			sweepGridW, sweepGridH, checkpointSweeps, runtime.GOMAXPROCS(0)),
		Header: []string{"Config", "ns/sweep", "ns/site"},
	}
	for _, m := range []CheckpointMeasurement{base, every10} {
		t.AddRow(m.Config, fmt.Sprintf("%.0f", m.NsPerSweep), fmt.Sprintf("%.2f", m.NsPerSite))
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	overhead := (every10.NsPerSweep/base.NsPerSweep - 1) * 100
	fmt.Fprintf(w, "snapshot: %d bytes at sweep %d (validated round-trip)\n", every10.SnapshotLen, snap.Sweep)
	fmt.Fprintf(w, "every-10-sweeps overhead: %.2f%% (acceptance bound: < 5%%)\n", overhead)
	return nil
}
