package bench

import (
	"strings"
	"testing"
)

// TestMarkPareto pins the frontier logic on a hand-built task slice:
// dominated points cleared, frontier points set, exact ties both kept.
func TestMarkPareto(t *testing.T) {
	points := []BackendPoint{
		{Backend: "a", Accuracy: 0.99, EnergyNJPerSite: 4000}, // dominated by b
		{Backend: "b", Accuracy: 0.99, EnergyNJPerSite: 10},   // frontier
		{Backend: "c", Accuracy: 0.95, EnergyNJPerSite: 1},    // frontier (cheapest)
		{Backend: "d", Accuracy: 0.94, EnergyNJPerSite: 1},    // dominated by c
		{Backend: "e", Accuracy: 0.95, EnergyNJPerSite: 1},    // exact tie with c: kept
	}
	markPareto(points)
	want := map[string]bool{"a": false, "b": true, "c": true, "d": false, "e": true}
	for _, p := range points {
		if p.Pareto != want[p.Backend] {
			t.Errorf("point %s: pareto=%v, want %v", p.Backend, p.Pareto, want[p.Backend])
		}
	}
}

// TestCompareBackendsReports checks the gate flags exactly the
// deterministic columns: digest, accuracy, agreement, energy, Pareto
// membership and missing points — and ignores ns/site.
func TestCompareBackendsReports(t *testing.T) {
	base := func() *BackendsReport {
		return &BackendsReport{Points: []BackendPoint{
			{Task: "seg", Backend: "a", Accuracy: 0.5, AgreementVsExact: 1, EnergyNJPerSite: 7, Digest: "d1", NsPerSite: 100, Pareto: true},
			{Task: "seg", Backend: "s", Config: "bits=4", Accuracy: 0.4, AgreementVsExact: 0.9, EnergyNJPerSite: 1, Digest: "d2", NsPerSite: 50},
		}}
	}
	if bad := CompareBackendsReports(base(), base()); len(bad) != 0 {
		t.Fatalf("identical reports flagged: %v", bad)
	}
	// ns/site is machine-dependent: never compared.
	cur := base()
	cur.Points[0].NsPerSite = 9999
	if bad := CompareBackendsReports(base(), cur); len(bad) != 0 {
		t.Fatalf("ns/site drift flagged: %v", bad)
	}
	mutations := []struct {
		name   string
		mutate func(*BackendsReport)
		want   string
	}{
		{"digest", func(r *BackendsReport) { r.Points[0].Digest = "dX" }, "digest"},
		{"accuracy", func(r *BackendsReport) { r.Points[1].Accuracy += 1e-9 }, "accuracy"},
		{"agreement", func(r *BackendsReport) { r.Points[1].AgreementVsExact -= 1e-9 }, "agreement"},
		{"energy", func(r *BackendsReport) { r.Points[0].EnergyNJPerSite += 1e-9 }, "energy"},
		{"pareto", func(r *BackendsReport) { r.Points[0].Pareto = false }, "Pareto"},
		{"missing", func(r *BackendsReport) { r.Points = r.Points[:1] }, "missing"},
	}
	for _, m := range mutations {
		cur := base()
		m.mutate(cur)
		bad := CompareBackendsReports(base(), cur)
		if len(bad) != 1 || !strings.Contains(bad[0], m.want) {
			t.Errorf("%s mutation: got %v, want one finding containing %q", m.name, bad, m.want)
		}
	}
}
