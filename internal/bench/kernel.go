package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"repro/internal/gibbs"
	"repro/internal/img"
	"repro/internal/mrf"
	"repro/internal/sampler"
)

// This file is the fixed kernel-benchmark suite behind cmd/rsubench:
// exact-Gibbs sweep throughput over a grid of (size × labels ×
// backend) configurations, with steady-state allocation counts and
// process RSS, serialized to BENCH_kernel.json so successive trees can
// be compared (rsubench -compare) and CI can gate on regressions.

// KernelMeasurement is one fixed-suite configuration sample.
type KernelMeasurement struct {
	Grid    string `json:"grid"`
	Labels  int    `json:"labels"`
	Backend string `json:"backend"` // "closure" or "compiled" (packed kernel)

	NsPerSite   float64 `json:"ns_per_site"`
	SitesPerSec float64 `json:"sites_per_sec"`
	// AllocsPerSweep / BytesPerSweep are *steady-state* marginal costs:
	// the allocation delta between a long and a short run divided by
	// the extra sweeps, so one-time setup (engine, RNG streams, label
	// clone) cancels out. The compiled packed path must hold this at
	// zero — the CI gate checks it machine-independently.
	AllocsPerSweep float64 `json:"allocs_per_sweep"`
	BytesPerSweep  float64 `json:"bytes_per_sweep"`
}

// KernelReport is the machine-readable output of the kernel suite
// (the committed BENCH_kernel.json artifact).
type KernelReport struct {
	Suite    string `json:"suite"` // "full" or "quick"
	Schedule string `json:"schedule"`
	Workers  int    `json:"workers"`
	// Sampler names the registry backend the suite ran on. Empty means
	// "software-gibbs" (the suite's historical default), so committed
	// reports from before the field existed stay valid.
	Sampler string `json:"sampler,omitempty"`
	GoOS    string `json:"goos"`
	GoArch  string `json:"goarch"`
	NumCPU  int    `json:"num_cpu"`
	// BaselineNsPerSite, when positive, records the acceptance
	// configuration (256x256, M=16, compiled) throughput of the
	// pre-kernel tree, measured on the same machine and injected via
	// rsubench -baseline.
	BaselineNsPerSite float64             `json:"baseline_ns_per_site,omitempty"`
	Results           []KernelMeasurement `json:"results"`
	// SpeedupPackedVsClosure compares compiled vs closure sites/sec on
	// the acceptance configuration. It is a within-tree ratio, so it
	// transfers across machines far better than absolute ns/site —
	// the quick CI gate checks it rather than wall-clock numbers.
	SpeedupPackedVsClosure float64 `json:"speedup_packed_vs_closure"`
	// SpeedupPackedVsBaseline compares the packed kernel against
	// BaselineNsPerSite (0 when no baseline was recorded).
	SpeedupPackedVsBaseline float64 `json:"speedup_packed_vs_baseline,omitempty"`
	// RSSBytes is the process resident set after the suite ran.
	RSSBytes uint64 `json:"rss_bytes"`
}

// kernelConfig is one suite entry.
type kernelConfig struct {
	w, h, m  int
	compiled bool
}

// acceptance configuration: the 256x256 M=16 compiled checkerboard
// sweep every speedup claim in this repo is anchored to.
const acceptW, acceptH, acceptM = 256, 256, 16

func kernelSuite(quick bool) []kernelConfig {
	if quick {
		return []kernelConfig{
			{acceptW, acceptH, acceptM, false},
			{acceptW, acceptH, acceptM, true},
		}
	}
	var cfgs []kernelConfig
	for _, wh := range [][2]int{{128, 128}, {256, 256}} {
		for _, m := range []int{2, 16, 64} {
			for _, compiled := range []bool{false, true} {
				cfgs = append(cfgs, kernelConfig{wh[0], wh[1], m, compiled})
			}
		}
	}
	return cfgs
}

// kernelFactory resolves the suite's sampler through the registry: an
// empty name keeps the historical exact-Gibbs kernel, anything else is
// built bare-model (no application), so hardware-emulation backends
// that need one (rsu, prototype with faults) report their own clear
// errors. The factory is rebuilt per model because stateful samplers
// (meanfield) bind to the grid they were constructed against.
func kernelFactory(name string, model *mrf.Model, init *img.LabelMap) (gibbs.Factory, error) {
	if name == "" {
		return gibbs.NewExactGibbs(), nil
	}
	be, ok := sampler.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("bench: unknown sampler %q (known: %s)", name, strings.Join(sampler.Names(), ", "))
	}
	caps := be.Caps()
	if model.M < caps.MinLabels || (caps.MaxLabels > 0 && model.M > caps.MaxLabels) {
		return nil, fmt.Errorf("bench: sampler %s supports %d..%d labels, suite configuration has %d",
			name, caps.MinLabels, caps.MaxLabels, model.M)
	}
	inst, err := be.New(sampler.BuildSpec{Model: model, Init: init})
	if err != nil {
		return nil, err
	}
	return inst.Factory(), nil
}

// measureKernel times one configuration and measures its steady-state
// per-sweep allocation cost.
func measureKernel(ctx context.Context, cfg kernelConfig, samplerName string) (KernelMeasurement, error) {
	model, init := sweepModel(cfg.w, cfg.h, cfg.m)
	if cfg.compiled {
		if err := model.Compile(); err != nil {
			return KernelMeasurement{}, err
		}
	}
	factory, err := kernelFactory(samplerName, model, init)
	if err != nil {
		return KernelMeasurement{}, err
	}
	opt := gibbs.Options{Iterations: 1, Schedule: gibbs.Checkerboard, Workers: 1}
	var runErr error
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gibbs.Run(ctx, model, init, factory, opt, 7); err != nil {
				runErr = err
				b.FailNow()
			}
		}
	})
	if runErr != nil {
		return KernelMeasurement{}, runErr
	}
	allocs, bytes, err := steadyAllocsPerSweep(ctx, cfg, samplerName)
	if err != nil {
		return KernelMeasurement{}, err
	}
	sites := float64(cfg.w * cfg.h)
	nsPerSite := float64(r.NsPerOp()) / sites
	backend := "closure"
	if cfg.compiled {
		backend = "compiled"
	}
	return KernelMeasurement{
		Grid:           fmt.Sprintf("%dx%d", cfg.w, cfg.h),
		Labels:         cfg.m,
		Backend:        backend,
		NsPerSite:      nsPerSite,
		SitesPerSec:    1e9 / nsPerSite,
		AllocsPerSweep: allocs,
		BytesPerSweep:  bytes,
	}, nil
}

// steadyAllocsPerSweep runs a short and a long chain and divides the
// allocation-count delta by the extra sweeps: run setup cancels, so
// the result is the marginal cost of one more sweep (0 for the packed
// kernel path).
func steadyAllocsPerSweep(ctx context.Context, cfg kernelConfig, samplerName string) (allocs, bytes float64, err error) {
	model, init := sweepModel(cfg.w, cfg.h, cfg.m)
	if cfg.compiled {
		if err := model.Compile(); err != nil {
			return 0, 0, err
		}
	}
	factory, err := kernelFactory(samplerName, model, init)
	if err != nil {
		return 0, 0, err
	}
	run := func(iters int) (uint64, uint64, error) {
		opt := gibbs.Options{Iterations: iters, Schedule: gibbs.Checkerboard, Workers: 1}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		if _, err := gibbs.Run(ctx, model, init, factory, opt, 7); err != nil {
			return 0, 0, err
		}
		runtime.ReadMemStats(&after)
		return after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc, nil
	}
	const short, long = 4, 20
	a1, b1, err := run(short)
	if err != nil {
		return 0, 0, err
	}
	a2, b2, err := run(long)
	if err != nil {
		return 0, 0, err
	}
	extra := float64(long - short)
	// A GC between ReadMemStats calls can re-fill the scratch pool and
	// make the long run allocate marginally *less* than the short one;
	// clamp at zero rather than reporting a negative cost.
	if a2 > a1 {
		allocs = float64(a2-a1) / extra
	}
	if b2 > b1 {
		bytes = float64(b2-b1) / extra
	}
	return allocs, bytes, nil
}

// processRSS returns the current resident set size in bytes, falling
// back to the Go runtime's Sys counter where /proc is unavailable.
func processRSS() uint64 {
	if data, err := os.ReadFile("/proc/self/status"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if rest, ok := strings.CutPrefix(line, "VmRSS:"); ok {
				fields := strings.Fields(rest)
				if len(fields) >= 1 {
					if kb, err := strconv.ParseUint(fields[0], 10, 64); err == nil {
						return kb << 10
					}
				}
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Sys
}

// RunKernelSuite executes the fixed kernel suite and derives the
// headline ratios. baselineNsPerSite, when positive, is recorded as
// the pre-kernel same-machine reference. samplerName selects a
// registry backend for the sweeps; empty runs the historical default
// (software-gibbs / exact Gibbs).
func RunKernelSuite(ctx context.Context, quick bool, baselineNsPerSite float64, samplerName string) (*KernelReport, error) {
	suite := "full"
	if quick {
		suite = "quick"
	}
	rep := &KernelReport{
		Suite:             suite,
		Schedule:          "checkerboard",
		Workers:           1,
		Sampler:           samplerName,
		GoOS:              runtime.GOOS,
		GoArch:            runtime.GOARCH,
		NumCPU:            runtime.NumCPU(),
		BaselineNsPerSite: baselineNsPerSite,
	}
	for _, cfg := range kernelSuite(quick) {
		meas, err := measureKernel(ctx, cfg, samplerName)
		if err != nil {
			return nil, err
		}
		rep.Results = append(rep.Results, meas)
	}
	accept := fmt.Sprintf("%dx%d", acceptW, acceptH)
	var closure, compiled float64
	for _, r := range rep.Results {
		if r.Grid == accept && r.Labels == acceptM {
			if r.Backend == "closure" {
				closure = r.SitesPerSec
			} else {
				compiled = r.SitesPerSec
			}
		}
	}
	if closure > 0 {
		rep.SpeedupPackedVsClosure = compiled / closure
	}
	if baselineNsPerSite > 0 {
		rep.SpeedupPackedVsBaseline = compiled / (1e9 / baselineNsPerSite)
	}
	rep.RSSBytes = processRSS()
	return rep, nil
}

// WriteKernelReport renders rep as a table on w and, when jsonPath is
// non-empty, writes the JSON artifact.
func WriteKernelReport(w io.Writer, rep *KernelReport, jsonPath string) error {
	samplerName := rep.Sampler
	if samplerName == "" {
		samplerName = "exact Gibbs"
	}
	t := Table{
		Title:  fmt.Sprintf("Kernel suite (%s, %s, %s, %d worker(s))", rep.Suite, samplerName, rep.Schedule, rep.Workers),
		Header: []string{"Grid", "M", "Backend", "ns/site", "sites/sec", "allocs/sweep"},
	}
	for _, r := range rep.Results {
		t.AddRow(r.Grid, fmt.Sprintf("%d", r.Labels), r.Backend,
			fmt.Sprintf("%.1f", r.NsPerSite), fmt.Sprintf("%.0f", r.SitesPerSec),
			fmt.Sprintf("%.1f", r.AllocsPerSweep))
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "packed vs closure (256x256 M=16): %.2fx\n", rep.SpeedupPackedVsClosure)
	if rep.SpeedupPackedVsBaseline > 0 {
		fmt.Fprintf(w, "packed vs pre-kernel baseline (%.1f ns/site): %.2fx\n",
			rep.BaselineNsPerSite, rep.SpeedupPackedVsBaseline)
	}
	fmt.Fprintf(w, "process RSS: %.1f MiB\n", float64(rep.RSSBytes)/(1<<20))
	if jsonPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", jsonPath)
	return nil
}

// LoadKernelReport reads a KernelReport JSON artifact.
func LoadKernelReport(path string) (*KernelReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &KernelReport{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	return rep, nil
}

// CompareKernelReports checks new against old configuration by
// configuration and returns the list of regressions:
//
//   - ns/site more than thresholdPct percent worse (assumes both
//     reports come from the same machine — the file-vs-file mode);
//   - steady-state allocs/sweep that grew by more than one allocation
//     (machine-independent).
//
// An empty slice means no regression. Configurations present on only
// one side are skipped: the suite may grow between trees.
func CompareKernelReports(ref, cur *KernelReport, thresholdPct float64) []string {
	type key struct {
		grid    string
		labels  int
		backend string
	}
	olds := make(map[key]KernelMeasurement, len(ref.Results))
	for _, r := range ref.Results {
		olds[key{r.Grid, r.Labels, r.Backend}] = r
	}
	var bad []string
	for _, r := range cur.Results {
		o, ok := olds[key{r.Grid, r.Labels, r.Backend}]
		if !ok {
			continue
		}
		if o.NsPerSite > 0 {
			pct := (r.NsPerSite - o.NsPerSite) / o.NsPerSite * 100
			if pct > thresholdPct {
				bad = append(bad, fmt.Sprintf("%s M=%d %s: ns/site %.1f -> %.1f (+%.1f%% > +%.1f%%)",
					r.Grid, r.Labels, r.Backend, o.NsPerSite, r.NsPerSite, pct, thresholdPct))
			}
		}
		if r.AllocsPerSweep > o.AllocsPerSweep+1 {
			bad = append(bad, fmt.Sprintf("%s M=%d %s: allocs/sweep %.1f -> %.1f",
				r.Grid, r.Labels, r.Backend, o.AllocsPerSweep, r.AllocsPerSweep))
		}
	}
	return bad
}

// GateKernelReport is the CI smoke gate: it re-runs the quick suite on
// the current tree and checks the *machine-portable* invariants of the
// committed reference — the packed-vs-closure speedup ratio (within
// thresholdPct percent) and the packed path's steady-state allocation
// freedom — rather than absolute wall-clock numbers, which do not
// transfer between the benchmark machine and a CI runner.
func GateKernelReport(ctx context.Context, w io.Writer, ref *KernelReport, thresholdPct float64) error {
	rep, err := RunKernelSuite(ctx, true, 0, ref.Sampler)
	if err != nil {
		return err
	}
	if err := WriteKernelReport(w, rep, ""); err != nil {
		return err
	}
	var bad []string
	if ref.SpeedupPackedVsClosure > 0 {
		floor := ref.SpeedupPackedVsClosure * (1 - thresholdPct/100)
		if rep.SpeedupPackedVsClosure < floor {
			bad = append(bad, fmt.Sprintf("packed-vs-closure speedup %.2fx below floor %.2fx (reference %.2fx - %.1f%%)",
				rep.SpeedupPackedVsClosure, floor, ref.SpeedupPackedVsClosure, thresholdPct))
		}
	}
	for _, r := range rep.Results {
		if r.Backend == "compiled" && r.AllocsPerSweep > 1 {
			bad = append(bad, fmt.Sprintf("%s M=%d compiled: %.1f allocs/sweep, want steady-state 0",
				r.Grid, r.Labels, r.AllocsPerSweep))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("kernel bench gate failed:\n  %s", strings.Join(bad, "\n  "))
	}
	fmt.Fprintln(w, "kernel bench gate: OK")
	return nil
}
