package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/accel"
	"repro/internal/apps"
	"repro/internal/arch"
	"repro/internal/fault"
	"repro/internal/img"
	"repro/internal/rng"
	"repro/internal/rsu"
)

// The fault-sweep experiment: rate × policy over the functional
// accelerator simulation, with the analytic arch.DegradationModel
// curves alongside. Every input is a fixed constant, every model is
// deterministic, so the whole report — labels, cycle counts, audit
// summaries — is byte-reproducible across runs, worker counts and
// hosts. That is what lets the committed BENCH_faults.json double as
// the CI determinism golden for the degraded path.
const (
	faultGridW, faultGridH = 48, 48
	faultBlobs             = 5
	faultIterations        = 40
	faultChainSeed         = 31
	faultScheduleSeed      = 131
)

// faultRates is the swept per-site-sample fault arrival probability.
// 1e-3 is the acceptance point: protective policies must hold label
// accuracy within 5% of fault-free there while no-policy visibly
// degrades.
var faultRates = []float64{1e-4, 1e-3, 1e-2}

// analyticRates extends the sweep downward for the closed-form
// arch.DegradationModel curves: the analytic workload runs ~25x more
// site-samples per unit than the 48x48 functional simulation, so the
// interesting transition (spares absorbing arrivals before remap
// saturates into fallback) sits at much lower per-sample rates.
var analyticRates = []float64{1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2}

// faultPolicies is the policy axis, unprotected baseline first.
var faultPolicies = []fault.Policy{
	fault.PolicyNone, fault.PolicyRemap, fault.PolicyResample,
	fault.PolicyQuarantine, fault.PolicyFallback,
}

// faultSchedule builds the mixed-kind schedule for a total arrival
// rate: mostly structural dead circuits, plus dark-count storms, a
// stuck intensity bit, and a rare unit-wide register wrap — one clause
// per taxonomy branch so every monitor class is exercised.
func faultSchedule(rate float64) string {
	return fmt.Sprintf("dead:rate=%g;hot:rate=%g,storm=6;stuck:rate=%g,bit=3,val=0;wrap:rate=%g",
		0.4*rate, 0.3*rate, 0.2*rate, 0.1*rate)
}

// FaultPoint is one (rate, policy) cell of the fault sweep.
type FaultPoint struct {
	Rate     float64 `json:"rate"`
	Policy   string  `json:"policy"`
	Schedule string  `json:"schedule"`
	// MislabelRate is the marginal-MAP mislabel rate vs ground truth;
	// AccuracyLossPct the relative accuracy loss against the fault-free
	// baseline (100 × (acc_base − acc) / acc_base).
	MislabelRate    float64 `json:"mislabel_rate"`
	AccuracyLossPct float64 `json:"accuracy_loss_pct"`
	// Seconds is the simulated run time; Slowdown the factor over the
	// fault-free run (quarantine can dip below 1: frozen rows stop
	// consuming array and memory time).
	Seconds  float64 `json:"seconds"`
	Slowdown float64 `json:"slowdown"`
	// Site partition: RSU array, CMOS control-core fallback, frozen.
	RSUSites      uint64 `json:"rsu_sites"`
	FallbackSites uint64 `json:"fallback_sites"`
	SkippedSites  uint64 `json:"skipped_sites"`
	// Audit is the injected-vs-detected reconciliation roll-up.
	Audit fault.Summary `json:"audit"`
}

// FaultAcceptance is the report's self-check at the acceptance rate:
// every protective policy within 5% relative accuracy of fault-free
// while the unprotected baseline measurably degrades (loses at least
// one percentage point more than the worst protective policy).
type FaultAcceptance struct {
	Rate                float64 `json:"rate"`
	NoneLossPct         float64 `json:"none_loss_pct"`
	MaxProtectedLossPct float64 `json:"max_protected_loss_pct"`
	ProtectedWithin5Pct bool    `json:"protected_within_5pct"`
	NoneDegrades        bool    `json:"none_degrades"`
}

// FaultReport is the machine-readable output of the fault experiment
// (written to BENCH_faults.json by paperbench -experiment faults).
type FaultReport struct {
	Grid         string    `json:"grid"`
	Labels       int       `json:"labels"`
	Iterations   int       `json:"iterations"`
	ChainSeed    uint64    `json:"chain_seed"`
	ScheduleSeed uint64    `json:"schedule_seed"`
	Rates        []float64 `json:"rates"`
	// Fault-free baseline from the same accelerator simulation.
	BaselineMislabel float64 `json:"baseline_mislabel"`
	BaselineSeconds  float64 `json:"baseline_seconds"`
	// Points is the functional sweep, rate-major, policy order of
	// faultPolicies.
	Points []FaultPoint `json:"points"`
	// Acceptance is the 1e-3 self-check.
	Acceptance FaultAcceptance `json:"acceptance"`
	// Analytic is the arch.DegradationModel expectation curve per
	// policy over the same rates (the closed-form companion of Points).
	Analytic map[string][]arch.DegradedPoint `json:"analytic"`
}

// faultWorkload builds the segmentation scene, application and a fresh
// RSU-G unit. The unit is rebuilt per run: fault sessions drive it
// through SampleFaulty and reproducibility demands identical starting
// state for every cell of the sweep.
func faultWorkload() (img.Scene, apps.App, *rsu.Unit, error) {
	scene := img.BlobScene(faultGridW, faultGridH, faultBlobs, 6, rng.New(30))
	app, err := apps.NewSegmentation(scene.Image, scene.Means, 2, 12)
	if err != nil {
		return scene, nil, nil, err
	}
	unit, err := apps.BuildUnit(app, nil, 1, rsu.Ideal)
	if err != nil {
		return scene, nil, nil, err
	}
	return scene, app, unit, nil
}

// runFaults executes the full rate × policy sweep.
func runFaults(ctx context.Context) (*FaultReport, error) {
	scene, app, unit, err := faultWorkload()
	if err != nil {
		return nil, err
	}
	cfg := accel.PaperConfig(5, faultIterations, faultChainSeed)

	_, baseMode, baseStats, err := accel.Run(ctx, app, unit, cfg)
	if err != nil {
		return nil, err
	}
	baseMislabel := baseMode.MislabelRate(scene.Truth)
	baseAcc := 1 - baseMislabel

	rep := &FaultReport{
		Grid:             fmt.Sprintf("%dx%d", faultGridW, faultGridH),
		Labels:           app.Model().M,
		Iterations:       faultIterations,
		ChainSeed:        faultChainSeed,
		ScheduleSeed:     faultScheduleSeed,
		Rates:            faultRates,
		BaselineMislabel: baseMislabel,
		BaselineSeconds:  baseStats.Seconds,
		Analytic:         map[string][]arch.DegradedPoint{},
	}

	for _, rate := range faultRates {
		spec := faultSchedule(rate)
		for _, policy := range faultPolicies {
			_, _, unit, err := faultWorkload()
			if err != nil {
				return nil, err
			}
			fopt := fault.Options{Schedule: spec, Seed: faultScheduleSeed, Policy: policy}
			_, mode, stats, fstats, err := accel.RunFaulty(ctx, app, unit, cfg, fopt)
			if err != nil {
				return nil, err
			}
			mis := mode.MislabelRate(scene.Truth)
			rep.Points = append(rep.Points, FaultPoint{
				Rate:            rate,
				Policy:          policy.String(),
				Schedule:        spec,
				MislabelRate:    mis,
				AccuracyLossPct: 100 * (baseAcc - (1 - mis)) / baseAcc,
				Seconds:         stats.Seconds,
				Slowdown:        stats.Seconds / baseStats.Seconds,
				RSUSites:        fstats.RSUSites,
				FallbackSites:   fstats.FallbackSites,
				SkippedSites:    fstats.SkippedSites,
				Audit:           fstats.Audit.Summary,
			})
		}
	}
	rep.Acceptance = rep.acceptance(1) // faultRates[1] = 1e-3

	wl := arch.Segmentation(arch.SmallW, arch.SmallH)
	model := arch.DefaultDegradationModel()
	for _, policy := range faultPolicies {
		curve, err := model.Curve(wl, policy, analyticRates)
		if err != nil {
			return nil, err
		}
		rep.Analytic[policy.String()] = curve
	}
	return rep, nil
}

// acceptance evaluates the self-check at one swept rate, addressed by
// its index in Rates (Points are rate-major in faultPolicies order).
func (r *FaultReport) acceptance(rateIdx int) FaultAcceptance {
	a := FaultAcceptance{Rate: r.Rates[rateIdx]}
	base := rateIdx * len(faultPolicies)
	for _, p := range r.Points[base : base+len(faultPolicies)] {
		if p.Policy == fault.PolicyNone.String() {
			a.NoneLossPct = p.AccuracyLossPct
		} else if p.AccuracyLossPct > a.MaxProtectedLossPct {
			a.MaxProtectedLossPct = p.AccuracyLossPct
		}
	}
	a.ProtectedWithin5Pct = a.MaxProtectedLossPct <= 5
	a.NoneDegrades = a.NoneLossPct >= a.MaxProtectedLossPct+1
	return a
}

// Faults runs the fault-injection experiment and renders it as a text
// table.
func Faults(ctx context.Context, w io.Writer) error {
	return faultsTo(ctx, w, "")
}

// FaultsJSON runs the fault experiment and additionally writes the
// machine-readable FaultReport to jsonPath (the committed
// BENCH_faults.json artifact, which the CI faults-smoke job diffs
// byte-for-byte against a regenerated copy).
func FaultsJSON(ctx context.Context, w io.Writer, jsonPath string) error {
	return faultsTo(ctx, w, jsonPath)
}

func faultsTo(ctx context.Context, w io.Writer, jsonPath string) error {
	rep, err := runFaults(ctx)
	if err != nil {
		return err
	}
	t := Table{
		Title: fmt.Sprintf("Fault sweep: %s segmentation, %d iterations (baseline mislabel %.3f, %.3gs)",
			rep.Grid, rep.Iterations, rep.BaselineMislabel, rep.BaselineSeconds),
		Header: []string{"rate", "policy", "mislabel", "acc loss", "slowdown", "det/inj", "unacc", "fallback", "skipped"},
	}
	for _, p := range rep.Points {
		t.AddRow(
			fmt.Sprintf("%g", p.Rate),
			p.Policy,
			fmt.Sprintf("%.3f", p.MislabelRate),
			fmt.Sprintf("%.1f%%", p.AccuracyLossPct),
			fmt.Sprintf("%.3fx", p.Slowdown),
			fmt.Sprintf("%d/%d", p.Audit.Detected, p.Audit.Injected),
			fmt.Sprintf("%d", p.Audit.Unaccounted),
			fmt.Sprintf("%d", p.FallbackSites),
			fmt.Sprintf("%d", p.SkippedSites))
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	a := rep.Acceptance
	fmt.Fprintf(w, "acceptance at rate %g: none loses %.1f%%, worst protected policy %.1f%% (within 5%%: %v, none degrades: %v)\n",
		a.Rate, a.NoneLossPct, a.MaxProtectedLossPct, a.ProtectedWithin5Pct, a.NoneDegrades)
	ai := 2 // 1e-6: below remap saturation, above the noise floor
	fmt.Fprintf(w, "analytic remap vs fallback slowdown at %g: %.3fx vs %.3fx (spares absorb early arrivals)\n",
		analyticRates[ai],
		rep.Analytic[fault.PolicyRemap.String()][ai].Slowdown,
		rep.Analytic[fault.PolicyFallback.String()][ai].Slowdown)
	if jsonPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", jsonPath)
	return nil
}
