package bench

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/arch"
	"repro/internal/prototype"
	"repro/internal/rng"
)

// CSV exports of the figure-like series, for replotting the paper's
// graphics from this reproduction's data. WriteCSVSeries drops one file
// per series into dir.

// WriteCSVSeries writes table2.csv, figure8.csv, ratio.csv and
// sizesweep.csv into dir.
func WriteCSVSeries(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := writeCSV(filepath.Join(dir, "table2.csv"), table2CSV()); err != nil {
		return err
	}
	if err := writeCSV(filepath.Join(dir, "figure8.csv"), figure8CSV()); err != nil {
		return err
	}
	if err := writeCSV(filepath.Join(dir, "ratio.csv"), ratioCSV()); err != nil {
		return err
	}
	return writeCSV(filepath.Join(dir, "sizesweep.csv"), sizeSweepCSV())
}

func writeCSV(path string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		f.Close()
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func table2CSV() [][]string {
	rows := [][]string{{"app", "size", "impl", "seconds"}}
	for _, r := range arch.Table2(arch.TitanX()) {
		for _, impl := range arch.Impls {
			rows = append(rows, []string{
				r.App, r.Size, impl.String(),
				fmt.Sprintf("%.6f", r.Seconds[impl]),
			})
		}
	}
	return rows
}

func figure8CSV() [][]string {
	rows := [][]string{{"app", "size", "unit", "over_gpu", "over_opt_gpu"}}
	for _, r := range arch.Figure8(arch.TitanX()) {
		rows = append(rows, []string{
			r.App, r.Size, r.Unit.String(),
			fmt.Sprintf("%.3f", r.OverGPU),
			fmt.Sprintf("%.3f", r.OverOptGPU),
		})
	}
	return rows
}

func ratioCSV() [][]string {
	p := prototype.New()
	src := rng.New(9)
	var ratios []float64
	for r := 1.0; r <= 255; r *= 1.5 {
		ratios = append(ratios, r)
	}
	ratios = append(ratios, 255)
	rows := [][]string{{"commanded", "mean_measured", "p90_rel_err", "max_rel_err"}}
	for _, pt := range p.RatioSweep(ratios, 30, 20000, src) {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", pt.Commanded),
			fmt.Sprintf("%.3f", pt.MeanMeasured),
			fmt.Sprintf("%.4f", pt.P90RelError),
			fmt.Sprintf("%.4f", pt.MaxRelError),
		})
	}
	return rows
}

// sizeSweepCSV is the examples/accelerator scan as data: modeled motion
// times across image sizes for every implementation plus the
// accelerator bound.
func sizeSweepCSV() [][]string {
	g := arch.TitanX()
	models := arch.Calibrate(g)
	a := arch.DefaultAccelerator()
	km := models["motion"]
	rows := [][]string{{"width", "height", "gpu_s", "opt_gpu_s", "rsu_g1_s", "rsu_g4_s", "accel_s"}}
	for _, s := range [][2]int{{160, 160}, {320, 320}, {640, 480}, {1280, 720}, {1920, 1080}, {3840, 2160}} {
		w := arch.Motion(s[0], s[1])
		rows = append(rows, []string{
			fmt.Sprintf("%d", s[0]), fmt.Sprintf("%d", s[1]),
			fmt.Sprintf("%.6f", g.Time(w, km.CyclesPerPixel(arch.Baseline, w.Labels))),
			fmt.Sprintf("%.6f", g.Time(w, km.CyclesPerPixel(arch.Optimized, w.Labels))),
			fmt.Sprintf("%.6f", g.Time(w, km.CyclesPerPixel(arch.RSUG1, w.Labels))),
			fmt.Sprintf("%.6f", g.Time(w, km.CyclesPerPixel(arch.RSUG4, w.Labels))),
			fmt.Sprintf("%.6f", a.Time(w)),
		})
	}
	return rows
}
