package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"repro/internal/gibbs"
	"repro/internal/img"
	"repro/internal/mrf"
)

// sweepGrid is the benchmark grid for the sweep-engine experiment: the
// acceptance configuration of the high-throughput engine work is the
// exact-Gibbs checkerboard sweep at 256x256, M=16.
const sweepGridW, sweepGridH = 256, 256

// sweepLabelCounts are the label-space sizes exercised (motion-style
// M=2 up to dense segmentation M=64).
var sweepLabelCounts = []int{2, 16, 64}

// SweepMeasurement is one (schedule, M, path) throughput sample.
type SweepMeasurement struct {
	Schedule    string  `json:"schedule"`
	Labels      int     `json:"labels"`
	Path        string  `json:"path"` // "closure" or "compiled"
	NsPerSite   float64 `json:"ns_per_site"`
	SitesPerSec float64 `json:"sites_per_sec"`
}

// SweepReport is the machine-readable output of the sweep experiment
// (written to BENCH_sweep.json by paperbench -sweepjson).
type SweepReport struct {
	Grid    string `json:"grid"`
	Workers int    `json:"workers"`
	// SeedNsPerSite, when positive, is the measured throughput of the
	// pre-engine seed tree on the acceptance configuration (exact-Gibbs
	// checkerboard, M=16), injected via paperbench -sweepbaseline.
	SeedNsPerSite float64            `json:"seed_ns_per_site,omitempty"`
	Results       []SweepMeasurement `json:"results"`
	// SpeedupCompiledVsClosure compares compiled vs closure sites/sec on
	// the acceptance configuration within this tree.
	SpeedupCompiledVsClosure float64 `json:"speedup_compiled_vs_closure"`
	// SpeedupCompiledVsSeed compares the compiled path against
	// SeedNsPerSite (0 when no baseline was supplied).
	SpeedupCompiledVsSeed float64 `json:"speedup_compiled_vs_seed,omitempty"`
}

// sweepModel builds the segmentation-shaped synthetic model used by the
// sweep benchmarks: integer energies (so the compiled path engages its
// exp rate LUT), Potts smoothness, deterministic pseudo-image data.
// Identical to the model of BenchmarkSweep in internal/gibbs.
func sweepModel(w, h, m int) (*mrf.Model, *img.LabelMap) {
	obs := make([]int, w*h)
	for i := range obs {
		obs[i] = (i*37 + (i/w)*11) % 64
	}
	model := &mrf.Model{
		W: w, H: h, M: m, T: 12, LambdaS: 1, LambdaD: 2,
		Singleton: func(x, y, label int) float64 {
			d := obs[y*w+x] - label*4
			if d < 0 {
				d = -d
			}
			return float64(d)
		},
		Doubleton: func(a, b int) float64 {
			if a == b {
				return 0
			}
			return 1
		},
	}
	init := img.NewLabelMap(w, h)
	for i := range init.Labels {
		init.Labels[i] = uint8(obs[i] % m)
	}
	return model, init
}

// measureSweep times full exact-Gibbs sweeps of one configuration and
// returns ns/site.
func measureSweep(ctx context.Context, schedule gibbs.Schedule, m int, compiled bool, workers int) (SweepMeasurement, error) {
	model, init := sweepModel(sweepGridW, sweepGridH, m)
	if compiled {
		if err := model.Compile(); err != nil {
			return SweepMeasurement{}, err
		}
	}
	opt := gibbs.Options{Iterations: 1, Schedule: schedule, Workers: workers}
	var runErr error
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gibbs.Run(ctx, model, init, gibbs.NewExactGibbs(), opt, 7); err != nil {
				runErr = err
				b.FailNow()
			}
		}
	})
	if runErr != nil {
		return SweepMeasurement{}, runErr
	}
	sites := float64(sweepGridW * sweepGridH)
	nsPerSite := float64(r.NsPerOp()) / sites
	path := "closure"
	if compiled {
		path = "compiled"
	}
	return SweepMeasurement{
		Schedule:    schedule.String(),
		Labels:      m,
		Path:        path,
		NsPerSite:   nsPerSite,
		SitesPerSec: 1e9 / nsPerSite,
	}, nil
}

// runSweep executes the full sweep-engine experiment grid.
func runSweep(ctx context.Context, seedNsPerSite float64) (*SweepReport, error) {
	workers := runtime.GOMAXPROCS(0)
	rep := &SweepReport{
		Grid:          fmt.Sprintf("%dx%d", sweepGridW, sweepGridH),
		Workers:       workers,
		SeedNsPerSite: seedNsPerSite,
	}
	for _, schedule := range []gibbs.Schedule{gibbs.Raster, gibbs.Checkerboard} {
		for _, m := range sweepLabelCounts {
			for _, compiled := range []bool{false, true} {
				w := 1
				if schedule == gibbs.Checkerboard {
					w = workers
				}
				meas, err := measureSweep(ctx, schedule, m, compiled, w)
				if err != nil {
					return nil, err
				}
				rep.Results = append(rep.Results, meas)
			}
		}
	}
	var closure16, compiled16 float64
	for _, r := range rep.Results {
		if r.Schedule == "checkerboard" && r.Labels == 16 {
			if r.Path == "closure" {
				closure16 = r.SitesPerSec
			} else {
				compiled16 = r.SitesPerSec
			}
		}
	}
	if closure16 > 0 {
		rep.SpeedupCompiledVsClosure = compiled16 / closure16
	}
	if seedNsPerSite > 0 {
		rep.SpeedupCompiledVsSeed = compiled16 / (1e9 / seedNsPerSite)
	}
	return rep, nil
}

// Sweep runs the sweep-engine throughput experiment and renders it as a
// text table: exact-Gibbs full sweeps at 256x256 for M in {2,16,64},
// raster and checkerboard schedules, closure vs compiled
// (mrf.Model.Compile) evaluation paths.
func Sweep(ctx context.Context, w io.Writer) error {
	return sweepTo(ctx, w, 0, "")
}

// SweepJSON runs the sweep experiment and additionally writes the
// machine-readable SweepReport to jsonPath (the committed
// BENCH_sweep.json artifact). seedNsPerSite, when positive, records the
// measured seed-tree baseline for the acceptance configuration.
func SweepJSON(ctx context.Context, w io.Writer, jsonPath string, seedNsPerSite float64) error {
	return sweepTo(ctx, w, seedNsPerSite, jsonPath)
}

func sweepTo(ctx context.Context, w io.Writer, seedNsPerSite float64, jsonPath string) error {
	rep, err := runSweep(ctx, seedNsPerSite)
	if err != nil {
		return err
	}
	t := Table{
		Title: fmt.Sprintf("Sweep engine throughput (exact Gibbs, %s grid, %d worker(s))",
			rep.Grid, rep.Workers),
		Header: []string{"Schedule", "M", "Path", "ns/site", "sites/sec"},
	}
	for _, r := range rep.Results {
		t.AddRow(r.Schedule, fmt.Sprintf("%d", r.Labels), r.Path,
			fmt.Sprintf("%.1f", r.NsPerSite), fmt.Sprintf("%.0f", r.SitesPerSec))
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "checkerboard M=16 compiled vs closure speedup: %.2fx\n",
		rep.SpeedupCompiledVsClosure)
	if rep.SpeedupCompiledVsSeed > 0 {
		fmt.Fprintf(w, "checkerboard M=16 compiled vs seed baseline (%.1f ns/site): %.2fx\n",
			rep.SeedNsPerSite, rep.SpeedupCompiledVsSeed)
	}
	if jsonPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", jsonPath)
	return nil
}
