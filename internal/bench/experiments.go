package bench

import (
	"context"
	"fmt"
	"io"
	"path/filepath"
	"testing"

	"repro/internal/accel"
	"repro/internal/apps"
	"repro/internal/arch"
	"repro/internal/fixed"
	"repro/internal/gibbs"
	"repro/internal/gpusim"
	"repro/internal/img"
	"repro/internal/power"
	"repro/internal/prototype"
	"repro/internal/ret"
	"repro/internal/rng"
	"repro/internal/rsu"
)

// CPUClockHz is the clock the paper's Table 1 cycle counts assume
// (Intel E5-2640, 2.5 GHz).
const CPUClockHz = 2.5e9

// Table1 measures the software sampling cost of §2.2 / Table 1: cycles
// to draw one sample from each distribution, estimated from measured
// ns/op at the E5-2640's clock. Absolute counts differ from the paper's
// C++11-on-Xeon numbers; the shape to preserve is exponential < normal
// < gamma, each costing hundreds of cycles.
func Table1(w io.Writer) error {
	src := rng.New(1)
	measure := func(f func()) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f()
			}
		})
		return float64(r.NsPerOp()) * CPUClockHz / 1e9
	}
	expCycles := measure(func() { src.Exponential(1.5) })
	normCycles := measure(func() { src.Normal(0, 1) })
	gammaCycles := measure(func() { src.Gamma(2.5, 1) })
	mt := rng.NewMT19937(1)
	mtExpCycles := measure(func() { mt.Exponential(1.5) })

	t := Table{
		Title:  "Table 1: Cycles to Sample from Different Distributions (modeled at 2.5 GHz)",
		Header: []string{"Distribution", "Paper (cycles)", "Measured (cycles)"},
	}
	t.AddRow("Exponential", "588", fmt.Sprintf("%.0f", expCycles))
	t.AddRow("Normal", "633", fmt.Sprintf("%.0f", normCycles))
	t.AddRow("Gamma", "800", fmt.Sprintf("%.0f", gammaCycles))
	t.AddRow("Exponential (mt19937 engine)", "588", fmt.Sprintf("%.0f", mtExpCycles))
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	if !(expCycles <= normCycles && normCycles <= gammaCycles) {
		fmt.Fprintf(w, "NOTE: ordering exp<=normal<=gamma did not hold on this host\n")
	}
	fmt.Fprintf(w, "The mt19937 row uses the C++11 default engine (the paper's stack);\n")
	fmt.Fprintf(w, "the remaining gap to 588 cycles is libstdc++ call overhead.\n")
	return nil
}

// Table2 prints the modeled execution times (paper Table 2). HD rows
// are calibration anchors; Small rows are model predictions.
func Table2(w io.Writer) error {
	g := arch.TitanX()
	t := Table{
		Title:  "Table 2: Application Execution Time (seconds)",
		Header: []string{"App", "Size", "GPU", "Opt GPU", "RSU-G1", "RSU-G4"},
	}
	for _, r := range arch.Table2(g) {
		t.AddRow(r.App, r.Size,
			fmt.Sprintf("%.3f", r.Seconds[arch.Baseline]),
			fmt.Sprintf("%.3f", r.Seconds[arch.Optimized]),
			fmt.Sprintf("%.3f", r.Seconds[arch.RSUG1]),
			fmt.Sprintf("%.3f", r.Seconds[arch.RSUG4]))
	}
	_, err := t.WriteTo(w)
	return err
}

// Table3 prints the RSU-G1 power breakdown (paper Table 3) plus the
// §8.3 system aggregates.
func Table3(w io.Writer) error {
	t := Table{
		Title:  "Table 3: Power Consumption for a Single RSU-G1 (mW)",
		Header: []string{"Component", "45nm (590MHz)", "15nm (1GHz)"},
	}
	b45, b15 := power.RSUG1Budget(power.N45), power.RSUG1Budget(power.N15)
	for i, c := range b45.Components {
		t.AddRow(c.Name, fmt.Sprintf("%.2f", c.PowerMW), fmt.Sprintf("%.2f", b15.Components[i].PowerMW))
	}
	t.AddRow("Total", fmt.Sprintf("%.2f", b45.TotalPowerMW()), fmt.Sprintf("%.2f", b15.TotalPowerMW()))
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	gpu := power.SystemAggregate("GPU + 3072 RSU-G1", 3072, power.N15)
	acc := power.SystemAggregate("Accelerator, 336 RSU-G1", 336, power.N15)
	fmt.Fprintf(w, "\n%s: %.1f W additional\n%s: %.2f W\n", gpu.Name, gpu.PowerW, acc.Name, acc.PowerW)
	est := power.EstimateRETPowerMW(power.DefaultOpticalParams()) * power.CircuitsPerRSUG1
	fmt.Fprintf(w, "First-principles RET optics estimate: %.3f mW per unit (paper: 0.16)\n", est)
	return nil
}

// Table4 prints the RSU-G1 area breakdown (paper Table 4).
func Table4(w io.Writer) error {
	t := Table{
		Title:  "Table 4: Area for a Single RSU-G1 (um^2)",
		Header: []string{"Component", "45nm", "15nm"},
	}
	b45, b15 := power.RSUG1Budget(power.N45), power.RSUG1Budget(power.N15)
	for i, c := range b45.Components {
		t.AddRow(c.Name, fmt.Sprintf("%.0f", c.AreaUM2), fmt.Sprintf("%.0f", b15.Components[i].AreaUM2))
	}
	t.AddRow("Total", fmt.Sprintf("%.0f", b45.TotalAreaUM2()), fmt.Sprintf("%.0f", b15.TotalAreaUM2()))
	_, err := t.WriteTo(w)
	return err
}

// Figure7 reproduces the prototype demo: a 50×67 two-label scene
// segmented by the emulated RSU-G2 in 10 MCMC iterations. When outDir
// is non-empty the input and the 10th-iteration sample are written as
// PGM files (the paper's Figure 7a/7b).
func Figure7(ctx context.Context, w io.Writer, outDir string) error {
	src := rng.New(7)
	scene := img.TwoRegionScene(50, 67, 10, src)
	app, err := apps.NewSegmentation(scene.Image, scene.Means, 2, 40)
	if err != nil {
		return err
	}
	init := img.NewLabelMap(50, 67)
	res, err := gibbs.Run(ctx, app.Model(), init, prototype.NewSampler(prototype.New()), gibbs.Options{
		Iterations: 10, Schedule: gibbs.Raster,
	}, 8)
	if err != nil {
		return err
	}
	rate := res.Final.MislabelRate(scene.Truth)
	fmt.Fprintf(w, "Figure 7: prototype RSU-G2 two-label segmentation, 50x67, 10 iterations\n")
	fmt.Fprintf(w, "  mislabel rate vs ground truth: %.3f\n", rate)
	fmt.Fprintf(w, "  modeled prototype wall clock:  %.0f s (interface-delay dominated, ~60 s/iteration)\n",
		prototype.RunTime(50*67, 10))
	if outDir != "" {
		inPath := filepath.Join(outDir, "figure7_input.pgm")
		outPath := filepath.Join(outDir, "figure7_iter10.pgm")
		if err := img.WritePGMFile(inPath, scene.Image); err != nil {
			return err
		}
		if err := img.WritePGMFile(outPath, res.Final.Render([]uint8{0, 255})); err != nil {
			return err
		}
		fmt.Fprintf(w, "  wrote %s and %s\n", inPath, outPath)
	}
	return nil
}

// Figure8 prints the RSU speedups over the GPU baselines (paper Fig. 8).
func Figure8(w io.Writer) error {
	g := arch.TitanX()
	t := Table{
		Title:  "Figure 8: RSU Speedup over GPU",
		Header: []string{"App", "Size", "Unit", "over GPU", "over Opt GPU"},
	}
	for _, r := range arch.Figure8(g) {
		t.AddRow(r.App, r.Size, r.Unit.String(),
			fmt.Sprintf("%.1fx", r.OverGPU),
			fmt.Sprintf("%.1fx", r.OverOptGPU))
	}
	_, err := t.WriteTo(w)
	return err
}

// Accelerator prints the §8.2 discrete-accelerator analysis.
func Accelerator(ctx context.Context, w io.Writer) error {
	g := arch.TitanX()
	a := arch.DefaultAccelerator()
	t := Table{
		Title:  "Discrete accelerator (336 GB/s bound, " + fmt.Sprintf("%d", a.Units()) + " RSU-G1 units)",
		Header: []string{"App", "Size", "time (s)", "over GPU", "over RSU-G1 GPU", "over RSU-G4 GPU"},
	}
	for _, r := range arch.AcceleratorAnalysis(g, a) {
		t.AddRow(r.App, r.Size,
			fmt.Sprintf("%.4f", r.AccelSeconds),
			fmt.Sprintf("%.1fx", r.OverGPU),
			fmt.Sprintf("%.1fx", r.OverRSUG1GPU),
			fmt.Sprintf("%.2fx", r.OverRSUG4GPU))
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	cpu := arch.E5_2640()
	rows := arch.CPUAnalysis(cpu, []arch.Workload{
		arch.Segmentation(arch.SmallW, arch.SmallH),
		arch.Stereo(arch.SmallW, arch.SmallH),
	})
	fmt.Fprintf(w, "\nSingle-core E5-2640 with RSU-G1 (paper: speedup over 100):\n")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-13s %.2fs -> %.4fs (%.0fx)\n", r.App, r.BaselineSeconds, r.RSUSeconds, r.Speedup)
	}

	// The §8.2 closing remark: on-chip staging raises the effective
	// bandwidth for frames that fit.
	staged := arch.DefaultStagedAccelerator()
	fmt.Fprintf(w, "\nStaged accelerator (%.0f MB SRAM at %.0fx DRAM BW, %d units):\n",
		staged.SRAMBytes/1e6, staged.SRAMBW/staged.MemBW, staged.Units())
	for _, wl := range []arch.Workload{
		arch.Segmentation(arch.SmallW, arch.SmallH),
		arch.Segmentation(arch.HDW, arch.HDH),
		arch.Motion(arch.SmallW, arch.SmallH),
		arch.Motion(arch.HDW, arch.HDH),
	} {
		dram := staged.Accelerator.Time(wl)
		st := staged.Time(wl)
		note := "fits on-chip"
		if !staged.Fits(wl) {
			note = "exceeds SRAM, DRAM bound"
		}
		fmt.Fprintf(w, "  %-13s %-9s %.4fs -> %.4fs (%.2fx, %s)\n",
			wl.Name, arch.SizeLabel(wl), dram, st, dram/st, note)
	}

	// Functional accelerator simulation: real inference through the
	// RSU-G array with hardware-style cycle accounting (internal/accel).
	scene := img.BlobScene(64, 64, 5, 6, rng.New(30))
	segApp, err := apps.NewSegmentation(scene.Image, scene.Means, 2, 12)
	if err != nil {
		return err
	}
	unit, err := apps.BuildUnit(segApp, nil, 1, rsu.Ideal)
	if err != nil {
		return err
	}
	_, mode, stats, err := accel.Run(ctx, segApp, unit, accel.PaperConfig(5, 50, 31))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nFunctional accelerator simulation (64x64 segmentation, 50 iterations):\n")
	fmt.Fprintf(w, "  mislabel rate %.3f | simulated %.3gs | analytic bound %.3gs | %d/%d phases memory-bound\n",
		mode.MislabelRate(scene.Truth), stats.Seconds, stats.AnalyticBoundSeconds,
		stats.MemoryBoundPhases, stats.MemoryBoundPhases+stats.ComputeBoundPhases)

	// Energy-to-solution (§8.3 extension): 250 W GPU TDP, the paper's
	// 12 W of RSU units on the GPU, ~15 W accelerator (1.3 W of units +
	// memory system).
	fmt.Fprintf(w, "\nEnergy to solution (250 W GPU, +12 W RSU units, 15 W accelerator):\n")
	for _, r := range arch.EnergyAnalysis(g, a, 250, 12, 15) {
		fmt.Fprintf(w, "  %-13s %-6s GPU %8.1f J | RSU-G1 GPU %7.1f J | accelerator %6.2f J (%.0fx less than GPU)\n",
			r.App, r.Size, r.GPUJoules, r.RSUG1GPUJoules, r.AccelJoules, r.GPUJoules/r.AccelJoules)
	}
	return nil
}

// Ratio prints the §7 parameterization sweep.
func Ratio(w io.Writer) error {
	p := prototype.New()
	src := rng.New(9)
	var ratios []float64
	for r := 1.0; r <= 255; r *= 2 {
		ratios = append(ratios, r)
	}
	ratios = append(ratios, 255)
	t := Table{
		Title:  "Prototype parameterization sweep (paper: <=10% error below ratio 30, <=24% above)",
		Header: []string{"commanded", "mean measured", "P90 rel.err", "max rel.err"},
	}
	for _, pt := range p.RatioSweep(ratios, 40, 20000, src) {
		t.AddRow(
			fmt.Sprintf("%.0f", pt.Commanded),
			fmt.Sprintf("%.1f", pt.MeanMeasured),
			fmt.Sprintf("%.1f%%", 100*pt.P90RelError),
			fmt.Sprintf("%.1f%%", 100*pt.MaxRelError))
	}
	_, err := t.WriteTo(w)
	return err
}

// Fidelity runs the exact-vs-RSU functional comparison on all three
// applications (small scenes) and prints quality metrics.
func Fidelity(ctx context.Context, w io.Writer) error {
	t := Table{
		Title:  "Functional fidelity: exact software Gibbs vs emulated RSU-G",
		Header: []string{"app", "metric", "software", "RSU", "agreement"},
	}
	opt := gibbs.Options{Iterations: 60, BurnIn: 20, Schedule: gibbs.Checkerboard, TrackMode: true}

	// Segmentation.
	segScene := img.BlobScene(48, 48, 5, 6, rng.New(10))
	segApp, err := apps.NewSegmentation(segScene.Image, segScene.Means, 2, 12)
	if err != nil {
		return err
	}
	segUnit, err := apps.BuildUnit(segApp, nil, 1, rsu.Ideal)
	if err != nil {
		return err
	}
	swSeg, err := apps.RunSoftware(ctx, segApp, segApp.InitLabels(), opt, 11)
	if err != nil {
		return err
	}
	hwSeg, err := apps.RunRSU(ctx, segApp, segUnit, segApp.InitLabels(), opt, 12)
	if err != nil {
		return err
	}
	t.AddRow("segmentation", "mislabel rate",
		fmt.Sprintf("%.3f", swSeg.MAP.MislabelRate(segScene.Truth)),
		fmt.Sprintf("%.3f", hwSeg.MAP.MislabelRate(segScene.Truth)),
		fmt.Sprintf("%.3f", swSeg.MAP.Agreement(hwSeg.MAP)))

	// Motion.
	motScene := img.MotionPair(32, 32, 2, -1, 3, 2, rng.New(13))
	motApp, err := apps.NewMotionEstimation(motScene.Frame1, motScene.Frame2, 3, 1, 8)
	if err != nil {
		return err
	}
	motUnit, err := apps.BuildUnit(motApp, nil, 4, rsu.Ideal)
	if err != nil {
		return err
	}
	swMot, err := apps.RunSoftware(ctx, motApp, motApp.InitLabels(), opt, 14)
	if err != nil {
		return err
	}
	hwMot, err := apps.RunRSU(ctx, motApp, motUnit, motApp.InitLabels(), opt, 15)
	if err != nil {
		return err
	}
	t.AddRow("motion", "avg endpoint err",
		fmt.Sprintf("%.3f", motApp.Field(swMot.MAP).AvgEndpointError(motScene.Truth)),
		fmt.Sprintf("%.3f", motApp.Field(hwMot.MAP).AvgEndpointError(motScene.Truth)),
		fmt.Sprintf("%.3f", swMot.MAP.Agreement(hwMot.MAP)))

	// Stereo.
	stScene := img.StereoPair(32, 24, 5, 3, 2, rng.New(16))
	stApp, err := apps.NewStereoVision(stScene.Left, stScene.Right, 5, 1, 8)
	if err != nil {
		return err
	}
	stUnit, err := apps.BuildUnit(stApp, nil, 1, rsu.Ideal)
	if err != nil {
		return err
	}
	swSt, err := apps.RunSoftware(ctx, stApp, stApp.InitLabels(), opt, 17)
	if err != nil {
		return err
	}
	hwSt, err := apps.RunRSU(ctx, stApp, stUnit, stApp.InitLabels(), opt, 18)
	if err != nil {
		return err
	}
	t.AddRow("stereo", "mislabel rate",
		fmt.Sprintf("%.3f", swSt.MAP.MislabelRate(stScene.Truth)),
		fmt.Sprintf("%.3f", hwSt.MAP.MislabelRate(stScene.Truth)),
		fmt.Sprintf("%.3f", swSt.MAP.Agreement(hwSt.MAP)))

	_, err = t.WriteTo(w)
	return err
}

// retDefaultBinary returns the paper-literal binary-weighted circuit for
// the ladder ablation.
func retDefaultBinary() *ret.Circuit {
	c := ret.DefaultCircuit(rng.New(25))
	c.Detector.DarkRate = 0
	c.Detector.JitterSigma = 0
	return c
}

// Ablation quantifies the hardware design choices DESIGN.md calls out:
// LED ladder sizing (binary 15:1 vs geometric 85:1), the dark rung in
// the intensity LUT (probability floor vs true zeros), RSU width, and
// RET-circuit replication (initiation interval). The workload is dense
// motion estimation — with M=49 labels the sampler's tail behavior is
// exposed far more than at M=5.
func Ablation(ctx context.Context, w io.Writer) error {
	scene := img.MotionPair(40, 40, 2, -1, 3, 3, rng.New(20))
	app, err := apps.NewMotionEstimation(scene.Frame1, scene.Frame2, 3, 1, 8)
	if err != nil {
		return err
	}
	opt := gibbs.Options{Iterations: 50, BurnIn: 20, Schedule: gibbs.Checkerboard, TrackMode: true}

	t := Table{
		Title:  "Ablation: RSU design choices (motion quality + latency)",
		Header: []string{"variant", "avg endpoint error", "cycles/variable"},
	}

	runVariant := func(name string, unit *rsu.Unit, seed uint64) error {
		res, err := apps.RunRSU(ctx, app, unit, app.InitLabels(), opt, seed)
		if err != nil {
			return err
		}
		t.AddRow(name,
			fmt.Sprintf("%.3f", app.Field(res.MAP).AvgEndpointError(scene.Truth)),
			fmt.Sprintf("%d", unit.EvalTiming().Cycles))
		return nil
	}

	// LED ladder: geometric (default, 85:1) vs binary (15:1).
	geo, err := apps.BuildUnit(app, nil, 1, rsu.Ideal)
	if err != nil {
		return err
	}
	if err := runVariant("geometric LEDs (85:1)", geo, 21); err != nil {
		return err
	}
	bin, err := apps.BuildUnit(app, retDefaultBinary(), 1, rsu.Ideal)
	if err != nil {
		return err
	}
	if err := runVariant("binary LEDs (15:1)", bin, 22); err != nil {
		return err
	}

	// Dark rung removed: post-process the LUT so every dark entry maps
	// to the dimmest positive code instead, recreating the probability
	// floor (every improbable label keeps >= 1/85 relative rate).
	noDark, err := apps.BuildUnit(app, nil, 1, rsu.Ideal)
	if err != nil {
		return err
	}
	levels := noDark.Levels()
	dimCode := 0
	for c, l := range levels {
		if l > 0 && (levels[dimCode] <= 0 || l < levels[dimCode]) {
			dimCode = c
		}
	}
	lut := noDark.Config().Map
	for e := range lut {
		if levels[lut[e]] <= 0 {
			lut[e] = fixed.NewIntensity(dimCode)
		}
	}
	noDark.SetMap(lut)
	if err := runVariant("no dark rung (floor 1/85)", noDark, 23); err != nil {
		return err
	}

	// Width: K=4 (same distribution, lower latency).
	g4, err := apps.BuildUnit(app, nil, 4, rsu.Ideal)
	if err != nil {
		return err
	}
	if err := runVariant("width K=4", g4, 24); err != nil {
		return err
	}

	// Replication: starved RET circuits stretch the initiation interval.
	starved, err := apps.BuildUnit(app, nil, 1, rsu.Ideal)
	if err != nil {
		return err
	}
	cfg := starved.Config()
	cfg.Replicas = 1
	starved2, err := rsu.New(cfg)
	if err != nil {
		return err
	}
	starved2.SetMap(starved.Config().Map)
	if err := runVariant("1 RET circuit/lane", starved2, 25); err != nil {
		return err
	}

	// Temperature mismatch: the LUT bakes in the application temperature
	// (§6.1 map load); building it for the wrong T distorts every
	// conditional. Half-T sharpens toward greedy ICM; double-T flattens.
	for _, mis := range []struct {
		name   string
		factor float64
	}{{"LUT built at T/2", 0.5}, {"LUT built at 2T", 2}} {
		u, err := apps.BuildUnit(app, nil, 1, rsu.Ideal)
		if err != nil {
			return err
		}
		lut, err := rsu.BuildIntensityMap(u.Levels(), app.Model().T*mis.factor)
		if err != nil {
			return err
		}
		u.SetMap(lut)
		if err := runVariant(mis.name, u, 26); err != nil {
			return err
		}
	}

	_, err = t.WriteTo(w)
	return err
}

// GPUSim prints the bottom-up SIMT-simulation cross-check: speedups
// derived from instruction streams on internal/gpusim's machine, with
// no constants fitted to the paper.
func GPUSim(w io.Writer) error {
	machine := gpusim.TitanXish()
	const threads = 128 * 128
	run := func(k gpusim.Kernel) (int64, error) {
		r, err := machine.Run(k, threads)
		return r.Cycles, err
	}
	segBase, err := run(gpusim.SegBaseline(5))
	if err != nil {
		return err
	}
	segOpt, err := run(gpusim.SegOptimized(5))
	if err != nil {
		return err
	}
	segRSU, err := run(gpusim.SegRSU(5, 11))
	if err != nil {
		return err
	}
	motBase, err := run(gpusim.MotionBaseline(49))
	if err != nil {
		return err
	}
	motG1, err := run(gpusim.MotionRSU(49, 55))
	if err != nil {
		return err
	}
	motG4, err := run(gpusim.MotionRSU(49, 20))
	if err != nil {
		return err
	}
	t := Table{
		Title:  "Bottom-up SIMT simulation (no fitted constants; shape check vs Figure 8)",
		Header: []string{"kernel", "cycles", "speedup over baseline"},
	}
	t.AddRow("segmentation GPU", fmt.Sprintf("%d", segBase), "1.0x")
	t.AddRow("segmentation Opt GPU", fmt.Sprintf("%d", segOpt), fmt.Sprintf("%.2fx", float64(segBase)/float64(segOpt)))
	t.AddRow("segmentation RSU-G1", fmt.Sprintf("%d", segRSU), fmt.Sprintf("%.2fx", float64(segBase)/float64(segRSU)))
	t.AddRow("motion GPU", fmt.Sprintf("%d", motBase), "1.0x")
	t.AddRow("motion RSU-G1", fmt.Sprintf("%d", motG1), fmt.Sprintf("%.2fx", float64(motBase)/float64(motG1)))
	t.AddRow("motion RSU-G4", fmt.Sprintf("%d", motG4), fmt.Sprintf("%.2fx", float64(motBase)/float64(motG4)))
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "Shape checks: RSU wins, motion (M=49) gains more than segmentation (M=5).\n")
	fmt.Fprintf(w, "Absolute ratios sit below the paper's measured 3x/16x because the coarse\n")
	fmt.Fprintf(w, "model understates real-GPU baseline inefficiencies; see internal/gpusim.\n")
	return nil
}
