package bench

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/img"
	"repro/internal/mrf"
	"repro/internal/power"
	"repro/internal/rng"
	"repro/internal/sampler"
	"repro/internal/sampler/meanfield"
	"repro/internal/sampler/spiking"
)

// The cross-backend Pareto experiment (paperbench -experiment
// backends): every registry backend — exact software kernels, the
// emulated RSU-G unit, the optical prototype, and the approximate
// spiking/mean-field samplers at several knob settings — runs the same
// two fixed tasks, and each lands as one point on an accuracy vs
// ns/site vs modeled-energy plane. Labels, accuracy, agreement and
// energy are deterministic (fixed seeds, registry-dispatched chains,
// arithmetic energy model), so the committed BENCH_backends.json gates
// them in CI; ns/site is host wall-clock and is reported but never
// compared.
const (
	backendsGridW, backendsGridH = 48, 48
	backendsIterations           = 24
	backendsBurnIn               = 8
	backendsChainSeed            = 17
	backendsSegSceneSeed         = 101
	backendsResSceneSeed         = 102
)

// backendConfig is one swept backend + knob setting.
type backendConfig struct {
	name      string // registry name
	config    string // knob suffix for the report ("" = defaults)
	width     int    // rsu: unit width K
	spiking   *spiking.Spec
	meanfield *meanfield.Spec
}

// backendsConfigs is the swept axis: the five pre-registry backends
// plus the two approximate samplers across their accuracy knobs. The
// exact software-gibbs chain must come first — it is the
// agreement-vs-exact reference for its task.
func backendsConfigs() []backendConfig {
	return []backendConfig{
		{name: "software-gibbs"},
		{name: "software-first-to-fire"},
		{name: "metropolis"},
		{name: "rsu", config: "w=1", width: 1},
		{name: "prototype"},
		{name: "spiking", config: "bits=2,tau=1", spiking: &spiking.Spec{Bits: 2, Tau: 1}},
		{name: "spiking", config: "bits=4,tau=1", spiking: &spiking.Spec{Bits: 4, Tau: 1}},
		{name: "spiking", config: "bits=8,tau=1", spiking: &spiking.Spec{Bits: 8, Tau: 1}},
		{name: "spiking", config: "bits=8,tau=4", spiking: &spiking.Spec{Bits: 8, Tau: 4}},
		{name: "meanfield", config: "damping=0.5", meanfield: &meanfield.Spec{Damping: 0.5}},
		{name: "meanfield", config: "damping=1", meanfield: &meanfield.Spec{Damping: 1}},
	}
}

// backendTask is one fixed workload of the sweep.
type backendTask struct {
	name     string
	labels   int
	app      apps.App
	accuracy func(*core.Result) float64
}

// backendsTasks builds the two workloads: a binary segmentation (every
// backend qualifies, including the 2-label prototype and mean-field)
// and a 4-level restoration (exercises label counts past the binary
// backends, which the capability check skips rather than errors).
func backendsTasks() ([]backendTask, error) {
	// Heavy noise (sigma 80 against means 215 apart) makes the task
	// genuinely hard (~9% irreducible error), yet every backend lands
	// on the same binary posterior mode — the segmentation table
	// demonstrates approximation-insensitivity, so its frontier is
	// energy-ordered; the 4-label restoration below is where accuracy
	// separates.
	seg := img.BlobScene(backendsGridW, backendsGridH, 2, 80, rng.New(backendsSegSceneSeed))
	segApp, err := apps.NewSegmentation(seg.Image, seg.Means, 2, 12)
	if err != nil {
		return nil, err
	}
	res := img.BlobScene(backendsGridW, backendsGridH, 4, 20, rng.New(backendsResSceneSeed))
	resApp, err := apps.NewRestoration(res.Image, 4, 2, 0, 12, mrf.FirstOrder)
	if err != nil {
		return nil, err
	}
	clean := res.Truth.Render(res.Means)
	return []backendTask{
		{
			name: "segmentation", labels: 2, app: segApp,
			accuracy: func(r *core.Result) float64 {
				return 1 - r.MAP.MislabelRate(seg.Truth)
			},
		},
		{
			name: "restoration", labels: 4, app: resApp,
			accuracy: func(r *core.Result) float64 {
				// 1 - normalized mean absolute intensity error of the
				// restored image against the clean scene.
				restored := resApp.Render(r.MAP)
				sum := 0.0
				for i, p := range restored.Pix {
					sum += math.Abs(float64(p) - float64(clean.Pix[i]))
				}
				return 1 - sum/float64(len(restored.Pix))/255
			},
		},
	}, nil
}

// BackendPoint is one (task, backend, config) cell of the sweep.
type BackendPoint struct {
	Task    string `json:"task"`
	Backend string `json:"backend"`
	Config  string `json:"config,omitempty"`
	Exact   bool   `json:"exact"`
	// Accuracy is task quality in [0,1] (1 - mislabel rate for
	// segmentation, 1 - normalized MAE for restoration); deterministic.
	Accuracy float64 `json:"accuracy"`
	// AgreementVsExact is the MAP agreement with the software-gibbs
	// chain on the same task; deterministic.
	AgreementVsExact float64 `json:"agreement_vs_exact"`
	// NsPerSite is measured host wall-clock per site-sample. It is the
	// one machine-dependent column: reported, plotted, never gated.
	NsPerSite float64 `json:"ns_per_site"`
	// EnergyNJPerSite is the modeled energy per site-sample
	// (power.SamplerEnergyNJ); deterministic.
	EnergyNJPerSite float64 `json:"energy_nj_per_site"`
	// Digest is sha256 over the MAP and final label maps; deterministic
	// and worker-count invariant.
	Digest string `json:"digest"`
	// Pareto marks points on the task's accuracy-vs-energy frontier.
	Pareto bool `json:"pareto"`
}

// BackendsReport is the machine-readable output of the sweep (the
// committed BENCH_backends.json artifact).
type BackendsReport struct {
	Grid       string         `json:"grid"`
	Iterations int            `json:"iterations"`
	BurnIn     int            `json:"burn_in"`
	ChainSeed  uint64         `json:"chain_seed"`
	Tasks      []string       `json:"tasks"`
	Points     []BackendPoint `json:"points"`
}

// backendDigest hashes the MAP and final label maps into a stable hex
// string — the byte-equivalence witness the CI gate compares.
func backendDigest(res *core.Result) string {
	h := sha256.New()
	h.Write(res.MAP.Labels)
	h.Write(res.Final.Labels)
	return hex.EncodeToString(h.Sum(nil))
}

// RunBackends executes the full sweep. Backends whose capability range
// excludes a task's label count are skipped for that task (that is the
// registry working as intended, not an error).
func RunBackends(ctx context.Context) (*BackendsReport, error) {
	tasks, err := backendsTasks()
	if err != nil {
		return nil, err
	}
	rep := &BackendsReport{
		Grid:       fmt.Sprintf("%dx%d", backendsGridW, backendsGridH),
		Iterations: backendsIterations,
		BurnIn:     backendsBurnIn,
		ChainSeed:  backendsChainSeed,
	}
	for _, task := range tasks {
		rep.Tasks = append(rep.Tasks, task.name)
		var exactMAP *img.LabelMap
		first := len(rep.Points)
		for _, bc := range backendsConfigs() {
			be, ok := sampler.Lookup(bc.name)
			if !ok {
				return nil, fmt.Errorf("bench: backend %q not registered", bc.name)
			}
			caps := be.Caps()
			if task.labels < caps.MinLabels || (caps.MaxLabels > 0 && task.labels > caps.MaxLabels) {
				continue
			}
			cfg := core.Config{
				BackendName: bc.name,
				RSUWidth:    bc.width,
				Iterations:  backendsIterations,
				BurnIn:      backendsBurnIn,
				Seed:        backendsChainSeed,
				Spiking:     bc.spiking,
				MeanField:   bc.meanfield,
			}
			solver, err := core.NewSolver(task.app, cfg)
			if err != nil {
				return nil, fmt.Errorf("bench: %s on %s: %w", bc.name, task.name, err)
			}
			res, err := solver.Solve(ctx)
			if err != nil {
				return nil, fmt.Errorf("bench: %s on %s: %w", bc.name, task.name, err)
			}
			sites := float64(res.Iterations * backendsGridW * backendsGridH)
			// ns/site is measured by re-solving the same deterministic
			// chain under testing.Benchmark (the repo's one sanctioned
			// wall-clock source); the reported labels come from the
			// first solve above.
			var benchErr error
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := solver.Solve(ctx); err != nil {
						benchErr = err
						b.FailNow()
					}
				}
			})
			if benchErr != nil {
				return nil, fmt.Errorf("bench: %s on %s: %w", bc.name, task.name, benchErr)
			}
			espec := power.SamplerEnergySpec{Labels: task.labels}
			if u := solver.Unit(); u != nil {
				espec.RSUCycles = u.EvalTiming().Cycles
			}
			if bc.name == "spiking" {
				sp := spiking.Spec{}
				if bc.spiking != nil {
					sp = *bc.spiking
				}
				sp = sp.WithDefaults()
				espec.SpikingBits, espec.SpikingTau = sp.Bits, sp.Tau
			}
			energy, err := power.SamplerEnergyNJ(bc.name, espec)
			if err != nil {
				return nil, err
			}
			if exactMAP == nil {
				// First qualifying config is software-gibbs by
				// construction: the agreement reference.
				exactMAP = res.MAP
			}
			rep.Points = append(rep.Points, BackendPoint{
				Task:             task.name,
				Backend:          bc.name,
				Config:           bc.config,
				Exact:            caps.Exact,
				Accuracy:         task.accuracy(res),
				AgreementVsExact: res.MAP.Agreement(exactMAP),
				NsPerSite:        float64(r.NsPerOp()) / sites,
				EnergyNJPerSite:  energy,
				Digest:           backendDigest(res),
			})
		}
		markPareto(rep.Points[first:])
	}
	return rep, nil
}

// markPareto flags the accuracy-vs-energy frontier of one task's
// points: a point is dominated when another has at-least-equal
// accuracy at at-most-equal energy with a strict edge on either axis.
func markPareto(points []BackendPoint) {
	for i := range points {
		dominated := false
		for j := range points {
			if j == i {
				continue
			}
			p, q := &points[i], &points[j]
			if q.Accuracy >= p.Accuracy && q.EnergyNJPerSite <= p.EnergyNJPerSite &&
				(q.Accuracy > p.Accuracy || q.EnergyNJPerSite < p.EnergyNJPerSite) {
				dominated = true
				break
			}
		}
		points[i].Pareto = !dominated
	}
}

// WriteBackendsReport renders rep as one table per task and, when
// jsonPath is non-empty, writes the JSON artifact.
func WriteBackendsReport(w io.Writer, rep *BackendsReport, jsonPath string) error {
	for _, task := range rep.Tasks {
		t := Table{
			Title:  fmt.Sprintf("Cross-backend sweep: %s (%s, %d iters, seed %d)", task, rep.Grid, rep.Iterations, rep.ChainSeed),
			Header: []string{"Backend", "Config", "Exact", "Accuracy", "vs exact", "ns/site", "nJ/site", "Pareto"},
		}
		for _, p := range rep.Points {
			if p.Task != task {
				continue
			}
			exact, pareto := "", ""
			if p.Exact {
				exact = "yes"
			}
			if p.Pareto {
				pareto = "*"
			}
			t.AddRow(p.Backend, p.Config, exact,
				fmt.Sprintf("%.4f", p.Accuracy), fmt.Sprintf("%.4f", p.AgreementVsExact),
				fmt.Sprintf("%.1f", p.NsPerSite), fmt.Sprintf("%.2f", p.EnergyNJPerSite), pareto)
		}
		if _, err := t.WriteTo(w); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "accuracy, agreement, energy and label digests are deterministic; ns/site is host wall-clock and never gated\n")
	if jsonPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", jsonPath)
	return nil
}

// Backends runs the sweep and prints the tables.
func Backends(ctx context.Context, w io.Writer) error {
	rep, err := RunBackends(ctx)
	if err != nil {
		return err
	}
	return WriteBackendsReport(w, rep, "")
}

// BackendsJSON runs the sweep, prints the tables and writes the JSON
// artifact.
func BackendsJSON(ctx context.Context, w io.Writer, jsonPath string) error {
	rep, err := RunBackends(ctx)
	if err != nil {
		return err
	}
	return WriteBackendsReport(w, rep, jsonPath)
}

// LoadBackendsReport reads a BackendsReport JSON artifact.
func LoadBackendsReport(path string) (*BackendsReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &BackendsReport{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	return rep, nil
}

// CompareBackendsReports checks the deterministic columns of cur
// against ref point by point — label digests byte-equal, accuracy /
// agreement / modeled energy within 1e-12, Pareto membership equal —
// and reports reference points the current tree no longer produces.
// ns/site is machine-dependent and deliberately not compared.
func CompareBackendsReports(ref, cur *BackendsReport) []string {
	type key struct{ task, backend, config string }
	curs := make(map[key]BackendPoint, len(cur.Points))
	for _, p := range cur.Points {
		curs[key{p.Task, p.Backend, p.Config}] = p
	}
	var bad []string
	id := func(k key) string {
		return strings.TrimSpace(fmt.Sprintf("%s/%s %s", k.task, k.backend, k.config))
	}
	for _, r := range ref.Points {
		k := key{r.Task, r.Backend, r.Config}
		c, ok := curs[k]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: missing from current sweep", id(k)))
			continue
		}
		if c.Digest != r.Digest {
			bad = append(bad, fmt.Sprintf("%s: label digest changed (chains are no longer byte-identical)", id(k)))
		}
		if math.Abs(c.Accuracy-r.Accuracy) > 1e-12 {
			bad = append(bad, fmt.Sprintf("%s: accuracy %.12f -> %.12f", id(k), r.Accuracy, c.Accuracy))
		}
		if math.Abs(c.AgreementVsExact-r.AgreementVsExact) > 1e-12 {
			bad = append(bad, fmt.Sprintf("%s: agreement-vs-exact %.12f -> %.12f", id(k), r.AgreementVsExact, c.AgreementVsExact))
		}
		if math.Abs(c.EnergyNJPerSite-r.EnergyNJPerSite) > 1e-12 {
			bad = append(bad, fmt.Sprintf("%s: modeled energy %.6f -> %.6f nJ/site", id(k), r.EnergyNJPerSite, c.EnergyNJPerSite))
		}
		if c.Pareto != r.Pareto {
			bad = append(bad, fmt.Sprintf("%s: Pareto membership %v -> %v", id(k), r.Pareto, c.Pareto))
		}
	}
	return bad
}

// BackendsCompare is the CI gate: re-run the sweep on the current tree
// and hold its deterministic columns to the committed reference.
func BackendsCompare(ctx context.Context, w io.Writer, refPath string) error {
	ref, err := LoadBackendsReport(refPath)
	if err != nil {
		return err
	}
	rep, err := RunBackends(ctx)
	if err != nil {
		return err
	}
	if err := WriteBackendsReport(w, rep, ""); err != nil {
		return err
	}
	if bad := CompareBackendsReports(ref, rep); len(bad) > 0 {
		for _, b := range bad {
			fmt.Fprintf(os.Stderr, "MISMATCH: %s\n", b)
		}
		return fmt.Errorf("%d deterministic column(s) diverged from %s", len(bad), refPath)
	}
	fmt.Fprintf(w, "backends gate: OK (%d points match %s)\n", len(rep.Points), refPath)
	return nil
}
