package bench

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"runtime"
	"testing"

	"repro/internal/gibbs"
	"repro/internal/obs"
)

// Observed is the host-speed recorder-overhead experiment backing the
// observability acceptance criteria: the nil-recorder path must stay
// within noise of the pre-observability engine, a full Registry must
// cost only a few percent at sweep granularity, and — the invariant
// that matters — an observed run must sample byte-identical labels to
// an unobserved one at every worker count.
//
// The experiment runs the sweep-engine acceptance configuration
// (256x256, M=16, exact Gibbs, checkerboard) three ways: recorder off,
// recorder on, and recorder on with an attached event stream, then
// cross-checks label digests for recorder on/off at W=1 and W=N.
func Observed(ctx context.Context, w io.Writer, reg *obs.Registry) error {
	model, init := sweepModel(sweepGridW, sweepGridH, 16)
	workers := runtime.GOMAXPROCS(0)

	measure := func(rec obs.Recorder) (float64, error) {
		opt := gibbs.Options{Iterations: 1, Schedule: gibbs.Checkerboard, Workers: workers, Recorder: rec}
		var runErr error
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := gibbs.Run(ctx, model, init, gibbs.NewExactGibbs(), opt, 7); err != nil {
					runErr = err
					b.FailNow()
				}
			}
		})
		if runErr != nil {
			return 0, runErr
		}
		return float64(r.NsPerOp()) / float64(sweepGridW*sweepGridH), nil
	}

	fmt.Fprintf(w, "grid %dx%d, M=16, exact Gibbs, checkerboard, W=%d\n", sweepGridW, sweepGridH, workers)
	offNs, err := measure(nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  recorder off:        %8.2f ns/site\n", offNs)
	if reg == nil {
		reg = obs.New()
	}
	onNs, err := measure(reg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  recorder on:         %8.2f ns/site  (%+.2f%%)\n", onNs, 100*(onNs-offNs)/offNs)
	streamed := obs.New()
	streamed.StreamTo(obs.NewEventSink(io.Discard))
	streamNs, err := measure(streamed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  recorder + stream:   %8.2f ns/site  (%+.2f%%)\n", streamNs, 100*(streamNs-offNs)/offNs)

	// The determinism invariant, checked at both ends of the worker
	// range: metrics read clocks and counters only, never the RNG.
	// On a single-CPU host the pooled path is still exercised at W=2.
	pooled := workers
	if pooled < 2 {
		pooled = 2
	}
	for _, wk := range []int{1, pooled} {
		opt := gibbs.Options{Iterations: 4, Schedule: gibbs.Checkerboard, Workers: wk}
		plain, err := gibbs.Run(ctx, model, init, gibbs.NewExactGibbs(), opt, 7)
		if err != nil {
			return err
		}
		opt.Recorder = obs.New()
		observed, err := gibbs.Run(ctx, model, init, gibbs.NewExactGibbs(), opt, 7)
		if err != nil {
			return err
		}
		dp, do := labelDigest(plain.Final.Labels), labelDigest(observed.Final.Labels)
		status := "byte-identical"
		if dp != do {
			status = "DIVERGED"
		}
		fmt.Fprintf(w, "  W=%-2d digest %s… vs %s…: %s\n", wk, dp[:12], do[:12], status)
		if dp != do {
			return fmt.Errorf("bench: observed run diverged from unobserved at W=%d", wk)
		}
	}

	s := reg.Snapshot()
	fmt.Fprintf(w, "  registry: %d sweeps, %d color phases",
		s.Counter("gibbs.sweeps"), histTotal(s, "gibbs.color_phase_ns"))
	if sp, ok := s.Span("gibbs.sweep"); ok {
		fmt.Fprintf(w, ", sweep span %d..%d ns", sp.MinNs, sp.MaxNs)
	}
	fmt.Fprintln(w)
	return nil
}

// labelDigest hashes a label slice into a stable hex string. Labels
// are hashed as 8-byte words so the digest is unchanged from the
// pre-packed (word-typed) label representation.
func labelDigest(labels []uint8) string {
	h := sha256.New()
	var word [8]byte
	for _, l := range labels {
		binary.LittleEndian.PutUint64(word[:], uint64(l))
		h.Write(word[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// histTotal returns the named histogram's sample count, or 0.
func histTotal(s *obs.Snapshot, name string) uint64 {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h.Total()
		}
	}
	return 0
}
