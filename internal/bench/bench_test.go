package bench

import (
	"bytes"
	"context"
	"os"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := Table{Title: "T", Header: []string{"a", "long-column"}}
	tbl.AddRow("x", "1")
	tbl.AddRow("yyyy", "2")
	var buf bytes.Buffer
	if _, err := tbl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"T\n", "a     long-column", "yyyy  2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestComparisonRelDiff(t *testing.T) {
	if d := (Comparison{Paper: 10, Measured: 12}).RelDiff(); d != 0.2 {
		t.Fatalf("rel diff %v", d)
	}
	if d := (Comparison{Paper: 0, Measured: 0}).RelDiff(); d != 0 {
		t.Fatalf("zero/zero rel diff %v", d)
	}
	if d := (Comparison{Paper: 0, Measured: 1}).RelDiff(); d < 1e300 {
		t.Fatalf("zero-paper rel diff %v", d)
	}
}

func TestFormatComparisons(t *testing.T) {
	var buf bytes.Buffer
	err := FormatComparisons("cmp", []Comparison{{Metric: "m", Paper: 2, Measured: 2.2}}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "10.0%") {
		t.Fatalf("output: %s", buf.String())
	}
}

// The experiment generators must all run cleanly end to end; content
// correctness is covered by the underlying package tests.
func TestTable2Generates(t *testing.T) {
	var buf bytes.Buffer
	if err := Table2(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"segmentation", "motion", "HD", "Small", "RSU-G4"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("Table 2 output missing %q:\n%s", want, buf.String())
		}
	}
}

func TestTables3And4Generate(t *testing.T) {
	var buf bytes.Buffer
	if err := Table3(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "3.91") {
		t.Fatalf("Table 3 missing 15nm total:\n%s", buf.String())
	}
	buf.Reset()
	if err := Table4(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2898") {
		t.Fatalf("Table 4 missing 15nm total:\n%s", buf.String())
	}
}

func TestFigure8Generates(t *testing.T) {
	var buf bytes.Buffer
	if err := Figure8(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "over Opt GPU") {
		t.Fatalf("Figure 8 output:\n%s", buf.String())
	}
}

func TestAcceleratorGenerates(t *testing.T) {
	var buf bytes.Buffer
	if err := Accelerator(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "336") {
		t.Fatalf("accelerator output:\n%s", buf.String())
	}
}

func TestFigure7Generates(t *testing.T) {
	var buf bytes.Buffer
	dir := t.TempDir()
	if err := Figure7(context.Background(), &buf, dir); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mislabel rate") {
		t.Fatalf("Figure 7 output:\n%s", buf.String())
	}
}

func TestFidelityGenerates(t *testing.T) {
	if testing.Short() {
		t.Skip("fidelity sweep is slow")
	}
	var buf bytes.Buffer
	if err := Fidelity(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	for _, app := range []string{"segmentation", "motion", "stereo"} {
		if !strings.Contains(buf.String(), app) {
			t.Fatalf("fidelity output missing %s:\n%s", app, buf.String())
		}
	}
}

func TestAblationGenerates(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep is slow")
	}
	var buf bytes.Buffer
	if err := Ablation(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"geometric", "binary", "K=4"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("ablation output missing %q:\n%s", want, buf.String())
		}
	}
}

func TestRatioGenerates(t *testing.T) {
	if testing.Short() {
		t.Skip("ratio sweep is slow")
	}
	var buf bytes.Buffer
	if err := Ratio(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "P90") {
		t.Fatalf("ratio output:\n%s", buf.String())
	}
}

func TestWriteCSVSeries(t *testing.T) {
	if testing.Short() {
		t.Skip("ratio sweep is slow")
	}
	dir := t.TempDir()
	if err := WriteCSVSeries(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"table2.csv", "figure8.csv", "ratio.csv", "sizesweep.csv"} {
		data, err := os.ReadFile(dir + "/" + name)
		if err != nil {
			t.Fatal(err)
		}
		if len(strings.Split(strings.TrimSpace(string(data)), "\n")) < 3 {
			t.Fatalf("%s too short:\n%s", name, data)
		}
	}
}

func TestGPUSimGenerates(t *testing.T) {
	var buf bytes.Buffer
	if err := GPUSim(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "motion RSU-G1") {
		t.Fatalf("gpusim output:\n%s", buf.String())
	}
}
