package mrf

import (
	"fmt"
	"math"

	"repro/internal/img"
)

// tables is the compiled fast path of a Model: the iteration-invariant
// parts of the conditional-energy computation, materialized once so the
// per-site inner loop is pure slice arithmetic with zero closure calls.
//
//   - U caches the premultiplied unary (data) term
//     U[(y*W+x)*M + l] = LambdaS * Singleton(x, y, l).
//     It depends only on the observation, not the chain state, so one
//     table serves every sweep of a run. Memory cost: W*H*M*8 bytes.
//   - D caches the premultiplied doubleton term indexed by the
//     *neighbor* label first, D[nl*M + l] = LambdaD * Doubleton(l, nl),
//     so accumulating one neighbor touches one contiguous M-row.
//   - DDiag is the diagonal-clique analogue for second-order models,
//     DDiag[nl*M + l] = LambdaDiag * Doubleton(l, nl).
//
// Every cached entry is the exact product the closure path computes, and
// the table path accumulates them in the same order, so compiled and
// uncompiled evaluation are bit-identical — a property the equivalence
// tests in internal/gibbs and internal/core rely on.
type tables struct {
	u     []float64
	d     []float64
	dDiag []float64

	// expLUT caches exp(-k/expT) for integer energy gaps k. All the
	// paper's applications define their potentials in the RSU's integer
	// fixed-point domain, so every conditional-energy gap (E(l) - minE)
	// is an exact small integer float and the Boltzmann exponentiation
	// collapses to a table load. Entries are computed with math.Exp on
	// the same operands the direct path would pass, so LUT and direct
	// evaluation are bit-identical. Nil when any table entry is
	// non-integral (or negative), or the energy range exceeds
	// maxRateLUT.
	expLUT []float64
	expT   float64

	// ui/di/diDiag mirror u/d/dDiag quantized to int32 — the packed
	// energy domain of the fused sweep kernel (see kernel.go). They are
	// built only when the integer gate that enables expLUT passes, so
	// every entry is an exact small integer and int32 accumulation
	// produces the same energies (and therefore, through the shared
	// LUT, bit-identical rates) as the float64 path. Halving the entry
	// width halves the unary table's memory traffic, which dominates
	// the sweep's bandwidth cost.
	ui     []int32
	di     []int32
	diDiag []int32

	// diPair folds two doubleton lookups into one:
	// diPair[(a*M+b)*M + l] = di[a*M+l] + di[b*M+l]. An interior
	// first-order site then gathers u + pair(left,right) + pair(up,down)
	// — three table streams instead of five, two adds instead of four.
	// Integer addition is exact, so the folded sums equal the unfolded
	// ones. Size M^3 int32 (16 KiB at M=16, 1 MiB at the M=64 cap).
	diPair []int32
}

// maxRateLUT bounds the rate LUT to 2 MiB (entries are float64). The
// applications' 8-bit-domain energies stay far below it; a model whose
// integer energy range exceeds the cap simply keeps calling math.Exp.
const maxRateLUT = 1 << 18

// Compile materializes the model's potential tables and switches
// SiteEnergy, ConditionalEnergies/Rates/Probs and TotalEnergy to the
// table-driven fast path. It costs W*H*M singleton evaluations up front
// and W*H*M*8 bytes of memory (plus two M×M doubleton tables).
//
// The temperature T may change freely after compiling (annealing only
// touches the exponentiation, never the tables), but changing W, H, M,
// Hood, the lambdas or the potential closures invalidates the tables:
// call Compile again, or Decompile to fall back to the closure path.
func (m *Model) Compile() error {
	if err := m.Validate(); err != nil {
		return fmt.Errorf("mrf: cannot compile: %w", err)
	}
	t := &tables{
		u: make([]float64, m.W*m.H*m.M),
		d: make([]float64, m.M*m.M),
	}
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			base := (y*m.W + x) * m.M
			for l := 0; l < m.M; l++ {
				t.u[base+l] = m.LambdaS * m.Singleton(x, y, l)
			}
		}
	}
	for nl := 0; nl < m.M; nl++ {
		for l := 0; l < m.M; l++ {
			t.d[nl*m.M+l] = m.LambdaD * m.Doubleton(l, nl)
		}
	}
	if m.Hood == SecondOrder {
		t.dDiag = make([]float64, m.M*m.M)
		for nl := 0; nl < m.M; nl++ {
			for l := 0; l < m.M; l++ {
				t.dDiag[nl*m.M+l] = m.LambdaDiag * m.Doubleton(l, nl)
			}
		}
	}
	t.buildRateLUT(m.T)
	if t.expLUT != nil {
		// The integer gate passed: every table entry is a non-negative
		// integer <= maxRateLUT, so int32 holds it exactly.
		t.ui = quantizeInt32(t.u)
		t.di = quantizeInt32(t.d)
		if t.dDiag != nil {
			t.diDiag = quantizeInt32(t.dDiag)
		}
		t.diPair = make([]int32, m.M*m.M*m.M)
		for a := 0; a < m.M; a++ {
			for b := 0; b < m.M; b++ {
				row := t.diPair[(a*m.M+b)*m.M:]
				ra := t.di[a*m.M : (a+1)*m.M]
				rb := t.di[b*m.M : (b+1)*m.M]
				for l := 0; l < m.M; l++ {
					row[l] = ra[l] + rb[l]
				}
			}
		}
	}
	m.tables = t
	return nil
}

// quantizeInt32 copies integer-valued float64 energies into the packed
// int32 domain. Callers must have passed vals through integerSpan.
func quantizeInt32(vals []float64) []int32 {
	out := make([]int32, len(vals))
	for i, v := range vals {
		out[i] = int32(v)
	}
	return out
}

// buildRateLUT materializes exp(-k/T) for every reachable integer
// energy gap, when the model's energies are integral (see tables).
func (t *tables) buildRateLUT(temp float64) {
	span, ok := integerSpan(t.u)
	if !ok {
		return
	}
	dSpan, dOK := integerSpan(t.d)
	if !dOK {
		return
	}
	span += 4 * dSpan
	if t.dDiag != nil {
		gSpan, gOK := integerSpan(t.dDiag)
		if !gOK {
			return
		}
		span += 4 * gSpan
	}
	if span+1 > maxRateLUT {
		return
	}
	if len(t.expLUT) != span+1 {
		t.expLUT = make([]float64, span+1)
	}
	for k := range t.expLUT {
		t.expLUT[k] = math.Exp(-float64(k) / temp)
	}
	t.expT = temp
}

// integerSpan returns the maximum entry of vals if every entry is a
// non-negative integer (ok=false otherwise). The conditional-energy gap
// E(l)-minE of any site is bounded by span(U) + 4·span(D) [+ 4·span(DDiag)],
// and integer energies make every gap an exact integer float.
func integerSpan(vals []float64) (span int, ok bool) {
	maxV := 0.0
	for _, v := range vals {
		//lint:ignore rsulint/floateq exact integrality gate: the LUT fast path is only sound if v is precisely an integer float, so a tolerance here would be a bug
		if !(v >= 0) || v != math.Trunc(v) || v > maxRateLUT {
			return 0, false
		}
		if v > maxV {
			maxV = v
		}
	}
	return int(maxV), true
}

// RetuneRateLUT rebuilds the compiled rate LUT for the model's current
// temperature. Annealed runs call this after each temperature step (at
// a point where no sweep is in flight); it is a no-op for uncompiled
// models, models without a LUT, or an unchanged temperature. While the
// LUT temperature and m.T disagree, ConditionalRates simply falls back
// to math.Exp, so forgetting to retune costs speed, never correctness.
func (m *Model) RetuneRateLUT() {
	t := m.tables
	//lint:ignore rsulint/floateq cache-key identity: expT stores the exact T the LUT was built from, so only bit-equality proves the table is current
	if t == nil || t.expLUT == nil || t.expT == m.T {
		return
	}
	for k := range t.expLUT {
		t.expLUT[k] = math.Exp(-float64(k) / m.T)
	}
	t.expT = m.T
}

// Compiled reports whether the model currently serves the table-driven
// fast path.
func (m *Model) Compiled() bool { return m.tables != nil }

// Decompile drops the compiled tables, returning the model to the
// closure path and releasing the W*H*M*8-byte unary table.
func (m *Model) Decompile() { m.tables = nil }

// fastConditionalEnergies is the table-driven ConditionalEnergies inner
// loop: one copy from the unary table plus one contiguous row-add per
// in-bounds neighbor.
func (m *Model) fastConditionalEnergies(buf []float64, lm *img.LabelMap, x, y int) {
	t := m.tables
	mm := m.M
	copy(buf, t.u[(y*m.W+x)*mm:(y*m.W+x+1)*mm])
	for _, off := range NeighborOffsets {
		nx, ny := x+off[0], y+off[1]
		if nx < 0 || nx >= m.W || ny < 0 || ny >= m.H {
			continue
		}
		nl := int(lm.Labels[ny*m.W+nx])
		row := t.d[nl*mm : (nl+1)*mm]
		for l, dv := range row {
			buf[l] += dv
		}
	}
	if m.Hood == SecondOrder {
		for _, off := range diagonalOffsets {
			nx, ny := x+off[0], y+off[1]
			if nx < 0 || nx >= m.W || ny < 0 || ny >= m.H {
				continue
			}
			nl := int(lm.Labels[ny*m.W+nx])
			row := t.dDiag[nl*mm : (nl+1)*mm]
			for l, dv := range row {
				buf[l] += dv
			}
		}
	}
}

// fastSiteEnergy is the table-driven SiteEnergy: one unary load plus one
// table lookup per in-bounds neighbor, accumulated in the closure path's
// order so the result is bit-identical.
func (m *Model) fastSiteEnergy(lm *img.LabelMap, x, y, label int) float64 {
	t := m.tables
	mm := m.M
	e := t.u[(y*m.W+x)*mm+label]
	for _, off := range NeighborOffsets {
		nx, ny := x+off[0], y+off[1]
		if nx < 0 || nx >= m.W || ny < 0 || ny >= m.H {
			continue
		}
		e += t.d[int(lm.Labels[ny*m.W+nx])*mm+label]
	}
	if m.Hood == SecondOrder {
		for _, off := range diagonalOffsets {
			nx, ny := x+off[0], y+off[1]
			if nx < 0 || nx >= m.W || ny < 0 || ny >= m.H {
				continue
			}
			e += t.dDiag[int(lm.Labels[ny*m.W+nx])*mm+label]
		}
	}
	return e
}

// fastTotalEnergy is the table-driven TotalEnergy (same clique-counting
// convention and accumulation order as the closure path).
func (m *Model) fastTotalEnergy(lm *img.LabelMap) float64 {
	t := m.tables
	mm := m.M
	e := 0.0
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			l := int(lm.Labels[y*m.W+x])
			e += t.u[(y*m.W+x)*mm+l]
			if x+1 < m.W {
				e += t.d[int(lm.Labels[y*m.W+x+1])*mm+l]
			}
			if y+1 < m.H {
				e += t.d[int(lm.Labels[(y+1)*m.W+x])*mm+l]
			}
			if m.Hood == SecondOrder && y+1 < m.H {
				if x+1 < m.W {
					e += t.dDiag[int(lm.Labels[(y+1)*m.W+x+1])*mm+l]
				}
				if x-1 >= 0 {
					e += t.dDiag[int(lm.Labels[(y+1)*m.W+x-1])*mm+l]
				}
			}
		}
	}
	return e
}
