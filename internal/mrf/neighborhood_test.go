package mrf

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/img"
)

func secondOrderModel(w, h, m int) *Model {
	mm := testModel(w, h, m)
	mm.Hood = SecondOrder
	mm.LambdaDiag = 0.25
	return mm
}

func TestNeighborhoodMetadata(t *testing.T) {
	if FirstOrder.String() != "first-order" || SecondOrder.String() != "second-order" {
		t.Error("names")
	}
	if Neighborhood(9).String() != "Neighborhood(9)" {
		t.Error("unknown name")
	}
	if FirstOrder.Colors() != 2 || SecondOrder.Colors() != 4 {
		t.Error("color counts")
	}
	if len(FirstOrder.Offsets()) != 4 || len(SecondOrder.Offsets()) != 8 {
		t.Error("offset counts")
	}
}

// TestSecondOrderColoringIsProper: no two 8-neighbors share a color, and
// the four classes partition the grid.
func TestSecondOrderColoringIsProper(t *testing.T) {
	w, h := 9, 7
	counts := make([]int, 4)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			c := SecondOrder.ColorOf(x, y)
			if c < 0 || c > 3 {
				t.Fatalf("color %d out of range", c)
			}
			counts[c]++
			for _, off := range SecondOrder.Offsets() {
				nx, ny := x+off[0], y+off[1]
				if nx < 0 || nx >= w || ny < 0 || ny >= h {
					continue
				}
				if SecondOrder.ColorOf(nx, ny) == c {
					t.Fatalf("8-neighbors (%d,%d) and (%d,%d) share color %d", x, y, nx, ny, c)
				}
			}
		}
	}
	total := 0
	for _, c := range counts {
		if c == 0 {
			t.Fatal("empty color class")
		}
		total += c
	}
	if total != w*h {
		t.Fatalf("partition covers %d of %d sites", total, w*h)
	}
}

func TestValidateRejectsBadNeighborhood(t *testing.T) {
	m := testModel(4, 4, 3)
	m.Hood = Neighborhood(7)
	if err := m.Validate(); err == nil {
		t.Fatal("unknown neighborhood accepted")
	}
	m = secondOrderModel(4, 4, 3)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	m.LambdaDiag = -1
	if err := m.Validate(); err == nil {
		t.Fatal("negative diagonal weight accepted")
	}
}

// TestSecondOrderSiteEnergyManual: hand-check the 9-clique sum at an
// interior site.
func TestSecondOrderSiteEnergyManual(t *testing.T) {
	m := secondOrderModel(3, 3, 4)
	lm := img.NewLabelMap(3, 3)
	lm.Set(0, 0, 1)
	lm.Set(2, 0, 2)
	lm.Set(0, 2, 3)
	lm.Set(2, 2, 1)
	label := 2 // singleton at (1,1): want (1+1)%4=2 -> 0
	// axial neighbors all 0: 0.5 * 4 * (2-0)^2 = 8
	// diagonals 1,2,3,1: 0.25 * [(2-1)^2+(2-2)^2+(2-3)^2+(2-1)^2] = 0.25*3
	want := 8 + 0.75
	if got := m.SiteEnergy(lm, 1, 1, label); math.Abs(got-want) > 1e-12 {
		t.Fatalf("second-order SiteEnergy = %v, want %v", got, want)
	}
}

// TestSecondOrderConditionalMatchesSiteEnergy: vectorized and scalar
// paths agree under the extended neighborhood.
func TestSecondOrderConditionalMatchesSiteEnergy(t *testing.T) {
	m := secondOrderModel(5, 4, 3)
	lm := img.NewLabelMap(5, 4)
	for i := range lm.Labels {
		lm.Labels[i] = uint8((i * 5) % 3)
	}
	var buf []float64
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			buf = m.ConditionalEnergies(buf, lm, x, y)
			for l := 0; l < m.M; l++ {
				if want := m.SiteEnergy(lm, x, y, l); math.Abs(buf[l]-want) > 1e-12 {
					t.Fatalf("(%d,%d,%d): %v != %v", x, y, l, buf[l], want)
				}
			}
		}
	}
}

// TestSecondOrderTotalEnergyDelta: the delta identity pins the
// count-each-clique-once bookkeeping with diagonals.
func TestSecondOrderTotalEnergyDelta(t *testing.T) {
	m := secondOrderModel(5, 5, 4)
	lm := img.NewLabelMap(5, 5)
	for i := range lm.Labels {
		lm.Labels[i] = uint8((i * 3) % 4)
	}
	for _, site := range [][2]int{{0, 0}, {2, 2}, {4, 4}, {1, 3}, {4, 0}, {0, 4}} {
		x, y := site[0], site[1]
		old := lm.At(x, y)
		newLabel := (old + 1) % m.M
		before := m.TotalEnergy(lm)
		eOld := m.SiteEnergy(lm, x, y, old)
		eNew := m.SiteEnergy(lm, x, y, newLabel)
		lm.Set(x, y, newLabel)
		after := m.TotalEnergy(lm)
		lm.Set(x, y, old)
		if math.Abs((after-before)-(eNew-eOld)) > 1e-9 {
			t.Fatalf("site (%d,%d): ΔTotal=%v, ΔSite=%v", x, y, after-before, eNew-eOld)
		}
	}
}

// Property: a second-order model with LambdaDiag=0 has identical
// energies to the first-order model.
func TestSecondOrderDegeneratesToFirstOrder(t *testing.T) {
	f := func(seed uint8) bool {
		m1 := testModel(4, 4, 3)
		m2 := testModel(4, 4, 3)
		m2.Hood = SecondOrder
		m2.LambdaDiag = 0
		lm := img.NewLabelMap(4, 4)
		for i := range lm.Labels {
			lm.Labels[i] = uint8((int(seed) + i*7) % 3)
		}
		if m1.TotalEnergy(lm) != m2.TotalEnergy(lm) {
			return false
		}
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				for l := 0; l < 3; l++ {
					if m1.SiteEnergy(lm, x, y, l) != m2.SiteEnergy(lm, x, y, l) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
