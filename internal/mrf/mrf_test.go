package mrf

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/img"
)

// uniformModel builds a tiny model with a data term that prefers
// label == (x+y) mod M and squared-difference smoothness.
func testModel(w, h, m int) *Model {
	return &Model{
		W: w, H: h, M: m,
		T:       1,
		LambdaS: 1, LambdaD: 0.5,
		Singleton: func(x, y, label int) float64 {
			want := (x + y) % m
			return SquaredDiff(label, want)
		},
		Doubleton: SquaredDiff,
	}
}

func TestValidate(t *testing.T) {
	m := testModel(4, 4, 3)
	if err := m.Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	bad := []func(*Model){
		func(m *Model) { m.W = 0 },
		func(m *Model) { m.M = 1 },
		func(m *Model) { m.T = 0 },
		func(m *Model) { m.Singleton = nil },
		func(m *Model) { m.Doubleton = nil },
		func(m *Model) { m.LambdaD = -1 },
	}
	for i, mutate := range bad {
		mm := testModel(4, 4, 3)
		mutate(mm)
		if err := mm.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

// TestSiteEnergyMatchesManual checks Eq. 1's five-clique sum against a
// hand computation on an interior site.
func TestSiteEnergyMatchesManual(t *testing.T) {
	m := testModel(3, 3, 4)
	lm := img.NewLabelMap(3, 3)
	// neighbors of (1,1): left(0,1)=1, right(2,1)=2, up(1,0)=3, down(1,2)=0
	lm.Set(0, 1, 1)
	lm.Set(2, 1, 2)
	lm.Set(1, 0, 3)
	lm.Set(1, 2, 0)
	label := 2
	// singleton: want (1+1)%4=2, (2-2)^2 = 0
	want := 0.0
	// doubletons: 0.5 * [(2-1)^2 + (2-2)^2 + (2-3)^2 + (2-0)^2] = 0.5*6
	want += 0.5 * 6
	if got := m.SiteEnergy(lm, 1, 1, label); math.Abs(got-want) > 1e-12 {
		t.Fatalf("SiteEnergy = %v, want %v", got, want)
	}
}

// TestBorderSitesSkipMissingCliques verifies that a corner site only sums
// its two existing neighbor cliques.
func TestBorderSitesSkipMissingCliques(t *testing.T) {
	m := testModel(3, 3, 4)
	lm := img.NewLabelMap(3, 3)
	lm.Set(1, 0, 3)
	lm.Set(0, 1, 2)
	// corner (0,0), label 0: singleton (0-0)^2 = 0;
	// neighbors right=(1,0)=3 and down=(0,1)=2: 0.5*(9+4)
	want := 0.5 * 13
	if got := m.SiteEnergy(lm, 0, 0, 0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("corner SiteEnergy = %v, want %v", got, want)
	}
}

// TestConditionalEnergiesMatchSiteEnergy: the vectorized path must agree
// with per-label SiteEnergy calls for every site and label.
func TestConditionalEnergiesMatchSiteEnergy(t *testing.T) {
	m := testModel(5, 4, 3)
	lm := img.NewLabelMap(5, 4)
	for i := range lm.Labels {
		lm.Labels[i] = uint8(i % 3)
	}
	var buf []float64
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			buf = m.ConditionalEnergies(buf, lm, x, y)
			for l := 0; l < m.M; l++ {
				want := m.SiteEnergy(lm, x, y, l)
				if math.Abs(buf[l]-want) > 1e-12 {
					t.Fatalf("(%d,%d) label %d: %v != %v", x, y, l, buf[l], want)
				}
			}
		}
	}
}

func TestConditionalProbsNormalized(t *testing.T) {
	m := testModel(4, 4, 5)
	lm := img.NewLabelMap(4, 4)
	var buf []float64
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			buf = m.ConditionalProbs(buf, lm, x, y)
			sum := 0.0
			for _, p := range buf {
				if p < 0 || p > 1 {
					t.Fatalf("probability %v out of range", p)
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-12 {
				t.Fatalf("probs sum to %v", sum)
			}
		}
	}
}

// TestConditionalProbsBoltzmann checks the exponential form directly:
// p(a)/p(b) == exp(-(E(a)-E(b))/T).
func TestConditionalProbsBoltzmann(t *testing.T) {
	m := testModel(3, 3, 4)
	m.T = 2.5
	lm := img.NewLabelMap(3, 3)
	es := m.ConditionalEnergies(nil, lm, 1, 1)
	ps := m.ConditionalProbs(nil, lm, 1, 1)
	for a := 0; a < m.M; a++ {
		for b := 0; b < m.M; b++ {
			wantRatio := math.Exp(-(es[a] - es[b]) / m.T)
			gotRatio := ps[a] / ps[b]
			if math.Abs(gotRatio-wantRatio) > 1e-9*wantRatio {
				t.Fatalf("ratio(%d,%d) = %v, want %v", a, b, gotRatio, wantRatio)
			}
		}
	}
}

// TestTotalEnergyDeltaConsistency: flipping one site changes TotalEnergy
// by exactly the difference in SiteEnergy. This pins the "each clique
// counted once" bookkeeping.
func TestTotalEnergyDeltaConsistency(t *testing.T) {
	m := testModel(5, 5, 4)
	lm := img.NewLabelMap(5, 5)
	for i := range lm.Labels {
		lm.Labels[i] = uint8((i * 7) % 4)
	}
	for _, site := range [][2]int{{0, 0}, {2, 2}, {4, 4}, {0, 3}, {4, 0}} {
		x, y := site[0], site[1]
		old := lm.At(x, y)
		newLabel := (old + 1) % m.M
		before := m.TotalEnergy(lm)
		eOld := m.SiteEnergy(lm, x, y, old)
		eNew := m.SiteEnergy(lm, x, y, newLabel)
		lm.Set(x, y, newLabel)
		after := m.TotalEnergy(lm)
		lm.Set(x, y, old)
		if math.Abs((after-before)-(eNew-eOld)) > 1e-9 {
			t.Fatalf("site (%d,%d): ΔTotal=%v, ΔSite=%v", x, y, after-before, eNew-eOld)
		}
	}
}

// TestCheckerboardIsProper2Coloring: no two 4-neighbors share a color and
// the two color classes partition the grid.
func TestCheckerboardIsProper2Coloring(t *testing.T) {
	w, h := 7, 5
	s0 := CheckerboardSites(w, h, 0)
	s1 := CheckerboardSites(w, h, 1)
	if len(s0)+len(s1) != w*h {
		t.Fatalf("partition sizes %d+%d != %d", len(s0), len(s1), w*h)
	}
	for _, s := range s0 {
		for _, off := range NeighborOffsets {
			nx, ny := s[0]+off[0], s[1]+off[1]
			if nx < 0 || nx >= w || ny < 0 || ny >= h {
				continue
			}
			if Color(nx, ny) == 0 {
				t.Fatalf("neighbors (%v) and (%d,%d) share color", s, nx, ny)
			}
		}
	}
}

func TestSquaredDiff(t *testing.T) {
	if SquaredDiff(3, 7) != 16 || SquaredDiff(7, 3) != 16 || SquaredDiff(5, 5) != 0 {
		t.Fatal("SquaredDiff wrong")
	}
}

func TestTruncatedQuadratic(t *testing.T) {
	f := TruncatedQuadratic(9)
	if f(0, 2) != 4 {
		t.Fatal("below cap wrong")
	}
	if f(0, 5) != 9 {
		t.Fatal("cap not applied")
	}
}

func TestPotts(t *testing.T) {
	f := Potts(2.5)
	if f(3, 3) != 0 || f(3, 4) != 2.5 {
		t.Fatal("Potts wrong")
	}
}

func TestVectorSpaceRoundTrip(t *testing.T) {
	v := VectorSpace{R: 3}
	if v.Size() != 49 {
		t.Fatalf("Size = %d", v.Size())
	}
	for l := 0; l < v.Size(); l++ {
		dx, dy := v.Vec(l)
		if dx < -3 || dx > 3 || dy < -3 || dy > 3 {
			t.Fatalf("Vec(%d) = (%d,%d) outside window", l, dx, dy)
		}
		if v.Index(dx, dy) != l {
			t.Fatalf("Index(Vec(%d)) = %d", l, v.Index(dx, dy))
		}
	}
}

func TestVectorSpacePanics(t *testing.T) {
	v := VectorSpace{R: 2}
	for _, f := range []func(){
		func() { v.Vec(-1) },
		func() { v.Vec(25) },
		func() { v.Index(3, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: SquaredDiffVec is symmetric, non-negative, and zero iff the
// labels coincide.
func TestSquaredDiffVecProperties(t *testing.T) {
	v := VectorSpace{R: 3}
	f := func(aRaw, bRaw uint8) bool {
		a := int(aRaw) % v.Size()
		b := int(bRaw) % v.Size()
		d := v.SquaredDiffVec(a, b)
		if d < 0 || d != v.SquaredDiffVec(b, a) {
			return false
		}
		return (d == 0) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSquaredDiffVecValue(t *testing.T) {
	v := VectorSpace{R: 3}
	a := v.Index(-1, 2)
	b := v.Index(2, -2)
	// (2-(-1))^2 + (-2-2)^2 = 9 + 16
	if got := v.SquaredDiffVec(a, b); got != 25 {
		t.Fatalf("SquaredDiffVec = %v, want 25", got)
	}
}
