package mrf

import (
	"math"
	"sync"

	"repro/internal/img"
	"repro/internal/rng"
)

// Kernel is the fused packed-label sweep fast path: a whole color-row
// of exact-Gibbs updates in one call, with no per-site interface
// dispatch, int32 energy accumulation over the quantized tables
// (tables.ui/di/diPair/diDiag), rate lookup through the compiled exp
// LUT, and a branch-free categorical draw.
//
// Every step is constructed to be bit-identical to the generic path
// (ConditionalRates + Source.CategoricalRates):
//
//   - the energies are exact small integers, so int32 sums equal the
//     float64 sums the closure/table paths compute, in any order —
//     which also licenses folding neighbor pairs through diPair;
//   - the minimum-energy subtraction yields the same integer gap, and
//     expLUT[k] is computed by math.Exp on the same operand the direct
//     path would pass;
//   - the rate total and the cumulative draw scan accumulate in the
//     reference order (those sums are NOT reassociated — float64
//     addition is order-sensitive), and the draw consumes a single
//     Float64 per site in site order, selecting the same index as
//     CategoricalRates (see Source.CategoricalRatesBranchfree).
//
// The worker-count-invariance and compiled-vs-closure equivalence
// tests in internal/gibbs exercise exactly this identity.
type Kernel struct {
	m *Model
}

// Kernel returns the fused sweep kernel for a compiled model whose
// energies passed the integer gate, or nil when the model must stay on
// the generic per-site path (uncompiled, or non-integer energies).
// The kernel reads the model's live tables, so Compile/Decompile and
// RetuneRateLUT after this call are observed; gate each sweep on
// Ready.
func (m *Model) Kernel() *Kernel {
	if m.tables == nil || m.tables.ui == nil {
		return nil
	}
	return &Kernel{m: m}
}

// Ready reports whether the kernel can serve draws right now: the
// packed tables exist and the rate LUT matches the model's current
// temperature (annealing retunes the LUT between sweeps; a stale LUT
// means the generic path must run instead).
func (k *Kernel) Ready() bool {
	t := k.m.tables
	//lint:ignore rsulint/floateq cache-key identity: expT stores the exact T the LUT was built from, so only bit-equality proves the table is current
	return t != nil && t.ui != nil && t.expLUT != nil && t.expT == k.m.T
}

// Scratch is the per-tile working memory of a kernel sweep: one int32
// energy row and one float64 rate row, both of length M. Acquire with
// GetScratch once per tile/span (not per site — the pool round-trip
// would dominate a site update) and return it with PutScratch.
type Scratch struct {
	e     []int32
	rates []float64
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch returns kernel scratch sized for m labels, recycled
// through a sync.Pool so steady-state sweeps allocate nothing.
func GetScratch(m int) *Scratch {
	sc := scratchPool.Get().(*Scratch)
	if cap(sc.e) < m {
		sc.e = make([]int32, m)
		sc.rates = make([]float64, m)
	}
	sc.e = sc.e[:m]
	sc.rates = sc.rates[:m]
	return sc
}

// PutScratch returns scratch to the pool.
func PutScratch(sc *Scratch) { scratchPool.Put(sc) }

// SweepRow resamples sites (x0, y), (x0+stride, y), ... in place using
// src. Checkerboard passes use stride 2 with x0 from RowStride; raster
// passes use x0=0, stride 1 (the kernel reads each left neighbor after
// it was re-sampled, preserving the sequential-chain semantics). The
// caller must hold the conditional-independence contract for parallel
// use and must have checked Ready.
//
//rsulint:hot
func (k *Kernel) SweepRow(lm *img.LabelMap, y, x0, stride int, src *rng.Source, sc *Scratch) {
	m := k.m
	labels := lm.Labels
	if y > 0 && y+1 < m.H && m.tables.diDiag == nil {
		k.sweepRowFirstOrder(labels, src, sc, y, x0, stride)
		return
	}
	for x := x0; x < m.W; x += stride {
		k.sampleSite(labels, src, sc, x, y)
	}
}

// sweepRowFirstOrder is the hot path: a first-order row with both
// vertical neighbors in bounds. Interior sites gather three table
// streams — unary, pair(left,right), pair(up,down) — then rate-lookup
// and draw; the two row-edge sites take the generic path. Neighbor
// labels are read through per-row slices (bounds-check-friendly), and
// the left label is carried across iterations: at stride 2 it is the
// previous site's right neighbor, at stride 1 (raster) it is the label
// the previous iteration just wrote.
func (k *Kernel) sweepRowFirstOrder(labels []uint8, src *rng.Source, sc *Scratch, y, x0, stride int) {
	m := k.m
	t := m.tables
	mm := m.M
	W := m.W
	base := y * W
	pair, lut := t.diPair, t.expLUT
	uRow := t.ui[base*mm : (base+W)*mm]
	rowC := labels[base : base+W]
	rowU := labels[base-W : base]
	rowD := labels[base+W : base+W+W]
	e, rates := sc.e[:mm], sc.rates[:mm]
	x := x0
	if x == 0 {
		k.sampleSite(labels, src, sc, 0, y)
		x += stride
	}
	ll := int(rowC[x-1])
	for ; x+1 < W; x += stride {
		lr := int(rowC[x+1])
		u := uRow[x*mm : x*mm+mm]
		plr := pair[(ll*mm+lr)*mm:][:mm]
		pud := pair[(int(rowU[x])*mm+int(rowD[x]))*mm:][:mm]
		minE := int32(math.MaxInt32)
		for l, uv := range u {
			v := uv + plr[l] + pud[l]
			e[l] = v
			minE = min(minE, v)
		}
		total := 0.0
		for l, ev := range e {
			r := lut[ev-minE]
			rates[l] = r
			total += r
		}
		uu := src.Float64() * total
		acc := 0.0
		n := 0
		for _, r := range rates {
			acc += r
			n += int(math.Float64bits(uu-acc)>>63) ^ 1
		}
		if n >= mm {
			n = lastPositive(rates)
		}
		rowC[x] = uint8(n)
		if stride == 2 {
			ll = lr
		} else {
			ll = n
		}
	}
	if x < W {
		k.sampleSite(labels, src, sc, x, y)
	}
}

// sampleSite is the generic single-site update: energies (interior
// fast gather or border path), LUT rates, branch-free draw, store.
func (k *Kernel) sampleSite(labels []uint8, src *rng.Source, sc *Scratch, x, y int) {
	m := k.m
	t := m.tables
	mm := m.M
	W := m.W
	site := y*W + x
	u := t.ui[site*mm : site*mm+mm]
	e, rates := sc.e, sc.rates
	var minE int32
	if x > 0 && x+1 < W && y > 0 && y+1 < m.H {
		minE = math.MaxInt32
		if dg := t.diDiag; dg == nil {
			pair := t.diPair
			plr := pair[(int(labels[site-1])*mm+int(labels[site+1]))*mm:][:mm]
			pud := pair[(int(labels[site-W])*mm+int(labels[site+W]))*mm:][:mm]
			for l := 0; l < mm; l++ {
				v := u[l] + plr[l] + pud[l]
				e[l] = v
				minE = min(minE, v)
			}
		} else {
			di := t.di
			a := di[int(labels[site-1])*mm:][:mm]
			b := di[int(labels[site+1])*mm:][:mm]
			c := di[int(labels[site-W])*mm:][:mm]
			d := di[int(labels[site+W])*mm:][:mm]
			g0 := dg[int(labels[site-W-1])*mm:][:mm]
			g1 := dg[int(labels[site-W+1])*mm:][:mm]
			g2 := dg[int(labels[site+W-1])*mm:][:mm]
			g3 := dg[int(labels[site+W+1])*mm:][:mm]
			for l := 0; l < mm; l++ {
				v := u[l] + a[l] + b[l] + c[l] + d[l] +
					g0[l] + g1[l] + g2[l] + g3[l]
				e[l] = v
				minE = min(minE, v)
			}
		}
	} else {
		minE = k.gatherBorder(e, labels, x, y, site, u)
	}
	// Rates through the LUT (bit-identical to math.Exp on the same
	// gaps), then the branch-free draw of CategoricalRatesBranchfree
	// inlined over the scratch row.
	lut := t.expLUT
	total := 0.0
	for l := 0; l < mm; l++ {
		r := lut[e[l]-minE]
		rates[l] = r
		total += r
	}
	uu := src.Float64() * total
	acc := 0.0
	n := 0
	for _, r := range rates {
		acc += r
		n += int(math.Float64bits(uu-acc)>>63) ^ 1
	}
	if n >= mm {
		n = lastPositive(rates)
	}
	labels[site] = uint8(n)
}

// lastPositive resolves the floating-point-slack case of the draw (the
// scan counted every prefix below u): the last index with positive
// rate, exactly as CategoricalRates. The minimum-energy label always
// has rate 1, so in practice the scan terminates immediately.
func lastPositive(rates []float64) int {
	for i := len(rates) - 1; i >= 0; i-- {
		if rates[i] > 0 {
			return i
		}
	}
	return len(rates) - 1
}

// gatherBorder accumulates the energies of a site with at least one
// out-of-bounds neighbor and returns their minimum. Borders are a
// vanishing fraction of a sweep, so clarity beats speed here; integer
// addition is exact, so the accumulation order is free.
func (k *Kernel) gatherBorder(e []int32, labels []uint8, x, y, site int, u []int32) int32 {
	m := k.m
	t := m.tables
	mm := m.M
	W, H := m.W, m.H
	copy(e, u)
	if x > 0 {
		addInt32(e, t.di[int(labels[site-1])*mm:][:mm])
	}
	if x+1 < W {
		addInt32(e, t.di[int(labels[site+1])*mm:][:mm])
	}
	if y > 0 {
		addInt32(e, t.di[int(labels[site-W])*mm:][:mm])
	}
	if y+1 < H {
		addInt32(e, t.di[int(labels[site+W])*mm:][:mm])
	}
	if dg := t.diDiag; dg != nil {
		if x > 0 && y > 0 {
			addInt32(e, dg[int(labels[site-W-1])*mm:][:mm])
		}
		if x+1 < W && y > 0 {
			addInt32(e, dg[int(labels[site-W+1])*mm:][:mm])
		}
		if x > 0 && y+1 < H {
			addInt32(e, dg[int(labels[site+W-1])*mm:][:mm])
		}
		if x+1 < W && y+1 < H {
			addInt32(e, dg[int(labels[site+W+1])*mm:][:mm])
		}
	}
	minE := e[0]
	for _, v := range e[1:] {
		minE = min(minE, v)
	}
	return minE
}

func addInt32(dst, src []int32) {
	for i, v := range src {
		dst[i] += v
	}
}
