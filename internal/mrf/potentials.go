package mrf

// Doubleton (smoothness) distance measures over the label space.
// The paper's RSU-G implements SquaredDiff (Eq. 2); TruncatedQuadratic
// and Potts are the other smoothness priors common in the MRF vision
// literature (Szeliski et al. survey, paper ref [36]) and are provided
// for the software substrate and ablations.

// SquaredDiff returns d(a,b) = (a-b)^2 for scalar labels — the paper's
// default distance measure.
func SquaredDiff(a, b int) float64 {
	d := float64(a - b)
	return d * d
}

// TruncatedQuadratic returns min((a-b)^2, cap), a robust smoothness
// prior that stops penalizing across genuine discontinuities.
func TruncatedQuadratic(capVal float64) func(a, b int) float64 {
	return func(a, b int) float64 {
		d := float64(a - b)
		if q := d * d; q < capVal {
			return q
		}
		return capVal
	}
}

// Potts returns 0 when labels agree and c otherwise — the classic
// piecewise-constant prior.
func Potts(c float64) func(a, b int) float64 {
	return func(a, b int) float64 {
		if a == b {
			return 0
		}
		return c
	}
}

// VectorSpace maps label indices to 2-D displacement vectors inside a
// square window, the label space of dense motion estimation (paper §8.1:
// "searches over a 7x7 block", M = 49). Index 0 is the top-left
// displacement (-R, -R); indices advance in raster order.
type VectorSpace struct {
	R int // window radius; window is (2R+1)^2 labels
}

// Size returns the number of labels, (2R+1)^2.
func (v VectorSpace) Size() int { s := 2*v.R + 1; return s * s }

// Vec returns the displacement encoded by label index l.
// It panics if l is out of range.
func (v VectorSpace) Vec(l int) (dx, dy int) {
	s := 2*v.R + 1
	if l < 0 || l >= s*s {
		panic("mrf: vector label out of range")
	}
	return l%s - v.R, l/s - v.R
}

// Index returns the label index of displacement (dx, dy).
// It panics if the displacement is outside the window.
func (v VectorSpace) Index(dx, dy int) int {
	if dx < -v.R || dx > v.R || dy < -v.R || dy > v.R {
		panic("mrf: displacement outside window")
	}
	s := 2*v.R + 1
	return (dy+v.R)*s + (dx + v.R)
}

// SquaredDiffVec returns the vector-label distance of Eq. 2:
// the sum of per-component squared differences of the displacements
// encoded by label indices a and b.
func (v VectorSpace) SquaredDiffVec(a, b int) float64 {
	ax, ay := v.Vec(a)
	bx, by := v.Vec(b)
	dx, dy := float64(ax-bx), float64(ay-by)
	return dx*dx + dy*dy
}
