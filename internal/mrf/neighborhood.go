package mrf

import "fmt"

// Neighborhood extends the substrate beyond the paper's first-order
// MRFs (§9: "The current RSU-G implementation is for very specific MRF
// problems. Extending the design to support other MRF problems is a
// short-term goal."). Second-order models add the four diagonal
// cliques; conditional independence then needs a 4-coloring of the grid
// (2×2 block colors) instead of the checkerboard 2-coloring.
type Neighborhood int

const (
	// FirstOrder is the paper's 4-connected neighborhood (Figure 4).
	FirstOrder Neighborhood = iota
	// SecondOrder is the 8-connected neighborhood.
	SecondOrder
)

// String implements fmt.Stringer.
func (n Neighborhood) String() string {
	switch n {
	case FirstOrder:
		return "first-order"
	case SecondOrder:
		return "second-order"
	default:
		return fmt.Sprintf("Neighborhood(%d)", int(n))
	}
}

// diagonalOffsets are the four second-order cliques.
var diagonalOffsets = [4][2]int{{-1, -1}, {1, -1}, {-1, 1}, {1, 1}}

// Offsets returns the clique offsets of the neighborhood.
func (n Neighborhood) Offsets() [][2]int {
	out := make([][2]int, 0, 8)
	for _, o := range NeighborOffsets {
		out = append(out, o)
	}
	if n == SecondOrder {
		for _, o := range diagonalOffsets {
			out = append(out, o)
		}
	}
	return out
}

// Colors returns the number of conditional-independence color classes:
// 2 for first order (checkerboard), 4 for second order (2×2 blocks).
func (n Neighborhood) Colors() int {
	if n == SecondOrder {
		return 4
	}
	return 2
}

// ColorOf returns the color class of a site under the neighborhood.
func (n Neighborhood) ColorOf(x, y int) int {
	if n == SecondOrder {
		return (x & 1) | (y&1)<<1
	}
	return (x + y) & 1
}

// RowStride returns the x coordinate of the first site of the given
// color in row y, or ok=false when the row contains no site of that
// color. Same-color sites within a row are always 2 apart (both the
// checkerboard 2-coloring and the 2×2-block 4-coloring alternate along
// x), so a sweep visits exactly the color's sites with x0, x0+2, x0+4…
// instead of testing ColorOf on every pixel.
func (n Neighborhood) RowStride(color, y int) (x0 int, ok bool) {
	if n == SecondOrder {
		if (y & 1) != color>>1 {
			return 0, false
		}
		return color & 1, true
	}
	return (color + y) & 1, true
}
