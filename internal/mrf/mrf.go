// Package mrf implements the probabilistic model substrate of the paper:
// first-order Markov Random Fields over a 2-D grid with smoothness-based
// priors, homogeneity and isotropy, and discrete random variables
// (paper §4.1).
//
// Each site (pixel) carries a random variable X_{i,j} taking one of M
// labels. The full conditional of a site given its four neighbors and
// the observed data D is (Eq. 1):
//
//	p(X_{i,j} | X_nbrs, D) ∝ exp(-(1/T) * [Ec(X_{i,j}, D) +
//	        Σ_{n in 4-neighborhood} Ec(X_{i,j}, X_n)])
//
// where Ec(X, D) is the singleton (data) clique potential and
// Ec(X, X_n) the doubleton (smoothness) potential. Energies here are
// non-negative; lower energy means higher probability.
package mrf

import (
	"fmt"
	"math"

	"repro/internal/fixed"
	"repro/internal/img"
)

// Model describes a first-order MRF over a WxH grid with M labels.
//
// Singleton returns the data term Ec(X_{x,y}=label, D) for a site; it
// must be non-negative. Doubleton returns the smoothness distance
// d(a, b) between two labels (Eq. 2); it must be non-negative and
// symmetric. Homogeneity and isotropy (paper §4.1) mean the same
// Doubleton applies to all four neighbor cliques.
type Model struct {
	W, H int
	M    int // number of labels per site

	// T is the temperature constant of Eq. 1.
	T float64

	// LambdaS and LambdaD scale the singleton and doubleton terms.
	LambdaS, LambdaD float64

	// Hood selects the clique structure: FirstOrder (the paper's
	// 4-neighborhood, the zero value) or SecondOrder (8-neighborhood,
	// the §9 extension). LambdaDiag scales the diagonal cliques of a
	// second-order model; it is ignored for first-order models.
	Hood       Neighborhood
	LambdaDiag float64

	Singleton func(x, y, label int) float64
	Doubleton func(a, b int) float64

	// tables, when non-nil, holds the compiled fast path (see Compile):
	// precomputed unary and doubleton energy tables that replace the
	// closure calls above with slice arithmetic.
	tables *tables
}

// Validate checks the model's structural invariants. It is cheap and
// should be called once before inference.
func (m *Model) Validate() error {
	switch {
	case m.W <= 0 || m.H <= 0:
		return fmt.Errorf("mrf: invalid grid %dx%d", m.W, m.H)
	case m.M < 2:
		return fmt.Errorf("mrf: need at least 2 labels, got %d", m.M)
	case m.M > fixed.MaxLabels:
		// The RSU-G datapath carries 6-bit labels (fixed.LabelBits), so
		// every application's label space fits 64 values; the packed
		// label representation and the int32 energy kernel both rely on
		// this bound.
		return fmt.Errorf("mrf: %d labels exceed the %d-label (6-bit) RSU-G alphabet", m.M, fixed.MaxLabels)
	case m.T <= 0:
		return fmt.Errorf("mrf: temperature must be positive, got %v", m.T)
	case m.Singleton == nil:
		return fmt.Errorf("mrf: nil Singleton potential")
	case m.Doubleton == nil:
		return fmt.Errorf("mrf: nil Doubleton potential")
	case m.LambdaS < 0 || m.LambdaD < 0 || m.LambdaDiag < 0:
		return fmt.Errorf("mrf: negative potential weights")
	case m.Hood != FirstOrder && m.Hood != SecondOrder:
		return fmt.Errorf("mrf: unknown neighborhood %v", m.Hood)
	}
	return nil
}

// NeighborOffsets is the first-order (4-connected) neighborhood of
// Figure 4.
var NeighborOffsets = [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}}

// SiteEnergy returns the total clique potential energy of assigning
// `label` to site (x, y) given the current labels: the singleton plus
// the four doubleton terms of Eq. 1. Border sites use replicate padding
// consistent with img.LabelMap.At.
func (m *Model) SiteEnergy(lm *img.LabelMap, x, y, label int) float64 {
	if m.tables != nil {
		return m.fastSiteEnergy(lm, x, y, label)
	}
	e := m.LambdaS * m.Singleton(x, y, label)
	for _, off := range NeighborOffsets {
		nx, ny := x+off[0], y+off[1]
		if nx < 0 || nx >= m.W || ny < 0 || ny >= m.H {
			continue // sites outside the grid contribute no clique
		}
		e += m.LambdaD * m.Doubleton(label, lm.At(nx, ny))
	}
	if m.Hood == SecondOrder {
		for _, off := range diagonalOffsets {
			nx, ny := x+off[0], y+off[1]
			if nx < 0 || nx >= m.W || ny < 0 || ny >= m.H {
				continue
			}
			e += m.LambdaDiag * m.Doubleton(label, lm.At(nx, ny))
		}
	}
	return e
}

// ConditionalEnergies fills buf (len M) with the site energy of every
// label at (x, y) and returns it. Allocates if buf is too small.
func (m *Model) ConditionalEnergies(buf []float64, lm *img.LabelMap, x, y int) []float64 {
	if cap(buf) < m.M {
		buf = make([]float64, m.M)
	}
	buf = buf[:m.M]
	if m.tables != nil {
		m.fastConditionalEnergies(buf, lm, x, y)
		return buf
	}
	sx := m.LambdaS
	for l := 0; l < m.M; l++ {
		buf[l] = sx * m.Singleton(x, y, l)
	}
	for _, off := range NeighborOffsets {
		nx, ny := x+off[0], y+off[1]
		if nx < 0 || nx >= m.W || ny < 0 || ny >= m.H {
			continue
		}
		nl := lm.At(nx, ny)
		for l := 0; l < m.M; l++ {
			buf[l] += m.LambdaD * m.Doubleton(l, nl)
		}
	}
	if m.Hood == SecondOrder {
		for _, off := range diagonalOffsets {
			nx, ny := x+off[0], y+off[1]
			if nx < 0 || nx >= m.W || ny < 0 || ny >= m.H {
				continue
			}
			nl := lm.At(nx, ny)
			for l := 0; l < m.M; l++ {
				buf[l] += m.LambdaDiag * m.Doubleton(l, nl)
			}
		}
	}
	return buf
}

// ConditionalRates converts site energies into *unnormalized* Boltzmann
// rates r(l) = exp(-(E(l)-minE)/T), subtracting the minimum energy first
// for numerical stability. The minimum-energy label always has rate 1,
// so at least one rate is positive. This is all a first-to-fire race or
// a self-normalizing categorical draw needs — callers that can work
// with relative weights skip ConditionalProbs' O(M) divide pass.
func (m *Model) ConditionalRates(buf []float64, lm *img.LabelMap, x, y int) []float64 {
	buf = m.ConditionalEnergies(buf, lm, x, y)
	minE := buf[0]
	for _, e := range buf[1:] {
		if e < minE {
			minE = e
		}
	}
	//lint:ignore rsulint/floateq cache-key identity: the LUT is valid only for the exact T it was built from; a tolerance would serve stale rates
	if t := m.tables; t != nil && t.expLUT != nil && t.expT == m.T {
		// Integer-energy fast path: every gap e-minE is an exact integer
		// float, and expLUT[k] was computed by math.Exp on the same
		// operands — a table load, bit-identical to the direct call.
		for i, e := range buf {
			buf[i] = t.expLUT[int(e-minE)]
		}
		return buf
	}
	t := m.T
	for i, e := range buf {
		buf[i] = math.Exp(-(e - minE) / t)
	}
	return buf
}

// ConditionalProbs converts site energies into the normalized full
// conditional distribution p(l) ∝ exp(-E(l)/T), subtracting the minimum
// energy first for numerical stability. buf is reused as in
// ConditionalEnergies; the returned slice holds probabilities.
func (m *Model) ConditionalProbs(buf []float64, lm *img.LabelMap, x, y int) []float64 {
	buf = m.ConditionalRates(buf, lm, x, y)
	sum := 0.0
	for _, r := range buf {
		sum += r
	}
	for i := range buf {
		buf[i] /= sum
	}
	return buf
}

// TotalEnergy returns the energy of a full labeling: the sum of all
// singleton potentials plus each doubleton clique counted once
// (right and down neighbors only).
func (m *Model) TotalEnergy(lm *img.LabelMap) float64 {
	if m.tables != nil {
		return m.fastTotalEnergy(lm)
	}
	e := 0.0
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			l := lm.At(x, y)
			e += m.LambdaS * m.Singleton(x, y, l)
			if x+1 < m.W {
				e += m.LambdaD * m.Doubleton(l, lm.At(x+1, y))
			}
			if y+1 < m.H {
				e += m.LambdaD * m.Doubleton(l, lm.At(x, y+1))
			}
			if m.Hood == SecondOrder && y+1 < m.H {
				// Each diagonal clique counted once: down-right and
				// down-left from the upper site.
				if x+1 < m.W {
					e += m.LambdaDiag * m.Doubleton(l, lm.At(x+1, y+1))
				}
				if x-1 >= 0 {
					e += m.LambdaDiag * m.Doubleton(l, lm.At(x-1, y+1))
				}
			}
		}
	}
	return e
}

// Color returns the checkerboard color (0 or 1) of a site. All sites of
// one color are conditionally independent given the other color (paper
// §4.2: "all the gray random variables can be updated simultaneously").
func Color(x, y int) int { return (x + y) & 1 }

// CheckerboardSites returns the coordinates of all sites with the given
// color in raster order.
func CheckerboardSites(w, h, color int) [][2]int {
	sites := make([][2]int, 0, (w*h+1)/2)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if Color(x, y) == color {
				sites = append(sites, [2]int{x, y})
			}
		}
	}
	return sites
}
