// Package img provides the 8-bit grayscale image substrate the vision
// applications run on: image storage, PGM/PPM encoding, synthetic scene
// generation (substituting for the paper's proprietary test images) and
// quality metrics.
package img

import (
	"fmt"
	"math"
)

// Gray is an 8-bit grayscale image stored row-major.
type Gray struct {
	W, H int
	Pix  []uint8 // len == W*H
}

// NewGray allocates a zeroed WxH image. It panics on non-positive
// dimensions.
func NewGray(w, h int) *Gray {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("img: invalid dimensions %dx%d", w, h))
	}
	return &Gray{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the pixel at (x, y). Coordinates outside the image are
// clamped to the border (replicate padding), which matches how the MRF
// applications treat boundary neighbors.
func (g *Gray) At(x, y int) uint8 {
	if x < 0 {
		x = 0
	}
	if x >= g.W {
		x = g.W - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= g.H {
		y = g.H - 1
	}
	return g.Pix[y*g.W+x]
}

// Set writes the pixel at (x, y); out-of-range coordinates are ignored.
func (g *Gray) Set(x, y int, v uint8) {
	if x < 0 || x >= g.W || y < 0 || y >= g.H {
		return
	}
	g.Pix[y*g.W+x] = v
}

// Clone returns a deep copy.
func (g *Gray) Clone() *Gray {
	c := NewGray(g.W, g.H)
	copy(c.Pix, g.Pix)
	return c
}

// Equal reports whether two images have identical dimensions and pixels.
func (g *Gray) Equal(o *Gray) bool {
	if g.W != o.W || g.H != o.H {
		return false
	}
	for i, p := range g.Pix {
		if p != o.Pix[i] {
			return false
		}
	}
	return true
}

// Fill sets every pixel to v.
func (g *Gray) Fill(v uint8) {
	for i := range g.Pix {
		g.Pix[i] = v
	}
}

// MaxLabels is the size of the label alphabet a LabelMap can store.
// Labels are bit-packed into one byte per site (the RSU-G datapath
// carries 6-bit labels, fixed.LabelBits; a byte is the smallest
// addressable unit that holds one), so label values must fit uint8.
const MaxLabels = 256

// LabelMap is a per-pixel label field (the latent random variables X of
// the MRF), same layout as Gray. Labels are stored bit-packed as one
// byte per site — an 8x smaller working set than a word-typed slab,
// which keeps the sweep kernel's label traffic L1/L2 resident (the
// paper's RSU-G carries labels as 6-bit values for the same reason,
// §4.4). The accessor surface still speaks int; the packed
// representation is visible only to code that indexes Labels directly.
type LabelMap struct {
	W, H   int
	Labels []uint8
}

// NewLabelMap allocates a zeroed label map.
func NewLabelMap(w, h int) *LabelMap {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("img: invalid dimensions %dx%d", w, h))
	}
	return &LabelMap{W: w, H: h, Labels: make([]uint8, w*h)}
}

// At returns the label at (x, y) with replicate padding.
func (m *LabelMap) At(x, y int) int {
	if x < 0 {
		x = 0
	}
	if x >= m.W {
		x = m.W - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= m.H {
		y = m.H - 1
	}
	return int(m.Labels[y*m.W+x])
}

// Set writes the label at (x, y); out-of-range coordinates are ignored.
// It panics if v does not fit the packed byte representation.
func (m *LabelMap) Set(x, y int, v int) {
	if x < 0 || x >= m.W || y < 0 || y >= m.H {
		return
	}
	if v < 0 || v >= MaxLabels {
		panic(fmt.Sprintf("img: label %d outside packed range [0,%d)", v, MaxLabels))
	}
	m.Labels[y*m.W+x] = uint8(v)
}

// Clone returns a deep copy.
func (m *LabelMap) Clone() *LabelMap {
	c := NewLabelMap(m.W, m.H)
	copy(c.Labels, m.Labels)
	return c
}

// Render maps labels to gray values by indexing palette; labels outside
// the palette render as 0.
func (m *LabelMap) Render(palette []uint8) *Gray {
	g := NewGray(m.W, m.H)
	for i, l := range m.Labels {
		if int(l) < len(palette) {
			g.Pix[i] = palette[l]
		}
	}
	return g
}

// MislabelRate returns the fraction of pixels whose labels differ from
// truth. It panics on dimension mismatch.
func (m *LabelMap) MislabelRate(truth *LabelMap) float64 {
	if m.W != truth.W || m.H != truth.H {
		panic("img: MislabelRate dimension mismatch")
	}
	bad := 0
	for i, l := range m.Labels {
		if l != truth.Labels[i] {
			bad++
		}
	}
	return float64(bad) / float64(len(m.Labels))
}

// Agreement returns the fraction of pixels on which two label maps agree.
func (m *LabelMap) Agreement(o *LabelMap) float64 {
	return 1 - m.MislabelRate(o)
}

// MSE returns the mean squared pixel error between two images.
func MSE(a, b *Gray) float64 {
	if a.W != b.W || a.H != b.H {
		panic("img: MSE dimension mismatch")
	}
	sum := 0.0
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		sum += d * d
	}
	return sum / float64(len(a.Pix))
}

// VectorField is a per-pixel 2-D vector field (motion estimates).
type VectorField struct {
	W, H int
	DX   []int8
	DY   []int8
}

// NewVectorField allocates a zeroed field.
func NewVectorField(w, h int) *VectorField {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("img: invalid dimensions %dx%d", w, h))
	}
	return &VectorField{W: w, H: h, DX: make([]int8, w*h), DY: make([]int8, w*h)}
}

// Set writes the vector at (x, y).
func (f *VectorField) Set(x, y int, dx, dy int8) {
	if x < 0 || x >= f.W || y < 0 || y >= f.H {
		return
	}
	f.DX[y*f.W+x], f.DY[y*f.W+x] = dx, dy
}

// At returns the vector at (x, y) without padding; it panics out of range.
func (f *VectorField) At(x, y int) (dx, dy int8) {
	i := y*f.W + x
	return f.DX[i], f.DY[i]
}

// AvgEndpointError returns the mean Euclidean distance between this field
// and truth — the standard dense-motion quality metric.
func (f *VectorField) AvgEndpointError(truth *VectorField) float64 {
	if f.W != truth.W || f.H != truth.H {
		panic("img: AvgEndpointError dimension mismatch")
	}
	sum := 0.0
	for i := range f.DX {
		dx := float64(f.DX[i]) - float64(truth.DX[i])
		dy := float64(f.DY[i]) - float64(truth.DY[i])
		sum += math.Sqrt(dx*dx + dy*dy)
	}
	return sum / float64(len(f.DX))
}
