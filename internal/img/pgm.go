package img

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// EncodePGM writes g in binary PGM (P5) format.
func EncodePGM(w io.Writer, g *Gray) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", g.W, g.H); err != nil {
		return err
	}
	if _, err := bw.Write(g.Pix); err != nil {
		return err
	}
	return bw.Flush()
}

// DecodePGM reads a binary (P5) or ASCII (P2) PGM image.
func DecodePGM(r io.Reader) (*Gray, error) {
	br := bufio.NewReader(r)
	magic, err := pgmToken(br)
	if err != nil {
		return nil, fmt.Errorf("img: reading PGM magic: %w", err)
	}
	if magic != "P5" && magic != "P2" {
		return nil, fmt.Errorf("img: unsupported PGM magic %q", magic)
	}
	var w, h, maxv int
	for _, dst := range []*int{&w, &h, &maxv} {
		tok, err := pgmToken(br)
		if err != nil {
			return nil, fmt.Errorf("img: reading PGM header: %w", err)
		}
		if _, err := fmt.Sscanf(tok, "%d", dst); err != nil {
			return nil, fmt.Errorf("img: bad PGM header token %q", tok)
		}
	}
	if w <= 0 || h <= 0 || w*h > 1<<28 {
		return nil, fmt.Errorf("img: unreasonable PGM dimensions %dx%d", w, h)
	}
	if maxv <= 0 || maxv > 255 {
		return nil, fmt.Errorf("img: unsupported PGM maxval %d", maxv)
	}
	g := NewGray(w, h)
	if magic == "P5" {
		if _, err := io.ReadFull(br, g.Pix); err != nil {
			return nil, fmt.Errorf("img: reading PGM pixels: %w", err)
		}
	} else {
		for i := range g.Pix {
			tok, err := pgmToken(br)
			if err != nil {
				return nil, fmt.Errorf("img: reading PGM pixel %d: %w", i, err)
			}
			var v int
			if _, err := fmt.Sscanf(tok, "%d", &v); err != nil || v < 0 || v > maxv {
				return nil, fmt.Errorf("img: bad PGM pixel token %q", tok)
			}
			g.Pix[i] = uint8(v)
		}
	}
	if maxv != 255 {
		for i, p := range g.Pix {
			g.Pix[i] = uint8(int(p) * 255 / maxv)
		}
	}
	return g, nil
}

// pgmToken reads the next whitespace-delimited token, skipping
// '#'-comments per the PGM spec.
func pgmToken(br *bufio.Reader) (string, error) {
	tok := make([]byte, 0, 8)
	for {
		b, err := br.ReadByte()
		if err != nil {
			if err == io.EOF && len(tok) > 0 {
				return string(tok), nil
			}
			return "", err
		}
		switch {
		case b == '#' && len(tok) == 0:
			if _, err := br.ReadString('\n'); err != nil && err != io.EOF {
				return "", err
			}
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			if len(tok) > 0 {
				return string(tok), nil
			}
		default:
			tok = append(tok, b)
		}
	}
}

// WritePGMFile writes g to path in binary PGM format.
func WritePGMFile(path string, g *Gray) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := EncodePGM(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadPGMFile reads a PGM image from path.
func ReadPGMFile(path string) (*Gray, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodePGM(f)
}
