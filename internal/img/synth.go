package img

import (
	"math"

	"repro/internal/rng"
)

// The paper evaluates on real photographs (a small foreground/background
// photo for the prototype, HD frames for the GPU study) that we do not
// have. These generators produce synthetic scenes with known ground
// truth that exercise the same MRF structure: piecewise-constant regions
// for segmentation, translating regions for motion estimation, and
// horizontally shifted surfaces for stereo.

// Scene couples a noisy observation with its ground-truth label map.
type Scene struct {
	Image *Gray
	Truth *LabelMap
	// Means[i] is the clean intensity of label i.
	Means []uint8
}

// BlobScene generates a WxH piecewise-constant scene with nLabels
// regions: a background plus nLabels-1 random ellipses, each painted with
// a distinct mean intensity, then corrupted with additive Gaussian noise
// (stddev sigma) clamped to [0,255]. Labels are ordered by intensity, so
// label index == intensity rank, matching how the segmentation app
// assigns labels.
func BlobScene(w, h, nLabels int, sigma float64, src *rng.Source) Scene {
	if nLabels < 2 || nLabels > 64 {
		panic("img: BlobScene needs 2..64 labels")
	}
	truth := NewLabelMap(w, h)
	means := make([]uint8, nLabels)
	for i := range means {
		// Evenly spaced intensities with margin from 0 and 255.
		means[i] = uint8(20 + i*(215/(nLabels-1)))
	}
	// Paint ellipses back-to-front so later labels overdraw earlier ones.
	for l := 1; l < nLabels; l++ {
		cx := float64(src.Intn(w))
		cy := float64(src.Intn(h))
		rx := float64(w)/6 + src.Float64()*float64(w)/5
		ry := float64(h)/6 + src.Float64()*float64(h)/5
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				dx := (float64(x) - cx) / rx
				dy := (float64(y) - cy) / ry
				if dx*dx+dy*dy <= 1 {
					truth.Set(x, y, l)
				}
			}
		}
	}
	im := NewGray(w, h)
	for i, l := range truth.Labels {
		im.Pix[i] = addNoise(means[l], sigma, src)
	}
	return Scene{Image: im, Truth: truth, Means: means}
}

// TwoRegionScene generates the prototype-style scene of Figure 7: a
// bright foreground shape on a dark background, two labels only.
func TwoRegionScene(w, h int, sigma float64, src *rng.Source) Scene {
	truth := NewLabelMap(w, h)
	means := []uint8{60, 190}
	cx, cy := float64(w)/2, float64(h)/2
	rx, ry := float64(w)/3.2, float64(h)/2.6
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			dx := (float64(x) - cx) / rx
			dy := (float64(y) - cy) / ry
			if dx*dx+dy*dy <= 1 {
				truth.Set(x, y, 1)
			}
		}
	}
	im := NewGray(w, h)
	for i, l := range truth.Labels {
		im.Pix[i] = addNoise(means[l], sigma, src)
	}
	return Scene{Image: im, Truth: truth, Means: means}
}

// MotionScene holds two consecutive frames and the ground-truth motion
// of each pixel of frame 1 into frame 2.
type MotionScene struct {
	Frame1, Frame2 *Gray
	Truth          *VectorField
}

// MotionPair generates a textured background with one moving rectangular
// object. The object translates by (dx, dy), both within
// [-maxDisp, maxDisp]; the background is static. Texture is random, which
// gives the block-matching singleton term a well-defined optimum.
func MotionPair(w, h int, dx, dy int, maxDisp int, sigma float64, src *rng.Source) MotionScene {
	if dx < -maxDisp || dx > maxDisp || dy < -maxDisp || dy > maxDisp {
		panic("img: MotionPair displacement exceeds maxDisp")
	}
	// Raw random texture: every 1-pixel shift decorrelates, so the
	// block-matching singleton has a sharp optimum (smoothed textures
	// make neighboring displacements ambiguous).
	base := NewGray(w, h)
	for i := range base.Pix {
		base.Pix[i] = uint8(40 + src.Intn(160))
	}

	// Object occupies the central third and carries its own texture.
	ox0, oy0 := w/3, h/3
	ox1, oy1 := 2*w/3, 2*h/3
	obj := NewGray(w, h)
	for i := range obj.Pix {
		obj.Pix[i] = uint8(60 + src.Intn(160))
	}

	f1 := NewGray(w, h)
	f2 := NewGray(w, h)
	truth := NewVectorField(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			f1.Set(x, y, base.At(x, y))
			f2.Set(x, y, base.At(x, y))
		}
	}
	for y := oy0; y < oy1; y++ {
		for x := ox0; x < ox1; x++ {
			f1.Set(x, y, obj.At(x, y))
			f2.Set(x+dx, y+dy, obj.At(x, y))
			truth.Set(x, y, int8(dx), int8(dy))
		}
	}
	if sigma > 0 {
		for i := range f1.Pix {
			f1.Pix[i] = addNoise(f1.Pix[i], sigma, src)
			f2.Pix[i] = addNoise(f2.Pix[i], sigma, src)
		}
	}
	return MotionScene{Frame1: f1, Frame2: f2, Truth: truth}
}

// StereoScene holds a rectified stereo pair and ground-truth disparities.
type StereoScene struct {
	Left, Right *Gray
	Truth       *LabelMap // disparity in pixels, 0..maxDisparity
}

// StereoPair generates a textured scene with a raised central plane at
// disparity fgDisp over a background at disparity 0 (both < nDisp). The
// right image is the left image with each pixel shifted left by its
// disparity.
func StereoPair(w, h, nDisp, fgDisp int, sigma float64, src *rng.Source) StereoScene {
	if fgDisp < 0 || fgDisp >= nDisp {
		panic("img: StereoPair fgDisp out of range")
	}
	// Raw (unblurred) texture: smoothing makes 1-pixel shifts nearly
	// indistinguishable, which turns the matching problem ambiguous in a
	// way real photographs are not.
	left := NewGray(w, h)
	for i := range left.Pix {
		left.Pix[i] = uint8(30 + src.Intn(180))
	}
	truth := NewLabelMap(w, h)
	ox0, oy0, ox1, oy1 := w/4, h/4, 3*w/4, 3*h/4
	for y := oy0; y < oy1; y++ {
		for x := ox0; x < ox1; x++ {
			truth.Set(x, y, fgDisp)
		}
	}
	right := NewGray(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			d := truth.At(x, y)
			right.Set(x-d, y, left.At(x, y))
		}
	}
	if sigma > 0 {
		for i := range left.Pix {
			left.Pix[i] = addNoise(left.Pix[i], sigma, src)
			right.Pix[i] = addNoise(right.Pix[i], sigma, src)
		}
	}
	return StereoScene{Left: left, Right: right, Truth: truth}
}

func addNoise(v uint8, sigma float64, src *rng.Source) uint8 {
	if sigma <= 0 {
		return v
	}
	n := float64(v) + src.Normal(0, sigma)
	if n < 0 {
		n = 0
	}
	if n > 255 {
		n = 255
	}
	return uint8(math.Round(n))
}

// BoxBlur applies a 3x3 box filter with replicate padding. Useful as a
// preprocessing step; note that blurring inputs to the matching
// applications makes small displacements harder to distinguish.
func BoxBlur(g *Gray) *Gray {
	out := NewGray(g.W, g.H)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			sum := 0
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					sum += int(g.At(x+dx, y+dy))
				}
			}
			out.Set(x, y, uint8(sum/9))
		}
	}
	return out
}
