package img

import (
	"bytes"
	"testing"
)

// FuzzDecodePGM hardens the parser: arbitrary bytes must either decode
// into a structurally valid image or return an error — never panic, and
// never produce an image whose pixel buffer disagrees with its header.
func FuzzDecodePGM(f *testing.F) {
	f.Add([]byte("P5\n2 2\n255\nabcd"))
	f.Add([]byte("P2\n# c\n1 2\n15\n0 15\n"))
	f.Add([]byte("P5\n0 0\n255\n"))
	f.Add([]byte("P6\n1 1\n255\nxyz"))
	f.Add([]byte(""))
	f.Add([]byte("P5\n1000000 1000000\n255\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := DecodePGM(bytes.NewReader(data))
		if err != nil {
			return
		}
		if g.W <= 0 || g.H <= 0 || len(g.Pix) != g.W*g.H {
			t.Fatalf("decoded image inconsistent: %dx%d with %d pixels", g.W, g.H, len(g.Pix))
		}
		// Round trip: re-encoding a decoded image must succeed and
		// decode back identical.
		var buf bytes.Buffer
		if err := EncodePGM(&buf, g); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		g2, err := DecodePGM(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !g.Equal(g2) {
			t.Fatal("round trip mismatch")
		}
	})
}
