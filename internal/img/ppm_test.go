package img

import (
	"bytes"
	"strings"
	"testing"
)

func TestRGBSetAt(t *testing.T) {
	c := NewRGB(3, 2)
	c.Set(1, 1, 10, 20, 30)
	r, g, b := c.At(1, 1)
	if r != 10 || g != 20 || b != 30 {
		t.Fatalf("At = (%d,%d,%d)", r, g, b)
	}
	// clamped access
	if r, _, _ := c.At(-5, 9); r != 0 {
		t.Fatal("clamped access wrong")
	}
	// out-of-range set ignored
	c.Set(9, 9, 1, 1, 1)
}

func TestNewRGBPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRGB(0, 1)
}

func TestEncodePPMHeader(t *testing.T) {
	c := NewRGB(2, 2)
	var buf bytes.Buffer
	if err := EncodePPM(&buf, c); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "P6\n2 2\n255\n") {
		t.Fatalf("header: %q", buf.String()[:20])
	}
	if buf.Len() != len("P6\n2 2\n255\n")+12 {
		t.Fatalf("payload length %d", buf.Len())
	}
}

func TestWritePPMFile(t *testing.T) {
	c := NewRGB(4, 4)
	c.Set(0, 0, 255, 0, 0)
	path := t.TempDir() + "/x.ppm"
	if err := WritePPMFile(path, c); err != nil {
		t.Fatal(err)
	}
}

func TestFlowToColorProperties(t *testing.T) {
	f := NewVectorField(4, 1)
	f.Set(0, 0, 3, 0)  // east
	f.Set(1, 0, -3, 0) // west
	f.Set(2, 0, 0, 3)  // south
	// (3,0) zero motion
	c := FlowToColor(f, 0)
	// Zero motion renders white (saturation 0, value 1).
	r, g, b := c.At(3, 0)
	if r != 255 || g != 255 || b != 255 {
		t.Fatalf("zero motion color (%d,%d,%d), want white", r, g, b)
	}
	// Opposite directions get different colors.
	r1, g1, b1 := c.At(0, 0)
	r2, g2, b2 := c.At(1, 0)
	if r1 == r2 && g1 == g2 && b1 == b2 {
		t.Fatal("opposite directions share a color")
	}
	// Full-magnitude pixels are saturated (not white).
	if r1 == 255 && g1 == 255 && b1 == 255 {
		t.Fatal("full-magnitude pixel rendered white")
	}
}

func TestFlowToColorZeroField(t *testing.T) {
	f := NewVectorField(2, 2)
	c := FlowToColor(f, 0) // auto-scale with all-zero field must not divide by zero
	r, g, b := c.At(0, 0)
	if r != 255 || g != 255 || b != 255 {
		t.Fatalf("zero field color (%d,%d,%d)", r, g, b)
	}
}

func TestHSVToRGBPrimaries(t *testing.T) {
	cases := []struct {
		h       float64
		r, g, b uint8
	}{
		{0, 255, 0, 0},
		{120, 0, 255, 0},
		{240, 0, 0, 255},
	}
	for _, c := range cases {
		r, g, b := hsvToRGB(c.h, 1, 1)
		if r != c.r || g != c.g || b != c.b {
			t.Errorf("hue %v: (%d,%d,%d)", c.h, r, g, b)
		}
	}
}

func TestGrayToRGB(t *testing.T) {
	g := NewGray(2, 1)
	g.Set(0, 0, 77)
	c := GrayToRGB(g)
	r, gg, b := c.At(0, 0)
	if r != 77 || gg != 77 || b != 77 {
		t.Fatalf("(%d,%d,%d)", r, gg, b)
	}
}
