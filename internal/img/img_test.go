package img

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestGrayAtClampsBorders(t *testing.T) {
	g := NewGray(3, 2)
	g.Set(0, 0, 10)
	g.Set(2, 1, 20)
	if v := g.At(-5, -5); v != 10 {
		t.Errorf("At(-5,-5) = %d, want 10", v)
	}
	if v := g.At(99, 99); v != 20 {
		t.Errorf("At(99,99) = %d, want 20", v)
	}
}

func TestGraySetIgnoresOutOfRange(t *testing.T) {
	g := NewGray(2, 2)
	g.Set(-1, 0, 99)
	g.Set(0, 5, 99)
	for _, p := range g.Pix {
		if p != 0 {
			t.Fatal("out-of-range Set modified image")
		}
	}
}

func TestNewGrayPanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 5}, {5, 0}, {-1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewGray(%v) did not panic", dims)
				}
			}()
			NewGray(dims[0], dims[1])
		}()
	}
}

func TestCloneIndependence(t *testing.T) {
	g := NewGray(4, 4)
	g.Fill(7)
	c := g.Clone()
	c.Set(1, 1, 99)
	if g.At(1, 1) != 7 {
		t.Fatal("Clone shares storage with original")
	}
	if !g.Equal(g.Clone()) {
		t.Fatal("clone not equal to original")
	}
	if g.Equal(c) {
		t.Fatal("modified clone equal to original")
	}
}

func TestLabelMapBasics(t *testing.T) {
	m := NewLabelMap(3, 3)
	m.Set(1, 1, 5)
	if m.At(1, 1) != 5 {
		t.Fatal("Set/At roundtrip failed")
	}
	if m.At(-1, -1) != m.At(0, 0) {
		t.Fatal("padding mismatch")
	}
	c := m.Clone()
	c.Set(1, 1, 9)
	if m.At(1, 1) != 5 {
		t.Fatal("LabelMap clone shares storage")
	}
}

func TestLabelMapRender(t *testing.T) {
	m := NewLabelMap(2, 1)
	m.Set(0, 0, 1)
	m.Set(1, 0, 7) // outside palette -> 0
	g := m.Render([]uint8{10, 200})
	if g.At(0, 0) != 200 || g.At(1, 0) != 0 {
		t.Fatalf("render: %v", g.Pix)
	}
}

func TestMislabelRateAndAgreement(t *testing.T) {
	a := NewLabelMap(2, 2)
	b := NewLabelMap(2, 2)
	b.Set(0, 0, 1)
	if r := a.MislabelRate(b); r != 0.25 {
		t.Fatalf("mislabel rate %v", r)
	}
	if r := a.Agreement(b); r != 0.75 {
		t.Fatalf("agreement %v", r)
	}
}

func TestMSE(t *testing.T) {
	a, b := NewGray(2, 1), NewGray(2, 1)
	b.Set(0, 0, 2)
	if got := MSE(a, b); got != 2 {
		t.Fatalf("MSE = %v, want 2", got)
	}
}

func TestVectorFieldEndpointError(t *testing.T) {
	a, b := NewVectorField(2, 1), NewVectorField(2, 1)
	a.Set(0, 0, 3, 4)
	if got := a.AvgEndpointError(b); got != 2.5 {
		t.Fatalf("AEE = %v, want 2.5", got)
	}
	dx, dy := a.At(0, 0)
	if dx != 3 || dy != 4 {
		t.Fatalf("At = (%d,%d)", dx, dy)
	}
}

func TestPGMRoundTripP5(t *testing.T) {
	src := rng.New(1)
	g := NewGray(13, 7)
	for i := range g.Pix {
		g.Pix[i] = uint8(src.Intn(256))
	}
	var buf bytes.Buffer
	if err := EncodePGM(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := DecodePGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(got) {
		t.Fatal("PGM round trip mismatch")
	}
}

func TestPGMDecodeASCII(t *testing.T) {
	in := "P2\n# comment line\n2 2\n255\n0 64\n128 255\n"
	g, err := DecodePGM(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []uint8{0, 64, 128, 255}
	for i, v := range want {
		if g.Pix[i] != v {
			t.Fatalf("pixels %v, want %v", g.Pix, want)
		}
	}
}

func TestPGMDecodeScalesMaxval(t *testing.T) {
	in := "P2\n1 1\n15\n15\n"
	g, err := DecodePGM(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.Pix[0] != 255 {
		t.Fatalf("scaled pixel = %d, want 255", g.Pix[0])
	}
}

func TestPGMDecodeErrors(t *testing.T) {
	for _, in := range []string{
		"",
		"P6\n1 1\n255\nx",
		"P5\n0 1\n255\n",
		"P5\n1 1\n70000\n",
		"P5\n2 2\n255\nab", // truncated pixels
	} {
		if _, err := DecodePGM(strings.NewReader(in)); err == nil {
			t.Errorf("DecodePGM(%q) succeeded, want error", in)
		}
	}
}

func TestPGMFileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/x.pgm"
	g := NewGray(5, 4)
	g.Fill(42)
	if err := WritePGMFile(path, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPGMFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(got) {
		t.Fatal("file round trip mismatch")
	}
}

func TestBlobSceneProperties(t *testing.T) {
	src := rng.New(3)
	s := BlobScene(64, 48, 5, 8, src)
	if s.Image.W != 64 || s.Image.H != 48 {
		t.Fatal("wrong dimensions")
	}
	if len(s.Means) != 5 {
		t.Fatal("wrong number of means")
	}
	seen := map[int]bool{}
	for _, l := range s.Truth.Labels {
		if l >= 5 {
			t.Fatalf("label %d out of range", l)
		}
		seen[int(l)] = true
	}
	if !seen[0] {
		t.Fatal("background label absent")
	}
	// Means strictly increasing => label order is intensity rank.
	for i := 1; i < len(s.Means); i++ {
		if s.Means[i] <= s.Means[i-1] {
			t.Fatal("means not increasing")
		}
	}
}

func TestBlobScenePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BlobScene with 1 label did not panic")
		}
	}()
	BlobScene(8, 8, 1, 0, rng.New(1))
}

func TestTwoRegionSceneNoiseless(t *testing.T) {
	s := TwoRegionScene(50, 67, 0, rng.New(4))
	for i, l := range s.Truth.Labels {
		want := s.Means[l]
		if s.Image.Pix[i] != want {
			t.Fatalf("pixel %d = %d, want %d (label %d)", i, s.Image.Pix[i], want, l)
		}
	}
}

func TestMotionPairGroundTruth(t *testing.T) {
	s := MotionPair(64, 64, 2, -1, 3, 0, rng.New(5))
	// Every pixel deep inside the object must satisfy
	// f2(x+dx, y+dy) == f1(x, y) in the noiseless case.
	for y := 28; y < 36; y++ {
		for x := 28; x < 36; x++ {
			dx, dy := s.Truth.At(x, y)
			if dx != 2 || dy != -1 {
				t.Fatalf("truth at (%d,%d) = (%d,%d)", x, y, dx, dy)
			}
			if s.Frame2.At(x+int(dx), y+int(dy)) != s.Frame1.At(x, y) {
				t.Fatalf("frames inconsistent at (%d,%d)", x, y)
			}
		}
	}
	// Background is static.
	if dx, dy := s.Truth.At(1, 1); dx != 0 || dy != 0 {
		t.Fatal("background should have zero motion")
	}
}

func TestMotionPairPanicsOnBigDisp(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MotionPair(32, 32, 5, 0, 3, 0, rng.New(1))
}

func TestStereoPairConsistency(t *testing.T) {
	s := StereoPair(64, 48, 5, 3, 0, rng.New(6))
	// Inside the raised plane: right(x-d, y) == left(x, y).
	for y := 20; y < 28; y++ {
		for x := 30; x < 40; x++ {
			d := s.Truth.At(x, y)
			if d != 3 {
				t.Fatalf("disparity at (%d,%d) = %d", x, y, d)
			}
			if s.Right.At(x-d, y) != s.Left.At(x, y) {
				t.Fatalf("stereo inconsistent at (%d,%d)", x, y)
			}
		}
	}
}

func TestStereoPairPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	StereoPair(16, 16, 4, 4, 0, rng.New(1))
}

// Property: PGM round trip preserves arbitrary images.
func TestPGMRoundTripProperty(t *testing.T) {
	f := func(wRaw, hRaw uint8, seed uint64) bool {
		w := int(wRaw%32) + 1
		h := int(hRaw%32) + 1
		src := rng.New(seed)
		g := NewGray(w, h)
		for i := range g.Pix {
			g.Pix[i] = uint8(src.Intn(256))
		}
		var buf bytes.Buffer
		if err := EncodePGM(&buf, g); err != nil {
			return false
		}
		got, err := DecodePGM(&buf)
		if err != nil {
			return false
		}
		return g.Equal(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
