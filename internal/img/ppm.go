package img

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
)

// RGB is an 8-bit color image stored row-major as interleaved R,G,B.
type RGB struct {
	W, H int
	Pix  []uint8 // len == 3*W*H
}

// NewRGB allocates a zeroed color image.
func NewRGB(w, h int) *RGB {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("img: invalid dimensions %dx%d", w, h))
	}
	return &RGB{W: w, H: h, Pix: make([]uint8, 3*w*h)}
}

// Set writes the pixel at (x, y); out-of-range coordinates are ignored.
func (c *RGB) Set(x, y int, r, g, b uint8) {
	if x < 0 || x >= c.W || y < 0 || y >= c.H {
		return
	}
	i := 3 * (y*c.W + x)
	c.Pix[i], c.Pix[i+1], c.Pix[i+2] = r, g, b
}

// At returns the pixel at (x, y) with border clamping.
func (c *RGB) At(x, y int) (r, g, b uint8) {
	if x < 0 {
		x = 0
	}
	if x >= c.W {
		x = c.W - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= c.H {
		y = c.H - 1
	}
	i := 3 * (y*c.W + x)
	return c.Pix[i], c.Pix[i+1], c.Pix[i+2]
}

// EncodePPM writes the image in binary PPM (P6) format.
func EncodePPM(w io.Writer, c *RGB) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", c.W, c.H); err != nil {
		return err
	}
	if _, err := bw.Write(c.Pix); err != nil {
		return err
	}
	return bw.Flush()
}

// WritePPMFile writes c to path in binary PPM format.
func WritePPMFile(path string, c *RGB) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := EncodePPM(f, c); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// FlowToColor renders a motion field with the standard optical-flow
// color wheel: hue encodes direction, saturation encodes magnitude
// relative to maxMag (pass 0 to auto-scale to the field's maximum).
func FlowToColor(f *VectorField, maxMag float64) *RGB {
	if maxMag <= 0 {
		for i := range f.DX {
			m := math.Hypot(float64(f.DX[i]), float64(f.DY[i]))
			if m > maxMag {
				maxMag = m
			}
		}
		if maxMag == 0 {
			maxMag = 1
		}
	}
	out := NewRGB(f.W, f.H)
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			dx, dy := f.At(x, y)
			mag := math.Hypot(float64(dx), float64(dy)) / maxMag
			if mag > 1 {
				mag = 1
			}
			ang := math.Atan2(float64(dy), float64(dx)) // [-pi, pi]
			hue := (ang + math.Pi) / (2 * math.Pi) * 360
			r, g, b := hsvToRGB(hue, mag, 1)
			out.Set(x, y, r, g, b)
		}
	}
	return out
}

// hsvToRGB converts hue [0,360), saturation and value in [0,1].
func hsvToRGB(h, s, v float64) (uint8, uint8, uint8) {
	c := v * s
	hp := h / 60
	x := c * (1 - math.Abs(math.Mod(hp, 2)-1))
	var r, g, b float64
	switch {
	case hp < 1:
		r, g, b = c, x, 0
	case hp < 2:
		r, g, b = x, c, 0
	case hp < 3:
		r, g, b = 0, c, x
	case hp < 4:
		r, g, b = 0, x, c
	case hp < 5:
		r, g, b = x, 0, c
	default:
		r, g, b = c, 0, x
	}
	m := v - c
	return uint8((r + m) * 255), uint8((g + m) * 255), uint8((b + m) * 255)
}

// GrayToRGB lifts a grayscale image to color (for composing figures).
func GrayToRGB(g *Gray) *RGB {
	out := NewRGB(g.W, g.H)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			v := g.At(x, y)
			out.Set(x, y, v, v, v)
		}
	}
	return out
}
