// Package prototype emulates the paper's macro-scale RSU-G2 prototype
// (§7): two channels of laser → RET network → SPAD, with an FPGA
// measuring time-to-fluorescence at 250 ps resolution and a PC doing the
// energy calculation and intensity mapping in software.
//
// We do not have the bench hardware, so the emulation models the parts
// that drive the paper's two §7 results:
//
//  1. Parameterization accuracy — laser intensity control has relative
//     error that grows as a channel is driven toward the bottom of its
//     dynamic range; the paper measures pairwise relative probabilities
//     "within 10% when the ratio is below 30, and 24% for higher
//     ratios". The control-noise model reproduces those bands.
//  2. A two-label image segmentation driven by the prototype (Figure 7:
//     a 50×67 image, 10 MCMC iterations), with the paper's timing
//     constants: sampling ≤ ~2 µs/pixel but ~60 s/image-iteration lost
//     to the proprietary laser-controller interface.
package prototype

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/gibbs"
	"repro/internal/img"
	"repro/internal/mrf"
	"repro/internal/rng"
)

// Paper timing constants (§7).
const (
	// ResolutionS is the FPGA's TTF timing resolution: 250 ps.
	ResolutionS = 250e-12
	// SamplePerPixelS is the prototype's per-pixel sampling time
	// ("no longer than ~2µs per pixel").
	SamplePerPixelS = 2e-6
	// InterfaceDelayPerIterationS is the laser-controller interface
	// overhead ("60 sec/image-iteration").
	InterfaceDelayPerIterationS = 60.0
)

// ControlNoise models the laser-intensity control error of one channel:
// setting a fraction f of full scale realizes f·(1+ε) with
// ε ~ N(0, Base + Floor/f). Base is the full-scale calibration error;
// Floor captures the loss of relative precision near the bottom of the
// dynamic range (driver quantization, amplifier nonlinearity).
type ControlNoise struct {
	Base  float64
	Floor float64
}

// Sigma returns the relative error std dev at fraction f of full scale.
func (c ControlNoise) Sigma(f float64) float64 {
	if f <= 0 {
		return math.Inf(1)
	}
	return c.Base + c.Floor/f
}

// RSUG2 is the emulated two-channel prototype.
type RSUG2 struct {
	// MaxRate is the full-scale detected-photon rate of each channel.
	MaxRate float64
	// Noise is the per-channel intensity control error model.
	Noise ControlNoise
	// Resolution is the FPGA TTF quantization step.
	Resolution float64
}

// New returns the default emulated prototype. The macro bench runs far
// slower than the integrated design (discrete components, electrical
// delays; ~2 µs per pixel): full-scale mean TTF is 100 ns = 400 FPGA
// ticks, so tick-tie bias is negligible. Control noise is calibrated to
// the §7 accuracy bands (≈3% at full scale, degrading toward 1/255
// drive).
func New() *RSUG2 {
	return &RSUG2{
		MaxRate:    1e7, // 100 ns mean TTF at full scale
		Noise:      ControlNoise{Base: 0.03, Floor: 0.00025},
		Resolution: ResolutionS,
	}
}

// realizedRate applies one fresh draw of control noise to a commanded
// drive fraction and returns the detected-photon rate.
func (p *RSUG2) realizedRate(f float64, src *rng.Source) float64 {
	if f <= 0 {
		return 0
	}
	rate := p.MaxRate * f * (1 + src.Normal(0, p.Noise.Sigma(f)))
	if rate < 0 {
		return 0
	}
	return rate
}

// raceRates runs one sampling operation at fixed realized rates,
// returning 0 if channel A fires first. Integer-tick ties go to channel
// A (the FPGA comparator's fixed priority); at 400-tick means the bias
// is negligible.
func (p *RSUG2) raceRates(ra, rb float64, src *rng.Source) int {
	ta, tb := uint64(math.MaxUint64), uint64(math.MaxUint64)
	if ra > 0 {
		ta = uint64(src.Exponential(ra) / p.Resolution)
	}
	if rb > 0 {
		tb = uint64(src.Exponential(rb) / p.Resolution)
	}
	if ta == math.MaxUint64 && tb == math.MaxUint64 {
		return 0
	}
	if ta <= tb {
		return 0
	}
	return 1
}

// Race performs one two-channel sampling operation with the channels
// commanded to fractions fA and fB of full scale. Each Race is a fresh
// laser setting, so control noise is redrawn (this is how the Gibbs
// driver uses the bench: intensities are reprogrammed per pixel).
func (p *RSUG2) Race(fA, fB float64, src *rng.Source) int {
	return p.raceRates(p.realizedRate(fA, src), p.realizedRate(fB, src), src)
}

// MeasureRatio performs one §7 measurement: program the channels once
// for a commanded `ratio`:1 (control miscalibration is systematic for
// the whole measurement), run `races` sampling operations, and return
// the realized probability ratio P(A)/P(B).
func (p *RSUG2) MeasureRatio(ratio float64, races int, src *rng.Source) float64 {
	if ratio <= 0 {
		panic("prototype: ratio must be positive")
	}
	ra := p.realizedRate(1, src)
	rb := p.realizedRate(1/ratio, src)
	winsA := 0
	for i := 0; i < races; i++ {
		if p.raceRates(ra, rb, src) == 0 {
			winsA++
		}
	}
	pa := float64(winsA) / float64(races)
	if pa >= 1 {
		return math.Inf(1)
	}
	return pa / (1 - pa)
}

// RatioPoint is one point of the §7 parameterization sweep.
type RatioPoint struct {
	Commanded float64
	// MeanMeasured is the mean realized ratio over the settings.
	MeanMeasured float64
	// P90RelError and MaxRelError summarize |measured-commanded|/commanded
	// over the repeated settings.
	P90RelError float64
	MaxRelError float64
}

// RatioSweep reproduces the §7 experiment: command pairwise relative
// probabilities and measure the achieved ratios. Each commanded ratio
// is programmed `settings` independent times (systematic calibration
// error redrawn per setting) with `races` sampling operations each.
func (p *RSUG2) RatioSweep(ratios []float64, settings, races int, src *rng.Source) []RatioPoint {
	out := make([]RatioPoint, 0, len(ratios))
	for _, r := range ratios {
		// Keep the minority-channel win count high enough that the
		// p/(1-p) estimation noise does not swamp the control noise: at
		// ratio 255 channel B wins only ~0.4% of races.
		n := races
		if min := int(r * 500); n < min {
			n = min
		}
		errs := make([]float64, settings)
		sum := 0.0
		for s := 0; s < settings; s++ {
			m := p.MeasureRatio(r, n, src)
			sum += m
			errs[s] = math.Abs(m-r) / r
		}
		sort.Float64s(errs)
		out = append(out, RatioPoint{
			Commanded:    r,
			MeanMeasured: sum / float64(settings),
			P90RelError:  errs[(len(errs)*9)/10-1],
			MaxRelError:  errs[len(errs)-1],
		})
	}
	return out
}

// Sampler adapts the prototype to the gibbs.Sampler interface for
// two-label MRFs: the PC computes the two conditional energies and the
// intensity mapping in software (as in §7), the prototype races the
// channels.
type Sampler struct {
	proto *RSUG2
	buf   []float64
}

// NewSampler returns a gibbs.Factory driving the prototype. The model
// passed to SampleSite must have exactly two labels.
func NewSampler(p *RSUG2) gibbs.Factory {
	return func() gibbs.Sampler { return &Sampler{proto: p} }
}

// Name implements gibbs.Sampler.
func (s *Sampler) Name() string { return "prototype-rsu-g2" }

// SampleSite implements gibbs.Sampler.
func (s *Sampler) SampleSite(m *mrf.Model, lm *img.LabelMap, x, y int, src *rng.Source) int {
	if m.M != 2 {
		panic(fmt.Sprintf("prototype: RSU-G2 supports exactly 2 labels, model has %d", m.M))
	}
	s.buf = m.ConditionalEnergies(s.buf, lm, x, y)
	// Software intensity mapping: drive each channel ∝ exp(-E/T),
	// normalized so the stronger channel is at full scale.
	e0, e1 := s.buf[0], s.buf[1]
	minE := math.Min(e0, e1)
	f0 := math.Exp(-(e0 - minE) / m.T)
	f1 := math.Exp(-(e1 - minE) / m.T)
	// Clamp to the prototype's usable dynamic range (ratio 255).
	const minFrac = 1.0 / 255
	if f0 < minFrac {
		f0 = minFrac
	}
	if f1 < minFrac {
		f1 = minFrac
	}
	return s.proto.Race(f0, f1, src)
}

// RunTime returns the prototype wall-clock estimate for a run: the §7
// interface delay dominates the 2 µs/pixel sampling.
func RunTime(pixels, iterations int) float64 {
	return float64(iterations) * (InterfaceDelayPerIterationS + float64(pixels)*SamplePerPixelS)
}
