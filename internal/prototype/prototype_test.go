package prototype

import (
	"context"
	"math"
	"testing"

	"repro/internal/apps"
	"repro/internal/gibbs"
	"repro/internal/img"
	"repro/internal/rng"
)

func TestControlNoiseSigma(t *testing.T) {
	c := ControlNoise{Base: 0.03, Floor: 0.0005}
	if got := c.Sigma(1); math.Abs(got-0.0305) > 1e-12 {
		t.Fatalf("sigma(1) = %v", got)
	}
	if got := c.Sigma(1.0 / 255); got < 0.15 {
		t.Fatalf("sigma at bottom of range = %v, want > 0.15", got)
	}
	if !math.IsInf(c.Sigma(0), 1) {
		t.Fatal("sigma(0) should be infinite")
	}
}

// TestRaceFairAtEqualDrive: equal drives win ~50/50 (tick ties go to A,
// so A is slightly favored; with 8-tick means the bias is small).
func TestRaceFairAtEqualDrive(t *testing.T) {
	p := New()
	src := rng.New(1)
	const n = 40000
	wins := 0
	for i := 0; i < n; i++ {
		if p.Race(1, 1, src) == 0 {
			wins++
		}
	}
	frac := float64(wins) / n
	if frac < 0.49 || frac > 0.56 {
		t.Fatalf("equal-drive win fraction %v", frac)
	}
}

func TestRaceZeroDriveNeverWins(t *testing.T) {
	p := New()
	src := rng.New(2)
	for i := 0; i < 1000; i++ {
		if p.Race(0, 1, src) == 0 {
			t.Fatal("dark channel won the race")
		}
	}
}

// TestSection7AccuracyBands reproduces the §7 result: commanded ratios
// are achieved "within 10% when the ratio is below 30, and 24% for
// higher ratios".
func TestSection7AccuracyBands(t *testing.T) {
	p := New()
	src := rng.New(3)
	var ratios []float64
	for r := 1.0; r <= 255; r *= 1.6 {
		ratios = append(ratios, r)
	}
	ratios = append(ratios, 255)
	points := p.RatioSweep(ratios, 40, 20000, src)
	for _, pt := range points {
		limit := 0.24
		if pt.Commanded < 30 {
			limit = 0.10
		}
		if pt.P90RelError > limit {
			t.Errorf("ratio %.1f: mean measured %.2f (P90 err %.3f) exceeds band %.2f",
				pt.Commanded, pt.MeanMeasured, pt.P90RelError, limit)
		}
	}
	// The error should genuinely grow with ratio (the two-band structure
	// is real, not slack): the highest commanded ratio's P90 error must
	// exceed the lowest's.
	last := points[len(points)-1]
	first := points[0]
	if last.P90RelError <= first.P90RelError {
		t.Errorf("error did not grow with ratio: %v -> %v", first.P90RelError, last.P90RelError)
	}
}

func TestMeasureRatioPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().MeasureRatio(0, 10, rng.New(1))
}

// TestFigure7Segmentation reproduces the prototype demo: a 50×67
// two-label scene segmented in 10 MCMC iterations by the emulated
// RSU-G2.
func TestFigure7Segmentation(t *testing.T) {
	src := rng.New(4)
	scene := img.TwoRegionScene(50, 67, 10, src)
	app, err := apps.NewSegmentation(scene.Image, scene.Means, 2, 40)
	if err != nil {
		t.Fatal(err)
	}
	init := img.NewLabelMap(50, 67)
	res, err := gibbs.Run(context.Background(), app.Model(), init, NewSampler(New()), gibbs.Options{
		Iterations: 10, Schedule: gibbs.Raster,
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rate := res.Final.MislabelRate(scene.Truth); rate > 0.08 {
		t.Fatalf("prototype segmentation mislabel rate %v after 10 iterations", rate)
	}
	if res.SamplerName != "prototype-rsu-g2" {
		t.Fatalf("sampler name %q", res.SamplerName)
	}
}

func TestSamplerRejectsNonBinaryModel(t *testing.T) {
	src := rng.New(6)
	scene := img.BlobScene(8, 8, 3, 5, src)
	app, err := apps.NewSegmentation(scene.Image, scene.Means, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(New())()
	lm := img.NewLabelMap(8, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("3-label model accepted by RSU-G2")
		}
	}()
	s.SampleSite(app.Model(), lm, 1, 1, src)
}

// TestRunTime pins the §7 timing estimate: the interface delay
// dominates (60 s/iteration vs ~6.7 ms of sampling for 50×67).
func TestRunTime(t *testing.T) {
	total := RunTime(50*67, 10)
	if total < 600 || total > 601 {
		t.Fatalf("prototype run time %v s, want just above 600", total)
	}
}

func BenchmarkPrototypeRace(b *testing.B) {
	p := New()
	src := rng.New(1)
	for i := 0; i < b.N; i++ {
		p.Race(1, 0.1, src)
	}
}
