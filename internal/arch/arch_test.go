package arch

import (
	"math"
	"testing"
)

func approx(got, want, relTol float64) bool {
	return math.Abs(got-want) <= relTol*math.Abs(want)
}

func TestWorkloadBasics(t *testing.T) {
	w := Segmentation(320, 320)
	if w.Pixels() != 102400 {
		t.Fatalf("pixels %d", w.Pixels())
	}
	if w.PixelIterations() != 102400*5000 {
		t.Fatalf("pixel iterations %v", w.PixelIterations())
	}
	if w.TotalBytes() != 102400*5000*5 {
		t.Fatalf("total bytes %v", w.TotalBytes())
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := w
	bad.Labels = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("bad workload accepted")
	}
}

func TestWorkloadBytesPerPixel(t *testing.T) {
	// §8.2: segmentation 5 B (1 intensity + 4 labels); motion 54 B
	// (49 targets + 1 intensity + 4 labels).
	if Segmentation(1, 1).BytesPerPixel != 5 {
		t.Error("segmentation bytes/pixel")
	}
	if Motion(1, 1).BytesPerPixel != 54 {
		t.Error("motion bytes/pixel")
	}
	if m := Motion(1, 1); m.Labels != 49 || m.Iterations != 400 {
		t.Error("motion workload parameters")
	}
	if s := Segmentation(1, 1); s.Labels != 5 || s.Iterations != 5000 {
		t.Error("segmentation workload parameters")
	}
}

func TestTitanX(t *testing.T) {
	g := TitanX()
	if g.Threads() != 3072 {
		t.Fatalf("threads %d, want 3072", g.Threads())
	}
	if g.MemBW != 336e9 {
		t.Fatalf("bandwidth %v", g.MemBW)
	}
	// Efficiency approaches 1 for HD, and is visibly below 1 for small.
	if e := g.Efficiency(HDW * HDH); e < 0.95 {
		t.Fatalf("HD efficiency %v", e)
	}
	if e := g.Efficiency(SmallW * SmallH); e > 0.7 {
		t.Fatalf("small efficiency %v", e)
	}
}

// TestCalibrationReproducesTable2HD: HD times must match the paper's
// measurements exactly (they are the calibration anchors).
func TestCalibrationReproducesTable2HD(t *testing.T) {
	rows := Table2(TitanX())
	want := map[string]map[Impl]float64{
		"segmentation": {Baseline: 3.2, Optimized: 2.6, RSUG1: 1.1, RSUG4: 1.1},
		"motion":       {Baseline: 7.17, Optimized: 3.35, RSUG1: 0.45, RSUG4: 0.21},
	}
	for _, r := range rows {
		if r.Size != "HD" {
			continue
		}
		for impl, wt := range want[r.App] {
			if !approx(r.Seconds[impl], wt, 1e-6) {
				t.Errorf("%s HD %v: %v, want %v", r.App, impl, r.Seconds[impl], wt)
			}
		}
	}
}

// TestTable2SmallPredictions: small-image times are predictions; they
// must land within 20% of the paper's measurements (Table 2).
func TestTable2SmallPredictions(t *testing.T) {
	rows := Table2(TitanX())
	want := map[string]map[Impl]float64{
		"segmentation": {Baseline: 0.3, Optimized: 0.23, RSUG1: 0.09, RSUG4: 0.09},
		"motion":       {Baseline: 0.55, Optimized: 0.27, RSUG1: 0.04, RSUG4: 0.02},
	}
	for _, r := range rows {
		if r.Size != "Small" {
			continue
		}
		for impl, wt := range want[r.App] {
			if !approx(r.Seconds[impl], wt, 0.20) {
				t.Errorf("%s Small %v: predicted %v, paper %v", r.App, impl, r.Seconds[impl], wt)
			}
		}
	}
}

// TestFigure8Shape checks the qualitative reproduction targets: who
// wins, by roughly what factor.
func TestFigure8Shape(t *testing.T) {
	rows := Figure8(TitanX())
	get := func(app, size string, unit Impl) SpeedupRow {
		for _, r := range rows {
			if r.App == app && r.Size == size && r.Unit == unit {
				return r
			}
		}
		t.Fatalf("missing row %s %s %v", app, size, unit)
		return SpeedupRow{}
	}
	// Paper: seg RSU-G1 speedups 3.2 (small) and 3.0 (HD) over GPU,
	// 2.5 / 2.4 over opt.
	if r := get("segmentation", "HD", RSUG1); !approx(r.OverGPU, 3.0, 0.1) || !approx(r.OverOptGPU, 2.4, 0.1) {
		t.Errorf("seg HD G1 speedups %+v", r)
	}
	if r := get("segmentation", "Small", RSUG1); !approx(r.OverGPU, 3.2, 0.15) {
		t.Errorf("seg small G1 speedup %+v", r)
	}
	// Paper: motion RSU-G1 16.06 over GPU HD, 7.5 over opt HD.
	if r := get("motion", "HD", RSUG1); !approx(r.OverGPU, 16.06, 0.1) || !approx(r.OverOptGPU, 7.5, 0.1) {
		t.Errorf("motion HD G1 speedups %+v", r)
	}
	// Paper: motion RSU-G4 reaches 34 over GPU at HD, 23 at small.
	if r := get("motion", "HD", RSUG4); !approx(r.OverGPU, 34, 0.1) {
		t.Errorf("motion HD G4 speedup %+v", r)
	}
	// Paper: motion RSU-G4 23 over GPU at small. Our single utilization
	// factor cancels in same-size ratios, so the model predicts the HD
	// ratio (~34) at small too; assert the qualitative band (a >20×
	// win) and record the quantitative gap in EXPERIMENTS.md.
	if r := get("motion", "Small", RSUG4); r.OverGPU < 20 || r.OverGPU > 40 {
		t.Errorf("motion small G4 speedup %+v outside [20,40]", r)
	}
	// Ordering invariants: G4 never slower than G1; motion gains exceed
	// segmentation gains (more labels → more RSU benefit).
	for _, size := range []string{"Small", "HD"} {
		for _, app := range []string{"segmentation", "motion"} {
			if get(app, size, RSUG4).OverGPU < get(app, size, RSUG1).OverGPU-1e-9 {
				t.Errorf("%s %s: G4 slower than G1", app, size)
			}
		}
		if get("motion", size, RSUG1).OverGPU <= get("segmentation", size, RSUG1).OverGPU {
			t.Errorf("%s: motion speedup should exceed segmentation", size)
		}
	}
}

// TestAcceleratorDerivedNumbers: the §8.2 analysis is fully derived;
// check the paper's headline numbers.
func TestAcceleratorDerivedNumbers(t *testing.T) {
	a := DefaultAccelerator()
	if a.Units() != 336 {
		t.Fatalf("accelerator units %d, want 336", a.Units())
	}
	rows := AcceleratorAnalysis(TitanX(), a)
	get := func(app, size string) AccelRow {
		for _, r := range rows {
			if r.App == app && r.Size == size {
				return r
			}
		}
		t.Fatalf("missing accel row %s %s", app, size)
		return AccelRow{}
	}
	// Paper §8.2: upper-bound speedups over standard GPU MCMC are 21
	// (seg HD), 54 (motion HD), 39 (seg small), 84 (motion small).
	if r := get("segmentation", "HD"); !approx(r.OverGPU, 21, 0.05) {
		t.Errorf("seg HD accel speedup %v, want ~21", r.OverGPU)
	}
	if r := get("motion", "HD"); !approx(r.OverGPU, 54, 0.05) {
		t.Errorf("motion HD accel speedup %v, want ~54", r.OverGPU)
	}
	if r := get("segmentation", "Small"); !approx(r.OverGPU, 39, 0.15) {
		t.Errorf("seg small accel speedup %v, want ~39", r.OverGPU)
	}
	if r := get("motion", "Small"); !approx(r.OverGPU, 84, 0.20) {
		t.Errorf("motion small accel speedup %v, want ~84", r.OverGPU)
	}
	// Additional speedups over the RSU-G1 GPU: 7× (seg HD), 3.4×
	// (motion HD), 12.1× (seg small), 6.5× (motion small).
	if r := get("segmentation", "HD"); !approx(r.OverRSUG1GPU, 7, 0.05) {
		t.Errorf("seg HD accel-over-G1 %v, want ~7", r.OverRSUG1GPU)
	}
	if r := get("motion", "HD"); !approx(r.OverRSUG1GPU, 3.4, 0.05) {
		t.Errorf("motion HD accel-over-G1 %v, want ~3.4", r.OverRSUG1GPU)
	}
	if r := get("segmentation", "Small"); !approx(r.OverRSUG1GPU, 12.1, 0.15) {
		t.Errorf("seg small accel-over-G1 %v, want ~12.1", r.OverRSUG1GPU)
	}
	if r := get("motion", "Small"); !approx(r.OverRSUG1GPU, 6.5, 0.20) {
		t.Errorf("motion small accel-over-G1 %v, want ~6.5", r.OverRSUG1GPU)
	}
	// "The discrete accelerator achieves speedup of only 1.55x over the
	// RSU-G4 augmented GPU for motion estimation of HD images."
	if r := get("motion", "HD"); !approx(r.OverRSUG4GPU, 1.55, 0.05) {
		t.Errorf("motion HD accel-over-G4 %v, want ~1.55", r.OverRSUG4GPU)
	}
}

// TestAcceleratorMonotoneInBW: doubling bandwidth halves time and
// doubles the unit count — the paper's "scales linearly with available
// memory bandwidth".
func TestAcceleratorMonotoneInBW(t *testing.T) {
	w := Motion(HDW, HDH)
	a := DefaultAccelerator()
	b := a
	b.MemBW *= 2
	if !approx(a.Time(w)/b.Time(w), 2, 1e-9) {
		t.Fatal("time not inversely proportional to BW")
	}
	if b.Units() != 2*a.Units() {
		t.Fatal("units not proportional to BW")
	}
}

// TestAcceleratorNeverSlowerThanModeledGPU: at equal bandwidth the
// bandwidth bound is a lower bound on any implementation's time.
func TestAcceleratorNeverSlowerThanModeledGPU(t *testing.T) {
	g := TitanX()
	a := DefaultAccelerator()
	for _, r := range Table2(g) {
		w := workloadFor(r.App, r.Size)
		at := a.Time(w)
		for impl, sec := range r.Seconds {
			if at > sec+1e-12 {
				t.Errorf("%s %s: accelerator %v slower than %v %v", r.App, r.Size, at, impl, sec)
			}
		}
	}
}

// TestCPUOver100x reproduces the §8.2 CPU observation: RSU-G1 speedup
// over 100 for segmentation and stereo vision on the E5-2640.
func TestCPUOver100x(t *testing.T) {
	c := E5_2640()
	rows := CPUAnalysis(c, []Workload{Segmentation(SmallW, SmallH), Stereo(SmallW, SmallH)})
	for _, r := range rows {
		if r.Speedup < 100 {
			t.Errorf("%s CPU speedup %v, want > 100 (§8.2)", r.App, r.Speedup)
		}
		if r.Speedup > 500 {
			t.Errorf("%s CPU speedup %v implausibly large", r.App, r.Speedup)
		}
	}
}

func TestImplString(t *testing.T) {
	if Baseline.String() != "GPU" || Optimized.String() != "Opt GPU" ||
		RSUG1.String() != "RSU-G1" || RSUG4.String() != "RSU-G4" {
		t.Fatal("impl names")
	}
	if Impl(9).String() != "Impl(9)" {
		t.Fatal("unknown impl name")
	}
}

func TestKernelModelWidthScaling(t *testing.T) {
	km := KernelModel{RSUFixedCPP: 100, RSUPerStep: 10}
	if got := km.CyclesPerPixel(RSUG1, 49); got != 100+490 {
		t.Fatalf("G1 cpp %v", got)
	}
	if got := km.CyclesPerPixel(RSUG4, 49); got != 100+130 {
		t.Fatalf("G4 cpp %v", got)
	}
}

func TestSizeLabel(t *testing.T) {
	if got := SizeLabel(Segmentation(320, 320)); got != "320x320" {
		t.Fatalf("size label %q", got)
	}
}

func TestGPUMemoryFloor(t *testing.T) {
	g := TitanX()
	w := Segmentation(HDW, HDH)
	// With absurdly low compute cost the time must hit the memory floor.
	floor := w.TotalBytes() / g.MemBW
	if got := g.Time(w, 1e-6); !approx(got, floor, 1e-9) {
		t.Fatalf("memory floor %v, want %v", got, floor)
	}
}

// TestEnergyAnalysis: with a 250 W GPU, the paper's 12 W of RSU units
// and a ~15 W accelerator (1.3 W units + memory system), the
// energy-to-solution hierarchy must be GPU >> RSU-GPU >> accelerator.
func TestEnergyAnalysis(t *testing.T) {
	rows := EnergyAnalysis(TitanX(), DefaultAccelerator(), 250, 12, 15)
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if !(r.GPUJoules > r.RSUG1GPUJoules && r.RSUG1GPUJoules > r.AccelJoules) {
			t.Errorf("%s %s: energy ordering violated: %+v", r.App, r.Size, r)
		}
		// The accelerator's energy win must be dramatic (two orders of
		// magnitude for motion HD: 54x faster at ~6% of the power).
		if r.GPUJoules/r.AccelJoules < 50 {
			t.Errorf("%s %s: accelerator energy win only %.1fx", r.App, r.Size, r.GPUJoules/r.AccelJoules)
		}
	}
}
