package arch

import "testing"

func TestStagedAcceleratorValidate(t *testing.T) {
	s := DefaultStagedAccelerator()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := s
	bad.SRAMBytes = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero SRAM accepted")
	}
	bad = s
	bad.SRAMBW = s.MemBW / 2
	if err := bad.Validate(); err == nil {
		t.Error("slow SRAM accepted")
	}
}

// TestStagedSmallImageSpeedup: a 320x320 segmentation working set
// (~614 KB) fits in 24 MB SRAM, so iterations run at SRAM bandwidth —
// approaching the 4x speedup over the DRAM-bound design.
func TestStagedSmallImageSpeedup(t *testing.T) {
	s := DefaultStagedAccelerator()
	w := Segmentation(SmallW, SmallH)
	if !s.Fits(w) {
		t.Fatal("small segmentation should fit on-chip")
	}
	plain := s.Accelerator.Time(w)
	staged := s.Time(w)
	gain := plain / staged
	if gain < 3.5 || gain > 4.01 {
		t.Fatalf("staged gain %v, want ~4 (SRAM/DRAM bandwidth ratio)", gain)
	}
}

// TestStagedHDFallsBack: an HD motion working set (~114 MB) exceeds
// SRAM, so the staged design degrades to the DRAM bound.
func TestStagedHDFallsBack(t *testing.T) {
	s := DefaultStagedAccelerator()
	w := Motion(HDW, HDH)
	if s.Fits(w) {
		t.Fatal("HD motion should not fit in 24MB")
	}
	if s.Time(w) != s.Accelerator.Time(w) {
		t.Fatal("non-fitting workload should use the DRAM bound")
	}
}

// TestStagedCrossover: scanning image sizes shows the capacity wall —
// staged wins below it, equal above it.
func TestStagedCrossover(t *testing.T) {
	s := DefaultStagedAccelerator()
	sawStaged, sawFallback := false, false
	for _, side := range []int{64, 128, 320, 640, 1280, 1920, 2560} {
		w := Segmentation(side, side)
		if s.Fits(w) {
			sawStaged = true
			if s.Time(w) >= s.Accelerator.Time(w) {
				t.Errorf("size %d: staged not faster", side)
			}
		} else {
			sawFallback = true
		}
	}
	if !sawStaged || !sawFallback {
		t.Fatal("size sweep did not cross the capacity wall")
	}
}

func TestStagedUnitsScaleWithSRAMBW(t *testing.T) {
	s := DefaultStagedAccelerator()
	if got := s.Units(); got != 4*336 {
		t.Fatalf("staged units %d, want 1344", got)
	}
}

// TestWorkingSetBytes pins the footprint formula.
func TestWorkingSetBytes(t *testing.T) {
	w := Segmentation(100, 100)
	// (5 bytes consumed + 1 label byte) per pixel.
	if got := WorkingSetBytes(w); got != 100*100*6 {
		t.Fatalf("working set %v", got)
	}
}
