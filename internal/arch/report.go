package arch

import "fmt"

// Table2Row is one (application, size) row of Table 2.
type Table2Row struct {
	App     string
	Size    string // "Small" or "HD"
	Seconds map[Impl]float64
}

// Table2 reproduces Table 2: modeled execution times for segmentation
// and motion estimation at both image sizes across all four
// implementations. HD entries match the calibration anchors by
// construction; Small entries are predictions.
func Table2(g GPU) []Table2Row {
	models := Calibrate(g)
	var rows []Table2Row
	for _, app := range []string{"segmentation", "motion"} {
		for _, size := range []string{"Small", "HD"} {
			w := workloadFor(app, size)
			km := models[app]
			sec := make(map[Impl]float64, len(Impls))
			for _, impl := range Impls {
				sec[impl] = g.Time(w, km.CyclesPerPixel(impl, w.Labels))
			}
			rows = append(rows, Table2Row{App: app, Size: size, Seconds: sec})
		}
	}
	return rows
}

func workloadFor(app, size string) Workload {
	w, h := SmallW, SmallH
	if size == "HD" {
		w, h = HDW, HDH
	}
	switch app {
	case "motion":
		return Motion(w, h)
	case "stereo":
		return Stereo(w, h)
	default:
		return Segmentation(w, h)
	}
}

// SpeedupRow is one bar group of Figure 8.
type SpeedupRow struct {
	App        string
	Size       string
	Unit       Impl    // RSUG1 or RSUG4
	OverGPU    float64 // speedup vs Baseline
	OverOptGPU float64 // speedup vs Optimized
}

// Figure8 reproduces Figure 8: RSU speedups over the baseline and
// optimized GPU implementations for each application, size and width.
func Figure8(g GPU) []SpeedupRow {
	rows := Table2(g)
	var out []SpeedupRow
	for _, r := range rows {
		for _, unit := range []Impl{RSUG1, RSUG4} {
			out = append(out, SpeedupRow{
				App:        r.App,
				Size:       r.Size,
				Unit:       unit,
				OverGPU:    r.Seconds[Baseline] / r.Seconds[unit],
				OverOptGPU: r.Seconds[Optimized] / r.Seconds[unit],
			})
		}
	}
	return out
}

// AccelRow is one line of the §8.2 discrete-accelerator analysis.
type AccelRow struct {
	App          string
	Size         string
	AccelSeconds float64
	// OverGPU is the upper-bound speedup vs the baseline GPU (the
	// paper's headline 21/54/39/84 numbers).
	OverGPU float64
	// OverRSUG1GPU is the additional speedup over the RSU-G1 GPU
	// (12.1×/7×/6.5×/3.4× in the text).
	OverRSUG1GPU float64
	// OverRSUG4GPU is the margin over the RSU-G4 GPU (1.55× for motion
	// HD: "RSU-G4 nearly saturates memory BW").
	OverRSUG4GPU float64
}

// AcceleratorAnalysis reproduces the §8.2 text: bandwidth-bound times
// and the speedup hierarchy over the GPU implementations.
func AcceleratorAnalysis(g GPU, a Accelerator) []AccelRow {
	rows := Table2(g)
	var out []AccelRow
	for _, r := range rows {
		w := workloadFor(r.App, r.Size)
		at := a.Time(w)
		out = append(out, AccelRow{
			App:          r.App,
			Size:         r.Size,
			AccelSeconds: at,
			OverGPU:      r.Seconds[Baseline] / at,
			OverRSUG1GPU: r.Seconds[RSUG1] / at,
			OverRSUG4GPU: r.Seconds[RSUG4] / at,
		})
	}
	return out
}

// CPURow compares the sequential CPU baseline against an RSU-G1
// augmented core for one workload.
type CPURow struct {
	App             string
	BaselineSeconds float64
	RSUSeconds      float64
	Speedup         float64
}

// CPUAnalysis reproduces the §8.2 CPU observation (speedup over 100 for
// segmentation and stereo vision on an E5-2640).
func CPUAnalysis(c CPU, workloads []Workload) []CPURow {
	var out []CPURow
	for _, w := range workloads {
		b := c.BaselineTime(w)
		r := c.RSUTime(w)
		out = append(out, CPURow{App: w.Name, BaselineSeconds: b, RSUSeconds: r, Speedup: b / r})
	}
	return out
}

// SizeLabel formats a workload's dimensions as in the paper's figures.
func SizeLabel(w Workload) string {
	return fmt.Sprintf("%dx%d", w.Width, w.Height)
}

// EnergyRow compares energy-to-solution for one workload across
// platforms (a §8.3 extension: the paper reports power; energy is
// power × the Table 2 / accelerator times).
type EnergyRow struct {
	App, Size      string
	GPUJoules      float64
	RSUG1GPUJoules float64
	AccelJoules    float64
}

// EnergyAnalysis computes energy-to-solution with the stated platform
// powers: gpuWatts for the GPU runs (the RSU-augmented GPU adds the
// §8.3 12 W of unit power), and the accelerator at its 1.3 W of RSU
// units plus dramWatts for the memory system.
func EnergyAnalysis(g GPU, a Accelerator, gpuWatts, rsuExtraWatts, accelWatts float64) []EnergyRow {
	rows := Table2(g)
	var out []EnergyRow
	for _, r := range rows {
		w := workloadFor(r.App, r.Size)
		out = append(out, EnergyRow{
			App: r.App, Size: r.Size,
			GPUJoules:      r.Seconds[Baseline] * gpuWatts,
			RSUG1GPUJoules: r.Seconds[RSUG1] * (gpuWatts + rsuExtraWatts),
			AccelJoules:    a.Time(w) * accelWatts,
		})
	}
	return out
}
