package arch

import (
	"fmt"
	"math"

	"repro/internal/fault"
)

// This file models graceful degradation at the architecture level: how
// the §8.2 discrete accelerator's throughput and coverage bend as RET
// circuits fail at a given rate, under each of the internal/fault
// degradation policies. It is the analytic companion of the functional
// accel.RunFaulty simulation — no sampling, just expectation arithmetic
// over the Poisson fault-arrival model the fault DSL's rate clauses
// use, so curves extend to device counts and run lengths the simulator
// cannot reach.

// DegradationModel fixes the redundancy parameters of the degradation
// analysis.
type DegradationModel struct {
	// Accel is the accelerator design point.
	Accel Accelerator
	// Replicas is the per-unit RET replica count (rsu.DefaultReplicas);
	// Spares the spare circuits PolicyRemap can rotate in.
	Replicas, Spares int
	// MaxResamples bounds PolicyResample retries per site.
	MaxResamples int
}

// DefaultDegradationModel matches the fault subsystem's defaults: 4
// replicas, 2 spares, 3 resamples.
func DefaultDegradationModel() DegradationModel {
	return DegradationModel{Accel: DefaultAccelerator(), Replicas: 4, Spares: 2, MaxResamples: 3}
}

// DegradedPoint is one point of a policy's degradation curve.
type DegradedPoint struct {
	// FaultRate is the per-site-sample fault arrival probability (the
	// DSL's rate= clause).
	FaultRate float64 `json:"fault_rate"`
	// FaultedUnits is the expected fraction of units that suffer at
	// least one fault during the run; DeadUnits the fraction whose
	// redundancy (spares under remap) is exhausted.
	FaultedUnits float64 `json:"faulted_units"`
	DeadUnits    float64 `json:"dead_units"`
	// Coverage is the expected fraction of site updates still performed
	// (quarantine freezes rows; everything else keeps sampling).
	Coverage float64 `json:"coverage"`
	// Slowdown is the expected run-time factor against the fault-free
	// bandwidth-bound run (can dip below 1 for quarantine, which stops
	// consuming bandwidth).
	Slowdown float64 `json:"slowdown"`
	// Seconds is the degraded run time.
	Seconds float64 `json:"seconds"`
}

// Curve evaluates the degradation curve of one policy over a sweep of
// fault rates. Faults arrive per site-sample with probability rate;
// arrivals are uniform over the run, so a unit degraded mid-run spends
// on average half the run in its degraded mode.
func (d DegradationModel) Curve(w Workload, policy fault.Policy, rates []float64) ([]DegradedPoint, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if d.Replicas < 1 || d.Spares < 0 || d.MaxResamples < 0 {
		return nil, fmt.Errorf("arch: invalid degradation model %+v", d)
	}
	units := d.Accel.Units()
	sitesPerUnit := float64(w.Pixels()) / float64(units)
	base := d.Accel.Time(w)
	// Control-core cost of one CMOS site evaluation (accel.RunFaulty's
	// fallback path): §2.2 parameterization+exponentiation per label
	// plus the Table 1 categorical draw, on one scalar core.
	cmosPerSite := (float64(w.Labels)*200 + 588) / d.Accel.ClockHz

	out := make([]DegradedPoint, 0, len(rates))
	for _, rate := range rates {
		if rate < 0 {
			return nil, fmt.Errorf("arch: negative fault rate %g", rate)
		}
		// Poisson arrivals per unit over the whole run.
		mu := rate * sitesPerUnit * float64(w.Iterations)
		faulted := -math.Expm1(-mu) // P(>=1 fault)
		p := DegradedPoint{FaultRate: rate, FaultedUnits: faulted, Coverage: 1, Slowdown: 1}
		switch policy {
		case fault.PolicyNone:
			// Corruption stands; no throughput or coverage change.
		case fault.PolicyResample:
			// Each faulty sample costs up to MaxResamples redraws, then
			// stands rejected: a per-sample throughput tax.
			p.Slowdown = 1 + rate*float64(d.MaxResamples)
		case fault.PolicyQuarantine:
			// Faulted units freeze for the remaining half-run on
			// average: coverage drops, bandwidth demand drops with it.
			p.Coverage = 1 - faulted/2
			p.Slowdown = p.Coverage
			p.DeadUnits = faulted
		case fault.PolicyRemap:
			// A unit dies only once its spares are exhausted (arrival
			// count exceeds Spares); dead units escalate to fallback.
			dead := poissonTail(mu, d.Spares)
			p.DeadUnits = dead
			p.Slowdown = d.fallbackSlowdown(w, dead, cmosPerSite, base)
		case fault.PolicyFallback:
			p.DeadUnits = faulted
			p.Slowdown = d.fallbackSlowdown(w, faulted, cmosPerSite, base)
		default:
			return nil, fmt.Errorf("arch: unknown policy %v", policy)
		}
		p.Seconds = base * p.Slowdown
		out = append(out, p)
	}
	return out, nil
}

// fallbackSlowdown is the run-time factor when a fraction `dead` of
// units reroutes (for the average half-run) to the serial control core.
func (d DegradationModel) fallbackSlowdown(w Workload, dead, cmosPerSite, base float64) float64 {
	if dead <= 0 {
		return 1
	}
	reroutedSites := dead / 2 * w.PixelIterations()
	array := 1 - dead/2 // the array's remaining bandwidth-bound share
	return array + reroutedSites*cmosPerSite/base
}

// poissonTail returns P(Poisson(mu) > k).
func poissonTail(mu float64, k int) float64 {
	if mu <= 0 {
		return 0
	}
	term := math.Exp(-mu)
	cdf := term
	for i := 1; i <= k; i++ {
		term *= mu / float64(i)
		cdf += term
	}
	if cdf > 1 {
		cdf = 1
	}
	return 1 - cdf
}
