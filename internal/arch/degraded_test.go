package arch

import (
	"math"
	"testing"

	"repro/internal/fault"
)

var degRates = []float64{0, 1e-9, 1e-7, 1e-5, 1e-3}

// TestDegradationZeroRateIsIdentity: every policy at rate 0 must report
// the fault-free accelerator exactly.
func TestDegradationZeroRateIsIdentity(t *testing.T) {
	d := DefaultDegradationModel()
	w := Segmentation(SmallW, SmallH)
	for _, p := range []fault.Policy{
		fault.PolicyNone, fault.PolicyRemap, fault.PolicyResample,
		fault.PolicyQuarantine, fault.PolicyFallback,
	} {
		pts, err := d.Curve(w, p, []float64{0})
		if err != nil {
			t.Fatal(err)
		}
		pt := pts[0]
		if pt.Slowdown != 1 || pt.Coverage != 1 || pt.FaultedUnits != 0 || pt.DeadUnits != 0 {
			t.Errorf("%v at rate 0: %+v", p, pt)
		}
		if pt.Seconds != d.Accel.Time(w) {
			t.Errorf("%v at rate 0: seconds %v, want fault-free %v", p, pt.Seconds, d.Accel.Time(w))
		}
	}
}

// TestDegradationMonotone: more faults can never speed up fallback-like
// policies, never raise quarantine's coverage, and FaultedUnits is a
// probability increasing in the rate.
func TestDegradationMonotone(t *testing.T) {
	d := DefaultDegradationModel()
	w := Segmentation(SmallW, SmallH)
	for _, p := range []fault.Policy{
		fault.PolicyNone, fault.PolicyRemap, fault.PolicyResample,
		fault.PolicyQuarantine, fault.PolicyFallback,
	} {
		pts, err := d.Curve(w, p, degRates)
		if err != nil {
			t.Fatal(err)
		}
		for i, pt := range pts {
			if pt.FaultedUnits < 0 || pt.FaultedUnits > 1 || pt.Coverage < 0 || pt.Coverage > 1 {
				t.Fatalf("%v: point out of range: %+v", p, pt)
			}
			if pt.DeadUnits > pt.FaultedUnits+1e-12 {
				t.Errorf("%v: dead %v > faulted %v", p, pt.DeadUnits, pt.FaultedUnits)
			}
			if i == 0 {
				continue
			}
			if pt.FaultedUnits < pts[i-1].FaultedUnits {
				t.Errorf("%v: FaultedUnits not monotone at rate %g", p, pt.FaultRate)
			}
			if pt.Coverage > pts[i-1].Coverage {
				t.Errorf("%v: coverage rose at rate %g", p, pt.FaultRate)
			}
			switch p {
			case fault.PolicyQuarantine:
				if pt.Slowdown > pts[i-1].Slowdown {
					t.Errorf("quarantine slowed down at rate %g", pt.FaultRate)
				}
			default:
				if pt.Slowdown < pts[i-1].Slowdown {
					t.Errorf("%v sped up at rate %g", p, pt.FaultRate)
				}
			}
		}
	}
}

// TestDegradationSparesHelp: with spares, remap keeps more units alive
// than raw fallback at every rate — redundancy flattens the curve.
func TestDegradationSparesHelp(t *testing.T) {
	d := DefaultDegradationModel()
	w := Motion(SmallW, SmallH)
	remap, err := d.Curve(w, fault.PolicyRemap, degRates)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := d.Curve(w, fault.PolicyFallback, degRates)
	if err != nil {
		t.Fatal(err)
	}
	for i := range degRates {
		if remap[i].DeadUnits > fb[i].DeadUnits {
			t.Errorf("rate %g: remap loses more units (%v) than fallback (%v)",
				degRates[i], remap[i].DeadUnits, fb[i].DeadUnits)
		}
		if remap[i].Slowdown > fb[i].Slowdown {
			t.Errorf("rate %g: remap slower (%v) than fallback (%v)",
				degRates[i], remap[i].Slowdown, fb[i].Slowdown)
		}
	}
	// At some intermediate rate the separation must be real, not
	// epsilon. (At extreme rates both curves saturate — rate 0 is
	// fault-free, and far past 1 fault/unit even spares are exhausted —
	// so the redundancy win lives in the middle of the sweep.)
	separated := false
	for i := range degRates {
		if fb[i].Slowdown >= remap[i].Slowdown*1.01 {
			separated = true
		}
	}
	if !separated {
		t.Error("spares buy nothing at any swept rate")
	}
}

// TestPoissonTail: the tail helper against direct summation.
func TestPoissonTail(t *testing.T) {
	for _, mu := range []float64{0, 0.1, 1, 5} {
		for k := 0; k <= 4; k++ {
			var cdf, term float64
			term = math.Exp(-mu)
			for i := 0; i <= k; i++ {
				if i > 0 {
					term *= mu / float64(i)
				}
				cdf += term
			}
			want := 1 - cdf
			if want < 0 {
				want = 0
			}
			got := poissonTail(mu, k)
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("poissonTail(%g,%d) = %v, want %v", mu, k, got, want)
			}
		}
	}
}

// TestDegradationRejectsBadInput: invalid workloads, rates and policies
// must error.
func TestDegradationRejectsBadInput(t *testing.T) {
	d := DefaultDegradationModel()
	if _, err := d.Curve(Workload{}, fault.PolicyNone, degRates); err == nil {
		t.Error("invalid workload accepted")
	}
	if _, err := d.Curve(Segmentation(SmallW, SmallH), fault.PolicyNone, []float64{-1}); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := d.Curve(Segmentation(SmallW, SmallH), fault.Policy(99), degRates); err == nil {
		t.Error("unknown policy accepted")
	}
	bad := d
	bad.Replicas = 0
	if _, err := bad.Curve(Segmentation(SmallW, SmallH), fault.PolicyNone, degRates); err == nil {
		t.Error("invalid model accepted")
	}
}
