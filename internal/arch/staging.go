package arch

import (
	"fmt"
	"math"
)

// §8.2 closes with: "Further speedups are possible by using on-chip
// storage to increase memory bandwidth and staging image frames. The
// number of RSU-G units needed scales linearly with available memory
// bandwidth." This file models that design point: an accelerator with
// an SRAM whose bandwidth exceeds DRAM, which serves iterations from
// on-chip storage when the per-iteration working set fits.

// StagedAccelerator extends the DRAM-bound accelerator with an on-chip
// frame store.
type StagedAccelerator struct {
	Accelerator
	// SRAMBytes is the on-chip storage capacity.
	SRAMBytes float64
	// SRAMBW is the on-chip bandwidth (bytes/s), typically several times
	// the DRAM bandwidth.
	SRAMBW float64
}

// DefaultStagedAccelerator returns a plausible staged design: the base
// 336 GB/s DRAM accelerator plus 24 MB of SRAM at 4x DRAM bandwidth
// (Titan-X-class L2 capacity, on-chip wire speed).
func DefaultStagedAccelerator() StagedAccelerator {
	return StagedAccelerator{
		Accelerator: DefaultAccelerator(),
		SRAMBytes:   24e6,
		SRAMBW:      4 * 336e9,
	}
}

// WorkingSetBytes returns the per-iteration resident footprint of a
// workload: the pixel data consumed per iteration (BytesPerPixel) plus
// one byte per pixel for the current label field. If this fits in SRAM
// the frame can be staged once and iterated on-chip.
func WorkingSetBytes(w Workload) float64 {
	return float64(w.Pixels()) * (w.BytesPerPixel + 1)
}

// Fits reports whether the workload's working set stages on-chip.
func (s StagedAccelerator) Fits(w Workload) bool {
	return WorkingSetBytes(w) <= s.SRAMBytes
}

// Time returns the staged execution time: one DRAM pass to load the
// frame, then all iterations at SRAM bandwidth when the working set
// fits; the plain DRAM bound otherwise.
func (s StagedAccelerator) Time(w Workload) float64 {
	if !s.Fits(w) {
		return s.Accelerator.Time(w)
	}
	load := WorkingSetBytes(w) / s.MemBW
	iterate := w.TotalBytes() / s.SRAMBW
	return load + iterate
}

// Units returns the RSU-G count needed to consume the SRAM bandwidth
// (the paper's linear-scaling rule applied to the staged design).
func (s StagedAccelerator) Units() int {
	return int(math.Round(s.SRAMBW / s.ClockHz / s.BytesPerUnitCycle))
}

// Validate checks parameters.
func (s StagedAccelerator) Validate() error {
	if s.SRAMBytes <= 0 || s.SRAMBW <= 0 {
		return fmt.Errorf("arch: staged accelerator needs positive SRAM size and bandwidth")
	}
	if s.SRAMBW < s.MemBW {
		return fmt.Errorf("arch: SRAM bandwidth below DRAM bandwidth")
	}
	return nil
}
