// Package arch implements the architecture performance models of the
// paper (§3, §6, §8): a GPU timing model for the baseline, optimized
// and RSU-augmented implementations, a single-core CPU model, and the
// analytic memory-bandwidth bound for the discrete accelerator.
//
// Methodology note (see DESIGN.md §5). The paper measures wall-clock on
// a GTX Titan X and emulates RSU latency by instruction substitution; we
// have neither the GPU nor the silicon, so the GPU model is *calibrated*
// once against the paper's measured HD times (Table 2) and then used to
// *predict* everything else: small-image times, RSU-G4 scaling, Figure 8
// speedups, and the accelerator crossovers. The accelerator bound is
// fully derived (bytes ÷ bandwidth) with no fitted constants.
package arch

import (
	"fmt"
	"math"
)

// Workload describes one application run: the MRF dimensions, label
// count, iteration count, and the per-pixel-per-iteration DRAM traffic
// of the paper's §8.2 analysis (segmentation: 1 intensity + 4 neighbor
// labels = 5 B; motion: 49 target intensities + 1 intensity + 4 labels
// = 54 B).
type Workload struct {
	Name          string
	Width, Height int
	Labels        int
	Iterations    int
	BytesPerPixel float64
}

// Pixels returns the random-variable count.
func (w Workload) Pixels() int { return w.Width * w.Height }

// PixelIterations returns pixels × iterations, the unit the per-pixel
// cycle costs multiply.
func (w Workload) PixelIterations() float64 {
	return float64(w.Pixels()) * float64(w.Iterations)
}

// TotalBytes returns the total DRAM traffic of the run.
func (w Workload) TotalBytes() float64 {
	return w.PixelIterations() * w.BytesPerPixel
}

// Validate checks the workload's structural invariants.
func (w Workload) Validate() error {
	if w.Width <= 0 || w.Height <= 0 || w.Labels < 2 || w.Iterations <= 0 {
		return fmt.Errorf("arch: invalid workload %+v", w)
	}
	if w.BytesPerPixel <= 0 {
		return fmt.Errorf("arch: workload %q has no memory traffic", w.Name)
	}
	return nil
}

// Standard image sizes of the evaluation (§8.2).
const (
	SmallW, SmallH = 320, 320
	HDW, HDH       = 1920, 1080
)

// Segmentation returns the image-segmentation workload at the given
// size: M=5 labels, 5000 MCMC iterations, 5 B/pixel/iteration.
func Segmentation(w, h int) Workload {
	return Workload{Name: "segmentation", Width: w, Height: h, Labels: 5, Iterations: 5000, BytesPerPixel: 5}
}

// Motion returns the dense-motion-estimation workload: 7×7 search
// window (M=49), 400 iterations, 54 B/pixel/iteration.
func Motion(w, h int) Workload {
	return Workload{Name: "motion", Width: w, Height: h, Labels: 49, Iterations: 400, BytesPerPixel: 54}
}

// Stereo returns the stereo-vision workload (M=5 disparities; evaluated
// on the CPU in the paper): 5 candidate right-image intensities + 1 left
// intensity + 4 neighbor labels = 10 B/pixel/iteration.
func Stereo(w, h int) Workload {
	return Workload{Name: "stereo", Width: w, Height: h, Labels: 5, Iterations: 1000, BytesPerPixel: 10}
}

// Impl identifies an implementation strategy from Table 2.
type Impl int

// Implementations compared in Table 2 / Figure 8.
const (
	// Baseline is the best-effort CUDA MCMC implementation.
	Baseline Impl = iota
	// Optimized precomputes singleton values and loads them from memory
	// (§8.1); faster but its footprint scales with pixels × labels.
	Optimized
	// RSUG1 is the GPU augmented with width-1 RSU-G units.
	RSUG1
	// RSUG4 is the GPU augmented with width-4 RSU-G units.
	RSUG4
)

// String implements fmt.Stringer.
func (i Impl) String() string {
	switch i {
	case Baseline:
		return "GPU"
	case Optimized:
		return "Opt GPU"
	case RSUG1:
		return "RSU-G1"
	case RSUG4:
		return "RSU-G4"
	default:
		return fmt.Sprintf("Impl(%d)", int(i))
	}
}

// Impls lists the Table 2 columns in order.
var Impls = []Impl{Baseline, Optimized, RSUG1, RSUG4}

// GPU is the throughput model of a GPU-class device.
type GPU struct {
	Name       string
	SMs        int
	CoresPerSM int
	ClockHz    float64
	MemBW      float64 // bytes/s
	// OverheadPixels models fixed per-kernel-launch and occupancy
	// overheads: effective throughput scales by
	// pixels / (pixels + OverheadPixels), which is why small images see
	// lower absolute speedups ("HD images saturate the GPU while 320x320
	// images don't", §8.2).
	OverheadPixels float64
}

// TitanX models the NVIDIA GTX Titan X of the evaluation: 24 SMs × 128
// cores at ~1 GHz with 336 GB/s of DRAM bandwidth.
func TitanX() GPU {
	return GPU{Name: "GTX Titan X", SMs: 24, CoresPerSM: 128, ClockHz: 1e9, MemBW: 336e9, OverheadPixels: 80e3}
}

// Threads returns the number of concurrently executing lanes.
func (g GPU) Threads() int { return g.SMs * g.CoresPerSM }

// Efficiency returns the utilization factor for an image of the given
// pixel count.
func (g GPU) Efficiency(pixels int) float64 {
	p := float64(pixels)
	return p / (p + g.OverheadPixels)
}

// Time returns the modeled wall-clock of a workload given its per-pixel
// per-iteration cycle cost: the max of the compute time and the DRAM
// streaming floor.
func (g GPU) Time(w Workload, cyclesPerPixel float64) float64 {
	compute := w.PixelIterations() * cyclesPerPixel /
		(float64(g.Threads()) * g.ClockHz * g.Efficiency(w.Pixels()))
	memory := w.TotalBytes() / g.MemBW
	return math.Max(compute, memory)
}

// KernelModel carries the calibrated per-pixel cycle costs of one
// application's four implementations. The RSU implementations are
// modeled as fixed + perStep × ceil(M/K) so that width (K) scaling is
// predicted rather than fitted per width.
type KernelModel struct {
	App          string
	BaselineCPP  float64
	OptimizedCPP float64
	RSUFixedCPP  float64
	RSUPerStep   float64
}

// CyclesPerPixel returns the per-pixel cycle cost of an implementation
// for a workload with `labels` labels.
func (k KernelModel) CyclesPerPixel(impl Impl, labels int) float64 {
	switch impl {
	case Baseline:
		return k.BaselineCPP
	case Optimized:
		return k.OptimizedCPP
	case RSUG1:
		return k.RSUFixedCPP + k.RSUPerStep*float64(labels)
	case RSUG4:
		steps := (labels + 3) / 4
		return k.RSUFixedCPP + k.RSUPerStep*float64(steps)
	default:
		panic(fmt.Sprintf("arch: unknown impl %v", impl))
	}
}

// Table 2's measured HD wall-clock seconds — the calibration anchors.
var table2HD = map[string]map[Impl]float64{
	"segmentation": {Baseline: 3.2, Optimized: 2.6, RSUG1: 1.1, RSUG4: 1.1},
	"motion":       {Baseline: 7.17, Optimized: 3.35, RSUG1: 0.45, RSUG4: 0.21},
}

// Calibrate builds the kernel models for segmentation and motion by
// inverting the GPU model at the paper's measured HD points. Everything
// else (small images, Figure 8 ratios, accelerator comparisons) is then
// prediction. See DESIGN.md §5.
func Calibrate(g GPU) map[string]KernelModel {
	models := make(map[string]KernelModel, 2)
	for app, rows := range table2HD {
		var hd Workload
		switch app {
		case "segmentation":
			hd = Segmentation(HDW, HDH)
		case "motion":
			hd = Motion(HDW, HDH)
		}
		cpp := func(impl Impl) float64 {
			t := rows[impl]
			return t * float64(g.Threads()) * g.ClockHz * g.Efficiency(hd.Pixels()) / hd.PixelIterations()
		}
		m := KernelModel{
			App:          app,
			BaselineCPP:  cpp(Baseline),
			OptimizedCPP: cpp(Optimized),
		}
		// Solve RSUFixed + perStep*steps for the two measured widths.
		g1 := cpp(RSUG1)
		g4 := cpp(RSUG4)
		n1 := hd.Labels
		n4 := (hd.Labels + 3) / 4
		steps1 := float64(n1)
		steps4 := float64(n4)
		if n1 == n4 || g1 <= g4 {
			// Degenerate (e.g. equal measured times): attribute all cost
			// to the fixed component.
			m.RSUFixedCPP = g1
			m.RSUPerStep = 0
		} else {
			m.RSUPerStep = (g1 - g4) / (steps1 - steps4)
			m.RSUFixedCPP = g1 - m.RSUPerStep*steps1
		}
		models[app] = m
	}
	return models
}

// Accelerator is the §8.2 discrete accelerator: RSU-G units behind
// custom control logic, consuming data at full DRAM bandwidth.
type Accelerator struct {
	MemBW             float64 // bytes/s
	ClockHz           float64
	BytesPerUnitCycle float64 // data each RSU-G consumes per cycle
}

// DefaultAccelerator returns the paper's design point: 336 GB/s, 1 GHz,
// 1 byte per unit per cycle.
func DefaultAccelerator() Accelerator {
	return Accelerator{MemBW: 336e9, ClockHz: 1e9, BytesPerUnitCycle: 1}
}

// Time returns the bandwidth-bound execution time: total bytes / BW.
func (a Accelerator) Time(w Workload) float64 {
	return w.TotalBytes() / a.MemBW
}

// Units returns the number of RSU-G units needed to consume the full
// bandwidth: #units = BW / frequency / bytes_per_cycle (§8.2) — 336 for
// the default design.
func (a Accelerator) Units() int {
	return int(math.Round(a.MemBW / a.ClockHz / a.BytesPerUnitCycle))
}

// CPU models the single-core Intel E5-2640 comparison (§8.2: "The
// achieved speedup of an RSU-G1 augmented processor was over 100").
type CPU struct {
	ClockHz float64
	// ParamCyclesPerLabel is the §2.2 cost of computing one label's
	// distribution parameters ("at least 100 cycles" for the sum of
	// distance values).
	ParamCyclesPerLabel float64
	// ExpCyclesPerLabel is the cost of exponentiating each label's
	// energy into a categorical weight (libm exp plus normalization).
	ExpCyclesPerLabel float64
	// SampleCycles is the Table 1 cost of drawing the final sample.
	SampleCycles float64
	// RSUIssueCycles is the per-variable RSU instruction count (three
	// control-register writes + one result read + address math); the
	// writes overlap the previous variable's evaluation tail (§6.1), so
	// the per-variable cost is max(issue, evaluation latency).
	RSUIssueCycles float64
}

// E5_2640 returns the paper's Xeon at 2.5 GHz with §2.2/Table 1 costs.
func E5_2640() CPU {
	return CPU{
		ClockHz:             2.5e9,
		ParamCyclesPerLabel: 100,
		ExpCyclesPerLabel:   100,
		SampleCycles:        588,
		RSUIssueCycles:      5,
	}
}

// BaselineTime is the sequential software MCMC time: every pixel pays
// M × (parameterization + exponentiation) plus one categorical sample
// per iteration.
func (c CPU) BaselineTime(w Workload) float64 {
	perPixel := float64(w.Labels)*(c.ParamCyclesPerLabel+c.ExpCyclesPerLabel) + c.SampleCycles
	return w.PixelIterations() * perPixel / c.ClockHz
}

// RSUTime is the RSU-G1-augmented sequential time: the RSU instruction
// issue overlapped with the unit's 7+(M−1)-cycle evaluation (§6.1).
func (c CPU) RSUTime(w Workload) float64 {
	perPixel := math.Max(c.RSUIssueCycles, float64(7+w.Labels-1))
	return w.PixelIterations() * perPixel / c.ClockHz
}
