// Package rng provides deterministic pseudo-random number generation and
// from-scratch samplers for the parameterized distributions used throughout
// the reproduction: exponential, normal, gamma, categorical and Bernoulli.
//
// These samplers are the software baseline the paper measures in §2.2 /
// Table 1 ("Cycles to Sample from Different Distributions"): on a
// conventional processor every Gibbs update pays for (1) parameterizing a
// distribution and (2) drawing from it, each costing hundreds of cycles.
// The RSU-G unit built in internal/rsu replaces step (2) with a RET
// circuit; this package is what it replaces.
//
// All generators are deterministic given a seed so experiments are
// reproducible. Source implements xoshiro256** seeded via SplitMix64.
package rng

import "math"

// Source is a deterministic 64-bit PRNG (xoshiro256**, seeded with
// SplitMix64). It is intentionally not safe for concurrent use; create
// one Source per goroutine (see Split).
type Source struct {
	s [4]uint64
}

// New returns a Source seeded deterministically from seed.
func New(seed uint64) *Source {
	src := &Source{}
	src.Seed(seed)
	return src
}

// Seed re-initializes the generator state from seed using SplitMix64,
// guaranteeing a non-zero internal state for any seed value.
func (r *Source) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// xoshiro requires a non-zero state; SplitMix64 cannot produce four
	// zeros from any seed, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// Split derives an independent child generator from r. The child's
// stream is decorrelated from the parent's by reseeding through
// SplitMix64 with a drawn value.
func (r *Source) Split() *Source {
	return New(r.Uint64() ^ 0xd1342543de82ef95)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *Source) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Float64 returns a uniform sample in [0, 1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1p-53
}

// Float64Open returns a uniform sample in (0, 1): never exactly zero, so
// it is safe to pass to math.Log.
func (r *Source) Float64Open() float64 {
	for {
		if v := r.Float64(); v > 0 {
			return v
		}
	}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	un := uint64(n)
	// Fast path for powers of two.
	if un&(un-1) == 0 {
		return int(r.Uint64() & (un - 1))
	}
	for {
		v := r.Uint64()
		hi, lo := mul64(v, un)
		if lo >= un || lo >= (-un)%un {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t&mask32 + x0*y1
	hi = x1*y1 + t>>32 + w1>>32
	lo = x * y
	return
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Bool returns a fair coin flip.
func (r *Source) Bool() bool { return r.Uint64()&1 == 1 }

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exponential returns a sample from Exp(rate) via inverse-transform
// sampling: -ln(U)/rate. It panics if rate <= 0.
//
// This is the distribution the RET circuit of §4.3 samples physically:
// time-to-fluorescence of an exponential RET network.
func (r *Source) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential rate must be positive")
	}
	return -math.Log(r.Float64Open()) / rate
}

// Normal returns a sample from N(mu, sigma^2) using the Box–Muller
// transform (the polar/Marsaglia variant to avoid trig calls).
func (r *Source) Normal(mu, sigma float64) float64 {
	return mu + sigma*r.stdNormal()
}

func (r *Source) stdNormal() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Gamma returns a sample from Gamma(shape k, scale theta) using the
// Marsaglia–Tsang squeeze method, with the standard boost for k < 1.
// It panics if k <= 0 or theta <= 0.
func (r *Source) Gamma(k, theta float64) float64 {
	if k <= 0 || theta <= 0 {
		panic("rng: Gamma parameters must be positive")
	}
	if k < 1 {
		// Gamma(k) = Gamma(k+1) * U^{1/k}
		u := r.Float64Open()
		return r.Gamma(k+1, theta) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.stdNormal()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64Open()
		if u < 1-0.0331*x*x*x*x {
			return d * v * theta
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * theta
		}
	}
}

// Categorical draws an index i with probability weights[i] / sum(weights)
// by a linear scan of the cumulative sum. Weights must be non-negative
// with a positive sum; it panics otherwise.
//
// This is the O(M) software discrete sampler a Gibbs update uses in the
// baseline implementations (§8.1): compute M energies, exponentiate,
// normalize, scan. The alias method (NewAlias) amortizes to O(1) but
// requires O(M) setup per parameterization, which Gibbs cannot reuse
// because every pixel update re-parameterizes the distribution — exactly
// the sampling inefficiency the paper targets.
func (r *Source) Categorical(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("rng: Categorical weight must be non-negative")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: Categorical weights must have positive sum")
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	// Floating-point slack: return the last index with positive weight.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return len(weights) - 1
}

// CategoricalRates is Categorical without the defensive validation
// pass, for callers that guarantee non-negative weights with a positive
// sum (e.g. Boltzmann rates, whose minimum-energy entry is exactly 1).
// It draws from the identical cumulative scan, so for valid weights it
// returns the same index as Categorical from the same generator state.
func (r *Source) CategoricalRates(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return len(weights) - 1
}

// CategoricalRatesBranchfree draws the same index CategoricalRates
// would draw from the same generator state, but with a branch-free
// inner loop: instead of scanning the cumulative sum until it passes
// u (a data-dependent branch the CPU mispredicts roughly once per
// draw), it counts the prefix sums that u has NOT yet passed using
// the sign bit of (u - acc). The selected index is the number of
// prefixes with u >= acc, which is exactly the first index whose
// cumulative sum exceeds u — the index the early-exit scan returns.
//
// Byte-identity argument (relied on by the compiled-vs-closure
// equivalence tests): both paths consume a single Float64, compute
// the same total and the same partial sums in the same order, and
// resolve floating-point slack (u never passed by any prefix, which
// can happen when rounding makes acc's final value dip below u) by
// falling back to the last index with positive weight.
//
//rsulint:hot
func (r *Source) CategoricalRatesBranchfree(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	u := r.Float64() * total
	acc := 0.0
	n := 0
	for _, w := range weights {
		acc += w
		// (u - acc) has its sign bit set iff u < acc; invert so n
		// counts the prefixes with u >= acc.
		n += int(math.Float64bits(u-acc)>>63) ^ 1
	}
	if n < len(weights) {
		return n
	}
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return len(weights) - 1
}

// GumbelArgmax draws an index distributed ∝ exp(logits[i]) using the
// Gumbel-max trick. It is the log-domain analogue of Categorical and the
// direct mathematical cousin of the first-to-fire race: adding Gumbel
// noise to log-weights and taking the argmax is equivalent to racing
// exponential clocks with rates exp(logits) and taking the first to fire.
func (r *Source) GumbelArgmax(logits []float64) int {
	if len(logits) == 0 {
		panic("rng: GumbelArgmax needs at least one logit")
	}
	best, bestIdx := math.Inf(-1), 0
	for i, l := range logits {
		g := l - math.Log(-math.Log(r.Float64Open()))
		if g > best {
			best, bestIdx = g, i
		}
	}
	return bestIdx
}

// FirstToFire races len(rates) exponential clocks and returns the index
// of the earliest arrival together with its firing time. The winning
// index is distributed ∝ rates[i] — the property the RSU-G selection
// stage exploits (§4.3). Rates must be non-negative with at least one
// positive entry.
func (r *Source) FirstToFire(rates []float64) (winner int, ttf float64) {
	winner = -1
	ttf = math.Inf(1)
	for i, rate := range rates {
		if rate < 0 || math.IsNaN(rate) {
			panic("rng: FirstToFire rate must be non-negative")
		}
		if rate == 0 {
			continue
		}
		t := r.Exponential(rate)
		if t < ttf {
			ttf = t
			winner = i
		}
	}
	if winner < 0 {
		panic("rng: FirstToFire needs at least one positive rate")
	}
	return winner, ttf
}
