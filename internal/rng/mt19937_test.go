package rng

import (
	"math"
	"testing"
)

// TestMT19937KnownVector pins the implementation against the reference
// outputs of mt19937 seeded with 5489 (the C++11 default seed): the
// first outputs are published constants.
func TestMT19937KnownVector(t *testing.T) {
	m := NewMT19937(5489)
	want := []uint32{3499211612, 581869302, 3890346734, 3586334585, 545404204}
	for i, w := range want {
		if got := m.Uint32(); got != w {
			t.Fatalf("output %d = %d, want %d", i, got, w)
		}
	}
	// The 10000th output of mt19937(5489) is the classic check value.
	m2 := NewMT19937(5489)
	var v uint32
	for i := 0; i < 10000; i++ {
		v = m2.Uint32()
	}
	if v != 4123659995 {
		t.Fatalf("10000th output %d, want 4123659995", v)
	}
}

func TestMT19937Float64Range(t *testing.T) {
	m := NewMT19937(1)
	for i := 0; i < 100000; i++ {
		v := m.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("canonical real out of range: %v", v)
		}
	}
}

func TestMT19937ExponentialMoments(t *testing.T) {
	m := NewMT19937(2)
	const n = 200000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = m.Exponential(2)
	}
	s := Summarize(xs)
	if math.Abs(s.Mean-0.5) > 0.01 {
		t.Fatalf("mean %v, want ~0.5", s.Mean)
	}
	if ks := KSExponential(xs, 2); ks > 1.95/math.Sqrt(n) {
		t.Fatalf("KS %v", ks)
	}
}

func TestMT19937ExponentialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMT19937(1).Exponential(0)
}

// BenchmarkMT19937Exponential vs BenchmarkExponential quantifies how
// much of the paper's Table 1 cost is the C++11 engine itself.
func BenchmarkMT19937Exponential(b *testing.B) {
	m := NewMT19937(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = m.Exponential(1.5)
	}
	_ = sink
}
