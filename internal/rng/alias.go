package rng

import "math"

// Alias is a Walker/Vose alias table supporting O(1) categorical sampling
// after O(M) setup. It is included as the strongest software competitor
// to hardware sampling: even the alias method cannot help a Gibbs solver,
// because the full-conditional weights change at every pixel so the table
// must be rebuilt per sample — reducing it to the O(M) cost it was meant
// to avoid. The benchmarks quantify this.
type Alias struct {
	prob  []float64
	alias []int

	// Partition scratch retained across Rebuild calls so rebuilding a
	// table of the same (or smaller) size allocates nothing — the case
	// the Gibbs rebuild-per-sample benchmark measures.
	scaled []float64
	small  []int
	large  []int
}

// NewAlias builds an alias table for the given non-negative weights.
// It panics if weights is empty, contains a negative or NaN entry, or
// sums to zero.
func NewAlias(weights []float64) *Alias {
	a := &Alias{}
	a.Rebuild(weights)
	return a
}

// Rebuild re-derives the table in place for a new weight vector,
// reusing the existing storage when cap allows (zero allocations for
// same-size rebuilds). The panics and the resulting table state are
// identical to NewAlias: after Rebuild(w), the table is word-for-word
// equal to NewAlias(w)'s.
func (a *Alias) Rebuild(weights []float64) {
	n := len(weights)
	if n == 0 {
		panic("rng: NewAlias needs at least one weight")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("rng: NewAlias weight must be non-negative")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: NewAlias weights must have positive sum")
	}
	a.prob = grow(a.prob, n)
	a.alias = grow(a.alias, n)
	// Scaled probabilities; partition into small (<1) and large (>=1).
	a.scaled = grow(a.scaled, n)
	scaled := a.scaled
	small := a.small[:0]
	large := a.large[:0]
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		// Numerical leftovers: treat as probability-1 columns.
		a.prob[i] = 1
		a.alias[i] = i
	}
	a.small, a.large = small, large
}

// grow returns s resized to length n, reusing its backing array when
// the capacity allows.
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// Len returns the number of categories.
func (a *Alias) Len() int { return len(a.prob) }

// Sample draws one index from the table using src.
func (a *Alias) Sample(src *Source) int {
	i := src.Intn(len(a.prob))
	if src.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}
