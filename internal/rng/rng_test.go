package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSourceDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical draws out of 1000", same)
	}
}

func TestSeedZeroIsUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("seed 0 produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestSplitDecorrelates(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	matches := 0
	for i := 0; i < 1000; i++ {
		if parent.Uint64() == child.Uint64() {
			matches++
		}
	}
	if matches > 2 {
		t.Fatalf("parent and child matched %d/1000 draws", matches)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64OpenNeverZero(t *testing.T) {
	r := New(2)
	for i := 0; i < 100000; i++ {
		if v := r.Float64Open(); v <= 0 || v >= 1 {
			t.Fatalf("Float64Open out of (0,1): %v", v)
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(3)
	const n, draws = 7, 70000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %f", i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(4)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExponentialMoments(t *testing.T) {
	r := New(5)
	for _, rate := range []float64{0.25, 1, 4, 100} {
		xs := make([]float64, 200000)
		for i := range xs {
			xs[i] = r.Exponential(rate)
		}
		s := Summarize(xs)
		if math.Abs(s.Mean-1/rate) > 0.02/rate {
			t.Errorf("rate %v: mean %v, want ~%v", rate, s.Mean, 1/rate)
		}
		wantVar := 1 / (rate * rate)
		if math.Abs(s.Variance-wantVar) > 0.1*wantVar {
			t.Errorf("rate %v: variance %v, want ~%v", rate, s.Variance, wantVar)
		}
		if s.Min < 0 {
			t.Errorf("rate %v: negative sample %v", rate, s.Min)
		}
	}
}

func TestExponentialKS(t *testing.T) {
	r := New(6)
	const n = 100000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Exponential(2.5)
	}
	// KS critical value at alpha=0.001 is ~1.95/sqrt(n).
	if ks := KSExponential(xs, 2.5); ks > 1.95/math.Sqrt(n) {
		t.Fatalf("KS statistic %v too large", ks)
	}
}

func TestExponentialPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rate 0")
		}
	}()
	New(1).Exponential(0)
}

func TestNormalMoments(t *testing.T) {
	r := New(7)
	const n = 200000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Normal(3, 2)
	}
	s := Summarize(xs)
	if math.Abs(s.Mean-3) > 0.02 {
		t.Errorf("mean %v, want ~3", s.Mean)
	}
	if math.Abs(s.Variance-4) > 0.1 {
		t.Errorf("variance %v, want ~4", s.Variance)
	}
}

func TestGammaMoments(t *testing.T) {
	r := New(8)
	for _, tc := range []struct{ k, theta float64 }{
		{0.5, 1}, {1, 2}, {2, 0.5}, {9, 3},
	} {
		const n = 200000
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Gamma(tc.k, tc.theta)
		}
		s := Summarize(xs)
		wantMean := tc.k * tc.theta
		wantVar := tc.k * tc.theta * tc.theta
		if math.Abs(s.Mean-wantMean) > 0.03*wantMean+0.01 {
			t.Errorf("Gamma(%v,%v): mean %v, want ~%v", tc.k, tc.theta, s.Mean, wantMean)
		}
		if math.Abs(s.Variance-wantVar) > 0.1*wantVar+0.01 {
			t.Errorf("Gamma(%v,%v): var %v, want ~%v", tc.k, tc.theta, s.Variance, wantVar)
		}
		if s.Min < 0 {
			t.Errorf("Gamma(%v,%v): negative sample", tc.k, tc.theta)
		}
	}
}

func TestBernoulli(t *testing.T) {
	r := New(9)
	if r.Bernoulli(0) {
		t.Error("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Error("Bernoulli(1) returned false")
	}
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	if math.Abs(float64(hits)/n-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) hit rate %v", float64(hits)/n)
	}
}

func TestCategoricalDistribution(t *testing.T) {
	r := New(10)
	weights := []float64{1, 0, 3, 6}
	const n = 100000
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		counts[r.Categorical(weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight category sampled %d times", counts[1])
	}
	total := 10.0
	for i, w := range weights {
		want := w / total
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("category %d: got %v, want %v", i, got, want)
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	r := New(1)
	for _, weights := range [][]float64{{-1, 2}, {0, 0}, {}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for weights %v", weights)
				}
			}()
			r.Categorical(weights)
		}()
	}
}

func TestGumbelArgmaxMatchesCategorical(t *testing.T) {
	r := New(11)
	weights := []float64{2, 5, 1, 8}
	logits := make([]float64, len(weights))
	for i, w := range weights {
		logits[i] = math.Log(w)
	}
	const n = 200000
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		counts[r.GumbelArgmax(logits)]++
	}
	for i, w := range weights {
		want := w / 16.0
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("logit %d: got %v, want %v", i, got, want)
		}
	}
}

// TestFirstToFireDistribution verifies the core first-to-fire identity
// the RSU-G relies on: P(argmin_i Exp(rate_i) = j) = rate_j / sum(rates).
func TestFirstToFireDistribution(t *testing.T) {
	r := New(12)
	rates := []float64{1, 4, 0, 5}
	const n = 200000
	counts := make([]int, len(rates))
	for i := 0; i < n; i++ {
		w, ttf := r.FirstToFire(rates)
		if ttf < 0 {
			t.Fatalf("negative TTF %v", ttf)
		}
		counts[w]++
	}
	if counts[2] != 0 {
		t.Errorf("zero-rate channel fired %d times", counts[2])
	}
	for i, rate := range rates {
		want := rate / 10.0
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("channel %d: got %v, want %v", i, got, want)
		}
	}
}

// TestFirstToFireMinIsExponential checks that the winning TTF itself is
// exponentially distributed with the sum of the rates.
func TestFirstToFireMinIsExponential(t *testing.T) {
	r := New(13)
	rates := []float64{2, 3}
	const n = 100000
	xs := make([]float64, n)
	for i := range xs {
		_, xs[i] = r.FirstToFire(rates)
	}
	if ks := KSExponential(xs, 5); ks > 1.95/math.Sqrt(n) {
		t.Fatalf("min of exponentials KS %v too large", ks)
	}
}

func TestAliasMatchesCategorical(t *testing.T) {
	r := New(14)
	weights := []float64{0.5, 0, 2, 7, 0.1}
	a := NewAlias(weights)
	if a.Len() != len(weights) {
		t.Fatalf("Len = %d", a.Len())
	}
	const n = 300000
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		counts[a.Sample(r)]++
	}
	total := 9.6
	for i, w := range weights {
		want := w / total
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("category %d: got %v, want %v", i, got, want)
		}
	}
}

func TestAliasSingleCategory(t *testing.T) {
	a := NewAlias([]float64{3})
	r := New(15)
	for i := 0; i < 100; i++ {
		if a.Sample(r) != 0 {
			t.Fatal("single-category alias returned nonzero index")
		}
	}
}

func TestAliasPanics(t *testing.T) {
	for _, weights := range [][]float64{{}, {0, 0}, {-1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %v", weights)
				}
			}()
			NewAlias(weights)
		}()
	}
}

// Property: alias table probabilities are valid and every alias index is
// in range, for arbitrary weight vectors.
func TestAliasPropertyValid(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		weights := make([]float64, len(raw))
		sum := 0.0
		for i, v := range raw {
			weights[i] = float64(v)
			sum += weights[i]
		}
		if sum == 0 {
			return true // all-zero weights panic by contract; skip
		}
		a := NewAlias(weights)
		for i := range a.prob {
			if a.prob[i] < 0 || a.prob[i] > 1+1e-9 {
				return false
			}
			if a.alias[i] < 0 || a.alias[i] >= len(weights) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("bad stats: %+v", s)
	}
	if math.Abs(s.Variance-5.0/3.0) > 1e-12 {
		t.Fatalf("variance %v, want 5/3", s.Variance)
	}
	if s := Summarize(nil); s.N != 0 {
		t.Fatalf("empty summarize: %+v", s)
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{-1, 0, 0.5, 0.99, 1.5}, 0, 1, 2)
	if h[0] != 2 || h[1] != 3 {
		t.Fatalf("histogram %v", h)
	}
}

func TestChiSquareZeroForExactMatch(t *testing.T) {
	obs := []int{50, 50}
	if c := ChiSquare(obs, []float64{0.5, 0.5}); c != 0 {
		t.Fatalf("chi-square %v, want 0", c)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkExponential(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Exponential(1.5)
	}
	_ = sink
}

func BenchmarkNormal(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Normal(0, 1)
	}
	_ = sink
}

func BenchmarkGamma(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Gamma(2.5, 1)
	}
	_ = sink
}

func BenchmarkCategorical5(b *testing.B) {
	r := New(1)
	w := []float64{1, 2, 3, 4, 5}
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Categorical(w)
	}
	_ = sink
}

func BenchmarkCategorical49(b *testing.B) {
	r := New(1)
	w := make([]float64, 49)
	for i := range w {
		w[i] = float64(i + 1)
	}
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Categorical(w)
	}
	_ = sink
}

func BenchmarkAliasBuildAndSample49(b *testing.B) {
	// Per-parameterization cost: what Gibbs would pay if it used the
	// alias method, since weights change at every pixel.
	r := New(1)
	w := make([]float64, 49)
	for i := range w {
		w[i] = float64(i + 1)
	}
	var sink int
	for i := 0; i < b.N; i++ {
		sink = NewAlias(w).Sample(r)
	}
	_ = sink
}

func BenchmarkFirstToFire49(b *testing.B) {
	r := New(1)
	rates := make([]float64, 49)
	for i := range rates {
		rates[i] = float64(i + 1)
	}
	var sink int
	for i := 0; i < b.N; i++ {
		sink, _ = r.FirstToFire(rates)
	}
	_ = sink
}
