package rng

import (
	"math"
	"sort"
)

// Stats summarizes a sample set; used by tests, the prototype emulation
// and the RET-circuit validation tooling.
type Stats struct {
	N        int
	Mean     float64
	Variance float64 // unbiased (n-1) estimator
	Min, Max float64
}

// Summarize computes summary statistics with Welford's online algorithm.
func Summarize(xs []float64) Stats {
	s := Stats{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	if len(xs) == 0 {
		return Stats{}
	}
	mean, m2 := 0.0, 0.0
	for i, x := range xs {
		d := x - mean
		mean += d / float64(i+1)
		m2 += d * (x - mean)
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = mean
	if len(xs) > 1 {
		s.Variance = m2 / float64(len(xs)-1)
	}
	return s
}

// KSExponential returns the Kolmogorov–Smirnov statistic of xs against
// Exp(rate): the max absolute deviation between the empirical CDF and
// 1 - exp(-rate x). Used to validate both the software exponential
// sampler and the simulated RET circuits.
func KSExponential(xs []float64, rate float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	maxDev := 0.0
	for i, x := range sorted {
		cdf := 1 - math.Exp(-rate*x)
		lo := float64(i) / n
		hi := float64(i+1) / n
		if d := math.Abs(cdf - lo); d > maxDev {
			maxDev = d
		}
		if d := math.Abs(cdf - hi); d > maxDev {
			maxDev = d
		}
	}
	return maxDev
}

// Histogram counts xs into equal-width bins over [lo, hi); values outside
// the range are clamped into the boundary bins.
func Histogram(xs []float64, lo, hi float64, bins int) []int {
	counts := make([]int, bins)
	if bins == 0 || hi <= lo {
		return counts
	}
	w := (hi - lo) / float64(bins)
	for _, x := range xs {
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		counts[i]++
	}
	return counts
}

// ChiSquare returns the chi-square statistic of observed counts against
// expected probabilities (which must sum to ~1). Bins with zero expected
// probability are skipped.
func ChiSquare(observed []int, expected []float64) float64 {
	total := 0
	for _, o := range observed {
		total += o
	}
	stat := 0.0
	for i, o := range observed {
		if i >= len(expected) || expected[i] <= 0 {
			continue
		}
		e := expected[i] * float64(total)
		d := float64(o) - e
		stat += d * d / e
	}
	return stat
}
