package rng

import (
	"math"
	"testing"
)

func moments(t *testing.T, name string, draw func() float64, n int, wantMean, wantVar, relTol float64) {
	t.Helper()
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = draw()
	}
	s := Summarize(xs)
	if math.Abs(s.Mean-wantMean) > relTol*math.Abs(wantMean)+0.02 {
		t.Errorf("%s: mean %v, want ~%v", name, s.Mean, wantMean)
	}
	if math.Abs(s.Variance-wantVar) > 3*relTol*wantVar+0.05 {
		t.Errorf("%s: variance %v, want ~%v", name, s.Variance, wantVar)
	}
}

func TestPoissonMoments(t *testing.T) {
	r := New(51)
	for _, lambda := range []float64{0.5, 4, 25, 100} {
		moments(t, "poisson", func() float64 { return float64(r.Poisson(lambda)) },
			100000, lambda, lambda, 0.03)
	}
}

func TestPoissonNonNegative(t *testing.T) {
	r := New(52)
	for i := 0; i < 10000; i++ {
		if r.Poisson(50) < 0 {
			t.Fatal("negative Poisson sample")
		}
	}
}

func TestPoissonPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Poisson(0)
}

func TestGeometricMoments(t *testing.T) {
	r := New(53)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		wantMean := (1 - p) / p
		wantVar := (1 - p) / (p * p)
		moments(t, "geometric", func() float64 { return float64(r.Geometric(p)) },
			100000, wantMean, wantVar, 0.03)
	}
	if r.Geometric(1) != 0 {
		t.Fatal("Geometric(1) should be 0")
	}
}

func TestGeometricPanics(t *testing.T) {
	for _, p := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Geometric(%v) accepted", p)
				}
			}()
			New(1).Geometric(p)
		}()
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(54)
	cases := []struct {
		n int
		p float64
	}{{10, 0.3}, {100, 0.5}, {1000, 0.02}, {500, 0.9}}
	for _, c := range cases {
		wantMean := float64(c.n) * c.p
		wantVar := wantMean * (1 - c.p)
		moments(t, "binomial", func() float64 { return float64(r.Binomial(c.n, c.p)) },
			60000, wantMean, wantVar, 0.03)
	}
}

func TestBinomialEdgeCases(t *testing.T) {
	r := New(55)
	if r.Binomial(0, 0.5) != 0 {
		t.Error("n=0")
	}
	if r.Binomial(10, 0) != 0 {
		t.Error("p=0")
	}
	if r.Binomial(10, 1) != 10 {
		t.Error("p=1")
	}
	for i := 0; i < 5000; i++ {
		k := r.Binomial(20, 0.7)
		if k < 0 || k > 20 {
			t.Fatalf("Binomial out of support: %d", k)
		}
	}
}

func TestWeibullMoments(t *testing.T) {
	r := New(56)
	// k=1 reduces to Exp(1/lambda).
	moments(t, "weibull-exp", func() float64 { return r.Weibull(1, 2) }, 100000, 2, 4, 0.03)
	// k=2, lambda=1: mean = Γ(1.5) = sqrt(pi)/2.
	wantMean := math.Sqrt(math.Pi) / 2
	wantVar := 1 - math.Pi/4
	moments(t, "weibull-2", func() float64 { return r.Weibull(2, 1) }, 100000, wantMean, wantVar, 0.03)
}

func TestLogNormalMoments(t *testing.T) {
	r := New(57)
	mu, sigma := 0.0, 0.5
	wantMean := math.Exp(mu + sigma*sigma/2)
	wantVar := (math.Exp(sigma*sigma) - 1) * math.Exp(2*mu+sigma*sigma)
	moments(t, "lognormal", func() float64 { return r.LogNormal(mu, sigma) }, 200000, wantMean, wantVar, 0.05)
}

func TestLaplaceMoments(t *testing.T) {
	r := New(58)
	moments(t, "laplace", func() float64 { return r.Laplace(3, 2) }, 200000, 3, 8, 0.03)
}

func TestBetaMoments(t *testing.T) {
	r := New(59)
	a, b := 2.0, 5.0
	wantMean := a / (a + b)
	wantVar := a * b / ((a + b) * (a + b) * (a + b + 1))
	moments(t, "beta", func() float64 { return r.Beta(a, b) }, 150000, wantMean, wantVar, 0.03)
	for i := 0; i < 5000; i++ {
		v := r.Beta(0.5, 0.5)
		if v < 0 || v > 1 {
			t.Fatalf("Beta out of [0,1]: %v", v)
		}
	}
}

func TestDirichlet(t *testing.T) {
	r := New(60)
	alpha := []float64{1, 2, 3}
	const n = 50000
	sums := make([]float64, 3)
	for i := 0; i < n; i++ {
		out := r.Dirichlet(alpha, nil)
		total := 0.0
		for j, v := range out {
			if v < 0 || v > 1 {
				t.Fatalf("component out of range: %v", v)
			}
			sums[j] += v
			total += v
		}
		if math.Abs(total-1) > 1e-9 {
			t.Fatalf("simplex violated: %v", total)
		}
	}
	for j, a := range alpha {
		want := a / 6.0
		if got := sums[j] / n; math.Abs(got-want) > 0.01 {
			t.Errorf("component %d mean %v, want %v", j, got, want)
		}
	}
}

func TestDirichletReusesOut(t *testing.T) {
	r := New(61)
	buf := make([]float64, 2)
	out := r.Dirichlet([]float64{1, 1}, buf)
	if &out[0] != &buf[0] {
		t.Fatal("Dirichlet did not reuse the buffer")
	}
}

func TestDirichletPanics(t *testing.T) {
	r := New(62)
	for _, f := range []func(){
		func() { r.Dirichlet(nil, nil) },
		func() { r.Dirichlet([]float64{1, 2}, make([]float64, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func BenchmarkPoisson(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Poisson(10)
	}
	_ = sink
}

func BenchmarkBinomial(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Binomial(100, 0.3)
	}
	_ = sink
}

func BenchmarkWeibull(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Weibull(1.5, 1)
	}
	_ = sink
}
