package rng

import "math"

// MT19937 is the Mersenne Twister, the C++11 standard library's default
// engine (std::mt19937). The paper's Table 1 measures sampling through
// the C++11 `<random>` stack; our xoshiro-based Source is several times
// cheaper, so this engine is provided to reproduce the *software
// baseline's* cost structure more faithfully: a 624-word twisted
// generalized feedback shift register with tempering, plus the
// generate_canonical-style real generation that libstdc++'s
// distributions sit on.
type MT19937 struct {
	state [624]uint32
	index int
}

// NewMT19937 seeds the twister with the C++11 seeding recurrence
// (std::mt19937(seed)).
func NewMT19937(seed uint32) *MT19937 {
	m := &MT19937{index: 624}
	m.state[0] = seed
	for i := uint32(1); i < 624; i++ {
		m.state[i] = 1812433253*(m.state[i-1]^(m.state[i-1]>>30)) + i
	}
	return m
}

// Uint32 returns the next tempered 32-bit output.
func (m *MT19937) Uint32() uint32 {
	if m.index >= 624 {
		m.generate()
	}
	y := m.state[m.index]
	m.index++
	y ^= y >> 11
	y ^= (y << 7) & 0x9d2c5680
	y ^= (y << 15) & 0xefc60000
	y ^= y >> 18
	return y
}

func (m *MT19937) generate() {
	for i := 0; i < 624; i++ {
		y := (m.state[i] & 0x80000000) | (m.state[(i+1)%624] & 0x7fffffff)
		next := m.state[(i+397)%624] ^ (y >> 1)
		if y&1 != 0 {
			next ^= 0x9908b0df
		}
		m.state[i] = next
	}
	m.index = 0
}

// Float64 returns a uniform double in [0, 1) the way libstdc++'s
// generate_canonical does for mt19937: two 32-bit draws assembled into
// 53 bits (this double draw is part of why C++11 sampling costs what
// Table 1 reports).
func (m *MT19937) Float64() float64 {
	hi := uint64(m.Uint32() >> 5) // 27 bits
	lo := uint64(m.Uint32() >> 6) // 26 bits
	return float64(hi*(1<<26)+lo) / (1 << 53)
}

// Exponential draws from Exp(rate) via -ln(U)/rate on the canonical
// real — the libstdc++ std::exponential_distribution recipe.
func (m *MT19937) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential rate must be positive")
	}
	u := m.Float64()
	for u >= 1 || u < 0 {
		u = m.Float64()
	}
	return -math.Log1p(-u) / rate
}
