package rng

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// TestSourceStateRoundTrip: a restored Source continues the exact
// stream — every draw after SetState matches the original, across the
// full distribution surface (raw words, floats, categorical draws).
func TestSourceStateRoundTrip(t *testing.T) {
	src := New(42)
	for i := 0; i < 1000; i++ {
		src.Uint64() // advance to an arbitrary mid-stream position
	}
	st := src.State()

	want := make([]uint64, 64)
	for i := range want {
		want[i] = src.Uint64()
	}
	wantF := src.Float64()
	wantC := src.CategoricalRates([]float64{1, 2, 3, 4})

	var restored Source
	if err := restored.SetState(st); err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		if got := restored.Uint64(); got != w {
			t.Fatalf("draw %d: restored %#x != original %#x", i, got, w)
		}
	}
	if got := restored.Float64(); got != wantF {
		t.Fatalf("Float64: restored %v != original %v", got, wantF)
	}
	if got := restored.CategoricalRates([]float64{1, 2, 3, 4}); got != wantC {
		t.Fatalf("CategoricalRates: restored %d != original %d", got, wantC)
	}
}

// TestSourceBinaryGolden pins the wire format: 32 little-endian bytes,
// word i at offset 8i.
func TestSourceBinaryGolden(t *testing.T) {
	var src Source
	st := [4]uint64{0x0102030405060708, 0x1112131415161718, 0x2122232425262728, 0x3132333435363738}
	if err := src.SetState(st); err != nil {
		t.Fatal(err)
	}
	data, err := src.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 32 {
		t.Fatalf("Source binary is %d bytes, want 32", len(data))
	}
	for i, w := range st {
		if got := binary.LittleEndian.Uint64(data[i*8:]); got != w {
			t.Fatalf("word %d encodes as %#x, want %#x", i, got, w)
		}
	}
	var back Source
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.State() != st {
		t.Fatalf("round-trip state %#x != %#x", back.State(), st)
	}
}

func TestSourceStateRejectsZeroAndBadLength(t *testing.T) {
	var src Source
	if err := src.SetState([4]uint64{}); err == nil {
		t.Fatal("all-zero state accepted")
	}
	if err := src.UnmarshalBinary(make([]byte, 31)); err == nil {
		t.Fatal("truncated Source state accepted")
	}
	if err := src.UnmarshalBinary(make([]byte, 32)); err == nil {
		t.Fatal("all-zero Source binary accepted")
	}
}

// TestMT19937RoundTripMidBatch: the index is serialized too, so a
// restore mid-generation-batch (index not at a 624 boundary) continues
// word-exactly.
func TestMT19937RoundTripMidBatch(t *testing.T) {
	m := NewMT19937(5489)
	for i := 0; i < 624+17; i++ { // 17 words into the second batch
		m.Uint32()
	}
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	want := make([]uint32, 2000) // crosses the next regeneration boundary
	for i := range want {
		want[i] = m.Uint32()
	}

	var back MT19937
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		if got := back.Uint32(); got != w {
			t.Fatalf("draw %d: restored %#x != original %#x", i, got, w)
		}
	}

	// The restore must also be byte-stable: marshal(unmarshal(x)) == x.
	var back2 MT19937
	if err := back2.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	data2, err := back2.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("MT19937 marshal/unmarshal/marshal is not byte-stable")
	}
}

func TestMT19937RejectsCorrupt(t *testing.T) {
	m := NewMT19937(1)
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back MT19937
	if err := back.UnmarshalBinary(data[:len(data)-1]); err == nil {
		t.Fatal("truncated MT19937 state accepted")
	}
	bad := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(bad[624*4:], 625) // index out of range
	if err := back.UnmarshalBinary(bad); err == nil {
		t.Fatal("out-of-range MT19937 index accepted")
	}
}

// TestAliasRoundTrip: the serialized table reproduces the internal
// prob/alias columns exactly, so a restored table draws the same
// samples from the same stream.
func TestAliasRoundTrip(t *testing.T) {
	a := NewAlias([]float64{0.5, 1.5, 3, 0.25, 7})
	data, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Alias
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.Len() != a.Len() {
		t.Fatalf("restored Len %d != %d", back.Len(), a.Len())
	}
	for i := range a.prob {
		if math.Float64bits(back.prob[i]) != math.Float64bits(a.prob[i]) {
			t.Fatalf("prob[%d]: restored %v != %v", i, back.prob[i], a.prob[i])
		}
		if back.alias[i] != a.alias[i] {
			t.Fatalf("alias[%d]: restored %d != %d", i, back.alias[i], a.alias[i])
		}
	}
	s1, s2 := New(9), New(9)
	for i := 0; i < 500; i++ {
		if x, y := a.Sample(s1), back.Sample(s2); x != y {
			t.Fatalf("draw %d: original %d != restored %d", i, x, y)
		}
	}
}

func TestAliasRejectsCorrupt(t *testing.T) {
	a := NewAlias([]float64{1, 2, 3})
	data, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Alias
	if err := back.UnmarshalBinary(data[:7]); err == nil {
		t.Fatal("truncated Alias header accepted")
	}
	if err := back.UnmarshalBinary(data[:len(data)-1]); err == nil {
		t.Fatal("truncated Alias body accepted")
	}
	badProb := append([]byte(nil), data...)
	binary.LittleEndian.PutUint64(badProb[8:], math.Float64bits(1.5)) // prob > 1
	if err := back.UnmarshalBinary(badProb); err == nil {
		t.Fatal("out-of-range Alias probability accepted")
	}
	badIdx := append([]byte(nil), data...)
	binary.LittleEndian.PutUint64(badIdx[8+8:], 3) // alias index >= n
	if err := back.UnmarshalBinary(badIdx); err == nil {
		t.Fatal("out-of-range Alias index accepted")
	}
}
