package rng

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Word-exact generator-state serialization, the substrate of the
// checkpoint/resume subsystem (internal/checkpoint): a chain snapshot
// must capture every live PRNG stream so a resumed run draws the exact
// bit sequence an uninterrupted run would have drawn. All encodings are
// fixed-width little-endian so a snapshot is byte-identical across
// hosts and worker counts.

// StateWords is the xoshiro256** state size in 64-bit words.
const StateWords = 4

// State returns the generator's internal xoshiro256** state words. The
// pair State/SetState round-trips exactly: a restored Source continues
// the parent's stream with no drawn value lost or repeated.
func (r *Source) State() [StateWords]uint64 { return r.s }

// SetState overwrites the generator state with previously captured
// words. The all-zero state is the one fixed point xoshiro cannot leave
// and cannot occur in a captured state, so it is rejected.
func (r *Source) SetState(s [StateWords]uint64) error {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		return fmt.Errorf("rng: refusing all-zero xoshiro state")
	}
	r.s = s
	return nil
}

// sourceBinaryLen is the MarshalBinary output size of a Source.
const sourceBinaryLen = StateWords * 8

// MarshalBinary implements encoding.BinaryMarshaler: the four state
// words, little-endian.
func (r *Source) MarshalBinary() ([]byte, error) {
	buf := make([]byte, sourceBinaryLen)
	for i, w := range r.s {
		binary.LittleEndian.PutUint64(buf[i*8:], w)
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (r *Source) UnmarshalBinary(data []byte) error {
	if len(data) != sourceBinaryLen {
		return fmt.Errorf("rng: Source state is %d bytes, want %d", len(data), sourceBinaryLen)
	}
	var s [StateWords]uint64
	for i := range s {
		s[i] = binary.LittleEndian.Uint64(data[i*8:])
	}
	return r.SetState(s)
}

// mtBinaryLen is the MarshalBinary output size of an MT19937: 624 state
// words plus the output index.
const mtBinaryLen = (624 + 1) * 4

// MarshalBinary implements encoding.BinaryMarshaler: the 624 untempered
// state words followed by the output index, all little-endian uint32.
// The index is part of the state — it locates the next output word
// within the current generation batch — so the round-trip is word-exact
// mid-batch, not just at regeneration boundaries.
func (m *MT19937) MarshalBinary() ([]byte, error) {
	buf := make([]byte, mtBinaryLen)
	for i, w := range m.state {
		binary.LittleEndian.PutUint32(buf[i*4:], w)
	}
	binary.LittleEndian.PutUint32(buf[624*4:], uint32(m.index))
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. The index must
// lie in [0, 624]: 624 means "regenerate before the next draw", exactly
// the freshly-seeded position.
func (m *MT19937) UnmarshalBinary(data []byte) error {
	if len(data) != mtBinaryLen {
		return fmt.Errorf("rng: MT19937 state is %d bytes, want %d", len(data), mtBinaryLen)
	}
	idx := binary.LittleEndian.Uint32(data[624*4:])
	if idx > 624 {
		return fmt.Errorf("rng: MT19937 index %d outside [0,624]", idx)
	}
	for i := range m.state {
		m.state[i] = binary.LittleEndian.Uint32(data[i*4:])
	}
	m.index = int(idx)
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler for an alias table:
// the category count followed by each column's probability (IEEE-754
// bits) and alias index. Alias tables are immutable after construction,
// but serializing them lets a checkpoint carry a prepared table instead
// of re-deriving it from weights that may no longer be available.
func (a *Alias) MarshalBinary() ([]byte, error) {
	n := len(a.prob)
	buf := make([]byte, 8+n*16)
	binary.LittleEndian.PutUint64(buf, uint64(n))
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(buf[8+i*16:], math.Float64bits(a.prob[i]))
		binary.LittleEndian.PutUint64(buf[8+i*16+8:], uint64(a.alias[i]))
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, validating
// that every probability is in [0,1] and every alias index in range.
func (a *Alias) UnmarshalBinary(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("rng: Alias state truncated (%d bytes)", len(data))
	}
	n := binary.LittleEndian.Uint64(data)
	if n == 0 {
		return fmt.Errorf("rng: Alias state has zero categories")
	}
	if uint64(len(data)-8) != n*16 {
		return fmt.Errorf("rng: Alias state is %d bytes, want %d for %d categories", len(data), 8+n*16, n)
	}
	prob := make([]float64, n)
	alias := make([]int, n)
	for i := uint64(0); i < n; i++ {
		p := math.Float64frombits(binary.LittleEndian.Uint64(data[8+i*16:]))
		if !(p >= 0 && p <= 1) { // NaN fails both comparisons
			return fmt.Errorf("rng: Alias probability %v outside [0,1]", p)
		}
		idx := binary.LittleEndian.Uint64(data[8+i*16+8:])
		if idx >= n {
			return fmt.Errorf("rng: Alias index %d outside [0,%d)", idx, n)
		}
		prob[i] = p
		alias[i] = int(idx)
	}
	a.prob = prob
	a.alias = alias
	return nil
}
