package rng

import (
	"bytes"
	"math"
	"testing"
)

// randWeights returns a length-n weight vector with roughly zeroFrac of
// the entries exactly zero (never all of them).
func randWeights(src *Source, n int, zeroFrac float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		if src.Float64() < zeroFrac {
			continue // leave exactly zero
		}
		w[i] = src.Float64() * 10
	}
	w[src.Intn(n)] += 1 // guarantee a positive sum
	return w
}

// TestAliasRebuildWordExact checks Rebuild's contract: after
// a.Rebuild(w), the table is word-for-word the table NewAlias(w) builds
// — same probability bits, same alias indices, same serialized bytes —
// regardless of what the table held before.
func TestAliasRebuildWordExact(t *testing.T) {
	src := New(101)
	a := NewAlias([]float64{3, 1, 4, 1, 5, 9, 2, 6})
	for trial := 0; trial < 200; trial++ {
		n := 1 + src.Intn(70)
		w := randWeights(src, n, 0.3)
		a.Rebuild(w)
		fresh := NewAlias(w)
		if a.Len() != fresh.Len() {
			t.Fatalf("trial %d: Len %d != %d", trial, a.Len(), fresh.Len())
		}
		for i := range fresh.prob {
			if math.Float64bits(a.prob[i]) != math.Float64bits(fresh.prob[i]) {
				t.Fatalf("trial %d: prob[%d] %v != %v", trial, i, a.prob[i], fresh.prob[i])
			}
			if a.alias[i] != fresh.alias[i] {
				t.Fatalf("trial %d: alias[%d] %d != %d", trial, i, a.alias[i], fresh.alias[i])
			}
		}
		ab, err := a.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		fb, err := fresh.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ab, fb) {
			t.Fatalf("trial %d: rebuilt table serializes differently from fresh table", trial)
		}
	}
}

// TestAliasSingleLabelRow covers the degenerate M=1 full-conditional
// (one label row): the table must always return index 0, including
// after rebuilding down from a larger table.
func TestAliasSingleLabelRow(t *testing.T) {
	a := NewAlias([]float64{0, 2, 0, 5})
	a.Rebuild([]float64{0.125})
	if a.Len() != 1 {
		t.Fatalf("Len = %d, want 1", a.Len())
	}
	src := New(5)
	for i := 0; i < 100; i++ {
		if got := a.Sample(src); got != 0 {
			t.Fatalf("draw %d: single-category table returned %d", i, got)
		}
	}
}

// TestAliasZeroWeightEntries: zero-weight categories (labels whose
// Boltzmann rate underflowed, or masked labels) must never be sampled,
// and the positive entries must keep their relative frequencies.
func TestAliasZeroWeightEntries(t *testing.T) {
	w := []float64{0, 3, 0, 0, 1, 0}
	a := NewAlias(w)
	src := New(77)
	const draws = 200000
	counts := make([]int, len(w))
	for i := 0; i < draws; i++ {
		counts[a.Sample(src)]++
	}
	for i, c := range counts {
		if w[i] == 0 && c > 0 {
			t.Fatalf("zero-weight category %d drawn %d times", i, c)
		}
	}
	got := float64(counts[1]) / float64(counts[4])
	if got < 2.8 || got > 3.2 {
		t.Fatalf("frequency ratio of weights 3:1 came out %.3f", got)
	}
	// All-but-one zero: the survivor must absorb every draw.
	a.Rebuild([]float64{0, 0, 7, 0})
	for i := 0; i < 100; i++ {
		if got := a.Sample(src); got != 2 {
			t.Fatalf("only-positive-category table returned %d", got)
		}
	}
}

// TestAliasStateRoundTripAfterRebuild: the word-exact serialization
// contract must hold for a rebuilt (storage-reusing) table just as for
// a fresh one — a checkpoint taken after any number of rebuilds
// restores a table with identical draws.
func TestAliasStateRoundTripAfterRebuild(t *testing.T) {
	a := NewAlias([]float64{1, 1, 1, 1, 1, 1, 1, 1})
	a.Rebuild([]float64{0.5, 0, 3.25, 1e-9})
	data, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Alias
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for i := range a.prob {
		if math.Float64bits(back.prob[i]) != math.Float64bits(a.prob[i]) {
			t.Fatalf("prob[%d]: restored %v != %v", i, back.prob[i], a.prob[i])
		}
		if back.alias[i] != a.alias[i] {
			t.Fatalf("alias[%d]: restored %d != %d", i, back.alias[i], a.alias[i])
		}
	}
	s1, s2 := New(13), New(13)
	for i := 0; i < 1000; i++ {
		if x, y := a.Sample(s1), back.Sample(s2); x != y {
			t.Fatalf("draw %d: original %d != restored %d", i, x, y)
		}
	}
}

// TestAliasRebuildAllocFree: same-size (and shrinking) rebuilds must
// reuse the table's storage — this is what keeps the rebuild-per-sample
// Gibbs benchmark honest about the alias method's true per-site cost.
func TestAliasRebuildAllocFree(t *testing.T) {
	a := NewAlias(randWeights(New(2), 16, 0))
	w := randWeights(New(3), 16, 0.25)
	small := randWeights(New(4), 5, 0.25)
	if allocs := testing.AllocsPerRun(100, func() { a.Rebuild(w) }); allocs != 0 {
		t.Fatalf("same-size Rebuild allocates %.1f times per call", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { a.Rebuild(small) }); allocs != 0 {
		t.Fatalf("shrinking Rebuild allocates %.1f times per call", allocs)
	}
}

// TestAliasRebuildPanics: Rebuild enforces exactly the NewAlias input
// contract, and a panicking Rebuild must not be reachable with weights
// NewAlias would accept.
func TestAliasRebuildPanics(t *testing.T) {
	cases := map[string][]float64{
		"empty":    {},
		"negative": {1, -0.5, 2},
		"nan":      {1, math.NaN()},
		"zero-sum": {0, 0, 0},
	}
	for name, w := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Rebuild did not panic", name)
				}
			}()
			a := NewAlias([]float64{1, 2})
			a.Rebuild(w)
		}()
	}
}

// TestCategoricalRatesBranchfreeMatches: the branch-free draw must
// select the identical index to CategoricalRates from the identical
// generator state — the keystone of the compiled kernel's byte-identity
// chain. Exercised across sizes (including single-label), zero-weight
// patterns, and LUT-shaped rate vectors (exp(-k/T) with a guaranteed
// 1.0 entry).
func TestCategoricalRatesBranchfreeMatches(t *testing.T) {
	meta := New(2024)
	for trial := 0; trial < 500; trial++ {
		n := 1 + meta.Intn(64)
		var w []float64
		switch trial % 3 {
		case 0:
			w = randWeights(meta, n, 0)
		case 1:
			w = randWeights(meta, n, 0.5)
		default:
			// Boltzmann-rate shape: integer energy gaps through exp.
			w = make([]float64, n)
			for i := range w {
				w[i] = math.Exp(-float64(meta.Intn(40)) / 12)
			}
			w[meta.Intn(n)] = 1 // the min-energy label
		}
		seed := meta.Uint64() | 1
		s1, s2 := New(seed), New(seed)
		for d := 0; d < 20; d++ {
			ref := s1.CategoricalRates(w)
			got := s2.CategoricalRatesBranchfree(w)
			if ref != got {
				t.Fatalf("trial %d draw %d (n=%d): reference %d, branch-free %d", trial, d, n, ref, got)
			}
			if s1.State() != s2.State() {
				t.Fatalf("trial %d draw %d: generator states diverged", trial, d)
			}
		}
	}
}
