package rng

import "math"

// Additional parameterized distributions beyond the Gibbs-critical set.
// The paper motivates RSUs with the breadth of sampling needs in
// probabilistic algorithms (§2.1 cites the 20 distributions of the
// C++11 standard library); these cover the common discrete and
// heavy-tailed families and are used by the wider benchmarks.

// Poisson returns a sample from Poisson(lambda). Knuth's product method
// below lambda=30, normal approximation with continuity correction and
// rejection resampling above (adequate for benchmark workloads; exact
// methods like PTRS trade more code for tail accuracy we don't need).
// It panics if lambda <= 0.
func (r *Source) Poisson(lambda float64) int {
	if lambda <= 0 || math.IsNaN(lambda) {
		panic("rng: Poisson lambda must be positive")
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= r.Float64Open()
			if p <= l {
				return k
			}
			k++
		}
	}
	for {
		v := r.Normal(lambda, math.Sqrt(lambda))
		if v >= -0.5 {
			return int(v + 0.5)
		}
	}
}

// Geometric returns the number of failures before the first success in
// Bernoulli(p) trials (support 0, 1, 2, …). It panics unless 0 < p <= 1.
func (r *Source) Geometric(p float64) int {
	if p <= 0 || p > 1 || math.IsNaN(p) {
		panic("rng: Geometric p must be in (0,1]")
	}
	if p == 1 {
		return 0
	}
	// Inverse transform: floor(ln U / ln(1-p)).
	return int(math.Log(r.Float64Open()) / math.Log(1-p))
}

// Binomial returns a sample from Binomial(n, p) by inversion for small
// n·p and the normal approximation for large, mirroring Poisson's
// strategy. It panics if n < 0 or p outside [0, 1].
func (r *Source) Binomial(n int, p float64) int {
	if n < 0 || p < 0 || p > 1 || math.IsNaN(p) {
		panic("rng: Binomial parameters out of range")
	}
	if n == 0 || p == 0 {
		return 0
	}
	if p == 1 {
		return n
	}
	// Work with the smaller tail for efficiency and reflect back.
	if p > 0.5 {
		return n - r.Binomial(n, 1-p)
	}
	mean := float64(n) * p
	if n <= 64 || mean < 30 {
		k := 0
		for i := 0; i < n; i++ {
			if r.Float64() < p {
				k++
			}
		}
		return k
	}
	sd := math.Sqrt(mean * (1 - p))
	for {
		v := r.Normal(mean, sd)
		if v >= -0.5 && v <= float64(n)+0.5 {
			return int(v + 0.5)
		}
	}
}

// Weibull returns a sample from Weibull(shape k, scale lambda) by
// inverse transform: lambda * (-ln U)^{1/k}. Heavy-tailed for k < 1 —
// the rare-event-simulation family the paper mentions. It panics on
// non-positive parameters.
func (r *Source) Weibull(k, lambda float64) float64 {
	if k <= 0 || lambda <= 0 {
		panic("rng: Weibull parameters must be positive")
	}
	return lambda * math.Pow(-math.Log(r.Float64Open()), 1/k)
}

// LogNormal returns exp(N(mu, sigma^2)).
func (r *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Laplace returns a sample from Laplace(mu, b) — the double exponential,
// i.e. the signed version of the distribution RET circuits natively
// produce. It panics if b <= 0.
func (r *Source) Laplace(mu, b float64) float64 {
	if b <= 0 {
		panic("rng: Laplace scale must be positive")
	}
	u := r.Float64Open()
	if r.Bool() {
		return mu - b*math.Log(u)
	}
	return mu + b*math.Log(u)
}

// Beta returns a sample from Beta(a, b) via two Gamma draws.
// It panics on non-positive parameters.
func (r *Source) Beta(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		panic("rng: Beta parameters must be positive")
	}
	x := r.Gamma(a, 1)
	y := r.Gamma(b, 1)
	return x / (x + y)
}

// Dirichlet fills out with a sample from Dirichlet(alpha) (normalized
// independent Gammas) and returns it; len(out) must equal len(alpha).
// The categorical-over-simplex workhorse of Bayesian mixture models.
func (r *Source) Dirichlet(alpha []float64, out []float64) []float64 {
	if len(alpha) == 0 {
		panic("rng: Dirichlet needs at least one concentration")
	}
	if out == nil {
		out = make([]float64, len(alpha))
	}
	if len(out) != len(alpha) {
		panic("rng: Dirichlet out length mismatch")
	}
	sum := 0.0
	for i, a := range alpha {
		out[i] = r.Gamma(a, 1)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}
