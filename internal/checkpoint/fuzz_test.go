package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc64"
	"reflect"
	"testing"
)

// fuzzSeedSnapshot builds a small but fully populated snapshot so the
// fuzzer starts from a structurally valid envelope and mutates inward:
// every optional block (rows, counts, energy, sections) is present.
func fuzzSeedSnapshot() *Snapshot {
	s := &Snapshot{
		Fingerprint: Fingerprint{
			App: "segmentation", Backend: "rsu", Seed: 42,
			Iterations: 10, BurnIn: 2, Compile: true,
			AnnealStartT: 2.0, AnnealRate: 0.95, Tag: "units=4",
		},
		Sweep: 3, W: 4, H: 2, M: 3,
		Labels: []uint8{0, 1, 2, 0, 1, 2, 0, 1},
		Chain:  [4]uint64{1, 2, 3, 4},
		Rows:   [][4]uint64{{5, 6, 7, 8}, {9, 10, 11, 12}},
		Counts: make([]uint32, 4*2*3),
		Energy: []float64{-12.5, -11.25},
	}
	s.SetSection(SectionFault, []byte(`{"version":2}`))
	s.SetSection(SectionAging, []byte{0x01, 0x02})
	return s
}

// FuzzCheckpointLoad drives arbitrary bytes through the snapshot decode
// path that Load uses (Load is os.ReadFile + Decode) and enforces the
// decoder's contract:
//
//  1. It never panics, whatever the input.
//  2. Every failure is in the typed-error family: ErrCorrupt or
//     ErrVersion, so resume logic can always classify the damage.
//  3. Every success is semantically closed: the decoded snapshot
//     validates, re-encodes, and the re-encoded bytes decode to a
//     DeepEqual snapshot — with the second encode a byte-exact fixed
//     point (the canonical form).
func FuzzCheckpointLoad(f *testing.F) {
	seed := fuzzSeedSnapshot()
	valid, err := Encode(seed)
	if err != nil {
		f.Fatalf("encoding seed snapshot: %v", err)
	}
	f.Add(valid)

	// Minimal snapshot: no optional blocks at all.
	min := &Snapshot{
		Sweep: 0, W: 2, H: 2, M: 2,
		Labels: []uint8{0, 1, 1, 0},
	}
	if data, err := Encode(min); err == nil {
		f.Add(data)
	}

	// Structured damage the property loop must classify as corruption:
	// truncation, a flipped payload bit, trailing garbage, and a
	// version splice with a recomputed (valid) checksum.
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[headerLen+3] ^= 0x40
	f.Add(flipped)
	f.Add(append(append([]byte(nil), valid...), 0xEE))
	spliced := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(spliced[len(magic):], Version+7)
	body := spliced[:len(spliced)-trailerLen]
	binary.LittleEndian.PutUint64(spliced[len(spliced)-trailerLen:], crc64.Checksum(body, crcTable))
	f.Add(spliced)
	f.Add([]byte(magic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
				t.Fatalf("Decode error outside the typed family: %v", err)
			}
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("decoded snapshot fails Validate: %v", err)
		}
		re, err := Encode(s)
		if err != nil {
			t.Fatalf("re-encoding a decoded snapshot: %v", err)
		}
		s2, err := Decode(re)
		if err != nil {
			t.Fatalf("decoding the re-encoded snapshot: %v", err)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("snapshot not preserved across a re-encode round-trip:\n%+v\nvs\n%+v", s, s2)
		}
		// The encoder output is the canonical byte form: encoding the
		// round-tripped snapshot must be a fixed point.
		re2, err := Encode(s2)
		if err != nil {
			t.Fatalf("second re-encode: %v", err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatalf("encode is not a fixed point: %d vs %d bytes", len(re), len(re2))
		}
	})
}
