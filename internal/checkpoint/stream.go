package checkpoint

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// This file is the streaming half of the snapshot format: encode to /
// decode from an io stream (the replication layer moves snapshots over
// HTTP request bodies), plus an offset-resumable chunk reader so an
// interrupted transfer continues from the bytes the receiver already
// holds instead of restarting. The on-wire bytes are exactly the Encode
// bytes — same envelope, same CRC — so a receiver reassembling chunks
// validates the finished file with the ordinary Decode path.

// EncodeTo writes the snapshot's canonical encoding to w and returns
// the byte count written.
func EncodeTo(w io.Writer, s *Snapshot) (int64, error) {
	data, err := Encode(s)
	if err != nil {
		return 0, err
	}
	n, err := w.Write(data)
	return int64(n), err
}

// DecodeFrom reads exactly one encoded snapshot from r: the fixed
// envelope header first (which bounds the payload read against corrupt
// or hostile length fields), then the payload and checksum trailer, and
// then the ordinary Decode validation over the assembled bytes. Short
// or damaged streams fail with ErrCorrupt.
func DecodeFrom(r io.Reader) (*Snapshot, error) {
	header := make([]byte, headerLen)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, fmt.Errorf("%w: stream header: %v", ErrCorrupt, err)
	}
	if string(header[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	payloadLen := binary.LittleEndian.Uint64(header[len(magic)+4:])
	if payloadLen > maxPayload {
		return nil, fmt.Errorf("%w: payload length %d exceeds limit", ErrCorrupt, payloadLen)
	}
	data := make([]byte, headerLen+int(payloadLen)+trailerLen)
	copy(data, header)
	if _, err := io.ReadFull(r, data[headerLen:]); err != nil {
		return nil, fmt.Errorf("%w: stream body: %v", ErrCorrupt, err)
	}
	return Decode(data)
}

// StreamReader reads an encoded snapshot file in chunks from arbitrary
// byte offsets — the sender side of offset-resumable replication. Open
// validates the envelope cheaply (magic, length consistency) without
// loading the payload; the content checksum in the trailer doubles as a
// generation identifier, so both ends can tell whether a partially
// transferred file and a resumed transfer refer to the same snapshot.
//
// The reader holds the file open, and snapshot saves replace the path
// via atomic rename, so a StreamReader always reads one complete,
// self-consistent snapshot even while newer ones land at the same path.
type StreamReader struct {
	f    *os.File
	size int64
	crc  uint64
}

// OpenStream opens path for chunked reading. A missing file surfaces
// the os.ErrNotExist error unwrapped; a file too short or with a
// mismatched envelope fails with ErrCorrupt.
func OpenStream(path string) (*StreamReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	size := fi.Size()
	if size < int64(headerLen+trailerLen) {
		f.Close()
		return nil, fmt.Errorf("%w: %d bytes is shorter than the envelope", ErrCorrupt, size)
	}
	header := make([]byte, headerLen)
	if _, err := f.ReadAt(header, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: envelope read: %v", ErrCorrupt, err)
	}
	if string(header[:len(magic)]) != magic {
		f.Close()
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	payloadLen := binary.LittleEndian.Uint64(header[len(magic)+4:])
	if payloadLen > maxPayload || int64(payloadLen) != size-int64(headerLen+trailerLen) {
		f.Close()
		return nil, fmt.Errorf("%w: payload length %d inconsistent with file size %d", ErrCorrupt, payloadLen, size)
	}
	trailer := make([]byte, trailerLen)
	if _, err := f.ReadAt(trailer, size-trailerLen); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: trailer read: %v", ErrCorrupt, err)
	}
	return &StreamReader{f: f, size: size, crc: binary.LittleEndian.Uint64(trailer)}, nil
}

// Size returns the total encoded size in bytes.
func (r *StreamReader) Size() int64 { return r.size }

// CRC returns the snapshot's trailer checksum — a content fingerprint
// that identifies this snapshot generation across transfer attempts.
func (r *StreamReader) CRC() uint64 { return r.crc }

// ReadChunk fills buf from byte offset off, returning the count read.
// Reading at or past Size returns (0, io.EOF); a read that reaches the
// end returns the final bytes with a nil error.
func (r *StreamReader) ReadChunk(off int64, buf []byte) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("checkpoint: negative chunk offset %d", off)
	}
	if off >= r.size {
		return 0, io.EOF
	}
	if rem := r.size - off; int64(len(buf)) > rem {
		buf = buf[:rem]
	}
	n, err := r.f.ReadAt(buf, off)
	if err == io.EOF && n == len(buf) {
		err = nil
	}
	return n, err
}

// Close releases the underlying file.
func (r *StreamReader) Close() error { return r.f.Close() }
