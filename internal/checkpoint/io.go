package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
)

// Save writes the snapshot to path atomically: encode to a temp file in
// the same directory, fsync it, then rename over the target and fsync
// the directory. A crash — including SIGKILL — at any instant leaves
// either the previous complete snapshot or the new complete snapshot
// at path, never a torn mixture; the worst residue is a stale .tmp
// sibling, which a later Save truncates and replaces.
func Save(path string, s *Snapshot) error {
	data, err := Encode(s)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	// Persist the rename itself. Directory fsync is best-effort: some
	// filesystems refuse it, and the rename is already atomic with
	// respect to readers either way.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// Load reads and fully validates a snapshot written by Save. The error
// distinguishes a missing file (os.IsNotExist), a damaged one
// (ErrCorrupt), and a format-version skew (ErrVersion).
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
