package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc64"
	"os"
	"path/filepath"
	"testing"
)

// testSnapshot builds a fully populated snapshot: every field class
// (fingerprint, geometry, labels, chain, rows, counts, energy,
// sections) is exercised by the round-trip tests below.
func testSnapshot() *Snapshot {
	s := &Snapshot{
		Fingerprint: Fingerprint{
			App:          "segmentation",
			Backend:      "rsu",
			Seed:         7,
			Iterations:   24,
			BurnIn:       5,
			Compile:      true,
			AnnealStartT: 2.5,
			AnnealRate:   0.97,
			Tag:          "rsu:w=2,mode=first-to-fire,replicas=4",
		},
		Sweep: 12,
		W:     4, H: 3, M: 5,
		Labels: []uint8{0, 1, 2, 3, 4, 0, 1, 2, 3, 4, 0, 1},
		Chain:  [4]uint64{1, 2, 3, 4},
		Rows: [][4]uint64{
			{11, 12, 13, 14},
			{21, 22, 23, 24},
			{31, 32, 33, 34},
		},
		Counts: make([]uint32, 4*3*5),
		Energy: []float64{-10.5, -11.25, -12},
	}
	for i := range s.Counts {
		s.Counts[i] = uint32(i * 3)
	}
	s.SetSection(SectionFault, []byte(`{"version":1}`))
	s.SetSection(SectionAging, []byte{1, 2, 3})
	return s
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := testSnapshot()
	data, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != s.Fingerprint {
		t.Fatalf("fingerprint changed: %+v != %+v", got.Fingerprint, s.Fingerprint)
	}
	if got.Sweep != s.Sweep || got.W != s.W || got.H != s.H || got.M != s.M {
		t.Fatalf("position/geometry changed: %+v", got)
	}
	for i := range s.Labels {
		if got.Labels[i] != s.Labels[i] {
			t.Fatalf("label %d: %d != %d", i, got.Labels[i], s.Labels[i])
		}
	}
	if got.Chain != s.Chain {
		t.Fatalf("chain stream changed")
	}
	for i := range s.Rows {
		if got.Rows[i] != s.Rows[i] {
			t.Fatalf("row stream %d changed", i)
		}
	}
	for i := range s.Counts {
		if got.Counts[i] != s.Counts[i] {
			t.Fatalf("count %d changed", i)
		}
	}
	for i := range s.Energy {
		if got.Energy[i] != s.Energy[i] {
			t.Fatalf("energy %d changed", i)
		}
	}
	for _, name := range []string{SectionFault, SectionAging} {
		want, _ := s.Section(name)
		blob, ok := got.Section(name)
		if !ok || !bytes.Equal(blob, want) {
			t.Fatalf("section %q changed: %q vs %q", name, blob, want)
		}
	}
}

// TestEncodeDeterministic: the same state always encodes to the same
// bytes (sections are map-ordered in memory but sorted on the wire).
func TestEncodeDeterministic(t *testing.T) {
	a, err := Encode(testSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		b, err := Encode(testSnapshot())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("encode %d produced different bytes", i)
		}
	}
}

// TestDecodeRejectsTruncation: a prefix of any length — the residue a
// torn write would leave if writes were not atomic — is rejected, never
// misparsed.
func TestDecodeRejectsTruncation(t *testing.T) {
	data, err := Encode(testSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n++ {
		if _, err := Decode(data[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: got %v, want ErrCorrupt", n, err)
		}
	}
}

// TestDecodeRejectsBitFlips: single-bit damage anywhere in the file
// fails the checksum (or structural validation) — sampled across the
// file to keep the test fast.
func TestDecodeRejectsBitFlips(t *testing.T) {
	data, err := Encode(testSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	step := len(data)/64 + 1
	for off := 0; off < len(data); off += step {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0x10
		if _, err := Decode(bad); err == nil {
			t.Fatalf("bit flip at byte %d accepted", off)
		}
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	data, err := Encode(testSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(append(append([]byte(nil), data...), 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte: got %v, want ErrCorrupt", err)
	}
}

// TestDecodeVersionSkew: an envelope from another format version is
// rejected with ErrVersion — but only after its checksum proves it is
// not just damage. The checksum must be recomputed for the spliced
// version or the error would be ErrCorrupt.
func TestDecodeVersionSkew(t *testing.T) {
	data, err := Encode(testSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	future := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(future[len(magic):], Version+1)
	body := future[:len(future)-trailerLen]
	binary.LittleEndian.PutUint64(future[len(future)-trailerLen:], crcChecksum(body))
	if _, err := Decode(future); !errors.Is(err, ErrVersion) {
		t.Fatalf("version skew: got %v, want ErrVersion", err)
	}
	// Version spliced WITHOUT fixing the checksum is damage, not skew.
	damaged := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(damaged[len(magic):], Version+1)
	if _, err := Decode(damaged); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unsigned version splice: got %v, want ErrCorrupt", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Snapshot)
	}{
		{"zero width", func(s *Snapshot) { s.W = 0 }},
		{"label count 1", func(s *Snapshot) { s.M = 1 }},
		{"negative sweep", func(s *Snapshot) { s.Sweep = -1 }},
		{"short labels", func(s *Snapshot) { s.Labels = s.Labels[:5] }},
		{"label out of range", func(s *Snapshot) { s.Labels[0] = uint8(s.M) }},
		{"row count mismatch", func(s *Snapshot) { s.Rows = s.Rows[:1] }},
		{"counter mismatch", func(s *Snapshot) { s.Counts = s.Counts[:7] }},
	}
	for _, tc := range cases {
		s := testSnapshot()
		tc.mutate(s)
		if err := s.Validate(); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", tc.name, err)
		}
		if _, err := Encode(s); err == nil {
			t.Errorf("%s: Encode accepted invalid snapshot", tc.name)
		}
	}
}

func TestFingerprintCheck(t *testing.T) {
	base := testSnapshot().Fingerprint
	if err := base.Check(base); err != nil {
		t.Fatalf("identical fingerprints rejected: %v", err)
	}
	cases := []struct {
		field  string
		mutate func(*Fingerprint)
	}{
		{"app", func(f *Fingerprint) { f.App = "stereo" }},
		{"backend", func(f *Fingerprint) { f.Backend = "metropolis" }},
		{"seed", func(f *Fingerprint) { f.Seed++ }},
		{"iterations", func(f *Fingerprint) { f.Iterations++ }},
		{"burn-in", func(f *Fingerprint) { f.BurnIn++ }},
		{"compile", func(f *Fingerprint) { f.Compile = !f.Compile }},
		{"anneal", func(f *Fingerprint) { f.AnnealRate = 0.5 }},
		{"tag", func(f *Fingerprint) { f.Tag = "other" }},
	}
	for _, tc := range cases {
		other := base
		tc.mutate(&other)
		err := base.Check(other)
		if !errors.Is(err, ErrMismatch) {
			t.Errorf("%s difference: got %v, want ErrMismatch", tc.field, err)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := testSnapshot()
	c := s.Clone()
	c.Labels[0] = 1
	c.Rows[0][0] = 99
	c.Counts[0] = 99
	c.Energy[0] = 99
	blob, _ := c.Section(SectionFault)
	blob[0] = 'X'
	if s.Labels[0] == 1 || s.Rows[0][0] == 99 || s.Counts[0] == 99 || s.Energy[0] == 99 {
		t.Fatal("Clone shares label/row/count/energy storage")
	}
	if orig, _ := s.Section(SectionFault); orig[0] == 'X' {
		t.Fatal("Clone shares section storage")
	}
}

// TestSaveLoadReplace: Save atomically replaces a previous snapshot and
// leaves no temp residue; Load distinguishes missing from damaged.
func TestSaveLoadReplace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "chain.ckpt")

	if _, err := Load(path); !os.IsNotExist(err) {
		t.Fatalf("missing file: got %v, want IsNotExist", err)
	}

	first := testSnapshot()
	if err := Save(path, first); err != nil {
		t.Fatal(err)
	}
	second := testSnapshot()
	second.Sweep = 20
	second.Labels[3] = 0
	if err := Save(path, second); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sweep != 20 || got.Labels[3] != 0 {
		t.Fatalf("Load returned stale snapshot: sweep %d", got.Sweep)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}

	// A damaged file is corrupt, not missing.
	if err := os.WriteFile(path, []byte("RSUGCKPTgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("damaged file: got %v, want ErrCorrupt", err)
	}
}

// crcChecksum re-signs a body for the version-skew test.
func crcChecksum(body []byte) uint64 {
	return crc64.Checksum(body, crcTable)
}
