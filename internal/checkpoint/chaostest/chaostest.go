// Package chaostest is the kill-and-recover harness of the checkpoint
// subsystem: deterministic inference scenarios that a subprocess can be
// SIGKILLed out of at arbitrary instants, resumed from the last durable
// snapshot, and byte-compared against an uninterrupted golden run.
//
// The package holds only the deterministic scenario plumbing (solver
// construction, result digests); the process-killing choreography lives
// in the test files, which are free to use wall clocks and sleeps that
// library code must not.
package chaostest

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/img"
	"repro/internal/rng"
)

// Scenario constants: small enough that one full run takes well under a
// second per backend, large enough that every subsystem (checkerboard
// engine, RSU emulation, fault monitors) does real work.
const (
	// GridW and GridH are the scene geometry.
	GridW = 16
	GridH = 16
	// Iterations and BurnIn are the chain budget.
	Iterations = 12
	BurnIn     = 3
	// Seed is the chain seed; SceneSeed draws the synthetic scene.
	Seed      = 7
	SceneSeed = 41
	// FaultSchedule is the schedule armed when the scenario includes
	// fault injection.
	FaultSchedule = "hot:rate=1e-2;dead:unit=2,sweep=3"
	FaultSeed     = 9
)

// ParseBackend maps the scenario names the harness passes between
// processes onto core backends through the registry. The harness's
// historical shorthand "first-to-fire" stays accepted.
func ParseBackend(name string) (core.Backend, error) {
	if name == "first-to-fire" {
		name = "software-first-to-fire"
	}
	b, err := core.ParseBackend(name)
	if err != nil {
		return 0, fmt.Errorf("chaostest: unknown backend %q", name)
	}
	return b, nil
}

// NewSolver builds the deterministic chaos scenario: a blob-scene
// segmentation on the named backend. spec == nil runs without
// checkpointing (the golden run); otherwise the snapshot policy is the
// caller's — the kill harness injects a clock that SIGKILLs the process
// at a chosen sweep boundary.
func NewSolver(backend string, workers int, faults bool, spec *core.CheckpointSpec) (*core.Solver, error) {
	b, err := ParseBackend(backend)
	if err != nil {
		return nil, err
	}
	scene := img.BlobScene(GridW, GridH, 3, 6, rng.New(SceneSeed))
	app, err := apps.NewSegmentation(scene.Image, scene.Means, 2, 12)
	if err != nil {
		return nil, err
	}
	cfg := core.Config{
		Backend:    b,
		Iterations: Iterations,
		BurnIn:     BurnIn,
		Workers:    workers,
		Seed:       Seed,
	}
	if faults {
		if b != core.RSU {
			return nil, fmt.Errorf("chaostest: faults require the rsu backend, got %q", backend)
		}
		cfg.Faults = &fault.Options{Schedule: FaultSchedule, Seed: FaultSeed, Policy: fault.PolicyRemap}
	}
	cfg.Checkpoint = spec
	return core.NewSolver(app, cfg)
}

// Digest hashes every chain-derived field of a result — final labels,
// marginal MAP, confidence, energy trace bits, sweep count — into a
// stable hex string. Two runs are byte-identical iff their digests
// match, so the kill-and-recover equivalence check travels across
// process boundaries as one line of text.
func Digest(res *core.Result) string {
	h := sha256.New()
	var word [8]byte
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(word[:], uint64(v))
		h.Write(word[:])
	}
	writeInt(res.Iterations)
	for _, l := range res.Final.Labels {
		writeInt(int(l))
	}
	for _, l := range res.MAP.Labels {
		writeInt(int(l))
	}
	h.Write(res.Confidence.Pix)
	writeInt(len(res.EnergyTrace))
	for _, e := range res.EnergyTrace {
		binary.LittleEndian.PutUint64(word[:], math.Float64bits(e))
		h.Write(word[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}
