package chaostest

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/rng"
)

// TestMain doubles as the chaos worker: re-executing the test binary
// with CHAOS_MODE=worker runs one checkpointed solve that SIGKILLs
// itself at the sweep boundary named in CHAOS_KILL_SWEEP (-1: run to
// completion and print the result digest).
func TestMain(m *testing.M) {
	if os.Getenv("CHAOS_MODE") == "worker" {
		os.Exit(runWorker())
	}
	os.Exit(m.Run())
}

func runWorker() int {
	backend := os.Getenv("CHAOS_BACKEND")
	workers, _ := strconv.Atoi(os.Getenv("CHAOS_WORKERS"))
	path := os.Getenv("CHAOS_PATH")
	faults := os.Getenv("CHAOS_FAULTS") == "1"
	killSweep, _ := strconv.Atoi(os.Getenv("CHAOS_KILL_SWEEP"))

	spec := &core.CheckpointSpec{Path: path, Resume: true}
	if killSweep >= 0 {
		// Duration-policy checkpoints with an instrumented clock: the
		// clock is read once at chain start and once per sweep boundary
		// (before that boundary's snapshot is written), so pulling the
		// trigger on the right read dies exactly at boundary killSweep —
		// after the boundary killSweep-1 snapshot became durable, before
		// the killSweep one exists.
		start := 0
		if snap, err := checkpoint.Load(path); err == nil {
			start = snap.Sweep
		}
		calls, target := 0, killSweep-start+1
		spec.Every = time.Nanosecond
		spec.Now = func() time.Time {
			calls++
			if calls == target {
				_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
				select {} // SIGKILL delivery is asynchronous; never continue past the trigger
			}
			return time.Now()
		}
	} else {
		spec.EverySweeps = 1
	}

	s, err := NewSolver(backend, workers, faults, spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos worker:", err)
		return 1
	}
	res, err := s.Solve(context.Background())
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos worker:", err)
		return 1
	}
	fmt.Println(Digest(res))
	return 0
}

// runSubprocess re-executes the test binary as a chaos worker.
func runSubprocess(t *testing.T, backend string, workers int, faults bool, path string, killSweep int) (string, error) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(),
		"CHAOS_MODE=worker",
		"CHAOS_BACKEND="+backend,
		"CHAOS_WORKERS="+strconv.Itoa(workers),
		"CHAOS_PATH="+path,
		"CHAOS_FAULTS="+map[bool]string{false: "0", true: "1"}[faults],
		"CHAOS_KILL_SWEEP="+strconv.Itoa(killSweep),
	)
	var out, errOut bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errOut
	err := cmd.Run()
	if err != nil && errOut.Len() > 0 {
		t.Logf("worker stderr: %s", errOut.String())
	}
	return strings.TrimSpace(out.String()), err
}

// killSweeps picks n distinct increasing kill boundaries in
// [2, Iterations-1] from a seeded stream — randomized offsets, but the
// same ones every run so failures reproduce.
func killSweeps(seed uint64, n int) []int {
	src := rng.New(seed)
	perm := src.Perm(Iterations - 2) // values 0..Iterations-3 -> sweeps 2..Iterations-1
	picks := append([]int(nil), perm[:n]...)
	for i := range picks {
		picks[i] += 2
	}
	for i := 1; i < len(picks); i++ { // insertion sort; n is tiny
		for j := i; j > 0 && picks[j-1] > picks[j]; j-- {
			picks[j-1], picks[j] = picks[j], picks[j-1]
		}
	}
	return picks
}

// TestKillAndRecover is the acceptance harness: for every backend at
// W=1 and W=N, a run is SIGKILLed at randomized sweep boundaries,
// resumed from the last durable snapshot after each kill, and the final
// digest must match the uninterrupted golden run byte-for-byte. Between
// kills the snapshot on disk must always load cleanly — the atomic
// writer never exposes a torn file — even with a garbage .tmp sibling
// planted next to it.
func TestKillAndRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos harness skipped in -short")
	}
	scenarios := []struct {
		backend string
		workers int
		faults  bool
	}{
		{"software-gibbs", 1, false},
		{"software-gibbs", 3, false},
		{"first-to-fire", 1, false},
		{"first-to-fire", 3, false},
		{"metropolis", 1, false},
		{"metropolis", 3, false},
		{"rsu", 1, false},
		{"rsu", 3, false},
		{"rsu", 2, true},
	}
	for i, sc := range scenarios {
		sc := sc
		seed := uint64(100 + i)
		name := fmt.Sprintf("%s-w%d", sc.backend, sc.workers)
		if sc.faults {
			name += "-faults"
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()

			gs, err := NewSolver(sc.backend, sc.workers, sc.faults, nil)
			if err != nil {
				t.Fatal(err)
			}
			gres, err := gs.Solve(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			golden := Digest(gres)

			path := t.TempDir() + "/chain.ckpt"
			for _, kill := range killSweeps(seed, 3) {
				if _, err := runSubprocess(t, sc.backend, sc.workers, sc.faults, path, kill); err == nil {
					t.Fatalf("worker survived its kill at sweep %d", kill)
				} else if ws, ok := exitSignal(err); !ok || ws != syscall.SIGKILL {
					t.Fatalf("worker at kill sweep %d died of %v, want SIGKILL", kill, err)
				}
				// Atomicity: whatever instant the process died at, the
				// snapshot on disk is complete and from boundary kill-1.
				snap, err := checkpoint.Load(path)
				if err != nil {
					t.Fatalf("snapshot unreadable after kill at sweep %d: %v", kill, err)
				}
				if snap.Sweep != kill-1 {
					t.Fatalf("snapshot at sweep %d after kill at %d, want %d", snap.Sweep, kill, kill-1)
				}
				// A stale torn temp file from a hypothetical mid-write
				// death must not confuse the next resume or Save.
				if err := os.WriteFile(path+".tmp", []byte("torn garbage"), 0o644); err != nil {
					t.Fatal(err)
				}
			}

			digest, err := runSubprocess(t, sc.backend, sc.workers, sc.faults, path, -1)
			if err != nil {
				t.Fatalf("final recovery run failed: %v", err)
			}
			if digest != golden {
				t.Fatalf("recovered digest %s != golden %s", digest, golden)
			}
		})
	}
}

// exitSignal extracts the terminating signal from an exec error.
func exitSignal(err error) (syscall.Signal, bool) {
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) {
		return 0, false
	}
	ws, ok := exitErr.Sys().(syscall.WaitStatus)
	if !ok || !ws.Signaled() {
		return 0, false
	}
	return ws.Signal(), true
}

// TestWorkerCountInvariantGolden: the golden digests at W=1 and W=3
// agree — the property that lets a snapshot taken at one worker count
// resume at another.
func TestWorkerCountInvariantGolden(t *testing.T) {
	digests := make([]string, 2)
	for i, w := range []int{1, 3} {
		s, err := NewSolver("software-gibbs", w, false, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Solve(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		digests[i] = Digest(res)
	}
	if digests[0] != digests[1] {
		t.Fatalf("golden digests differ across worker counts: %s vs %s", digests[0], digests[1])
	}
}
