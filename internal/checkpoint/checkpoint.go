// Package checkpoint is the crash-safe persistence layer of the
// inference runtime: a versioned, checksummed snapshot format that
// captures everything an MCMC chain needs to resume bit-exactly — the
// label field, the sweep position, every per-row RNG stream state, the
// diagnostics accumulators, and opaque backend sections (fault-session
// state, RET aging state) — plus atomic write/load primitives that
// guarantee a reader never observes a torn snapshot.
//
// Format (all integers little-endian):
//
//	[8]  magic "RSUGCKPT"
//	[4]  format version (uint32)
//	[8]  payload length (uint64)
//	[n]  payload
//	[8]  CRC-64/ECMA over everything above (uint64)
//
// The checksum covers the header too, so a truncated, bit-flipped or
// version-spliced file is rejected with ErrCorrupt before any field is
// interpreted. Snapshots are byte-deterministic: the same chain state
// always encodes to the same bytes, for any worker count, so snapshot
// files can themselves be golden-diffed.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"math"
	"sort"
)

// Format constants.
const (
	// Version is the current snapshot format version. Decoders accept
	// exactly this version; the versioning rule (DESIGN.md §10) is that
	// any change to the payload layout bumps it.
	//
	// v2: the label field is one byte per site (labels are bit-packed
	// uint8 throughout the runtime; M <= 256), halving snapshot size
	// versus the v1 uint16 encoding.
	Version = 2

	magic      = "RSUGCKPT"
	headerLen  = len(magic) + 4 + 8
	trailerLen = 8

	// maxPayload bounds decoder allocations against corrupt length
	// fields (1 GiB is orders of magnitude above any real chain).
	maxPayload = 1 << 30
)

// Typed decode errors.
var (
	// ErrCorrupt reports a snapshot that failed structural validation:
	// bad magic, truncation, checksum mismatch, or an inconsistent
	// payload. A chaos-killed run can leave at most a torn temp file,
	// never a torn snapshot, so ErrCorrupt on a real snapshot path
	// means external damage.
	ErrCorrupt = errors.New("checkpoint: corrupt snapshot")
	// ErrVersion reports a structurally valid snapshot written by an
	// incompatible format version.
	ErrVersion = errors.New("checkpoint: unsupported snapshot version")
	// ErrMismatch reports a snapshot whose fingerprint does not match
	// the run configuration attempting to resume from it.
	ErrMismatch = errors.New("checkpoint: snapshot does not match run configuration")
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// Fingerprint identifies the run a snapshot belongs to. Resuming
// checks it field-for-field — every field changes the chain's byte
// stream, so resuming across any difference would silently diverge
// from the uninterrupted golden run. Worker count is deliberately NOT
// part of the fingerprint: RNG streams attach to rows, so a snapshot
// taken at W=1 resumes bit-exactly at W=N and vice versa.
type Fingerprint struct {
	// App names the application instance ("segmentation", ...).
	App string
	// Backend names the sampling backend ("rsu", "software-gibbs", ...).
	Backend string
	// Seed is the chain seed.
	Seed uint64
	// Iterations and BurnIn are the chain's total sweep budget.
	Iterations int
	BurnIn     int
	// Compile records whether the precomputed-table path was enabled
	// (bit-identical either way, but recorded for provenance).
	Compile bool
	// AnnealStartT and AnnealRate record the cooling schedule (both 0
	// when annealing is off).
	AnnealStartT float64
	AnnealRate   float64
	// Tag carries backend-specific parameters that must also match
	// (RSU width/mode, fault schedule/policy/seed), in a canonical
	// rendering chosen by the layer that owns them.
	Tag string
}

// Check returns ErrMismatch (wrapped, with the first differing field
// named) unless other matches f exactly.
func (f Fingerprint) Check(other Fingerprint) error {
	diff := ""
	switch {
	case f.App != other.App:
		diff = fmt.Sprintf("app %q vs %q", f.App, other.App)
	case f.Backend != other.Backend:
		diff = fmt.Sprintf("backend %q vs %q", f.Backend, other.Backend)
	case f.Seed != other.Seed:
		diff = fmt.Sprintf("seed %d vs %d", f.Seed, other.Seed)
	case f.Iterations != other.Iterations:
		diff = fmt.Sprintf("iterations %d vs %d", f.Iterations, other.Iterations)
	case f.BurnIn != other.BurnIn:
		diff = fmt.Sprintf("burn-in %d vs %d", f.BurnIn, other.BurnIn)
	case f.Compile != other.Compile:
		diff = fmt.Sprintf("compile %v vs %v", f.Compile, other.Compile)
	case math.Float64bits(f.AnnealStartT) != math.Float64bits(other.AnnealStartT),
		math.Float64bits(f.AnnealRate) != math.Float64bits(other.AnnealRate):
		diff = "anneal schedule"
	case f.Tag != other.Tag:
		diff = fmt.Sprintf("tag %q vs %q", f.Tag, other.Tag)
	}
	if diff == "" {
		return nil
	}
	return fmt.Errorf("%w: %s", ErrMismatch, diff)
}

// Snapshot is one resumable chain state, captured strictly at a sweep
// boundary (no sample in flight anywhere).
type Snapshot struct {
	// Fingerprint identifies the run configuration (see Fingerprint).
	Fingerprint Fingerprint
	// Sweep is the index of the next sweep to run: the snapshot was
	// taken after sweep Sweep-1 completed.
	Sweep int
	// W, H, M are the model geometry and label-space size.
	W, H, M int
	// Labels is the row-major bit-packed label field (len W*H, each in
	// [0, M)), sharing img.LabelMap's byte-per-site representation so
	// capture and restore are straight copies.
	Labels []uint8
	// Chain is the sequential (raster-schedule) stream state.
	Chain [4]uint64
	// Rows holds one stream state per image row (len H for
	// checkerboard runs, nil for raster runs).
	Rows [][4]uint64
	// Counts is the per-site per-label sample counter behind the
	// marginal-MAP estimate (len W*H*M, nil when mode tracking is
	// off).
	Counts []uint32
	// Energy is the energy trace accumulated so far.
	Energy []float64
	// Sections carries opaque backend state blobs keyed by name
	// ("fault": the fault session, "aging": RET wear-out state, ...).
	// Encoded in sorted key order so snapshots stay byte-deterministic.
	Sections map[string][]byte
}

// Well-known section names.
const (
	// SectionFault holds the fault-injection session state
	// (fault.Session.MarshalBinary).
	SectionFault = "fault"
	// SectionAging holds RET wear-out state
	// (ret.AgingCircuit.MarshalBinary), one blob per aged circuit.
	SectionAging = "aging"
)

// Validate checks the snapshot's internal consistency (geometry,
// label range, stream counts). Encode and Decode both call it, so an
// inconsistent snapshot can be neither written nor loaded.
func (s *Snapshot) Validate() error {
	switch {
	case s.W <= 0 || s.H <= 0:
		return fmt.Errorf("%w: geometry %dx%d", ErrCorrupt, s.W, s.H)
	case s.M < 2 || s.M > 256:
		return fmt.Errorf("%w: label count %d", ErrCorrupt, s.M)
	case s.Sweep < 0:
		return fmt.Errorf("%w: negative sweep %d", ErrCorrupt, s.Sweep)
	case len(s.Labels) != s.W*s.H:
		return fmt.Errorf("%w: %d labels for %dx%d grid", ErrCorrupt, len(s.Labels), s.W, s.H)
	case s.Rows != nil && len(s.Rows) != s.H:
		return fmt.Errorf("%w: %d row streams for %d rows", ErrCorrupt, len(s.Rows), s.H)
	case s.Counts != nil && len(s.Counts) != s.W*s.H*s.M:
		return fmt.Errorf("%w: %d mode counters, want %d", ErrCorrupt, len(s.Counts), s.W*s.H*s.M)
	}
	for i, l := range s.Labels {
		if int(l) >= s.M {
			return fmt.Errorf("%w: label %d at site %d outside [0,%d)", ErrCorrupt, l, i, s.M)
		}
	}
	return nil
}

// Clone returns a deep copy (sections included).
func (s *Snapshot) Clone() *Snapshot {
	c := *s
	c.Labels = append([]uint8(nil), s.Labels...)
	if s.Rows != nil {
		c.Rows = append([][4]uint64(nil), s.Rows...)
	}
	if s.Counts != nil {
		c.Counts = append([]uint32(nil), s.Counts...)
	}
	if s.Energy != nil {
		c.Energy = append([]float64(nil), s.Energy...)
	}
	if s.Sections != nil {
		c.Sections = make(map[string][]byte, len(s.Sections))
		for k, v := range s.Sections {
			c.Sections[k] = append([]byte(nil), v...)
		}
	}
	return &c
}

// SetSection attaches (or replaces) a named opaque state blob.
func (s *Snapshot) SetSection(name string, blob []byte) {
	if s.Sections == nil {
		s.Sections = make(map[string][]byte)
	}
	s.Sections[name] = blob
}

// Section returns a named blob (nil, false when absent).
func (s *Snapshot) Section(name string) ([]byte, bool) {
	blob, ok := s.Sections[name]
	return blob, ok
}

// enc is a little-endian payload writer.
type enc struct{ buf []byte }

func (e *enc) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *enc) u16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }
func (e *enc) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *enc) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *enc) f64(v float64) {
	e.u64(math.Float64bits(v))
}
func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}
func (e *enc) bytes(b []byte) {
	e.u64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}
func (e *enc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

// dec is the matching bounds-checked reader; the first overrun poisons
// it and every subsequent read reports failure.
type dec struct {
	buf []byte
	off int
	bad bool
}

func (d *dec) take(n int) []byte {
	if d.bad || n < 0 || d.off+n > len(d.buf) {
		d.bad = true
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}
func (d *dec) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}
func (d *dec) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}
func (d *dec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}
func (d *dec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }
func (d *dec) str() string  { return string(d.take(int(d.u32()))) }
func (d *dec) blob() []byte {
	n := d.u64()
	if n > maxPayload {
		d.bad = true
		return nil
	}
	return append([]byte(nil), d.take(int(n))...)
}
func (d *dec) bool() bool { return d.u8() != 0 }

// Encode serializes the snapshot to its canonical byte form (header,
// payload, checksum).
func Encode(s *Snapshot) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var e enc
	// Fingerprint.
	e.str(s.Fingerprint.App)
	e.str(s.Fingerprint.Backend)
	e.u64(s.Fingerprint.Seed)
	e.u64(uint64(s.Fingerprint.Iterations))
	e.u64(uint64(s.Fingerprint.BurnIn))
	e.bool(s.Fingerprint.Compile)
	e.f64(s.Fingerprint.AnnealStartT)
	e.f64(s.Fingerprint.AnnealRate)
	e.str(s.Fingerprint.Tag)
	// Geometry and position.
	e.u64(uint64(s.Sweep))
	e.u64(uint64(s.W))
	e.u64(uint64(s.H))
	e.u64(uint64(s.M))
	// Label field: bit-packed, one byte per site (M <= 256).
	e.buf = append(e.buf, s.Labels...)
	// RNG streams.
	for _, w := range s.Chain {
		e.u64(w)
	}
	e.u64(uint64(len(s.Rows)))
	for _, row := range s.Rows {
		for _, w := range row {
			e.u64(w)
		}
	}
	// Diagnostics accumulators.
	e.u64(uint64(len(s.Counts)))
	for _, c := range s.Counts {
		e.u32(c)
	}
	e.u64(uint64(len(s.Energy)))
	for _, v := range s.Energy {
		e.f64(v)
	}
	// Sections, sorted by name for byte determinism.
	names := make([]string, 0, len(s.Sections))
	for name := range s.Sections {
		names = append(names, name)
	}
	sort.Strings(names)
	e.u64(uint64(len(names)))
	for _, name := range names {
		e.str(name)
		e.bytes(s.Sections[name])
	}

	payload := e.buf
	out := make([]byte, 0, headerLen+len(payload)+trailerLen)
	out = append(out, magic...)
	out = binary.LittleEndian.AppendUint32(out, Version)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = append(out, payload...)
	out = binary.LittleEndian.AppendUint64(out, crc64.Checksum(out, crcTable))
	return out, nil
}

// Decode parses and fully validates a snapshot produced by Encode.
// Truncated, bit-flipped or trailing-garbage input fails with
// ErrCorrupt; a valid envelope of another format version fails with
// ErrVersion.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < headerLen+trailerLen {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the envelope", ErrCorrupt, len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	version := binary.LittleEndian.Uint32(data[len(magic):])
	payloadLen := binary.LittleEndian.Uint64(data[len(magic)+4:])
	if payloadLen > maxPayload || int(payloadLen) != len(data)-headerLen-trailerLen {
		return nil, fmt.Errorf("%w: payload length %d inconsistent with file size %d", ErrCorrupt, payloadLen, len(data))
	}
	body := data[:len(data)-trailerLen]
	want := binary.LittleEndian.Uint64(data[len(data)-trailerLen:])
	if got := crc64.Checksum(body, crcTable); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (got %016x, want %016x)", ErrCorrupt, got, want)
	}
	// Only after integrity is proven: interpret the version and fields.
	if version != Version {
		return nil, fmt.Errorf("%w: version %d, this build reads %d", ErrVersion, version, Version)
	}

	d := &dec{buf: data[headerLen : len(data)-trailerLen]}
	s := &Snapshot{}
	s.Fingerprint.App = d.str()
	s.Fingerprint.Backend = d.str()
	s.Fingerprint.Seed = d.u64()
	s.Fingerprint.Iterations = int(d.u64())
	s.Fingerprint.BurnIn = int(d.u64())
	s.Fingerprint.Compile = d.bool()
	s.Fingerprint.AnnealStartT = d.f64()
	s.Fingerprint.AnnealRate = d.f64()
	s.Fingerprint.Tag = d.str()
	s.Sweep = int(d.u64())
	s.W = int(d.u64())
	s.H = int(d.u64())
	s.M = int(d.u64())
	if d.bad || s.W <= 0 || s.H <= 0 || s.W*s.H > maxPayload/2 {
		return nil, fmt.Errorf("%w: implausible geometry", ErrCorrupt)
	}
	s.Labels = append([]uint8(nil), d.take(s.W*s.H)...)
	for i := range s.Chain {
		s.Chain[i] = d.u64()
	}
	nRows := d.u64()
	if nRows > uint64(s.H) {
		return nil, fmt.Errorf("%w: %d row streams for %d rows", ErrCorrupt, nRows, s.H)
	}
	if nRows > 0 {
		s.Rows = make([][4]uint64, nRows)
		for i := range s.Rows {
			for j := range s.Rows[i] {
				s.Rows[i][j] = d.u64()
			}
		}
	}
	nCounts := d.u64()
	if nCounts > maxPayload/4 {
		return nil, fmt.Errorf("%w: implausible counter block", ErrCorrupt)
	}
	if nCounts > 0 {
		s.Counts = make([]uint32, nCounts)
		for i := range s.Counts {
			s.Counts[i] = d.u32()
		}
	}
	nEnergy := d.u64()
	if nEnergy > maxPayload/8 {
		return nil, fmt.Errorf("%w: implausible energy trace", ErrCorrupt)
	}
	if nEnergy > 0 {
		s.Energy = make([]float64, nEnergy)
		for i := range s.Energy {
			s.Energy[i] = d.f64()
		}
	}
	nSections := d.u64()
	if nSections > 1024 {
		return nil, fmt.Errorf("%w: implausible section count %d", ErrCorrupt, nSections)
	}
	for i := uint64(0); i < nSections; i++ {
		name := d.str()
		blob := d.blob()
		if d.bad {
			break
		}
		s.SetSection(name, blob)
	}
	if d.bad {
		return nil, fmt.Errorf("%w: payload truncated mid-field", ErrCorrupt)
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(d.buf)-d.off)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
