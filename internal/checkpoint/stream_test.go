package checkpoint

import (
	"bytes"
	"errors"
	"hash/crc64"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestEncodeToDecodeFromRoundTrip(t *testing.T) {
	s := testSnapshot()
	var buf bytes.Buffer
	n, err := EncodeTo(&buf, s)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("EncodeTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := DecodeFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	round, err := Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, round) {
		t.Fatal("DecodeFrom(EncodeTo(s)) not byte-identical to s")
	}
}

func TestDecodeFromRejectsTruncation(t *testing.T) {
	data, err := Encode(testSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, headerLen - 1, headerLen + 3, len(data) - 1} {
		_, err := DecodeFrom(bytes.NewReader(data[:cut]))
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("cut at %d: err %v, want ErrCorrupt", cut, err)
		}
	}
}

func TestOpenStreamValidatesAndChunks(t *testing.T) {
	data, err := Encode(testSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "s.ckpt")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	sr, err := OpenStream(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	if sr.Size() != int64(len(data)) {
		t.Fatalf("Size %d, want %d", sr.Size(), len(data))
	}
	// The trailer CRC doubles as the replication generation ID.
	wantCRC := crc64.Checksum(data[:len(data)-trailerLen], crc64.MakeTable(crc64.ECMA))
	if sr.CRC() != wantCRC {
		t.Fatalf("CRC %x, want %x", sr.CRC(), wantCRC)
	}
	// Reassemble through uneven chunk reads.
	var assembled []byte
	buf := make([]byte, 7)
	for off := int64(0); ; {
		n, err := sr.ReadChunk(off, buf)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		assembled = append(assembled, buf[:n]...)
		off += int64(n)
	}
	if !bytes.Equal(assembled, data) {
		t.Fatal("chunked reassembly differs from the file")
	}
}

func TestOpenStreamRejectsDamage(t *testing.T) {
	data, err := Encode(testSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cases := map[string][]byte{
		"short.ckpt": data[:headerLen-2],
		"magic.ckpt": append([]byte("WRONGMAG"), data[8:]...),
		"len.ckpt":   data[:len(data)-3], // payloadLen no longer matches size
	}
	for name, body := range cases {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, body, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenStream(p); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err %v, want ErrCorrupt", name, err)
		}
	}
	if _, err := OpenStream(filepath.Join(dir, "absent.ckpt")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing file: err %v, want os.ErrNotExist", err)
	}
}
