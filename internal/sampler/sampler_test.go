package sampler_test

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/img"
	"repro/internal/rng"
	"repro/internal/sampler"
)

// TestRegistryOrder pins the registration order: the first five indices
// are the historical core.Backend enum values, and the approximate
// backends append after. Reordering would silently repoint every
// integer-configured caller at a different engine.
func TestRegistryOrder(t *testing.T) {
	want := []string{
		"software-gibbs", "software-first-to-fire", "metropolis",
		"rsu", "prototype", "spiking", "meanfield",
	}
	got := sampler.Names()
	if len(got) != len(want) {
		t.Fatalf("registry has %d backends, want %d: %v", len(got), len(want), got)
	}
	for i, name := range want {
		if got[i] != name {
			t.Fatalf("index %d: %q, want %q", i, got[i], name)
		}
	}
}

// TestIndexLookupAgree: every name resolves to the backend at its
// index.
func TestIndexLookupAgree(t *testing.T) {
	for i, name := range sampler.Names() {
		byName, ok := sampler.Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) missing", name)
		}
		byIdx, ok := sampler.At(i)
		if !ok {
			t.Fatalf("At(%d) missing", i)
		}
		if byName != byIdx {
			t.Fatalf("%q: Lookup and At disagree", name)
		}
		if idx, _ := sampler.Index(name); idx != i {
			t.Fatalf("Index(%q) = %d, want %d", name, idx, i)
		}
	}
	if _, ok := sampler.Lookup("no-such-backend"); ok {
		t.Fatal("unknown name resolved")
	}
	if _, ok := sampler.At(len(sampler.Names())); ok {
		t.Fatal("out-of-range index resolved")
	}
}

// TestEnumAlias: the core compatibility constants resolve — by index —
// to the registry entries carrying their historical names.
func TestEnumAlias(t *testing.T) {
	aliases := map[core.Backend]string{
		core.SoftwareGibbs:       "software-gibbs",
		core.SoftwareFirstToFire: "software-first-to-fire",
		core.Metropolis:          "metropolis",
		core.RSU:                 "rsu",
		core.Prototype:           "prototype",
	}
	for b, name := range aliases {
		if b.String() != name {
			t.Fatalf("%d.String() = %q, want %q", int(b), b.String(), name)
		}
		parsed, err := core.ParseBackend(name)
		if err != nil {
			t.Fatal(err)
		}
		if parsed != b {
			t.Fatalf("ParseBackend(%q) = %d, want %d", name, parsed, b)
		}
	}
}

// TestCapabilities pins the declared capability surface the rest of the
// stack validates against.
func TestCapabilities(t *testing.T) {
	caps := func(name string) sampler.Capabilities {
		be, ok := sampler.Lookup(name)
		if !ok {
			t.Fatalf("backend %q missing", name)
		}
		return be.Caps()
	}
	for _, exact := range []string{"software-gibbs", "software-first-to-fire", "metropolis"} {
		c := caps(exact)
		if !c.Exact || !c.Checkpoint || c.Faults || c.Deterministic {
			t.Fatalf("%s caps %+v", exact, c)
		}
	}
	if c := caps("rsu"); c.Exact || !c.Faults || !c.Checkpoint {
		t.Fatalf("rsu caps %+v", c)
	}
	if c := caps("prototype"); c.MinLabels != 2 || c.MaxLabels != 2 || c.Faults {
		t.Fatalf("prototype caps %+v", c)
	}
	if c := caps("spiking"); c.Exact || c.Deterministic || !c.Checkpoint || c.Faults {
		t.Fatalf("spiking caps %+v", c)
	}
	if c := caps("meanfield"); !c.Deterministic || c.Checkpoint || c.MaxLabels != 2 {
		t.Fatalf("meanfield caps %+v", c)
	}
}

// TestBareModelBuilds: the software kernels and the approximate
// backends build from a bare model (the kernel bench has no App); the
// hardware emulations require the application and must say so.
func TestBareModelBuilds(t *testing.T) {
	scene := img.BlobScene(16, 16, 2, 6, rng.New(3))
	app, err := apps.NewSegmentation(scene.Image, scene.Means, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	spec := sampler.BuildSpec{Model: app.Model(), Init: app.InitLabels()}
	for _, name := range []string{"software-gibbs", "software-first-to-fire", "metropolis", "prototype", "spiking", "meanfield"} {
		be, _ := sampler.Lookup(name)
		inst, err := be.New(spec)
		if err != nil {
			t.Fatalf("%s: bare-model build: %v", name, err)
		}
		if inst.Factory() == nil {
			t.Fatalf("%s: nil factory", name)
		}
	}
	rsuBE, _ := sampler.Lookup("rsu")
	if _, err := rsuBE.New(spec); err == nil {
		t.Fatal("rsu accepted a bare-model spec")
	}
	if _, err := rsuBE.New(sampler.BuildSpec{App: app}); err != nil {
		t.Fatalf("rsu app build: %v", err)
	}
}

// TestRegisterPanics: duplicate and anonymous registrations are
// programming errors.
func TestRegisterPanics(t *testing.T) {
	expectPanic := func(what string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", what)
			}
		}()
		f()
	}
	be, _ := sampler.Lookup("software-gibbs")
	expectPanic("duplicate name", func() { sampler.Register(be) })
}
