package sampler

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/fault"
	"repro/internal/fixed"
	"repro/internal/gibbs"
	"repro/internal/prototype"
	"repro/internal/rsu"
	"repro/internal/sampler/meanfield"
	"repro/internal/sampler/spiking"
)

// The built-in backends register here in one init function so the
// registry order is fixed: the first five indices are exactly the
// historical core.Backend enum values (SoftwareGibbs=0 …, Prototype=4),
// which is what keeps the integer compatibility aliases resolving to
// the same engines they always did. New backends append after.
func init() {
	Register(&funcBackend{
		name: "software-gibbs",
		caps: Capabilities{MaxLabels: fixed.MaxLabels, Exact: true, Checkpoint: true},
		build: func(BuildSpec) (Instance, error) {
			return simpleInstance{factory: gibbs.NewExactGibbs()}, nil
		},
	})
	Register(&funcBackend{
		name: "software-first-to-fire",
		caps: Capabilities{MaxLabels: fixed.MaxLabels, Exact: true, Checkpoint: true},
		build: func(BuildSpec) (Instance, error) {
			return simpleInstance{factory: gibbs.NewFirstToFire()}, nil
		},
	})
	Register(&funcBackend{
		name: "metropolis",
		caps: Capabilities{MaxLabels: fixed.MaxLabels, Exact: true, Checkpoint: true},
		build: func(BuildSpec) (Instance, error) {
			return simpleInstance{factory: gibbs.NewMetropolis()}, nil
		},
	})
	Register(&funcBackend{
		name: "rsu",
		caps: Capabilities{MaxLabels: fixed.MaxLabels, Checkpoint: true, Faults: true},
		build: func(sp BuildSpec) (Instance, error) {
			if sp.App == nil {
				return nil, fmt.Errorf("sampler: the rsu backend emulates a hardware unit and needs an application, not a bare model")
			}
			width := sp.RSUWidth
			if width == 0 {
				width = 1
			}
			unit, err := apps.BuildUnit(sp.App, sp.Circuit, width, sp.RSUMode)
			if err != nil {
				return nil, err
			}
			c := unit.Config()
			return &rsuInstance{
				app:  sp.App,
				unit: unit,
				tag:  fmt.Sprintf("rsu:w=%d,mode=%v,replicas=%d", c.Width, c.Mode, c.Replicas),
			}, nil
		},
	})
	Register(&funcBackend{
		name: "prototype",
		caps: Capabilities{MinLabels: 2, MaxLabels: 2, Checkpoint: true},
		build: func(sp BuildSpec) (Instance, error) {
			if sp.App == nil && sp.Model == nil {
				return nil, fmt.Errorf("sampler: the prototype backend needs an application or model")
			}
			return simpleInstance{factory: prototype.NewSampler(prototype.New())}, nil
		},
	})
	Register(&funcBackend{
		name: "spiking",
		caps: Capabilities{MaxLabels: fixed.MaxLabels, Checkpoint: true},
		build: func(sp BuildSpec) (Instance, error) {
			spec := spiking.Spec{}
			if sp.Spiking != nil {
				spec = *sp.Spiking
			}
			spec = spec.WithDefaults()
			if err := spec.Validate(); err != nil {
				return nil, err
			}
			return simpleInstance{factory: spiking.New(spec), tag: spec.Tag()}, nil
		},
	})
	Register(&funcBackend{
		name: "meanfield",
		// Binary MRFs only (the Zheng formulation), deterministic, and
		// not checkpointable: the belief field lives outside the
		// label-map/RNG state a snapshot captures.
		caps: Capabilities{MinLabels: 2, MaxLabels: 2, Deterministic: true},
		build: func(sp BuildSpec) (Instance, error) {
			spec := meanfield.Spec{}
			if sp.MeanField != nil {
				spec = *sp.MeanField
			}
			spec = spec.WithDefaults()
			if err := spec.Validate(); err != nil {
				return nil, err
			}
			m, err := sp.model()
			if err != nil {
				return nil, err
			}
			init, err := sp.initLabels()
			if err != nil {
				return nil, err
			}
			st, err := meanfield.NewState(m, init, spec)
			if err != nil {
				return nil, err
			}
			return simpleInstance{factory: st.Factory(), tag: spec.Tag()}, nil
		},
	})
}

// funcBackend is the closure-based Backend the built-ins use.
type funcBackend struct {
	name  string
	caps  Capabilities
	build func(BuildSpec) (Instance, error)
}

func (b *funcBackend) Name() string                       { return b.name }
func (b *funcBackend) Caps() Capabilities                 { return b.caps }
func (b *funcBackend) New(sp BuildSpec) (Instance, error) { return b.build(sp) }

// simpleInstance covers backends with no unit and a knob-only tag.
type simpleInstance struct {
	factory gibbs.Factory
	tag     string
}

func (s simpleInstance) Factory() gibbs.Factory { return s.factory }
func (s simpleInstance) Unit() *rsu.Unit        { return nil }
func (s simpleInstance) Tag() string            { return s.tag }

// rsuInstance carries the emulated unit and arms fault sessions.
type rsuInstance struct {
	app  apps.App
	unit *rsu.Unit
	tag  string
}

func (r *rsuInstance) Factory() gibbs.Factory { return apps.NewRSUSampler(r.app, r.unit) }
func (r *rsuInstance) Unit() *rsu.Unit        { return r.unit }
func (r *rsuInstance) Tag() string            { return r.tag }
func (r *rsuInstance) FaultFactory(sess *fault.Session) gibbs.Factory {
	return apps.NewFaultRSUSampler(r.app, r.unit, sess)
}
