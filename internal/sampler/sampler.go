// Package sampler is the open backend registry behind core's dispatch:
// every sampling engine — the paper's exact kernels, the emulated RSU-G,
// and the approximate backends from the related literature — registers a
// named Backend descriptor here, and core resolves names/indices through
// the registry instead of switching on an enum. The registry is the
// extension seam the distributed-sharding and UQ roadmap items program
// against: adding a backend means registering one descriptor, not
// editing core.
//
// A Backend carries a capability descriptor (label-count limits,
// determinism class, checkpoint and fault support) that core validates
// configurations against, and builds per-solver Instances that hand the
// sweep engine its gibbs.Factory.
package sampler

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/apps"
	"repro/internal/fault"
	"repro/internal/gibbs"
	"repro/internal/img"
	"repro/internal/mrf"
	"repro/internal/ret"
	"repro/internal/rsu"
	"repro/internal/sampler/meanfield"
	"repro/internal/sampler/spiking"
)

// Capabilities declares what a backend supports; core enforces them at
// configuration time, replacing the per-backend special cases the enum
// dispatch hard-coded.
type Capabilities struct {
	// MinLabels/MaxLabels bound the model label count the backend
	// accepts (0 means unbounded on that side). The RSU-G2 prototype's
	// two-label bench is MinLabels=MaxLabels=2.
	MinLabels, MaxLabels int
	// Exact reports whether the backend samples the true full
	// conditional (as opposed to an approximation with knobs).
	Exact bool
	// Deterministic reports that the backend never draws from the RNG:
	// the chain is a deterministic function of the seed schedule alone.
	Deterministic bool
	// Checkpoint reports that snapshots taken mid-run resume bit-exactly
	// (the backend keeps no per-run state outside the label map and RNG
	// streams, or can rebuild it from the iteration index).
	Checkpoint bool
	// Faults reports that the fault-injection subsystem can arm on this
	// backend (it models RSU hardware).
	Faults bool
}

// BuildSpec carries everything a backend may need to construct an
// Instance. Core fills App and the knob fields from its Config; the
// kernel bench, which has a bare model and no application, fills Model
// and Init instead (backends that emulate hardware need the real App
// and reject a bare-model spec).
type BuildSpec struct {
	// App is the application being solved (nil for bare-model builds).
	App apps.App
	// Model and Init override App.Model()/App.InitLabels() when App is
	// nil.
	Model *mrf.Model
	// Init is the initial labeling matching Model.
	Init *img.LabelMap
	// RSUWidth is the unit width K for the rsu backend (0: 1).
	RSUWidth int
	// RSUMode selects ideal or photon-level RET simulation (rsu).
	RSUMode rsu.SamplingMode
	// Circuit optionally overrides the RET circuit design (rsu).
	Circuit *ret.Circuit
	// Spiking tunes the spiking backend (nil: defaults).
	Spiking *spiking.Spec
	// MeanField tunes the meanfield backend (nil: defaults).
	MeanField *meanfield.Spec
}

// model resolves the MRF the spec targets.
func (sp BuildSpec) model() (*mrf.Model, error) {
	if sp.Model != nil {
		return sp.Model, nil
	}
	if sp.App != nil {
		return sp.App.Model(), nil
	}
	return nil, fmt.Errorf("sampler: build spec has neither an application nor a model")
}

// initLabels resolves the initial labeling the spec targets.
func (sp BuildSpec) initLabels() (*img.LabelMap, error) {
	if sp.Init != nil {
		return sp.Init, nil
	}
	if sp.App != nil {
		return sp.App.InitLabels(), nil
	}
	return nil, fmt.Errorf("sampler: build spec has neither an application nor an initial labeling")
}

// Instance is one solver's constructed backend: the factory handed to
// the sweep engine, plus the pieces core reports or fingerprints.
type Instance interface {
	// Factory creates the per-worker samplers.
	Factory() gibbs.Factory
	// Unit returns the emulated RSU unit, or nil for backends that have
	// none.
	Unit() *rsu.Unit
	// Tag is the backend-specific suffix of the checkpoint fingerprint:
	// every knob that changes the chain must appear in it.
	Tag() string
}

// FaultAware is implemented by instances whose Capabilities declare
// fault support: FaultFactory wraps the samplers in the fault-injection
// session.
type FaultAware interface {
	FaultFactory(sess *fault.Session) gibbs.Factory
}

// Backend describes one registered sampling engine.
type Backend interface {
	// Name is the registry key (lowercase, stable across releases).
	Name() string
	// Caps declares what configurations the backend accepts.
	Caps() Capabilities
	// New constructs the backend for one solver.
	New(spec BuildSpec) (Instance, error)
}

var (
	mu      sync.RWMutex
	ordered []Backend
	byName  = map[string]int{}
)

// Register adds a backend to the registry and returns its index. Names
// must be unique; registering a duplicate is a programming error and
// panics (registration happens in package init functions).
func Register(b Backend) int {
	mu.Lock()
	defer mu.Unlock()
	name := b.Name()
	if name == "" {
		panic("sampler: Register with empty backend name")
	}
	if _, dup := byName[name]; dup {
		panic(fmt.Sprintf("sampler: backend %q registered twice", name))
	}
	ordered = append(ordered, b)
	byName[name] = len(ordered) - 1
	return len(ordered) - 1
}

// Lookup returns the backend registered under name.
func Lookup(name string) (Backend, bool) {
	mu.RLock()
	defer mu.RUnlock()
	i, ok := byName[name]
	if !ok {
		return nil, false
	}
	return ordered[i], true
}

// At returns the backend at a registry index. The first five indices
// are the historical core.Backend enum values, in order.
func At(i int) (Backend, bool) {
	mu.RLock()
	defer mu.RUnlock()
	if i < 0 || i >= len(ordered) {
		return nil, false
	}
	return ordered[i], true
}

// Index returns the registry index of a name.
func Index(name string) (int, bool) {
	mu.RLock()
	defer mu.RUnlock()
	i, ok := byName[name]
	return i, ok
}

// Names returns the registered backend names in registration order —
// the single source of CLI allowed-values help text.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, len(ordered))
	for i, b := range ordered {
		out[i] = b.Name()
	}
	return out
}

// SortedNames returns the registered backend names sorted
// alphabetically (for stable error messages independent of
// registration order).
func SortedNames() []string {
	names := Names()
	sort.Strings(names)
	return names
}
