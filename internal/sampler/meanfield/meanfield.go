// Package meanfield implements a damped mean-field (naive variational)
// approximation for binary MRFs (Zheng et al., PAPERS.md) as a fast
// deterministic counterpoint to the sampling backends.
//
// Instead of drawing labels, each site carries a belief vector q_i over
// the labels. One sweep performs a Jacobi update of every belief from
// the previous sweep's beliefs:
//
//	q̂_i(l) ∝ exp(-(λS·S_i(l) + Σ_n Σ_l' q_n(l')·λ·d(l,l')) / T)
//	q_i ← (1-α)·q_i + α·q̂_i
//
// where α is the damping factor (α=1 is undamped Jacobi, which can
// oscillate on strong-coupling models). The label reported for a site is
// the argmax of its belief, ties to the lowest label. Updates read only
// the previous sweep's buffer, so the result is independent of site
// visit order and of the worker count, and no RNG is ever drawn: the
// chain is a deterministic fixed-point iteration. When the largest
// belief change in a sweep falls below Tol the state freezes — further
// sweeps are free — and the convergence sweep is recorded.
package meanfield

import (
	"fmt"
	"math"

	"repro/internal/gibbs"
	"repro/internal/img"
	"repro/internal/mrf"
	"repro/internal/rng"
)

// Spec are the mean-field knobs.
type Spec struct {
	// Damping is the update step α in (0,1]; 0 selects DefaultDamping.
	Damping float64
	// Tol freezes the iteration once the largest single belief change of
	// a sweep drops below it; 0 selects DefaultTol. Negative disables
	// freezing (every sweep updates).
	Tol float64
}

// Default knob values: half-step damping (stable on the repo's
// strong-smoothness models) and a tight fixed-point tolerance.
const (
	DefaultDamping = 0.5
	DefaultTol     = 1e-6
)

// WithDefaults returns the spec with zero fields replaced by defaults.
func (sp Spec) WithDefaults() Spec {
	if sp.Damping == 0 {
		sp.Damping = DefaultDamping
	}
	if sp.Tol == 0 {
		sp.Tol = DefaultTol
	}
	return sp
}

// Validate rejects out-of-range knobs. It applies defaults first, so a
// zero Spec is valid.
func (sp Spec) Validate() error {
	sp = sp.WithDefaults()
	if sp.Damping <= 0 || sp.Damping > 1 || math.IsNaN(sp.Damping) {
		return fmt.Errorf("meanfield: damping %v outside (0,1]", sp.Damping)
	}
	if math.IsNaN(sp.Tol) || math.IsInf(sp.Tol, 0) {
		return fmt.Errorf("meanfield: tolerance %v must be finite", sp.Tol)
	}
	return nil
}

// Tag is the checkpoint-fingerprint identity of the spec.
func (sp Spec) Tag() string {
	sp = sp.WithDefaults()
	return fmt.Sprintf("meanfield:damping=%g,tol=%g", sp.Damping, sp.Tol)
}

// State is the belief field shared by every worker's sampler for one
// solver. SampleSite writes are per-site disjoint and reads touch only
// the previous sweep's buffer, so concurrent workers need no locking;
// the sweep-boundary bookkeeping runs in BeginSweep, which the engine
// calls with no site update in flight.
type State struct {
	spec      Spec
	w, h, m   int
	init      []uint8 // initial labeling, for reset at sweep 0
	cur, next []float64
	lastSweep int
	frozen    bool
	converged int // sweep at which the fixed point was reached, -1 before
}

// NewState builds the belief field for a model: beliefs start as the
// one-hot encoding of the initial labeling.
func NewState(m *mrf.Model, init *img.LabelMap, spec Spec) (*State, error) {
	spec = spec.WithDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	st := &State{
		spec: spec,
		w:    m.W, h: m.H, m: m.M,
		init:      make([]uint8, m.W*m.H),
		cur:       make([]float64, m.W*m.H*m.M),
		next:      make([]float64, m.W*m.H*m.M),
		lastSweep: -1,
		converged: -1,
	}
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			st.init[y*m.W+x] = uint8(init.At(x, y))
		}
	}
	st.reset()
	return st, nil
}

// reset re-one-hots the beliefs from the initial labeling; called at
// construction and whenever a new run begins (BeginSweep(0)).
func (st *State) reset() {
	for i := range st.cur {
		st.cur[i] = 0
	}
	for i, l := range st.init {
		st.cur[i*st.m+int(l)] = 1
	}
	st.frozen = false
	st.converged = -1
}

// Converged returns the sweep at which the beliefs reached the spec's
// fixed-point tolerance, or -1 if they have not (yet).
func (st *State) Converged() int { return st.converged }

// Frozen reports whether the iteration has reached its fixed point.
func (st *State) Frozen() bool { return st.frozen }

// Belief returns a copy of the current belief vector of site (x, y) —
// the backend's approximate posterior marginal.
func (st *State) Belief(x, y int) []float64 {
	out := make([]float64, st.m)
	copy(out, st.cur[(y*st.w+x)*st.m:])
	return out
}

// Factory returns a gibbs.Factory whose samplers all share this state.
func (st *State) Factory() gibbs.Factory {
	return func() gibbs.Sampler { return &sampler{st: st} }
}

type sampler struct {
	st  *State
	buf []float64
}

// Name implements gibbs.Sampler.
func (s *sampler) Name() string { return "meanfield" }

// BeginSweep implements gibbs.SweepAware. Every worker's sampler shares
// one State, so the first call of an iteration does the bookkeeping and
// the rest deduplicate on the iteration index. Iteration 0 resets the
// beliefs (a solver may run more than once); any later iteration first
// finalizes the sweep that just completed: measure the largest belief
// change, publish `next` as the new `cur`, and freeze at the fixed
// point.
func (s *sampler) BeginSweep(iteration int) {
	st := s.st
	if iteration == st.lastSweep {
		return
	}
	if iteration == 0 {
		st.reset()
		st.lastSweep = 0
		return
	}
	st.lastSweep = iteration
	if st.frozen {
		return
	}
	maxDelta := 0.0
	for i, q := range st.next {
		d := math.Abs(q - st.cur[i])
		if d > maxDelta {
			maxDelta = d
		}
	}
	st.cur, st.next = st.next, st.cur
	if st.spec.Tol > 0 && maxDelta < st.spec.Tol {
		st.frozen = true
		st.converged = iteration
	}
}

// SampleSite implements gibbs.Sampler. It never draws from src: the
// update is the deterministic damped Jacobi step, and the returned
// label is the belief argmax (ties to the lowest label).
func (s *sampler) SampleSite(m *mrf.Model, lm *img.LabelMap, x, y int, src *rng.Source) int {
	st := s.st
	idx := (y*st.w + x) * st.m
	if st.frozen {
		return argmax(st.cur[idx : idx+st.m])
	}
	if cap(s.buf) < st.m {
		s.buf = make([]float64, st.m)
	}
	e := s.buf[:st.m]
	for l := 0; l < st.m; l++ {
		e[l] = m.LambdaS * m.Singleton(x, y, l)
	}
	s.addNeighborEnergies(m, e, x, y, mrf.NeighborOffsets[:], m.LambdaD)
	if m.Hood == mrf.SecondOrder {
		s.addNeighborEnergies(m, e, x, y, m.Hood.Offsets()[4:], m.LambdaDiag)
	}
	// Boltzmann responsibilities of the expected energies, with the
	// usual min-subtraction for stability.
	minE := e[0]
	for _, v := range e[1:] {
		if v < minE {
			minE = v
		}
	}
	sum := 0.0
	for l, v := range e {
		p := math.Exp(-(v - minE) / m.T)
		e[l] = p
		sum += p
	}
	alpha := st.spec.Damping
	out := st.next[idx : idx+st.m]
	for l, p := range e {
		out[l] = (1-alpha)*st.cur[idx+l] + alpha*p/sum
	}
	return argmax(out)
}

// addNeighborEnergies accumulates the expected doubleton energy
// Σ_l' q_n(l')·w·d(l,l') of every in-grid neighbor at the given offsets
// into e, reading beliefs from the previous sweep's buffer.
func (s *sampler) addNeighborEnergies(m *mrf.Model, e []float64, x, y int, offsets [][2]int, weight float64) {
	st := s.st
	for _, off := range offsets {
		nx, ny := x+off[0], y+off[1]
		if nx < 0 || nx >= st.w || ny < 0 || ny >= st.h {
			continue
		}
		q := st.cur[(ny*st.w+nx)*st.m:]
		for l := 0; l < st.m; l++ {
			acc := 0.0
			for lp := 0; lp < st.m; lp++ {
				acc += q[lp] * m.Doubleton(l, lp)
			}
			e[l] += weight * acc
		}
	}
}

func argmax(q []float64) int {
	best, bestQ := 0, q[0]
	for l, v := range q[1:] {
		if v > bestQ {
			best, bestQ = l+1, v
		}
	}
	return best
}
