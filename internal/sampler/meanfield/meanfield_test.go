package meanfield_test

import (
	"bytes"
	"context"
	"math"
	"testing"

	"repro/internal/apps"
	"repro/internal/gibbs"
	"repro/internal/img"
	"repro/internal/rng"
	"repro/internal/sampler/meanfield"
)

func TestSpecValidate(t *testing.T) {
	if err := (meanfield.Spec{}).Validate(); err != nil {
		t.Fatalf("zero spec: %v", err)
	}
	for _, bad := range []meanfield.Spec{
		{Damping: -0.1}, {Damping: 1.5}, {Damping: math.NaN()}, {Tol: math.Inf(1)},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("spec %+v accepted", bad)
		}
	}
	// Negative tolerance is the documented "never freeze" setting.
	if err := (meanfield.Spec{Tol: -1}).Validate(); err != nil {
		t.Fatalf("negative tol rejected: %v", err)
	}
}

func testApp(t *testing.T, seed uint64) apps.App {
	t.Helper()
	scene := img.BlobScene(24, 24, 2, 6, rng.New(seed))
	app, err := apps.NewSegmentation(scene.Image, scene.Means, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func run(t *testing.T, app apps.App, st *meanfield.State, workers int, seed uint64, iters int) *gibbs.Result {
	t.Helper()
	opt := gibbs.Options{
		Iterations: iters, BurnIn: iters / 4,
		Schedule: gibbs.Checkerboard, Workers: workers, TrackMode: true,
	}
	res, err := gibbs.Run(context.Background(), app.Model(), app.InitLabels(), st.Factory(), opt, seed)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func newState(t *testing.T, app apps.App, spec meanfield.Spec) *meanfield.State {
	t.Helper()
	st, err := meanfield.NewState(app.Model(), app.InitLabels(), spec)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestDeterministicAcrossSeeds: mean-field never draws from the RNG, so
// the labels are a function of the model and knobs alone — different
// chain seeds must produce byte-identical output.
func TestDeterministicAcrossSeeds(t *testing.T) {
	app := testApp(t, 3)
	a := run(t, app, newState(t, app, meanfield.Spec{}), 1, 1, 40)
	b := run(t, app, newState(t, app, meanfield.Spec{}), 1, 999, 40)
	if !bytes.Equal(a.Final.Labels, b.Final.Labels) {
		t.Fatal("labels depend on the chain seed")
	}
	if !bytes.Equal(a.MAP.Labels, b.MAP.Labels) {
		t.Fatal("MAP depends on the chain seed")
	}
}

// TestWorkerInvariance: the Jacobi update reads only the previous
// sweep's buffer, so site visit order — and therefore worker count —
// cannot matter.
func TestWorkerInvariance(t *testing.T) {
	app := testApp(t, 4)
	a := run(t, app, newState(t, app, meanfield.Spec{}), 1, 7, 40)
	b := run(t, app, newState(t, app, meanfield.Spec{}), 8, 7, 40)
	if !bytes.Equal(a.Final.Labels, b.Final.Labels) {
		t.Fatal("meanfield W=1 vs W=8 labels differ")
	}
}

// TestFixedPoint: on an easy scene the damped iteration reaches the
// tolerance, freezes, and reports the convergence sweep; beliefs remain
// a distribution throughout.
func TestFixedPoint(t *testing.T) {
	app := testApp(t, 5)
	st := newState(t, app, meanfield.Spec{Damping: 0.5, Tol: 1e-4})
	res := run(t, app, st, 2, 7, 200)
	if !st.Frozen() {
		t.Fatal("no fixed point within 200 sweeps")
	}
	if got := st.Converged(); got <= 0 || got >= 200 {
		t.Fatalf("converged sweep %d out of range", got)
	}
	q := st.Belief(10, 10)
	sum := 0.0
	for _, v := range q {
		if v < 0 || v > 1 {
			t.Fatalf("belief %v outside [0,1]", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("beliefs sum to %v", sum)
	}
	// A frozen chain's final labels must equal the belief argmax.
	m := app.Model()
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			q := st.Belief(x, y)
			want := 0
			if q[1] > q[0] {
				want = 1
			}
			if got := res.Final.At(x, y); got != want {
				t.Fatalf("site (%d,%d): label %d, belief argmax %d", x, y, got, want)
			}
		}
	}
}

// TestRunReset: a second run on the same state must reset the beliefs
// at sweep 0 and reproduce the first run exactly.
func TestRunReset(t *testing.T) {
	app := testApp(t, 6)
	st := newState(t, app, meanfield.Spec{})
	a := run(t, app, st, 1, 7, 30)
	b := run(t, app, st, 1, 7, 30)
	if !bytes.Equal(a.Final.Labels, b.Final.Labels) {
		t.Fatal("second run on the same state diverges")
	}
}

// TestAccuracy: mean-field is approximate but must still basically
// solve an easy high-contrast segmentation.
func TestAccuracy(t *testing.T) {
	scene := img.BlobScene(32, 32, 2, 6, rng.New(21))
	app, err := apps.NewSegmentation(scene.Image, scene.Means, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	st := newState(t, app, meanfield.Spec{})
	res := run(t, app, st, 1, 7, 60)
	if rate := res.MAP.MislabelRate(scene.Truth); rate > 0.05 {
		t.Fatalf("mislabel rate %v > 0.05", rate)
	}
}
