package spiking_test

import (
	"bytes"
	"context"
	"math"
	"testing"

	"repro/internal/apps"
	"repro/internal/gibbs"
	"repro/internal/img"
	"repro/internal/mrf"
	"repro/internal/rng"
	"repro/internal/sampler/spiking"
)

func TestSpecValidate(t *testing.T) {
	if err := (spiking.Spec{}).Validate(); err != nil {
		t.Fatalf("zero spec: %v", err)
	}
	for _, bad := range []spiking.Spec{
		{Bits: -1}, {Bits: 17}, {Tau: -0.5}, {Tau: math.Inf(1)}, {Tau: math.NaN()},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("spec %+v accepted", bad)
		}
	}
}

func TestSpecTagIncludesKnobs(t *testing.T) {
	a := spiking.Spec{Bits: 4, Tau: 2}.Tag()
	b := spiking.Spec{Bits: 8, Tau: 2}.Tag()
	c := spiking.Spec{Bits: 4, Tau: 0.5}.Tag()
	if a == b || a == c || b == c {
		t.Fatalf("knobs not distinguished: %q %q %q", a, b, c)
	}
}

func testApp(t *testing.T, labels int, seed uint64) apps.App {
	t.Helper()
	scene := img.BlobScene(24, 24, labels, 6, rng.New(seed))
	app, err := apps.NewSegmentation(scene.Image, scene.Means, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

// TestDistribution: at a fine tick and wide comparator, the discrete
// race converges to the exact full conditional — repeated draws at one
// site must match ConditionalProbs within Monte-Carlo error.
func TestDistribution(t *testing.T) {
	app := testApp(t, 3, 7)
	m := app.Model()
	lm := app.InitLabels()
	s := spiking.New(spiking.Spec{Bits: 16, Tau: 0.05})()
	src := rng.New(99)
	const draws = 20000
	counts := make([]float64, m.M)
	x, y := 11, 13
	for i := 0; i < draws; i++ {
		counts[s.SampleSite(m, lm, x, y, src)]++
	}
	want := m.ConditionalProbs(nil, lm, x, y)
	for l := 0; l < m.M; l++ {
		got := counts[l] / draws
		if math.Abs(got-want[l]) > 0.015 {
			t.Fatalf("label %d: empirical %v want %v", l, got, want[l])
		}
	}
}

// TestCoarseKnobFlattens: a one-bit comparator with a long tick biases
// the draw toward uniform relative to the exact conditional — the
// accuracy knob must actually move the distribution.
func TestCoarseKnobFlattens(t *testing.T) {
	// A controlled binary model with a one-unit energy gap: the exact
	// conditional is p(0) = 1/(1+e^-1) ≈ 0.731 at every site. A 1-bit
	// comparator with a long tick quantizes both labels' firing
	// probabilities to 1, so every race ties and the draw flattens to
	// uniform.
	m := &mrf.Model{
		W: 4, H: 4, M: 2, T: 1, LambdaS: 1,
		Singleton: func(x, y, l int) float64 { return float64(l) },
		Doubleton: func(a, b int) float64 { return 0 },
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	lm := img.NewLabelMap(4, 4)
	s := spiking.New(spiking.Spec{Bits: 1, Tau: 4})()
	src := rng.New(5)
	want := m.ConditionalProbs(nil, lm, 1, 1)
	if want[0] < 0.7 || want[0] > 0.76 {
		t.Fatalf("unexpected exact conditional %v", want)
	}
	const draws = 20000
	hits := 0.0
	for i := 0; i < draws; i++ {
		if s.SampleSite(m, lm, 1, 1, src) == 0 {
			hits++
		}
	}
	if got := hits / draws; got > want[0]-0.05 {
		t.Fatalf("1-bit/τ=4 draw not flattened: mode mass %v vs exact %v", got, want[0])
	}
}

// TestTinyTauTerminates: when τ quantizes every firing probability to
// zero, the clamped argmax code must still finish the race.
func TestTinyTauTerminates(t *testing.T) {
	app := testApp(t, 2, 9)
	m := app.Model()
	lm := app.InitLabels()
	s := spiking.New(spiking.Spec{Bits: 1, Tau: 1e-9})()
	src := rng.New(1)
	for i := 0; i < 100; i++ {
		l := s.SampleSite(m, lm, i%24, (i*7)%24, src)
		if l < 0 || l >= m.M {
			t.Fatalf("label %d out of range", l)
		}
	}
}

// TestWorkerInvariance pins the contract the registry capability
// advertises: spiking keeps scratch only, so W=1 and W=N draw the
// byte-identical chain off the row-attached RNG streams.
func TestWorkerInvariance(t *testing.T) {
	app := testApp(t, 4, 11)
	run := func(workers int) *gibbs.Result {
		opt := gibbs.Options{
			Iterations: 30, BurnIn: 8,
			Schedule: gibbs.Checkerboard, Workers: workers, TrackMode: true,
		}
		res, err := gibbs.Run(context.Background(), app.Model(), app.InitLabels(),
			spiking.New(spiking.Spec{Bits: 8, Tau: 1}), opt, 42)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	w1, w8 := run(1), run(8)
	if !bytes.Equal(w1.Final.Labels, w8.Final.Labels) {
		t.Fatal("spiking W=1 vs W=8 final labels differ")
	}
	if !bytes.Equal(w1.MAP.Labels, w8.MAP.Labels) {
		t.Fatal("spiking W=1 vs W=8 MAP labels differ")
	}
}
