// Package spiking implements a Gibbs site update built from low-power
// spiking digital neurons (Das et al., "Gibbs Sampling with Low-Power
// Spiking Digital Neurons", PAPERS.md) — a digital counterpoint to the
// paper's molecular-optical exponential race.
//
// The RSU-G decides a site by racing M continuous-time exponential
// clocks with rates proportional to the Boltzmann weights; the first
// photon detected wins. A spiking digital neuron approximates that race
// in discrete time: each label gets a neuron that fires in a clock tick
// with probability p_l = 1 - exp(-(λ_l/λ_max)·τ), where τ is the tick
// length in units of the fastest clock's period. The firing probability
// is quantized to the neuron's pseudo-random bit width (an LFSR
// threshold comparator), and ties within a tick are broken uniformly —
// the digital analogue of two photons inside one detector window.
//
// As τ→0 and bits→∞ the tick race converges to the exact exponential
// race (the probability that neuron l fires first approaches
// λ_l/Σλ). Coarse τ and narrow comparators bias the draw toward
// uniform — the accuracy/energy knob the Pareto report sweeps.
package spiking

import (
	"fmt"
	"math"

	"repro/internal/gibbs"
	"repro/internal/img"
	"repro/internal/mrf"
	"repro/internal/rng"
)

// Spec are the spiking-neuron knobs.
type Spec struct {
	// Bits is the firing-probability comparator width: probabilities are
	// quantized to multiples of 1/(2^Bits-1). Range [1,16]; 0 selects
	// DefaultBits.
	Bits int
	// Tau is the tick length in units of the maximum-rate neuron's mean
	// inter-spike time. Larger ticks finish races in fewer (cheaper)
	// ticks but flatten the distribution. Must be positive; 0 selects
	// DefaultTau.
	Tau float64
}

// Default knob values: an 8-bit comparator (the Das design point) and a
// one-mean-inter-spike-time tick.
const (
	DefaultBits = 8
	DefaultTau  = 1.0
)

// WithDefaults returns the spec with zero fields replaced by defaults.
func (sp Spec) WithDefaults() Spec {
	if sp.Bits == 0 {
		sp.Bits = DefaultBits
	}
	if sp.Tau == 0 {
		sp.Tau = DefaultTau
	}
	return sp
}

// Validate rejects out-of-range knobs. It applies defaults first, so a
// zero Spec is valid.
func (sp Spec) Validate() error {
	sp = sp.WithDefaults()
	if sp.Bits < 1 || sp.Bits > 16 {
		return fmt.Errorf("spiking: comparator width %d outside [1,16]", sp.Bits)
	}
	if sp.Tau <= 0 || math.IsInf(sp.Tau, 0) || math.IsNaN(sp.Tau) {
		return fmt.Errorf("spiking: tick length tau %v must be positive and finite", sp.Tau)
	}
	return nil
}

// Tag is the checkpoint-fingerprint identity of the spec: two runs with
// equal tags draw identical chains.
func (sp Spec) Tag() string {
	sp = sp.WithDefaults()
	return fmt.Sprintf("spiking:bits=%d,tau=%g", sp.Bits, sp.Tau)
}

// sampler holds per-worker scratch only — no cross-site state — so the
// engine's row-attached RNG streams make results worker-count-invariant
// exactly as for the exact kernels.
type sampler struct {
	spec   Spec
	levels float64 // 2^Bits - 1
	rates  []float64
	codes  []int
	fired  []int
}

// New returns a gibbs.Factory of spiking samplers. The spec must have
// passed Validate.
func New(spec Spec) gibbs.Factory {
	spec = spec.WithDefaults()
	return func() gibbs.Sampler {
		return &sampler{spec: spec, levels: float64(uint64(1)<<spec.Bits - 1)}
	}
}

// Name implements gibbs.Sampler.
func (s *sampler) Name() string { return fmt.Sprintf("spiking-b%d", s.spec.Bits) }

// SampleSite implements gibbs.Sampler: quantize each label's firing
// probability, then run discrete ticks until exactly one neuron fires
// (ties broken uniformly). ConditionalRates normalizes so the
// minimum-energy label has rate exactly 1; its code is clamped to ≥1,
// guaranteeing termination even when τ quantizes every probability to
// zero.
func (s *sampler) SampleSite(m *mrf.Model, lm *img.LabelMap, x, y int, src *rng.Source) int {
	s.rates = m.ConditionalRates(s.rates, lm, x, y)
	if cap(s.codes) < m.M {
		s.codes = make([]int, m.M)
		s.fired = make([]int, 0, m.M)
	}
	codes := s.codes[:m.M]
	argmax, rmax := 0, s.rates[0]
	for l, r := range s.rates {
		// p = 1 - exp(-r·τ), r ∈ (0,1]; quantize to the comparator grid.
		codes[l] = int(math.Round((1 - math.Exp(-r*s.spec.Tau)) * s.levels))
		if r > rmax {
			argmax, rmax = l, r
		}
	}
	if codes[argmax] == 0 {
		codes[argmax] = 1
	}
	for {
		fired := s.fired[:0]
		for l, c := range codes {
			if c == 0 {
				// A zero code never fires: the comparator threshold is
				// below every LFSR value, so no bit is drawn at all (the
				// dark-rung case of the optical ladder).
				continue
			}
			if src.Float64()*s.levels < float64(c) {
				fired = append(fired, l)
			}
		}
		switch len(fired) {
		case 0:
			continue
		case 1:
			return fired[0]
		default:
			return fired[src.Intn(len(fired))]
		}
	}
}
