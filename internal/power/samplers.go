package power

import (
	"fmt"
	"math"
)

// This file extends the paper's unit-level power model into a
// per-site-sample *energy* model covering every registry backend, so
// the cross-backend Pareto report (paperbench -experiment backends)
// can place software, emulated-hardware and approximate samplers on
// one accuracy-vs-energy plane.
//
// The hardware numbers come from Tables 3-4 (RSU-G1 at 15 nm draws
// 3.91 mW at 1 GHz = 3.91 pJ/cycle); the software numbers from the
// paper's baseline machine (a 6-core Xeon E5-2640 at 2.5 GHz, 95 W
// TDP -> 95/6/2.5e9 ~ 6.33 nJ per core-cycle); the cycle counts per
// site-sample from the microbenchmark behind BENCH_kernel.json. All
// of it is a *model* — deterministic arithmetic on documented
// constants, never wall-clock measurement — which is what lets the
// energy column of BENCH_backends.json be byte-reproducible and
// CI-gated.

// Software-baseline machine constants (§8.1: dual-socket Xeon E5-2640).
const (
	// CPUWattsPerCore is TDP split evenly across the six cores.
	CPUWattsPerCore = 95.0 / 6
	// CPUClockHz is the E5-2640 base clock.
	CPUClockHz = 2.5e9
	// CPUNJPerCycle is the modeled per-core energy of one CPU cycle in
	// nanojoules (~6.33 nJ).
	CPUNJPerCycle = CPUWattsPerCore / CPUClockHz * 1e9
)

// Modeled CPU cycle counts per site-sample, calibrated against the
// kernel suite's measured ns/site on the baseline-clock assumption
// (cycles = ns/site x 2.5). They are deliberately coarse — the report
// needs relative ordering and scaling shape, not profiler precision.
const (
	// CPUGibbsBaseCycles + M x CPUGibbsPerLabelCycles is the exact-Gibbs
	// sweep kernel: fixed per-site overhead (RNG draw, neighborhood
	// gather, CDF walk) plus one exp() per label.
	CPUGibbsBaseCycles     = 588.0
	CPUGibbsPerLabelCycles = 25.0
	// CPUFirstToFireCyclesPerLabel: the software first-to-fire race
	// draws one Exp(1) variate per label, so the whole site costs
	// ~M x the base kernel's per-draw cost.
	CPUFirstToFireCyclesPerLabel = 588.0
	// CPUMetropolisCycles: one uniform proposal, two energy evaluations
	// and an accept test — label-count independent.
	CPUMetropolisCycles = 640.0
	// CPUMeanFieldBaseCycles + M^2 x CPUMeanFieldPerPairCycles: the
	// damped update recomputes M expected energies, each a sum of M
	// weighted doubleton terms per neighbor, with no RNG at all.
	CPUMeanFieldBaseCycles    = 200.0
	CPUMeanFieldPerPairCycles = 50.0
)

// Spiking (digital stochastic neuron, Das et al. style) constants.
const (
	// SpikingNJPerNeuronTick is the modeled energy of one threshold-
	// Bernoulli neuron tick at the comparator bit-width of 1: an LFSR
	// step, a B-bit compare and a latch in a 15 nm process, ~0.5 pJ.
	SpikingNJPerNeuronTick = 0.5e-3
	// SpikingControlNJ is the per-site control overhead (neighborhood
	// gather, rate load, winner encode).
	SpikingControlNJ = 2.0e-3
)

// Prototype (RSU-G2 free-space optical bench) constants.
const (
	// PrototypeWatts is the bench's steady electrical draw (laser diode
	// driver + DMD controller) attributable to sampling.
	PrototypeWatts = 2.0
	// PrototypeSecondsPerSample matches prototype.SamplePerPixelS.
	PrototypeSecondsPerSample = 2e-6
	// PrototypeNJPerSample is the resulting per-site energy (~4000 nJ):
	// the prototype demonstrates feasibility, not efficiency.
	PrototypeNJPerSample = PrototypeWatts * PrototypeSecondsPerSample * 1e9
)

// SamplerEnergySpec carries the per-backend knobs the model needs.
type SamplerEnergySpec struct {
	// Labels is the model's label count M.
	Labels int
	// RSUCycles is the unit's evaluation latency (rsu.Unit.EvalTiming)
	// — required for the "rsu" backend, ignored elsewhere.
	RSUCycles int
	// SpikingBits / SpikingTau are the spiking backend's quantizer
	// bit-width and exposure window — required for "spiking".
	SpikingBits int
	SpikingTau  float64
}

// RSUG1NJPerCycle returns the modeled RSU-G1 energy per cycle in
// nanojoules at the given node (Table 3 power over the node clock:
// 3.91 pJ at 15 nm, 19.1 pJ at 45 nm).
func RSUG1NJPerCycle(n Node) float64 {
	return RSUG1Budget(n).TotalPowerMW() * 1e-3 / n.ClockHz() * 1e9
}

// SamplerEnergyNJ returns the modeled energy of one site-sample on the
// named registry backend, in nanojoules. Unknown names error rather
// than silently returning a plausible number.
func SamplerEnergyNJ(backend string, spec SamplerEnergySpec) (float64, error) {
	m := float64(spec.Labels)
	if spec.Labels <= 0 {
		return 0, fmt.Errorf("power: sampler energy needs a positive label count, got %d", spec.Labels)
	}
	switch backend {
	case "software-gibbs":
		return (CPUGibbsBaseCycles + m*CPUGibbsPerLabelCycles) * CPUNJPerCycle, nil
	case "software-first-to-fire":
		return m * CPUFirstToFireCyclesPerLabel * CPUNJPerCycle, nil
	case "metropolis":
		return CPUMetropolisCycles * CPUNJPerCycle, nil
	case "meanfield":
		return (CPUMeanFieldBaseCycles + m*m*CPUMeanFieldPerPairCycles) * CPUNJPerCycle, nil
	case "rsu":
		if spec.RSUCycles <= 0 {
			return 0, fmt.Errorf("power: rsu energy needs the unit's EvalTiming cycles")
		}
		return float64(spec.RSUCycles) * RSUG1NJPerCycle(N15), nil
	case "prototype":
		return PrototypeNJPerSample, nil
	case "spiking":
		if spec.SpikingBits <= 0 || !(spec.SpikingTau > 0) {
			return 0, fmt.Errorf("power: spiking energy needs positive bits and tau")
		}
		// Expected ticks until the strongest neuron (firing probability
		// 1-exp(-tau) per tick at full rate) fires: the geometric mean
		// 1/(1-exp(-tau)). Every tick clocks all M neurons, each paying
		// the per-bit comparator cost.
		expectedTicks := 1 / (1 - math.Exp(-spec.SpikingTau))
		perTick := m * float64(spec.SpikingBits) * SpikingNJPerNeuronTick
		return expectedTicks*perTick + SpikingControlNJ, nil
	default:
		return 0, fmt.Errorf("power: no energy model for backend %q", backend)
	}
}
