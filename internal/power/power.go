// Package power implements the paper's power and area models for the
// RSU-G1 unit (§8.3, Tables 3 and 4) and the system-level aggregates
// (GPU with 3072 units, discrete accelerator with 336 units).
//
// The paper obtains these numbers from Synopsys synthesis at 45 nm,
// Cacti, a predictive 15 nm process for the CMOS portions, and first
// principles for the RET components. We cannot re-run synthesis, so the
// per-component figures are carried as model constants and the
// arithmetic (totals, aggregates, scaling bookkeeping) is reproduced;
// a first-principles estimator for the RET optical power cross-checks
// the 0.16 mW figure.
package power

import "fmt"

// Node identifies a CMOS process corner used in the paper.
type Node int

// Process corners of Tables 3–4.
const (
	N45 Node = iota // 45 nm at 590 MHz (synthesized)
	N15             // 15 nm at 1 GHz (predictive PDK + scaled LUT)
)

// String implements fmt.Stringer.
func (n Node) String() string {
	switch n {
	case N45:
		return "45nm"
	case N15:
		return "15nm"
	default:
		return fmt.Sprintf("Node(%d)", int(n))
	}
}

// ClockHz returns the paper's clock for the node.
func (n Node) ClockHz() float64 {
	switch n {
	case N45:
		return 590e6
	default:
		return 1e9
	}
}

// Component is one row of Tables 3–4.
type Component struct {
	Name    string
	PowerMW float64
	AreaUM2 float64
}

// Budget is the full per-unit breakdown at one node.
type Budget struct {
	Node       Node
	Components []Component
}

// RSUG1Budget returns the paper's RSU-G1 breakdown at the given node.
//
// Table 3 (power, mW):        Table 4 (area, µm²):
//
//	          45nm   15nm                45nm   15nm
//	Logic     7.20   2.33      Logic     2275    642
//	RET       0.16   0.16      RET       1600   1600
//	LUT       3.92   1.42      LUT       1798    656
//	Total    11.28   3.91      Total     5673   2898
//
// The RET circuit is not scaled between nodes (its geometry is set by
// optics, not lithography).
func RSUG1Budget(n Node) Budget {
	switch n {
	case N45:
		return Budget{Node: n, Components: []Component{
			{Name: "Logic", PowerMW: 7.20, AreaUM2: 2275},
			{Name: "RET Circuit", PowerMW: 0.16, AreaUM2: 1600},
			{Name: "LUT", PowerMW: 3.92, AreaUM2: 1798},
		}}
	default:
		return Budget{Node: N15, Components: []Component{
			{Name: "Logic", PowerMW: 2.33, AreaUM2: 642},
			{Name: "RET Circuit", PowerMW: 0.16, AreaUM2: 1600},
			{Name: "LUT", PowerMW: 1.42, AreaUM2: 656},
		}}
	}
}

// TotalPowerMW sums the component powers.
func (b Budget) TotalPowerMW() float64 {
	t := 0.0
	for _, c := range b.Components {
		t += c.PowerMW
	}
	return t
}

// TotalAreaUM2 sums the component areas.
func (b Budget) TotalAreaUM2() float64 {
	t := 0.0
	for _, c := range b.Components {
		t += c.AreaUM2
	}
	return t
}

// Aggregate is a system-level power/area roll-up.
type Aggregate struct {
	Name    string
	Units   int
	PowerW  float64
	AreaMM2 float64
}

// SystemAggregate rolls up `units` RSU-G1 units at the given node:
// the paper's "GPU augmented with RSU-G units (3072 in total) consumes
// 12W of additional power" and "the accelerator with 336 units ...
// consumes only 1.3W" (§8.3).
func SystemAggregate(name string, units int, n Node) Aggregate {
	b := RSUG1Budget(n)
	return Aggregate{
		Name:    name,
		Units:   units,
		PowerW:  b.TotalPowerMW() * float64(units) / 1000,
		AreaMM2: b.TotalAreaUM2() * float64(units) / 1e6,
	}
}

// RET circuit geometry constants (§8.3 area discussion).
const (
	SPADAreaUM2        = 1.0         // ~1 µm² (refs [6, 23, 32])
	QDLEDAreaUM2       = 16 * 25     // ~16×25 µm² (refs [15, 34])
	RETCircuitAreaUM2  = 400.0       // SPAD + LEDs, dominated by the LEDs
	CircuitsPerRSUG1   = 4           // replicated circuits (§5.3)
	RETNetworkVolumeNM = 20 * 20 * 2 // per network, sits above the SPAD
)

// RETCircuitArea returns the modeled area of the RET circuits in one
// RSU-G1: 4 replicated circuits × ~400 µm² = 0.0016 mm² (§8.3).
func RETCircuitArea() float64 {
	return float64(CircuitsPerRSUG1) * RETCircuitAreaUM2
}

// OpticalPowerParams drive the first-principles RET power estimate.
type OpticalPowerParams struct {
	DetectedRateHz float64 // photons/s the SPAD must see at full intensity
	QuantumYield   float64 // network emission probability
	SPADEfficiency float64 // detection efficiency
	Coupling       float64 // LED photon → chromophore absorption efficiency
	PhotonEV       float64 // photon energy in eV
	WallPlug       float64 // LED electrical→optical efficiency
}

// DefaultOpticalParams are order-of-magnitude values consistent with the
// paper's cited components.
func DefaultOpticalParams() OpticalPowerParams {
	return OpticalPowerParams{
		DetectedRateHz: 1e9,
		QuantumYield:   0.8,
		SPADEfficiency: 0.4,
		Coupling:       1e-3,
		PhotonEV:       2.3,
		WallPlug:       0.03,
	}
}

// EstimateRETPowerMW returns the electrical power of one RET circuit's
// optics from first principles: the LED must source enough photons that,
// after coupling, emission and detection losses, the SPAD sees
// DetectedRateHz. With the defaults this lands near 0.04 mW/circuit,
// i.e. ~0.16 mW for the 4 circuits of an RSU-G1 — the Table 3 figure.
func EstimateRETPowerMW(p OpticalPowerParams) float64 {
	const eV = 1.602176634e-19 // joules
	emittedNeeded := p.DetectedRateHz / (p.SPADEfficiency * p.QuantumYield)
	ledPhotons := emittedNeeded / p.Coupling
	opticalW := ledPhotons * p.PhotonEV * eV
	return opticalW / p.WallPlug * 1000
}
