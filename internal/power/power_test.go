package power

import (
	"math"
	"testing"
)

func TestTable3Totals(t *testing.T) {
	if got := RSUG1Budget(N45).TotalPowerMW(); math.Abs(got-11.28) > 1e-9 {
		t.Errorf("45nm total power %v, want 11.28", got)
	}
	if got := RSUG1Budget(N15).TotalPowerMW(); math.Abs(got-3.91) > 1e-9 {
		t.Errorf("15nm total power %v, want 3.91", got)
	}
}

func TestTable4Totals(t *testing.T) {
	if got := RSUG1Budget(N45).TotalAreaUM2(); got != 5673 {
		t.Errorf("45nm total area %v, want 5673", got)
	}
	if got := RSUG1Budget(N15).TotalAreaUM2(); got != 2898 {
		t.Errorf("15nm total area %v, want 2898", got)
	}
}

func TestRETNotScaledAcrossNodes(t *testing.T) {
	a45 := RSUG1Budget(N45)
	a15 := RSUG1Budget(N15)
	var r45, r15 Component
	for _, c := range a45.Components {
		if c.Name == "RET Circuit" {
			r45 = c
		}
	}
	for _, c := range a15.Components {
		if c.Name == "RET Circuit" {
			r15 = c
		}
	}
	if r45.PowerMW != r15.PowerMW || r45.AreaUM2 != r15.AreaUM2 {
		t.Fatal("RET circuit should not scale between nodes")
	}
}

// TestSection83Aggregates pins the paper's system-level numbers: a GPU
// with 3072 units adds ~12 W; the 336-unit accelerator uses ~1.3 W.
func TestSection83Aggregates(t *testing.T) {
	gpu := SystemAggregate("gpu+rsu", 3072, N15)
	if math.Abs(gpu.PowerW-12.0) > 0.1 {
		t.Errorf("GPU aggregate %v W, want ~12", gpu.PowerW)
	}
	acc := SystemAggregate("accelerator", 336, N15)
	if math.Abs(acc.PowerW-1.3) > 0.05 {
		t.Errorf("accelerator aggregate %v W, want ~1.3", acc.PowerW)
	}
}

func TestRETCircuitArea(t *testing.T) {
	// §8.3: "all the RET circuits in an RSU-G1 unit require 0.0016 mm²"
	if got := RETCircuitArea(); got != 1600 {
		t.Fatalf("RET circuit area %v µm², want 1600", got)
	}
}

// TestOpticalPowerEstimate: the first-principles estimate must land
// near the paper's 0.16 mW for four circuits.
func TestOpticalPowerEstimate(t *testing.T) {
	perCircuit := EstimateRETPowerMW(DefaultOpticalParams())
	total := perCircuit * CircuitsPerRSUG1
	if total < 0.08 || total > 0.32 {
		t.Fatalf("estimated RET power %v mW for 4 circuits, want ~0.16", total)
	}
}

func TestNodeMetadata(t *testing.T) {
	if N45.String() != "45nm" || N15.String() != "15nm" {
		t.Error("node names")
	}
	if Node(5).String() != "Node(5)" {
		t.Error("unknown node name")
	}
	if N45.ClockHz() != 590e6 || N15.ClockHz() != 1e9 {
		t.Error("node clocks")
	}
}

func TestAggregateArea(t *testing.T) {
	// 3072 × 2898 µm² ≈ 8.9 mm²
	gpu := SystemAggregate("gpu+rsu", 3072, N15)
	if math.Abs(gpu.AreaMM2-3072*2898e-6) > 1e-9 {
		t.Fatalf("aggregate area %v", gpu.AreaMM2)
	}
	if gpu.Units != 3072 || gpu.Name != "gpu+rsu" {
		t.Fatal("aggregate metadata")
	}
}
