package power

import (
	"math"
	"strings"
	"testing"
)

// TestSamplerEnergyModel pins the per-backend energy arithmetic to the
// documented constants so the BENCH_backends.json energy column cannot
// drift silently.
func TestSamplerEnergyModel(t *testing.T) {
	// RSU-G1 at 15 nm: 3.91 mW / 1 GHz = 3.91 pJ/cycle.
	if got := RSUG1NJPerCycle(N15); math.Abs(got-3.91e-3) > 1e-12 {
		t.Fatalf("15nm pJ/cycle: got %g nJ", got)
	}
	cases := []struct {
		name string
		spec SamplerEnergySpec
		want float64
	}{
		{"software-gibbs", SamplerEnergySpec{Labels: 2}, (CPUGibbsBaseCycles + 2*CPUGibbsPerLabelCycles) * CPUNJPerCycle},
		{"software-first-to-fire", SamplerEnergySpec{Labels: 4}, 4 * CPUFirstToFireCyclesPerLabel * CPUNJPerCycle},
		{"metropolis", SamplerEnergySpec{Labels: 64}, CPUMetropolisCycles * CPUNJPerCycle},
		{"meanfield", SamplerEnergySpec{Labels: 2}, (CPUMeanFieldBaseCycles + 4*CPUMeanFieldPerPairCycles) * CPUNJPerCycle},
		{"rsu", SamplerEnergySpec{Labels: 2, RSUCycles: 8}, 8 * 3.91e-3},
		{"prototype", SamplerEnergySpec{Labels: 2}, 4000},
	}
	for _, c := range cases {
		got, err := SamplerEnergyNJ(c.name, c.spec)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s: got %g nJ, want %g", c.name, got, c.want)
		}
	}

	// Spiking scales with bits and with the expected tick count: a
	// shorter exposure window (smaller tau) means more expected ticks
	// and therefore more energy per sample.
	lo, err := SamplerEnergyNJ("spiking", SamplerEnergySpec{Labels: 2, SpikingBits: 4, SpikingTau: 1})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := SamplerEnergyNJ("spiking", SamplerEnergySpec{Labels: 2, SpikingBits: 8, SpikingTau: 1})
	if err != nil {
		t.Fatal(err)
	}
	short, err := SamplerEnergyNJ("spiking", SamplerEnergySpec{Labels: 2, SpikingBits: 4, SpikingTau: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if hi <= lo {
		t.Errorf("8-bit spiking (%g) not above 4-bit (%g)", hi, lo)
	}
	if short <= lo {
		t.Errorf("tau=0.1 spiking (%g) not above tau=1 (%g)", short, lo)
	}

	// Missing knobs and unknown backends are errors, not guesses.
	if _, err := SamplerEnergyNJ("rsu", SamplerEnergySpec{Labels: 2}); err == nil {
		t.Error("rsu without cycles accepted")
	}
	if _, err := SamplerEnergyNJ("spiking", SamplerEnergySpec{Labels: 2}); err == nil {
		t.Error("spiking without knobs accepted")
	}
	if _, err := SamplerEnergyNJ("software-gibbs", SamplerEnergySpec{}); err == nil {
		t.Error("zero label count accepted")
	}
	if _, err := SamplerEnergyNJ("sram-sampler", SamplerEnergySpec{Labels: 2}); err == nil || !strings.Contains(err.Error(), "sram-sampler") {
		t.Errorf("unknown backend: got %v", err)
	}
}
