package apps

import (
	"context"
	"testing"

	"repro/internal/fixed"
	"repro/internal/gibbs"
	"repro/internal/img"
	"repro/internal/mrf"
	"repro/internal/rng"
	"repro/internal/rsu"
)

// restorationScene builds a clean piecewise-constant image whose region
// intensities sit exactly on the restoration levels, plus a noisy copy.
func restorationScene(w, h, nLevels int, sigma float64, seed uint64) (clean, noisy *img.Gray) {
	src := rng.New(seed)
	r, _ := NewRestoration(img.NewGray(4, 4), nLevels, 1, 0, 8, mrf.FirstOrder)
	clean = img.NewGray(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			region := 0
			if x > w/2 {
				region = nLevels - 1
			} else if y > h/2 {
				region = nLevels / 2
			}
			clean.Set(x, y, fixed.Dequantize6(r.Levels6[region]))
		}
	}
	noisy = clean.Clone()
	for i := range noisy.Pix {
		v := float64(noisy.Pix[i]) + src.Normal(0, sigma)
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		noisy.Pix[i] = uint8(v)
	}
	return clean, noisy
}

func TestNewRestorationValidation(t *testing.T) {
	im := img.NewGray(8, 8)
	cases := []struct {
		name string
		fn   func() (*Restoration, error)
	}{
		{"nil image", func() (*Restoration, error) {
			return NewRestoration(nil, 4, 1, 0, 8, mrf.FirstOrder)
		}},
		{"one level", func() (*Restoration, error) {
			return NewRestoration(im, 1, 1, 0, 8, mrf.FirstOrder)
		}},
		{"nine levels", func() (*Restoration, error) {
			return NewRestoration(im, 9, 1, 0, 8, mrf.FirstOrder)
		}},
		{"fractional weight", func() (*Restoration, error) {
			return NewRestoration(im, 4, 0.5, 0, 8, mrf.FirstOrder)
		}},
		{"zero temperature", func() (*Restoration, error) {
			return NewRestoration(im, 4, 1, 0, 0, mrf.FirstOrder)
		}},
		{"bad neighborhood", func() (*Restoration, error) {
			return NewRestoration(im, 4, 1, 0, 8, mrf.Neighborhood(9))
		}},
	}
	for _, c := range cases {
		if _, err := c.fn(); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestRestorationLevelsSpanRange(t *testing.T) {
	r, err := NewRestoration(img.NewGray(4, 4), 8, 1, 0, 8, mrf.FirstOrder)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Levels6) != 8 {
		t.Fatalf("levels %v", r.Levels6)
	}
	if r.Levels6[0] != 4 || r.Levels6[7] != 60 {
		t.Fatalf("levels %v, want centers 4..60", r.Levels6)
	}
	for i := 1; i < len(r.Levels6); i++ {
		if r.Levels6[i] <= r.Levels6[i-1] {
			t.Fatalf("levels not increasing: %v", r.Levels6)
		}
	}
}

// TestRestorationDenoises: MAP restoration must beat the noisy input by
// a wide margin in MSE against the clean image.
func TestRestorationDenoises(t *testing.T) {
	clean, noisy := restorationScene(32, 32, 4, 14, 5)
	app, err := NewRestoration(noisy, 4, 1, 0, 10, mrf.FirstOrder)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSoftware(context.Background(), app, app.InitLabels(), gibbs.Options{
		Iterations: 60, BurnIn: 20, Schedule: gibbs.Checkerboard, TrackMode: true,
	}, 6)
	if err != nil {
		t.Fatal(err)
	}
	restored := app.Render(res.MAP)
	noisyMSE := img.MSE(noisy, clean)
	restoredMSE := img.MSE(restored, clean)
	if restoredMSE > noisyMSE/3 {
		t.Fatalf("restoration MSE %.1f vs noisy %.1f: insufficient denoising", restoredMSE, noisyMSE)
	}
}

// TestRestorationSecondOrderRSU: the full §9 extension path — an
// 8-neighbor prior solved by an emulated RSU-G8 with diagonal
// registers — must denoise at least as well as it started and track the
// software second-order chain.
func TestRestorationSecondOrderRSU(t *testing.T) {
	clean, noisy := restorationScene(32, 32, 4, 14, 7)
	app, err := NewRestoration(noisy, 4, 1, 1, 10, mrf.SecondOrder)
	if err != nil {
		t.Fatal(err)
	}
	unit, err := BuildUnit(app, nil, 1, rsu.Ideal)
	if err != nil {
		t.Fatal(err)
	}
	if !unit.Config().Diagonal {
		t.Fatal("second-order restoration should configure RSU-G8")
	}
	// RSU-G8 has one extra pipeline stage: 8 + (M-1).
	if got := unit.EvalTiming().Cycles; got != 8+3 {
		t.Fatalf("RSU-G8 latency %d, want 11", got)
	}
	opt := gibbs.Options{Iterations: 60, BurnIn: 20, Schedule: gibbs.Checkerboard, TrackMode: true}
	sw, err := RunSoftware(context.Background(), app, app.InitLabels(), opt, 8)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := RunRSU(context.Background(), app, unit, app.InitLabels(), opt, 9)
	if err != nil {
		t.Fatal(err)
	}
	noisyMSE := img.MSE(noisy, clean)
	hwMSE := img.MSE(app.Render(hw.MAP), clean)
	if hwMSE > noisyMSE/3 {
		t.Fatalf("RSU-G8 restoration MSE %.1f vs noisy %.1f", hwMSE, noisyMSE)
	}
	if agree := sw.MAP.Agreement(hw.MAP); agree < 0.90 {
		t.Fatalf("software/RSU-G8 agreement %v", agree)
	}
}

// TestRestorationSecondOrderSmoother: with diagonal cliques the prior is
// stronger; on a very noisy input the second-order MAP should have no
// more label flips than the first-order MAP (identical seeds).
func TestRestorationSecondOrderSmoother(t *testing.T) {
	clean, noisy := restorationScene(32, 32, 2, 30, 11)
	run := func(hood mrf.Neighborhood, diag float64) float64 {
		app, err := NewRestoration(noisy, 2, 1, diag, 10, hood)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunSoftware(context.Background(), app, app.InitLabels(), gibbs.Options{
			Iterations: 50, BurnIn: 20, Schedule: gibbs.Checkerboard, TrackMode: true,
		}, 12)
		if err != nil {
			t.Fatal(err)
		}
		return img.MSE(app.Render(res.MAP), clean)
	}
	first := run(mrf.FirstOrder, 0)
	second := run(mrf.SecondOrder, 1)
	if second > first*1.1 {
		t.Fatalf("second-order MSE %.1f notably worse than first-order %.1f", second, first)
	}
}
