package apps

import (
	"fmt"

	"repro/internal/fixed"
	"repro/internal/img"
	"repro/internal/mrf"
	"repro/internal/rsu"
)

// MotionEstimation computes a dense motion field between two frames
// (paper §8.1: "searches over a 7x7 block to find the most likely
// position of a pixel in a subsequent frame (49 possible values)",
// ref [17] Konrad & Dubois).
//
// Labels are displacement vectors in a (2R+1)² window. The singleton is
// the 6-bit squared intensity difference between the pixel in frame 1
// and its candidate position in frame 2; the doubleton is the
// per-component squared difference of neighboring displacement vectors
// (Eq. 2 with 2-D vector labels).
type MotionEstimation struct {
	Frame1, Frame2 *img.Gray
	Window         mrf.VectorSpace
	LambdaD        float64
	Temperature    float64

	q1, q2 []uint8       // 6-bit frames
	codes  []fixed.Label // label index -> packed (dy,dx) datapath code
}

// NewMotionEstimation builds the app with window radius r (r=3 is the
// paper's 7×7, M=49).
func NewMotionEstimation(f1, f2 *img.Gray, r int, lambdaD, temperature float64) (*MotionEstimation, error) {
	if f1 == nil || f2 == nil {
		return nil, fmt.Errorf("apps: nil frame")
	}
	if f1.W != f2.W || f1.H != f2.H {
		return nil, fmt.Errorf("apps: frame size mismatch %dx%d vs %dx%d", f1.W, f1.H, f2.W, f2.H)
	}
	if r < 1 || r > 3 {
		// Components are offset-encoded into 3 bits: 2r+1 <= 8.
		return nil, fmt.Errorf("apps: window radius %d outside [1,3]", r)
	}
	if !registerWeight(lambdaD) || temperature <= 0 {
		return nil, fmt.Errorf("apps: invalid lambdaD=%v temperature=%v", lambdaD, temperature)
	}
	m := &MotionEstimation{
		Frame1: f1, Frame2: f2,
		Window:      mrf.VectorSpace{R: r},
		LambdaD:     lambdaD,
		Temperature: temperature,
		q1:          make([]uint8, len(f1.Pix)),
		q2:          make([]uint8, len(f2.Pix)),
	}
	for i := range f1.Pix {
		m.q1[i] = fixed.Quantize6(f1.Pix[i])
		m.q2[i] = fixed.Quantize6(f2.Pix[i])
	}
	m.codes = make([]fixed.Label, m.Window.Size())
	for l := range m.codes {
		dx, dy := m.Window.Vec(l)
		m.codes[l] = fixed.PackVec(uint8(dy+r), uint8(dx+r))
	}
	return m, nil
}

// Name implements App.
func (m *MotionEstimation) Name() string { return "motion" }

// Model implements App.
func (m *MotionEstimation) Model() *mrf.Model {
	w, h := m.Frame1.W, m.Frame1.H
	return &mrf.Model{
		W: w, H: h, M: m.Window.Size(),
		T:       m.Temperature,
		LambdaS: 1, LambdaD: m.LambdaD,
		Singleton: func(x, y, label int) float64 {
			dx, dy := m.Window.Vec(label)
			a := int(m.q1[y*w+x])
			b := int(fixed.Quantize6(m.Frame2.At(x+dx, y+dy)))
			d := a - b
			return float64(d * d)
		},
		Doubleton: m.Window.SquaredDiffVec,
	}
}

// RSUConfig implements App: vector labels with the label-decode ROM
// mapping window indices to packed (dy,dx) codes.
func (m *MotionEstimation) RSUConfig() rsu.Config {
	return rsu.Config{
		M: m.Window.Size(), Vector: true,
		DoubletonWeight: uint8(m.LambdaD), SingletonWeight: 1,
		Labels: m.codes,
	}
}

// RSUInput implements App: Data1 is the frame-1 intensity; the per-label
// second data value is the frame-2 intensity at the candidate position
// (the §6 "target location" stream).
func (m *MotionEstimation) RSUInput(lm *img.LabelMap, x, y int) rsu.Input {
	var n [4]fixed.Label
	for i, off := range mrf.NeighborOffsets {
		n[i] = m.codes[lm.At(x+off[0], y+off[1])]
	}
	targets := make([]uint8, m.Window.Size())
	for l := range targets {
		dx, dy := m.Window.Vec(l)
		targets[l] = fixed.Quantize6(m.Frame2.At(x+dx, y+dy))
	}
	return rsu.Input{
		Neighbors:     n,
		Data1:         m.q1[y*m.Frame1.W+x],
		Data2PerLabel: targets,
		Current:       fixed.NewLabel(lm.At(x, y)),
	}
}

// Field converts a label map produced by inference into a vector field.
func (m *MotionEstimation) Field(lm *img.LabelMap) *img.VectorField {
	f := img.NewVectorField(lm.W, lm.H)
	for y := 0; y < lm.H; y++ {
		for x := 0; x < lm.W; x++ {
			dx, dy := m.Window.Vec(lm.At(x, y))
			f.Set(x, y, int8(dx), int8(dy))
		}
	}
	return f
}

// ZeroLabel returns the label index of zero displacement, the natural
// chain initialization.
func (m *MotionEstimation) ZeroLabel() int { return m.Window.Index(0, 0) }

// InitLabels implements App: each pixel starts at its best block match
// (argmin singleton), which is the zero displacement wherever the frames
// already agree.
func (m *MotionEstimation) InitLabels() *img.LabelMap { return ArgminSingletonInit(m.Model()) }
