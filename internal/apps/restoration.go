package apps

import (
	"fmt"

	"repro/internal/fixed"
	"repro/internal/img"
	"repro/internal/mrf"
	"repro/internal/rsu"
)

// Restoration denoises an image by MAP estimation over quantized
// intensity levels — the original application of Gibbs sampling to
// images (Geman & Geman 1984, the paper's ref [11], "Stochastic
// Relaxation, Gibbs Distributions, and the Bayesian Restoration of
// Images"). Labels are M uniformly spaced intensity levels; the
// singleton pulls each pixel toward its observation and the smoothness
// prior suppresses the noise.
//
// Restoration doubles as the end-to-end exercise of the §9 extension:
// with SecondOrder it runs an 8-neighbor prior on the software path and
// an RSU-G8 (diagonal-register) unit on the hardware path.
type Restoration struct {
	Observed *img.Gray
	// Levels6 are the 6-bit intensities of the M labels.
	Levels6 []uint8
	// LambdaD weights axial smoothness; LambdaDiag weights diagonal
	// smoothness when Hood is SecondOrder.
	LambdaD, LambdaDiag float64
	Temperature         float64
	Hood                mrf.Neighborhood

	quantized []uint8
}

// NewRestoration builds the app with nLevels uniformly spaced intensity
// labels (2..8: scalar labels carry 3 bits on the RSU datapath).
func NewRestoration(observed *img.Gray, nLevels int, lambdaD, lambdaDiag, temperature float64, hood mrf.Neighborhood) (*Restoration, error) {
	if observed == nil {
		return nil, fmt.Errorf("apps: nil image")
	}
	if nLevels < 2 || nLevels > 8 {
		return nil, fmt.Errorf("apps: restoration needs 2..8 levels, got %d", nLevels)
	}
	if !registerWeight(lambdaD) || !registerWeight(lambdaDiag) {
		return nil, fmt.Errorf("apps: weights must be small non-negative integers")
	}
	if temperature <= 0 {
		return nil, fmt.Errorf("apps: temperature must be positive")
	}
	if hood != mrf.FirstOrder && hood != mrf.SecondOrder {
		return nil, fmt.Errorf("apps: unknown neighborhood %v", hood)
	}
	r := &Restoration{
		Observed:    observed,
		Levels6:     make([]uint8, nLevels),
		LambdaD:     lambdaD,
		LambdaDiag:  lambdaDiag,
		Temperature: temperature,
		Hood:        hood,
		quantized:   make([]uint8, len(observed.Pix)),
	}
	for l := 0; l < nLevels; l++ {
		// Bucket centers across the 6-bit range.
		r.Levels6[l] = uint8((2*l + 1) * 64 / (2 * nLevels))
	}
	for i, p := range observed.Pix {
		r.quantized[i] = fixed.Quantize6(p)
	}
	return r, nil
}

// Name implements App.
func (r *Restoration) Name() string { return "restoration" }

// Model implements App.
func (r *Restoration) Model() *mrf.Model {
	return &mrf.Model{
		W: r.Observed.W, H: r.Observed.H, M: len(r.Levels6),
		T:       r.Temperature,
		LambdaS: 1, LambdaD: r.LambdaD,
		Hood: r.Hood, LambdaDiag: r.LambdaDiag,
		Singleton: func(x, y, label int) float64 {
			d := int(r.quantized[y*r.Observed.W+x]) - int(r.Levels6[label])
			return float64(d * d)
		},
		Doubleton: mrf.SquaredDiff,
	}
}

// RSUConfig implements App: scalar labels; the diagonal registers are
// enabled for second-order priors (RSU-G8).
func (r *Restoration) RSUConfig() rsu.Config {
	return rsu.Config{
		M: len(r.Levels6), Vector: false,
		DoubletonWeight: uint8(r.LambdaD), SingletonWeight: 1,
		Diagonal:       r.Hood == mrf.SecondOrder,
		DiagonalWeight: uint8(r.LambdaDiag),
	}
}

// RSUInput implements App.
func (r *Restoration) RSUInput(lm *img.LabelMap, x, y int) rsu.Input {
	var n [4]fixed.Label
	for i, off := range mrf.NeighborOffsets {
		n[i] = fixed.NewLabel(lm.At(x+off[0], y+off[1]))
	}
	in := rsu.Input{
		Neighbors:     n,
		Data1:         r.quantized[y*r.Observed.W+x],
		Data2PerLabel: r.Levels6,
		Current:       fixed.NewLabel(lm.At(x, y)),
	}
	if r.Hood == mrf.SecondOrder {
		diag := [4][2]int{{-1, -1}, {1, -1}, {-1, 1}, {1, 1}}
		for i, off := range diag {
			in.NeighborsDiag[i] = fixed.NewLabel(lm.At(x+off[0], y+off[1]))
		}
	}
	return in
}

// InitLabels implements App.
func (r *Restoration) InitLabels() *img.LabelMap { return ArgminSingletonInit(r.Model()) }

// Render converts a label map into the restored image.
func (r *Restoration) Render(lm *img.LabelMap) *img.Gray {
	palette := make([]uint8, len(r.Levels6))
	for i, l := range r.Levels6 {
		palette[i] = fixed.Dequantize6(l)
	}
	return lm.Render(palette)
}
