package apps

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/gibbs"
	"repro/internal/img"
	"repro/internal/mrf"
	"repro/internal/rng"
	"repro/internal/rsu"
)

// faultRSUSampler is rsuSampler with the fault-injection session in the
// loop: every site update runs rsu.SampleFaulty against the site row's
// fault context and applies the session's degradation policy. The fault
// domain is the image row (unit index = y): in the checkerboard engine
// a row is swept by exactly one worker per color pass and BeginSweep
// runs between sweeps only, so the per-unit mutable state is never
// shared between concurrently running goroutines and results are
// invariant to the worker count.
type faultRSUSampler struct {
	app  App
	unit *rsu.Unit
	sess *fault.Session
	buf  []float64 // CMOS fallback kernel scratch
}

// NewFaultRSUSampler returns a gibbs.Factory whose samplers thread the
// fault session through the RSU sampling path. All workers share the
// session (its state is sharded per row); each worker gets its own
// scratch.
func NewFaultRSUSampler(a App, u *rsu.Unit, sess *fault.Session) gibbs.Factory {
	return func() gibbs.Sampler { return &faultRSUSampler{app: a, unit: u, sess: sess} }
}

// Name implements gibbs.Sampler.
func (s *faultRSUSampler) Name() string {
	return fmt.Sprintf("rsu-g%d-%v+faults-%v",
		s.unit.Config().Width, s.unit.Config().Mode, s.sess.Policy())
}

// BeginSweep implements gibbs.SweepAware: it advances the fault session
// to the new sweep (rebuilding each row's active fault effects). The
// session deduplicates by sweep index — every worker's sampler makes
// this call, only the first acts.
func (s *faultRSUSampler) BeginSweep(iteration int) {
	s.sess.BeginSweep(iteration)
}

// SampleSite implements gibbs.Sampler: the per-site policy loop from
// the rsu.SampleFaulty contract. Quarantined rows keep their labels,
// fallback rows run the exact CMOS Gibbs kernel, sampling rows draw on
// the (possibly degraded) RSU and react to the session's verdict —
// redraw on a transient suspect, keep the current label on a reject,
// or switch to the CMOS kernel when the policy escalates mid-sample.
func (s *faultRSUSampler) SampleSite(m *mrf.Model, lm *img.LabelMap, x, y int, src *rng.Source) int {
	uc := s.sess.Unit(y)
	switch uc.Directive() {
	case fault.DirectiveSkip:
		return lm.At(x, y)
	case fault.DirectiveFallback:
		return s.cmosSample(m, lm, x, y, src)
	}
	in := s.app.RSUInput(lm, x, y)
	for tries := 0; ; tries++ {
		label, _ := s.unit.SampleFaulty(in, src, uc)
		switch uc.AfterSample(tries) {
		case fault.ReactAccept:
			return int(label)
		case fault.ReactResample:
			continue
		default: // ReactReject
			// The policy discarded the sample. If it escalated this
			// row to CMOS fallback the site redraws exactly; otherwise
			// the reject keeps the current label (a rejected move).
			if uc.Directive() == fault.DirectiveFallback {
				return s.cmosSample(m, lm, x, y, src)
			}
			return lm.At(x, y)
		}
	}
}

// cmosSample is the exact software Gibbs kernel (the whole-unit
// fallback target): full quality at software cost.
func (s *faultRSUSampler) cmosSample(m *mrf.Model, lm *img.LabelMap, x, y int, src *rng.Source) int {
	s.buf = m.ConditionalRates(s.buf, lm, x, y)
	return src.CategoricalRates(s.buf)
}
