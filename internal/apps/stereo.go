package apps

import (
	"fmt"

	"repro/internal/fixed"
	"repro/internal/img"
	"repro/internal/mrf"
	"repro/internal/rsu"
)

// StereoVision assigns one of M disparity labels to each left-image
// pixel (paper §8.1: "assigns one of 5 labels to align two images",
// ref [39] Tappen & Freeman). A pixel at (x, y) with disparity d
// corresponds to right-image pixel (x-d, y).
type StereoVision struct {
	Left, Right *img.Gray
	NDisp       int
	LambdaD     float64
	Temperature float64

	ql, qr []uint8
}

// NewStereoVision builds the app with disparities 0..nDisp-1.
func NewStereoVision(left, right *img.Gray, nDisp int, lambdaD, temperature float64) (*StereoVision, error) {
	if left == nil || right == nil {
		return nil, fmt.Errorf("apps: nil image")
	}
	if left.W != right.W || left.H != right.H {
		return nil, fmt.Errorf("apps: stereo pair size mismatch")
	}
	if nDisp < 2 || nDisp > 8 {
		return nil, fmt.Errorf("apps: stereo needs 2..8 disparities (3-bit scalar labels), got %d", nDisp)
	}
	if !registerWeight(lambdaD) || temperature <= 0 {
		return nil, fmt.Errorf("apps: invalid lambdaD=%v temperature=%v", lambdaD, temperature)
	}
	s := &StereoVision{
		Left: left, Right: right, NDisp: nDisp,
		LambdaD: lambdaD, Temperature: temperature,
		ql: make([]uint8, len(left.Pix)),
		qr: make([]uint8, len(right.Pix)),
	}
	for i := range left.Pix {
		s.ql[i] = fixed.Quantize6(left.Pix[i])
		s.qr[i] = fixed.Quantize6(right.Pix[i])
	}
	return s, nil
}

// Name implements App.
func (s *StereoVision) Name() string { return "stereo" }

// Model implements App.
func (s *StereoVision) Model() *mrf.Model {
	w, h := s.Left.W, s.Left.H
	return &mrf.Model{
		W: w, H: h, M: s.NDisp,
		T:       s.Temperature,
		LambdaS: 1, LambdaD: s.LambdaD,
		Singleton: func(x, y, label int) float64 {
			a := int(s.ql[y*w+x])
			b := int(fixed.Quantize6(s.Right.At(x-label, y)))
			d := a - b
			return float64(d * d)
		},
		Doubleton: mrf.SquaredDiff,
	}
}

// RSUConfig implements App: scalar disparity labels.
func (s *StereoVision) RSUConfig() rsu.Config {
	return rsu.Config{
		M: s.NDisp, Vector: false,
		DoubletonWeight: uint8(s.LambdaD), SingletonWeight: 1,
	}
}

// RSUInput implements App: the per-label second data value is the
// right-image intensity at each candidate disparity.
func (s *StereoVision) RSUInput(lm *img.LabelMap, x, y int) rsu.Input {
	var n [4]fixed.Label
	for i, off := range mrf.NeighborOffsets {
		n[i] = fixed.NewLabel(lm.At(x+off[0], y+off[1]))
	}
	targets := make([]uint8, s.NDisp)
	for d := range targets {
		targets[d] = fixed.Quantize6(s.Right.At(x-d, y))
	}
	return rsu.Input{
		Neighbors:     n,
		Data1:         s.ql[y*s.Left.W+x],
		Data2PerLabel: targets,
		Current:       fixed.NewLabel(lm.At(x, y)),
	}
}

// InitLabels implements App: each pixel starts at its best-matching
// disparity (argmin singleton).
func (s *StereoVision) InitLabels() *img.LabelMap { return ArgminSingletonInit(s.Model()) }
