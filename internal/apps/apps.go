// Package apps implements the three computer-vision applications the
// paper evaluates (§8.1): image segmentation, dense motion estimation
// and stereo vision — each as a first-order MRF with smoothness priors,
// solvable either by the software Gibbs substrate (internal/gibbs) or by
// an emulated RSU-G unit (internal/rsu).
//
// To keep the exact-software and RSU paths comparable, every application
// defines its clique potentials in the RSU's fixed-point domain: image
// intensities are quantized to 6 bits and energies are the integer
// squared differences the hardware computes. The software model then
// evaluates the *same* integers in floating point, so any divergence
// between the two solvers is due to the hardware's sampling
// approximations (16-level intensity ladder, 8-bit TTF register), not
// the model.
package apps

import (
	"context"
	"fmt"

	"repro/internal/fixed"
	"repro/internal/gibbs"
	"repro/internal/img"
	"repro/internal/mrf"
	"repro/internal/ret"
	"repro/internal/rng"
	"repro/internal/rsu"
)

// App is the common surface of the three applications.
type App interface {
	// Name identifies the application.
	Name() string
	// Model returns the MRF in the shared fixed-point energy domain.
	Model() *mrf.Model
	// RSUInput fills the RSU operands for site (x, y) given the current
	// labeling. The returned Input's Neighbors carry datapath codes.
	RSUInput(lm *img.LabelMap, x, y int) rsu.Input
	// RSUConfig returns the unit configuration (width/mode filled by the
	// caller) matching this application's label space.
	RSUConfig() rsu.Config
	// InitLabels returns a data-driven initial labeling (per-site argmin
	// of the singleton term). A good initialization matters more for the
	// RSU chain than for exact Gibbs: the hardware LUT's dark rung
	// assigns probability zero to labels far outside the intensity
	// ladder's dynamic range, so a state where every label of a site is
	// dark cannot anneal out stochastically.
	InitLabels() *img.LabelMap
}

// ArgminSingletonInit builds the per-site argmin-singleton labeling for
// a model — the shared InitLabels implementation.
func ArgminSingletonInit(m *mrf.Model) *img.LabelMap {
	lm := img.NewLabelMap(m.W, m.H)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			best, bestE := 0, m.Singleton(x, y, 0)
			for l := 1; l < m.M; l++ {
				if e := m.Singleton(x, y, l); e < bestE {
					best, bestE = l, e
				}
			}
			lm.Set(x, y, best)
		}
	}
	return lm
}

// BuildUnit constructs an RSU-G for an application: label space and
// weights from the app, width/mode/circuit from the arguments, and an
// intensity LUT tuned to the app's temperature. A nil circuit selects
// the default high-dynamic-range ladder circuit (see
// ret.DefaultLadderCircuit for why Gibbs accuracy needs it).
func BuildUnit(a App, circuit *ret.Circuit, width int, mode rsu.SamplingMode) (*rsu.Unit, error) {
	if circuit == nil {
		circuit = ret.DefaultLadderCircuit(rng.New(0))
	}
	cfg := a.RSUConfig()
	cfg.Width = width
	cfg.Mode = mode
	cfg.Circuit = circuit
	cfg.ClockHz = 1e9
	u, err := rsu.New(cfg)
	if err != nil {
		return nil, err
	}
	lut, err := rsu.BuildIntensityMap(u.Levels(), a.Model().T)
	if err != nil {
		return nil, err
	}
	u.SetMap(lut)
	return u, nil
}

// rsuSampler adapts an RSU-G unit to the gibbs.Sampler interface: each
// site update stages the neighbor codes and data operands and reads one
// sample, exactly as the §6.1 instruction sequence would.
type rsuSampler struct {
	app  App
	unit *rsu.Unit
}

// NewRSUSampler returns a gibbs.Factory backed by the given unit. The
// unit is stateless during sampling, so all workers may share it.
func NewRSUSampler(a App, u *rsu.Unit) gibbs.Factory {
	return func() gibbs.Sampler { return &rsuSampler{app: a, unit: u} }
}

// Name implements gibbs.Sampler.
func (s *rsuSampler) Name() string {
	return fmt.Sprintf("rsu-g%d-%v", s.unit.Config().Width, s.unit.Config().Mode)
}

// SampleSite implements gibbs.Sampler.
func (s *rsuSampler) SampleSite(m *mrf.Model, lm *img.LabelMap, x, y int, src *rng.Source) int {
	in := s.app.RSUInput(lm, x, y)
	label, _ := s.unit.Sample(in, src)
	return int(label)
}

// neighborCodes gathers the four neighbor datapath codes for site (x,y),
// using replicate padding at the borders (consistent with mrf.Model's
// missing-clique treatment: a replicated neighbor has the site's own
// conditional weight pattern; the RSU hardware always reads four
// neighbor registers, so apps mirror the edge site's nearest neighbor).
func neighborCodes(u *rsu.Unit, lm *img.LabelMap, x, y int) [4]fixed.Label {
	var n [4]fixed.Label
	for i, off := range mrf.NeighborOffsets {
		n[i] = u.LabelCode(lm.At(x+off[0], y+off[1]))
	}
	return n
}

// registerWeight reports whether w is exactly representable in the
// RSU's 8-bit integer weight register. Doubleton weights travel through
// the hardware as integers; the software model only accepts weights
// both paths can carry, so any divergence between the two solvers is a
// sampling effect, never a rounding one.
func registerWeight(w float64) bool {
	if w < 0 || w > 255 {
		return false
	}
	//lint:ignore rsulint/floateq exact round-trip test on a configuration input: the register carries precisely uint8(w), so "is w an integer" must be an exact comparison
	return w == float64(uint8(w))
}

// RunSoftware runs the exact software Gibbs chain on an application.
func RunSoftware(ctx context.Context, a App, init *img.LabelMap, opt gibbs.Options, seed uint64) (*gibbs.Result, error) {
	return gibbs.Run(ctx, a.Model(), init, gibbs.NewExactGibbs(), opt, seed)
}

// RunRSU runs the same chain with the RSU-G emulated sampler.
func RunRSU(ctx context.Context, a App, u *rsu.Unit, init *img.LabelMap, opt gibbs.Options, seed uint64) (*gibbs.Result, error) {
	return gibbs.Run(ctx, a.Model(), init, NewRSUSampler(a, u), opt, seed)
}

// PrecomputeSingleton returns a copy of m whose singleton potential is
// served from a precomputed pixels×labels table — the paper's "Opt GPU"
// memoization (§8.1). The table costs W*H*M float64s, which is the
// scaling problem the paper points out.
func PrecomputeSingleton(m *mrf.Model) *mrf.Model {
	table := make([]float64, m.W*m.H*m.M)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			base := (y*m.W + x) * m.M
			for l := 0; l < m.M; l++ {
				table[base+l] = m.Singleton(x, y, l)
			}
		}
	}
	clone := *m
	clone.Singleton = func(x, y, label int) float64 {
		return table[(y*m.W+x)*m.M+label]
	}
	return &clone
}
