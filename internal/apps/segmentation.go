package apps

import (
	"fmt"
	"sort"

	"repro/internal/fixed"
	"repro/internal/img"
	"repro/internal/mrf"
	"repro/internal/rsu"
)

// Segmentation assigns one of M intensity-cluster labels to each pixel
// (paper §8.1: "assigns one of five possible values (labels) to each
// pixel by grouping similar pixels based on intensity", refs [11, 37]).
//
// Energies live in the RSU fixed-point domain: the singleton is the
// squared difference between the 6-bit pixel intensity and the 6-bit
// label mean; the doubleton is the squared difference of (scalar) label
// indices, which is meaningful because labels are sorted by mean.
type Segmentation struct {
	Image *img.Gray
	// Means6 are the 6-bit label means, sorted ascending.
	Means6 []uint8
	// LambdaD weights the smoothness term; Temperature is the MRF T in
	// fixed-point energy units.
	LambdaD     float64
	Temperature float64

	quantized []uint8 // 6-bit image
}

// NewSegmentation builds the application. means are 8-bit label means
// (e.g. from KMeans1D); they are quantized to 6 bits and sorted.
func NewSegmentation(image *img.Gray, means []uint8, lambdaD, temperature float64) (*Segmentation, error) {
	if image == nil {
		return nil, fmt.Errorf("apps: nil image")
	}
	if len(means) < 2 || len(means) > 8 {
		// Scalar labels carry 3 bits on the RSU datapath (§5.2).
		return nil, fmt.Errorf("apps: segmentation needs 2..8 labels, got %d", len(means))
	}
	if lambdaD < 0 || temperature <= 0 {
		return nil, fmt.Errorf("apps: invalid lambdaD=%v temperature=%v", lambdaD, temperature)
	}
	if !registerWeight(lambdaD) {
		// The RSU doubleton weight is an integer register; keeping the
		// software model identical requires an integer weight.
		return nil, fmt.Errorf("apps: lambdaD must be a small integer, got %v", lambdaD)
	}
	s := &Segmentation{
		Image:       image,
		Means6:      make([]uint8, len(means)),
		LambdaD:     lambdaD,
		Temperature: temperature,
		quantized:   make([]uint8, len(image.Pix)),
	}
	sorted := append([]uint8(nil), means...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, m := range sorted {
		s.Means6[i] = fixed.Quantize6(m)
	}
	for i, p := range image.Pix {
		s.quantized[i] = fixed.Quantize6(p)
	}
	return s, nil
}

// Name implements App.
func (s *Segmentation) Name() string { return "segmentation" }

// Model implements App.
func (s *Segmentation) Model() *mrf.Model {
	return &mrf.Model{
		W: s.Image.W, H: s.Image.H, M: len(s.Means6),
		T:       s.Temperature,
		LambdaS: 1, LambdaD: s.LambdaD,
		Singleton: func(x, y, label int) float64 {
			d := int(s.quantized[y*s.Image.W+x]) - int(s.Means6[label])
			return float64(d * d)
		},
		Doubleton: mrf.SquaredDiff,
	}
}

// RSUConfig implements App: scalar labels, unit doubleton weight (the
// LambdaD weight is folded into the LUT temperature by BuildUnit when
// LambdaD==1; for other weights the doubleton weight register carries
// the integer part).
func (s *Segmentation) RSUConfig() rsu.Config {
	return rsu.Config{
		M: len(s.Means6), Vector: false,
		DoubletonWeight: uint8(s.LambdaD), SingletonWeight: 1,
	}
}

// RSUInput implements App: Data1 is the pixel's 6-bit intensity and the
// per-label second data input is the label's mean (the "target" value
// that changes per label, §5.1).
func (s *Segmentation) RSUInput(lm *img.LabelMap, x, y int) rsu.Input {
	var n [4]fixed.Label
	for i, off := range mrf.NeighborOffsets {
		n[i] = fixed.NewLabel(lm.At(x+off[0], y+off[1]))
	}
	return rsu.Input{
		Neighbors:     n,
		Data1:         s.quantized[y*s.Image.W+x],
		Data2PerLabel: s.Means6,
		Current:       fixed.NewLabel(lm.At(x, y)),
	}
}

// KMeans1D estimates k intensity cluster means from an image by Lloyd's
// algorithm on the 8-bit histogram — the preprocessing step that picks
// the segmentation label means.
func KMeans1D(image *img.Gray, k, iters int) []uint8 {
	if k < 1 {
		panic("apps: KMeans1D needs k >= 1")
	}
	var hist [256]int
	for _, p := range image.Pix {
		hist[p]++
	}
	// Initialize means evenly over the occupied intensity range.
	lo, hi := 0, 255
	for lo < 255 && hist[lo] == 0 {
		lo++
	}
	for hi > 0 && hist[hi] == 0 {
		hi--
	}
	if hi < lo {
		hi = lo
	}
	means := make([]float64, k)
	for i := range means {
		if k == 1 {
			means[i] = float64(lo+hi) / 2
		} else {
			means[i] = float64(lo) + float64(hi-lo)*float64(i)/float64(k-1)
		}
	}
	for it := 0; it < iters; it++ {
		sums := make([]float64, k)
		counts := make([]float64, k)
		for v := 0; v < 256; v++ {
			if hist[v] == 0 {
				continue
			}
			best, bestD := 0, 1e18
			for i, m := range means {
				d := (float64(v) - m) * (float64(v) - m)
				if d < bestD {
					best, bestD = i, d
				}
			}
			sums[best] += float64(v) * float64(hist[v])
			counts[best] += float64(hist[v])
		}
		for i := range means {
			if counts[i] > 0 {
				means[i] = sums[i] / counts[i]
			}
		}
	}
	out := make([]uint8, k)
	for i, m := range means {
		out[i] = uint8(m + 0.5)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// InitLabels implements App: each pixel starts at its nearest mean.
func (s *Segmentation) InitLabels() *img.LabelMap { return ArgminSingletonInit(s.Model()) }
