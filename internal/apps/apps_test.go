package apps

import (
	"context"
	"math"
	"testing"

	"repro/internal/gibbs"
	"repro/internal/img"
	"repro/internal/rng"
	"repro/internal/rsu"
)

func segApp(t testing.TB, w, h int, sigma float64, seed uint64) (*Segmentation, img.Scene) {
	t.Helper()
	src := rng.New(seed)
	scene := img.BlobScene(w, h, 5, sigma, src)
	app, err := NewSegmentation(scene.Image, scene.Means, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	return app, scene
}

func TestNewSegmentationValidation(t *testing.T) {
	im := img.NewGray(8, 8)
	cases := []struct {
		name  string
		means []uint8
		lam   float64
		temp  float64
	}{
		{"one label", []uint8{5}, 1, 10},
		{"nine labels", make([]uint8, 9), 1, 10},
		{"negative lambda", []uint8{1, 2}, -1, 10},
		{"fractional lambda", []uint8{1, 2}, 0.5, 10},
		{"zero temperature", []uint8{1, 2}, 1, 0},
	}
	for _, c := range cases {
		if _, err := NewSegmentation(im, c.means, c.lam, c.temp); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
	if _, err := NewSegmentation(nil, []uint8{1, 2}, 1, 10); err == nil {
		t.Error("nil image accepted")
	}
}

func TestSegmentationMeansSortedAndQuantized(t *testing.T) {
	im := img.NewGray(4, 4)
	app, err := NewSegmentation(im, []uint8{200, 40, 120}, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint8{10, 30, 50} // 40>>2, 120>>2, 200>>2
	for i, m := range want {
		if app.Means6[i] != m {
			t.Fatalf("means %v, want %v", app.Means6, want)
		}
	}
}

// TestSegmentationSoftwareRecoversScene: exact Gibbs on a clean synthetic
// scene should recover the ground truth almost everywhere.
func TestSegmentationSoftwareRecoversScene(t *testing.T) {
	app, scene := segApp(t, 32, 32, 6, 1)
	init := img.NewLabelMap(32, 32)
	res, err := RunSoftware(context.Background(), app, init, gibbs.Options{
		Iterations: 60, BurnIn: 20, Schedule: gibbs.Checkerboard, TrackMode: true,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rate := res.MAP.MislabelRate(scene.Truth); rate > 0.06 {
		t.Fatalf("software mislabel rate %v", rate)
	}
}

// TestSegmentationRSUMatchesSoftware: the RSU-emulated chain must reach
// nearly the same answer as the exact chain — the paper's functional
// claim for RSU-G Gibbs.
func TestSegmentationRSUMatchesSoftware(t *testing.T) {
	app, scene := segApp(t, 32, 32, 6, 3)
	unit, err := BuildUnit(app, nil, 1, rsu.Ideal)
	if err != nil {
		t.Fatal(err)
	}
	init := app.InitLabels()
	opt := gibbs.Options{Iterations: 60, BurnIn: 20, Schedule: gibbs.Checkerboard, TrackMode: true}
	sw, err := RunSoftware(context.Background(), app, init, opt, 5)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := RunRSU(context.Background(), app, unit, init, opt, 6)
	if err != nil {
		t.Fatal(err)
	}
	if rate := hw.MAP.MislabelRate(scene.Truth); rate > 0.10 {
		t.Fatalf("RSU mislabel rate %v", rate)
	}
	if agree := sw.MAP.Agreement(hw.MAP); agree < 0.90 {
		t.Fatalf("software/RSU agreement %v", agree)
	}
}

func TestPrecomputeSingletonEquivalence(t *testing.T) {
	app, _ := segApp(t, 12, 10, 5, 7)
	m := app.Model()
	opt := PrecomputeSingleton(m)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			for l := 0; l < m.M; l++ {
				if m.Singleton(x, y, l) != opt.Singleton(x, y, l) {
					t.Fatalf("precomputed singleton differs at (%d,%d,%d)", x, y, l)
				}
			}
		}
	}
}

func TestKMeans1D(t *testing.T) {
	im := img.NewGray(10, 10)
	for i := range im.Pix {
		if i%2 == 0 {
			im.Pix[i] = 50
		} else {
			im.Pix[i] = 200
		}
	}
	means := KMeans1D(im, 2, 10)
	if len(means) != 2 {
		t.Fatalf("means %v", means)
	}
	if math.Abs(float64(means[0])-50) > 2 || math.Abs(float64(means[1])-200) > 2 {
		t.Fatalf("means %v, want ~[50 200]", means)
	}
}

func TestKMeans1DUniformImage(t *testing.T) {
	im := img.NewGray(4, 4)
	im.Fill(77)
	means := KMeans1D(im, 3, 5)
	for _, m := range means {
		if m < 70 || m > 85 {
			t.Fatalf("uniform-image means %v", means)
		}
	}
}

func TestNewMotionEstimationValidation(t *testing.T) {
	a, b := img.NewGray(8, 8), img.NewGray(8, 8)
	if _, err := NewMotionEstimation(a, img.NewGray(9, 8), 3, 1, 10); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, err := NewMotionEstimation(a, b, 4, 1, 10); err == nil {
		t.Error("radius 4 accepted")
	}
	if _, err := NewMotionEstimation(a, b, 0, 1, 10); err == nil {
		t.Error("radius 0 accepted")
	}
	if _, err := NewMotionEstimation(nil, b, 3, 1, 10); err == nil {
		t.Error("nil frame accepted")
	}
	if _, err := NewMotionEstimation(a, b, 3, 1.5, 10); err == nil {
		t.Error("fractional lambda accepted")
	}
}

// TestMotionSoftwareRecoversField: the exact chain should find the
// translating object's motion.
func TestMotionSoftwareRecoversField(t *testing.T) {
	scene := img.MotionPair(32, 32, 2, -1, 3, 2, rng.New(8))
	app, err := NewMotionEstimation(scene.Frame1, scene.Frame2, 3, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	init := img.NewLabelMap(32, 32)
	for i := range init.Labels {
		init.Labels[i] = uint8(app.ZeroLabel())
	}
	res, err := RunSoftware(context.Background(), app, init, gibbs.Options{
		Iterations: 50, BurnIn: 20, Schedule: gibbs.Checkerboard, TrackMode: true,
	}, 9)
	if err != nil {
		t.Fatal(err)
	}
	field := app.Field(res.MAP)
	if aee := field.AvgEndpointError(scene.Truth); aee > 0.5 {
		t.Fatalf("average endpoint error %v", aee)
	}
}

// TestMotionRSUMatchesSoftware: the 49-label vector-label RSU path.
func TestMotionRSUMatchesSoftware(t *testing.T) {
	scene := img.MotionPair(24, 24, 1, 2, 3, 2, rng.New(10))
	app, err := NewMotionEstimation(scene.Frame1, scene.Frame2, 3, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	unit, err := BuildUnit(app, nil, 4, rsu.Ideal)
	if err != nil {
		t.Fatal(err)
	}
	init := app.InitLabels()
	// Workers > 1 exercises the shared-unit concurrent sampling path.
	opt := gibbs.Options{Iterations: 40, BurnIn: 15, Schedule: gibbs.Checkerboard, Workers: 4, TrackMode: true}
	hw, err := RunRSU(context.Background(), app, unit, init, opt, 12)
	if err != nil {
		t.Fatal(err)
	}
	field := app.Field(hw.MAP)
	if aee := field.AvgEndpointError(scene.Truth); aee > 0.8 {
		t.Fatalf("RSU average endpoint error %v", aee)
	}
}

func TestNewStereoVisionValidation(t *testing.T) {
	a, b := img.NewGray(8, 8), img.NewGray(8, 8)
	if _, err := NewStereoVision(a, img.NewGray(9, 8), 5, 1, 10); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, err := NewStereoVision(a, b, 1, 1, 10); err == nil {
		t.Error("single disparity accepted")
	}
	if _, err := NewStereoVision(a, b, 9, 1, 10); err == nil {
		t.Error("nine disparities accepted")
	}
	if _, err := NewStereoVision(nil, b, 5, 1, 10); err == nil {
		t.Error("nil image accepted")
	}
}

// TestStereoSoftwareRecoversDisparity: exact Gibbs on a synthetic pair.
func TestStereoSoftwareRecoversDisparity(t *testing.T) {
	scene := img.StereoPair(32, 24, 5, 3, 2, rng.New(13))
	app, err := NewStereoVision(scene.Left, scene.Right, 5, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	init := img.NewLabelMap(32, 24)
	res, err := RunSoftware(context.Background(), app, init, gibbs.Options{
		Iterations: 50, BurnIn: 20, Schedule: gibbs.Checkerboard, TrackMode: true,
	}, 14)
	if err != nil {
		t.Fatal(err)
	}
	// Occlusion bands at the disparity edges are genuinely ambiguous;
	// demand accuracy away from perfect.
	if rate := res.MAP.MislabelRate(scene.Truth); rate > 0.12 {
		t.Fatalf("stereo mislabel rate %v", rate)
	}
}

// TestStereoRSUMatchesSoftware: scalar 5-label RSU path on stereo.
func TestStereoRSUMatchesSoftware(t *testing.T) {
	scene := img.StereoPair(24, 20, 5, 2, 2, rng.New(15))
	app, err := NewStereoVision(scene.Left, scene.Right, 5, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	unit, err := BuildUnit(app, nil, 1, rsu.Ideal)
	if err != nil {
		t.Fatal(err)
	}
	init := app.InitLabels()
	opt := gibbs.Options{Iterations: 50, BurnIn: 20, Schedule: gibbs.Checkerboard, TrackMode: true}
	sw, err := RunSoftware(context.Background(), app, init, opt, 17)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := RunRSU(context.Background(), app, unit, init, opt, 18)
	if err != nil {
		t.Fatal(err)
	}
	if agree := sw.MAP.Agreement(hw.MAP); agree < 0.85 {
		t.Fatalf("software/RSU stereo agreement %v", agree)
	}
}

// TestRSUSamplerName: the adapter reports its configuration.
func TestRSUSamplerName(t *testing.T) {
	app, _ := segApp(t, 8, 8, 4, 19)
	unit, err := BuildUnit(app, nil, 4, rsu.Ideal)
	if err != nil {
		t.Fatal(err)
	}
	s := NewRSUSampler(app, unit)()
	if s.Name() != "rsu-g4-ideal" {
		t.Fatalf("sampler name %q", s.Name())
	}
}

func BenchmarkSegmentationSoftwareIteration32(b *testing.B) {
	app, _ := segApp(b, 32, 32, 6, 21)
	init := img.NewLabelMap(32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunSoftware(context.Background(), app, init, gibbs.Options{Iterations: 1}, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSegmentationRSUIteration32(b *testing.B) {
	app, _ := segApp(b, 32, 32, 6, 22)
	unit, err := BuildUnit(app, nil, 1, rsu.Ideal)
	if err != nil {
		b.Fatal(err)
	}
	init := img.NewLabelMap(32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunRSU(context.Background(), app, unit, init, gibbs.Options{Iterations: 1}, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
