// Package ret simulates the molecular-optical substrate of the paper:
// Resonance Energy Transfer (RET) networks and the RET circuits built
// from them (paper §2.3).
//
// RET is the probabilistic, non-radiative transfer of energy between
// chromophores a few nanometers apart. A RET network — chromophores in a
// fixed geometry — behaves as a continuous-time Markov chain whose
// time-to-fluorescence (TTF) follows a phase-type distribution; such
// networks can approximate virtually arbitrary probabilistic behavior
// (Wang, Lebeck & Dwyer, IEEE Micro 2015, paper ref [42]).
//
// The paper's RSU-G uses the simplest network: an exponential sampler.
// Illuminating the network with QD-LEDs drives Poisson photon
// absorption; the first fluorescence photon detected by a SPAD arrives
// after an (approximately) exponentially distributed time whose rate is
// proportional to the optical excitation intensity. Intensity is
// therefore the distribution parameter.
//
// We cannot fabricate chromophore networks, so this package implements
// the closest synthetic equivalent: exact stochastic simulation of the
// excitation/transfer/emission/detection chain, with the noise sources
// the paper discusses (quantum efficiency, dark counts, timing jitter).
// The rest of the system consumes only the TTF samples, exactly as the
// CMOS side of an RSU would.
package ret

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Physical default constants (order-of-magnitude values from the paper's
// component citations; see DESIGN.md).
const (
	// DefaultLifetime is a typical chromophore fluorescence lifetime.
	DefaultLifetime = 4e-9 // seconds
	// DefaultQuantumYield is the probability an absorbed excitation
	// produces a fluorescence photon rather than decaying non-radiatively.
	DefaultQuantumYield = 0.8
	// DefaultSPADEfficiency is the single-photon detection efficiency.
	DefaultSPADEfficiency = 0.4
	// DefaultDarkRate is the SPAD dark-count rate in Hz.
	DefaultDarkRate = 100.0
	// DefaultJitterSigma is the SPAD timing jitter (std dev, seconds).
	DefaultJitterSigma = 50e-12
)

// ForsterRate returns the donor→acceptor energy transfer rate
// k = (1/τ_D) (R0/r)^6 for donor lifetime tauD, Förster radius r0 and
// separation r (Förster theory; paper ref [41]). It panics on
// non-positive arguments.
func ForsterRate(tauD, r0, r float64) float64 {
	if tauD <= 0 || r0 <= 0 || r <= 0 {
		panic("ret: ForsterRate arguments must be positive")
	}
	ratio := r0 / r
	r2 := ratio * ratio
	return (1 / tauD) * r2 * r2 * r2
}

// TransferEfficiency returns the FRET efficiency E = 1 / (1 + (r/R0)^6):
// the probability that an excited donor transfers to the acceptor rather
// than decaying.
func TransferEfficiency(r0, r float64) float64 {
	if r0 <= 0 || r <= 0 {
		panic("ret: TransferEfficiency arguments must be positive")
	}
	ratio := r / r0
	r2 := ratio * ratio
	return 1 / (1 + r2*r2*r2)
}

// Transition is one outgoing CTMC edge from a network state.
type Transition struct {
	To   int     // destination state; ignored when Emit or Lost
	Rate float64 // transition rate (Hz), > 0
	Emit bool    // transition produces the output fluorescence photon
	Lost bool    // transition loses the excitation (non-radiative decay)
}

// Network is a RET network modeled as a CTMC over exciton positions.
// State i's outgoing transitions are Edges[i]. An excitation enters at
// Start and wanders until an Emit transition (photon at the output
// chromophore) or a Lost transition (quenched). Phase-type TTF
// distributions arise exactly this way (paper ref [42]).
type Network struct {
	Edges [][]Transition
	Start int
}

// Validate checks structural invariants: start in range, every edge rate
// positive, every non-terminal destination in range, and every state
// having at least one outgoing transition (no absorbing non-terminal
// states, which would hang sampling).
func (n *Network) Validate() error {
	if n.Start < 0 || n.Start >= len(n.Edges) {
		return fmt.Errorf("ret: start state %d outside [0,%d)", n.Start, len(n.Edges))
	}
	for s, edges := range n.Edges {
		if len(edges) == 0 {
			return fmt.Errorf("ret: state %d has no outgoing transitions", s)
		}
		for _, e := range edges {
			if e.Rate <= 0 || math.IsNaN(e.Rate) || math.IsInf(e.Rate, 0) {
				return fmt.Errorf("ret: state %d has non-positive rate %v", s, e.Rate)
			}
			if !e.Emit && !e.Lost && (e.To < 0 || e.To >= len(n.Edges)) {
				return fmt.Errorf("ret: state %d transition to invalid state %d", s, e.To)
			}
		}
	}
	return nil
}

// SampleRelaxation follows one excitation through the network and
// returns the time until it leaves the system and whether it produced
// the output photon (emitted=true) or was lost.
func (n *Network) SampleRelaxation(src *rng.Source) (t float64, emitted bool) {
	state := n.Start
	for {
		edges := n.Edges[state]
		total := 0.0
		for _, e := range edges {
			total += e.Rate
		}
		t += src.Exponential(total)
		// Select the competing transition proportionally to rate.
		u := src.Float64() * total
		acc := 0.0
		chosen := edges[len(edges)-1]
		for _, e := range edges {
			acc += e.Rate
			if u < acc {
				chosen = e
				break
			}
		}
		switch {
		case chosen.Emit:
			return t, true
		case chosen.Lost:
			return t, false
		default:
			state = chosen.To
		}
	}
}

// EmissionProbability estimates by simulation the probability that an
// excitation produces an output photon.
func (n *Network) EmissionProbability(trials int, src *rng.Source) float64 {
	hits := 0
	for i := 0; i < trials; i++ {
		if _, ok := n.SampleRelaxation(src); ok {
			hits++
		}
	}
	return float64(hits) / float64(trials)
}

// SingleChromophore builds the trivial one-chromophore network: radiative
// decay (emission) at rate qy/τ and non-radiative decay at (1-qy)/τ.
// Its relaxation time is Exp(1/τ) and emission probability is qy.
func SingleChromophore(lifetime, quantumYield float64) *Network {
	if lifetime <= 0 || quantumYield <= 0 || quantumYield > 1 {
		panic("ret: SingleChromophore parameters out of range")
	}
	edges := []Transition{{Rate: quantumYield / lifetime, Emit: true}}
	if quantumYield < 1 {
		edges = append(edges, Transition{Rate: (1 - quantumYield) / lifetime, Lost: true})
	}
	return &Network{Edges: [][]Transition{edges}, Start: 0}
}

// DonorAcceptorChain builds a linear chain of n chromophores where each
// non-terminal chromophore transfers to the next with the Förster rate
// for separation r (radius r0), each decays non-radiatively at
// (1-qy)/τ, and only the terminal chromophore emits (rate qy/τ).
// Intermediate radiative decay is treated as loss because its photon is
// outside the SPAD's filter band — the standard cascade-network design.
func DonorAcceptorChain(n int, lifetime, quantumYield, r0, r float64) *Network {
	if n < 1 {
		panic("ret: DonorAcceptorChain needs at least one chromophore")
	}
	if lifetime <= 0 || quantumYield <= 0 || quantumYield > 1 {
		panic("ret: DonorAcceptorChain parameters out of range")
	}
	k := ForsterRate(lifetime, r0, r)
	net := &Network{Edges: make([][]Transition, n), Start: 0}
	for i := 0; i < n; i++ {
		if i == n-1 {
			edges := []Transition{{Rate: quantumYield / lifetime, Emit: true}}
			if quantumYield < 1 {
				edges = append(edges, Transition{Rate: (1 - quantumYield) / lifetime, Lost: true})
			}
			net.Edges[i] = edges
		} else {
			net.Edges[i] = []Transition{
				{To: i + 1, Rate: k},
				{Rate: 1 / lifetime, Lost: true}, // decay off-band
			}
		}
	}
	return net
}

// BernoulliNetwork builds a two-acceptor RET network that implements a
// Bernoulli(p) sampler — one of the composable primitives of the
// underlying device paper (ref [42]): a donor transfers to acceptor A
// (whose fluorescence is in the detector's band) with probability p, or
// to a quenching acceptor B otherwise. The transfer-rate split is chosen
// so that P(emit) = p exactly, accounting for the donor's own decay.
// It panics unless 0 < p < 1 and lifetime > 0.
func BernoulliNetwork(p, lifetime float64) *Network {
	if p <= 0 || p >= 1 || lifetime <= 0 {
		panic("ret: BernoulliNetwork needs 0 < p < 1 and positive lifetime")
	}
	d := 1 / lifetime
	// Total transfer rate well above the decay rate, and large enough
	// that kA = p(T+d) <= T has slack.
	t := 100 * d * (1 + p/(1-p))
	ka := p * (t + d)
	kb := t - ka
	return &Network{
		Start: 0,
		Edges: [][]Transition{
			{ // donor: transfer to A, transfer to B, or decay off-band
				{To: 1, Rate: ka},
				{To: 2, Rate: kb},
				{Rate: d, Lost: true},
			},
			{{Rate: d, Emit: true}}, // acceptor A: in-band emission
			{{Rate: d, Lost: true}}, // acceptor B: quenched
		},
	}
}
