package ret

import (
	"sync"
	"testing"

	"repro/internal/rng"
)

// TestAgingCircuitPerWorkerOwnership enforces the AgingCircuit
// ownership rule under the race detector: the sweep-engine pattern is
// one AgingCircuit per worker (per physical RET replica), all sharing
// the immutable base Circuit, each mutated only by its owner. Run with
// `go test -race` (the Makefile race target does): a violation of the
// rule — any cross-worker Charge on a shared wrapper — would be flagged
// by the detector, and the per-worker results must be bit-identical to
// driving the same workload sequentially, proving the workers shared no
// aging state.
func TestAgingCircuitPerWorkerOwnership(t *testing.T) {
	const workers = 8
	const chargesPerWorker = 500
	base := DefaultLadderCircuit(rng.New(3))

	// Each worker owns one wrapper; the base circuit is shared read-only.
	aged := make([]*AgingCircuit, workers)
	for w := range aged {
		a, err := NewAgingCircuit(base, Wearout{MeanExcitations: 1e5})
		if err != nil {
			t.Fatal(err)
		}
		aged[w] = a
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			a := aged[w]
			// Distinct per-worker drive patterns, so identical results
			// could not come from accidental symmetry.
			code := uint8(w % 16)
			for i := 0; i < chargesPerWorker; i++ {
				a.Charge(code, 1e-6)
				_ = a.EffectiveRate(code)
			}
		}(w)
	}
	wg.Wait()

	for w := 0; w < workers; w++ {
		ref, err := NewAgingCircuit(base, Wearout{MeanExcitations: 1e5})
		if err != nil {
			t.Fatal(err)
		}
		code := uint8(w % 16)
		for i := 0; i < chargesPerWorker; i++ {
			ref.Charge(code, 1e-6)
		}
		if got, want := aged[w].Absorbed(), ref.Absorbed(); got != want {
			t.Errorf("worker %d: absorbed %v, sequential reference %v — aging state leaked across workers", w, got, want)
		}
		if got, want := aged[w].SurvivingFraction(), ref.SurvivingFraction(); got != want {
			t.Errorf("worker %d: surviving fraction %v, want %v", w, got, want)
		}
	}
}
