package ret

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Chromophore longevity (§9): "the presence of oxygen limits the number
// of excitation cycles through the equivalent of a wear-out process. We
// can address this issue in two ways: 1) using a larger number of RET
// networks per RET circuit and 2) encapsulating the chromophores to
// protect against oxygen."
//
// This file models that wear-out. Each network photobleaches after a
// geometrically distributed number of absorbed excitations with mean
// MeanExcitations; for the large ensembles a RET circuit carries, the
// fraction of surviving networks after the ensemble has absorbed E
// excitations total is exp(-E / (N * MeanExcitations)) — each
// excitation lands on a uniformly random surviving network. A dead
// network neither transfers nor emits, so the circuit's effective
// sampling rate decays by the surviving fraction.

// Wearout parameterizes the photobleaching process.
type Wearout struct {
	// MeanExcitations is the expected excitation count a chromophore
	// network survives. +Inf (or 0, treated as disabled) models
	// encapsulated chromophores.
	MeanExcitations float64
}

// Enabled reports whether wear-out is active.
func (w Wearout) Enabled() bool {
	return w.MeanExcitations > 0 && !math.IsInf(w.MeanExcitations, 1)
}

// AgingCircuit wraps a Circuit with wear-out tracking. It is NOT safe
// for concurrent use: the absorbed-count is mutable state, as it is in
// the physical device.
//
// Ownership rule (the rsulint `rngshare` discipline, applied to aging
// state): every concurrent worker must own its own AgingCircuit — one
// per physical RET replica, created by the worker (or the per-replica
// unit) that drives it, and never handed across goroutines. The
// embedded *Circuit is immutable after construction and MAY be shared;
// only the AgingCircuit wrapper is single-owner. The sweep engine
// follows the same pattern as its RNG streams: anything mutated during
// a sweep is per-worker, so results are independent of the worker
// count and the race detector stays quiet (see the per-worker test in
// wearout_race_test.go).
type AgingCircuit struct {
	*Circuit
	Wear Wearout

	absorbed float64 // total excitations absorbed by the ensemble
}

// NewAgingCircuit wraps circuit with a wear-out model.
func NewAgingCircuit(c *Circuit, w Wearout) (*AgingCircuit, error) {
	if c == nil {
		return nil, fmt.Errorf("ret: nil circuit")
	}
	if w.MeanExcitations < 0 || math.IsNaN(w.MeanExcitations) {
		return nil, fmt.Errorf("ret: invalid MeanExcitations %v", w.MeanExcitations)
	}
	return &AgingCircuit{Circuit: c, Wear: w}, nil
}

// SurvivingFraction returns the fraction of the ensemble still optically
// active.
func (a *AgingCircuit) SurvivingFraction() float64 {
	if !a.Wear.Enabled() {
		return 1
	}
	capacity := float64(a.Ensemble) * a.Wear.MeanExcitations
	return math.Exp(-a.absorbed / capacity)
}

// Absorbed returns the total excitation count charged so far.
func (a *AgingCircuit) Absorbed() float64 { return a.absorbed }

// agingBinaryLen is the MarshalBinary output size: the absorbed-count
// IEEE-754 bit pattern.
const agingBinaryLen = 8

// MarshalBinary implements encoding.BinaryMarshaler for a checkpoint
// section: the absorbed excitation count, word-exact. The Circuit and
// Wearout parameters are construction-time configuration covered by the
// checkpoint fingerprint, not mutable state, so only the age itself is
// serialized.
func (a *AgingCircuit) MarshalBinary() ([]byte, error) {
	buf := make([]byte, agingBinaryLen)
	binary.LittleEndian.PutUint64(buf, math.Float64bits(a.absorbed))
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, restoring the
// absorbed count onto a circuit built with the same configuration.
func (a *AgingCircuit) UnmarshalBinary(data []byte) error {
	if len(data) != agingBinaryLen {
		return fmt.Errorf("ret: aging state is %d bytes, want %d", len(data), agingBinaryLen)
	}
	absorbed := math.Float64frombits(binary.LittleEndian.Uint64(data))
	if !(absorbed >= 0) { // NaN fails the comparison
		return fmt.Errorf("ret: negative or NaN absorbed count %v", absorbed)
	}
	a.absorbed = absorbed
	return nil
}

// EffectiveRate returns the aged detected-photon rate for a code.
func (a *AgingCircuit) EffectiveRate(code uint8) float64 {
	return a.Circuit.EffectiveRate(code) * a.SurvivingFraction()
}

// Charge records the excitations of one sampling operation: driving the
// LEDs at `code` for `duration` seconds absorbs excitationRate×duration
// photons across the ensemble (each costs one excitation cycle whether
// or not it emits).
func (a *AgingCircuit) Charge(code uint8, duration float64) {
	if !a.Wear.Enabled() || duration <= 0 {
		return
	}
	a.absorbed += a.LEDs.Rate(code) * float64(a.Ensemble) * a.SurvivingFraction() * duration
}

// OperationsUntil returns how many sampling operations (each driving
// the LEDs at `code` for `duration`) the circuit sustains before its
// effective rate drops below `fraction` of fresh. Returns +Inf when
// wear-out is disabled. The closed form inverts the exponential decay:
// operations = -ln(fraction) × capacity / (perOp), where perOp is the
// *initial* per-operation absorption (a slight underestimate of
// lifetime, since aged ensembles absorb less — the conservative bound a
// designer wants).
func (a *AgingCircuit) OperationsUntil(fraction float64, code uint8, duration float64) float64 {
	if !a.Wear.Enabled() {
		return math.Inf(1)
	}
	if fraction <= 0 || fraction >= 1 {
		panic("ret: fraction must be in (0,1)")
	}
	perOp := a.LEDs.Rate(code) * float64(a.Ensemble) * duration
	if perOp <= 0 {
		return math.Inf(1)
	}
	capacity := float64(a.Ensemble) * a.Wear.MeanExcitations
	return -math.Log(fraction) * capacity / perOp
}
