package ret

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestForsterRate(t *testing.T) {
	tau := 4e-9
	// At r == R0 the transfer rate equals the decay rate 1/τ.
	if got := ForsterRate(tau, 5e-9, 5e-9); math.Abs(got-1/tau) > 1e-3/tau {
		t.Fatalf("ForsterRate at R0 = %v, want %v", got, 1/tau)
	}
	// Halving the distance multiplies the rate by 2^6 = 64.
	near := ForsterRate(tau, 5e-9, 2.5e-9)
	if math.Abs(near-64/tau) > 1e-3*64/tau {
		t.Fatalf("ForsterRate at R0/2 = %v, want %v", near, 64/tau)
	}
}

func TestForsterRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ForsterRate(0, 1, 1)
}

func TestTransferEfficiency(t *testing.T) {
	if got := TransferEfficiency(5e-9, 5e-9); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("efficiency at R0 = %v, want 0.5", got)
	}
	if got := TransferEfficiency(5e-9, 1e-9); got < 0.99 {
		t.Fatalf("efficiency at close range = %v", got)
	}
	if got := TransferEfficiency(5e-9, 20e-9); got > 0.01 {
		t.Fatalf("efficiency at long range = %v", got)
	}
}

func TestNetworkValidate(t *testing.T) {
	good := SingleChromophore(4e-9, 0.8)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid network rejected: %v", err)
	}
	bad := []*Network{
		{Edges: [][]Transition{{{Rate: 1, Emit: true}}}, Start: 5},
		{Edges: [][]Transition{{}}, Start: 0},
		{Edges: [][]Transition{{{Rate: 0, Emit: true}}}, Start: 0},
		{Edges: [][]Transition{{{Rate: 1, To: 7}}}, Start: 0},
	}
	for i, n := range bad {
		if err := n.Validate(); err == nil {
			t.Errorf("bad network %d accepted", i)
		}
	}
}

// TestSingleChromophoreRelaxation: relaxation time must be Exp(1/τ)
// regardless of outcome, and emission probability must equal the yield.
func TestSingleChromophoreRelaxation(t *testing.T) {
	src := rng.New(1)
	n := SingleChromophore(4e-9, 0.75)
	const trials = 100000
	times := make([]float64, 0, trials)
	emits := 0
	for i := 0; i < trials; i++ {
		tt, ok := n.SampleRelaxation(src)
		times = append(times, tt)
		if ok {
			emits++
		}
	}
	if ks := rng.KSExponential(times, 1/4e-9); ks > 1.95/math.Sqrt(trials) {
		t.Fatalf("relaxation KS %v", ks)
	}
	if p := float64(emits) / trials; math.Abs(p-0.75) > 0.01 {
		t.Fatalf("emission probability %v, want 0.75", p)
	}
}

func TestSingleChromophorePanics(t *testing.T) {
	for _, f := range []func(){
		func() { SingleChromophore(0, 0.5) },
		func() { SingleChromophore(1e-9, 0) },
		func() { SingleChromophore(1e-9, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// TestChainEmissionProbability: for a 2-chromophore chain, emission
// requires a successful transfer (k/(k+1/τ)) then terminal emission (qy).
func TestChainEmissionProbability(t *testing.T) {
	src := rng.New(2)
	tau, qy := 4e-9, 0.9
	r0, r := 5e-9, 5e-9 // transfer rate == decay rate -> transfer prob 0.5
	n := DonorAcceptorChain(2, tau, qy, r0, r)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	got := n.EmissionProbability(200000, src)
	want := 0.5 * qy
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("chain emission probability %v, want %v", got, want)
	}
}

// TestChainIsPhaseType: a longer chain has a non-exponential (phase-type)
// relaxation distribution — its coefficient of variation is below 1,
// unlike an exponential. This is the generality claim of ref [42].
func TestChainIsPhaseType(t *testing.T) {
	src := rng.New(3)
	// Transfer rate == decay rate: conditional on emission the relaxation
	// is hypoexponential with rates (2,2,2,1)/τ, CV ≈ 0.53.
	n := DonorAcceptorChain(4, 4e-9, 1.0, 6e-9, 6e-9)
	const trials = 50000
	times := make([]float64, 0, trials)
	for i := 0; i < trials; i++ {
		tt, ok := n.SampleRelaxation(src)
		if ok {
			times = append(times, tt)
		}
	}
	s := rng.Summarize(times)
	cv := math.Sqrt(s.Variance) / s.Mean
	if cv > 0.95 {
		t.Fatalf("chain relaxation CV %v; expected hypoexponential (<1)", cv)
	}
}

func TestLEDBankRates(t *testing.T) {
	b := BinaryWeightedBank(10)
	if b.Rate(0) != 0 {
		t.Fatal("code 0 should be dark")
	}
	if b.Rate(15) != 150 {
		t.Fatalf("code 15 rate %v, want 150", b.Rate(15))
	}
	if b.Rate(5) != 50 { // LEDs 0 and 2: 10 + 40
		t.Fatalf("code 5 rate %v, want 50", b.Rate(5))
	}
	levels := b.Levels()
	for c := 1; c < 16; c++ {
		if levels[c] != float64(c)*10 {
			t.Fatalf("binary ladder not linear at %d: %v", c, levels[c])
		}
	}
}

func TestLEDBankPanics(t *testing.T) {
	b := BinaryWeightedBank(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 5-bit code")
		}
	}()
	b.Rate(16)
}

func TestGeometricBankDynamicRange(t *testing.T) {
	b := GeometricBank(1, 4)
	// max/min positive level = (1+4+16+64)/1 = 85
	if got := b.Rate(15) / b.Rate(1); got != 85 {
		t.Fatalf("geometric dynamic range %v, want 85", got)
	}
}

func TestSPADValidate(t *testing.T) {
	if err := (SPAD{Efficiency: 0.4}).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, s := range []SPAD{
		{Efficiency: 0},
		{Efficiency: 1.1},
		{Efficiency: 0.5, DarkRate: -1},
		{Efficiency: 0.5, JitterSigma: -1},
	} {
		if err := s.Validate(); err == nil {
			t.Errorf("bad SPAD %+v accepted", s)
		}
	}
}

func TestNewCircuitRejectsBadParts(t *testing.T) {
	src := rng.New(4)
	net := SingleChromophore(4e-9, 0.8)
	det := SPAD{Efficiency: 0.4}
	if _, err := NewCircuit(BinaryWeightedBank(1e9), net, 0, det, src); err == nil {
		t.Error("zero ensemble accepted")
	}
	if _, err := NewCircuit(BinaryWeightedBank(1e9), net, 1, SPAD{}, src); err == nil {
		t.Error("invalid SPAD accepted")
	}
	if _, err := NewCircuit(BinaryWeightedBank(1e9), &Network{Edges: [][]Transition{{}}, Start: 0}, 1, det, src); err == nil {
		t.Error("invalid network accepted")
	}
}

// fastCircuit builds a noiseless circuit whose chromophore relaxation
// (1 ps) is negligible against the mean TTF (>= 1 ns), so the TTF is
// exponential to high accuracy: the clean regime for distribution tests.
func fastCircuit(t testing.TB, src *rng.Source) *Circuit {
	t.Helper()
	c, err := NewCircuit(
		BinaryWeightedBank(1e9/15/0.4), // code 15 -> ~1e9 detected Hz
		SingleChromophore(1e-12, 1.0),
		1,
		SPAD{Efficiency: 0.4},
		src,
	)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCircuitTTFIsExponential: the core physical contract — TTF at a
// fixed code follows Exp(EffectiveRate) when relaxation is negligible.
func TestCircuitTTFIsExponential(t *testing.T) {
	src := rng.New(5)
	c := fastCircuit(t, src)
	for _, code := range []uint8{3, 15} {
		rate := c.EffectiveRate(code)
		const trials = 30000
		xs := make([]float64, trials)
		for i := range xs {
			xs[i] = c.SampleTTF(code, 1e-3, src)
		}
		s := rng.Summarize(xs)
		if math.Abs(s.Mean-1/rate) > 0.05/rate {
			t.Errorf("code %d: mean TTF %v, want ~%v", code, s.Mean, 1/rate)
		}
		if ks := rng.KSExponential(xs, rate); ks > 2.2/math.Sqrt(trials) {
			t.Errorf("code %d: KS %v against Exp(%v)", code, ks, rate)
		}
	}
}

// TestCircuitPhotonPileupShortensTTF: with a slow chromophore (lifetime
// comparable to the mean TTF), overlapping relaxations make the first
// detection arrive EARLIER than 1/rate + lifetime — the displaced-
// Poisson effect that degrades parameterization accuracy at high
// intensities, consistent with the prototype's larger error at large
// ratios (§7).
func TestCircuitPhotonPileupShortensTTF(t *testing.T) {
	src := rng.New(55)
	c := DefaultCircuit(src)
	c.Detector.DarkRate = 0
	c.Detector.JitterSigma = 0
	rate := c.EffectiveRate(15)
	const trials = 20000
	sum := 0.0
	for i := 0; i < trials; i++ {
		sum += c.SampleTTF(15, 1e-3, src)
	}
	mean := sum / trials
	naive := 1/rate + DefaultLifetime
	if mean >= naive {
		t.Fatalf("pileup mean %v not below naive %v", mean, naive)
	}
	if mean <= 1/rate/2 {
		t.Fatalf("mean %v implausibly small vs 1/rate %v", mean, 1/rate)
	}
}

// TestCircuitRelativeRates: first-to-fire between two codes must select
// each in proportion to its effective rate — the parameterization
// property the macro prototype demonstrates (§7).
func TestCircuitRelativeRates(t *testing.T) {
	src := rng.New(6)
	c := fastCircuit(t, src)
	codeA, codeB := uint8(12), uint8(3)
	wantA := c.EffectiveRate(codeA) / (c.EffectiveRate(codeA) + c.EffectiveRate(codeB))
	const trials = 40000
	winsA := 0
	for i := 0; i < trials; i++ {
		ta := c.SampleTTF(codeA, 1e-3, src)
		tb := c.SampleTTF(codeB, 1e-3, src)
		if ta < tb {
			winsA++
		}
	}
	got := float64(winsA) / trials
	if math.Abs(got-wantA) > 0.015 {
		t.Fatalf("P(A first) = %v, want %v", got, wantA)
	}
}

func TestCircuitDarkCode(t *testing.T) {
	src := rng.New(7)
	c := DefaultCircuit(src)
	c.Detector.DarkRate = 0
	if ttf := c.SampleTTF(0, 1e-6, src); !math.IsInf(ttf, 1) {
		t.Fatalf("dark code fired at %v", ttf)
	}
	// With dark counts, code 0 eventually fires.
	c.Detector.DarkRate = 1e12
	if ttf := c.SampleTTF(0, 1e-6, src); math.IsInf(ttf, 1) {
		t.Fatal("dark counts never fired")
	}
}

func TestCircuitTTFNonNegative(t *testing.T) {
	src := rng.New(8)
	c := DefaultCircuit(src)
	c.Detector.JitterSigma = 1e-9 // exaggerated jitter
	for i := 0; i < 5000; i++ {
		if ttf := c.SampleTTF(15, 1e-3, src); ttf < 0 {
			t.Fatalf("negative TTF %v", ttf)
		}
	}
}

// Property: EffectiveRate is monotone in the binary-weighted code.
func TestEffectiveRateMonotoneBinary(t *testing.T) {
	src := rng.New(9)
	c := DefaultCircuit(src)
	f := func(a, b uint8) bool {
		ca, cb := a&15, b&15
		if ca > cb {
			ca, cb = cb, ca
		}
		return c.EffectiveRate(ca) <= c.EffectiveRate(cb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCircuitSampleTTF(b *testing.B) {
	src := rng.New(1)
	c := DefaultCircuit(src)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = c.SampleTTF(7, 1e-6, src)
	}
	_ = sink
}

func BenchmarkChainRelaxation(b *testing.B) {
	src := rng.New(1)
	n := DonorAcceptorChain(4, 4e-9, 0.9, 6e-9, 3e-9)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink, _ = n.SampleRelaxation(src)
	}
	_ = sink
}

// TestBernoulliNetworkProbability: the two-acceptor network emits with
// exactly the designed probability — the composable Bernoulli primitive
// of ref [42].
func TestBernoulliNetworkProbability(t *testing.T) {
	src := rng.New(81)
	for _, p := range []float64{0.1, 0.37, 0.5, 0.9} {
		n := BernoulliNetwork(p, 4e-9)
		if err := n.Validate(); err != nil {
			t.Fatal(err)
		}
		got := n.EmissionProbability(200000, src)
		if math.Abs(got-p) > 0.005 {
			t.Errorf("p=%v: emission probability %v", p, got)
		}
	}
}

func TestBernoulliNetworkPanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.2, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("p=%v accepted", p)
				}
			}()
			BernoulliNetwork(p, 4e-9)
		}()
	}
}
