package ret

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func agingCircuit(t *testing.T, mean float64) *AgingCircuit {
	t.Helper()
	src := rng.New(41)
	a, err := NewAgingCircuit(DefaultLadderCircuit(src), Wearout{MeanExcitations: mean})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewAgingCircuitValidation(t *testing.T) {
	src := rng.New(42)
	c := DefaultLadderCircuit(src)
	if _, err := NewAgingCircuit(nil, Wearout{}); err == nil {
		t.Error("nil circuit accepted")
	}
	if _, err := NewAgingCircuit(c, Wearout{MeanExcitations: -1}); err == nil {
		t.Error("negative mean accepted")
	}
	if _, err := NewAgingCircuit(c, Wearout{MeanExcitations: math.NaN()}); err == nil {
		t.Error("NaN mean accepted")
	}
}

func TestEncapsulatedNeverAges(t *testing.T) {
	a := agingCircuit(t, 0) // disabled = encapsulated
	fresh := a.EffectiveRate(15)
	for i := 0; i < 1000; i++ {
		a.Charge(15, 1e-6)
	}
	if a.SurvivingFraction() != 1 {
		t.Fatalf("encapsulated circuit aged: %v", a.SurvivingFraction())
	}
	if a.EffectiveRate(15) != fresh {
		t.Fatal("encapsulated rate changed")
	}
	if !math.IsInf(a.OperationsUntil(0.9, 15, 1e-6), 1) {
		t.Fatal("encapsulated lifetime should be infinite")
	}
}

// TestWearoutDecaysExponentially: the surviving fraction must follow
// exp(-absorbed/capacity).
func TestWearoutDecaysExponentially(t *testing.T) {
	a := agingCircuit(t, 1e6)
	capacity := float64(a.Ensemble) * 1e6
	// Charge exactly half the capacity (in small steps so the
	// self-shielding of aged ensembles shows up in Absorbed, not here).
	for a.Absorbed() < capacity/2 {
		a.Charge(15, 1e-3)
	}
	want := math.Exp(-a.Absorbed() / capacity)
	if got := a.SurvivingFraction(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("surviving fraction %v, want %v", got, want)
	}
	if got := a.EffectiveRate(15) / a.Circuit.EffectiveRate(15); math.Abs(got-want) > 1e-12 {
		t.Fatalf("rate scaling %v, want %v", got, want)
	}
}

// TestEnsembleOversizingExtendsLifetime: §9 mitigation 1 — a K-times
// larger ensemble survives K^2 times as many identical sampling
// operations to the same degradation level (capacity scales with N and
// per-operation absorption is spread over N networks... per-op
// absorption also scales with N at fixed LED drive, so the net lifetime
// gain is linear in per-network terms; we assert the designed behavior
// directly via OperationsUntil).
func TestEnsembleOversizingExtendsLifetime(t *testing.T) {
	src := rng.New(43)
	small := DefaultLadderCircuit(src)
	big := DefaultLadderCircuit(src)
	big.Ensemble = small.Ensemble * 10
	// Same target sampling rate: the LED drive per network is fixed, so
	// the big ensemble absorbs 10x faster but has 10x capacity; to hold
	// the *circuit* rate constant the designer dims the LEDs 10x, which
	// is the real win. Model that by dividing the weights.
	for i := range big.LEDs.Weights {
		big.LEDs.Weights[i] /= 10
	}
	aSmall, err := NewAgingCircuit(small, Wearout{MeanExcitations: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	aBig, err := NewAgingCircuit(big, Wearout{MeanExcitations: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	// Equal sampling behavior (up to the Monte Carlo estimate of the
	// emission probability, re-drawn per circuit)...
	if math.Abs(aSmall.EffectiveRate(15)/aBig.EffectiveRate(15)-1) > 0.01 {
		t.Fatalf("rates differ: %v vs %v", aSmall.EffectiveRate(15), aBig.EffectiveRate(15))
	}
	// ...but 10x the lifetime.
	lifeSmall := aSmall.OperationsUntil(0.9, 15, 4e-9)
	lifeBig := aBig.OperationsUntil(0.9, 15, 4e-9)
	if math.Abs(lifeBig/lifeSmall-10) > 1e-6 {
		t.Fatalf("lifetime ratio %v, want 10", lifeBig/lifeSmall)
	}
}

// TestOperationsUntilConsistent: charging for the predicted number of
// operations lands at (or below, due to self-shielding) the target
// degradation.
func TestOperationsUntilConsistent(t *testing.T) {
	a := agingCircuit(t, 1e4)
	ops := a.OperationsUntil(0.9, 15, 4e-9)
	if math.IsInf(ops, 1) || ops <= 0 {
		t.Fatalf("ops %v", ops)
	}
	for i := 0; i < int(ops); i++ {
		a.Charge(15, 4e-9)
	}
	got := a.SurvivingFraction()
	if got < 0.9-1e-3 {
		t.Fatalf("after predicted ops, surviving %v < target 0.9", got)
	}
	if got > 0.93 {
		t.Fatalf("prediction too conservative: surviving %v", got)
	}
}

func TestOperationsUntilPanicsOnBadFraction(t *testing.T) {
	a := agingCircuit(t, 1e4)
	for _, f := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("fraction %v accepted", f)
				}
			}()
			a.OperationsUntil(f, 15, 1e-9)
		}()
	}
}

func TestChargeDarkCodeIsFree(t *testing.T) {
	a := agingCircuit(t, 1e4)
	a.Charge(0, 1) // all LEDs off
	if a.Absorbed() != 0 {
		t.Fatalf("dark charge absorbed %v", a.Absorbed())
	}
}
