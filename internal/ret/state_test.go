package ret

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/rng"
)

// TestAgingStateRoundTrip: the absorbed excitation count restores
// word-exactly onto a same-configuration circuit, so the aged rates —
// and therefore every post-resume sample — match the uninterrupted run.
func TestAgingStateRoundTrip(t *testing.T) {
	src := rng.New(7)
	a, err := NewAgingCircuit(DefaultLadderCircuit(src), Wearout{MeanExcitations: 1e5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		a.Charge(uint8(i%16), 4e-9)
	}
	blob, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) != 8 {
		t.Fatalf("aging state is %d bytes, want 8", len(blob))
	}

	b, err := NewAgingCircuit(DefaultLadderCircuit(rng.New(7)), Wearout{MeanExcitations: 1e5})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(b.Absorbed()) != math.Float64bits(a.Absorbed()) {
		t.Fatalf("absorbed count: restored %v != original %v", b.Absorbed(), a.Absorbed())
	}
	for code := uint8(0); code < 16; code++ {
		if math.Float64bits(a.EffectiveRate(code)) != math.Float64bits(b.EffectiveRate(code)) {
			t.Fatalf("aged rate for code %d diverged after restore", code)
		}
	}
	// Charging both further keeps them in lockstep.
	a.Charge(15, 4e-9)
	b.Charge(15, 4e-9)
	if math.Float64bits(a.Absorbed()) != math.Float64bits(b.Absorbed()) {
		t.Fatal("post-restore charge diverged")
	}
}

func TestAgingStateRejectsCorrupt(t *testing.T) {
	a, err := NewAgingCircuit(DefaultLadderCircuit(rng.New(1)), Wearout{MeanExcitations: 1e5})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.UnmarshalBinary(make([]byte, 7)); err == nil {
		t.Fatal("truncated aging state accepted")
	}
	if err := a.UnmarshalBinary(make([]byte, 9)); err == nil {
		t.Fatal("oversized aging state accepted")
	}
	neg := make([]byte, 8)
	binary.LittleEndian.PutUint64(neg, math.Float64bits(-1))
	if err := a.UnmarshalBinary(neg); err == nil {
		t.Fatal("negative absorbed count accepted")
	}
	nan := make([]byte, 8)
	binary.LittleEndian.PutUint64(nan, math.Float64bits(math.NaN()))
	if err := a.UnmarshalBinary(nan); err == nil {
		t.Fatal("NaN absorbed count accepted")
	}
	// A failed restore leaves the age untouched.
	if a.Absorbed() != 0 {
		t.Fatalf("failed restores mutated the age: %v", a.Absorbed())
	}
}
