package ret

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// LEDBank models the RET circuit's on-chip light source: four QD-LEDs
// with binary on/off control (paper §5.2, "a 4-bit signal ... to control
// the binary on/off state of its four QD-LEDs"). The LEDs are "sized to
// provide a suitably large dynamic range of intensities": LED i
// contributes Weights[i] excitation-rate units when on, so a 4-bit code
// selects one of 16 aggregate intensities.
type LEDBank struct {
	// Weights[i] is the excitation rate contribution (Hz) of LED i.
	Weights [4]float64
}

// BinaryWeightedBank sizes the LEDs 1:2:4:8 so the 16 codes form a
// linear intensity ladder 0..15 × unit.
func BinaryWeightedBank(unit float64) LEDBank {
	if unit <= 0 {
		panic("ret: LED unit rate must be positive")
	}
	return LEDBank{Weights: [4]float64{unit, 2 * unit, 4 * unit, 8 * unit}}
}

// GeometricBank sizes the LEDs unit × {1, r, r², r³} which spreads the
// 16 achievable sums over a ratio of roughly r³+r²+r+1 : 1 — a larger
// dynamic range than binary weighting at the cost of uneven spacing.
// Used by the ablation study on intensity-ladder design.
func GeometricBank(unit, r float64) LEDBank {
	if unit <= 0 || r <= 1 {
		panic("ret: GeometricBank needs unit > 0 and r > 1")
	}
	return LEDBank{Weights: [4]float64{unit, unit * r, unit * r * r, unit * r * r * r}}
}

// Rate returns the aggregate excitation rate of a 4-bit code.
// It panics if code has bits above the low four.
func (b LEDBank) Rate(code uint8) float64 {
	if code > 15 {
		panic(fmt.Sprintf("ret: LED code %d exceeds 4 bits", code))
	}
	rate := 0.0
	for i := 0; i < 4; i++ {
		if code&(1<<i) != 0 {
			rate += b.Weights[i]
		}
	}
	return rate
}

// Levels returns the 16 achievable aggregate rates indexed by code.
func (b LEDBank) Levels() [16]float64 {
	var ls [16]float64
	for c := 0; c < 16; c++ {
		ls[c] = b.Rate(uint8(c))
	}
	return ls
}

// SPAD models the single-photon avalanche detector that timestamps the
// output fluorescence (paper refs [6, 23, 32]).
type SPAD struct {
	Efficiency  float64 // photon detection probability, (0, 1]
	DarkRate    float64 // spurious count rate (Hz), >= 0
	JitterSigma float64 // Gaussian timestamp jitter (s), >= 0
}

// Validate checks parameter ranges.
func (s SPAD) Validate() error {
	if s.Efficiency <= 0 || s.Efficiency > 1 {
		return fmt.Errorf("ret: SPAD efficiency %v outside (0,1]", s.Efficiency)
	}
	if s.DarkRate < 0 || s.JitterSigma < 0 {
		return fmt.Errorf("ret: negative SPAD noise parameter")
	}
	return nil
}

// Circuit is one RET circuit: LED bank + an ensemble of identical RET
// networks + SPAD (paper §2.3: "RET networks are integrated with an
// on-chip light source ... waveguide, and single photon avalanche
// detector to create a RET circuit. Each RET circuit can contain an
// ensemble of RET networks.").
type Circuit struct {
	LEDs     LEDBank
	Network  *Network
	Ensemble int // number of networks; multiplies the excitation rate
	Detector SPAD

	emitProb float64 // cached emission probability of Network
}

// NewCircuit builds a circuit and validates its parts. The emission
// probability of the network is estimated once by simulation (100k
// relaxations) and cached for EffectiveRate.
func NewCircuit(leds LEDBank, network *Network, ensemble int, det SPAD, src *rng.Source) (*Circuit, error) {
	if ensemble < 1 {
		return nil, fmt.Errorf("ret: ensemble must be >= 1, got %d", ensemble)
	}
	if err := network.Validate(); err != nil {
		return nil, err
	}
	if err := det.Validate(); err != nil {
		return nil, err
	}
	c := &Circuit{LEDs: leds, Network: network, Ensemble: ensemble, Detector: det}
	c.emitProb = network.EmissionProbability(100000, src)
	if c.emitProb <= 0 {
		return nil, fmt.Errorf("ret: network never emits")
	}
	return c, nil
}

// DefaultCircuit builds the paper's G1 exponential-sampler circuit: a
// single-chromophore network, binary-weighted LEDs whose full-on
// aggregate rate gives mean TTF ≈ 1 ns (so most samples land within the
// 4-cycle quiescence window at 1 GHz), and a default SPAD.
func DefaultCircuit(src *rng.Source) *Circuit {
	// Choose unit so code 15 yields ~1e9 detected Hz after losses.
	unit := 1e9 / 15 / (DefaultQuantumYield * DefaultSPADEfficiency)
	return buildDefault(BinaryWeightedBank(unit), src)
}

// DefaultLadderCircuit builds the sampler with geometrically sized LEDs
// (1:4:16:64), giving an 85:1 intensity dynamic range. §5.2 notes the
// QD-LEDs are "sized to provide a suitably large dynamic range of
// intensities to match the precision in relative probabilities we
// demonstrate with the RSU-G2 hardware prototype" (ratios up to 255):
// binary 1:2:4:8 sizing caps the ratio ladder at 15:1, which floors
// every improbable label at p >= 1/15 of the best and visibly degrades
// Gibbs updates; the geometric sizing is the design point the paper's
// accuracy story needs, at the cost of coarser mid-ladder spacing.
// The ablation benchmarks compare the two.
func DefaultLadderCircuit(src *rng.Source) *Circuit {
	maxSum := 1.0 + 4 + 16 + 64
	unit := 1e9 / maxSum / (DefaultQuantumYield * DefaultSPADEfficiency)
	return buildDefault(GeometricBank(unit, 4), src)
}

func buildDefault(bank LEDBank, src *rng.Source) *Circuit {
	c, err := NewCircuit(
		bank,
		SingleChromophore(DefaultLifetime, DefaultQuantumYield),
		1000,
		SPAD{Efficiency: DefaultSPADEfficiency, DarkRate: DefaultDarkRate, JitterSigma: DefaultJitterSigma},
		src,
	)
	if err != nil {
		panic("ret: default circuit construction failed: " + err.Error())
	}
	// The ensemble multiplies the raw excitation rate; fold it out of the
	// LED unit so the full-on EffectiveRate stays ~1e9 regardless of
	// ensemble size.
	for i := range c.LEDs.Weights {
		c.LEDs.Weights[i] /= float64(c.Ensemble)
	}
	return c
}

// EffectiveRate returns the asymptotic detected-photon rate for a code:
// excitation rate × ensemble × emission probability × SPAD efficiency.
// The TTF distribution is approximately Exp(EffectiveRate) when the
// network relaxation time is much shorter than the mean TTF.
func (c *Circuit) EffectiveRate(code uint8) float64 {
	return c.LEDs.Rate(code) * float64(c.Ensemble) * c.emitProb * c.Detector.Efficiency
}

// SampleTTF simulates one sampling operation: enable the LEDs at the
// given code and the SPAD simultaneously (paper §5.2, RET Sampling
// stage) and return the arrival time of the first detected photon in
// seconds. Dark counts race with real photons. Code 0 (all LEDs off)
// returns +Inf unless a dark count fires within maxWindow.
//
// maxWindow bounds the simulation (the hardware equivalent: the TTF
// shift register saturates); pass the register's full-scale time.
func (c *Circuit) SampleTTF(code uint8, maxWindow float64, src *rng.Source) float64 {
	excRate := c.LEDs.Rate(code) * float64(c.Ensemble)
	best := math.Inf(1)
	if c.Detector.DarkRate > 0 {
		best = src.Exponential(c.Detector.DarkRate)
	}
	if excRate > 0 {
		// Walk Poisson absorption arrivals; each absorbed excitation
		// relaxes through the network and is detected with probability
		// Efficiency if it emits.
		t := 0.0
		for {
			t += src.Exponential(excRate)
			if t >= best || t > maxWindow {
				break
			}
			relax, emitted := c.Network.SampleRelaxation(src)
			if !emitted {
				continue
			}
			if !src.Bernoulli(c.Detector.Efficiency) {
				continue
			}
			if arrival := t + relax; arrival < best {
				best = arrival
			}
			// Keep scanning: a later absorption with a shorter relaxation
			// could still beat the current best; the loop exits once the
			// absorption time itself passes best.
		}
	}
	if math.IsInf(best, 1) {
		return best
	}
	if c.Detector.JitterSigma > 0 {
		best += src.Normal(0, c.Detector.JitterSigma)
		if best < 0 {
			best = 0
		}
	}
	return best
}
