// Package detrand forbids nondeterministic randomness and clock reads
// in simulation/library code.
//
// PR 1's headline guarantee is that a seeded run produces bit-identical
// label maps regardless of worker count. Three things silently break
// that guarantee without failing any type check: drawing from
// math/rand, crypto/rand or math/rand/v2 instead of repro/internal/rng;
// deriving a seed (or any simulation input) from time.Now; and folding
// map iteration — whose order Go randomizes per run — into a
// floating-point accumulator or a sample draw. detrand flags all three.
//
// Deliberately permitted: integer accumulation over a map (addition of
// integers is exact, so order cannot change the result), collecting map
// keys for an explicit sort, clock reads in packages the driver
// allowlists (CLI entry points that print wall-clock timings), and the
// bodies of functions marked "Deprecated:" (compatibility shims are
// not live code).
package detrand

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"repro/internal/analysis"
)

// Analyzer is the detrand check.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc: "forbid math/rand, crypto/rand and time.Now in deterministic code, " +
		"and flag map iteration feeding float accumulators or rng draws",
	Run: run,
}

var bannedImports = map[string]string{
	"math/rand":    "unseedable global state and process-varying defaults",
	"math/rand/v2": "auto-seeded generators",
	"crypto/rand":  "OS entropy",
}

const rngPath = "repro/internal/rng"

func run(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, bad := bannedImports[path]; bad {
				pass.Reportf(imp.Pos(),
					"nondeterministic RNG import %q (%s): every draw must flow through %s so seeded runs are bit-identical",
					path, why, rngPath)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if analysis.IsDeprecated(n) {
					return false // compatibility shim: not live code
				}
			case *ast.CallExpr:
				if analysis.PkgFunc(pass.Info, n, "time", "Now") {
					pass.Reportf(n.Pos(),
						"wall-clock read time.Now() in deterministic code: seeds and timing inputs must come from configuration "+
							"(allowlist this package in rsulint if it is a CLI entry point)")
				}
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
}

// checkMapRange flags order-sensitive work inside a range over a map:
// float compound-assignment to a variable declared outside the loop,
// and any draw from an rng.Source.
func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt) {
	tv, ok := pass.Info.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if !isCompound(n.Tok) || len(n.Lhs) != 1 {
				return true
			}
			id := analysis.RootIdent(n.Lhs[0])
			if id == nil {
				return true
			}
			obj, ok := pass.Info.Uses[id].(*types.Var)
			if !ok || !isFloat(obj.Type()) {
				return true
			}
			if obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
				return true // loop-local accumulator: order visible only inside
			}
			pass.Reportf(n.Pos(),
				"order-dependent float accumulation %q inside range over map: map iteration order is randomized per run; "+
					"iterate sorted keys instead", id.Name)
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if rtv, ok := pass.Info.Types[sel.X]; ok && analysis.IsNamed(rtv.Type, rngPath, "Source") {
					pass.Reportf(n.Pos(),
						"sample draw %s.%s inside range over map: draw order follows the randomized map order, "+
							"breaking seed reproducibility; iterate sorted keys instead", exprString(sel.X), sel.Sel.Name)
				}
			}
		}
		return true
	})
}

func isCompound(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return true
	}
	return false
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func exprString(e ast.Expr) string {
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	return "source"
}
