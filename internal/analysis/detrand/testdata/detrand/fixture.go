// Package fixture seeds detrand violations and allowed patterns.
package fixture

import (
	"math/rand" // want "nondeterministic RNG import"
	"sort"
	"time"

	"repro/internal/rng"
)

var _ = rand.Int

// SeedFromClock derives a seed from the wall clock — the canonical
// reproducibility bug.
func SeedFromClock() uint64 {
	return uint64(time.Now().UnixNano()) // want "wall-clock read time.Now()"
}

// SumWeights folds map iteration order into a float accumulator.
func SumWeights(weights map[string]float64) float64 {
	total := 0.0
	for _, w := range weights {
		total += w // want "order-dependent float accumulation"
	}
	return total
}

// DrawPerEntry draws inside map iteration, so the stream position each
// entry sees depends on the randomized order.
func DrawPerEntry(rates map[string]float64, src *rng.Source) map[string]float64 {
	out := make(map[string]float64, len(rates))
	for k, rate := range rates {
		out[k] = src.Exponential(rate) // want "sample draw"
	}
	return out
}

// CountEntries accumulates an integer over a map: integer addition is
// exact, so iteration order cannot change the result. Must not be
// flagged.
func CountEntries(hist map[string]int) int {
	n := 0
	for _, c := range hist {
		n += c
	}
	return n
}

// SumSorted is the sanctioned pattern: collect keys, sort, then fold in
// deterministic order. Must not be flagged.
func SumSorted(weights map[string]float64, src *rng.Source) float64 {
	keys := make([]string, 0, len(weights))
	for k := range weights {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0.0
	for _, k := range keys {
		total += weights[k] * src.Float64()
	}
	return total
}

// DeprecatedClock mirrors an API-v2 compatibility wrapper that still
// carries legacy wall-clock plumbing; Deprecated: marked shims are
// skipped wholesale. Must not be flagged.
//
// Deprecated: use SeedFromClock's replacement.
func DeprecatedClock() uint64 {
	return uint64(time.Now().UnixNano())
}
