package detrand_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/detrand"
)

func TestDetrand(t *testing.T) {
	analyzertest.Run(t, detrand.Analyzer, "testdata/detrand")
}
