// Package analyzertest runs an analyzer against a fixture package and
// checks its diagnostics against expected-diagnostic annotations in the
// fixture source. An annotation is a trailing comment of the form
//
//	// want "substring" ["substring" ...]
//
// on the line the diagnostic is reported at. Every diagnostic must
// match an annotation on its line (substring match) and every
// annotation must be matched by exactly one diagnostic.
package analyzertest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads the fixture package rooted at dir (relative to the test's
// working directory) and checks a's diagnostics against its `// want`
// annotations. Fixture files may import module packages such as
// repro/internal/rng; they are resolved against the enclosing module.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatalf("getwd: %v", err)
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		t.Fatalf("find module root: %v", err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatalf("new loader: %v", err)
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("abs %s: %v", dir, err)
	}
	pkg, err := loader.LoadDir(abs, "fixture/"+a.Name+"/"+filepath.Base(abs))
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	wants := collectWants(t, pkg)
	// Facts span every package the fixture pulled in, so deprecation
	// marks on module packages (repro/internal/gibbs.RunCtx, ...) are
	// visible to the analyzer under test.
	facts := analysis.NewFacts(loader.Packages())
	for _, d := range analysis.RunAnalyzerFacts(a, pkg, facts) {
		pos := pkg.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
		if !wants.match(key, d.Message) {
			t.Errorf("unexpected diagnostic at %s:%d: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	wants.reportMisses(t)
}

type want struct {
	key     string // file:line
	pattern string
	matched bool
}

type wantSet struct{ wants []*want }

func (ws *wantSet) match(key, message string) bool {
	for _, w := range ws.wants {
		if !w.matched && w.key == key && strings.Contains(message, w.pattern) {
			w.matched = true
			return true
		}
	}
	return false
}

func (ws *wantSet) reportMisses(t *testing.T) {
	t.Helper()
	for _, w := range ws.wants {
		if !w.matched {
			t.Errorf("missed diagnostic at %s: want message containing %q", w.key, w.pattern)
		}
	}
}

var wantRE = regexp.MustCompile(`want((?:\s+"(?:[^"\\]|\\.)*")+)`)
var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

func collectWants(t *testing.T, pkg *analysis.Package) *wantSet {
	t.Helper()
	ws := &wantSet{}
	for _, f := range pkg.Files {
		filename := filepath.Base(pkg.Fset.Position(f.Pos()).Filename)
		for _, group := range f.Comments {
			for _, c := range group.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				line := pkg.Fset.Position(c.Pos()).Line
				for _, q := range quotedRE.FindAllString(m[1], -1) {
					pattern, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", filename, line, q, err)
					}
					ws.wants = append(ws.wants, &want{
						key:     fmt.Sprintf("%s:%d", filename, line),
						pattern: pattern,
					})
				}
			}
		}
	}
	return ws
}
