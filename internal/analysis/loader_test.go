package analysis

import (
	"strings"
	"testing"
)

func newTestLoader(t *testing.T) *Loader {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("find module root: %v", err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatalf("new loader: %v", err)
	}
	return l
}

func TestLoadModulePackage(t *testing.T) {
	l := newTestLoader(t)
	if l.Module != "repro" {
		t.Fatalf("module = %q, want repro", l.Module)
	}
	pkg, err := l.Load("repro/internal/fixed")
	if err != nil {
		t.Fatalf("load repro/internal/fixed: %v", err)
	}
	if pkg.Types.Name() != "fixed" {
		t.Fatalf("package name = %q, want fixed", pkg.Types.Name())
	}
	if pkg.Types.Scope().Lookup("NewLabel") == nil {
		t.Fatal("fixed.NewLabel not found in loaded package scope")
	}
	// Memoization: the same *Package must come back.
	again, err := l.Load("repro/internal/fixed")
	if err != nil || again != pkg {
		t.Fatalf("second load not memoized (err=%v)", err)
	}
}

// TestLoadTypeErrorFails is the contract for broken code: a fixture
// package with a type error must produce a clear load failure naming
// the file — never a panic and never a silently skipped package.
func TestLoadTypeErrorFails(t *testing.T) {
	l := newTestLoader(t)
	pkg, err := l.LoadDir("testdata/broken", "fixture/broken")
	if err == nil {
		t.Fatal("loading a type-broken package succeeded; want descriptive error")
	}
	if pkg != nil {
		t.Fatalf("broken package returned non-nil *Package alongside error %v", err)
	}
	for _, frag := range []string{"fixture/broken", "broken.go"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("load error %q does not mention %q", err, frag)
		}
	}
}

func TestLoadSyntaxErrorFails(t *testing.T) {
	l := newTestLoader(t)
	_, err := l.LoadDir("testdata/syntaxerr", "fixture/syntaxerr")
	if err == nil || !strings.Contains(err.Error(), "syntaxerr.go") {
		t.Fatalf("load of syntax-broken package: err=%v, want parse failure naming the file", err)
	}
}

func TestExpandAll(t *testing.T) {
	l := newTestLoader(t)
	paths, err := l.Expand([]string{"./..."})
	if err != nil {
		t.Fatalf("expand ./...: %v", err)
	}
	seen := map[string]bool{}
	for _, p := range paths {
		if seen[p] {
			t.Fatalf("duplicate path %q", p)
		}
		seen[p] = true
		if strings.Contains(p, "testdata") {
			t.Fatalf("testdata package %q leaked into expansion", p)
		}
	}
	for _, must := range []string{"repro", "repro/internal/rng", "repro/internal/gibbs", "repro/cmd/rsulint"} {
		if !seen[must] {
			t.Errorf("expansion missing %q (got %d paths)", must, len(paths))
		}
	}
}

func TestExpandSubtreeAndSingle(t *testing.T) {
	l := newTestLoader(t)
	paths, err := l.Expand([]string{"./internal/rng/...", "./internal/fixed"})
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	want := map[string]bool{"repro/internal/rng": true, "repro/internal/fixed": true}
	for _, p := range paths {
		if !want[p] {
			t.Fatalf("unexpected path %q", p)
		}
		delete(want, p)
	}
	if len(want) != 0 {
		t.Fatalf("missing paths: %v", want)
	}
	if _, err := l.Expand([]string{"./no/such/dir"}); err == nil {
		t.Fatal("expanding a nonexistent dir succeeded")
	}
}
