// Package fixture exercises ctxflow rule 3: the fixture's synthetic
// import path ends in /gibbs, so a function taking a context must
// consult it inside any iteration-bounded or sweeping loop.
package fixture

import "context"

// RunChain loops over iterations without ever consulting ctx.
func RunChain(ctx context.Context, iterations int) {
	for it := 0; it < iterations; it++ { // want "sweep loop never consults ctx"
		relax(it)
	}
}

// RunChainOK checks ctx at the sweep boundary.
func RunChainOK(ctx context.Context, iterations int) error {
	for it := 0; it < iterations; it++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		relax(it)
	}
	return nil
}

// Sweeper qualifies through its body (it sweeps) even though the bound
// is not iteration-named.
func Sweeper(ctx context.Context, n int) {
	for i := 0; i < n; i++ { // want "sweep loop never consults ctx"
		sweepOnce()
	}
}

// NoCtx takes no context: it is a per-sweep primitive and its caller
// owns the cancellation check.
func NoCtx(iterations int) {
	for it := 0; it < iterations; it++ {
		relax(it)
	}
}

// Nested checks ctx in the outermost qualifying loop; the per-site
// inner loop is below sweep granularity and stays unflagged.
func Nested(ctx context.Context, totalSweeps, w int) {
	for s := 0; s < totalSweeps; s++ {
		if ctx.Err() != nil {
			return
		}
		for x := 0; x < w; x++ {
			sweepOnce()
		}
	}
}

func relax(int)  {}
func sweepOnce() {}
