// Package fixture seeds ctxflow violations and allowed patterns for
// rules 1 (no root contexts in library code) and 2 (no calls to
// deprecated shims from live code).
package fixture

import (
	"context"

	"repro/internal/gibbs"
)

// NewRoot mints a root context in library code.
func NewRoot() context.Context {
	return context.Background() // want "library code calls context.Background"
}

// Todo reaches for the placeholder context instead of threading one.
func Todo(msg string) (string, context.Context) {
	return msg, context.TODO() // want "library code calls context.TODO"
}

// OldRun bridges context-free callers onto Run.
//
// Deprecated: use Run and pass your context.
func OldRun() error {
	return Run(context.Background()) // allowed: shims exist to mint the bridge context
}

// Run is the canonical context-first entry point.
func Run(ctx context.Context) error {
	return ctx.Err()
}

// CallsShim takes the deprecated shortcut from live code.
func CallsShim() error {
	return OldRun() // want "deprecated shim OldRun"
}

// CallsModuleShim reaches a deprecated shim declared in another module
// package; the fact base carries the mark across the import.
func CallsModuleShim(ctx context.Context) {
	_, _ = gibbs.RunCtx(ctx, nil, nil, nil, gibbs.Options{}, 0) // want "deprecated shim RunCtx"
}

// ChainedShim is itself deprecated, so its call into OldRun is the
// permitted shim-to-shim chain.
//
// Deprecated: use Run.
func ChainedShim() error {
	return OldRun()
}
