// Package ctxflow enforces the context-first discipline of API v2
// (DESIGN.md §11): cancellation must flow from the caller down to the
// sweep loop, never be invented in the middle of the library.
//
// Three rules:
//
//  1. Library code must not call context.Background() or context.TODO().
//     Only package main (CLI entry points, which own the signal
//     handling) may mint a root context; everything else takes one as
//     its first parameter. Deprecated compatibility shims are exempt —
//     bridging a context-free signature is exactly what they are for.
//  2. Live code must not call functions or methods marked
//     "Deprecated:". The shims exist so old third-party call sites keep
//     compiling, not as a convenience for new code to skip the ctx
//     argument; a deprecated function calling another deprecated
//     function is permitted (shims chain).
//  3. In the sweep packages (import path ending in /gibbs or /accel), a
//     function that takes a context.Context must consult it inside any
//     long-running loop — a loop bounded by an iteration/sweep count or
//     one that invokes a sweep — so cancellation is observed at sweep
//     boundaries rather than after the full chain. Only the outermost
//     qualifying loop is checked: per-color and per-site loops inside a
//     checked sweep loop are below checkpoint granularity by design.
//
// Deliberately permitted: context.Background in package main and in
// test files (not loaded at all), ctx threading through struct fields
// (the analyzer only polices call sites), and loops in functions that
// take no context — those are per-sweep primitives whose callers hold
// the cancellation check.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the ctxflow check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "enforce context-first flow: no context.Background/TODO outside main, " +
		"no calls to Deprecated shims from live code, ctx checked in sweep loops",
	Run: run,
}

func run(pass *analysis.Pass) {
	isMain := pass.Pkg.Name() == "main"
	sweepPkg := strings.HasSuffix(pass.Pkg.Path(), "/gibbs") || strings.HasSuffix(pass.Pkg.Path(), "/accel")
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			deprecated := analysis.IsDeprecated(fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !isMain && !deprecated {
					for _, fn := range [...]string{"Background", "TODO"} {
						if analysis.PkgFunc(pass.Info, call, "context", fn) {
							pass.Reportf(call.Pos(),
								"library code calls context.%s(); thread the caller's ctx instead (only package main mints root contexts)", fn)
						}
					}
				}
				if !deprecated {
					if callee := analysis.CalleeOf(pass.Info, call); pass.Facts.IsDeprecatedFunc(callee) {
						pass.Reportf(call.Pos(),
							"call to deprecated shim %s from live code; use its context-first replacement", callee.Name())
					}
				}
				return true
			})
			if sweepPkg && !deprecated {
				if ctxObj := ctxParam(pass.Info, fd); ctxObj != nil {
					checkSweepLoops(pass, fd.Body, ctxObj)
				}
			}
		}
	}
}

// ctxParam returns the function's context.Context parameter object, or
// nil.
func ctxParam(info *types.Info, fd *ast.FuncDecl) types.Object {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj != nil && analysis.IsNamed(obj.Type(), "context", "Context") {
				return obj
			}
		}
	}
	return nil
}

// checkSweepLoops walks the statement tree (skipping nested function
// literals, which run on their own goroutine or schedule) and verifies
// every outermost qualifying loop references ctx.
func checkSweepLoops(pass *analysis.Pass, body *ast.BlockStmt, ctxObj types.Object) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch loop := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if qualifies(pass, loop) {
				if !referencesObj(pass, loop.Body, ctxObj) {
					pass.Reportf(loop.Pos(),
						"sweep loop never consults %s; check it at the sweep boundary so cancellation and checkpointing stay responsive", ctxObj.Name())
				}
				return false // inner loops are below sweep granularity
			}
		}
		return true
	})
}

// qualifies reports whether the loop is long-running in the sweep
// sense: bounded by an iteration/sweep count, or sweeping directly.
func qualifies(pass *analysis.Pass, loop *ast.ForStmt) bool {
	iterName := false
	var header []ast.Node
	if loop.Init != nil {
		header = append(header, loop.Init)
	}
	if loop.Cond != nil {
		header = append(header, loop.Cond)
	}
	if loop.Post != nil {
		header = append(header, loop.Post)
	}
	for _, e := range header {
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && isIterName(id.Name) {
				iterName = true
			}
			return true
		})
	}
	if iterName {
		return true
	}
	sweeps := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var name string
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		if strings.Contains(strings.ToLower(name), "sweep") {
			sweeps = true
		}
		return true
	})
	return sweeps
}

func isIterName(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "iteration") || strings.Contains(l, "sweep")
}

// referencesObj reports whether any identifier under n resolves to obj.
func referencesObj(pass *analysis.Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
