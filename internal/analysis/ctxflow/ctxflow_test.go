package ctxflow_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analyzertest.Run(t, ctxflow.Analyzer, "testdata/ctxflow")
}

// TestCtxflowSweepLoops runs the rule-3 fixture, whose directory name
// gives it a /gibbs import-path suffix.
func TestCtxflowSweepLoops(t *testing.T) {
	analyzertest.Run(t, ctxflow.Analyzer, "testdata/gibbs")
}
