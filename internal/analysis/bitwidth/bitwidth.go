// Package bitwidth enforces the RSU-G datapath widths of paper §4.4:
// 6-bit labels, 8-bit energies and 4-bit intensity codes, as encoded by
// repro/internal/fixed. The fixed constructors (NewLabel, ClampLabel,
// NewIntensity, ClampIntensity, SatAddEnergy, QuantizeEnergy, ...) are
// the validation points; a raw conversion such as fixed.Label(v)
// silently truncates to the underlying uint8 and can smuggle a 7-bit
// value onto the 6-bit datapath.
//
// Flagged: conversions to fixed.Label / fixed.Energy / fixed.Intensity
// with a non-constant operand, and constants of those types outside the
// datapath range (e.g. fixed.Label(200), var l fixed.Label = 77 — both
// legal Go, since the underlying type is uint8).
//
// Deliberately permitted: in-range constants (fixed.Label(63)),
// conversions whose operand is masked into range with a constant
// (fixed.Label(v & fixed.MaxLabel)) — the hardware idiom for slicing a
// packed register — and everything inside package fixed itself, which
// is where the validation lives.
package bitwidth

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the bitwidth check.
var Analyzer = &analysis.Analyzer{
	Name: "bitwidth",
	Doc: "flag raw conversions and out-of-range constants for fixed.Label/Energy/Intensity; " +
		"construct datapath values via the fixed constructors or constant masks",
	Run: run,
}

const fixedPath = "repro/internal/fixed"

// spec is the range of one guarded datapath type.
type spec struct {
	max  int64
	bits int
}

// guarded maps the datapath type name to its max value and bit width.
var guarded = map[string]spec{
	"Label":     {63, 6},
	"Energy":    {255, 8},
	"Intensity": {15, 4},
}

func run(pass *analysis.Pass) {
	if pass.Pkg.Path() == fixedPath {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			expr, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[expr]
			if !ok {
				return true
			}
			name, sp, isGuarded := guardedType(tv.Type)
			if !isGuarded {
				return true
			}
			if tv.Value != nil {
				if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); !exact || v < 0 || v > sp.max {
					pass.Reportf(expr.Pos(),
						"constant %s overflows the %d-bit fixed.%s range [0,%d]",
						tv.Value.ExactString(), sp.bits, name, sp.max)
				}
				return false // constants need no further descent
			}
			call, isCall := expr.(*ast.CallExpr)
			if !isCall || len(call.Args) != 1 {
				return true
			}
			if ftv, ok := pass.Info.Types[call.Fun]; !ok || !ftv.IsType() {
				return true // a constructor call, not a conversion
			}
			if maskedInRange(pass, call.Args[0], sp.max) {
				return true
			}
			pass.Reportf(expr.Pos(),
				"raw conversion to fixed.%s bypasses the %d-bit validation: use fixed.New%s/fixed.Clamp%s "+
					"(or mask the operand with fixed.Max%s)", name, sp.bits, name, name, name)
			return true
		})
	}
}

func guardedType(t types.Type) (string, spec, bool) {
	named, ok := t.(*types.Named)
	if !ok {
		return "", spec{}, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != fixedPath {
		return "", spec{}, false
	}
	s, ok := guarded[obj.Name()]
	return obj.Name(), s, ok
}

// maskedInRange reports whether arg is an &-mask whose constant side is
// within [0, max], which bounds the conversion result by construction.
func maskedInRange(pass *analysis.Pass, arg ast.Expr, max int64) bool {
	for {
		p, ok := arg.(*ast.ParenExpr)
		if !ok {
			break
		}
		arg = p.X
	}
	be, ok := arg.(*ast.BinaryExpr)
	if !ok || be.Op != token.AND {
		return false
	}
	for _, side := range []ast.Expr{be.X, be.Y} {
		if tv, ok := pass.Info.Types[side]; ok && tv.Value != nil {
			if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact && v >= 0 && v <= max {
				return true
			}
		}
	}
	return false
}
