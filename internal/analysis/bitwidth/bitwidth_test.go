package bitwidth_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/bitwidth"
)

func TestBitwidth(t *testing.T) {
	analyzertest.Run(t, bitwidth.Analyzer, "testdata/bitwidth")
}
