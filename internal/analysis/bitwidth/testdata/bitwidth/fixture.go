// Package fixture seeds bitwidth violations and allowed patterns.
package fixture

import "repro/internal/fixed"

// RawConversions bypass the constructors: nothing stops a 7-bit value
// from reaching the 6-bit datapath.
func RawConversions(v int, packed uint64) (fixed.Label, fixed.Energy, fixed.Intensity) {
	l := fixed.Label(v)          // want "raw conversion to fixed.Label"
	e := fixed.Energy(v)         // want "raw conversion to fixed.Energy"
	c := fixed.Intensity(packed) // want "raw conversion to fixed.Intensity"
	return l, e, c
}

// OverflowingConstants are legal Go (they fit uint8) but violate the
// datapath widths.
const tooBig = 200

func OverflowingConstants() fixed.Label {
	var l fixed.Label = tooBig // want "overflows the 6-bit fixed.Label range"
	c := fixed.Intensity(99)   // want "overflows the 4-bit fixed.Intensity range"
	_ = c
	return l
}

// Constructors is the sanctioned pattern. Must not be flagged.
func Constructors(v int, packed uint64) (fixed.Label, fixed.Energy, fixed.Intensity) {
	l := fixed.NewLabel(v)
	m := fixed.Label(packed & fixed.MaxLabel) // masked into range by construction
	e := fixed.QuantizeEnergy(float64(v), 1)
	e = fixed.SatAddEnergy(e, 3) // in-range constant
	c := fixed.ClampIntensity(v)
	var top fixed.Label = fixed.MaxLabel // in-range constant
	_ = m
	_ = top
	return l, e, c
}
