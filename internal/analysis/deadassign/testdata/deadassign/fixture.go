// Package fixture seeds deadassign violations and allowed patterns.
package fixture

// Sum carries the seed tree's exact bug: a range variable blanked for
// no reason (range variables may simply go unused).
func Sum(weights []float64) float64 {
	total := 0.0
	for i, w := range weights {
		_ = i // want "range variable"
		total += w
	}
	return total
}

// BlankParam blanks a parameter, which may go unused in Go.
func BlankParam(unused int) {
	_ = unused // want "parameter"
}

// AlreadyUsed blanks a variable that other statements already use, so
// the blank assignment silences nothing.
func AlreadyUsed(n int) int {
	doubled := n * 2
	_ = doubled // want "already used"
	return doubled
}

// silencer is the load-bearing pattern: x would otherwise be declared
// and not used, so `_ = x` is required to compile. Must not be flagged.
func silencer(f func() int) {
	x := f()
	_ = x
}

// effects discards a call result: the call still runs. Must not be
// flagged.
func effects(f func() error) {
	_ = f()
}

// boundsHint discards an index expression, a recognized bounds-check
// elimination hint. Must not be flagged.
func boundsHint(xs []int) {
	_ = xs[2]
}

// Asserter documents an interface contract with a package-level blank
// declaration (a declaration, not an assignment). Must not be flagged.
type Asserter struct{}

func (Asserter) Assert() {}

type asserts interface{ Assert() }

var _ asserts = Asserter{}

// DeprecatedShim mirrors the API-v2 compatibility wrappers: its body
// blanks a parameter, which deadassign would flag anywhere else, but
// Deprecated: marked shims are skipped wholesale. Must not be flagged.
//
// Deprecated: use silencer.
func DeprecatedShim(unused int) {
	_ = unused
}
