// Package deadassign flags blank-assignment no-ops: statements like
// `_ = i` whose right-hand side is side-effect-free and whose variable
// does not need the assignment to compile. These are leftovers from
// refactors (the seed tree carried one in internal/rng's Categorical)
// and they read as if they silence something when they silence nothing
// — range variables, parameters and already-used variables may simply
// go unused in Go.
//
// Deliberately permitted: `_ = x` where x is an otherwise-unused local
// (that assignment is load-bearing: it silences the compiler's
// declared-and-not-used error), `_ = f()` (the call has effects),
// `_ = xs[0]` (a bounds-check hint), package-level `var _ Iface =
// ...` interface assertions (declarations, not assignments), and the
// bodies of functions marked "Deprecated:" (compatibility shims are
// not live code).
package deadassign

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the deadassign check.
var Analyzer = &analysis.Analyzer{
	Name: "deadassign",
	Doc: "flag blank assignments (_ = x) that neither have effects nor " +
		"silence a declared-and-not-used error",
	Run: run,
}

func run(pass *analysis.Pass) {
	// exempt holds variables that may go unused without the blank
	// assignment: range-clause variables and function parameters,
	// receivers and named results.
	exempt := map[types.Object]string{}
	uses := map[types.Object][]token.Pos{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if obj, ok := pass.Info.Uses[n].(*types.Var); ok {
					uses[obj] = append(uses[obj], n.Pos())
				}
			case *ast.RangeStmt:
				if n.Tok == token.DEFINE {
					for _, e := range []ast.Expr{n.Key, n.Value} {
						if id, ok := e.(*ast.Ident); ok {
							if obj := pass.Info.Defs[id]; obj != nil {
								exempt[obj] = "range variable"
							}
						}
					}
				}
			case *ast.FuncType:
				for _, list := range fieldLists(n) {
					for _, field := range list.List {
						for _, id := range field.Names {
							if obj := pass.Info.Defs[id]; obj != nil {
								exempt[obj] = "parameter"
							}
						}
					}
				}
			case *ast.FuncDecl:
				if n.Recv != nil {
					for _, field := range n.Recv.List {
						for _, id := range field.Names {
							if obj := pass.Info.Defs[id]; obj != nil {
								exempt[obj] = "receiver"
							}
						}
					}
				}
			}
			return true
		})
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if fd, ok := n.(*ast.FuncDecl); ok && analysis.IsDeprecated(fd) {
				return false // compatibility shim: not live code
			}
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.ASSIGN {
				return true
			}
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
					return true
				}
			}
			for _, rhs := range as.Rhs {
				if !pure(rhs) {
					return true
				}
			}
			// The assignment is a pure no-op unless some referenced local
			// needs it to satisfy the unused-variable check.
			refs := 0
			for _, rhs := range as.Rhs {
				ast.Inspect(rhs, func(m ast.Node) bool {
					id, ok := m.(*ast.Ident)
					if !ok {
						return true
					}
					obj, ok := pass.Info.Uses[id].(*types.Var)
					if !ok {
						return true
					}
					refs++
					if why, isExempt := exempt[obj]; isExempt {
						pass.Reportf(as.Pos(),
							"dead blank assignment: %s %q may go unused without it; remove `_ = %s`",
							why, obj.Name(), obj.Name())
						return false
					}
					for _, p := range uses[obj] {
						if p < as.Pos() || p >= as.End() {
							pass.Reportf(as.Pos(),
								"dead blank assignment: %q is already used at %s; remove `_ = %s`",
								obj.Name(), pass.Fset.Position(p), obj.Name())
							return false
						}
					}
					return false // sole use of a local: silences declared-and-not-used
				})
			}
			if refs == 0 {
				pass.Reportf(as.Pos(), "dead blank assignment of a constant expression; remove it")
			}
			return true
		})
	}
}

func fieldLists(ft *ast.FuncType) []*ast.FieldList {
	lists := []*ast.FieldList{}
	if ft.Params != nil {
		lists = append(lists, ft.Params)
	}
	if ft.Results != nil {
		lists = append(lists, ft.Results)
	}
	return lists
}

// pure reports whether e cannot have side effects and cannot panic:
// identifiers, literals, selector chains and parenthesized forms.
// Calls, indexing (bounds-check hints) and everything else are impure.
func pure(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.Ident:
		return true
	case *ast.BasicLit:
		return true
	case *ast.ParenExpr:
		return pure(v.X)
	case *ast.SelectorExpr:
		return pure(v.X)
	default:
		return false
	}
}
