package deadassign_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/deadassign"
)

func TestDeadassign(t *testing.T) {
	analyzertest.Run(t, deadassign.Analyzer, "testdata/deadassign")
}
