package ckptfield_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/ckptfield"
)

func TestCkptfield(t *testing.T) {
	analyzertest.Run(t, ckptfield.Analyzer, "testdata/checkpoint")
}
