// Package ckptfield guards the checkpoint wire format against silent
// field drops. PR 4's crash-safe runtime round-trips Snapshot,
// Fingerprint, RNG state and fault-session state through hand-written
// binary codecs; adding a field to one of those structs and forgetting
// one side of the codec produces a checkpoint that encodes, decodes,
// validates — and quietly resumes with a zero value. That bug class is
// invisible to the type checker and usually to tests (the dropped field
// has to matter for the assertion to fire).
//
// The analyzer applies to the serialization packages
// (internal/checkpoint, internal/rng, internal/fault, internal/ret).
// For every codec pair — a type's MarshalBinary/UnmarshalBinary
// methods, or a package-level Encode/Decode function pair — it collects
// the struct fields referenced on each side, following same-package
// static calls (call-graph-lite) so helpers like Snapshot.SetSection
// and Validate credit the fields they touch. A struct belongs to the
// pair's wire format when at least one of its exported fields is
// referenced on each side; once it qualifies, every exported field must
// appear on both sides, and a field present on one side only is
// reported at its declaration.
//
// Deliberately permitted: unexported fields (rebuilt caches, pooled
// scratch — resumability is the exported surface), structs the pair
// never touches or touches on one side only with no counterpart at all
// (config mirrors, in-memory views), and fields acknowledged via an
// explicit //lint:ignore rsulint/ckptfield comment stating why they are
// derived rather than serialized.
package ckptfield

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the ckptfield check.
var Analyzer = &analysis.Analyzer{
	Name: "ckptfield",
	Doc: "every exported field of a checkpointed struct must be referenced " +
		"by both the encode and decode halves of its codec pair",
	Run: run,
}

// serializedSuffixes names the packages whose structs cross the
// checkpoint wire format.
var serializedSuffixes = []string{"/checkpoint", "/rng", "/fault", "/ret"}

func run(pass *analysis.Pass) {
	path := pass.Pkg.Path()
	serialized := false
	for _, s := range serializedSuffixes {
		if strings.HasSuffix(path, s) {
			serialized = true
			break
		}
	}
	if !serialized {
		return
	}

	decls := funcDecls(pass)
	structs := packageStructs(pass)
	if len(structs) == 0 {
		return
	}

	for _, pair := range codecPairs(pass, decls) {
		enc := fieldRefs(pass, decls, pass.Facts.Reachable([]types.Object{pair.enc}))
		dec := fieldRefs(pass, decls, pass.Facts.Reachable([]types.Object{pair.dec}))
		for _, si := range structs {
			encHits, decHits := 0, 0
			for _, f := range si.exported {
				if enc[f] {
					encHits++
				}
				if dec[f] {
					decHits++
				}
			}
			// The pair serializes this struct only if both sides touch
			// it; a one-sided or absent struct is not on this wire
			// format.
			if encHits == 0 || decHits == 0 {
				continue
			}
			for _, f := range si.exported {
				switch {
				case !enc[f] && !dec[f]:
					pass.Reportf(f.Pos(),
						"field %s.%s is never referenced by %s or %s; a checkpoint round-trip silently drops it",
						si.name, f.Name(), pair.encName, pair.decName)
				case !enc[f]:
					pass.Reportf(f.Pos(),
						"field %s.%s is restored by %s but never written by %s; the checkpoint round-trip drops it",
						si.name, f.Name(), pair.decName, pair.encName)
				case !dec[f]:
					pass.Reportf(f.Pos(),
						"field %s.%s is written by %s but never restored by %s; resume will zero it",
						si.name, f.Name(), pair.encName, pair.decName)
				}
			}
		}
	}
}

// codecPair is one encode/decode couple checked for field balance.
type codecPair struct {
	enc, dec         types.Object
	encName, decName string
}

// codecPairs finds the package's codec pairs: MarshalBinary /
// UnmarshalBinary methods sharing a receiver type, and package-level
// Encode / Decode functions.
func codecPairs(pass *analysis.Pass, decls map[types.Object]*ast.FuncDecl) []codecPair {
	type half struct{ enc, dec types.Object }
	byRecv := map[string]*half{}
	var recvOrder []string
	var pkgEnc, pkgDec types.Object
	for obj := range decls {
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		sig := fn.Type().(*types.Signature)
		if sig.Recv() == nil {
			switch fn.Name() {
			case "Encode":
				pkgEnc = obj
			case "Decode":
				pkgDec = obj
			}
			continue
		}
		name := fn.Name()
		if name != "MarshalBinary" && name != "UnmarshalBinary" {
			continue
		}
		key := recvTypeName(sig.Recv().Type())
		if key == "" {
			continue
		}
		h := byRecv[key]
		if h == nil {
			h = &half{}
			byRecv[key] = h
			recvOrder = append(recvOrder, key)
		}
		if name == "MarshalBinary" {
			h.enc = obj
		} else {
			h.dec = obj
		}
	}
	var pairs []codecPair
	sort.Strings(recvOrder) // deterministic pair order
	for _, key := range recvOrder {
		h := byRecv[key]
		if h.enc != nil && h.dec != nil {
			pairs = append(pairs, codecPair{
				enc: h.enc, dec: h.dec,
				encName: key + ".MarshalBinary",
				decName: key + ".UnmarshalBinary",
			})
		}
	}
	if pkgEnc != nil && pkgDec != nil {
		pairs = append(pairs, codecPair{enc: pkgEnc, dec: pkgDec, encName: "Encode", decName: "Decode"})
	}
	return pairs
}

func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// structInfo is one package-level struct type and its exported fields.
type structInfo struct {
	name     string
	exported []*types.Var
}

func packageStructs(pass *analysis.Pass) []*structInfo {
	scope := pass.Pkg.Scope()
	var out []*structInfo
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		si := &structInfo{name: name}
		for i := 0; i < st.NumFields(); i++ {
			if f := st.Field(i); f.Exported() && !f.Embedded() {
				si.exported = append(si.exported, f)
			}
		}
		if len(si.exported) > 0 {
			out = append(out, si)
		}
	}
	return out
}

func funcDecls(pass *analysis.Pass) map[types.Object]*ast.FuncDecl {
	decls := map[types.Object]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			if obj := pass.Info.Defs[fd.Name]; obj != nil {
				decls[obj] = fd
			}
		}
	}
	return decls
}

// fieldRefs collects every struct field referenced in the bodies of
// fns: selector reads/writes, keyed composite-literal fields, and (for
// positional literals) every field of the literal's type.
func fieldRefs(pass *analysis.Pass, decls map[types.Object]*ast.FuncDecl, fns []types.Object) map[types.Object]bool {
	refs := map[types.Object]bool{}
	for _, o := range fns {
		fd := decls[o]
		if fd == nil || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sel, ok := pass.Info.Selections[n]; ok && sel.Kind() == types.FieldVal {
					refs[sel.Obj()] = true
				}
			case *ast.CompositeLit:
				litFields(pass, n, refs)
			}
			return true
		})
	}
	return refs
}

func litFields(pass *analysis.Pass, lit *ast.CompositeLit, refs map[types.Object]bool) {
	t := pass.Info.TypeOf(lit)
	if t == nil {
		return
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for _, e := range lit.Elts {
		kv, ok := e.(*ast.KeyValueExpr)
		if !ok {
			// Positional literal: every field is spelled out.
			for i := 0; i < st.NumFields(); i++ {
				refs[st.Field(i)] = true
			}
			return
		}
		if id, ok := kv.Key.(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil {
				refs[obj] = true
			}
		}
	}
}
