// Package fixture seeds ckptfield violations and allowed patterns. The
// fixture directory is named "checkpoint" so its synthetic import path
// carries a serialized-package suffix and the analyzer engages.
package fixture

import (
	"bytes"
	"encoding/binary"
	"errors"
)

// Header round-trips Rows but drops Cols on the decode side — the
// planted missing-field bug: encode, decode, resume with Cols == 0.
type Header struct {
	Rows  int32
	Cols  int32 // want "written by Header.MarshalBinary but never restored by Header.UnmarshalBinary"
	Depth int32 // want "never referenced by Header.MarshalBinary or Header.UnmarshalBinary"
	tag   string
}

func (h *Header) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, h.Rows)
	binary.Write(&buf, binary.LittleEndian, h.Cols)
	return buf.Bytes(), nil
}

func (h *Header) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	return binary.Read(r, binary.LittleEndian, &h.Rows)
}

// Trailer shows the mirror-image bug: Note is conjured during decode
// but never written, so every checkpoint restores a fabricated value.
type Trailer struct {
	Crc  uint32
	Note string // want "restored by Trailer.UnmarshalBinary but never written by Trailer.MarshalBinary"
}

func (t *Trailer) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, t.Crc)
	return buf.Bytes(), nil
}

func (t *Trailer) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	if err := binary.Read(r, binary.LittleEndian, &t.Crc); err != nil {
		return err
	}
	t.Note = "restored"
	return nil
}

// Snapshot is serialized by the package-level Encode/Decode pair. Meta
// is balanced only through the setMeta helper: the call-graph-lite
// closure must credit fields touched by same-package callees, so this
// struct stays clean.
type Snapshot struct {
	Sweep int64
	Meta  string
}

// Encode writes the snapshot wire format.
func Encode(s *Snapshot) []byte {
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, s.Sweep)
	buf.WriteString(s.Meta)
	return buf.Bytes()
}

// Decode restores a snapshot, crediting Meta through setMeta.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < 8 {
		return nil, errors.New("short snapshot")
	}
	s := &Snapshot{}
	s.Sweep = int64(binary.LittleEndian.Uint64(data))
	s.setMeta(string(data[8:]))
	return s, nil
}

func (s *Snapshot) setMeta(m string) { s.Meta = m }

// Tuning never crosses the wire format — no codec side references it,
// so its exported fields are exempt.
type Tuning struct {
	Threads int
	Verbose bool
}

// DefaultTuning is in-memory configuration, not serialization.
func DefaultTuning() Tuning { return Tuning{Threads: 1} }
