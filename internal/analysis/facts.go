package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Facts is the cross-analyzer knowledge base computed once per run and
// shared through Pass.Facts: which functions are deprecated shims
// (ctxflow refuses calls to them from live code), which carry the
// //rsulint:hot annotation (hotalloc's roots), and a call-graph-lite —
// static same-package call edges — that lets analyzers reason one level
// beyond a single function body without a whole-program analysis:
// hotalloc extends the allocation ban to a hot function's same-package
// callees, and ckptfield credits a field reference made inside a helper
// (Snapshot.SetSection, Snapshot.Validate) to the marshal/unmarshal
// method that calls it.
//
// Facts are keyed by types.Object. The loader type-checks module-local
// imports through itself, so the *types.Func an importing package sees
// is the same object the declaring package defines — cross-package
// lookups need no name matching.
type Facts struct {
	deprecated map[types.Object]bool
	hot        map[types.Object]bool
	callees    map[types.Object][]types.Object
}

// HotMark is the annotation that places a function under hotalloc's
// allocation-free contract, written alone on a line of the function's
// doc comment: //rsulint:hot
const HotMark = "rsulint:hot"

// HasHotMark reports whether the declaration's doc comment carries the
// //rsulint:hot annotation.
func HasHotMark(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == HotMark || strings.HasPrefix(text, HotMark+" ") {
			return true
		}
	}
	return false
}

// NewFacts scans the given packages (typically every package loaded for
// the run, dependencies included, so cross-package facts resolve) and
// builds the shared fact tables.
func NewFacts(pkgs []*Package) *Facts {
	f := &Facts{
		deprecated: map[types.Object]bool{},
		hot:        map[types.Object]bool{},
		callees:    map[types.Object][]types.Object{},
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				obj := pkg.Info.Defs[fd.Name]
				if obj == nil {
					continue
				}
				if IsDeprecated(fd) {
					f.deprecated[obj] = true
				}
				if HasHotMark(fd) {
					f.hot[obj] = true
				}
				if fd.Body != nil {
					f.collectCallees(pkg, obj, fd.Body)
				}
			}
		}
	}
	return f
}

// collectCallees records obj's static same-package call edges in source
// order (calls inside nested function literals are attributed to the
// enclosing declaration: their allocations and field references happen
// under its dynamic extent).
func (f *Facts) collectCallees(pkg *Package, obj types.Object, body *ast.BlockStmt) {
	seen := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := CalleeOf(pkg.Info, call)
		if callee == nil || callee.Pkg() != pkg.Types || seen[callee] {
			return true
		}
		seen[callee] = true
		f.callees[obj] = append(f.callees[obj], callee)
		return true
	})
}

// CalleeOf resolves the function or method a call statically invokes,
// or nil for dynamic calls (interface methods, function values whose
// target the type checker cannot name, builtins, conversions).
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsDeprecatedFunc reports whether obj is a function or method whose
// declaration carries a "Deprecated:" doc marker, in any scanned
// package.
func (f *Facts) IsDeprecatedFunc(obj types.Object) bool {
	return obj != nil && f.deprecated[obj]
}

// IsHot reports whether obj carries the //rsulint:hot annotation.
func (f *Facts) IsHot(obj types.Object) bool { return obj != nil && f.hot[obj] }

// Callees returns obj's static same-package call edges in source order.
func (f *Facts) Callees(obj types.Object) []types.Object { return f.callees[obj] }

// Reachable returns the same-package static call closure of the roots:
// the roots plus every function transitively called from them within
// their own package, in deterministic (position) order.
func (f *Facts) Reachable(roots []types.Object) []types.Object {
	seen := map[types.Object]bool{}
	var out []types.Object
	var visit func(o types.Object)
	visit = func(o types.Object) {
		if o == nil || seen[o] {
			return
		}
		seen[o] = true
		out = append(out, o)
		for _, c := range f.callees[o] {
			visit(c)
		}
	}
	for _, r := range roots {
		visit(r)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}
