// Package analysis is the stdlib-only static-analysis framework behind
// cmd/rsulint. It loads every package in the module with go/parser +
// go/types (no external dependencies) and runs project-specific
// analyzers that mechanically enforce the reproduction's non-negotiable
// invariants: determinism (every random draw flows through
// repro/internal/rng, no wall-clock seeds, no map-iteration-order
// dependence), datapath bit-widths (6-bit labels, 8-bit energies, 4-bit
// intensity codes constructed only through repro/internal/fixed's
// validating constructors), and the per-goroutine RNG ownership
// discipline of the sweep engine.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis —
// an Analyzer owns a Run function over a Pass — but is deliberately
// minimal so the module stays dependency-free.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check.
type Analyzer struct {
	// Name identifies the analyzer in findings, allowlist entries and
	// lint:ignore targets (e.g. "detrand").
	Name string
	// Doc is a one-paragraph description: the invariant guarded, what is
	// flagged, and which patterns are deliberately permitted.
	Doc string
	// Run inspects the pass's package and reports diagnostics.
	Run func(*Pass)
}

// Diagnostic is one finding at a source position. Fix, when non-nil,
// describes a mechanical rewrite that resolves the finding; cmd/rsulint
// renders it as a dry-run diff under -fix.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	Fix     *SuggestedFix
}

// SuggestedFix is a single-range source rewrite: replace [Start, End)
// with NewText (empty NewText deletes the range).
type SuggestedFix struct {
	Start, End token.Pos
	NewText    string
}

// Pass carries one type-checked package through one analyzer. Facts is
// the run-wide shared knowledge base (deprecation, hot annotations,
// call-graph-lite); it is never nil when the pass is built through
// RunAnalyzer or RunAll.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Facts    *Facts

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ReportFix records a diagnostic carrying a mechanical fix.
func (p *Pass) ReportFix(pos token.Pos, fix *SuggestedFix, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Fix: fix})
}

// RunAnalyzer applies a to pkg and returns its diagnostics in source
// order, computing single-package facts on the fly. Multi-package runs
// should build Facts once and use RunAnalyzerFacts so cross-package
// deprecation marks resolve.
func RunAnalyzer(a *Analyzer, pkg *Package) []Diagnostic {
	return RunAnalyzerFacts(a, pkg, nil)
}

// RunAnalyzerFacts applies a to pkg under the given shared facts (nil
// falls back to facts over pkg alone).
func RunAnalyzerFacts(a *Analyzer, pkg *Package, facts *Facts) []Diagnostic {
	if facts == nil {
		facts = NewFacts([]*Package{pkg})
	}
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		Facts:    facts,
	}
	a.Run(pass)
	sort.SliceStable(pass.diags, func(i, j int) bool { return pass.diags[i].Pos < pass.diags[j].Pos })
	return pass.diags
}

// IsNamed reports whether t is (a pointer to) the named type path.name.
func IsNamed(t types.Type, path, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == path
}

// PkgFunc reports whether call invokes the package-level function
// pkgPath.fn (e.g. time.Now), resolving the receiver identifier through
// the type checker so aliased imports are still caught.
func PkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, fn string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != fn {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}

// IsDeprecated reports whether the function declaration carries a
// standard "Deprecated:" marker in its doc comment. Analyzers that
// police live code (deadassign, detrand) skip such bodies: deprecated
// compatibility shims exist only to keep old call sites compiling and
// routinely contain idioms — parameter-silencing blank assignments,
// inherited clock plumbing — that would be defects anywhere else.
func IsDeprecated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if strings.HasPrefix(text, "Deprecated:") {
			return true
		}
	}
	return false
}
