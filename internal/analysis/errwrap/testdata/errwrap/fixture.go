// Package fixture seeds errwrap violations and allowed patterns.
package fixture

import (
	"errors"
	"fmt"
)

// ErrCorrupt mirrors checkpoint.ErrCorrupt: a sentinel callers branch
// on to pick resume-from-scratch over crash.
var ErrCorrupt = errors.New("fixture: corrupt")

// ErrInvalidConfig mirrors core.ErrInvalidConfig.
var ErrInvalidConfig = errors.New("fixture: invalid config")

// timeout is package-level but not Err-named: not a sentinel.
var timeout = errors.New("fixture: timeout")

// Classify compares sentinels the broken way.
func Classify(err error) string {
	if err == ErrCorrupt { // want "sentinel ErrCorrupt compared with =="
		return "corrupt"
	}
	if ErrInvalidConfig != err { // want "sentinel ErrInvalidConfig compared with !="
		return "other"
	}
	return "config"
}

// ClassifyOK goes through errors.Is, which sees through wrapping.
func ClassifyOK(err error) bool {
	return errors.Is(err, ErrCorrupt)
}

// NilCheck is fine: nil is not a sentinel.
func NilCheck(err error) bool {
	return err != nil
}

// LocalCompare is fine: timeout is not an Err* sentinel.
func LocalCompare(err error) bool {
	return err == timeout
}

// Wrap keeps identity with %w.
func Wrap(err error) error {
	return fmt.Errorf("load checkpoint: %w", err)
}

// Flatten launders the error into a plain string on the return path.
func Flatten(err error) error {
	return fmt.Errorf("load checkpoint: %v", err) // want "formats an error without %w"
}

// Describe is fine: no error operand, just data.
func Describe(sweep int) error {
	return fmt.Errorf("bad sweep %d", sweep)
}
