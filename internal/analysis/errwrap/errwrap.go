// Package errwrap enforces the error-identity discipline the checkpoint
// and config layers rely on: callers branch on sentinel errors
// (checkpoint.ErrCorrupt, checkpoint.ErrVersion, core.ErrInvalidConfig,
// ...) to decide between resume-from-scratch, refuse-to-start, and
// crash, so an error that loses its identity on the way up converts a
// recoverable corruption into a silent cold restart.
//
// Two rules:
//
//  1. Sentinel comparison: a package-level error variable named Err*
//     must be compared with errors.Is, never == or !=. The sentinels
//     cross package boundaries wrapped (rule 2), and == sees only the
//     outermost wrapper. The finding carries a suggested fix rewriting
//     the comparison to errors.Is(err, ErrX) (rendered by rsulint
//     -fix as a dry-run diff; add the errors import when applying).
//  2. Wrap on re-raise: an fmt.Errorf call that formats an error value
//     must use %w, not %v or %s, so errors.Is/As keep seeing through
//     it. Formatting an error into a plain string for logging is the
//     obs layer's job, not the return path's.
//
// Deliberately permitted: err == nil / err != nil (nil is not a
// sentinel), comparisons where neither side is an Err* package
// variable (e.g. io.EOF handling in tight decode loops is still
// flagged only when the sentinel is module-local — stdlib sentinels
// follow the same Err naming and are caught too, which is intended:
// bufio readers wrap io.EOF), and errors.New/fmt.Errorf creating new
// root errors with no error operand.
package errwrap

import (
	"go/ast"
	"go/constant"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the errwrap check.
var Analyzer = &analysis.Analyzer{
	Name: "errwrap",
	Doc: "compare sentinel errors with errors.Is and wrap re-raised errors " +
		"with %w so identity survives package boundaries",
	Run: run,
}

func run(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkComparison(pass, n)
			case *ast.CallExpr:
				checkErrorf(pass, n)
			}
			return true
		})
	}
}

// checkComparison flags ==/!= against a sentinel error variable and
// suggests the errors.Is form.
func checkComparison(pass *analysis.Pass, cmp *ast.BinaryExpr) {
	if cmp.Op != token.EQL && cmp.Op != token.NEQ {
		return
	}
	xSent := sentinelOf(pass.Info, cmp.X)
	ySent := sentinelOf(pass.Info, cmp.Y)
	if xSent == nil && ySent == nil {
		return
	}
	sent := xSent
	errExpr, sentExpr := cmp.Y, cmp.X
	if sent == nil {
		sent = ySent
		errExpr, sentExpr = cmp.X, cmp.Y
	}
	newText := "errors.Is(" + render(pass.Fset, errExpr) + ", " + render(pass.Fset, sentExpr) + ")"
	if cmp.Op == token.NEQ {
		newText = "!" + newText
	}
	pass.ReportFix(cmp.Pos(), &analysis.SuggestedFix{
		Start:   cmp.Pos(),
		End:     cmp.End(),
		NewText: newText,
	}, "sentinel %s compared with %s; use errors.Is so the match survives %%w wrapping",
		sent.Name(), cmp.Op)
}

// sentinelOf returns the package-level Err* error variable expr refers
// to, or nil.
func sentinelOf(info *types.Info, expr ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !strings.HasPrefix(v.Name(), "Err") {
		return nil
	}
	if !implementsError(v.Type()) {
		return nil
	}
	return v
}

// checkErrorf flags fmt.Errorf calls that format an error operand with
// anything other than %w.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	if !analysis.PkgFunc(pass.Info, call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	format, ok := constString(pass.Info, call.Args[0])
	if !ok || strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if t := pass.Info.TypeOf(arg); t != nil && implementsError(t) {
			pass.Reportf(arg.Pos(),
				"fmt.Errorf formats an error without %%w; the sentinel identity is lost to errors.Is/As upstream")
			return
		}
	}
}

func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// render prints an expression back to source for fix text.
func render(fset *token.FileSet, e ast.Expr) string {
	var sb strings.Builder
	if err := printer.Fprint(&sb, fset, e); err != nil {
		return "<expr>"
	}
	return sb.String()
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface)
}
