package errwrap_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/errwrap"
)

func TestErrwrap(t *testing.T) {
	analyzertest.Run(t, errwrap.Analyzer, "testdata/errwrap")
}
