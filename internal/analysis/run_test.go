package analysis

import (
	"go/ast"
	"reflect"
	"strings"
	"testing"
)

func TestParseAllowList(t *testing.T) {
	rules, err := ParseAllowList("repro/cmd:detrand, repro/tools ,repro/examples:detrand+floateq")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	want := []AllowRule{
		{Prefix: "repro/cmd", Analyzers: []string{"detrand"}},
		{Prefix: "repro/tools"},
		{Prefix: "repro/examples", Analyzers: []string{"detrand", "floateq"}},
	}
	if !reflect.DeepEqual(rules, want) {
		t.Fatalf("rules = %+v, want %+v", rules, want)
	}
	for _, bad := range []string{":detrand", "repro/cmd:"} {
		if _, err := ParseAllowList(bad); err == nil {
			t.Errorf("ParseAllowList(%q) succeeded, want error", bad)
		}
	}
}

func TestAllowed(t *testing.T) {
	rules, err := ParseAllowList("repro/cmd:detrand,repro/tools")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cases := []struct {
		pkg, analyzer string
		want          bool
	}{
		{"repro/cmd/paperbench", "detrand", true},
		{"repro/cmd", "detrand", true},
		{"repro/cmd/paperbench", "floateq", false},
		{"repro/cmdX", "detrand", false}, // prefix must match on path boundary
		{"repro/tools/gen", "floateq", true},
		{"repro/internal/rng", "detrand", false},
	}
	for _, c := range cases {
		if got := Allowed(rules, c.pkg, c.analyzer); got != c.want {
			t.Errorf("Allowed(%q, %q) = %v, want %v", c.pkg, c.analyzer, got, c.want)
		}
	}
}

// countIdents is a trivial analyzer that reports every call to a
// function named "flagme" — enough to exercise RunAll's suppression
// plumbing.
var countIdents = &Analyzer{
	Name: "countidents",
	Doc:  "test analyzer",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "flagme" {
					p.Reportf(id.Pos(), "call to flagme")
				}
				return true
			})
		}
	},
}

func TestRunAllSuppressions(t *testing.T) {
	l := newTestLoader(t)
	pkg, err := l.LoadDir("testdata/suppress", "fixture/suppress")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	findings := RunAll([]*Package{pkg}, []*Analyzer{countIdents}, nil)
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want exactly the unsuppressed one", findings)
	}
	if findings[0].Line != 7 {
		t.Errorf("surviving finding at line %d, want 7 (the unsuppressed use)", findings[0].Line)
	}
	if findings[0].Analyzer != "countidents" {
		t.Errorf("finding analyzer = %q", findings[0].Analyzer)
	}

	// The allowlist removes even the surviving finding.
	allowed := RunAll([]*Package{pkg}, []*Analyzer{countIdents},
		[]AllowRule{{Prefix: "fixture/suppress"}})
	if len(allowed) != 0 {
		t.Fatalf("allowlisted package still produced findings: %v", allowed)
	}
}

func TestRunAllStaleIgnore(t *testing.T) {
	l := newTestLoader(t)
	pkg, err := l.LoadDir("testdata/suppress", "fixture/suppress")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	findings := RunAllOpts([]*Package{pkg}, []*Analyzer{countIdents}, nil,
		Options{ReportStale: true})
	if len(findings) != 2 {
		t.Fatalf("findings = %v, want the unsuppressed call plus one stale ignore", findings)
	}
	stale := findings[1]
	if stale.Analyzer != StaleIgnoreAnalyzer {
		t.Fatalf("second finding analyzer = %q, want %q", stale.Analyzer, StaleIgnoreAnalyzer)
	}
	if stale.Line != 15 {
		t.Errorf("stale finding at line %d, want 15 (the wrong-target comment)", stale.Line)
	}
	if !strings.Contains(stale.Message, `no analyzer named "otheranalyzer"`) {
		t.Errorf("stale message = %q, want the unknown-analyzer form", stale.Message)
	}
	if stale.Fix == nil || stale.Fix.NewText != "" || stale.Fix.End <= stale.Fix.Start {
		t.Errorf("stale finding fix = %+v, want a delete-the-comment span", stale.Fix)
	}

	// A whole-package allowlist rule shadows the comment: the analyzer
	// is exempt there, so the suppression is not provably stale.
	allowed := RunAllOpts([]*Package{pkg}, []*Analyzer{countIdents},
		[]AllowRule{{Prefix: "fixture/suppress"}}, Options{ReportStale: true})
	if len(allowed) != 0 {
		t.Fatalf("allowlisted package still produced findings: %v", allowed)
	}

	// RunAll (no options) keeps stale reporting off: suppression
	// lifecycle is the whole-module runner's concern, not fixture runs'.
	quiet := RunAll([]*Package{pkg}, []*Analyzer{countIdents}, nil)
	for _, f := range quiet {
		if f.Analyzer == StaleIgnoreAnalyzer {
			t.Fatalf("RunAll reported a stale ignore without opting in: %v", f)
		}
	}
}
