// Package fixture seeds floateq violations and allowed patterns.
package fixture

import "math"

// EnergiesEqual compares computed energies exactly — the result flips
// with summation order and compiler optimizations.
func EnergiesEqual(a, b float64) bool {
	return a == b // want "floating-point == comparison"
}

// RatesDiffer compares computed rates exactly.
func RatesDiffer(rates []float64) bool {
	sum := 0.0
	for _, r := range rates {
		sum += r
	}
	return sum != rates[0] // want "floating-point != comparison"
}

// MixedWidth compares float32 against float64 (after conversion).
func MixedWidth(p float32, q float64) bool {
	return float64(p) == q // want "floating-point == comparison"
}

// SentinelChecks compare against compile-time constants: the value was
// assigned, not computed, so the comparison is exact. Must not be
// flagged.
func SentinelChecks(rate, p float64) bool {
	if rate == 0 {
		return false
	}
	if p != 1 {
		return true
	}
	return rate == math.MaxFloat64
}

// NaNCheck is the x != x idiom. Must not be flagged.
func NaNCheck(x float64) bool {
	return x != x
}

// Tolerance is the sanctioned comparison. Must not be flagged.
func Tolerance(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}
