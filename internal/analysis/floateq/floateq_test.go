package floateq_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/floateq"
)

func TestFloateq(t *testing.T) {
	analyzertest.Run(t, floateq.Analyzer, "testdata/floateq")
}
