// Package floateq flags == and != between floating-point operands.
// Probabilities, energies and rates accumulate rounding error, so exact
// equality silently becomes order- and optimization-dependent — the
// MCMC quality-metric corruption class called out in the uncertainty-
// quantification follow-up work. Compare against a tolerance (diff <=
// eps) or restructure around integers instead.
//
// Deliberately permitted: comparisons where either operand is a
// compile-time constant (sentinel checks such as rate == 0 or p == 1
// are exact: the value was assigned, not computed), and the x != x NaN
// idiom.
package floateq

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the floateq check.
var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc: "flag ==/!= between non-constant floating-point operands; " +
		"compare with a tolerance instead",
	Run: run,
}

func run(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, xok := pass.Info.Types[be.X]
			yt, yok := pass.Info.Types[be.Y]
			if !xok || !yok || !isFloat(xt.Type) || !isFloat(yt.Type) {
				return true
			}
			if xt.Value != nil || yt.Value != nil {
				return true // exact sentinel comparison
			}
			if sameVar(pass, be.X, be.Y) {
				return true // x != x: the NaN check idiom
			}
			pass.Reportf(be.OpPos,
				"floating-point %s comparison: rounding makes exact equality order-dependent; "+
					"compare with a tolerance (math.Abs(a-b) <= eps) or use integer-domain values", be.Op)
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func sameVar(pass *analysis.Pass, a, b ast.Expr) bool {
	ai, aok := a.(*ast.Ident)
	bi, bok := b.(*ast.Ident)
	return aok && bok && pass.Info.Uses[ai] != nil && pass.Info.Uses[ai] == pass.Info.Uses[bi]
}
