// Package syntaxerr deliberately fails parsing.
package syntaxerr

func Truncated( {
