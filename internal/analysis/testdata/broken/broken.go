// Package broken deliberately fails type-checking: the loader must
// surface a descriptive error, not panic or silently skip the package.
package broken

func Mismatched() int {
	var x int = "not an int"
	return x + true
}
