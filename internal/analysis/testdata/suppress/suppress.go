// Package suppress exercises lint:ignore handling. Line numbers matter
// to run_test.go: the unsuppressed call must sit on line 7.
package suppress

var suppressedSameLine = flagme() //lint:ignore rsulint/countidents trailing comment form

var unsuppressed = flagme()

//lint:ignore rsulint/countidents preceding comment form
var suppressedLineAbove = flagme()

//lint:ignore rsulint blanket suppression of every analyzer
var suppressedBlanket = flagme()

//lint:ignore rsulint/otheranalyzer wrong target does not suppress countidents
var wrongTarget = flagme() //lint:ignore rsulint/countidents but this one does

func flagme() int { return 0 }
