package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// ImportPath is the module-qualified import path ("repro/internal/rng"),
	// or the synthetic path given to LoadDir for fixture packages.
	ImportPath string
	// Dir is the absolute directory the sources were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads module packages from source. Module-local imports are
// resolved recursively from the module root; standard-library imports
// are type-checked from $GOROOT/src via go/importer's source compiler,
// so no pre-built export data is required. Test files (_test.go) are
// not loaded: they may legitimately use tolerance-free comparisons,
// timing, and raw conversions to exercise edge cases.
type Loader struct {
	Fset *token.FileSet
	// Root is the module root directory (the one holding go.mod).
	Root string
	// Module is the module path declared in go.mod.
	Module string

	std  types.ImporterFrom
	pkgs map[string]*loadEntry
}

type loadEntry struct {
	pkg *Package
	err error
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("analysis: no go.mod found in or above %s", dir)
		}
		d = parent
	}
}

var moduleLineRE = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// NewLoader builds a loader for the module rooted at root.
func NewLoader(root string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: read go.mod: %w", err)
	}
	m := moduleLineRE.FindSubmatch(data)
	if m == nil {
		return nil, fmt.Errorf("analysis: no module line in %s/go.mod", root)
	}
	l := &Loader{
		Fset:   token.NewFileSet(),
		Root:   root,
		Module: string(m[1]),
		pkgs:   map[string]*loadEntry{},
	}
	std, ok := importer.ForCompiler(l.Fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer does not implement ImporterFrom")
	}
	l.std = std
	return l, nil
}

// Load type-checks the module package with the given import path,
// memoized across the loader's lifetime. A package that fails to parse
// or type-check yields a descriptive error (never a panic); the error
// is sticky, so dependents fail with a "could not import" chain rather
// than a silent skip.
func (l *Loader) Load(importPath string) (*Package, error) {
	if e, ok := l.pkgs[importPath]; ok {
		return e.pkg, e.err
	}
	dir := l.Root
	if importPath != l.Module {
		rel := strings.TrimPrefix(importPath, l.Module+"/")
		if rel == importPath {
			return nil, fmt.Errorf("analysis: %q is not under module %q", importPath, l.Module)
		}
		dir = filepath.Join(l.Root, filepath.FromSlash(rel))
	}
	return l.LoadDir(dir, importPath)
}

// LoadDir type-checks the single package in dir under the given import
// path. It is the entry point for fixture packages that live outside
// the module's package tree (e.g. testdata directories).
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if e, ok := l.pkgs[importPath]; ok {
		return e.pkg, e.err
	}
	// Cycle guard: a re-entrant Load of the same path during its own
	// type-check means an import cycle.
	l.pkgs[importPath] = &loadEntry{err: fmt.Errorf("analysis: import cycle through %q", importPath)}
	pkg, err := l.check(dir, importPath)
	l.pkgs[importPath] = &loadEntry{pkg: pkg, err: err}
	return pkg, err
}

func (l *Loader) check(dir, importPath string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: load %s: %w", importPath, err)
	}
	var files []*ast.File
	var parseErrs []string
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !isSourceFile(name) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			parseErrs = append(parseErrs, err.Error())
			continue
		}
		files = append(files, f)
	}
	if len(parseErrs) > 0 {
		return nil, fmt.Errorf("analysis: load %s failed:\n\t%s", importPath, strings.Join(parseErrs, "\n\t"))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: load %s: no Go files in %s", importPath, dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErrs []string
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error: func(err error) {
			if len(typeErrs) < 20 {
				typeErrs = append(typeErrs, err.Error())
			}
		},
	}
	tpkg, _ := conf.Check(importPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: load %s failed:\n\t%s", importPath, strings.Join(typeErrs, "\n\t"))
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.Fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// loaderImporter adapts Loader to types.ImporterFrom: module-local
// paths route back into the loader, everything else goes to the
// source-compiling stdlib importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, li.Root, 0)
}

func (li *loaderImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// Packages returns every package the loader has successfully loaded so
// far — the explicitly requested ones plus their transitively imported
// module-local dependencies — sorted by import path. Fact computation
// (deprecation marks, call edges) runs over this set so cross-package
// knowledge is available even when only a subset was requested.
func (l *Loader) Packages() []*Package {
	var out []*Package
	for _, e := range l.pkgs {
		if e.pkg != nil {
			out = append(out, e.pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out
}

// Expand resolves package patterns into import paths. Supported forms:
// "./..." (every package in the module), "dir/..." subtree wildcards,
// and plain directory or import paths. Directories named "testdata" or
// "vendor" and names starting with "." or "_" are skipped, matching the
// go tool's convention.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "..." || pat == "all":
			paths, err := l.walk(l.Root)
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				add(p)
			}
		case strings.HasSuffix(pat, "/..."):
			base := l.dirForPattern(strings.TrimSuffix(pat, "/..."))
			paths, err := l.walk(base)
			if err != nil {
				return nil, err
			}
			if len(paths) == 0 {
				return nil, fmt.Errorf("analysis: no packages match %q", pat)
			}
			for _, p := range paths {
				add(p)
			}
		default:
			dir := l.dirForPattern(pat)
			if !hasGoFiles(dir) {
				return nil, fmt.Errorf("analysis: no Go files match %q", pat)
			}
			add(l.importPathFor(dir))
		}
	}
	sort.Strings(out)
	return out, nil
}

func (l *Loader) dirForPattern(pat string) string {
	pat = strings.TrimPrefix(pat, "./")
	if pat == "" || pat == "." || pat == l.Module {
		return l.Root
	}
	pat = strings.TrimPrefix(pat, l.Module+"/")
	return filepath.Join(l.Root, filepath.FromSlash(pat))
}

func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || rel == "." {
		return l.Module
	}
	return l.Module + "/" + filepath.ToSlash(rel)
}

func (l *Loader) walk(base string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != base && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			out = append(out, l.importPathFor(path))
		}
		return nil
	})
	return out, err
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, ent := range entries {
		if !ent.IsDir() && isSourceFile(ent.Name()) {
			return true
		}
	}
	return false
}

func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}
