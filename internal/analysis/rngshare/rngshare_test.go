package rngshare_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/rngshare"
)

func TestRngshare(t *testing.T) {
	analyzertest.Run(t, rngshare.Analyzer, "testdata/rngshare")
}
