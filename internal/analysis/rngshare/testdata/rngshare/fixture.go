// Package fixture seeds rngshare violations and allowed patterns.
package fixture

import (
	"sync"

	"repro/internal/rng"
)

// SharedAcrossGoroutines captures one source in two goroutines: each
// capture races with the other goroutine's draws.
func SharedAcrossGoroutines() {
	src := rng.New(1)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_ = src.Uint64() // want "handed to this goroutine but also used"
	}()
	go func() {
		defer wg.Done()
		_ = src.Float64() // want "handed to this goroutine but also used"
	}()
	wg.Wait()
}

// UsedAfterSpawn hands the source to a goroutine and keeps drawing from
// it on the spawning goroutine.
func UsedAfterSpawn() uint64 {
	src := rng.New(2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = src.Uint64() // want "handed to this goroutine but also used"
	}()
	v := src.Uint64()
	<-done
	return v
}

// ArgSharing passes the source as a spawn argument while the parent
// keeps using it — the same race through a different syntax.
func ArgSharing(consume func(*rng.Source)) float64 {
	src := rng.New(3)
	go consume(src) // want "handed to this goroutine but also used"
	return src.Float64()
}

// SplitPerGoroutine is the sanctioned engine.go pattern: every
// goroutine owns a dedicated child stream. Must not be flagged.
func SplitPerGoroutine(workers int) {
	parent := rng.New(4)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		child := parent.Split()
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = child.Uint64()
		}()
	}
	wg.Wait()
	_ = parent.Uint64()
}
