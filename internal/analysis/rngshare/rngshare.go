// Package rngshare enforces the per-goroutine RNG ownership discipline
// of the sweep engine (internal/gibbs/engine.go): an *rng.Source is not
// safe for concurrent use, so a source handed to a spawned goroutine —
// captured by a `go func` closure or passed as a `go` call argument —
// must not also be used anywhere else. The sanctioned pattern is
// Split(): derive a child source per goroutine and transfer ownership
// of the child entirely.
//
// Deliberately permitted: a child source created with Split() (or any
// source) that is used only inside the goroutine it was handed to, and
// sources reached through container structs (the engine's rowSrc slice
// partitions rows disjointly; aliasing through fields is out of scope
// for a syntactic check and is covered by `make race`).
package rngshare

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the rngshare check.
var Analyzer = &analysis.Analyzer{
	Name: "rngshare",
	Doc: "flag an *rng.Source handed to a spawned goroutine while also used outside it; " +
		"Split() a child source per goroutine instead",
	Run: run,
}

const rngPath = "repro/internal/rng"

func run(pass *analysis.Pass) {
	// All use positions of every Source-typed variable in the package.
	uses := map[*types.Var][]token.Pos{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if v, ok := pass.Info.Uses[id].(*types.Var); ok && analysis.IsNamed(v.Type(), rngPath, "Source") {
				uses[v] = append(uses[v], id.Pos())
			}
			return true
		})
	}
	if len(uses) == 0 {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			// The regions owned by the spawned goroutine: the closure body
			// for `go func(){...}()`, plus the call arguments (a source
			// passed by argument is owned by the goroutine from spawn on).
			var regions [][2]token.Pos
			if fl, isClosure := gs.Call.Fun.(*ast.FuncLit); isClosure {
				regions = append(regions, [2]token.Pos{fl.Body.Pos(), fl.Body.End()})
			}
			if len(gs.Call.Args) > 0 {
				regions = append(regions, [2]token.Pos{gs.Call.Args[0].Pos(), gs.Call.Args[len(gs.Call.Args)-1].End()})
			}
			if len(regions) == 0 {
				return true
			}
			within := func(p token.Pos) bool {
				for _, r := range regions {
					if p >= r[0] && p < r[1] {
						return true
					}
				}
				return false
			}
			for v, positions := range uses {
				var inRegion token.Pos
				for _, p := range positions {
					if within(p) {
						inRegion = p
						break
					}
				}
				if inRegion == token.NoPos {
					continue
				}
				// Declared inside the goroutine's regions means it owns it.
				if within(v.Pos()) {
					continue
				}
				for _, p := range positions {
					if !within(p) {
						pass.Reportf(inRegion,
							"rng source %q is handed to this goroutine but also used at %s: an *rng.Source is not "+
								"concurrency-safe; derive a dedicated child with Split() and transfer ownership",
							v.Name(), pass.Fset.Position(p))
						break
					}
				}
			}
			return true
		})
	}
}
