package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one diagnostic resolved to a file position, as emitted by
// cmd/rsulint (and serialized by its -json mode).
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// AllowRule exempts packages from analyzers. Prefix matches an import
// path exactly or as a path prefix ("repro/cmd" matches
// "repro/cmd/paperbench"). An empty Analyzers list exempts the package
// from every analyzer; otherwise only the named ones are skipped.
type AllowRule struct {
	Prefix    string
	Analyzers []string
}

// ParseAllowList parses a comma-separated allowlist flag. Each entry is
// "prefix" (skip all analyzers) or "prefix:name+name" (skip the named
// analyzers only), e.g. "repro/cmd:detrand,repro/tools".
func ParseAllowList(s string) ([]AllowRule, error) {
	var rules []AllowRule
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		prefix, names, found := strings.Cut(entry, ":")
		if prefix == "" {
			return nil, fmt.Errorf("analysis: empty package prefix in allowlist entry %q", entry)
		}
		rule := AllowRule{Prefix: prefix}
		if found {
			for _, n := range strings.Split(names, "+") {
				if n = strings.TrimSpace(n); n != "" {
					rule.Analyzers = append(rule.Analyzers, n)
				}
			}
			if len(rule.Analyzers) == 0 {
				return nil, fmt.Errorf("analysis: allowlist entry %q names no analyzers", entry)
			}
		}
		rules = append(rules, rule)
	}
	return rules, nil
}

// Allowed reports whether analyzer name is exempted for pkgPath.
func Allowed(rules []AllowRule, pkgPath, name string) bool {
	for _, r := range rules {
		if pkgPath != r.Prefix && !strings.HasPrefix(pkgPath, r.Prefix+"/") {
			continue
		}
		if len(r.Analyzers) == 0 {
			return true
		}
		for _, a := range r.Analyzers {
			if a == name {
				return true
			}
		}
	}
	return false
}

// RunAll applies every analyzer to every package, honoring the
// allowlist and //lint:ignore suppression comments, and returns the
// surviving findings sorted by position.
func RunAll(pkgs []*Package, analyzers []*Analyzer, allow []AllowRule) []Finding {
	var out []Finding
	for _, pkg := range pkgs {
		sup := buildSuppressions(pkg)
		for _, a := range analyzers {
			if Allowed(allow, pkg.ImportPath, a.Name) {
				continue
			}
			for _, d := range RunAnalyzer(a, pkg) {
				pos := pkg.Fset.Position(d.Pos)
				if sup.covers(pos, a.Name) {
					continue
				}
				out = append(out, Finding{
					File:     pos.Filename,
					Line:     pos.Line,
					Col:      pos.Column,
					Analyzer: a.Name,
					Message:  d.Message,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// suppressions records, per file and line, which analyzers are silenced
// by a "//lint:ignore rsulint/<name> reason" comment. A suppression
// covers diagnostics on the comment's own line (trailing comment) and
// on the following line (comment on its own line above the finding).
// The target "rsulint" with no analyzer name silences all analyzers.
type suppressions map[string]map[int][]string

func buildSuppressions(pkg *Package) suppressions {
	sup := suppressions{}
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "lint:ignore") {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					continue
				}
				target := fields[1]
				if target != "rsulint" && !strings.HasPrefix(target, "rsulint/") {
					continue
				}
				name := strings.TrimPrefix(target, "rsulint/")
				if name == "rsulint" {
					name = "*"
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := sup[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					sup[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], name)
				lines[pos.Line+1] = append(lines[pos.Line+1], name)
			}
		}
	}
	return sup
}

func (s suppressions) covers(pos token.Position, analyzer string) bool {
	for _, name := range s[pos.Filename][pos.Line] {
		if name == "*" || name == analyzer {
			return true
		}
	}
	return false
}

// RootIdent returns the identifier at the base of a selector/index
// chain (x in x.a.b or x[i].c), or nil.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}
