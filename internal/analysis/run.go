package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one diagnostic resolved to a file position, as emitted by
// cmd/rsulint (and serialized by its -json mode). Fix is present only
// for mechanically fixable findings.
type Finding struct {
	File     string      `json:"file"`
	Line     int         `json:"line"`
	Col      int         `json:"col"`
	Analyzer string      `json:"analyzer"`
	Message  string      `json:"message"`
	Fix      *FindingFix `json:"fix,omitempty"`
}

// FindingFix is a SuggestedFix resolved to byte offsets in File:
// replace [Start, End) of the file's current contents with NewText.
type FindingFix struct {
	Start   int    `json:"start"`
	End     int    `json:"end"`
	NewText string `json:"new_text"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// StaleIgnoreAnalyzer is the analyzer name stale-suppression findings
// are reported under. It is a runner-level check, not a registered
// analyzer: only the runner knows whether a //lint:ignore comment
// suppressed anything across the whole suite.
const StaleIgnoreAnalyzer = "staleignore"

// AllowRule exempts packages from analyzers. Prefix matches an import
// path exactly or as a path prefix ("repro/cmd" matches
// "repro/cmd/paperbench"). An empty Analyzers list exempts the package
// from every analyzer; otherwise only the named ones are skipped.
type AllowRule struct {
	Prefix    string
	Analyzers []string
}

// ParseAllowList parses a comma-separated allowlist flag. Each entry is
// "prefix" (skip all analyzers) or "prefix:name+name" (skip the named
// analyzers only), e.g. "repro/cmd:detrand,repro/tools".
func ParseAllowList(s string) ([]AllowRule, error) {
	var rules []AllowRule
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		prefix, names, found := strings.Cut(entry, ":")
		if prefix == "" {
			return nil, fmt.Errorf("analysis: empty package prefix in allowlist entry %q", entry)
		}
		rule := AllowRule{Prefix: prefix}
		if found {
			for _, n := range strings.Split(names, "+") {
				if n = strings.TrimSpace(n); n != "" {
					rule.Analyzers = append(rule.Analyzers, n)
				}
			}
			if len(rule.Analyzers) == 0 {
				return nil, fmt.Errorf("analysis: allowlist entry %q names no analyzers", entry)
			}
		}
		rules = append(rules, rule)
	}
	return rules, nil
}

// Allowed reports whether analyzer name is exempted for pkgPath. The
// empty name matches only full-package rules (no analyzer list).
func Allowed(rules []AllowRule, pkgPath, name string) bool {
	for _, r := range rules {
		if pkgPath != r.Prefix && !strings.HasPrefix(pkgPath, r.Prefix+"/") {
			continue
		}
		if len(r.Analyzers) == 0 {
			return true
		}
		for _, a := range r.Analyzers {
			if a == name {
				return true
			}
		}
	}
	return false
}

// Options tunes a RunAll invocation.
type Options struct {
	// Facts, when non-nil, is the shared fact base for the run.
	// Leaving it nil computes facts over the analyzed packages only —
	// fine for cmd/rsulint's whole-module runs, too narrow for fixture
	// runs whose deprecation marks live in dependency packages.
	Facts *Facts
	// ReportStale adds a finding (analyzer "staleignore") for every
	// //lint:ignore rsulint comment that suppressed no diagnostic in
	// this run. Suppressions naming an analyzer the allowlist already
	// exempts for their package are not reported: the allowlist, not
	// the comment, is what silenced the analyzer there.
	ReportStale bool
}

// RunAll applies every analyzer to every package, honoring the
// allowlist and //lint:ignore suppression comments, and returns the
// surviving findings sorted by (file, line, col, analyzer, message).
func RunAll(pkgs []*Package, analyzers []*Analyzer, allow []AllowRule) []Finding {
	return RunAllOpts(pkgs, analyzers, allow, Options{})
}

// RunAllOpts is RunAll with explicit Options.
func RunAllOpts(pkgs []*Package, analyzers []*Analyzer, allow []AllowRule, opts Options) []Finding {
	facts := opts.Facts
	if facts == nil {
		facts = NewFacts(pkgs)
	}
	var out []Finding
	for _, pkg := range pkgs {
		sup := buildSuppressions(pkg)
		for _, a := range analyzers {
			if Allowed(allow, pkg.ImportPath, a.Name) {
				continue
			}
			for _, d := range RunAnalyzerFacts(a, pkg, facts) {
				pos := pkg.Fset.Position(d.Pos)
				if sup.covers(pos, a.Name) {
					continue
				}
				f := Finding{
					File:     pos.Filename,
					Line:     pos.Line,
					Col:      pos.Column,
					Analyzer: a.Name,
					Message:  d.Message,
				}
				if d.Fix != nil {
					f.Fix = resolveFix(pkg.Fset, d.Fix)
				}
				out = append(out, f)
			}
		}
		if opts.ReportStale {
			out = append(out, sup.stale(pkg, analyzers, allow)...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out
}

// resolveFix converts token positions to file byte offsets. Fixes that
// span files (malformed) are dropped.
func resolveFix(fset *token.FileSet, fix *SuggestedFix) *FindingFix {
	start := fset.Position(fix.Start)
	end := fset.Position(fix.End)
	if start.Filename != end.Filename || end.Offset < start.Offset {
		return nil
	}
	return &FindingFix{Start: start.Offset, End: end.Offset, NewText: fix.NewText}
}

// RootIdent returns the identifier at the base of a selector/index
// chain (x in x.a.b or x[i].c), or nil.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// suppRecord is one //lint:ignore comment: the analyzer it targets
// ("*" for the blanket form), where it sits, and whether any diagnostic
// in the current run actually needed it.
type suppRecord struct {
	name string // analyzer name, or "*"
	pos  token.Position
	end  token.Position
	used bool
}

// suppressions indexes the package's //lint:ignore rsulint comments by
// file and covered line. A suppression covers diagnostics on the
// comment's own line (trailing comment) and on the following line
// (comment on its own line above the finding).
type suppressions struct {
	byLine map[string]map[int][]*suppRecord
	recs   []*suppRecord
}

func buildSuppressions(pkg *Package) *suppressions {
	sup := &suppressions{byLine: map[string]map[int][]*suppRecord{}}
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "lint:ignore") {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					continue
				}
				target := fields[1]
				if target != "rsulint" && !strings.HasPrefix(target, "rsulint/") {
					continue
				}
				name := strings.TrimPrefix(target, "rsulint/")
				if name == "rsulint" {
					name = "*"
				}
				rec := &suppRecord{
					name: name,
					pos:  pkg.Fset.Position(c.Pos()),
					end:  pkg.Fset.Position(c.End()),
				}
				sup.recs = append(sup.recs, rec)
				lines := sup.byLine[rec.pos.Filename]
				if lines == nil {
					lines = map[int][]*suppRecord{}
					sup.byLine[rec.pos.Filename] = lines
				}
				lines[rec.pos.Line] = append(lines[rec.pos.Line], rec)
				lines[rec.pos.Line+1] = append(lines[rec.pos.Line+1], rec)
			}
		}
	}
	return sup
}

func (s *suppressions) covers(pos token.Position, analyzer string) bool {
	for _, rec := range s.byLine[pos.Filename][pos.Line] {
		if rec.name == "*" || rec.name == analyzer {
			rec.used = true
			return true
		}
	}
	return false
}

// stale returns one finding per suppression comment that silenced
// nothing: either its analyzer never fired on its lines, or the
// analyzer no longer exists. Records whose target the allowlist
// exempts (or, for the blanket form, whole-package exemptions) are
// skipped — there the comment is shadowed, not provably stale.
func (s *suppressions) stale(pkg *Package, analyzers []*Analyzer, allow []AllowRule) []Finding {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []Finding
	for _, rec := range s.recs {
		if rec.used {
			continue
		}
		if rec.name == "*" {
			if Allowed(allow, pkg.ImportPath, "") {
				continue
			}
		} else if Allowed(allow, pkg.ImportPath, rec.name) {
			continue
		}
		msg := fmt.Sprintf("stale //lint:ignore rsulint/%s: no %s diagnostic here any more; delete the comment", rec.name, rec.name)
		if rec.name == "*" {
			msg = "stale //lint:ignore rsulint: no diagnostic suppressed here any more; delete the comment"
		} else if !known[rec.name] {
			msg = fmt.Sprintf("stale //lint:ignore rsulint/%s: no analyzer named %q; delete or fix the comment", rec.name, rec.name)
		}
		out = append(out, Finding{
			File:     rec.pos.Filename,
			Line:     rec.pos.Line,
			Col:      rec.pos.Column,
			Analyzer: StaleIgnoreAnalyzer,
			Message:  msg,
			Fix:      &FindingFix{Start: rec.pos.Offset, End: rec.end.Offset, NewText: ""},
		})
	}
	return out
}
