package hotalloc

import (
	"fmt"
	"go/ast"
	"go/types"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// hotRange is the source span of one function on the hot path, used to
// filter compiler escape diagnostics down to the annotated kernels.
type hotRange struct {
	pkg        string
	fn         string
	start, end int
}

// EscapeCheck is the compiler-assisted half of the hotalloc contract
// (rsulint -hot-escape). It recompiles every package containing a
// //rsulint:hot function with -gcflags=-m, parses the escape-analysis
// diagnostics, and reports any "escapes to heap" / "moved to heap"
// inside a hot function or its same-package callees. Where the AST mode
// guesses, this mode asks the compiler — it sees allocations the AST
// walk cannot (fmt boxing through interfaces, map/channel internals)
// and stays silent about ones the compiler proves stack-bound.
//
// The build runs with a throwaway GOCACHE: -m diagnostics are emitted
// only on a real compile, and a warm cache would silently skip it and
// report nothing. That makes this mode cost a full fresh build of the
// hot packages and their deps (~10-15 s), which is why it hides behind
// a flag instead of running on every lint.
func EscapeCheck(root string, pkgs []*analysis.Package, facts *analysis.Facts) ([]analysis.Finding, error) {
	ranges := map[string][]hotRange{} // filename -> spans
	hotPkgs := map[string]bool{}
	for _, pkg := range pkgs {
		for _, spans := range collectHotRanges(pkg, facts) {
			ranges[spans.file] = append(ranges[spans.file], spans.r)
			hotPkgs[pkg.ImportPath] = true
		}
	}
	if len(hotPkgs) == 0 {
		return nil, nil
	}
	var paths []string
	for p := range hotPkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	// A warm build cache swallows -m output entirely; compile into a
	// throwaway cache so the diagnostics always materialize.
	cache, err := os.MkdirTemp("", "rsulint-escape-*")
	if err != nil {
		return nil, fmt.Errorf("hotalloc: escape cache: %w", err)
	}
	defer os.RemoveAll(cache)

	args := []string{"build"}
	for _, p := range paths {
		args = append(args, "-gcflags="+p+"=-m")
	}
	args = append(args, paths...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	cmd.Env = append(os.Environ(), "GOCACHE="+cache)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("hotalloc: go %s: %w\n%s", strings.Join(args, " "), err, out)
	}
	return parseEscapes(string(out), root, ranges), nil
}

type fileRange struct {
	file string
	r    hotRange
}

// collectHotRanges returns the line span of every function reachable
// from a //rsulint:hot annotation in pkg — the same reachability the
// AST mode applies, so the two modes police an identical set.
func collectHotRanges(pkg *analysis.Package, facts *analysis.Facts) []fileRange {
	decls := map[types.Object]*ast.FuncDecl{}
	var roots []types.Object
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			obj := pkg.Info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			decls[obj] = fd
			if analysis.HasHotMark(fd) {
				roots = append(roots, obj)
			}
		}
	}
	var out []fileRange
	for _, o := range facts.Reachable(roots) {
		fd := decls[o]
		if fd == nil {
			continue
		}
		start := pkg.Fset.Position(fd.Pos())
		end := pkg.Fset.Position(fd.End())
		out = append(out, fileRange{
			file: start.Filename,
			r: hotRange{
				pkg:   pkg.ImportPath,
				fn:    fd.Name.Name,
				start: start.Line,
				end:   end.Line,
			},
		})
	}
	return out
}

var escapeLineRE = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// parseEscapes filters -m output down to heap allocations inside hot
// ranges. "leaking param" notes are informational (the callee keeps a
// reference; the caller decides where it lives) and are skipped.
func parseEscapes(out, root string, ranges map[string][]hotRange) []analysis.Finding {
	var findings []analysis.Finding
	for _, line := range strings.Split(out, "\n") {
		m := escapeLineRE.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		file := m[1]
		if !strings.HasPrefix(file, string(os.PathSeparator)) {
			file = root + string(os.PathSeparator) + strings.TrimPrefix(file, "./")
		}
		lineNo, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		for _, hr := range ranges[file] {
			if lineNo < hr.start || lineNo > hr.end {
				continue
			}
			findings = append(findings, analysis.Finding{
				File:     file,
				Line:     lineNo,
				Col:      col,
				Analyzer: "hotalloc",
				Message: fmt.Sprintf("escape analysis: %s inside //rsulint:hot path %s.%s",
					msg, hr.pkg, hr.fn),
			})
			break
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
	return findings
}
