// Package hotalloc enforces the allocation-free contract of functions
// annotated //rsulint:hot — the fused sweep kernel (mrf.Kernel.SweepRow
// and everything it calls), the engine's tile dispatch, and the
// branch-free categorical draw. A single heap allocation per site would
// dominate the ~56 ns/site budget (BENCH_kernel.json), and the
// BenchmarkSweepSteadyState gate requires 0 allocs/op; this analyzer
// catches the regression at review time instead of at the benchmark
// gate.
//
// The check runs at the AST level over every hot function and its
// same-package static callees (call-graph-lite, Facts.Reachable):
// make/new, composite literals, append, function literals (closure
// captures), go/defer statements, string<->[]byte conversions, string
// concatenation, and interface boxing (a concrete value passed,
// assigned or converted to an interface type) are all reported.
//
// AST-level detection is necessarily approximate — it cannot see an
// allocation the compiler introduces, and it cannot prove one it sees
// is elided — so the suite pairs it with a compiler-assisted mode
// (rsulint -hot-escape, EscapeCheck) that parses `go build -gcflags=-m`
// escape-analysis output and cross-checks it against the same
// annotations. AST mode runs always and is fast; escape mode is exact
// and costs a fresh compile.
//
// Deliberately permitted: calls into other packages (escape mode and
// their own annotations cover them), dynamic method calls through
// interfaces (dispatch, not allocation), and everything in functions
// not reachable from a //rsulint:hot annotation.
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the AST-level hotalloc check.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "forbid heap allocations, closures, append growth and interface " +
		"boxing in //rsulint:hot functions and their same-package callees",
	Run: run,
}

func run(pass *analysis.Pass) {
	decls := map[types.Object]*ast.FuncDecl{}
	var roots []types.Object
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			obj := pass.Info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			decls[obj] = fd
			if analysis.HasHotMark(fd) {
				roots = append(roots, obj)
			}
		}
	}
	if len(roots) == 0 {
		return
	}
	rootName := map[types.Object]string{}
	for _, r := range roots {
		for _, o := range pass.Facts.Reachable([]types.Object{r}) {
			if _, claimed := rootName[o]; !claimed {
				rootName[o] = r.Name()
			}
		}
	}
	for _, obj := range pass.Facts.Reachable(roots) {
		fd := decls[obj]
		if fd == nil || fd.Body == nil {
			continue
		}
		where := "//rsulint:hot function"
		if root := rootName[obj]; root != obj.Name() {
			where = fmt.Sprintf("hot path (called from //rsulint:hot %s)", root)
		}
		checkBody(pass, fd, where)
	}
}

func checkBody(pass *analysis.Pass, fd *ast.FuncDecl, where string) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "%s: function literal allocates its closure on the heap", where)
			return false
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "%s: go statement allocates a goroutine", where)
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "%s: defer carries per-call bookkeeping; hoist cleanup out of the hot path", where)
		case *ast.CompositeLit:
			pass.Reportf(n.Pos(), "%s: composite literal may allocate; hoist it into per-run scratch", where)
		case *ast.CallExpr:
			checkCall(pass, n, where)
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if len(n.Lhs) != len(n.Rhs) {
					break
				}
				if boxes(pass.Info, pass.Info.TypeOf(n.Lhs[i]), rhs) {
					pass.Reportf(rhs.Pos(), "%s: assignment boxes a concrete value into an interface", where)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pass.Info.TypeOf(n)) {
				pass.Reportf(n.Pos(), "%s: string concatenation allocates", where)
			}
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, where string) {
	// Builtins and conversions.
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := pass.Info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				pass.Reportf(call.Pos(), "%s: %s allocates; use per-run scratch (mrf.GetScratch / sync.Pool at tile granularity)", where, b.Name())
				return
			case "append":
				pass.Reportf(call.Pos(), "%s: append may grow the backing array; size buffers up front", where)
				return
			}
		}
	}
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type
		from := pass.Info.TypeOf(call.Args[0])
		switch {
		case types.IsInterface(to) && from != nil && !types.IsInterface(from):
			pass.Reportf(call.Pos(), "%s: conversion boxes a concrete value into an interface", where)
		case isString(to) != isString(from) && (isByteSlice(to) || isByteSlice(from)):
			pass.Reportf(call.Pos(), "%s: string<->[]byte conversion copies", where)
		}
		return
	}
	// Interface-typed parameters box concrete arguments.
	sig, ok := pass.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // forwarding a slice, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if boxes(pass.Info, pt, arg) {
			pass.Reportf(arg.Pos(), "%s: argument boxes a concrete value into interface parameter %s", where, paramName(params, i, sig.Variadic()))
		}
	}
}

// boxes reports whether passing expr where type dst is expected wraps a
// concrete value in an interface.
func boxes(info *types.Info, dst types.Type, expr ast.Expr) bool {
	if dst == nil || !types.IsInterface(dst) {
		return false
	}
	src := info.TypeOf(expr)
	if src == nil || types.IsInterface(src) {
		return false
	}
	if b, ok := src.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return true
}

func paramName(params *types.Tuple, i int, variadic bool) string {
	if variadic && i >= params.Len()-1 {
		i = params.Len() - 1
	}
	if i < params.Len() && params.At(i).Name() != "" {
		return params.At(i).Name()
	}
	return fmt.Sprintf("#%d", i)
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}
