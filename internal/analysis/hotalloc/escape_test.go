package hotalloc

import "testing"

// TestParseEscapes feeds canned -gcflags=-m output through the filter:
// only heap diagnostics inside a hot range survive; leaking-param notes
// and out-of-range escapes do not.
func TestParseEscapes(t *testing.T) {
	ranges := map[string][]hotRange{
		"/mod/internal/mrf/kernel.go": {
			{pkg: "repro/internal/mrf", fn: "SweepRow", start: 90, end: 200},
		},
	}
	out := `# repro/internal/mrf
./internal/mrf/kernel.go:48:10: make([]int32, n) escapes to heap
./internal/mrf/kernel.go:95:6: moved to heap: acc
./internal/mrf/kernel.go:120:14: s escapes to heap
./internal/mrf/kernel.go:130:7: leaking param: row
not a diagnostic line
`
	got := parseEscapes(out, "/mod", ranges)
	if len(got) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(got), got)
	}
	for i, wantLine := range []int{95, 120} {
		f := got[i]
		if f.Line != wantLine || f.Analyzer != "hotalloc" {
			t.Errorf("finding %d = %+v, want line %d analyzer hotalloc", i, f, wantLine)
		}
		if f.File != "/mod/internal/mrf/kernel.go" {
			t.Errorf("finding %d file = %q", i, f.File)
		}
	}
}

// TestParseEscapesSorted checks the deterministic ordering contract.
func TestParseEscapesSorted(t *testing.T) {
	ranges := map[string][]hotRange{
		"/mod/b.go": {{pkg: "p", fn: "B", start: 1, end: 99}},
		"/mod/a.go": {{pkg: "p", fn: "A", start: 1, end: 99}},
	}
	out := "./b.go:5:1: x escapes to heap\n./a.go:7:1: y escapes to heap\n"
	got := parseEscapes(out, "/mod", ranges)
	if len(got) != 2 || got[0].File != "/mod/a.go" || got[1].File != "/mod/b.go" {
		t.Fatalf("not sorted by file: %v", got)
	}
}
