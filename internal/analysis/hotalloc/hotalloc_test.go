package hotalloc_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analyzertest.Run(t, hotalloc.Analyzer, "testdata/hotalloc")
}
