// Package fixture seeds hotalloc violations and allowed patterns. Only
// functions reachable from a //rsulint:hot annotation are policed; the
// cold setup path at the bottom allocates freely.
package fixture

type point struct{ x, y int }

//rsulint:hot
func HotMake(buf []int, n int) []int {
	tmp := make([]int, n) // want "make allocates"
	for i := range tmp {
		tmp[i] = i
	}
	return append(buf, tmp...) // want "append may grow the backing array"
}

//rsulint:hot
func HotClosure(xs []int) int {
	f := func() int { return len(xs) } // want "function literal allocates its closure"
	return f()
}

//rsulint:hot
func HotSpawn() {
	go worker() // want "go statement allocates a goroutine"
}

//rsulint:hot
func HotDefer(release func()) {
	defer release() // want "defer carries per-call bookkeeping"
}

//rsulint:hot
func HotLit(a, b int) int {
	p := point{a, b} // want "composite literal may allocate"
	return p.x + p.y
}

//rsulint:hot
func HotConcat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

//rsulint:hot
func HotConv(b []byte) int {
	return len(string(b)) // want "conversion copies"
}

//rsulint:hot
func HotBoxAssign(v int) {
	var sink interface{}
	sink = v // want "assignment boxes a concrete value"
	_ = sink
}

//rsulint:hot
func HotBoxArg(n int) {
	consume(n) // want "boxes a concrete value into interface parameter v"
}

// HotCaller is clean itself; the violation sits in its same-package
// callee, reached through the call-graph-lite closure.
//
//rsulint:hot
func HotCaller(n int) int {
	return helper(n)
}

func helper(n int) int {
	s := new(int) // want "new allocates"
	*s = n
	return *s
}

// HotClean stays allocation-free the way the real kernels do: index
// arithmetic over caller-owned slices.
//
//rsulint:hot
func HotClean(labels []uint8, w int) int {
	sum := 0
	for i := 0; i < w && i < len(labels); i++ {
		sum += int(labels[i])
	}
	return sum
}

func consume(v interface{}) bool { return v != nil }

func worker() {}

// coldSetup is not on any hot path: allocations are fine here.
func coldSetup(n int) []int {
	return make([]int, n)
}

var _ = coldSetup
