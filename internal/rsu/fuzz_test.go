package rsu

import (
	"testing"

	"repro/internal/fixed"
)

// FuzzThresholdMapWords: any pair of 64-bit control words must expand to
// a well-formed map (all codes 4-bit) without panicking, and expanding
// then recompressing a *monotone* word pair must reproduce the same map.
func FuzzThresholdMapWords(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(0x13120b0403020100), uint64(0x3e3e3e3e2d241c14))
	f.Add(^uint64(0), ^uint64(0))
	f.Fuzz(func(t *testing.T, lo, hi uint64) {
		var codes [16]fixed.Intensity
		for i := range codes {
			codes[i] = fixed.NewIntensity(15 - i)
		}
		tm := ThresholdMapFromWords(lo, hi, codes)
		m := tm.Expand()
		for e, c := range m {
			if c > 15 {
				t.Fatalf("energy %d expanded to 5-bit code %d", e, c)
			}
		}
		// Expansion then compression then expansion is idempotent
		// whenever the expanded map is compressible.
		tm2, err := CompressMap(m)
		if err != nil {
			return
		}
		if tm2.Expand() != m {
			t.Fatal("compress/expand not idempotent")
		}
	})
}
