package rsu

import (
	"fmt"
	"math"

	"repro/internal/fault"
	"repro/internal/fixed"
	"repro/internal/rng"
)

// SampleFaulty is Sample with the fault-injection and online-detection
// layer of internal/fault threaded between the pipeline stages. For a
// unit with no active faults and untripped monitors it draws exactly
// the same RNG stream as Sample and returns the same label, so the
// fault path costs nothing in fidelity when healthy.
//
// Per channel draw the fault hooks are, in stage order:
//
//	replica   — uc.NextReplica(): the §5.3 round-robin scheduler over
//	            the (possibly remapped) physical RET replicas
//	intensity — uc.ApplyCode: stuck-at bits corrupt the latched code
//	rate      — uc.RateScale: dead SPAD (0) or wear-out decay (<1)
//	race      — uc.ExtraRace: dark-count storms and quiescence
//	            leakage race a spurious exponential clock
//	register  — uc.WrapActive: a saturating measurement latches a
//	            junk phase of the free-running shift register
//	monitor   — uc.Observe: every measurement feeds the per-replica
//	            monitors (stall/EWMA/readback/dark-fire)
//
// The caller owns the policy loop: call uc.AfterSample after each
// sample and react to the returned fault.Reaction (see
// apps.NewFaultRSUSampler).
func (u *Unit) SampleFaulty(in Input, src *rng.Source, uc *fault.UnitCtx) (fixed.Label, Timing) {
	if in.Data2PerLabel != nil && len(in.Data2PerLabel) < u.cfg.M {
		panic(fmt.Sprintf("rsu: Data2PerLabel has %d entries, need %d", len(in.Data2PerLabel), u.cfg.M))
	}
	if in.SingletonPerLabel != nil && len(in.SingletonPerLabel) < u.cfg.M {
		panic(fmt.Sprintf("rsu: SingletonPerLabel has %d entries, need %d", len(in.SingletonPerLabel), u.cfg.M))
	}
	uc.BeginSample()
	window := u.timer.Window()
	maxCount := u.timer.MaxCount()
	bestIdx := u.cfg.M - 1
	bestCount := maxCount
	first := true
	for idx := u.cfg.M - 1; idx >= 0; idx-- {
		e := u.Energy(in, idx)
		commanded := u.cfg.Map[e]
		rep := uc.NextReplica()
		code := uc.ApplyCode(commanded, rep)

		scale := uc.RateScale(rep)
		nominal := u.levels[code]
		var ttf float64
		switch {
		case scale <= 0 || nominal <= 0:
			// Dead SPAD or dark rung: the channel never fires.
			ttf = math.Inf(1)
		case u.cfg.Mode == Physical:
			ttf = u.cfg.Circuit.SampleTTF(uint8(code), window, src)
			if scale < 1 {
				// Wear-out stretches the photon interarrival times by
				// the surviving fraction.
				ttf /= scale
			}
		default:
			ttf = src.Exponential(nominal * scale)
		}
		if extra := uc.ExtraRace(rep) * u.maxLevel; extra > 0 {
			// Spurious detections (dark-count storm, quiescence
			// leakage) race the real channel.
			if t := src.Exponential(extra); t < ttf {
				ttf = t
			}
		}

		count, saturated := u.timer.QuantizeSat(ttf)
		if saturated && uc.WrapActive(rep) {
			// Register-wrap fault: instead of holding at max count the
			// free-running shift register is latched at a junk phase.
			count = uint32(src.Intn(int(maxCount)))
			saturated = false
		}

		uc.Observe(fault.Obs{
			Replica:   rep,
			Commanded: commanded,
			Applied:   code,
			Dark:      u.levels[commanded] <= 0,
			ExpCount:  u.expCount[commanded],
			Count:     count,
			Saturated: saturated,
		})

		if first || count < bestCount {
			bestIdx, bestCount = idx, count
			first = false
		}
	}
	if bestCount >= maxCount {
		return in.Current, u.EvalTiming()
	}
	return fixed.NewLabel(bestIdx), u.EvalTiming()
}
