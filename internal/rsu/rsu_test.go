package rsu

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/fixed"
	"repro/internal/ret"
	"repro/internal/rng"
)

// testUnit builds an RSU-G with the default circuit, a LUT tuned to
// temperature T (in 8-bit energy units), and the given width/mode.
func testUnit(t testing.TB, m, width int, vector bool, temperature float64, mode SamplingMode) *Unit {
	t.Helper()
	src := rng.New(99)
	circuit := ret.DefaultCircuit(src)
	circuit.Detector.DarkRate = 0
	circuit.Detector.JitterSigma = 0
	u, err := New(Config{
		M: m, Width: width, Vector: vector,
		DoubletonWeight: 1, SingletonWeight: 1,
		ClockHz: 1e9,
		Mode:    mode,
		Circuit: circuit,
	})
	if err != nil {
		t.Fatal(err)
	}
	lut, err := BuildIntensityMap(u.Levels(), temperature)
	if err != nil {
		t.Fatal(err)
	}
	u.SetMap(lut)
	return u
}

func TestBuildIntensityMapShape(t *testing.T) {
	u := testUnit(t, 4, 1, false, 40, Ideal)
	lut := u.Config().Map
	levels := u.Levels()
	// Energy 0 maps to the brightest code.
	if levels[lut[0]] != levels[15] {
		t.Fatalf("E=0 maps to code %d (rate %v), want brightest", lut[0], levels[lut[0]])
	}
	// Rates are monotone non-increasing in energy.
	for e := 1; e < 256; e++ {
		if levels[lut[e]] > levels[lut[e-1]] {
			t.Fatalf("rate increases at energy %d: %v -> %v", e, levels[lut[e-1]], levels[lut[e]])
		}
	}
	// Energies beyond the ladder's dynamic range go dark (rate 0):
	// temperature 40 resolves E < 40·ln(15·2) ≈ 136.
	if levels[lut[255]] != 0 {
		t.Fatalf("E=255 maps to code %d (rate %v), want dark", lut[255], levels[lut[255]])
	}
	// Within the resolvable range no energy is dark.
	for e := 0; e < 100; e++ {
		if levels[lut[e]] <= 0 {
			t.Fatalf("energy %d mapped to dark code %d", e, lut[e])
		}
	}
}

func TestBuildIntensityMapApproximation(t *testing.T) {
	u := testUnit(t, 4, 1, false, 40, Ideal)
	lut := u.Config().Map
	levels := u.Levels()
	// Within the ladder's dynamic range (ratio 15 => E < 40*ln(15)≈108)
	// the realized rate should be within half a level of the target.
	for e := 0; e < 100; e++ {
		target := levels[15] * math.Exp(-float64(e)/40)
		got := levels[lut[e]]
		if got/target > 1.8 || target/got > 1.8 {
			t.Fatalf("energy %d: realized %v vs target %v", e, got, target)
		}
	}
}

func TestBuildIntensityMapErrors(t *testing.T) {
	var levels [16]float64
	if _, err := BuildIntensityMap(levels, 40); err == nil {
		t.Error("all-dark ladder accepted")
	}
	levels[3] = 1
	if _, err := BuildIntensityMap(levels, 0); err == nil {
		t.Error("zero temperature accepted")
	}
	levels[4] = math.NaN()
	if _, err := BuildIntensityMap(levels, 40); err == nil {
		t.Error("NaN level accepted")
	}
}

func TestPack64RoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		var m IntensityMap
		for i := range m {
			m[i] = fixed.NewIntensity(src.Intn(16))
		}
		return UnpackIntensityMap(m.Pack64()) == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTTFTimer(t *testing.T) {
	timer := NewTTFTimer(1e9)
	if got := timer.Resolution(); math.Abs(got-125e-12) > 1e-18 {
		t.Fatalf("resolution %v, want 125ps", got)
	}
	if timer.MaxCount() != 255 {
		t.Fatalf("max count %d", timer.MaxCount())
	}
	if w := timer.Window(); math.Abs(w-31.875e-9) > 1e-15 {
		t.Fatalf("window %v", w)
	}
	cases := []struct {
		ttf  float64
		want uint32
	}{
		{0, 0},
		{-1, 0},
		{124e-12, 0},
		{126e-12, 1},
		{1e-9, 8},
		{1, 255},
		{math.Inf(1), 255},
	}
	for _, c := range cases {
		if got := timer.Quantize(c.ttf); got != c.want {
			t.Errorf("Quantize(%v) = %d, want %d", c.ttf, got, c.want)
		}
	}
}

func TestTTFTimerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTTFTimer(0)
}

func TestNewValidation(t *testing.T) {
	src := rng.New(1)
	circuit := ret.DefaultCircuit(src)
	base := Config{M: 5, Width: 1, ClockHz: 1e9, Circuit: circuit}
	for _, mutate := range []func(*Config){
		func(c *Config) { c.M = 1 },
		func(c *Config) { c.M = 65 },
		func(c *Config) { c.Width = 0 },
		func(c *Config) { c.ClockHz = 0 },
		func(c *Config) { c.Circuit = nil },
		func(c *Config) { c.Replicas = -1 },
	} {
		cfg := base
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config accepted: %+v", cfg)
		}
	}
	u, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	if u.Config().Replicas != DefaultReplicas {
		t.Fatalf("default replicas = %d", u.Config().Replicas)
	}
}

// TestEvalTiming pins the paper's latency formulas: RSU-G1 takes
// 7+(M-1) cycles (§5.1) and RSU-G64 takes 12 (§5.1/§5.3).
func TestEvalTiming(t *testing.T) {
	cases := []struct {
		m, width, replicas int
		wantCycles         int
	}{
		{5, 1, 4, 11},   // 7 + (5-1)
		{49, 1, 4, 55},  // 7 + 48
		{64, 1, 4, 70},  // 7 + 63
		{64, 64, 4, 12}, // paper: "evaluate up to 64 labels in 12 cycles"
		{49, 4, 4, 20},  // depth 8, 13 steps
		{5, 1, 1, 23},   // replicas=1: interval 4 => 7 + 4*4
		{5, 1, 2, 15},   // interval 2 => 7 + 4*2
	}
	src := rng.New(2)
	for _, c := range cases {
		circuit := ret.DefaultCircuit(src)
		u, err := New(Config{M: c.m, Width: c.width, Replicas: c.replicas, ClockHz: 1e9, Circuit: circuit})
		if err != nil {
			t.Fatal(err)
		}
		if got := u.EvalTiming().Cycles; got != c.wantCycles {
			t.Errorf("M=%d K=%d R=%d: cycles %d, want %d", c.m, c.width, c.replicas, got, c.wantCycles)
		}
	}
}

func TestEnergyStage(t *testing.T) {
	u := testUnit(t, 8, 1, false, 40, Ideal)
	in := Input{
		Neighbors: [4]fixed.Label{1, 2, 3, 4},
		Data1:     10,
		Data2:     12,
	}
	label := 3
	// singleton (10-12)^2 = 4; doubletons (3-1)^2+(3-2)^2+0+(3-4)^2 = 6
	if got := u.Energy(in, label); got != 10 {
		t.Fatalf("energy = %d, want 10", got)
	}
}

func TestEnergyStageVector(t *testing.T) {
	u := testUnit(t, 49, 1, true, 40, Ideal)
	a := fixed.PackVec(1, 1)
	n := fixed.PackVec(3, 2)
	in := Input{Neighbors: [4]fixed.Label{n, a, a, a}, Data1: 5, Data2: 5}
	// Identity label table: index == raw 6-bit code (M=49 > 26).
	// singleton 0; doubleton to n: (3-1)^2+(2-1)^2 = 5; others 0
	if got := u.Energy(in, int(a)); got != 5 {
		t.Fatalf("vector energy = %d, want 5", got)
	}
}

func TestEnergyPerLabelData(t *testing.T) {
	u := testUnit(t, 4, 1, false, 40, Ideal)
	in := Input{
		Neighbors:     [4]fixed.Label{2, 2, 2, 2},
		Data1:         10,
		Data2PerLabel: []uint8{10, 11, 12, 13},
	}
	// label 2: singleton (10-12)^2 = 4, doubletons 0
	if got := u.Energy(in, 2); got != 4 {
		t.Fatalf("label 2 energy %d, want 4", got)
	}
	// label 0: singleton (10-10)^2 = 0, doubletons 4x(0-2)^2 = 16
	if got := u.Energy(in, 0); got != 16 {
		t.Fatalf("label 0 energy %d, want 16", got)
	}
}

func TestEnergyExternalSingleton(t *testing.T) {
	u := testUnit(t, 4, 1, false, 40, Ideal)
	in := Input{SingletonPerLabel: []fixed.Energy{7, 0, 0, 0}}
	if got := u.Energy(in, 0); got != 7 {
		t.Fatalf("external singleton energy %d, want 7", got)
	}
}

func TestSamplePanicsOnShortPerLabelSlices(t *testing.T) {
	u := testUnit(t, 4, 1, false, 40, Ideal)
	src := rng.New(3)
	for _, in := range []Input{
		{Data2PerLabel: []uint8{1}},
		{SingletonPerLabel: []fixed.Energy{1}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for short slice")
				}
			}()
			u.Sample(in, src)
		}()
	}
}

// TestSampleDistributionTracksIdealConditional: with ideal-exponential
// TTFs, the empirical distribution must match the rate-proportional
// conditional up to the TTF-register quantization error, which the
// paper's prototype bounds at roughly 10-24% relative (§7).
func TestSampleDistributionTracksIdealConditional(t *testing.T) {
	// Temperature 10 gives the conditional a clear mode (the 16-level
	// ladder and TTF register legitimately flip near-ties).
	u := testUnit(t, 4, 1, false, 10, Ideal)
	src := rng.New(4)
	in := Input{Neighbors: [4]fixed.Label{1, 1, 1, 2}, Data1: 8, Data2: 8}
	want := u.IdealConditional(in)
	got := u.SampleDistribution(in, 200000, src)
	tv := 0.0
	for i := range want {
		tv += math.Abs(want[i] - got[i])
	}
	tv /= 2
	if tv > 0.08 {
		t.Fatalf("TV distance %v between sampled and ideal conditional\nwant %v\ngot  %v", tv, want, got)
	}
	// The modal label must be preserved despite quantization.
	if argmax(want) != argmax(got) {
		t.Fatalf("mode flipped: want %v got %v", want, got)
	}
}

func argmax(xs []float64) int {
	best, bi := math.Inf(-1), 0
	for i, x := range xs {
		if x > best {
			best, bi = x, i
		}
	}
	return bi
}

// TestSampleBoltzmannShape: the unit's realized conditional should
// approximate softmax(-E/T) over the energies it computes — the Gibbs
// contract. Tolerances are loose because of the 16-level ladder and the
// paper-documented parameterization error.
func TestSampleBoltzmannShape(t *testing.T) {
	const temp = 40.0
	u := testUnit(t, 3, 1, false, temp, Ideal)
	src := rng.New(5)
	in := Input{Neighbors: [4]fixed.Label{0, 0, 1, 1}, Data1: 6, Data2: 8}
	var energies [3]float64
	for l := 0; l < 3; l++ {
		energies[l] = float64(u.Energy(in, l))
	}
	want := make([]float64, 3)
	sum := 0.0
	for l := range want {
		want[l] = math.Exp(-energies[l] / temp)
		sum += want[l]
	}
	for l := range want {
		want[l] /= sum
	}
	got := u.SampleDistribution(in, 150000, src)
	for l := range want {
		if want[l] < 0.02 {
			continue // below the ladder's resolvable range
		}
		rel := math.Abs(got[l]-want[l]) / want[l]
		if rel > 0.30 {
			t.Fatalf("label %d: got %v want %v (rel %v)\nenergies %v", l, got[l], want[l], rel, energies)
		}
	}
}

// TestPhysicalModeMatchesIdealMode: full photon-level simulation should
// agree with the ideal-exponential shortcut within noise.
func TestPhysicalModeMatchesIdealMode(t *testing.T) {
	ui := testUnit(t, 3, 1, false, 40, Ideal)
	up := testUnit(t, 3, 1, false, 40, Physical)
	src1, src2 := rng.New(6), rng.New(7)
	in := Input{Neighbors: [4]fixed.Label{0, 1, 0, 1}, Data1: 4, Data2: 6}
	const trials = 20000
	pi := ui.SampleDistribution(in, trials, src1)
	pp := up.SampleDistribution(in, trials, src2)
	for l := range pi {
		if math.Abs(pi[l]-pp[l]) > 0.04 {
			t.Fatalf("label %d: ideal %v vs physical %v", l, pi, pp)
		}
	}
}

// TestWidthDoesNotChangeDistribution: RSU-Gk changes latency, not the
// sampled distribution.
func TestWidthDoesNotChangeDistribution(t *testing.T) {
	u1 := testUnit(t, 8, 1, false, 40, Ideal)
	u4 := testUnit(t, 8, 4, false, 40, Ideal)
	src1, src2 := rng.New(8), rng.New(9)
	in := Input{Neighbors: [4]fixed.Label{2, 3, 2, 3}, Data1: 5, Data2: 7}
	p1 := u1.SampleDistribution(in, 80000, src1)
	p4 := u4.SampleDistribution(in, 80000, src2)
	for l := range p1 {
		if math.Abs(p1[l]-p4[l]) > 0.02 {
			t.Fatalf("label %d: G1 %v vs G4 %v", l, p1, p4)
		}
	}
	if u1.EvalTiming().Cycles <= u4.EvalTiming().Cycles {
		t.Fatal("G4 should be faster than G1")
	}
}

func TestAllDarkKeepsCurrent(t *testing.T) {
	u := testUnit(t, 4, 1, false, 40, Ideal)
	// Force every label to the dark code with a hand-built map.
	var m IntensityMap // all zeros = all dark
	u.SetMap(m)
	src := rng.New(10)
	in := Input{Current: 2}
	label, _ := u.Sample(in, src)
	if label != 2 {
		t.Fatalf("all-dark sample = %d, want current label 2", label)
	}
	p := u.IdealConditional(in)
	if p[2] != 1 {
		t.Fatalf("all-dark ideal conditional %v", p)
	}
}

func TestSamplingModeString(t *testing.T) {
	if Ideal.String() != "ideal" || Physical.String() != "physical" {
		t.Fatal("mode names")
	}
	if SamplingMode(9).String() != "SamplingMode(9)" {
		t.Fatal("unknown mode name")
	}
}

func BenchmarkSampleIdealM5(b *testing.B) {
	u := testUnit(b, 5, 1, false, 40, Ideal)
	src := rng.New(1)
	in := Input{Neighbors: [4]fixed.Label{0, 1, 2, 3}, Data1: 5, Data2: 9}
	for i := 0; i < b.N; i++ {
		u.Sample(in, src)
	}
}

func BenchmarkSampleIdealM49(b *testing.B) {
	u := testUnit(b, 49, 1, true, 40, Ideal)
	src := rng.New(1)
	in := Input{Neighbors: [4]fixed.Label{9, 17, 25, 33}, Data1: 5, Data2: 9}
	for i := 0; i < b.N; i++ {
		u.Sample(in, src)
	}
}

func BenchmarkSamplePhysicalM5(b *testing.B) {
	u := testUnit(b, 5, 1, false, 40, Physical)
	src := rng.New(1)
	in := Input{Neighbors: [4]fixed.Label{0, 1, 2, 3}, Data1: 5, Data2: 9}
	for i := 0; i < b.N; i++ {
		u.Sample(in, src)
	}
}

// TestLabelCodeTable: a sparse label space (motion-style) maps indices
// to datapath codes through the label-decode ROM.
func TestLabelCodeTable(t *testing.T) {
	src := rng.New(77)
	circuit := ret.DefaultCircuit(src)
	labels := []fixed.Label{
		fixed.PackVec(0, 0), fixed.PackVec(0, 6), fixed.PackVec(6, 0),
	}
	u, err := New(Config{
		M: 3, Width: 1, Vector: true, DoubletonWeight: 1,
		ClockHz: 1e9, Circuit: circuit, Labels: labels,
	})
	if err != nil {
		t.Fatal(err)
	}
	lut, err := BuildIntensityMap(u.Levels(), 40)
	if err != nil {
		t.Fatal(err)
	}
	u.SetMap(lut)
	if u.LabelCode(2) != fixed.PackVec(6, 0) {
		t.Fatal("LabelCode mapping wrong")
	}
	// Neighbor at code (0,6): index 1 has doubleton distance 0 to it.
	in := Input{
		Neighbors:         [4]fixed.Label{fixed.PackVec(0, 6), fixed.PackVec(0, 6), fixed.PackVec(0, 6), fixed.PackVec(0, 6)},
		SingletonPerLabel: []fixed.Energy{0, 0, 0},
	}
	if got := u.Energy(in, 1); got != 0 {
		t.Fatalf("index 1 energy %d, want 0", got)
	}
	// index 2 = (6,0): distance to (0,6) is 36+36=72 per neighbor, saturates.
	if got := u.Energy(in, 2); got != 255 {
		t.Fatalf("index 2 energy %d, want 255", got)
	}
	// Sampling overwhelmingly returns index 1.
	counts := make([]int, 3)
	for i := 0; i < 2000; i++ {
		l, _ := u.Sample(in, src)
		counts[l]++
	}
	if counts[1] < 1500 {
		t.Fatalf("index 1 sampled %d/2000", counts[1])
	}
}

func TestLabelTableLengthValidated(t *testing.T) {
	src := rng.New(78)
	circuit := ret.DefaultCircuit(src)
	_, err := New(Config{
		M: 3, Width: 1, ClockHz: 1e9, Circuit: circuit,
		Labels: []fixed.Label{0, 1},
	})
	if err == nil {
		t.Fatal("short label table accepted")
	}
}

// TestDiagonalEnergyStage: the RSU-G8 extension adds four diagonal
// doubleton terms and one pipeline stage.
func TestDiagonalEnergyStage(t *testing.T) {
	src := rng.New(88)
	circuit := ret.DefaultLadderCircuit(src)
	u, err := New(Config{
		M: 8, Width: 1, DoubletonWeight: 1, DiagonalWeight: 2, Diagonal: true,
		SingletonWeight: 1, ClockHz: 1e9, Circuit: circuit,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := Input{
		Neighbors:     [4]fixed.Label{3, 3, 3, 3},
		NeighborsDiag: [4]fixed.Label{1, 5, 3, 3},
		Data1:         4, Data2: 4,
	}
	// label 3: singleton 0; axial 0; diagonals 2*((3-1)^2+(3-5)^2) = 16
	if got := u.Energy(in, 3); got != 16 {
		t.Fatalf("diagonal energy = %d, want 16", got)
	}
	// One extra pipeline stage: 8 + (M-1) for G8.
	if got := u.EvalTiming().Cycles; got != 8+7 {
		t.Fatalf("G8 latency %d, want 15", got)
	}
	// Without Diagonal the same inputs ignore the diagonal registers.
	u2, err := New(Config{
		M: 8, Width: 1, DoubletonWeight: 1, SingletonWeight: 1,
		ClockHz: 1e9, Circuit: circuit,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := u2.Energy(in, 3); got != 0 {
		t.Fatalf("non-diagonal unit energy = %d, want 0", got)
	}
}

// TestDarkCountsDegradeGracefully: with an absurd SPAD dark-count rate,
// spurious detections randomize the race — the distribution flattens
// toward uniform but sampling still returns in-range labels. This is
// the noise-injection check on the Physical path.
func TestDarkCountsDegradeGracefully(t *testing.T) {
	src := rng.New(93)
	circuit := ret.DefaultLadderCircuit(src)
	circuit.Detector.DarkRate = 5e9 // ~5 dark counts per ns: pathological
	u, err := New(Config{
		M: 4, Width: 1, DoubletonWeight: 1, SingletonWeight: 1,
		ClockHz: 1e9, Mode: Physical, Circuit: circuit,
	})
	if err != nil {
		t.Fatal(err)
	}
	lut, err := BuildIntensityMap(u.Levels(), 10)
	if err != nil {
		t.Fatal(err)
	}
	u.SetMap(lut)
	in := Input{Neighbors: [4]fixed.Label{1, 1, 1, 1}, Data1: 8, Data2: 8}
	p := u.SampleDistribution(in, 20000, src)
	// Healthy units concentrate on label 1. A dark-count-swamped unit
	// loses the signal: TTFs collapse to ~1.6 ticks for every label, so
	// the outcome is dominated by quantization ties, which the
	// compare-and-update stage resolves toward the first-evaluated
	// (highest) label. Verify the signal is gone (label 1 no longer the
	// mode), every label stays reachable, and the tie bias points the
	// documented way.
	for l, v := range p {
		if v < 0.05 {
			t.Fatalf("label %d unreachable under dark counts: %v", l, p)
		}
	}
	if argmax(p) == 1 {
		t.Fatalf("dark-swamped unit still resolves the signal: %v", p)
	}
	if p[3] < p[0] {
		t.Fatalf("tie bias should favor the first-evaluated label: %v", p)
	}
}

// Property: Sample always returns an in-range label index and is
// deterministic for a fixed seed, for arbitrary inputs.
func TestSamplePropertyRangeAndDeterminism(t *testing.T) {
	u := testUnit(t, 7, 1, false, 20, Ideal)
	f := func(seed uint64, a, b, c, d, d1, d2, cur uint8) bool {
		in := Input{
			Neighbors: [4]fixed.Label{
				fixed.Label(a % 7), fixed.Label(b % 7),
				fixed.Label(c % 7), fixed.Label(d % 7),
			},
			Data1: d1 & fixed.MaxLabel, Data2: d2 & fixed.MaxLabel,
			Current: fixed.Label(cur % 7),
		}
		l1, _ := u.Sample(in, rng.New(seed))
		l2, _ := u.Sample(in, rng.New(seed))
		return l1 == l2 && int(l1) < 7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
