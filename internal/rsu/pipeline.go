package rsu

import "fmt"

// This file is a cycle-stepped simulator of the RSU-G pipeline (§5.2,
// §5.3). EvalTiming gives the closed-form latency the paper states;
// the simulator derives the same numbers from first principles — stage
// occupancy, the 4-cycle RET quiescence hazard, and the round-robin
// replica scheduler — and additionally reports throughput for streams
// of back-to-back variable evaluations, which the closed form does not
// cover. Tests cross-check the two.

// PipelineConfig describes the simulated datapath shape.
type PipelineConfig struct {
	M        int // labels per variable
	Width    int // lanes (K)
	Replicas int // RET circuits per lane
	// Depth overrides the pipeline depth (0: the §5 values — 7 for K=1,
	// plus the selection-tree growth for wider units).
	Depth int
	// ViolateQuiescence removes the scheduler's quiescence interlock:
	// a replica still inside its 4-cycle recovery window is reused
	// immediately instead of stalling the issue slot. This is the
	// fault.Quiesce hazard — a correct scheduler *stalls*; a buggy or
	// fault-injected one reuses the circuit and carries residual
	// excitation into the next race. Each early reuse is counted in
	// PipelineStats.HazardViolations.
	ViolateQuiescence bool
}

// PipelineStats reports one simulation run.
type PipelineStats struct {
	// Variables is the number of variable evaluations completed.
	Variables int
	// TotalCycles is the cycle the last result was produced.
	TotalCycles int
	// FirstLatency is the latency of the first variable (issue of its
	// first step to its result) — comparable to EvalTiming().Cycles.
	FirstLatency int
	// StallCycles counts issue slots lost to the quiescence hazard.
	StallCycles int
	// HazardViolations counts replica reuses inside the quiescence
	// window (always 0 unless PipelineConfig.ViolateQuiescence).
	HazardViolations int
	// ThroughputCyclesPerVariable is the steady-state cost per variable
	// (total cycles / variables).
	ThroughputCyclesPerVariable float64
}

// SimulatePipeline runs `variables` back-to-back evaluations through
// the pipeline and returns cycle-accurate statistics.
//
// Model: each variable needs steps = ceil(M/K) issue slots; one step
// per cycle can enter the pipeline when every lane has a RET circuit
// that has been quiescent for QuiescenceCycles since its previous
// sampling operation (§5.3). Replicas are scheduled round-robin by the
// 2-bit counter of §5.3. A variable's result appears depth-1 cycles
// after its last step issues; the next variable's first step may issue
// the cycle after the previous variable's last step (the down counter
// reloads while the tail drains), which is how the unit sustains one
// label evaluation per cycle.
func SimulatePipeline(cfg PipelineConfig, variables int) (PipelineStats, error) {
	if cfg.M < 1 || cfg.Width < 1 || cfg.Replicas < 1 || variables < 1 {
		return PipelineStats{}, fmt.Errorf("rsu: invalid pipeline simulation config %+v x%d", cfg, variables)
	}
	depth := cfg.Depth
	if depth == 0 {
		depth = 7
		if cfg.Width > 1 {
			depth += ceilLog2(cfg.Width) - 1
		}
	}
	steps := (cfg.M + cfg.Width - 1) / cfg.Width

	// Every lane has its own replica set; lanes issue in lockstep, so
	// one lane's scheduler represents all of them (identical state).
	// freeAt[i] is the first cycle replica i can start a new sampling
	// operation.
	freeAt := make([]int, cfg.Replicas)
	rr := 0 // round-robin pointer (the §5.3 two-bit counter)

	stats := PipelineStats{Variables: variables}
	cycle := 0
	firstIssue := -1
	for v := 0; v < variables; v++ {
		var lastIssue int
		for s := 0; s < steps; s++ {
			// The round-robin scheduler always waits for the *next*
			// replica in order (it does not search): stalls happen when
			// that replica is still quiescing. With the interlock
			// removed (ViolateQuiescence) the busy replica is reused
			// early — the §5.3 hazard — and the reuse is counted.
			if freeAt[rr] > cycle {
				if cfg.ViolateQuiescence {
					stats.HazardViolations++
				} else {
					stats.StallCycles += freeAt[rr] - cycle
					cycle = freeAt[rr]
				}
			}
			if firstIssue < 0 {
				firstIssue = cycle
			}
			freeAt[rr] = cycle + QuiescenceCycles
			rr = (rr + 1) % cfg.Replicas
			lastIssue = cycle
			cycle++ // one issue slot per cycle
		}
		// A step issued at cycle c leaves the depth-stage pipeline at
		// the end of cycle c+depth-1.
		result := lastIssue + depth - 1
		if v == 0 {
			stats.FirstLatency = result - firstIssue + 1
		}
		if v == variables-1 {
			stats.TotalCycles = result + 1
		}
	}
	stats.ThroughputCyclesPerVariable = float64(stats.TotalCycles) / float64(variables)
	return stats, nil
}
