package rsu

import (
	"testing"
	"testing/quick"

	"repro/internal/fixed"
	"repro/internal/rng"
)

func TestCompressExpandRoundTrip(t *testing.T) {
	u := testUnit(t, 5, 1, false, 40, Ideal)
	m := u.Config().Map
	tm, err := CompressMap(m)
	if err != nil {
		t.Fatal(err)
	}
	if got := tm.Expand(); got != m {
		t.Fatal("compress/expand round trip mismatch")
	}
}

func TestCompressRejectsHighFrequencyMap(t *testing.T) {
	var m IntensityMap
	for e := range m {
		m[e] = fixed.NewIntensity(e % 3) // 256 runs
	}
	if _, err := CompressMap(m); err == nil {
		t.Fatal("map with 256 runs accepted")
	}
}

func TestThresholdWordsRoundTrip(t *testing.T) {
	u := testUnit(t, 5, 1, false, 40, Ideal)
	tm, err := CompressMap(u.Config().Map)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := tm.Words()
	got := ThresholdMapFromWords(lo, hi, tm.Codes)
	if got != tm {
		t.Fatalf("words round trip: %+v vs %+v", got, tm)
	}
}

func TestPackNeighborsRoundTrip(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		n := [4]fixed.Label{
			fixed.Label(a & fixed.MaxLabel),
			fixed.Label(b & fixed.MaxLabel),
			fixed.Label(c & fixed.MaxLabel),
			fixed.Label(d & fixed.MaxLabel),
		}
		return UnpackNeighbors(PackNeighbors(n)) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDriverInitAndSample(t *testing.T) {
	u := testUnit(t, 5, 1, false, 40, Ideal)
	lut := u.Config().Map
	tm, err := CompressMap(lut)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDriver(u)

	// Sampling before init must fail.
	src := rng.New(11)
	if _, err := d.Sample([4]fixed.Label{}, 0, 0, src); err == nil {
		t.Fatal("uninitialized driver sampled")
	}

	if err := d.Init(tm); err != nil {
		t.Fatal(err)
	}
	if d.Instructions != 3 {
		t.Fatalf("init took %d instructions, want 3 (§6.1)", d.Instructions)
	}
	// The map reloaded through the 128-bit interface must equal the
	// original LUT.
	if u.Config().Map != lut {
		t.Fatal("driver-loaded map differs from original")
	}

	label, err := d.Sample([4]fixed.Label{1, 1, 2, 2}, 5, 6, src)
	if err != nil {
		t.Fatal(err)
	}
	if int(label) >= 5 {
		t.Fatalf("label %d out of range", label)
	}
	if d.Instructions != 7 { // 3 init + 3 writes + 1 read
		t.Fatalf("instructions %d, want 7", d.Instructions)
	}
	if want := u.EvalTiming().Cycles; d.StallCycles != want {
		t.Fatalf("stall cycles %d, want %d", d.StallCycles, want)
	}
}

func TestDriverCounterMismatch(t *testing.T) {
	u := testUnit(t, 5, 1, false, 40, Ideal)
	d := NewDriver(u)
	if err := d.Write(OpCounter, 7); err == nil {
		t.Fatal("counter mismatch accepted")
	}
}

func TestDriverUnknownOp(t *testing.T) {
	u := testUnit(t, 5, 1, false, 40, Ideal)
	d := NewDriver(u)
	if err := d.Write(Op(9), 0); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestDriverCodesSortedByRate(t *testing.T) {
	u := testUnit(t, 5, 1, false, 40, Ideal)
	d := NewDriver(u)
	levels := u.Levels()
	codes := d.Codes()
	for i := 1; i < 16; i++ {
		if levels[codes[i]] > levels[codes[i-1]] {
			t.Fatalf("codes not sorted brightest-first at %d: %v", i, codes)
		}
	}
	if codes[0] != 15 {
		t.Fatalf("brightest code %d, want 15 for binary ladder", codes[0])
	}
}

// TestDriverSampleMatchesDirectUnit: driving through the instruction
// interface must sample the same distribution as calling the unit
// directly.
func TestDriverSampleMatchesDirectUnit(t *testing.T) {
	u := testUnit(t, 4, 1, false, 40, Ideal)
	tm, err := CompressMap(u.Config().Map)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDriver(u)
	if err := d.Init(tm); err != nil {
		t.Fatal(err)
	}
	src := rng.New(12)
	nbrs := [4]fixed.Label{0, 1, 1, 2}
	const trials = 60000
	counts := make([]int, 4)
	for i := 0; i < trials; i++ {
		l, err := d.Sample(nbrs, 8, 9, src)
		if err != nil {
			t.Fatal(err)
		}
		counts[l]++
	}
	want := u.IdealConditional(Input{Neighbors: nbrs, Data1: 8, Data2: 9})
	for l := range want {
		got := float64(counts[l]) / trials
		if diff := got - want[l]; diff > 0.06 || diff < -0.06 {
			t.Fatalf("label %d: driver %v vs ideal %v", l, got, want[l])
		}
	}
}

func TestOpString(t *testing.T) {
	names := map[Op]string{
		OpMapLo: "map_lo", OpMapHi: "map_hi", OpCounter: "counter",
		OpNeighbors: "neighbors", OpSingletonA: "singleton_a", OpSingletonD: "singleton_d",
	}
	for op, want := range names {
		if op.String() != want {
			t.Errorf("%v != %s", op, want)
		}
	}
	if Op(9).String() != "Op(9)" {
		t.Error("unknown op string")
	}
}

// TestDriverSampleStream: the per-label singleton-D streaming path used
// by motion estimation — M extra instructions, same distribution as the
// direct unit call.
func TestDriverSampleStream(t *testing.T) {
	u := testUnit(t, 4, 1, false, 10, Ideal)
	tm, err := CompressMap(u.Config().Map)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDriver(u)
	if err := d.Init(tm); err != nil {
		t.Fatal(err)
	}
	src := rng.New(91)
	nbrs := [4]fixed.Label{1, 1, 2, 2}
	targets := []uint8{9, 8, 12, 30}

	before := d.Instructions
	if _, err := d.SampleStream(nbrs, 8, targets, src); err != nil {
		t.Fatal(err)
	}
	// 2 operand writes + M singleton-D writes + 1 read.
	if got := d.Instructions - before; got != 2+4+1 {
		t.Fatalf("stream instructions %d, want 7", got)
	}

	const trials = 60000
	counts := make([]int, 4)
	for i := 0; i < trials; i++ {
		l, err := d.SampleStream(nbrs, 8, targets, src)
		if err != nil {
			t.Fatal(err)
		}
		counts[l]++
	}
	want := u.IdealConditional(Input{Neighbors: nbrs, Data1: 8, Data2PerLabel: targets})
	for l := range want {
		got := float64(counts[l]) / trials
		if diff := got - want[l]; diff > 0.06 || diff < -0.06 {
			t.Fatalf("label %d: stream %v vs ideal %v", l, got, want[l])
		}
	}
}

func TestDriverSampleStreamValidation(t *testing.T) {
	u := testUnit(t, 4, 1, false, 10, Ideal)
	d := NewDriver(u)
	src := rng.New(92)
	if _, err := d.SampleStream([4]fixed.Label{}, 0, []uint8{1, 2, 3, 4}, src); err == nil {
		t.Fatal("uninitialized stream accepted")
	}
	tm, err := CompressMap(u.Config().Map)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Init(tm); err != nil {
		t.Fatal(err)
	}
	if _, err := d.SampleStream([4]fixed.Label{}, 0, []uint8{1, 2}, src); err == nil {
		t.Fatal("short stream accepted")
	}
}
