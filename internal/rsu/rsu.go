// Package rsu implements the paper's primary contribution: RSU-G, a
// RET-based Gibbs sampling functional unit for first-order MRF inference
// (paper §4–§6).
//
// An RSU-G draws a new label for one MRF random variable by racing M
// exponential samplers ("first to fire", §4.3): each candidate label's
// clique-potential energy parameterizes a RET circuit through an
// intensity LUT; the label whose circuit fluoresces first is the sample.
// The five pipeline components (§5.1) are:
//
//  1. label decrement/input   — down counter iterating M-1 … 0
//  2. energy computation      — singleton + four doubletons, 8-bit saturating
//  3. energy→intensity map    — 256×4-bit LUT (IntensityMap)
//  4. RET circuits            — exponential TTF samplers (internal/ret)
//  5. selection               — compare-and-update on quantized TTFs
//
// A unit of width K (RSU-Gk) evaluates K labels per cycle using K lanes
// of replicated RET circuits; RSU-G1 takes 7+(M−1) cycles per variable,
// RSU-G64 takes 12 (§5).
package rsu

import (
	"fmt"
	"math"

	"repro/internal/fixed"
	"repro/internal/ret"
	"repro/internal/rng"
)

// SamplingMode selects how RET TTFs are generated.
type SamplingMode int

const (
	// Ideal draws TTFs directly from Exp(EffectiveRate(code)): the
	// asymptotic behavior of the RET circuit without photon-level
	// simulation. Fast enough for whole-image inference.
	Ideal SamplingMode = iota
	// Physical runs the full photon-level simulation in internal/ret
	// (Poisson absorption, network relaxation, SPAD noise). Slow;
	// used for fidelity studies.
	Physical
)

// String implements fmt.Stringer.
func (m SamplingMode) String() string {
	switch m {
	case Ideal:
		return "ideal"
	case Physical:
		return "physical"
	default:
		return fmt.Sprintf("SamplingMode(%d)", int(m))
	}
}

// QuiescenceCycles is the recovery time of a RET circuit after a
// sampling operation (§5.3): "The RSU-G1 design presented here requires
// four 1ns cycles for the RET circuits to reach a quiescent state."
const QuiescenceCycles = 4

// DefaultReplicas is the number of replicated RET circuits per lane
// needed to hide the quiescence hazard and sustain one evaluation per
// cycle (§5.3).
const DefaultReplicas = 4

// Config describes one RSU-G unit.
type Config struct {
	// M is the number of labels per random variable, 2..64 (6-bit).
	M int
	// Width K is the number of labels evaluated per step: 1 for RSU-G1,
	// 4 for RSU-G4, up to 64 for RSU-G64.
	Width int
	// Vector selects 2-D vector label interpretation (two 3-bit
	// components) for the doubleton distance; scalar otherwise.
	Vector bool
	// DoubletonWeight and SingletonWeight are the integer fixed-point
	// clique weights (w in Eq. 2).
	DoubletonWeight, SingletonWeight uint8
	// Diagonal enables the RSU-G8 extension (§9 "other MRF problems"):
	// four additional diagonal-neighbor registers and doubleton adders
	// for second-order MRFs, weighted by DiagonalWeight. Costs one extra
	// pipeline stage for the wider adder tree.
	Diagonal       bool
	DiagonalWeight uint8
	// ClockHz is the system clock (1 GHz at 15 nm, §8).
	ClockHz float64
	// Replicas is the number of RET circuits per lane (default 4).
	Replicas int
	// Mode selects Ideal or Physical TTF generation.
	Mode SamplingMode
	// Circuit is the RET circuit design replicated across lanes.
	Circuit *ret.Circuit
	// Map is the energy→intensity LUT (loaded per application, §6.1).
	Map IntensityMap
	// Labels optionally maps application label indices 0..M-1 to 6-bit
	// datapath codes (a small label-decode ROM in front of the energy
	// stage). Needed when the label space does not pack contiguously:
	// e.g. a 7×7 motion window (M=49) whose vectors occupy the 3+3-bit
	// code space sparsely. Nil means the identity mapping. Neighbor
	// labels in Input are always datapath codes.
	Labels []fixed.Label
}

// Unit is an RSU-G instance.
type Unit struct {
	cfg      Config
	timer    TTFTimer
	levels   [16]float64 // EffectiveRate per LED code
	expCount [16]float64 // TTFTimer.ExpectedCount per LED code
	maxLevel float64     // brightest rung (full-on rate), for fault models
}

// New validates cfg and constructs the unit.
func New(cfg Config) (*Unit, error) {
	switch {
	case cfg.M < 2 || cfg.M > fixed.MaxLabels:
		return nil, fmt.Errorf("rsu: M=%d outside [2,%d]", cfg.M, fixed.MaxLabels)
	case cfg.Width < 1 || cfg.Width > fixed.MaxLabels:
		return nil, fmt.Errorf("rsu: width %d outside [1,%d]", cfg.Width, fixed.MaxLabels)
	case cfg.ClockHz <= 0:
		return nil, fmt.Errorf("rsu: clock must be positive")
	case cfg.Circuit == nil:
		return nil, fmt.Errorf("rsu: nil RET circuit")
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = DefaultReplicas
	}
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("rsu: replicas %d < 1", cfg.Replicas)
	}
	if cfg.Labels != nil && len(cfg.Labels) != cfg.M {
		return nil, fmt.Errorf("rsu: label table has %d entries, need M=%d", len(cfg.Labels), cfg.M)
	}
	u := &Unit{cfg: cfg, timer: NewTTFTimer(cfg.ClockHz)}
	for c := 0; c < 16; c++ {
		u.levels[c] = cfg.Circuit.EffectiveRate(uint8(c))
		u.expCount[c] = u.timer.ExpectedCount(u.levels[c])
		if u.levels[c] > u.maxLevel {
			u.maxLevel = u.levels[c]
		}
	}
	return u, nil
}

// Config returns the unit's configuration.
func (u *Unit) Config() Config { return u.cfg }

// SetMap installs a new energy→intensity LUT (the §6.1 map-table load).
func (u *Unit) SetMap(m IntensityMap) { u.cfg.Map = m }

// Timer returns the TTF quantizer.
func (u *Unit) Timer() TTFTimer { return u.timer }

// Levels returns the effective sampling rate of each LED code — the
// input needed to build an IntensityMap matched to this unit.
func (u *Unit) Levels() [16]float64 { return u.levels }

// Input carries the per-variable operands of §6: the four neighbor
// labels (doubleton terms) and the data values (singleton term).
type Input struct {
	// Neighbors are the current labels of the four adjacent variables.
	Neighbors [4]fixed.Label
	// NeighborsDiag are the four diagonal neighbors, used only when the
	// unit is configured with Diagonal (RSU-G8).
	NeighborsDiag [4]fixed.Label
	// Data1 is the variable's own 6-bit data value (e.g. pixel
	// intensity), "singleton A" in the control-register set.
	Data1 uint8
	// Data2 is the constant second data value ("singleton D").
	Data2 uint8
	// Data2PerLabel optionally supplies a per-label second data value —
	// the §6 case where "the singleton calculation may also need
	// information from a target location" (motion estimation's candidate
	// pixel). When non-nil it must have length >= M and overrides Data2.
	Data2PerLabel []uint8
	// SingletonPerLabel optionally supplies externally precomputed
	// singleton energies (§4.3: "extendable to other applications by
	// precomputing their singleton energy externally"). When non-nil it
	// overrides the squared-difference singleton entirely.
	SingletonPerLabel []fixed.Energy
	// Current is the variable's current label index, returned unchanged
	// when no RET circuit fires within the TTF window (every channel
	// dark or saturated). Keeping the current value on a no-fire —
	// rather than a fixed tie-break label — matters for chain dynamics:
	// a deterministic tie-break label acts as an absorbing contagion
	// under the smoothness prior. Hardware-wise this is a saturation
	// flag on the selection register that tells software to skip the
	// update, equivalent to a rejected Metropolis move.
	Current fixed.Label
}

// LabelCode returns the 6-bit datapath code of application label index
// idx (identity unless Config.Labels is set).
func (u *Unit) LabelCode(idx int) fixed.Label {
	if u.cfg.Labels != nil {
		return u.cfg.Labels[idx]
	}
	return fixed.NewLabel(idx)
}

// Energy runs the energy-calculation pipeline stage (§5.2) for the
// candidate label with index idx: the 8-bit saturating sum of the
// singleton and the four doubleton clique potentials. Per-label input
// slices are indexed by idx; the doubleton distance operates on the
// label's datapath code against the neighbor codes.
func (u *Unit) Energy(in Input, idx int) fixed.Energy {
	var e fixed.Energy
	if in.SingletonPerLabel != nil {
		e = in.SingletonPerLabel[idx]
	} else {
		d2 := in.Data2
		if in.Data2PerLabel != nil {
			d2 = in.Data2PerLabel[idx]
		}
		e = fixed.SingletonEnergy(in.Data1, d2, u.cfg.SingletonWeight)
	}
	code := u.LabelCode(idx)
	for _, nbr := range in.Neighbors {
		e = fixed.SatAddEnergy(e, fixed.DoubletonEnergy(code, nbr, u.cfg.Vector, u.cfg.DoubletonWeight))
	}
	if u.cfg.Diagonal {
		for _, nbr := range in.NeighborsDiag {
			e = fixed.SatAddEnergy(e, fixed.DoubletonEnergy(code, nbr, u.cfg.Vector, u.cfg.DiagonalWeight))
		}
	}
	return e
}

// Timing reports the cycle cost of one variable evaluation.
type Timing struct {
	// Cycles is the steady-state latency in system clock cycles.
	Cycles int
	// Steps is the number of label-evaluation steps (ceil(M/K)).
	Steps int
}

// EvalTiming returns the pipeline timing for this configuration:
//
//	cycles = depth(K) + (steps-1) × interval
//
// where steps = ceil(M/K), depth(1) = 7 (the paper's 7+(M−1) for
// RSU-G1), depth grows with the selection-tree depth for wider units
// (depth(64) = 12, matching "up to 64 labels in 12 cycles"), and the
// initiation interval is 1 when enough RET-circuit replicas hide the
// 4-cycle quiescence hazard (§5.3), else ceil(Quiescence/Replicas).
func (u *Unit) EvalTiming() Timing {
	k := u.cfg.Width
	steps := (u.cfg.M + k - 1) / k
	depth := 7
	if k > 1 {
		// Extra compare stages for the K-wide selection tree.
		depth += ceilLog2(k) - 1
	}
	if u.cfg.Diagonal {
		// RSU-G8: the eight-input energy adder tree is one level deeper.
		depth++
	}
	interval := 1
	if u.cfg.Replicas < QuiescenceCycles {
		interval = (QuiescenceCycles + u.cfg.Replicas - 1) / u.cfg.Replicas
	}
	return Timing{Cycles: depth + (steps-1)*interval, Steps: steps}
}

func ceilLog2(n int) int {
	l := 0
	for v := 1; v < n; v <<= 1 {
		l++
	}
	return l
}

// Sample draws a new label index for one random variable: the full
// first-to-fire race over all M candidate labels with hardware
// quantization (16-level intensity ladder, 8-bit TTF register). The
// down counter iterates label indices M-1 … 0, and the selection stage
// keeps the strictly shortest quantized TTF — on ties the earlier-
// evaluated (higher) index wins, matching a compare-and-update register
// that only updates on '<'. The returned value is the winning label
// *index* (the down-counter value latched by the selection stage);
// use LabelCode for its datapath code.
func (u *Unit) Sample(in Input, src *rng.Source) (fixed.Label, Timing) {
	if in.Data2PerLabel != nil && len(in.Data2PerLabel) < u.cfg.M {
		panic(fmt.Sprintf("rsu: Data2PerLabel has %d entries, need %d", len(in.Data2PerLabel), u.cfg.M))
	}
	if in.SingletonPerLabel != nil && len(in.SingletonPerLabel) < u.cfg.M {
		panic(fmt.Sprintf("rsu: SingletonPerLabel has %d entries, need %d", len(in.SingletonPerLabel), u.cfg.M))
	}
	window := u.timer.Window()
	bestIdx := u.cfg.M - 1
	bestCount := u.timer.MaxCount()
	first := true
	for idx := u.cfg.M - 1; idx >= 0; idx-- {
		e := u.Energy(in, idx)
		code := u.cfg.Map[e]
		var ttf float64
		switch u.cfg.Mode {
		case Physical:
			ttf = u.cfg.Circuit.SampleTTF(uint8(code), window, src)
		default:
			rate := u.levels[code]
			if rate <= 0 {
				ttf = math.Inf(1)
			} else {
				ttf = src.Exponential(rate)
			}
		}
		count := u.timer.Quantize(ttf)
		if first || count < bestCount {
			bestIdx, bestCount = idx, count
			first = false
		}
	}
	if bestCount >= u.timer.MaxCount() {
		// No circuit fired within the window: saturation flag set,
		// software keeps the current value (see Input.Current).
		return in.Current, u.EvalTiming()
	}
	return fixed.NewLabel(bestIdx), u.EvalTiming()
}

// SampleDistribution estimates by repeated sampling the label
// distribution the unit realizes for a fixed input — the quantity
// compared against the exact softmax in fidelity tests.
func (u *Unit) SampleDistribution(in Input, trials int, src *rng.Source) []float64 {
	counts := make([]int, u.cfg.M)
	for i := 0; i < trials; i++ {
		l, _ := u.Sample(in, src)
		counts[l]++
	}
	probs := make([]float64, u.cfg.M)
	for i, c := range counts {
		probs[i] = float64(c) / float64(trials)
	}
	return probs
}

// IdealConditional returns the exact distribution implied by the
// unit's quantized energies and LED ladder with *continuous* (ideal)
// first-to-fire: p(l) = rate(l) / Σ rate — i.e. everything but the TTF
// register quantization. Useful to separate the two quantization
// effects in ablations.
func (u *Unit) IdealConditional(in Input) []float64 {
	rates := make([]float64, u.cfg.M)
	sum := 0.0
	for idx := 0; idx < u.cfg.M; idx++ {
		rates[idx] = u.levels[u.cfg.Map[u.Energy(in, idx)]]
		sum += rates[idx]
	}
	if sum == 0 {
		// All channels dark: the no-fire path keeps the current label.
		rates[in.Current] = 1
		return rates
	}
	for l := range rates {
		rates[l] /= sum
	}
	return rates
}
