package rsu

import (
	"math"
	"testing"
)

// TestQuantizeEightBitBoundary is the regression suite for the silent-
// saturation fix: every TTF at or beyond the 8-bit register's range
// must saturate to exactly MaxCount — never wrap, never fall into
// implementation-specific float→uint conversion — and in-range TTFs
// must quantize bit-identically to the pre-fix code.
func TestQuantizeEightBitBoundary(t *testing.T) {
	timer := NewTTFTimer(1e9)
	res := timer.Resolution()
	max := timer.MaxCount()
	if max != 255 {
		t.Fatalf("8-bit register max count = %d, want 255", max)
	}
	cases := []struct {
		name string
		ttf  float64
		want uint32
	}{
		{"zero", 0, 0},
		{"negative clamps", -1e-9, 0},
		{"one tick", 1 * res, 1},
		{"just under max", 254.999 * res, 254},
		{"last in-range count", 254 * res, 254},
		// 255·res divides back to 254.999… in float64 — the physical
		// tie at the window edge is measure-zero, so the regression
		// pins the first value strictly past it instead.
		{"just past max ticks", 255.01 * res, 255},
		{"past window edge", math.Nextafter(timer.Window(), math.Inf(1)) * 1.001, 255},
		{"one past max", 256 * res, 255},
		{"wrap temptation 257", 257 * res, 255}, // a wrapping register would read 1
		{"wrap temptation 511", 511 * res, 255}, // a wrapping register would read 255 by luck; 512 would read 0
		{"wrap temptation 512", 512 * res, 255},
		{"huge float", 1e30, 255},
		{"beyond 2^63 ticks", math.Ldexp(1, 70) * res, 255}, // float→uint64 would be implementation-specific
		{"+inf (dark channel)", math.Inf(1), 255},
		{"nan", math.NaN(), 255},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := timer.Quantize(c.ttf); got != c.want {
				t.Errorf("Quantize(%v) = %d, want %d", c.ttf, got, c.want)
			}
			count, sat := timer.QuantizeSat(c.ttf)
			if count != timer.Quantize(c.ttf) {
				t.Errorf("QuantizeSat count %d != Quantize %d", count, timer.Quantize(c.ttf))
			}
			if wantSat := c.want == max; sat != wantSat {
				t.Errorf("QuantizeSat(%v) saturated = %v, want %v", c.ttf, sat, wantSat)
			}
		})
	}
}

// TestQuantizeNeverExceedsMax: no float input, however adversarial, may
// produce a count above the register width (the wrap is modeled only as
// an injectable fault, never as timer behavior).
func TestQuantizeNeverExceedsMax(t *testing.T) {
	timer := NewTTFTimer(1e9)
	for _, ttf := range []float64{
		0, 1e-12, 1e-9, 31.875e-9, 32e-9, 1e-6, 1, 1e30,
		math.MaxFloat64, math.Inf(1), math.NaN(), -math.Inf(1),
	} {
		if got := timer.Quantize(ttf); got > timer.MaxCount() {
			t.Errorf("Quantize(%v) = %d exceeds register max %d", ttf, got, timer.MaxCount())
		}
	}
}

// TestExpectedCount: the monitors' reference statistic must respect the
// register physics — dark channels expect exact saturation, expectation
// is monotone decreasing in rate, always within (0, max], and matches
// the unsaturated mean µ for channels far from the window edge.
func TestExpectedCount(t *testing.T) {
	timer := NewTTFTimer(1e9)
	max := float64(timer.MaxCount())
	if got := timer.ExpectedCount(0); got != max {
		t.Errorf("dark channel ExpectedCount = %v, want %v", got, max)
	}
	if got := timer.ExpectedCount(-1); got != max {
		t.Errorf("negative rate ExpectedCount = %v, want %v", got, max)
	}
	prev := max
	for _, rate := range []float64{1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11} {
		got := timer.ExpectedCount(rate)
		if got <= 0 || got > max {
			t.Errorf("ExpectedCount(%g) = %v outside (0, %v]", rate, got, max)
		}
		if got > prev {
			t.Errorf("ExpectedCount not monotone: rate %g gives %v > %v", rate, got, prev)
		}
		prev = got
	}
	// A bright channel (µ ≪ max ticks) is unaffected by saturation:
	// E[min(T,W)] ≈ E[T] = µ.
	bright := 1e10 // µ = 0.8 ticks at 8 GHz tick rate
	mu := 1 / (bright * timer.Resolution())
	if got := timer.ExpectedCount(bright); math.Abs(got-mu) > 1e-9*mu {
		t.Errorf("bright ExpectedCount = %v, want ≈ µ = %v", got, mu)
	}
}
