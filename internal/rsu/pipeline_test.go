package rsu

import (
	"testing"
	"testing/quick"

	"repro/internal/ret"
	"repro/internal/rng"
)

// TestPipelineMatchesClosedForm: the cycle-stepped simulation must
// reproduce EvalTiming's closed-form latency for every configuration
// the closed form covers.
func TestPipelineMatchesClosedForm(t *testing.T) {
	src := rng.New(1)
	circuit := ret.DefaultLadderCircuit(src)
	cases := []struct{ m, k, r int }{
		{5, 1, 4}, {49, 1, 4}, {64, 1, 4}, {64, 64, 4}, {49, 4, 4},
		{5, 1, 1}, {5, 1, 2}, {2, 1, 4}, {17, 2, 4}, {33, 8, 4},
	}
	for _, c := range cases {
		u, err := New(Config{M: c.m, Width: c.k, Replicas: c.r, ClockHz: 1e9, Circuit: circuit})
		if err != nil {
			t.Fatal(err)
		}
		want := u.EvalTiming().Cycles
		stats, err := SimulatePipeline(PipelineConfig{M: c.m, Width: c.k, Replicas: c.r}, 1)
		if err != nil {
			t.Fatal(err)
		}
		if stats.FirstLatency != want {
			t.Errorf("M=%d K=%d R=%d: simulated latency %d, closed form %d",
				c.m, c.k, c.r, stats.FirstLatency, want)
		}
	}
}

// TestPipelineSteadyStateThroughput: with 4 replicas the paper claims a
// sustained throughput of one label evaluation per cycle, i.e. M cycles
// per variable for RSU-G1 (§5.3).
func TestPipelineSteadyStateThroughput(t *testing.T) {
	const vars = 1000
	stats, err := SimulatePipeline(PipelineConfig{M: 5, Width: 1, Replicas: 4}, vars)
	if err != nil {
		t.Fatal(err)
	}
	if stats.StallCycles != 0 {
		t.Errorf("4 replicas should hide the quiescence hazard, got %d stalls", stats.StallCycles)
	}
	// 5 cycles per variable plus the constant pipeline drain.
	if got := stats.ThroughputCyclesPerVariable; got > 5.02 {
		t.Errorf("steady-state throughput %v cycles/var, want ~5", got)
	}
}

// TestPipelineStarvedReplicasStall: with 1 replica every step beyond
// the first waits out the 4-cycle quiescence — throughput drops 4x.
func TestPipelineStarvedReplicasStall(t *testing.T) {
	const vars = 500
	stats, err := SimulatePipeline(PipelineConfig{M: 5, Width: 1, Replicas: 1}, vars)
	if err != nil {
		t.Fatal(err)
	}
	if stats.StallCycles == 0 {
		t.Fatal("single replica should stall")
	}
	if got := stats.ThroughputCyclesPerVariable; got < 19.9 || got > 20.1 {
		t.Errorf("starved throughput %v cycles/var, want ~20 (4x M)", got)
	}
}

// TestPipelineG64SingleCycleThroughput: the RSU-G64 configuration must
// sustain one variable sample per cycle in steady state... per the
// paper: "This design can sustain a throughput of one random variable
// sample per cycle" — each variable is a single 64-wide step, and the
// 256 RET circuits (4 per lane) hide quiescence.
func TestPipelineG64SingleCycleThroughput(t *testing.T) {
	const vars = 1000
	stats, err := SimulatePipeline(PipelineConfig{M: 64, Width: 64, Replicas: 4}, vars)
	if err != nil {
		t.Fatal(err)
	}
	if stats.StallCycles != 0 {
		t.Fatalf("G64 stalled %d cycles", stats.StallCycles)
	}
	if got := stats.ThroughputCyclesPerVariable; got > 1.02 {
		t.Errorf("G64 throughput %v cycles/var, want ~1", got)
	}
	if stats.FirstLatency != 12 {
		t.Errorf("G64 latency %d, want 12", stats.FirstLatency)
	}
}

func TestPipelineRejectsBadConfig(t *testing.T) {
	for _, cfg := range []PipelineConfig{
		{M: 0, Width: 1, Replicas: 1},
		{M: 5, Width: 0, Replicas: 1},
		{M: 5, Width: 1, Replicas: 0},
	} {
		if _, err := SimulatePipeline(cfg, 1); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if _, err := SimulatePipeline(PipelineConfig{M: 5, Width: 1, Replicas: 4}, 0); err == nil {
		t.Error("zero variables accepted")
	}
}

// Property: for any configuration, simulated single-variable latency
// equals the closed form, throughput is monotone non-increasing in the
// replica count, and stalls vanish at >= QuiescenceCycles replicas.
func TestPipelineProperties(t *testing.T) {
	f := func(mRaw, kRaw, rRaw uint8) bool {
		m := int(mRaw%64) + 1
		k := 1 << (kRaw % 4) // 1,2,4,8
		r := int(rRaw%6) + 1
		stats, err := SimulatePipeline(PipelineConfig{M: m, Width: k, Replicas: r}, 10)
		if err != nil {
			return false
		}
		if r >= QuiescenceCycles && stats.StallCycles != 0 {
			return false
		}
		more, err := SimulatePipeline(PipelineConfig{M: m, Width: k, Replicas: r + 1}, 10)
		if err != nil {
			return false
		}
		return more.ThroughputCyclesPerVariable <= stats.ThroughputCyclesPerVariable+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineQuiescenceWindow is the table-driven quiescence-hazard
// suite: a correct scheduler must *stall* when the next round-robin
// replica is still inside its 4-cycle recovery window — never reuse it
// — and the stall count must exactly match the closed-form interlock
// cost. The violating scheduler (the fault.Quiesce injection model)
// must instead reuse the replica and report every early reuse.
func TestPipelineQuiescenceWindow(t *testing.T) {
	const vars = 100
	cases := []struct {
		name           string
		replicas       int
		violate        bool
		wantStalls     int // exact stall cycles over `vars` variables (M=5, K=1)
		wantViolations int // exact early reuses
	}{
		// All 4 replicated circuits busy back-to-back: the 4-deep
		// round-robin returns to a replica exactly QuiescenceCycles
		// after its issue — zero stalls, zero reuses.
		{"4 replicas: hazard fully hidden", 4, false, 0, 0},
		// 3 replicas: the scheduler revisits a replica after 3 issue
		// slots, 1 cycle short of quiescent — steady state is 3 issues
		// per 4 cycles, one stall cycle ahead of each issue group after
		// the first: ceil(issues/3) - 1 stalls, zero reuses.
		{"3 replicas: stall, not reuse", 3, false, (vars*5+2)/3 - 1, 0},
		// 1 replica: every issue after the first waits the full window.
		{"1 replica: full serialization", 1, false, (vars*5 - 1) * (QuiescenceCycles - 1), 0},
		// Interlock removed: the same pressure shows up as hazard
		// violations (residual-excitation corruption), never stalls.
		{"3 replicas, violated: reuse counted", 3, true, 0, vars*5 - QuiescenceCycles + 1},
		{"1 replica, violated: reuse counted", 1, true, 0, vars*5 - 1},
		// No pressure, no violations even with the interlock removed.
		{"4 replicas, violated: nothing to violate", 4, true, 0, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			stats, err := SimulatePipeline(PipelineConfig{
				M: 5, Width: 1, Replicas: c.replicas, ViolateQuiescence: c.violate,
			}, vars)
			if err != nil {
				t.Fatal(err)
			}
			if stats.StallCycles != c.wantStalls {
				t.Errorf("stalls = %d, want %d", stats.StallCycles, c.wantStalls)
			}
			if stats.HazardViolations != c.wantViolations {
				t.Errorf("violations = %d, want %d", stats.HazardViolations, c.wantViolations)
			}
		})
	}
}

// TestPipelineViolationKeepsIssueRate: removing the interlock trades
// correctness for throughput — the violating pipeline must match the
// fully replicated one cycle-for-cycle (that is exactly why the hazard
// is tempting to ignore, and why it must be detected downstream).
func TestPipelineViolationKeepsIssueRate(t *testing.T) {
	const vars = 200
	healthy, err := SimulatePipeline(PipelineConfig{M: 5, Width: 1, Replicas: 4}, vars)
	if err != nil {
		t.Fatal(err)
	}
	violated, err := SimulatePipeline(PipelineConfig{M: 5, Width: 1, Replicas: 1, ViolateQuiescence: true}, vars)
	if err != nil {
		t.Fatal(err)
	}
	if healthy.TotalCycles != violated.TotalCycles {
		t.Errorf("violating pipeline took %d cycles, replicated one %d — should match",
			violated.TotalCycles, healthy.TotalCycles)
	}
	if violated.HazardViolations == 0 {
		t.Error("violating single-replica pipeline reported no hazard violations")
	}
}

func BenchmarkPipelineSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := SimulatePipeline(PipelineConfig{M: 49, Width: 1, Replicas: 4}, 100); err != nil {
			b.Fatal(err)
		}
	}
}
