package rsu

import "fmt"

// This file models the §6.1 context-switch story. An RSU-G holds state
// over many cycles (it iterates over labels), so on a general-purpose
// core the OS must be able to save and restore it across exceptions.
// The paper's optimization: treat each random-variable evaluation as an
// idempotent region and restart it from its inputs (refs [14, 18]),
// which shrinks the saved state to the per-application registers (the
// map table and counter) plus the per-variable operand registers —
// "only a few cycles per RSU-G unit".

// ArchState is the architectural state of one RSU-G unit under the
// idempotent-restart discipline: everything needed to re-execute the
// current variable evaluation from scratch. In-flight TTF counts and
// the partially advanced down counter are deliberately NOT saved.
type ArchState struct {
	// MapLo/MapHi are the two 64-bit map-table control words.
	MapLo, MapHi uint64
	// CounterInit is the down-counter reload value (M-1).
	CounterInit uint8
	// Neighbors, SingletonA and SingletonD are the operand registers.
	Neighbors              uint64
	SingletonA, SingletonD uint8
}

// SaveCycles and RestoreCycles are the modeled costs of moving the
// architectural state through the 64-bit register interface: map lo,
// map hi, counter, neighbors, singleton A, singleton D — one RSU
// instruction each.
const (
	SaveCycles    = 6
	RestoreCycles = 6
)

// SaveState captures the driver's architectural state. It fails if the
// unit was never initialized (there is nothing coherent to save).
func (d *Driver) SaveState() (ArchState, error) {
	if !d.mapLoaded || !d.counterSet {
		return ArchState{}, fmt.Errorf("rsu: cannot save state of uninitialized unit")
	}
	return ArchState{
		MapLo:       d.pendingLo,
		MapHi:       d.pendingHi,
		CounterInit: uint8(d.counterInit),
		Neighbors:   PackNeighbors(d.in.Neighbors),
		SingletonA:  uint8(d.in.Data1),
		SingletonD:  uint8(d.in.Data2),
	}, nil
}

// RestoreState reloads a previously saved state through the normal
// control-register writes (6 instructions), leaving the driver ready to
// re-issue the interrupted variable evaluation from step 3 of §6 —
// the idempotent restart point.
func (d *Driver) RestoreState(s ArchState) error {
	if err := d.Write(OpMapLo, s.MapLo); err != nil {
		return err
	}
	if err := d.Write(OpMapHi, s.MapHi); err != nil {
		return err
	}
	if err := d.Write(OpCounter, uint64(s.CounterInit)); err != nil {
		return err
	}
	if err := d.Write(OpNeighbors, s.Neighbors); err != nil {
		return err
	}
	if err := d.Write(OpSingletonA, uint64(s.SingletonA)); err != nil {
		return err
	}
	return d.Write(OpSingletonD, uint64(s.SingletonD))
}
