package rsu

import (
	"fmt"
	"math"

	"repro/internal/fixed"
)

// IntensityMap is the 256-entry × 4-bit lookup table of the RSU-G's
// third pipeline stage (paper §5.2, Intensity Mapping): it maps an 8-bit
// clique-potential energy to the QD-LED code whose optical intensity
// best realizes the Boltzmann rate exp(-E/T). The paper sizes it at 128
// bytes (256 entries × 4 bits) and initializes it per-application
// through two RSU instructions (§6.1).
type IntensityMap [256]fixed.Intensity

// BuildIntensityMap constructs the LUT for a given LED intensity ladder
// and quantized temperature.
//
// levels[c] is the effective sampling rate of LED code c (from
// ret.LEDBank.Levels scaled by circuit losses; only relative magnitudes
// matter). temperature is in 8-bit energy units per e-fold: the target
// rate for energy E is max(levels) * exp(-E/temperature).
//
// For each energy the builder picks the code minimizing the relative
// error |log(level) - log(target)| among the positive levels. When the
// target rate falls below half the dimmest positive level — beyond the
// ladder's dynamic range — the builder maps the energy to a dark code
// (all LEDs off, rate 0) if the ladder has one. This matters for
// fidelity: without a dark rung, every improbable label is floored at
// dimmest/brightest relative probability, and with many labels (M=49
// motion) those floors sum to a fat tail the exact Gibbs conditional
// does not have. A dark channel simply never fires, which is the
// correct limit. If every channel of a variable ends up dark the
// selection stage's tie-break returns the first-evaluated label.
func BuildIntensityMap(levels [16]float64, temperature float64) (IntensityMap, error) {
	var m IntensityMap
	if temperature <= 0 {
		return m, fmt.Errorf("rsu: LUT temperature must be positive, got %v", temperature)
	}
	maxLevel := 0.0
	minPositive := math.Inf(1)
	darkCode := -1
	for c, l := range levels {
		if l < 0 || math.IsNaN(l) || math.IsInf(l, 0) {
			return m, fmt.Errorf("rsu: invalid LED level %v", l)
		}
		if l > maxLevel {
			maxLevel = l
		}
		if l == 0 && darkCode < 0 {
			darkCode = c
		}
		if l > 0 && l < minPositive {
			minPositive = l
		}
	}
	if maxLevel <= 0 {
		return m, fmt.Errorf("rsu: all LED levels are dark")
	}
	for e := 0; e < 256; e++ {
		target := math.Log(maxLevel) - float64(e)/temperature
		if darkCode >= 0 && target < math.Log(minPositive/2) {
			m[e] = fixed.NewIntensity(darkCode)
			continue
		}
		bestCode, bestErr := -1, math.Inf(1)
		for c := 0; c < 16; c++ {
			if levels[c] <= 0 {
				continue
			}
			if err := math.Abs(math.Log(levels[c]) - target); err < bestErr {
				bestCode, bestErr = c, err
			}
		}
		m[e] = fixed.NewIntensity(bestCode)
	}
	return m, nil
}

// Pack64 serializes the LUT into four 64-bit words exactly as the §6.1
// initialization protocol ships it ("map table hi, map table low" via
// two RSU instructions each writing packed values): 128 bytes of 4-bit
// entries → 16 words, but the control interface models the two logical
// halves. Entry e occupies bits [4*(e%16), 4*(e%16)+4) of word e/16.
func (m IntensityMap) Pack64() [16]uint64 {
	var words [16]uint64
	for e, code := range m {
		words[e/16] |= uint64(code&0xF) << (4 * (e % 16))
	}
	return words
}

// UnpackIntensityMap reverses Pack64.
func UnpackIntensityMap(words [16]uint64) IntensityMap {
	var m IntensityMap
	for e := range m {
		m[e] = fixed.Intensity((words[e/16] >> (4 * (e % 16))) & fixed.MaxIntensity)
	}
	return m
}
