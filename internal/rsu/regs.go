package rsu

import (
	"fmt"

	"repro/internal/fixed"
	"repro/internal/rng"
)

// This file models the §6.1 software interface: a single instruction
//
//	RSU op, reg_src, reg_dst
//
// whose 3-bit op field selects one of six control registers (map table
// hi, map table lo, down counter, neighbors, singleton A, singleton D)
// plus a result-read bit. Initialization costs 3 instructions (two map
// writes + the counter); per-variable operation writes neighbors and
// singleton data and then reads the result, stalling if the evaluation
// has not finished.

// Op selects an RSU-G control register.
type Op uint8

// Control-register opcodes (§6.1).
const (
	OpMapLo Op = iota
	OpMapHi
	OpCounter
	OpNeighbors
	OpSingletonA
	OpSingletonD
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpMapLo:
		return "map_lo"
	case OpMapHi:
		return "map_hi"
	case OpCounter:
		return "counter"
	case OpNeighbors:
		return "neighbors"
	case OpSingletonA:
		return "singleton_a"
	case OpSingletonD:
		return "singleton_d"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// ThresholdMap is the compact, architecturally loadable form of an
// IntensityMap. The paper initializes the map table with just two
// 64-bit register writes; a full 256×4-bit table cannot cross a 64-bit
// datapath in two writes, but a *monotone* map can: because the target
// rate exp(-E/T) is decreasing in E, the map is a step function over at
// most 16 energy runs. ThresholdMap stores the 16 run-start energies
// (8 bits each = 128 bits = exactly the "map table hi"/"map table lo"
// pair); run r uses the r-th brightest LED code of the unit's ladder.
type ThresholdMap struct {
	// Starts[r] is the first energy of run r; Starts[0] must be 0 and
	// entries must be non-decreasing. A run collapses to zero length
	// when Starts[r] == Starts[r+1].
	Starts [16]uint8
	// Codes[r] is the LED code of run r (fixed by the ladder design,
	// sorted from brightest to darkest).
	Codes [16]fixed.Intensity
}

// CompressMap converts a full IntensityMap into threshold form.
// It fails when the map is not a step function of at most 16 runs —
// which cannot happen for maps built by BuildIntensityMap against a
// rate-sorted ladder, but can for hand-crafted maps.
func CompressMap(m IntensityMap) (ThresholdMap, error) {
	var tm ThresholdMap
	run := -1
	for e := 0; e < 256; e++ {
		if run >= 0 && m[e] == tm.Codes[run] {
			continue
		}
		run++
		if run >= 16 {
			return tm, fmt.Errorf("rsu: intensity map has more than 16 runs")
		}
		tm.Starts[run] = uint8(e)
		tm.Codes[run] = m[e]
	}
	// Unused trailing runs duplicate the last real start: Expand treats a
	// run whose start does not exceed its predecessor's as empty, so the
	// encoding is lossless and independent of the trailing codes.
	for r := run + 1; r < 16; r++ {
		tm.Starts[r] = tm.Starts[run]
		tm.Codes[r] = tm.Codes[run]
	}
	return tm, nil
}

// Expand reconstructs the full 256-entry map.
func (tm ThresholdMap) Expand() IntensityMap {
	var m IntensityMap
	run := 0
	for e := 0; e < 256; e++ {
		for run+1 < 16 && uint8(e) >= tm.Starts[run+1] && tm.Starts[run+1] > tm.Starts[run] {
			run++
		}
		m[e] = tm.Codes[run]
	}
	return m
}

// Words packs the 16 run-start energies into the two 64-bit control
// values written to map_lo (runs 0–7) and map_hi (runs 8–15).
func (tm ThresholdMap) Words() (lo, hi uint64) {
	for r := 0; r < 8; r++ {
		lo |= uint64(tm.Starts[r]) << (8 * r)
		hi |= uint64(tm.Starts[r+8]) << (8 * r)
	}
	return lo, hi
}

// ThresholdMapFromWords rebuilds the run starts from the two control
// words; codes must be supplied by the ladder design (they are wired,
// not loaded).
func ThresholdMapFromWords(lo, hi uint64, codes [16]fixed.Intensity) ThresholdMap {
	var tm ThresholdMap
	for r := 0; r < 8; r++ {
		tm.Starts[r] = uint8(lo >> (8 * r))
		tm.Starts[r+8] = uint8(hi >> (8 * r))
	}
	tm.Codes = codes
	return tm
}

// PackNeighbors packs four 6-bit labels into one 24-bit operand
// (§6.1: "we assume [values] are packed into 32 or 64-bit registers").
func PackNeighbors(n [4]fixed.Label) uint64 {
	var v uint64
	for i, l := range n {
		v |= uint64(l&fixed.MaxLabel) << (6 * i)
	}
	return v
}

// UnpackNeighbors reverses PackNeighbors.
func UnpackNeighbors(v uint64) [4]fixed.Label {
	var n [4]fixed.Label
	for i := range n {
		n[i] = fixed.Label((v >> (6 * i)) & fixed.MaxLabel)
	}
	return n
}

// Driver models a thread driving one RSU-G unit through the §6.1
// instruction interface, counting issued instructions and stall cycles.
type Driver struct {
	unit  *Unit
	codes [16]fixed.Intensity // ladder codes sorted brightest-first (wired)

	in          Input
	counterInit int
	mapLoaded   bool
	counterSet  bool

	pendingLo, pendingHi uint64
	haveLo, haveHi       bool

	// Instructions is the number of RSU instructions issued.
	Instructions int
	// StallCycles is the total stall waiting for results.
	StallCycles int
}

// NewDriver wires a driver to a unit. The driver derives the fixed
// rate-sorted code order from the unit's LED ladder.
func NewDriver(u *Unit) *Driver {
	d := &Driver{unit: u}
	levels := u.Levels()
	// Selection sort of codes by descending rate (16 entries).
	used := [16]bool{}
	for r := 0; r < 16; r++ {
		best, bestRate := -1, -1.0
		for c := 0; c < 16; c++ {
			if !used[c] && levels[c] > bestRate {
				best, bestRate = c, levels[c]
			}
		}
		used[best] = true
		d.codes[r] = fixed.NewIntensity(best)
	}
	return d
}

// Codes returns the wired brightest-first code order.
func (d *Driver) Codes() [16]fixed.Intensity { return d.codes }

// Write issues one RSU control-register write (one instruction).
func (d *Driver) Write(op Op, value uint64) error {
	d.Instructions++
	switch op {
	case OpMapLo:
		d.pendingLo, d.haveLo = value, true
		d.tryLoadMap()
	case OpMapHi:
		d.pendingHi, d.haveHi = value, true
		d.tryLoadMap()
	case OpCounter:
		v := int(value & fixed.MaxLabel)
		if v+1 != d.unit.cfg.M {
			return fmt.Errorf("rsu: counter init %d does not match M=%d", v, d.unit.cfg.M)
		}
		d.counterInit = v
		d.counterSet = true
	case OpNeighbors:
		d.in.Neighbors = UnpackNeighbors(value)
	case OpSingletonA:
		d.in.Data1 = uint8(value) & fixed.MaxLabel
	case OpSingletonD:
		d.in.Data2 = uint8(value) & fixed.MaxLabel
	default:
		return fmt.Errorf("rsu: unknown op %v", op)
	}
	return nil
}

// tryLoadMap expands and installs the threshold map once both halves
// have been written.
func (d *Driver) tryLoadMap() {
	if !d.haveLo || !d.haveHi {
		return
	}
	tm := ThresholdMapFromWords(d.pendingLo, d.pendingHi, d.codes)
	d.unit.SetMap(tm.Expand())
	d.mapLoaded = true
}

// Init performs the 3-instruction application setup (§6.1: "The total
// initialization time is only 3 cycles"): two map writes and the
// counter write.
func (d *Driver) Init(tm ThresholdMap) error {
	lo, hi := tm.Words()
	if err := d.Write(OpMapLo, lo); err != nil {
		return err
	}
	if err := d.Write(OpMapHi, hi); err != nil {
		return err
	}
	return d.Write(OpCounter, uint64(d.unit.cfg.M-1))
}

// Sample issues the per-variable sequence: neighbors, singleton A,
// singleton D (3 instructions), then the result read. The result read
// stalls for the evaluation latency minus the cycles already overlapped
// with the writes (§6.1 assumes write overlap with the previous
// variable's tail; we charge the full evaluation latency as stall for a
// single in-flight variable, the conservative non-pipelined bound).
func (d *Driver) Sample(nbrs [4]fixed.Label, data1, data2 uint8, src *rng.Source) (fixed.Label, error) {
	if !d.mapLoaded || !d.counterSet {
		return 0, fmt.Errorf("rsu: driver not initialized (map=%v counter=%v)", d.mapLoaded, d.counterSet)
	}
	if err := d.Write(OpNeighbors, PackNeighbors(nbrs)); err != nil {
		return 0, err
	}
	if err := d.Write(OpSingletonA, uint64(data1)); err != nil {
		return 0, err
	}
	if err := d.Write(OpSingletonD, uint64(data2)); err != nil {
		return 0, err
	}
	d.Instructions++ // the result-read instruction
	label, timing := d.unit.Sample(d.in, src)
	d.StallCycles += timing.Cycles
	return label, nil
}

// SampleStream issues the per-variable sequence for applications whose
// second data value changes per label (§6: "the singleton calculation
// may also need information from a target location (pixel grayscale)").
// The software writes neighbors and singleton A once, then streams one
// singleton-D write per label, overlapped with the down counter's
// iteration — M extra instructions but no extra evaluation latency
// beyond the unit's normal M-step schedule.
func (d *Driver) SampleStream(nbrs [4]fixed.Label, data1 uint8, data2PerLabel []uint8, src *rng.Source) (fixed.Label, error) {
	if !d.mapLoaded || !d.counterSet {
		return 0, fmt.Errorf("rsu: driver not initialized")
	}
	if len(data2PerLabel) < d.unit.cfg.M {
		return 0, fmt.Errorf("rsu: stream has %d entries, need M=%d", len(data2PerLabel), d.unit.cfg.M)
	}
	if err := d.Write(OpNeighbors, PackNeighbors(nbrs)); err != nil {
		return 0, err
	}
	if err := d.Write(OpSingletonA, uint64(data1)); err != nil {
		return 0, err
	}
	// One singleton-D write per label evaluation, in down-counter order.
	for i := 0; i < d.unit.cfg.M; i++ {
		if err := d.Write(OpSingletonD, uint64(data2PerLabel[d.unit.cfg.M-1-i])); err != nil {
			return 0, err
		}
	}
	d.Instructions++ // result read
	in := d.in
	in.Data2PerLabel = data2PerLabel
	label, timing := d.unit.Sample(in, src)
	d.StallCycles += timing.Cycles
	return label, nil
}
