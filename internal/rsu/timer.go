package rsu

import "math"

// TTFTimer models the time-to-fluorescence measurement of the RET
// Sampling pipeline stage (paper §5.2): "The time to the first photon
// detection (TTF) is recorded using an 8-bit shift register that is
// clocked 8x faster than the system clock."
type TTFTimer struct {
	// ClockHz is the system clock frequency; the register ticks at
	// 8 × ClockHz.
	ClockHz float64
	// Bits is the register width (8 in the paper). Max count is
	// 2^Bits - 1, at which the measurement saturates.
	Bits int
}

// NewTTFTimer returns the paper's 8-bit, 8x-overclocked timer for the
// given system clock. It panics on a non-positive clock.
func NewTTFTimer(clockHz float64) TTFTimer {
	if clockHz <= 0 {
		panic("rsu: TTF timer clock must be positive")
	}
	return TTFTimer{ClockHz: clockHz, Bits: 8}
}

// Resolution returns the tick duration in seconds (125 ps at 1 GHz).
func (t TTFTimer) Resolution() float64 { return 1 / (8 * t.ClockHz) }

// MaxCount returns the saturation count (255 for 8 bits).
func (t TTFTimer) MaxCount() uint32 { return 1<<t.Bits - 1 }

// Window returns the full-scale measurement window in seconds
// (31.875 ns at 1 GHz with 8 bits).
func (t TTFTimer) Window() float64 { return float64(t.MaxCount()) * t.Resolution() }

// Quantize converts a continuous TTF in seconds to a register count,
// saturating at MaxCount. Infinite TTF (a dark channel) saturates.
func (t TTFTimer) Quantize(ttf float64) uint32 {
	if ttf < 0 {
		return 0
	}
	if math.IsInf(ttf, 1) {
		return t.MaxCount()
	}
	c := uint64(ttf / t.Resolution())
	if c >= uint64(t.MaxCount()) {
		return t.MaxCount()
	}
	return uint32(c)
}
