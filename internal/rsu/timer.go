package rsu

import "math"

// TTFTimer models the time-to-fluorescence measurement of the RET
// Sampling pipeline stage (paper §5.2): "The time to the first photon
// detection (TTF) is recorded using an 8-bit shift register that is
// clocked 8x faster than the system clock."
type TTFTimer struct {
	// ClockHz is the system clock frequency; the register ticks at
	// 8 × ClockHz.
	ClockHz float64
	// Bits is the register width (8 in the paper). Max count is
	// 2^Bits - 1, at which the measurement saturates.
	Bits int
}

// NewTTFTimer returns the paper's 8-bit, 8x-overclocked timer for the
// given system clock. It panics on a non-positive clock.
func NewTTFTimer(clockHz float64) TTFTimer {
	if clockHz <= 0 {
		panic("rsu: TTF timer clock must be positive")
	}
	return TTFTimer{ClockHz: clockHz, Bits: 8}
}

// Resolution returns the tick duration in seconds (125 ps at 1 GHz).
func (t TTFTimer) Resolution() float64 { return 1 / (8 * t.ClockHz) }

// MaxCount returns the saturation count (255 for 8 bits).
func (t TTFTimer) MaxCount() uint32 { return 1<<t.Bits - 1 }

// Window returns the full-scale measurement window in seconds
// (31.875 ns at 1 GHz with 8 bits).
func (t TTFTimer) Window() float64 { return float64(t.MaxCount()) * t.Resolution() }

// Quantize converts a continuous TTF in seconds to a register count,
// saturating at MaxCount. Infinite TTF (a dark channel) saturates.
//
// The saturation compare happens in the float domain *before* any
// integer conversion: converting a float64 ≥ 2^63 (or NaN) to an
// unsigned integer is implementation-specific in Go, so the previous
// `uint64(ttf/res) >= uint64(max)` form silently depended on the
// platform for extreme TTFs. In the physical register the comparison
// is a carry-out of the 8-bit counter — it can only ever saturate, not
// wrap (wrap is modeled as an injectable fault; see internal/fault).
// Results are bit-identical to the old code for all in-range TTFs.
func (t TTFTimer) Quantize(ttf float64) uint32 {
	if ttf < 0 {
		return 0
	}
	ticks := ttf / t.Resolution()
	if math.IsNaN(ticks) || ticks >= float64(t.MaxCount()) {
		return t.MaxCount()
	}
	return uint32(ticks)
}

// QuantizeSat is Quantize plus the saturation flag of the selection
// stage. The flag feeds the fault monitors' saturation counters
// (fault.Obs.Saturated): silent saturation was previously invisible
// upstream, which is exactly how a dead SPAD hides.
func (t TTFTimer) QuantizeSat(ttf float64) (count uint32, saturated bool) {
	c := t.Quantize(ttf)
	return c, c >= t.MaxCount()
}

// ExpectedCount returns the expected quantized TTF count of an
// exponential channel with the given detected-photon rate, accounting
// for register saturation: E[min(T, W)]/res = µ·(1 − e^(−max/µ)) ticks
// with µ the mean TTF in ticks. This is the reference statistic the
// fault monitors' fire-rate EWMA compares observed counts against; a
// zero (dark) rate expects exactly the saturation count.
func (t TTFTimer) ExpectedCount(rate float64) float64 {
	max := float64(t.MaxCount())
	if rate <= 0 {
		return max
	}
	mu := 1 / (rate * t.Resolution())
	return mu * (1 - math.Exp(-max/mu))
}
