package rsu

import (
	"testing"

	"repro/internal/fixed"
	"repro/internal/rng"
)

func TestSaveStateRequiresInit(t *testing.T) {
	u := testUnit(t, 4, 1, false, 40, Ideal)
	d := NewDriver(u)
	if _, err := d.SaveState(); err == nil {
		t.Fatal("saved state of uninitialized unit")
	}
}

// TestContextSwitchRoundTrip: save on one driver, restore on a fresh
// driver over an equivalent unit, and verify the restored unit samples
// the same distribution for the interrupted variable — the idempotent
// restart contract.
func TestContextSwitchRoundTrip(t *testing.T) {
	u1 := testUnit(t, 5, 1, false, 40, Ideal)
	tm, err := CompressMap(u1.Config().Map)
	if err != nil {
		t.Fatal(err)
	}
	d1 := NewDriver(u1)
	if err := d1.Init(tm); err != nil {
		t.Fatal(err)
	}
	src := rng.New(31)
	nbrs := [4]fixed.Label{1, 2, 2, 3}
	if _, err := d1.Sample(nbrs, 7, 9, src); err != nil {
		t.Fatal(err)
	}
	state, err := d1.SaveState()
	if err != nil {
		t.Fatal(err)
	}

	// "Context switch": a brand-new driver and unit (same design) with
	// a blank map; restore must bring back map, counter and operands.
	u2 := testUnit(t, 5, 1, false, 40, Ideal)
	u2.SetMap(IntensityMap{}) // wiped
	d2 := NewDriver(u2)
	before := d2.Instructions
	if err := d2.RestoreState(state); err != nil {
		t.Fatal(err)
	}
	if d2.Instructions-before != RestoreCycles {
		t.Fatalf("restore took %d instructions, want %d", d2.Instructions-before, RestoreCycles)
	}
	if u2.Config().Map != u1.Config().Map {
		t.Fatal("map not restored")
	}

	// Both drivers must now sample the same distribution for the same
	// operands.
	const trials = 60000
	counts1 := make([]int, 5)
	counts2 := make([]int, 5)
	srcA, srcB := rng.New(32), rng.New(33)
	for i := 0; i < trials; i++ {
		l1, err := d1.Sample(nbrs, 7, 9, srcA)
		if err != nil {
			t.Fatal(err)
		}
		l2, err := d2.Sample(nbrs, 7, 9, srcB)
		if err != nil {
			t.Fatal(err)
		}
		counts1[l1]++
		counts2[l2]++
	}
	for l := range counts1 {
		diff := float64(counts1[l]-counts2[l]) / trials
		if diff > 0.02 || diff < -0.02 {
			t.Fatalf("restored unit distribution differs at label %d: %v vs %v", l, counts1, counts2)
		}
	}
}

func TestSaveStateCapturesOperands(t *testing.T) {
	u := testUnit(t, 5, 1, false, 40, Ideal)
	tm, err := CompressMap(u.Config().Map)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDriver(u)
	if err := d.Init(tm); err != nil {
		t.Fatal(err)
	}
	src := rng.New(34)
	nbrs := [4]fixed.Label{4, 3, 2, 1}
	if _, err := d.Sample(nbrs, 5, 6, src); err != nil {
		t.Fatal(err)
	}
	s, err := d.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	if UnpackNeighbors(s.Neighbors) != nbrs {
		t.Fatal("neighbors not captured")
	}
	if s.SingletonA != 5 || s.SingletonD != 6 {
		t.Fatalf("singleton operands %d/%d", s.SingletonA, s.SingletonD)
	}
	if s.CounterInit != 4 {
		t.Fatalf("counter init %d, want 4", s.CounterInit)
	}
}
