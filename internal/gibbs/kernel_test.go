package gibbs

import (
	"math"
	"testing"

	"repro/internal/img"
	"repro/internal/mrf"
)

// This file verifies the Gibbs kernel by exact linear algebra — no
// sampling noise at all. For a tiny model we can build the full
// transition matrix of one raster sweep (the composition of per-site
// conditional-update kernels) and check that the Boltzmann distribution
// is exactly invariant under it: πP = π. This is the defining property
// of a correct Gibbs sweep and holds to floating-point precision.

// siteKernel returns the exact transition matrix of updating one site
// from its full conditional, acting on the joint state space.
func siteKernel(m *mrf.Model, x, y int) [][]float64 {
	n := m.W * m.H
	states := intPow(m.M, n)
	p := make([][]float64, states)
	lm := img.NewLabelMap(m.W, m.H)
	site := y*m.W + x
	for s := 0; s < states; s++ {
		p[s] = make([]float64, states)
		decodeState(s, m.M, lm)
		probs := m.ConditionalProbs(nil, lm, x, y)
		for l, pl := range probs {
			old := lm.Labels[site]
			lm.Labels[site] = uint8(l)
			p[s][encodeState(lm, m.M)] += pl
			lm.Labels[site] = old
		}
	}
	return p
}

func decodeState(s, m int, lm *img.LabelMap) {
	for i := range lm.Labels {
		lm.Labels[i] = uint8(s % m)
		s /= m
	}
}

func intPow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}

func matMul(a, b [][]float64) [][]float64 {
	n := len(a)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		for k, aik := range a[i] {
			if aik == 0 {
				continue
			}
			for j, bkj := range b[k] {
				out[i][j] += aik * bkj
			}
		}
	}
	return out
}

// TestGibbsSweepLeavesBoltzmannInvariant: π P_sweep = π exactly.
func TestGibbsSweepLeavesBoltzmannInvariant(t *testing.T) {
	m := tinyModel()
	pi := exactBoltzmann(m)

	// Compose the per-site kernels in raster order.
	var sweep [][]float64
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			k := siteKernel(m, x, y)
			if sweep == nil {
				sweep = k
			} else {
				sweep = matMul(sweep, k)
			}
		}
	}

	// Rows are stochastic.
	for i, row := range sweep {
		sum := 0.0
		for _, v := range row {
			if v < 0 {
				t.Fatalf("negative transition probability at row %d", i)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}

	// πP = π.
	out := make([]float64, len(pi))
	for s, ps := range pi {
		for j, pj := range sweep[s] {
			out[j] += ps * pj
		}
	}
	for s := range pi {
		if math.Abs(out[s]-pi[s]) > 1e-12 {
			t.Fatalf("state %d: (πP)=%v, π=%v", s, out[s], pi[s])
		}
	}
}

// TestGibbsSweepErgodic: the sweep kernel has strictly positive entries
// (every state reachable in one sweep), so the chain is ergodic and the
// invariant distribution is unique.
func TestGibbsSweepErgodic(t *testing.T) {
	m := tinyModel()
	var sweep [][]float64
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			k := siteKernel(m, x, y)
			if sweep == nil {
				sweep = k
			} else {
				sweep = matMul(sweep, k)
			}
		}
	}
	for i, row := range sweep {
		for j, v := range row {
			if v <= 0 {
				t.Fatalf("sweep kernel entry (%d,%d) = %v; chain not ergodic", i, j, v)
			}
		}
	}
}

// TestPowerIterationConvergesToBoltzmann: iterating the sweep kernel
// from any start converges to the Boltzmann distribution (the spectral
// view of chain convergence).
func TestPowerIterationConvergesToBoltzmann(t *testing.T) {
	m := tinyModel()
	pi := exactBoltzmann(m)
	var sweep [][]float64
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			k := siteKernel(m, x, y)
			if sweep == nil {
				sweep = k
			} else {
				sweep = matMul(sweep, k)
			}
		}
	}
	// Point mass on state 0.
	v := make([]float64, len(pi))
	v[0] = 1
	for it := 0; it < 200; it++ {
		next := make([]float64, len(v))
		for s, ps := range v {
			if ps == 0 {
				continue
			}
			for j, pj := range sweep[s] {
				next[j] += ps * pj
			}
		}
		v = next
	}
	for s := range pi {
		if math.Abs(v[s]-pi[s]) > 1e-9 {
			t.Fatalf("power iteration state %d: %v vs %v", s, v[s], pi[s])
		}
	}
}
