package gibbs

import (
	"context"
	"math"
	"testing"

	"repro/internal/img"
	"repro/internal/mrf"
	"repro/internal/rng"
)

// twoLabelModel builds a small model whose data term pulls the left half
// to label 0 and the right half to label 1.
func twoLabelModel(w, h int) *mrf.Model {
	return &mrf.Model{
		W: w, H: h, M: 2,
		T:       1,
		LambdaS: 1, LambdaD: 0.7,
		Singleton: func(x, y, label int) float64 {
			want := 0
			if x >= w/2 {
				want = 1
			}
			return 4 * mrf.SquaredDiff(label, want)
		},
		Doubleton: mrf.SquaredDiff,
	}
}

func TestRunValidatesInputs(t *testing.T) {
	m := twoLabelModel(4, 4)
	good := img.NewLabelMap(4, 4)
	cases := []struct {
		name string
		init *img.LabelMap
		opt  Options
	}{
		{"zero iterations", good, Options{Iterations: 0}},
		{"negative burn", good, Options{Iterations: 5, BurnIn: -1}},
		{"burn >= iters", good, Options{Iterations: 5, BurnIn: 5}},
		{"size mismatch", img.NewLabelMap(3, 3), Options{Iterations: 5}},
	}
	for _, c := range cases {
		if _, err := Run(context.Background(), m, c.init, NewExactGibbs(), c.opt, 1); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	bad := img.NewLabelMap(4, 4)
	bad.Labels[0] = 5
	if _, err := Run(context.Background(), m, bad, NewExactGibbs(), Options{Iterations: 1}, 1); err == nil {
		t.Error("out-of-range init label accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	m := twoLabelModel(8, 8)
	init := img.NewLabelMap(8, 8)
	opt := Options{Iterations: 10, Schedule: Checkerboard, Workers: 4}
	a, err := Run(context.Background(), m, init, NewExactGibbs(), opt, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), m, init, NewExactGibbs(), opt, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Final.Labels {
		if a.Final.Labels[i] != b.Final.Labels[i] {
			t.Fatalf("same seed diverged at site %d", i)
		}
	}
}

func TestRunDoesNotModifyInit(t *testing.T) {
	m := twoLabelModel(6, 6)
	init := img.NewLabelMap(6, 6)
	init.Labels[7] = 1
	snapshot := init.Clone()
	if _, err := Run(context.Background(), m, init, NewExactGibbs(), Options{Iterations: 3}, 1); err != nil {
		t.Fatal(err)
	}
	for i := range init.Labels {
		if init.Labels[i] != snapshot.Labels[i] {
			t.Fatal("Run modified the init labeling")
		}
	}
}

// TestChainRecoversStructure: with a strong data term the MAP estimate
// should recover the left/right split almost perfectly.
func TestChainRecoversStructure(t *testing.T) {
	m := twoLabelModel(16, 16)
	init := img.NewLabelMap(16, 16)
	res, err := Run(context.Background(), m, init, NewExactGibbs(), Options{
		Iterations: 60, BurnIn: 20, Schedule: Checkerboard, TrackMode: true,
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	truth := img.NewLabelMap(16, 16)
	for y := 0; y < 16; y++ {
		for x := 8; x < 16; x++ {
			truth.Set(x, y, 1)
		}
	}
	if rate := res.MAP.MislabelRate(truth); rate > 0.05 {
		t.Fatalf("mislabel rate %v too high", rate)
	}
}

// TestSamplersAgreeOnMarginals: exact Gibbs and first-to-fire Gibbs must
// produce statistically indistinguishable marginals (they implement the
// same kernel). Compare per-site empirical label frequencies.
func TestSamplersAgreeOnMarginals(t *testing.T) {
	m := twoLabelModel(8, 8)
	init := img.NewLabelMap(8, 8)
	opt := Options{Iterations: 400, BurnIn: 50, Schedule: Checkerboard, TrackMode: true}
	a, err := Run(context.Background(), m, init, NewExactGibbs(), opt, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), m, init, NewFirstToFire(), opt, 12)
	if err != nil {
		t.Fatal(err)
	}
	if agree := a.MAP.Agreement(b.MAP); agree < 0.95 {
		t.Fatalf("MAP agreement %v between exact and first-to-fire", agree)
	}
}

// TestMetropolisConverges: Metropolis should reach a similar equilibrium
// energy as Gibbs, just possibly more slowly.
func TestMetropolisConverges(t *testing.T) {
	m := twoLabelModel(12, 12)
	init := img.NewLabelMap(12, 12)
	g, err := Run(context.Background(), m, init, NewExactGibbs(), Options{Iterations: 100, RecordEnergyEvery: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	mh, err := Run(context.Background(), m, init, NewMetropolis(), Options{Iterations: 400, RecordEnergyEvery: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	gE := g.EnergyTrace[len(g.EnergyTrace)-1]
	mhE := mh.EnergyTrace[len(mh.EnergyTrace)-1]
	if math.Abs(gE-mhE) > 0.25*(gE+1) {
		t.Fatalf("equilibrium energies differ: gibbs %v vs metropolis %v", gE, mhE)
	}
}

// TestEnergyDecreasesFromRandomInit: starting from a random labeling,
// the energy after the chain should be far below the initial energy.
func TestEnergyDecreasesFromRandomInit(t *testing.T) {
	m := twoLabelModel(16, 16)
	src := rng.New(5)
	init := img.NewLabelMap(16, 16)
	for i := range init.Labels {
		init.Labels[i] = uint8(src.Intn(2))
	}
	before := m.TotalEnergy(init)
	res, err := Run(context.Background(), m, init, NewExactGibbs(), Options{Iterations: 50}, 5)
	if err != nil {
		t.Fatal(err)
	}
	after := m.TotalEnergy(res.Final)
	if after > 0.6*before {
		t.Fatalf("energy did not decrease: %v -> %v", before, after)
	}
}

// TestCheckerboardMatchesRasterStatistically: both schedules target the
// same stationary distribution; their MAP estimates on a well-determined
// problem should agree.
func TestCheckerboardMatchesRasterStatistically(t *testing.T) {
	m := twoLabelModel(10, 10)
	init := img.NewLabelMap(10, 10)
	opt := Options{Iterations: 200, BurnIn: 50, TrackMode: true}
	r1, err := Run(context.Background(), m, init, NewExactGibbs(), opt, 21)
	if err != nil {
		t.Fatal(err)
	}
	opt.Schedule = Checkerboard
	opt.Workers = 3
	r2, err := Run(context.Background(), m, init, NewExactGibbs(), opt, 22)
	if err != nil {
		t.Fatal(err)
	}
	if agree := r1.MAP.Agreement(r2.MAP); agree < 0.95 {
		t.Fatalf("schedule agreement %v", agree)
	}
}

func TestAnnealScheduleApplied(t *testing.T) {
	m := twoLabelModel(6, 6)
	init := img.NewLabelMap(6, 6)
	var temps []float64
	_, err := Run(context.Background(), m, init, NewExactGibbs(), Options{
		Iterations: 5,
		Anneal: func(t int) float64 {
			temp := GeometricAnneal(4, 0.5, 0.1)(t)
			temps = append(temps, temp)
			return temp
		},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{4, 2, 1, 0.5, 0.25}
	for i, w := range want {
		if math.Abs(temps[i]-w) > 1e-9 {
			t.Fatalf("temps %v, want %v", temps, want)
		}
	}
	if m.T != 1 {
		t.Fatalf("model temperature not restored: %v", m.T)
	}
}

func TestAnnealRejectsNonPositive(t *testing.T) {
	m := twoLabelModel(4, 4)
	init := img.NewLabelMap(4, 4)
	_, err := Run(context.Background(), m, init, NewExactGibbs(), Options{
		Iterations: 2,
		Anneal:     func(int) float64 { return 0 },
	}, 1)
	if err == nil {
		t.Fatal("non-positive temperature accepted")
	}
}

func TestGeometricAnnealFloor(t *testing.T) {
	f := GeometricAnneal(1, 0.5, 0.3)
	if f(0) != 1 || f(1) != 0.5 || f(2) != 0.3 || f(10) != 0.3 {
		t.Fatalf("anneal values %v %v %v %v", f(0), f(1), f(2), f(10))
	}
}

func TestEnergyTraceRecording(t *testing.T) {
	m := twoLabelModel(6, 6)
	init := img.NewLabelMap(6, 6)
	res, err := Run(context.Background(), m, init, NewExactGibbs(), Options{Iterations: 10, RecordEnergyEvery: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EnergyTrace) != 4 { // iterations 0,3,6,9
		t.Fatalf("trace length %d, want 4", len(res.EnergyTrace))
	}
}

func TestConverged(t *testing.T) {
	flat := []float64{100, 100.1, 99.9, 100, 100}
	if !Converged(flat, 4, 0.01) {
		t.Error("flat trace not detected as converged")
	}
	falling := []float64{100, 80, 60, 40, 20}
	if Converged(falling, 4, 0.01) {
		t.Error("falling trace detected as converged")
	}
	if Converged(flat, 10, 0.01) {
		t.Error("short trace detected as converged")
	}
	if Converged(flat, 1, 0.01) {
		t.Error("window 1 should not converge")
	}
}

func TestScheduleString(t *testing.T) {
	if Raster.String() != "raster" || Checkerboard.String() != "checkerboard" {
		t.Fatal("schedule names wrong")
	}
	if Schedule(9).String() != "Schedule(9)" {
		t.Fatal("unknown schedule name wrong")
	}
}

func TestSamplerNames(t *testing.T) {
	if NewExactGibbs()().Name() != "exact-gibbs" {
		t.Error("exact name")
	}
	if NewFirstToFire()().Name() != "first-to-fire" {
		t.Error("ftf name")
	}
	if NewMetropolis()().Name() != "metropolis" {
		t.Error("mh name")
	}
}

func BenchmarkExactGibbsSweep32(b *testing.B) {
	m := twoLabelModel(32, 32)
	init := img.NewLabelMap(32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), m, init, NewExactGibbs(), Options{Iterations: 1}, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckerboardParallelSweep64(b *testing.B) {
	m := twoLabelModel(64, 64)
	init := img.NewLabelMap(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := Options{Iterations: 1, Schedule: Checkerboard, Workers: 8}
		if _, err := Run(context.Background(), m, init, NewExactGibbs(), opt, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// TestConfidenceMap: interior sites of a well-determined model should be
// near-certain; confidence is only produced with mode tracking.
func TestConfidenceMap(t *testing.T) {
	m := twoLabelModel(12, 12)
	init := img.NewLabelMap(12, 12)
	res, err := Run(context.Background(), m, init, NewExactGibbs(), Options{
		Iterations: 80, BurnIn: 30, Schedule: Checkerboard, TrackMode: true,
	}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if res.Confidence == nil {
		t.Fatal("confidence map missing")
	}
	// Deep interior of the left half: strongly label 0.
	if c := res.Confidence.At(2, 6); c < 200 {
		t.Fatalf("interior confidence %d, want high", c)
	}
	// The boundary column is genuinely uncertain relative to interiors.
	interior := float64(res.Confidence.At(2, 6))
	boundary := float64(res.Confidence.At(6, 6))
	if boundary > interior {
		t.Fatalf("boundary confidence %v exceeds interior %v", boundary, interior)
	}
	// No tracking, no confidence.
	res2, err := Run(context.Background(), m, init, NewExactGibbs(), Options{Iterations: 5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Confidence != nil {
		t.Fatal("confidence produced without TrackMode")
	}
}
