package gibbs

import (
	"context"
	"fmt"
	"math"

	"repro/internal/img"
	"repro/internal/mrf"
)

// MCMC convergence diagnostics. The paper's workloads run a fixed
// iteration budget (5000 for segmentation, 400 for motion); these tools
// answer the follow-up question a practitioner asks — was that enough?
// — using the standard machinery: autocorrelation-based effective
// sample size on the energy trace, and the Gelman–Rubin potential scale
// reduction factor across independent chains.

// Autocorrelation returns the normalized autocorrelation of xs at the
// given lag (lag 0 returns 1). Returns 0 for degenerate inputs.
func Autocorrelation(xs []float64, lag int) float64 {
	n := len(xs)
	if lag < 0 || lag >= n {
		return 0
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	var c0, cl float64
	for i, x := range xs {
		d := x - mean
		c0 += d * d
		if i+lag < n {
			cl += d * (xs[i+lag] - mean)
		}
	}
	if c0 == 0 {
		return 0
	}
	return cl / c0
}

// IntegratedAutocorrTime estimates the integrated autocorrelation time
// τ = 1 + 2 Σ ρ(k), truncating the sum at the first non-positive
// autocorrelation (Geyer's initial positive sequence, simplified).
// τ >= 1; a chain with τ = t delivers one effectively independent
// sample every t iterations.
func IntegratedAutocorrTime(xs []float64) float64 {
	tau := 1.0
	for lag := 1; lag < len(xs)/2; lag++ {
		rho := Autocorrelation(xs, lag)
		if rho <= 0 {
			break
		}
		tau += 2 * rho
	}
	return tau
}

// EffectiveSampleSize returns len(xs) / τ.
func EffectiveSampleSize(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return float64(len(xs)) / IntegratedAutocorrTime(xs)
}

// GelmanRubin computes the potential scale reduction factor R̂ over
// m >= 2 chains of equal length n >= 2 (split-free, classic form).
// Values near 1 indicate the chains have mixed into the same
// distribution. It returns an error for malformed input. When every
// chain is constant and identical, R̂ is defined as 1.
func GelmanRubin(chains [][]float64) (float64, error) {
	m := len(chains)
	if m < 2 {
		return 0, fmt.Errorf("gibbs: GelmanRubin needs >= 2 chains, got %d", m)
	}
	n := len(chains[0])
	if n < 2 {
		return 0, fmt.Errorf("gibbs: GelmanRubin needs chains of length >= 2")
	}
	for _, c := range chains {
		if len(c) != n {
			return 0, fmt.Errorf("gibbs: GelmanRubin chains must have equal length")
		}
	}
	means := make([]float64, m)
	vars := make([]float64, m)
	grand := 0.0
	for j, c := range chains {
		for _, x := range c {
			means[j] += x
		}
		means[j] /= float64(n)
		for _, x := range c {
			d := x - means[j]
			vars[j] += d * d
		}
		vars[j] /= float64(n - 1)
		grand += means[j]
	}
	grand /= float64(m)
	// Between-chain variance B and within-chain variance W.
	b := 0.0
	for _, mu := range means {
		d := mu - grand
		b += d * d
	}
	b *= float64(n) / float64(m-1)
	w := 0.0
	for _, v := range vars {
		w += v
	}
	w /= float64(m)
	if w == 0 {
		if b == 0 {
			return 1, nil
		}
		return math.Inf(1), nil
	}
	varPlus := float64(n-1)/float64(n)*w + b/float64(n)
	return math.Sqrt(varPlus / w), nil
}

// MultiChainResult couples the per-chain results with the cross-chain
// diagnostic.
type MultiChainResult struct {
	Chains []*Result
	// RHat is the Gelman–Rubin statistic over the post-burn-in energy
	// traces (NaN if energy recording was disabled).
	RHat float64
}

// RunChains runs `chains` independent chains with decorrelated seeds
// and reports the Gelman–Rubin diagnostic over their energy traces.
// Options.RecordEnergyEvery is forced to 1.
func RunChains(ctx context.Context, m *mrf.Model, init *img.LabelMap, factory Factory, opt Options, seed uint64, chains int) (*MultiChainResult, error) {
	if chains < 2 {
		return nil, fmt.Errorf("gibbs: RunChains needs >= 2 chains, got %d", chains)
	}
	opt.RecordEnergyEvery = 1
	out := &MultiChainResult{Chains: make([]*Result, chains)}
	traces := make([][]float64, chains)
	for i := 0; i < chains; i++ {
		res, err := Run(ctx, m, init, factory, opt, seed+uint64(i)*0x9e3779b97f4a7c15)
		if err != nil {
			return nil, err
		}
		out.Chains[i] = res
		if opt.BurnIn < len(res.EnergyTrace) {
			traces[i] = res.EnergyTrace[opt.BurnIn:]
		}
	}
	rhat, err := GelmanRubin(traces)
	if err != nil {
		out.RHat = math.NaN()
	} else {
		out.RHat = rhat
	}
	return out, nil
}
