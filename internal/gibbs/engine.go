package gibbs

import (
	"sync"

	"repro/internal/img"
	"repro/internal/mrf"
	"repro/internal/obs"
	"repro/internal/rng"
)

// engine is the high-throughput sweep machinery behind Run: a persistent
// worker pool plus color-strided site iteration for checkerboard sweeps.
//
// Three properties distinguish it from a naive per-iteration fan-out:
//
//   - Workers are goroutines created once per Run and fed row-span work
//     items over per-worker channels, instead of spawning
//     Colors()×Iterations×Workers goroutines over a chain's lifetime.
//     Each worker owns one Sampler (scratch buffers are per-worker).
//   - RNG streams are attached to *rows*, not workers: row y always
//     draws from rowSrc[y] regardless of which worker sweeps it, so a
//     seeded checkerboard chain produces byte-identical label maps for
//     any worker count (samplers hold only scratch state; the work
//     partition is deterministic either way).
//   - Within a row, the sites of the active color are visited by a
//     strided x += 2 loop derived from mrf.Neighborhood.RowStride
//     instead of testing ColorOf on all W pixels and skipping half.
//
// Writing site (x, y) during color c's pass never races with the reads
// of other sites of color c: every clique neighbor of a site has a
// different color, and only color-c sites are written during the pass.
type engine struct {
	m        *mrf.Model
	lm       *img.LabelMap
	samplers []Sampler
	rowSrc   []*rng.Source // len m.H; rowSrc[y] drives row y

	work []chan span    // one channel per worker; nil until start
	wg   sync.WaitGroup // open spans in the current color pass

	// rec receives color-phase timings; recorded only on the
	// coordinating goroutine (never inside sweepSpan) so workers stay
	// free of instrumentation on the per-site hot path.
	rec obs.Recorder
}

// span is one work item: sweep rows [y0, y1) for the given color.
type span struct {
	color, y0, y1 int
}

// newEngine wires an engine over chain state lm. len(samplers) sets the
// worker count; rowSrc must have one entry per row (entries may repeat
// a single source when len(samplers) == 1, e.g. to drive all rows from
// one sequential stream in tests).
func newEngine(m *mrf.Model, lm *img.LabelMap, samplers []Sampler, rowSrc []*rng.Source) *engine {
	return &engine{m: m, lm: lm, samplers: samplers, rowSrc: rowSrc}
}

// start launches the persistent worker pool. It is a no-op for a single
// worker (sweeps then run on the calling goroutine).
func (e *engine) start() {
	if len(e.samplers) <= 1 {
		return
	}
	e.work = make([]chan span, len(e.samplers))
	for w := range e.work {
		ch := make(chan span, 1)
		e.work[w] = ch
		go func(w int, ch <-chan span) {
			for sp := range ch {
				e.sweepSpan(w, sp)
				e.wg.Done()
			}
		}(w, ch)
	}
}

// stop shuts the worker pool down. Safe to call when start spawned no
// workers; must not be called with a color pass in flight.
func (e *engine) stop() {
	for _, ch := range e.work {
		close(ch)
	}
	e.work = nil
}

// sweep performs one checkerboard iteration: every conditional-
// independence color class in turn, each class swept in parallel by the
// pool (or inline for one worker).
func (e *engine) sweep() {
	colors := e.m.Hood.Colors()
	workers := len(e.samplers)
	if workers <= 1 {
		for color := 0; color < colors; color++ {
			endPhase := obs.Span(e.rec, "gibbs.color_phase")
			e.sweepSpan(0, span{color, 0, e.m.H})
			endPhase()
		}
		return
	}
	rowsPer := (e.m.H + workers - 1) / workers
	for color := 0; color < colors; color++ {
		endPhase := obs.Span(e.rec, "gibbs.color_phase")
		for w := 0; w < workers; w++ {
			y0 := w * rowsPer
			y1 := y0 + rowsPer
			if y1 > e.m.H {
				y1 = e.m.H
			}
			if y0 >= y1 {
				continue
			}
			e.wg.Add(1)
			e.work[w] <- span{color, y0, y1}
		}
		e.wg.Wait()
		endPhase()
	}
}

// sweepSpan updates every site of sp's color in rows [y0, y1) using
// worker w's sampler and the rows' own RNG streams.
func (e *engine) sweepSpan(w int, sp span) {
	m, lm, s := e.m, e.lm, e.samplers[w]
	for y := sp.y0; y < sp.y1; y++ {
		x0, ok := m.Hood.RowStride(sp.color, y)
		if !ok {
			continue
		}
		src := e.rowSrc[y]
		base := y * m.W
		for x := x0; x < m.W; x += 2 {
			lm.Labels[base+x] = s.SampleSite(m, lm, x, y, src)
		}
	}
}
