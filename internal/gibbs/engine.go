package gibbs

import (
	"sync"

	"repro/internal/img"
	"repro/internal/mrf"
	"repro/internal/obs"
	"repro/internal/rng"
)

// engine is the high-throughput sweep machinery behind Run: a persistent
// worker pool plus color-strided site iteration for checkerboard sweeps.
//
// Three properties distinguish it from a naive per-iteration fan-out:
//
//   - Workers are goroutines created once per Run and fed row-span work
//     items over per-worker channels, instead of spawning
//     Colors()×Iterations×Workers goroutines over a chain's lifetime.
//     Each worker owns one Sampler (scratch buffers are per-worker).
//   - RNG streams are attached to *rows*, not workers: row y always
//     draws from rowSrc[y] regardless of which worker sweeps it, so a
//     seeded checkerboard chain produces byte-identical label maps for
//     any worker count (samplers hold only scratch state; the work
//     partition is deterministic either way).
//   - Within a row, the sites of the active color are visited by a
//     strided x += 2 loop derived from mrf.Neighborhood.RowStride
//     instead of testing ColorOf on all W pixels and skipping half.
//
// Writing site (x, y) during color c's pass never races with the reads
// of other sites of color c: every clique neighbor of a site has a
// different color, and only color-c sites are written during the pass.
type engine struct {
	m        *mrf.Model
	lm       *img.LabelMap
	samplers []Sampler
	rowSrc   []*rng.Source // len m.H; rowSrc[y] drives row y

	work []chan span    // one channel per worker; nil until start
	wg   sync.WaitGroup // open spans in the current color pass

	// kernel, when non-nil, is the fused packed-label fast path for
	// exact-Gibbs sweeps over a compiled integer-energy model. Checked
	// per span via Ready() so an annealing step whose LUT has not been
	// retuned falls back to the per-site path instead of serving stale
	// rates. Bit-identical to the per-site path by construction (see
	// mrf.Kernel), so engaging it changes no sampled label.
	kernel *mrf.Kernel

	// tileRows is the height of one work tile: enough rows that the
	// unary-table slice a tile touches stays inside an L2-sized budget,
	// so a worker's color pass streams each table row once instead of
	// thrashing. Tiles are whole-row bands — the tiling never splits a
	// row, so the row↔RNG-stream attachment (and with it worker-count
	// invariance) is untouched, and two workers never write label cache
	// lines of the same row. Tile i always goes to worker i%workers,
	// a partition that depends only on the grid, never on scheduling.
	tileRows int

	// rec receives color-phase timings; recorded only on the
	// coordinating goroutine (never inside sweepSpan) so workers stay
	// free of instrumentation on the per-site hot path.
	rec obs.Recorder
}

// span is one work item: sweep rows [y0, y1) for the given color.
type span struct {
	color, y0, y1 int
}

// newEngine wires an engine over chain state lm. len(samplers) sets the
// worker count; rowSrc must have one entry per row (entries may repeat
// a single source when len(samplers) == 1, e.g. to drive all rows from
// one sequential stream in tests).
func newEngine(m *mrf.Model, lm *img.LabelMap, samplers []Sampler, rowSrc []*rng.Source) *engine {
	e := &engine{m: m, lm: lm, samplers: samplers, rowSrc: rowSrc}
	// The fused kernel implements exactly the ExactGibbs update; any
	// other sampler (first-to-fire, Metropolis, fault-injection
	// wrappers) keeps the per-site dispatch path.
	if _, ok := samplers[0].(*ExactGibbs); ok {
		e.kernel = m.Kernel()
	}
	e.tileRows = tileRowsFor(m)
	return e
}

// tileL2Budget is the per-tile working-set budget. 256 KiB keeps the
// dominant stream — the unary energy table, M entries per site — plus
// three label rows and the doubleton tables resident in a typical
// 0.5–1 MiB L2 slice with room for the other streams.
const tileL2Budget = 256 << 10

// tileRowsFor sizes a row-band tile for the model: the largest row
// count whose unary-table footprint fits the L2 budget, clamped to
// [1, H]. Unary entries are 4 bytes on the packed int32 path and 8 on
// the float64 path; sizing for the wider one keeps a single tiling
// valid for both.
func tileRowsFor(m *mrf.Model) int {
	rowBytes := m.W * m.M * 8
	rows := tileL2Budget / rowBytes
	if rows < 1 {
		return 1
	}
	if rows > m.H {
		return m.H
	}
	return rows
}

// start launches the persistent worker pool. It is a no-op for a single
// worker (sweeps then run on the calling goroutine).
func (e *engine) start() {
	if len(e.samplers) <= 1 {
		return
	}
	e.work = make([]chan span, len(e.samplers))
	// Buffer a full color pass worth of tiles per worker so the
	// coordinator never blocks feeding a busy worker while others idle.
	tiles := (e.m.H + e.tileRows - 1) / e.tileRows
	capPer := (tiles + len(e.samplers) - 1) / len(e.samplers)
	for w := range e.work {
		ch := make(chan span, capPer)
		e.work[w] = ch
		go func(w int, ch <-chan span) {
			for sp := range ch {
				e.sweepSpan(w, sp)
				e.wg.Done()
			}
		}(w, ch)
	}
}

// stop shuts the worker pool down. Safe to call when start spawned no
// workers; must not be called with a color pass in flight.
func (e *engine) stop() {
	for _, ch := range e.work {
		close(ch)
	}
	e.work = nil
}

// sweep performs one checkerboard iteration: every conditional-
// independence color class in turn, each class swept tile by tile in
// parallel by the pool (or inline for one worker).
//
// The color barrier (wg.Wait) is global, never per tile: a tile-local
// color0+color1 pass would read neighbor labels a W=1 chain has not
// produced yet and break worker-count invariance. Within a color the
// tile partition is a pure function of the grid — tile i covers rows
// [i*tileRows, ...) and runs on worker i%workers — so the labels are
// identical for every worker count (RNG streams belong to rows), and
// workers write disjoint whole-row bands.
func (e *engine) sweep() {
	colors := e.m.Hood.Colors()
	workers := len(e.samplers)
	H := e.m.H
	tile := e.tileRows
	for color := 0; color < colors; color++ {
		endPhase := obs.Span(e.rec, "gibbs.color_phase")
		if workers <= 1 {
			for y0 := 0; y0 < H; y0 += tile {
				e.sweepSpan(0, span{color, y0, min(y0+tile, H)})
			}
		} else {
			t := 0
			for y0 := 0; y0 < H; y0 += tile {
				e.wg.Add(1)
				e.work[t%workers] <- span{color, y0, min(y0+tile, H)}
				t++
			}
			e.wg.Wait()
		}
		endPhase()
	}
}

// sweepSpan updates every site of sp's color in rows [y0, y1) using
// worker w's sampler and the rows' own RNG streams.
//
//rsulint:hot
func (e *engine) sweepSpan(w int, sp span) {
	m, lm := e.m, e.lm
	if k := e.kernel; k != nil && k.Ready() {
		sc := mrf.GetScratch(m.M)
		for y := sp.y0; y < sp.y1; y++ {
			if x0, ok := m.Hood.RowStride(sp.color, y); ok {
				k.SweepRow(lm, y, x0, 2, e.rowSrc[y], sc)
			}
		}
		mrf.PutScratch(sc)
		return
	}
	s := e.samplers[w]
	for y := sp.y0; y < sp.y1; y++ {
		x0, ok := m.Hood.RowStride(sp.color, y)
		if !ok {
			continue
		}
		src := e.rowSrc[y]
		base := y * m.W
		for x := x0; x < m.W; x += 2 {
			lm.Labels[base+x] = uint8(s.SampleSite(m, lm, x, y, src))
		}
	}
}
