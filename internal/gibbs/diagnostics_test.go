package gibbs

import (
	"context"
	"math"
	"testing"

	"repro/internal/img"
	"repro/internal/mrf"
	"repro/internal/rng"
)

func TestAutocorrelationBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 4, 3, 2, 1, 2, 3, 4}
	if got := Autocorrelation(xs, 0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("lag-0 autocorrelation %v", got)
	}
	if got := Autocorrelation(xs, len(xs)); got != 0 {
		t.Fatalf("out-of-range lag returned %v", got)
	}
	if got := Autocorrelation([]float64{3, 3, 3}, 1); got != 0 {
		t.Fatalf("constant series autocorrelation %v", got)
	}
}

func TestAutocorrelationIIDNearZero(t *testing.T) {
	src := rng.New(71)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = src.Normal(0, 1)
	}
	for _, lag := range []int{1, 5, 20} {
		if got := Autocorrelation(xs, lag); math.Abs(got) > 0.03 {
			t.Errorf("iid lag-%d autocorrelation %v", lag, got)
		}
	}
}

// TestIntegratedAutocorrTimeAR1: an AR(1) process with coefficient phi
// has τ = (1+phi)/(1-phi).
func TestIntegratedAutocorrTimeAR1(t *testing.T) {
	src := rng.New(72)
	const phi = 0.8
	want := (1 + phi) / (1 - phi) // 9
	xs := make([]float64, 200000)
	x := 0.0
	for i := range xs {
		x = phi*x + src.Normal(0, 1)
		xs[i] = x
	}
	got := IntegratedAutocorrTime(xs)
	if got < want*0.75 || got > want*1.25 {
		t.Fatalf("AR(1) τ = %v, want ~%v", got, want)
	}
	ess := EffectiveSampleSize(xs)
	if wantESS := float64(len(xs)) / got; math.Abs(ess-wantESS) > 1e-9 {
		t.Fatalf("ESS inconsistent with τ")
	}
}

func TestEffectiveSampleSizeEmpty(t *testing.T) {
	if EffectiveSampleSize(nil) != 0 {
		t.Fatal("empty ESS")
	}
}

func TestGelmanRubinValidation(t *testing.T) {
	if _, err := GelmanRubin([][]float64{{1, 2}}); err == nil {
		t.Error("single chain accepted")
	}
	if _, err := GelmanRubin([][]float64{{1}, {2}}); err == nil {
		t.Error("length-1 chains accepted")
	}
	if _, err := GelmanRubin([][]float64{{1, 2}, {1, 2, 3}}); err == nil {
		t.Error("ragged chains accepted")
	}
}

func TestGelmanRubinMixedChains(t *testing.T) {
	src := rng.New(73)
	chains := make([][]float64, 4)
	for i := range chains {
		chains[i] = make([]float64, 2000)
		for j := range chains[i] {
			chains[i][j] = src.Normal(10, 2)
		}
	}
	rhat, err := GelmanRubin(chains)
	if err != nil {
		t.Fatal(err)
	}
	if rhat < 0.99 || rhat > 1.02 {
		t.Fatalf("mixed-chain R̂ = %v, want ~1", rhat)
	}
}

func TestGelmanRubinSeparatedChains(t *testing.T) {
	src := rng.New(74)
	chains := make([][]float64, 3)
	for i := range chains {
		chains[i] = make([]float64, 500)
		for j := range chains[i] {
			chains[i][j] = src.Normal(float64(i)*50, 1) // far-apart means
		}
	}
	rhat, err := GelmanRubin(chains)
	if err != nil {
		t.Fatal(err)
	}
	if rhat < 3 {
		t.Fatalf("separated-chain R̂ = %v, want >> 1", rhat)
	}
}

func TestGelmanRubinConstantChains(t *testing.T) {
	rhat, err := GelmanRubin([][]float64{{5, 5, 5}, {5, 5, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if rhat != 1 {
		t.Fatalf("constant identical chains R̂ = %v", rhat)
	}
	rhat, err = GelmanRubin([][]float64{{5, 5, 5}, {7, 7, 7}})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(rhat, 1) {
		t.Fatalf("constant distinct chains R̂ = %v, want +Inf", rhat)
	}
}

// TestRunChainsConverged: a well-determined two-label model should show
// R̂ ≈ 1 across chains after burn-in.
func TestRunChainsConverged(t *testing.T) {
	m := twoLabelModel(12, 12)
	init := img.NewLabelMap(12, 12)
	res, err := RunChains(context.Background(), m, init, NewExactGibbs(), Options{
		Iterations: 120, BurnIn: 40, Schedule: Checkerboard,
	}, 75, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chains) != 4 {
		t.Fatalf("%d chains", len(res.Chains))
	}
	if math.IsNaN(res.RHat) || res.RHat > 1.2 {
		t.Fatalf("R̂ = %v, want ~1", res.RHat)
	}
}

func TestRunChainsValidation(t *testing.T) {
	m := twoLabelModel(8, 8)
	init := img.NewLabelMap(8, 8)
	if _, err := RunChains(context.Background(), m, init, NewExactGibbs(), Options{Iterations: 5}, 1, 1); err == nil {
		t.Fatal("single chain accepted")
	}
}

// TestSecondOrderCheckerboardChain: the generalized color sweep handles
// second-order (8-neighbor) models and still recovers structure.
func TestSecondOrderCheckerboardChain(t *testing.T) {
	m := twoLabelModel(16, 16)
	m.Hood = mrf.SecondOrder
	m.LambdaDiag = 0.35
	init := img.NewLabelMap(16, 16)
	res, err := Run(context.Background(), m, init, NewExactGibbs(), Options{
		Iterations: 60, BurnIn: 20, Schedule: Checkerboard, Workers: 3, TrackMode: true,
	}, 76)
	if err != nil {
		t.Fatal(err)
	}
	truth := img.NewLabelMap(16, 16)
	for y := 0; y < 16; y++ {
		for x := 8; x < 16; x++ {
			truth.Set(x, y, 1)
		}
	}
	if rate := res.MAP.MislabelRate(truth); rate > 0.05 {
		t.Fatalf("second-order chain mislabel rate %v", rate)
	}
}
