package gibbs

import (
	"fmt"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/img"
	"repro/internal/mrf"
	"repro/internal/rng"
)

// CheckpointPolicy configures durable snapshots of a running chain.
// Snapshots are captured strictly at sweep boundaries (no SampleSite
// call in flight anywhere), so they are byte-deterministic and
// invariant to the worker count.
type CheckpointPolicy struct {
	// EverySweeps checkpoints after every Nth completed sweep (absolute
	// sweep index, so a resumed run checkpoints at the same boundaries
	// as an uninterrupted one). 0 disables sweep-count checkpointing.
	EverySweeps int
	// Every checkpoints when at least this much wall time has passed
	// since the last snapshot, evaluated at sweep boundaries. Requires
	// Now. 0 disables duration checkpointing.
	Every time.Duration
	// Now supplies the wall clock for Every. It is injected rather than
	// read directly so library code stays free of wall-clock reads (the
	// detrand invariant); CLI entry points pass time.Now.
	Now func() time.Time
	// Sink persists one snapshot (typically checkpoint.Save to a fixed
	// path, atomically replacing the previous one). A Sink error aborts
	// the run: a checkpoint the caller asked for but could not keep is
	// a durability hole, not a warning.
	Sink func(*checkpoint.Snapshot) error
	// Extra, if non-nil, is called on each snapshot before Sink to
	// attach backend sections (fault-session state, RET aging state)
	// that the chain layer does not know about.
	Extra func(*checkpoint.Snapshot) error
	// Fingerprint is stamped into every snapshot; resume paths check it
	// against the run configuration.
	Fingerprint checkpoint.Fingerprint
}

// validate checks the policy is usable before the chain starts.
func (p *CheckpointPolicy) validate() error {
	if p.Sink == nil {
		return fmt.Errorf("gibbs: CheckpointPolicy needs a Sink")
	}
	if p.EverySweeps < 0 {
		return fmt.Errorf("gibbs: CheckpointPolicy.EverySweeps %d < 0", p.EverySweeps)
	}
	if p.Every < 0 {
		return fmt.Errorf("gibbs: CheckpointPolicy.Every %v < 0", p.Every)
	}
	if p.Every > 0 && p.Now == nil {
		return fmt.Errorf("gibbs: CheckpointPolicy.Every needs a Now clock")
	}
	return nil
}

// chainState bundles the mutable chain state Run threads through the
// capture/restore helpers.
type chainState struct {
	m      *mrf.Model
	lm     *img.LabelMap
	chain  *rng.Source
	rowSrc []*rng.Source // nil for raster runs
	counts []uint32      // nil unless TrackMode
	energy []float64
}

// capture builds a snapshot of the chain at the boundary before sweep
// `next`. Everything is deep-copied: the caller may keep mutating the
// chain while the snapshot is encoded.
func (cs *chainState) capture(pol *CheckpointPolicy, next int) (*checkpoint.Snapshot, error) {
	snap := &checkpoint.Snapshot{
		Sweep:  next,
		W:      cs.m.W,
		H:      cs.m.H,
		M:      cs.m.M,
		Labels: append([]uint8(nil), cs.lm.Labels...),
		Chain:  cs.chain.State(),
	}
	if pol != nil {
		snap.Fingerprint = pol.Fingerprint
	}
	if cs.rowSrc != nil {
		snap.Rows = make([][4]uint64, len(cs.rowSrc))
		for y, src := range cs.rowSrc {
			snap.Rows[y] = src.State()
		}
	}
	if cs.counts != nil {
		snap.Counts = append([]uint32(nil), cs.counts...)
	}
	if cs.energy != nil {
		snap.Energy = append([]float64(nil), cs.energy...)
	}
	if pol != nil && pol.Extra != nil {
		if err := pol.Extra(snap); err != nil {
			return nil, fmt.Errorf("gibbs: checkpoint extra state: %w", err)
		}
	}
	return snap, nil
}

// restore rewinds the chain state to the snapshot and returns the sweep
// index to resume from. The snapshot must match the model geometry and
// the run schedule; fingerprint checking is the caller's concern (the
// core layer owns the configuration identity).
func (cs *chainState) restore(snap *checkpoint.Snapshot, opt Options) (int, error) {
	if err := snap.Validate(); err != nil {
		return 0, err
	}
	if snap.W != cs.m.W || snap.H != cs.m.H || snap.M != cs.m.M {
		return 0, fmt.Errorf("%w: snapshot is %dx%d M=%d, model is %dx%d M=%d",
			checkpoint.ErrMismatch, snap.W, snap.H, snap.M, cs.m.W, cs.m.H, cs.m.M)
	}
	if snap.Sweep > opt.Iterations {
		return 0, fmt.Errorf("%w: snapshot at sweep %d, run has only %d iterations",
			checkpoint.ErrMismatch, snap.Sweep, opt.Iterations)
	}
	if (cs.rowSrc != nil) != (snap.Rows != nil) {
		return 0, fmt.Errorf("%w: snapshot schedule (row streams: %v) does not match run schedule (%v)",
			checkpoint.ErrMismatch, snap.Rows != nil, opt.Schedule)
	}
	copy(cs.lm.Labels, snap.Labels)
	if err := cs.chain.SetState(snap.Chain); err != nil {
		return 0, err
	}
	for y, src := range cs.rowSrc {
		if err := src.SetState(snap.Rows[y]); err != nil {
			return 0, err
		}
	}
	if cs.counts != nil {
		if snap.Counts == nil {
			if snap.Sweep > opt.BurnIn {
				return 0, fmt.Errorf("%w: mode tracking is on but the snapshot carries no counters past burn-in",
					checkpoint.ErrMismatch)
			}
		} else {
			copy(cs.counts, snap.Counts)
		}
	}
	cs.energy = append(cs.energy[:0], snap.Energy...)
	return snap.Sweep, nil
}
