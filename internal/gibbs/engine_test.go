package gibbs

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/img"
	"repro/internal/mrf"
	"repro/internal/rng"
)

// engineModel builds an M-label segmentation-like model with a
// non-trivial data term, optionally second-order.
func engineModel(w, h, m int, hood mrf.Neighborhood) *mrf.Model {
	means := make([]int, m)
	for l := range means {
		means[l] = l * 63 / (m - 1)
	}
	return &mrf.Model{
		W: w, H: h, M: m,
		T:       9,
		LambdaS: 1, LambdaD: 2,
		Hood: hood, LambdaDiag: 1,
		Singleton: func(x, y, label int) float64 {
			obs := (x*7 + y*13) % 64
			d := float64(obs - means[label])
			return d * d
		},
		Doubleton: mrf.SquaredDiff,
	}
}

func mustRun(t *testing.T, m *mrf.Model, factory Factory, opt Options, seed uint64) *Result {
	t.Helper()
	init := img.NewLabelMap(m.W, m.H)
	res, err := Run(context.Background(), m, init, factory, opt, seed)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func sameLabels(a, b *img.LabelMap) bool {
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			return false
		}
	}
	return true
}

// TestCompiledPathByteIdentical: the compiled table path must reproduce
// the closure path's label maps byte for byte — for every software
// sampler kernel, both neighborhood orders and both schedules. (The RSU
// backend's leg of this equivalence lives in internal/core, which can
// import the application layer.)
func TestCompiledPathByteIdentical(t *testing.T) {
	factories := map[string]Factory{
		"exact-gibbs":   NewExactGibbs(),
		"first-to-fire": NewFirstToFire(),
		"metropolis":    NewMetropolis(),
	}
	for _, hood := range []mrf.Neighborhood{mrf.FirstOrder, mrf.SecondOrder} {
		for _, sched := range []Schedule{Raster, Checkerboard} {
			for name, factory := range factories {
				t.Run(fmt.Sprintf("%v/%v/%s", hood, sched, name), func(t *testing.T) {
					opt := Options{Iterations: 12, BurnIn: 4, Schedule: sched, Workers: 3, TrackMode: true, RecordEnergyEvery: 1}
					slow := engineModel(19, 17, 4, hood)
					fast := engineModel(19, 17, 4, hood)
					if err := fast.Compile(); err != nil {
						t.Fatal(err)
					}
					a := mustRun(t, slow, factory, opt, 99)
					b := mustRun(t, fast, factory, opt, 99)
					if !sameLabels(a.Final, b.Final) {
						t.Fatal("compiled path diverged from closure path (final labels)")
					}
					if !sameLabels(a.MAP, b.MAP) {
						t.Fatal("compiled path diverged from closure path (MAP)")
					}
					for i := range a.EnergyTrace {
						if a.EnergyTrace[i] != b.EnergyTrace[i] {
							t.Fatalf("energy trace diverged at %d: %v vs %v", i, a.EnergyTrace[i], b.EnergyTrace[i])
						}
					}
				})
			}
		}
	}
}

// TestWorkerCountInvariance: with row-attached RNG streams, a seeded
// checkerboard chain must produce identical label maps for W=1 and
// W=NumCPU (and an awkward in-between count), compiled or not.
func TestWorkerCountInvariance(t *testing.T) {
	for _, compiled := range []bool{false, true} {
		for _, hood := range []mrf.Neighborhood{mrf.FirstOrder, mrf.SecondOrder} {
			t.Run(fmt.Sprintf("compiled=%v/%v", compiled, hood), func(t *testing.T) {
				m := engineModel(33, 29, 5, hood)
				if compiled {
					if err := m.Compile(); err != nil {
						t.Fatal(err)
					}
				}
				opt := Options{Iterations: 15, BurnIn: 5, Schedule: Checkerboard, TrackMode: true}
				opt.Workers = 1
				serial := mustRun(t, m, NewExactGibbs(), opt, 4242)
				for _, w := range []int{3, runtime.NumCPU(), 64} {
					opt.Workers = w
					par := mustRun(t, m, NewExactGibbs(), opt, 4242)
					if !sameLabels(serial.Final, par.Final) {
						t.Fatalf("Workers=%d final labels differ from serial", w)
					}
					if !sameLabels(serial.MAP, par.MAP) {
						t.Fatalf("Workers=%d MAP differs from serial", w)
					}
				}
			})
		}
	}
}

// TestEngineStridedCoverage: one engine sweep must update exactly the
// sites the schedule owns — the strided loop may not miss or duplicate
// a site of either color class.
func TestEngineStridedCoverage(t *testing.T) {
	for _, hood := range []mrf.Neighborhood{mrf.FirstOrder, mrf.SecondOrder} {
		m := engineModel(11, 7, 3, hood)
		visited := img.NewLabelMap(m.W, m.H)
		counter := &countingSampler{hits: visited}
		eng := newEngine(m, img.NewLabelMap(m.W, m.H), []Sampler{counter}, rowRepeat(m.H))
		eng.sweep()
		for y := 0; y < m.H; y++ {
			for x := 0; x < m.W; x++ {
				if got := visited.At(x, y); got != 1 {
					t.Fatalf("%v: site (%d,%d) visited %d times", hood, x, y, got)
				}
			}
		}
	}
}

// TestRowStrideMatchesColorOf: the strided iteration must enumerate
// exactly the ColorOf classes.
func TestRowStrideMatchesColorOf(t *testing.T) {
	for _, hood := range []mrf.Neighborhood{mrf.FirstOrder, mrf.SecondOrder} {
		for color := 0; color < hood.Colors(); color++ {
			for y := 0; y < 6; y++ {
				inRow := map[int]bool{}
				if x0, ok := hood.RowStride(color, y); ok {
					for x := x0; x < 9; x += 2 {
						inRow[x] = true
					}
				}
				for x := 0; x < 9; x++ {
					want := hood.ColorOf(x, y) == color
					if inRow[x] != want {
						t.Fatalf("%v color %d row %d x %d: strided=%v colorOf=%v",
							hood, color, y, x, inRow[x], want)
					}
				}
			}
		}
	}
}

// countingSampler records site visits instead of sampling.
type countingSampler struct{ hits *img.LabelMap }

func (c *countingSampler) Name() string { return "counting" }

func (c *countingSampler) SampleSite(m *mrf.Model, lm *img.LabelMap, x, y int, src *rng.Source) int {
	c.hits.Labels[y*m.W+x]++
	return lm.At(x, y)
}

func rowRepeat(h int) []*rng.Source {
	srcs := make([]*rng.Source, h)
	for i := range srcs {
		srcs[i] = rng.New(uint64(i))
	}
	return srcs
}
