package gibbs

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/img"
	"repro/internal/mrf"
	"repro/internal/rng"
)

// benchSweepModel is a segmentation-shaped workload (squared-difference
// data term against per-label means over a synthetic observation) — the
// paper's canonical inner loop — at an arbitrary label count.
func benchSweepModel(w, h, m int) *mrf.Model {
	obs := make([]int, w*h)
	for i := range obs {
		obs[i] = (i*37 + i/w*11) % 64
	}
	means := make([]int, m)
	for l := range means {
		means[l] = l * 63 / (m - 1)
	}
	return &mrf.Model{
		W: w, H: h, M: m,
		T:       12,
		LambdaS: 1, LambdaD: 2,
		Singleton: func(x, y, label int) float64 {
			d := float64(obs[y*w+x] - means[label])
			return d * d
		},
		Doubleton: mrf.SquaredDiff,
	}
}

// BenchmarkSweep measures full-sweep throughput of the engine across
// schedules, label counts and the closure/compiled paths. Metrics:
// ns/site and sites/sec (checkerboard runs use all CPUs).
func BenchmarkSweep(b *testing.B) {
	const w, h = 128, 128
	for _, sched := range []Schedule{Raster, Checkerboard} {
		for _, m := range []int{2, 16, 64} {
			for _, compiled := range []bool{false, true} {
				path := "closure"
				if compiled {
					path = "compiled"
				}
				name := fmt.Sprintf("%s/M=%d/%s", schedName(sched), m, path)
				b.Run(name, func(b *testing.B) {
					b.ReportAllocs()
					model := benchSweepModel(w, h, m)
					if compiled {
						if err := model.Compile(); err != nil {
							b.Fatal(err)
						}
					}
					opt := Options{Iterations: 1, Schedule: sched}
					if sched == Checkerboard {
						opt.Workers = runtime.GOMAXPROCS(0)
					}
					init := img.NewLabelMap(w, h)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := Run(context.Background(), model, init, NewExactGibbs(), opt, uint64(i)); err != nil {
							b.Fatal(err)
						}
					}
					b.StopTimer()
					sites := float64(w*h) * float64(b.N)
					secs := b.Elapsed().Seconds()
					if secs > 0 {
						b.ReportMetric(secs*1e9/sites, "ns/site")
						b.ReportMetric(sites/secs, "sites/sec")
					}
				})
			}
		}
	}
}

// BenchmarkSweepSteadyState builds the chain once and measures repeated
// checkerboard sweeps, isolating the per-sweep cost from run setup.
// With -benchmem this is the kernel's zero-allocation proof: the
// compiled sub-benchmarks report 0 allocs/op at any worker count
// (kernel scratch is pooled, the worker channels are sized for a full
// color pass up front).
func BenchmarkSweepSteadyState(b *testing.B) {
	const w, h, m = 256, 256, 16
	for _, compiled := range []bool{false, true} {
		path := "closure"
		if compiled {
			path = "compiled"
		}
		counts := []int{1}
		if n := runtime.GOMAXPROCS(0); n > 1 {
			counts = append(counts, n)
		}
		for _, workers := range counts {
			b.Run(fmt.Sprintf("%s/W=%d", path, workers), func(b *testing.B) {
				b.ReportAllocs()
				model := benchSweepModel(w, h, m)
				if compiled {
					if err := model.Compile(); err != nil {
						b.Fatal(err)
					}
				}
				lm := img.NewLabelMap(w, h)
				root := rng.New(7)
				samplers := make([]Sampler, workers)
				for i := range samplers {
					samplers[i] = NewExactGibbs()()
				}
				rowSrc := make([]*rng.Source, h)
				for y := range rowSrc {
					rowSrc[y] = root.Split()
				}
				eng := newEngine(model, lm, samplers, rowSrc)
				eng.start()
				defer eng.stop()
				eng.sweep() // warm sampler scratch and the kernel pool
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					eng.sweep()
				}
				b.StopTimer()
				sites := float64(w*h) * float64(b.N)
				if secs := b.Elapsed().Seconds(); secs > 0 {
					b.ReportMetric(secs*1e9/sites, "ns/site")
				}
			})
		}
	}
}

func schedName(s Schedule) string {
	if s == Raster {
		return "raster"
	}
	return "checker"
}
