package gibbs

import (
	"math"
	"testing"

	"repro/internal/img"
	"repro/internal/mrf"
	"repro/internal/rng"
)

// tinyModel builds a 2x2, 2-label MRF small enough to enumerate all 16
// joint states exactly.
func tinyModel() *mrf.Model {
	return &mrf.Model{
		W: 2, H: 2, M: 2,
		T:       1.5,
		LambdaS: 1, LambdaD: 0.8,
		Singleton: func(x, y, label int) float64 {
			// Asymmetric data term so the stationary distribution is
			// non-trivial.
			if (x+2*y)%3 == 0 {
				return float64(label) * 1.3
			}
			return float64(1-label) * 0.9
		},
		Doubleton: mrf.SquaredDiff,
	}
}

// exactBoltzmann enumerates p(state) ∝ exp(-TotalEnergy/T) over all
// M^(W*H) labelings.
func exactBoltzmann(m *mrf.Model) []float64 {
	n := m.W * m.H
	states := 1
	for i := 0; i < n; i++ {
		states *= m.M
	}
	lm := img.NewLabelMap(m.W, m.H)
	probs := make([]float64, states)
	z := 0.0
	for s := 0; s < states; s++ {
		v := s
		for i := 0; i < n; i++ {
			lm.Labels[i] = uint8(v % m.M)
			v /= m.M
		}
		p := math.Exp(-m.TotalEnergy(lm) / m.T)
		probs[s] = p
		z += p
	}
	for s := range probs {
		probs[s] /= z
	}
	return probs
}

func encodeState(lm *img.LabelMap, m int) int {
	s, mul := 0, 1
	for _, l := range lm.Labels {
		s += int(l) * mul
		mul *= m
	}
	return s
}

// stationarityCheck runs one long chain and compares the empirical
// joint state distribution against the exact Boltzmann distribution.
// This is the strongest correctness property of the MCMC machinery:
// the kernel, the sweep schedule and the model bookkeeping must all be
// right for the *joint* (not just the marginals) to come out exact.
func stationarityCheck(t *testing.T, factory Factory, schedule Schedule, iters int, tol float64) {
	t.Helper()
	m := tinyModel()
	want := exactBoltzmann(m)
	lm := img.NewLabelMap(2, 2)
	sampler := factory()
	src := rng.New(12345)
	counts := make([]int, len(want))
	// Single-worker engine with every row on one sequential stream.
	eng := newEngine(m, lm, []Sampler{sampler}, []*rng.Source{src, src})
	const burn = 200
	for it := 0; it < iters; it++ {
		switch schedule {
		case Raster:
			sweepRaster(m, lm, sampler, src)
		default:
			eng.sweep()
		}
		if it >= burn {
			counts[encodeState(lm, m.M)]++
		}
	}
	total := iters - burn
	for s, wantP := range want {
		got := float64(counts[s]) / float64(total)
		if math.Abs(got-wantP) > tol {
			t.Errorf("%s/%v state %04b: empirical %.4f, exact %.4f",
				sampler.Name(), schedule, s, got, wantP)
		}
	}
}

func TestExactGibbsRasterStationarity(t *testing.T) {
	stationarityCheck(t, NewExactGibbs(), Raster, 120000, 0.01)
}

func TestExactGibbsCheckerboardStationarity(t *testing.T) {
	stationarityCheck(t, NewExactGibbs(), Checkerboard, 120000, 0.01)
}

func TestFirstToFireStationarity(t *testing.T) {
	stationarityCheck(t, NewFirstToFire(), Checkerboard, 120000, 0.01)
}

func TestMetropolisStationarity(t *testing.T) {
	// Metropolis mixes more slowly; allow more iterations.
	stationarityCheck(t, NewMetropolis(), Raster, 250000, 0.012)
}

// TestSecondOrderStationarity: the 4-color sweep over an 8-neighbor
// model must also leave the Boltzmann distribution invariant.
func TestSecondOrderStationarity(t *testing.T) {
	m := tinyModel()
	m.Hood = mrf.SecondOrder
	m.LambdaDiag = 0.3
	want := exactBoltzmann(m)
	lm := img.NewLabelMap(2, 2)
	sampler := NewExactGibbs()()
	src := rng.New(777)
	counts := make([]int, len(want))
	eng := newEngine(m, lm, []Sampler{sampler}, []*rng.Source{src, src})
	const iters, burn = 150000, 200
	for it := 0; it < iters; it++ {
		eng.sweep()
		if it >= burn {
			counts[encodeState(lm, m.M)]++
		}
	}
	total := iters - burn
	for s, wantP := range want {
		got := float64(counts[s]) / float64(total)
		if math.Abs(got-wantP) > 0.01 {
			t.Errorf("second-order state %04b: empirical %.4f, exact %.4f", s, got, wantP)
		}
	}
}
