package gibbs

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/img"
	"repro/internal/mrf"
)

// captureAt runs the chain with a checkpoint policy and returns the
// snapshot taken at the boundary before sweep `at` (captured every
// sweep so any boundary is observable).
func captureAt(t *testing.T, m *mrf.Model, init *img.LabelMap, factory Factory, opt Options, seed uint64, at int) *checkpoint.Snapshot {
	t.Helper()
	var snap *checkpoint.Snapshot
	opt.Checkpoint = &CheckpointPolicy{
		EverySweeps: 1,
		Sink: func(s *checkpoint.Snapshot) error {
			if s.Sweep == at {
				snap = s
			}
			return nil
		},
	}
	if _, err := Run(context.Background(), m, init, factory, opt, seed); err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatalf("no checkpoint observed at sweep %d", at)
	}
	return snap
}

// sameResult asserts two results are bit-identical in every
// user-visible field.
func sameResult(t *testing.T, name string, want, got *Result) {
	t.Helper()
	if got.Iterations != want.Iterations {
		t.Fatalf("%s: iterations %d != %d", name, got.Iterations, want.Iterations)
	}
	for i := range want.Final.Labels {
		if got.Final.Labels[i] != want.Final.Labels[i] {
			t.Fatalf("%s: final label diverged at site %d", name, i)
		}
	}
	if (want.MAP == nil) != (got.MAP == nil) {
		t.Fatalf("%s: MAP presence differs", name)
	}
	if want.MAP != nil {
		for i := range want.MAP.Labels {
			if got.MAP.Labels[i] != want.MAP.Labels[i] {
				t.Fatalf("%s: MAP diverged at site %d", name, i)
			}
			if got.Confidence.Pix[i] != want.Confidence.Pix[i] {
				t.Fatalf("%s: confidence diverged at site %d", name, i)
			}
		}
	}
	if len(got.EnergyTrace) != len(want.EnergyTrace) {
		t.Fatalf("%s: energy trace length %d != %d", name, len(got.EnergyTrace), len(want.EnergyTrace))
	}
	for i := range want.EnergyTrace {
		if math.Float64bits(got.EnergyTrace[i]) != math.Float64bits(want.EnergyTrace[i]) {
			t.Fatalf("%s: energy trace diverged at entry %d", name, i)
		}
	}
}

// TestResumeMatchesUninterrupted: resuming from a mid-run snapshot
// reproduces the uninterrupted run bit-exactly — final labels, marginal
// MAP, confidence, and energy trace — for every sampler kernel and both
// schedules.
func TestResumeMatchesUninterrupted(t *testing.T) {
	cases := []struct {
		name    string
		factory Factory
		sched   Schedule
		workers int
	}{
		{"exact-raster", NewExactGibbs(), Raster, 1},
		{"exact-checkerboard", NewExactGibbs(), Checkerboard, 3},
		{"first-to-fire", NewFirstToFire(), Checkerboard, 2},
		{"metropolis", NewMetropolis(), Raster, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := twoLabelModel(8, 6)
			init := img.NewLabelMap(8, 6)
			opt := Options{
				Iterations: 12, BurnIn: 4,
				Schedule: tc.sched, Workers: tc.workers,
				TrackMode: true, RecordEnergyEvery: 1,
			}
			golden, err := Run(context.Background(), m, init, tc.factory, opt, 42)
			if err != nil {
				t.Fatal(err)
			}
			snap := captureAt(t, twoLabelModel(8, 6), init, tc.factory, opt, 42, 7)
			opt.Resume = snap
			resumed, err := Run(context.Background(), twoLabelModel(8, 6), init, tc.factory, opt, 42)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, tc.name, golden, resumed)
		})
	}
}

// TestResumeWorkerCountInvariant: RNG streams attach to rows, so a
// snapshot taken at one worker count resumes bit-exactly at any other.
func TestResumeWorkerCountInvariant(t *testing.T) {
	init := img.NewLabelMap(8, 8)
	opt := Options{Iterations: 10, BurnIn: 2, Schedule: Checkerboard, TrackMode: true, RecordEnergyEvery: 2}

	opt.Workers = 4
	golden, err := Run(context.Background(), twoLabelModel(8, 8), init, NewExactGibbs(), opt, 9)
	if err != nil {
		t.Fatal(err)
	}

	for _, cross := range []struct {
		name           string
		snapW, resumeW int
	}{
		{"snap@1-resume@4", 1, 4},
		{"snap@4-resume@1", 4, 1},
	} {
		opt.Workers = cross.snapW
		opt.Resume = nil
		snap := captureAt(t, twoLabelModel(8, 8), init, NewExactGibbs(), opt, 9, 5)
		opt.Workers = cross.resumeW
		opt.Resume = snap
		resumed, err := Run(context.Background(), twoLabelModel(8, 8), init, NewExactGibbs(), opt, 9)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, cross.name, golden, resumed)
	}
}

// TestCancelReturnsPartialResultAndFinalCheckpoint: cancellation stops
// the chain at the next sweep boundary, writes a final snapshot, and
// returns the partial result alongside an error wrapping ctx.Err().
func TestCancelReturnsPartialResultAndFinalCheckpoint(t *testing.T) {
	m := twoLabelModel(8, 6)
	init := img.NewLabelMap(8, 6)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var snaps []*checkpoint.Snapshot
	opt := Options{
		Iterations: 100, Schedule: Checkerboard, Workers: 2,
		TrackMode: true,
		Checkpoint: &CheckpointPolicy{
			EverySweeps: 2,
			Sink: func(s *checkpoint.Snapshot) error {
				snaps = append(snaps, s)
				if len(snaps) == 1 {
					cancel() // trip the context after the first durable snapshot
				}
				return nil
			},
		},
	}
	res, err := RunCtx(ctx, m, init, NewExactGibbs(), opt, 3)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res == nil || res.Final == nil {
		t.Fatal("cancelled run returned no partial result")
	}
	if res.Iterations != 2 {
		t.Fatalf("partial result reports %d sweeps, want 2", res.Iterations)
	}
	if res.MAP == nil {
		t.Fatal("partial result dropped the MAP estimate")
	}
	if len(snaps) != 2 {
		t.Fatalf("want periodic + final snapshot, got %d snapshots", len(snaps))
	}
	final := snaps[len(snaps)-1]
	if final.Sweep != 2 {
		t.Fatalf("final snapshot at sweep %d, want 2", final.Sweep)
	}
	// The final snapshot is a live resume point: finishing from it must
	// match the uninterrupted run.
	golden, err := Run(context.Background(), twoLabelModel(8, 6), init, NewExactGibbs(), Options{
		Iterations: 100, Schedule: Checkerboard, Workers: 2, TrackMode: true,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Run(context.Background(), twoLabelModel(8, 6), init, NewExactGibbs(), Options{
		Iterations: 100, Schedule: Checkerboard, Workers: 2, TrackMode: true,
		Resume: final,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "resume-after-cancel", golden, resumed)
}

// TestCancelAlreadyCancelled: a context dead on arrival yields zero
// completed sweeps, a partial (initial-state) result, and no snapshots
// unless a policy is armed — in which case the sweep-0 state is saved.
func TestCancelAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var snaps int
	opt := Options{
		Iterations: 10,
		Checkpoint: &CheckpointPolicy{
			EverySweeps: 1,
			Sink:        func(*checkpoint.Snapshot) error { snaps++; return nil },
		},
	}
	res, err := RunCtx(ctx, twoLabelModel(4, 4), img.NewLabelMap(4, 4), NewExactGibbs(), opt, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res.Iterations != 0 {
		t.Fatalf("dead-on-arrival run reports %d sweeps", res.Iterations)
	}
	if snaps != 1 {
		t.Fatalf("want exactly the final snapshot, got %d", snaps)
	}
}

// TestDeadlineExceeded: deadline expiry behaves like cancellation and is
// distinguishable via errors.Is.
func TestDeadlineExceeded(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel()
	res, err := RunCtx(ctx, twoLabelModel(4, 4), img.NewLabelMap(4, 4), NewExactGibbs(),
		Options{Iterations: 10}, 1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	if res == nil {
		t.Fatal("no partial result on deadline")
	}
}

// TestCancelLeaksNoGoroutinesAndPoolRestarts: the worker pool shuts
// down on the cancellation return path (deferred stop), and a fresh run
// on the same model works afterwards.
func TestCancelLeaksNoGoroutinesAndPoolRestarts(t *testing.T) {
	m := twoLabelModel(16, 16)
	init := img.NewLabelMap(16, 16)
	before := runtime.NumGoroutine()

	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := RunCtx(ctx, m, init, NewExactGibbs(),
			Options{Iterations: 50, Schedule: Checkerboard, Workers: 8}, uint64(i)); !errors.Is(err, context.Canceled) {
			t.Fatalf("run %d: want context.Canceled, got %v", i, err)
		}
	}

	// Worker exit is asynchronous after the channels close; give the
	// scheduler a bounded settle window before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}

	// The pool machinery is per-run; a full run after cancelled runs
	// must still work.
	if _, err := Run(context.Background(), m, init, NewExactGibbs(),
		Options{Iterations: 5, Schedule: Checkerboard, Workers: 8}, 1); err != nil {
		t.Fatalf("run after cancelled runs failed: %v", err)
	}
}

// TestResumeRejectsMismatchedSnapshots: every structural mismatch is a
// typed checkpoint.ErrMismatch, never a silent divergence.
func TestResumeRejectsMismatchedSnapshots(t *testing.T) {
	init := img.NewLabelMap(8, 6)
	base := Options{Iterations: 12, BurnIn: 4, Schedule: Checkerboard, Workers: 2, TrackMode: true}
	snap := captureAt(t, twoLabelModel(8, 6), init, NewExactGibbs(), base, 42, 7)

	cases := []struct {
		name string
		m    *mrf.Model
		init *img.LabelMap
		opt  Options
		snap *checkpoint.Snapshot
	}{
		{"geometry", twoLabelModel(6, 6), img.NewLabelMap(6, 6), base, snap},
		{"schedule", twoLabelModel(8, 6), init,
			Options{Iterations: 12, BurnIn: 4, Schedule: Raster, TrackMode: true}, snap},
		{"sweep past end", twoLabelModel(8, 6), init,
			Options{Iterations: 5, BurnIn: 1, Schedule: Checkerboard, TrackMode: true}, snap},
		{"counters missing past burn-in", twoLabelModel(8, 6), init, base,
			func() *checkpoint.Snapshot { c := snap.Clone(); c.Counts = nil; return c }()},
	}
	for _, tc := range cases {
		opt := tc.opt
		opt.Resume = tc.snap
		if _, err := Run(context.Background(), tc.m, tc.init, NewExactGibbs(), opt, 42); !errors.Is(err, checkpoint.ErrMismatch) {
			t.Errorf("%s: got %v, want checkpoint.ErrMismatch", tc.name, err)
		}
	}
}

// TestCheckpointPolicyValidate: unusable policies are rejected before
// the chain starts.
func TestCheckpointPolicyValidate(t *testing.T) {
	m := twoLabelModel(4, 4)
	init := img.NewLabelMap(4, 4)
	sink := func(*checkpoint.Snapshot) error { return nil }
	cases := []struct {
		name string
		pol  *CheckpointPolicy
	}{
		{"no sink", &CheckpointPolicy{EverySweeps: 1}},
		{"negative sweeps", &CheckpointPolicy{EverySweeps: -1, Sink: sink}},
		{"negative duration", &CheckpointPolicy{Every: -time.Second, Sink: sink}},
		{"duration without clock", &CheckpointPolicy{Every: time.Second, Sink: sink}},
	}
	for _, tc := range cases {
		if _, err := Run(context.Background(), m, init, NewExactGibbs(), Options{Iterations: 2, Checkpoint: tc.pol}, 1); err == nil {
			t.Errorf("%s: invalid policy accepted", tc.name)
		}
	}
}

// TestSinkErrorAbortsRun: a checkpoint the caller asked for but could
// not keep is a durability hole — the run stops with the sink's error.
func TestSinkErrorAbortsRun(t *testing.T) {
	sinkErr := errors.New("disk full")
	opt := Options{
		Iterations: 10,
		Checkpoint: &CheckpointPolicy{
			EverySweeps: 2,
			Sink:        func(*checkpoint.Snapshot) error { return sinkErr },
		},
	}
	if _, err := Run(context.Background(), twoLabelModel(4, 4), img.NewLabelMap(4, 4), NewExactGibbs(), opt, 1); !errors.Is(err, sinkErr) {
		t.Fatalf("got %v, want the sink error", err)
	}
}

// TestDurationPolicyUsesInjectedClock: the wall-time trigger fires off
// the injected Now, so it is testable without real sleeps (and library
// code never reads the wall clock itself).
func TestDurationPolicyUsesInjectedClock(t *testing.T) {
	fake := time.Unix(1000, 0)
	var snaps []int
	opt := Options{
		Iterations: 8,
		Checkpoint: &CheckpointPolicy{
			Every: 10 * time.Second,
			Now: func() time.Time {
				fake = fake.Add(3 * time.Second) // each sweep "takes" 3s
				return fake
			},
			Sink: func(s *checkpoint.Snapshot) error { snaps = append(snaps, s.Sweep); return nil },
		},
	}
	if _, err := Run(context.Background(), twoLabelModel(4, 4), img.NewLabelMap(4, 4), NewExactGibbs(), opt, 1); err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("duration policy never fired")
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i] <= snaps[i-1] {
			t.Fatalf("non-monotone checkpoint sweeps: %v", snaps)
		}
	}
}
