// Package gibbs implements the software MCMC substrate of the paper
// (§4.2): Gibbs sampling over first-order MRFs, with raster and
// checkerboard-parallel sweep schedules, annealing, burn-in, and
// per-site mode tracking for marginal MAP estimates.
//
// Each MCMC iteration updates every random variable once. In a
// first-order MRF all sites of one checkerboard color are conditionally
// independent given the other color, exposing the parallelism both the
// GPU baselines and the RSU architectures exploit.
package gibbs

import (
	"context"
	"fmt"
	"math"

	"repro/internal/checkpoint"
	"repro/internal/img"
	"repro/internal/mrf"
	"repro/internal/obs"
	"repro/internal/rng"
)

// Sampler draws a new label for one site from (an approximation of) its
// full conditional distribution. Implementations may keep scratch state
// and are NOT safe for concurrent use; create one per worker via a
// Factory.
type Sampler interface {
	// SampleSite returns a new label in [0, m.M) for site (x, y).
	SampleSite(m *mrf.Model, lm *img.LabelMap, x, y int, src *rng.Source) int
	// Name identifies the sampler in reports.
	Name() string
}

// Factory creates an independent Sampler instance for each worker.
type Factory func() Sampler

// SweepAware is an optional Sampler extension: Run calls BeginSweep on
// every worker's sampler at the top of each iteration, strictly between
// sweeps (no SampleSite call in flight anywhere). Samplers that carry
// per-sweep state — e.g. the fault-injection session, which rebuilds
// the active fault set each sweep — implement it; shared state behind
// several workers' samplers must deduplicate by the iteration index
// (every worker's sampler receives the call).
type SweepAware interface {
	BeginSweep(iteration int)
}

// ExactGibbs samples directly from the normalized full conditional
// p(l) ∝ exp(-E(l)/T) — the textbook Gibbs update the software baselines
// implement (§8.1).
type ExactGibbs struct {
	buf []float64
}

// NewExactGibbs returns a Factory of exact Gibbs samplers.
func NewExactGibbs() Factory { return func() Sampler { return &ExactGibbs{} } }

// Name implements Sampler.
func (g *ExactGibbs) Name() string { return "exact-gibbs" }

// SampleSite implements Sampler. Categorical normalizes internally, so
// the unnormalized Boltzmann rates suffice — one fewer O(M) pass per
// site than drawing from ConditionalProbs. The branch-free draw
// returns the same index as CategoricalRates from the same generator
// state, so this path and the fused kernel (mrf.Kernel) stay
// byte-identical.
func (g *ExactGibbs) SampleSite(m *mrf.Model, lm *img.LabelMap, x, y int, src *rng.Source) int {
	g.buf = m.ConditionalRates(g.buf, lm, x, y)
	return src.CategoricalRatesBranchfree(g.buf)
}

// FirstToFireGibbs performs the Gibbs update by racing M ideal
// (unquantized) exponential clocks with rates λ_l = exp(-E(l)/T) — the
// mathematical principle of the RSU-G (§4.3) without any hardware
// quantization. It is distributionally identical to ExactGibbs; tests
// verify the equivalence.
type FirstToFireGibbs struct {
	buf []float64
}

// NewFirstToFire returns a Factory of ideal first-to-fire samplers.
func NewFirstToFire() Factory { return func() Sampler { return &FirstToFireGibbs{} } }

// Name implements Sampler.
func (g *FirstToFireGibbs) Name() string { return "first-to-fire" }

// SampleSite implements Sampler. The winner of an exponential-clock
// race is invariant under a common scaling of the rates, so the
// unnormalized Boltzmann rates parameterize the race directly — the
// divide-by-sum pass of ConditionalProbs is pure overhead here, exactly
// as it would be for an RSU intensity mapping.
func (g *FirstToFireGibbs) SampleSite(m *mrf.Model, lm *img.LabelMap, x, y int, src *rng.Source) int {
	g.buf = m.ConditionalRates(g.buf, lm, x, y)
	winner, _ := src.FirstToFire(g.buf)
	return winner
}

// Metropolis implements a Metropolis-Hastings update with a uniform
// label proposal — the other common MCMC kernel the paper mentions
// (§4.2). Included as a baseline for convergence comparisons.
type Metropolis struct{}

// NewMetropolis returns a Factory of Metropolis samplers.
func NewMetropolis() Factory { return func() Sampler { return &Metropolis{} } }

// Name implements Sampler.
func (Metropolis) Name() string { return "metropolis" }

// SampleSite implements Sampler.
func (Metropolis) SampleSite(m *mrf.Model, lm *img.LabelMap, x, y int, src *rng.Source) int {
	cur := lm.At(x, y)
	prop := src.Intn(m.M)
	if prop == cur {
		return cur
	}
	eCur := m.SiteEnergy(lm, x, y, cur)
	eProp := m.SiteEnergy(lm, x, y, prop)
	if eProp <= eCur {
		return prop
	}
	if src.Bernoulli(math.Exp(-(eProp - eCur) / m.T)) {
		return prop
	}
	return cur
}

// Schedule selects the order sites are visited within one iteration.
type Schedule int

const (
	// Raster visits sites row-major, one at a time (sequential chain).
	Raster Schedule = iota
	// Checkerboard updates all color-0 sites, then all color-1 sites.
	// Sites within a color are conditionally independent, so they may be
	// updated concurrently without changing the stationary distribution.
	Checkerboard
)

// String implements fmt.Stringer.
func (s Schedule) String() string {
	switch s {
	case Raster:
		return "raster"
	case Checkerboard:
		return "checkerboard"
	default:
		return fmt.Sprintf("Schedule(%d)", int(s))
	}
}

// Options configures a chain run.
type Options struct {
	Iterations int      // total MCMC iterations (full sweeps)
	BurnIn     int      // iterations before mode tracking starts
	Schedule   Schedule // sweep order
	// Workers sets checkerboard parallelism (<=1: sequential). RNG
	// streams are attached to rows, not workers, so for the built-in
	// samplers (whose state is pure scratch) a seeded run produces the
	// same labels for every worker count.
	Workers int
	// Anneal, if non-nil, returns the temperature for iteration t
	// (0-based); otherwise the model temperature is used throughout.
	Anneal func(t int) float64
	// TrackMode enables per-site sample counting for marginal-MAP
	// estimates; costs W*H*M counters.
	TrackMode bool
	// RecordEnergyEvery records the total energy every k iterations into
	// Result.EnergyTrace (0 disables; 1 records every iteration).
	RecordEnergyEvery int
	// Resume, if non-nil, rewinds the chain to this snapshot before the
	// first sweep: labels, RNG streams, mode counters, and energy trace
	// are restored and the run continues from Snapshot.Sweep. The
	// snapshot must match the model geometry and the sweep schedule;
	// fingerprint identity is checked by the layer that owns the
	// configuration (core), not here.
	Resume *checkpoint.Snapshot
	// Checkpoint, if non-nil, captures durable snapshots at sweep
	// boundaries per the policy. On cancellation a final snapshot is
	// always written before returning.
	Checkpoint *CheckpointPolicy
	// Recorder, if non-nil, receives chain metrics: sweep and
	// color-phase span timings, sweep/site counters, the energy gauge,
	// and checkpoint-write spans and events. Recording happens only at
	// sweep and color-pass boundaries — never per site — and never
	// touches the RNG streams, so an observed run samples the exact
	// same labels as an unobserved one (nil is the zero-cost default).
	Recorder obs.Recorder
}

// Result is the outcome of a chain run.
type Result struct {
	// Final is the labeling after the last iteration.
	Final *img.LabelMap
	// MAP is the per-site mode over post-burn-in samples (marginal MAP,
	// §1: "identifying the mode of the generated samples"). Nil unless
	// Options.TrackMode.
	MAP *img.LabelMap
	// Confidence holds, per site, the fraction of post-burn-in samples
	// equal to the MAP label, scaled to 0..255 — an uncertainty map
	// (255 = the chain always agreed). Nil unless Options.TrackMode.
	Confidence *img.Gray
	// EnergyTrace holds TotalEnergy snapshots (see RecordEnergyEvery).
	EnergyTrace []float64
	// Iterations is the number of sweeps performed.
	Iterations int
	// SamplerName records which sampler kernel ran.
	SamplerName string
}

// Run executes an MCMC chain on model m starting from init (which is not
// modified). The run is deterministic given (factory, opt, seed), and
// checkerboard runs are additionally invariant to Options.Workers (see
// Options). Compiling the model first (mrf.Model.Compile) switches the
// inner loop to the precomputed-table fast path without changing any
// sampled label: table and closure evaluation are bit-identical.
//
// The context provides cooperative cancellation and is checked at sweep
// boundaries only — a sweep in progress always completes, so
// cancellation can never leave a color pass half-applied or a snapshot
// capturing mid-sweep state. On cancellation (or deadline) Run writes a
// final checkpoint if Options.Checkpoint is set, then returns a non-nil
// *partial* Result (final labels, MAP/confidence over the sweeps that
// did run) alongside an error wrapping ctx.Err(); callers that want the
// partial output check errors.Is(err, context.Canceled) /
// context.DeadlineExceeded. The deferred worker-pool shutdown runs on
// every return path, so no goroutines outlive the call.
func Run(ctx context.Context, m *mrf.Model, init *img.LabelMap, factory Factory, opt Options, seed uint64) (*Result, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if init.W != m.W || init.H != m.H {
		return nil, fmt.Errorf("gibbs: init labeling is %dx%d, model is %dx%d", init.W, init.H, m.W, m.H)
	}
	for i, l := range init.Labels {
		if int(l) >= m.M {
			return nil, fmt.Errorf("gibbs: init label %d at site %d outside [0,%d)", l, i, m.M)
		}
	}
	if opt.Iterations <= 0 {
		return nil, fmt.Errorf("gibbs: Iterations must be positive, got %d", opt.Iterations)
	}
	if opt.BurnIn < 0 || opt.BurnIn >= opt.Iterations {
		return nil, fmt.Errorf("gibbs: BurnIn %d outside [0,%d)", opt.BurnIn, opt.Iterations)
	}
	if opt.Checkpoint != nil {
		if err := opt.Checkpoint.validate(); err != nil {
			return nil, err
		}
	}

	rec := opt.Recorder
	endRun := obs.Span(rec, "gibbs.run")
	defer endRun()

	lm := init.Clone()
	res := &Result{Iterations: opt.Iterations}

	var counts []uint32
	if opt.TrackMode {
		counts = make([]uint32, m.W*m.H*m.M)
	}

	if opt.Schedule != Raster && opt.Schedule != Checkerboard {
		return nil, fmt.Errorf("gibbs: unknown schedule %v", opt.Schedule)
	}

	workers := opt.Workers
	if workers < 1 || opt.Schedule == Raster {
		workers = 1
	}
	if workers > m.H {
		workers = m.H // a worker owns at least one row
	}

	// Per-worker samplers (scratch state), a sequential chain stream for
	// raster sweeps, and — for checkerboard sweeps — one decorrelated
	// stream per row so results are independent of the worker count.
	root := rng.New(seed)
	chain := root.Split()
	samplers := make([]Sampler, workers)
	for i := range samplers {
		samplers[i] = factory()
	}
	res.SamplerName = samplers[0].Name()

	var eng *engine
	cs := &chainState{m: m, lm: lm, chain: chain, counts: counts}
	if opt.Schedule == Checkerboard {
		rowSrc := make([]*rng.Source, m.H)
		for y := range rowSrc {
			rowSrc[y] = root.Split()
		}
		cs.rowSrc = rowSrc
		eng = newEngine(m, lm, samplers, rowSrc)
		eng.rec = rec
		eng.start()
		defer eng.stop()
	}

	start := 0
	if opt.Resume != nil {
		var err error
		if start, err = cs.restore(opt.Resume, opt); err != nil {
			return nil, err
		}
		obs.Emit(rec, "checkpoint.resume", map[string]any{"sweep": start})
	}

	pol := opt.Checkpoint
	// durationDue reports (statefully) whether pol.Every wall time has
	// elapsed since the run started or the last duration checkpoint.
	var durationDue func() bool
	if pol != nil && pol.Every > 0 {
		t0 := pol.Now()
		durationDue = func() bool {
			now := pol.Now()
			if now.Sub(t0) >= pol.Every {
				t0 = now
				return true
			}
			return false
		}
	}
	save := func(next int) error {
		endSave := obs.Span(rec, "checkpoint.save")
		defer endSave()
		snap, err := cs.capture(pol, next)
		if err != nil {
			return err
		}
		if err := pol.Sink(snap); err != nil {
			return fmt.Errorf("gibbs: checkpoint sink at sweep %d: %w", next, err)
		}
		obs.Add(rec, "checkpoint.saves", 1)
		obs.Emit(rec, "checkpoint.save", map[string]any{"sweep": next})
		return nil
	}

	baseT := m.T
	defer func() { m.T = baseT }()

	completed := start
	for it := start; it < opt.Iterations; it++ {
		if err := ctx.Err(); err != nil {
			if pol != nil {
				if serr := save(completed); serr != nil {
					return nil, serr
				}
			}
			finish(res, cs, opt, completed)
			obs.Emit(rec, "gibbs.cancel", map[string]any{"sweep": completed})
			return res, fmt.Errorf("gibbs: run stopped before sweep %d/%d: %w", it, opt.Iterations, err)
		}
		for _, s := range samplers {
			if sa, ok := s.(SweepAware); ok {
				sa.BeginSweep(it)
			}
		}
		if opt.Anneal != nil {
			t := opt.Anneal(it)
			if t <= 0 {
				return nil, fmt.Errorf("gibbs: Anneal(%d) returned non-positive temperature %v", it, t)
			}
			m.T = t
			m.RetuneRateLUT() // keep the compiled rate LUT on the new temperature
		}
		endSweep := obs.Span(rec, "gibbs.sweep")
		if opt.Schedule == Raster {
			sweepRaster(m, lm, samplers[0], chain)
		} else {
			eng.sweep()
		}
		endSweep()
		obs.Add(rec, "gibbs.sweeps", 1)
		obs.Add(rec, "gibbs.sites", int64(m.W*m.H))
		if opt.TrackMode && it >= opt.BurnIn {
			for i, l := range lm.Labels {
				counts[i*m.M+int(l)]++
			}
		}
		if opt.RecordEnergyEvery > 0 && it%opt.RecordEnergyEvery == 0 {
			cs.energy = append(cs.energy, m.TotalEnergy(lm))
			obs.Gauge(rec, "gibbs.energy", cs.energy[len(cs.energy)-1])
		}
		completed = it + 1
		if pol != nil && completed < opt.Iterations {
			due := pol.EverySweeps > 0 && completed%pol.EverySweeps == 0
			if !due && durationDue != nil {
				due = durationDue()
			}
			if due {
				if err := save(completed); err != nil {
					return nil, err
				}
			}
		}
	}

	finish(res, cs, opt, completed)
	return res, nil
}

// RunCtx runs an MCMC chain with explicit cancellation.
//
// Deprecated: Run now takes the context as its first argument; RunCtx is
// an alias kept for one release so existing callers keep compiling.
func RunCtx(ctx context.Context, m *mrf.Model, init *img.LabelMap, factory Factory, opt Options, seed uint64) (*Result, error) {
	return Run(ctx, m, init, factory, opt, seed)
}

// finish derives the result fields from the chain state after
// `completed` total sweeps (which is opt.Iterations for a full run, less
// when cancellation stopped the chain early).
func finish(res *Result, cs *chainState, opt Options, completed int) {
	res.Final = cs.lm
	res.Iterations = completed
	res.EnergyTrace = cs.energy
	if !opt.TrackMode {
		return
	}
	m := cs.m
	res.MAP = img.NewLabelMap(m.W, m.H)
	res.Confidence = img.NewGray(m.W, m.H)
	samples := uint32(0)
	if completed > opt.BurnIn {
		samples = uint32(completed - opt.BurnIn)
	}
	for i := 0; i < m.W*m.H; i++ {
		best, bestC := 0, uint32(0)
		for l := 0; l < m.M; l++ {
			if c := cs.counts[i*m.M+l]; c > bestC {
				best, bestC = l, c
			}
		}
		res.MAP.Labels[i] = uint8(best)
		if samples > 0 {
			res.Confidence.Pix[i] = uint8(bestC * 255 / samples)
		}
	}
}

func sweepRaster(m *mrf.Model, lm *img.LabelMap, s Sampler, src *rng.Source) {
	if _, ok := s.(*ExactGibbs); ok {
		if k := m.Kernel(); k != nil && k.Ready() {
			sc := mrf.GetScratch(m.M)
			for y := 0; y < m.H; y++ {
				k.SweepRow(lm, y, 0, 1, src, sc)
			}
			mrf.PutScratch(sc)
			return
		}
	}
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			lm.Set(x, y, s.SampleSite(m, lm, x, y, src))
		}
	}
}

// GeometricAnneal returns an annealing schedule T(t) = t0 * r^t, floored
// at tMin. Classic simulated-annealing cooling for MAP-style inference.
func GeometricAnneal(t0, r, tMin float64) func(int) float64 {
	return func(t int) float64 {
		temp := t0 * math.Pow(r, float64(t))
		if temp < tMin {
			return tMin
		}
		return temp
	}
}

// Converged reports whether the last `window` entries of an energy trace
// changed by less than relTol relative to their mean — a cheap
// convergence heuristic for tests and demos.
func Converged(trace []float64, window int, relTol float64) bool {
	if len(trace) < window || window < 2 {
		return false
	}
	tail := trace[len(trace)-window:]
	lo, hi, sum := tail[0], tail[0], 0.0
	for _, v := range tail {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
		sum += v
	}
	mean := sum / float64(window)
	if mean == 0 {
		return hi-lo == 0
	}
	return (hi-lo)/abs(mean) < relTol
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
