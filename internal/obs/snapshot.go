package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// SchemaVersion identifies the Snapshot JSON schema. Bump on any
// incompatible change; ValidateSnapshotJSON rejects mismatches so the
// obs-smoke CI gate catches drift between producer and consumers.
const SchemaVersion = 1

// Counter is one named monotonic counter in a Snapshot.
type Counter struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeValue is one named gauge in a Snapshot.
type GaugeValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Histogram is one fixed-bucket histogram in a Snapshot: Counts[i] is
// the number of samples <= Bounds[i]; the final entry of Counts is the
// overflow bucket, so len(Counts) == len(Bounds)+1.
type Histogram struct {
	Name   string    `json:"name"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
}

// Total returns the histogram's sample count.
func (h Histogram) Total() uint64 {
	var n uint64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// SpanStats aggregates the completed spans of one phase-timer name.
type SpanStats struct {
	Name    string `json:"name"`
	Count   uint64 `json:"count"`
	TotalNs int64  `json:"total_ns"`
	MinNs   int64  `json:"min_ns"`
	MaxNs   int64  `json:"max_ns"`
}

// Snapshot is a point-in-time export of a Registry: the Result.Metrics
// payload, the -metrics JSON document, and the /debug/vars body. All
// sections are sorted by name; encoding is deterministic given the
// recorded values.
type Snapshot struct {
	SchemaVersion int          `json:"schema_version"`
	Counters      []Counter    `json:"counters"`
	Gauges        []GaugeValue `json:"gauges"`
	Histograms    []Histogram  `json:"histograms"`
	Spans         []SpanStats  `json:"spans"`
	Events        []Event      `json:"events,omitempty"`
	DroppedEvents int64        `json:"dropped_events,omitempty"`
}

// Counter returns the value of a named counter (0 when absent).
func (s *Snapshot) Counter(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Span returns the aggregate stats of a named span timer.
func (s *Snapshot) Span(name string) (SpanStats, bool) {
	for _, sp := range s.Spans {
		if sp.Name == name {
			return sp, true
		}
	}
	return SpanStats{}, false
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteFile writes the snapshot to path, validating the encoded bytes
// against the schema first so a CLI can never flush a document its own
// tooling would reject.
func (s *Snapshot) WriteFile(path string) error {
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		return err
	}
	if err := ValidateSnapshotJSON(buf.Bytes()); err != nil {
		return fmt.Errorf("obs: refusing to write %s: %w", path, err)
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// ValidateSnapshotJSON checks that data is a well-formed Snapshot
// document: strict field set, current schema version, sorted unique
// names per section, histogram bucket-shape invariants, and span
// min/max/total consistency. This is the schema gate behind
// `make obs-smoke`.
func ValidateSnapshotJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Snapshot
	if err := dec.Decode(&s); err != nil {
		return fmt.Errorf("obs: snapshot JSON: %w", err)
	}
	if err := checkTrailing(dec); err != nil {
		return err
	}
	if s.SchemaVersion != SchemaVersion {
		return fmt.Errorf("obs: snapshot schema version %d, tool understands %d", s.SchemaVersion, SchemaVersion)
	}
	names := make([]string, 0, len(s.Counters))
	for _, c := range s.Counters {
		names = append(names, c.Name)
	}
	if err := checkNames("counters", names); err != nil {
		return err
	}
	names = names[:0]
	for _, g := range s.Gauges {
		names = append(names, g.Name)
	}
	if err := checkNames("gauges", names); err != nil {
		return err
	}
	names = names[:0]
	for _, h := range s.Histograms {
		names = append(names, h.Name)
		if len(h.Counts) != len(h.Bounds)+1 {
			return fmt.Errorf("obs: histogram %q has %d counts for %d bounds (want bounds+1)",
				h.Name, len(h.Counts), len(h.Bounds))
		}
		if !sort.Float64sAreSorted(h.Bounds) {
			return fmt.Errorf("obs: histogram %q bounds are not ascending", h.Name)
		}
		if math.IsNaN(h.Sum) || math.IsInf(h.Sum, 0) {
			return fmt.Errorf("obs: histogram %q sum is not finite", h.Name)
		}
	}
	if err := checkNames("histograms", names); err != nil {
		return err
	}
	names = names[:0]
	for _, sp := range s.Spans {
		names = append(names, sp.Name)
		if sp.Count == 0 {
			return fmt.Errorf("obs: span %q recorded with zero count", sp.Name)
		}
		if sp.MinNs < 0 || sp.MaxNs < sp.MinNs {
			return fmt.Errorf("obs: span %q has inconsistent min/max %d/%d ns", sp.Name, sp.MinNs, sp.MaxNs)
		}
		if sp.TotalNs < sp.MaxNs {
			return fmt.Errorf("obs: span %q total %d ns below max %d ns", sp.Name, sp.TotalNs, sp.MaxNs)
		}
	}
	if err := checkNames("spans", names); err != nil {
		return err
	}
	for i, e := range s.Events {
		if e.Kind == "" {
			return fmt.Errorf("obs: event %d has empty kind", i)
		}
	}
	if s.DroppedEvents < 0 {
		return fmt.Errorf("obs: negative dropped_events %d", s.DroppedEvents)
	}
	return nil
}

// checkTrailing rejects bytes after the first JSON document.
func checkTrailing(dec *json.Decoder) error {
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("obs: trailing data after snapshot document")
	}
	return nil
}

// checkNames enforces sorted, unique, non-empty names in one section.
func checkNames(section string, names []string) error {
	for i, n := range names {
		if n == "" {
			return fmt.Errorf("obs: %s entry %d has empty name", section, i)
		}
		if i > 0 {
			switch {
			case names[i-1] == n:
				return fmt.Errorf("obs: %s has duplicate name %q", section, n)
			case names[i-1] > n:
				return fmt.Errorf("obs: %s not sorted at %q", section, n)
			}
		}
	}
	return nil
}
