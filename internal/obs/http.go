package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// Handler serves a live Registry over HTTP:
//
//	/metrics        Prometheus text exposition (counters, gauges,
//	                histograms with cumulative le buckets, span timers
//	                as *_seconds summaries)
//	/debug/vars     the full Snapshot as JSON (expvar-style endpoint)
//	/debug/pprof/   the standard net/http/pprof profile index
//
// The handler snapshots the registry per request; it never blocks the
// inference hot path beyond the registry mutex.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writePrometheus(w, r.Snapshot())
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.Snapshot().WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "rsu-g observability endpoint\n\n/metrics\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

// NewServer returns an http.Server hardened for unattended exposure:
// slowloris-resistant header/read timeouts and an idle-connection
// reaper. WriteTimeout is deliberately left zero — the handlers this
// package (and internal/serve) mount include long-lived streams (pprof
// profiles, NDJSON progress followers) that a write deadline would cut
// mid-response; per-request bounds belong to the handlers themselves.
func NewServer(handler http.Handler) *http.Server {
	return &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// Serve starts the observability endpoint on addr (e.g. ":8080" or
// "127.0.0.1:0") in a background goroutine. It returns the bound
// address and a shutdown func that drains in-flight requests until its
// context expires (then closes abruptly). CLIs call it when -http is
// set; passing an already-expired context degrades to an immediate
// close.
func Serve(addr string, r *Registry) (string, func(context.Context) error, error) {
	return ServeHandler(addr, Handler(r))
}

// ServeHandler is Serve for an arbitrary handler (internal/serve mounts
// its job API alongside the registry endpoints): hardened server, same
// graceful-shutdown contract.
func ServeHandler(addr string, h http.Handler) (string, func(context.Context) error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := NewServer(h)
	go func() { _ = srv.Serve(ln) }()
	shutdown := func(ctx context.Context) error {
		if err := srv.Shutdown(ctx); err != nil {
			_ = srv.Close()
			return fmt.Errorf("obs: shutdown: %w", err)
		}
		return nil
	}
	return ln.Addr().String(), shutdown, nil
}

// writePrometheus renders the snapshot in the Prometheus text format.
func writePrometheus(w http.ResponseWriter, s *Snapshot) {
	for _, c := range s.Counters {
		name := promName(c.Name)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, c.Value)
	}
	for _, g := range s.Gauges {
		name := promName(g.Name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", name, name, g.Value)
	}
	for _, h := range s.Histograms {
		name := promName(h.Name)
		fmt.Fprintf(w, "# TYPE %s histogram\n", name)
		cum := uint64(0)
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, fmt.Sprintf("%g", b), cum)
		}
		cum += h.Counts[len(h.Bounds)]
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, h.Sum, name, cum)
	}
	for _, sp := range s.Spans {
		name := promName(sp.Name) + "_seconds"
		fmt.Fprintf(w, "# TYPE %s summary\n", name)
		fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, float64(sp.TotalNs)/1e9, name, sp.Count)
	}
}

// promName sanitizes a metric name into the Prometheus charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}
