package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock yields a strictly advancing deterministic time sequence.
func fakeClock(stepNs int64) func() time.Time {
	t := time.Unix(0, 0)
	return func() time.Time {
		t = t.Add(time.Duration(stepNs))
		return t
	}
}

func TestNilRecorderHelpersAreNoOps(t *testing.T) {
	// Must not panic; Span must return a callable terminator.
	Add(nil, "x", 1)
	Gauge(nil, "x", 1)
	Observe(nil, "x", 1)
	Span(nil, "x")()
	Emit(nil, "x", nil)
}

func TestRegistryCountersGaugesHistograms(t *testing.T) {
	r := New()
	r.Add("a.count", 2)
	r.Add("a.count", 3)
	r.Gauge("g", 1.5)
	r.Gauge("g", 2.5)
	for _, v := range []float64{0.5, 1, 3, 5, 1e30} {
		r.Observe("h", v)
	}
	s := r.Snapshot()
	if got := s.Counter("a.count"); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if len(s.Gauges) != 1 || s.Gauges[0].Value != 2.5 {
		t.Errorf("gauges = %+v, want one entry g=2.5", s.Gauges)
	}
	if len(s.Histograms) != 1 {
		t.Fatalf("histograms = %+v", s.Histograms)
	}
	h := s.Histograms[0]
	if h.Total() != 5 {
		t.Errorf("histogram total = %d, want 5", h.Total())
	}
	// 0.5 and 1 land in the first bucket (<=1); 3 in <=4; 5 in <=16;
	// 1e30 overflows.
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[2] != 1 || h.Counts[len(h.Counts)-1] != 1 {
		t.Errorf("bucket counts = %v", h.Counts)
	}
}

func TestGaugeAddMovesLevelsBothWays(t *testing.T) {
	r := New()
	r.GaugeAdd("backlog", 3) // created at delta
	r.GaugeAdd("backlog", 2)
	r.GaugeAdd("backlog", -4)
	s := r.Snapshot()
	if len(s.Gauges) != 1 || s.Gauges[0].Name != "backlog" || s.Gauges[0].Value != 1 {
		t.Errorf("gauges = %+v, want one entry backlog=1", s.Gauges)
	}
	// Gauge still overwrites: a level set wins over accumulated deltas.
	r.Gauge("backlog", 0)
	if s := r.Snapshot(); s.Gauges[0].Value != 0 {
		t.Errorf("after Gauge(0): %+v", s.Gauges)
	}
}

func TestRegistrySpans(t *testing.T) {
	r := NewWithClock(fakeClock(int64(time.Millisecond)))
	for i := 0; i < 3; i++ {
		end := r.Span("phase")
		end()
	}
	s := r.Snapshot()
	sp, ok := s.Span("phase")
	if !ok {
		t.Fatal("span not recorded")
	}
	if sp.Count != 3 {
		t.Errorf("count = %d, want 3", sp.Count)
	}
	// The fake clock advances 1ms per read, so each span is exactly 1ms.
	if sp.MinNs != int64(time.Millisecond) || sp.MaxNs != int64(time.Millisecond) {
		t.Errorf("min/max = %d/%d, want 1ms/1ms", sp.MinNs, sp.MaxNs)
	}
	if sp.TotalNs != 3*int64(time.Millisecond) {
		t.Errorf("total = %d", sp.TotalNs)
	}
	// Span durations also land in the <name>_ns histogram.
	found := false
	for _, h := range s.Histograms {
		if h.Name == "phase_ns" && h.Total() == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("phase_ns histogram missing: %+v", s.Histograms)
	}
}

func TestSnapshotDeterministicAndValid(t *testing.T) {
	build := func() *Snapshot {
		r := NewWithClock(fakeClock(1))
		// Insert in scrambled order; snapshot must sort.
		for _, n := range []string{"z", "a", "m"} {
			r.Add(n, 1)
			r.Gauge(n+".g", 2)
			r.Observe(n+".h", 3)
		}
		r.Emit(Event{Kind: "k", Fields: map[string]any{"b": 1, "a": "x"}})
		return r.Snapshot()
	}
	var b1, b2 bytes.Buffer
	if err := build().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Errorf("snapshot encoding not deterministic:\n%s\nvs\n%s", b1.String(), b2.String())
	}
	if err := ValidateSnapshotJSON(b1.Bytes()); err != nil {
		t.Errorf("valid snapshot rejected: %v", err)
	}
}

func TestValidateSnapshotJSONRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":  `{"schema_version":1,"counters":[],"gauges":[],"histograms":[],"spans":[],"bogus":1}`,
		"wrong version":  `{"schema_version":99,"counters":[],"gauges":[],"histograms":[],"spans":[]}`,
		"unsorted":       `{"schema_version":1,"counters":[{"name":"b","value":1},{"name":"a","value":1}],"gauges":[],"histograms":[],"spans":[]}`,
		"duplicate":      `{"schema_version":1,"counters":[{"name":"a","value":1},{"name":"a","value":1}],"gauges":[],"histograms":[],"spans":[]}`,
		"bucket shape":   `{"schema_version":1,"counters":[],"gauges":[],"histograms":[{"name":"h","bounds":[1,2],"counts":[1,2],"sum":3}],"spans":[]}`,
		"span zero":      `{"schema_version":1,"counters":[],"gauges":[],"histograms":[],"spans":[{"name":"s","count":0,"total_ns":0,"min_ns":0,"max_ns":0}]}`,
		"trailing bytes": `{"schema_version":1,"counters":[],"gauges":[],"histograms":[],"spans":[]}{}`,
	}
	for name, doc := range cases {
		if err := ValidateSnapshotJSON([]byte(doc)); err == nil {
			t.Errorf("%s: accepted invalid document", name)
		}
	}
}

// TestEventSinkNoInterleaving is the regression test for the W=N
// interleaved-log-lines bug: many goroutines emitting concurrently
// must produce a stream where every line is one complete JSON object
// and the stream Seqs are exactly 0..N-1 in line order.
func TestEventSinkNoInterleaving(t *testing.T) {
	var buf bytes.Buffer
	sink := NewEventSink(&buf)
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sink.Emit(Event{Kind: "fault.detect", Fields: map[string]any{
					"worker": w, "i": i, "pad": strings.Repeat("x", 64),
				}})
			}
		}(w)
	}
	wg.Wait()
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != workers*perWorker {
		t.Fatalf("got %d lines, want %d", len(lines), workers*perWorker)
	}
	for i, line := range lines {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %d is not a complete JSON object: %v\n%s", i, err, line)
		}
		if e.Seq != int64(i) {
			t.Fatalf("line %d carries seq %d: stream order and seq assignment diverge", i, e.Seq)
		}
	}
}

func TestRegistryStreamsToSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewEventSink(&buf)
	r := New()
	r.StreamTo(sink)
	r.Emit(Event{Kind: "checkpoint.save", Fields: map[string]any{"sweep": 10}})
	if sink.Count() != 1 {
		t.Fatalf("sink saw %d events", sink.Count())
	}
	var e Event
	if err := json.Unmarshal(buf.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if e.Kind != "checkpoint.save" {
		t.Errorf("kind = %q", e.Kind)
	}
	s := r.Snapshot()
	if len(s.Events) != 1 {
		t.Errorf("buffered events = %d", len(s.Events))
	}
}

func TestEventBufferBounded(t *testing.T) {
	r := New()
	for i := 0; i < maxBufferedEvents+10; i++ {
		r.Emit(Event{Kind: "k"})
	}
	s := r.Snapshot()
	if len(s.Events) != maxBufferedEvents {
		t.Errorf("buffer length %d, want %d", len(s.Events), maxBufferedEvents)
	}
	if s.DroppedEvents != 10 {
		t.Errorf("dropped = %d, want 10", s.DroppedEvents)
	}
	// The oldest were dropped; the last event keeps its emission seq.
	if got := s.Events[len(s.Events)-1].Seq; got != int64(maxBufferedEvents+9) {
		t.Errorf("last seq = %d", got)
	}
}

func TestHTTPHandler(t *testing.T) {
	r := NewWithClock(fakeClock(1000))
	r.Add("gibbs.sweeps", 7)
	r.Gauge("gibbs.energy", -12.5)
	r.Span("gibbs.sweep")()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b bytes.Buffer
		if _, err := b.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, b.String()
	}

	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics -> %d", code)
	}
	for _, want := range []string{
		"# TYPE gibbs_sweeps counter", "gibbs_sweeps 7",
		"# TYPE gibbs_energy gauge", "gibbs_energy -12.5",
		"gibbs_sweep_seconds_count 1",
		"gibbs_sweep_ns_bucket{le=\"+Inf\"} 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	code, body = get("/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars -> %d", code)
	}
	if err := ValidateSnapshotJSON([]byte(body)); err != nil {
		t.Errorf("/debug/vars body fails schema validation: %v", err)
	}

	code, _ = get("/debug/pprof/")
	if code != 200 {
		t.Errorf("/debug/pprof/ -> %d", code)
	}
	code, _ = get("/nope")
	if code != 404 {
		t.Errorf("/nope -> %d, want 404", code)
	}
}

func TestServe(t *testing.T) {
	r := New()
	addr, shutdown, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	if addr == "" {
		t.Fatal("empty bound address")
	}
	resp, err := httptest.NewServer(nil).Client().Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("/metrics over Serve -> %d", resp.StatusCode)
	}
}
