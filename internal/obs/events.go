package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// EventSink streams structured events as newline-delimited JSON, one
// complete object per line, through a mutex-guarded encoder. It exists
// because the pre-obs ad-hoc logging (rsudiag -faultlog prints,
// checkpoint progress lines) wrote to the same stream from several
// goroutines under W=N and interleaved partial lines; every writer now
// funnels through one lock that holds for a whole line.
//
// The sink assigns its own stream-order Seq to each event — concurrent
// emitters get unique, gap-free sequence numbers in exactly the order
// their lines appear in the output.
type EventSink struct {
	mu  sync.Mutex
	enc *json.Encoder
	seq int64
	err error
}

// NewEventSink returns a sink writing NDJSON events to w.
func NewEventSink(w io.Writer) *EventSink {
	return &EventSink{enc: json.NewEncoder(w)}
}

// Emit writes one event line. Safe for concurrent use; the first write
// error is sticky and reported by Err (subsequent emits are dropped so
// a dead log file cannot wedge the run).
func (s *EventSink) Emit(e Event) {
	_ = s.write(e)
}

// write assigns the stream Seq and encodes the event under the lock.
func (s *EventSink) write(e Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	e.Seq = s.seq
	s.seq++
	if err := s.enc.Encode(e); err != nil {
		s.err = err
		return err
	}
	return nil
}

// Err returns the first write error, if any.
func (s *EventSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Count returns the number of events written so far.
func (s *EventSink) Count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}
