package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// DefaultBuckets are the fixed histogram bucket upper bounds: powers
// of four from 1, a unit-free geometric ladder wide enough to cover
// nanosecond phase timings (4^20 ns ≈ 18 minutes) and cycle counts
// alike. Values above the last bound land in the +Inf overflow bucket.
var DefaultBuckets = func() []float64 {
	b := make([]float64, 21)
	v := 1.0
	for i := range b {
		b[i] = v
		v *= 4
	}
	return b
}()

// maxBufferedEvents bounds the Registry's in-memory event buffer; once
// full, older events are dropped (DroppedEvents counts them) so a
// long-running observed chain cannot grow without bound. Streams
// attached via StreamTo see every event regardless.
const maxBufferedEvents = 4096

// histogram is one fixed-bucket histogram: counts[i] is the number of
// samples <= bounds[i]; counts[len(bounds)] is the overflow bucket.
type histogram struct {
	bounds []float64
	counts []uint64
	sum    float64
}

func (h *histogram) observe(v float64) {
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// spanStats aggregates completed spans of one name.
type spanStats struct {
	count        uint64
	totalNs      int64
	minNs, maxNs int64
}

// Registry is the concrete Recorder: mutex-guarded, safe for the sweep
// engine's worker goroutines, and exportable as a deterministic
// Snapshot at any instant.
type Registry struct {
	mu       sync.Mutex
	now      clock
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*histogram
	spans    map[string]*spanStats
	events   []Event
	dropped  int64
	seq      int64
	sink     *EventSink
}

// New returns an empty Registry using the wall clock for span timing.
func New() *Registry {
	return newRegistry(time.Now)
}

// NewWithClock returns a Registry driven by an injected clock — used
// by tests that need deterministic span durations.
func NewWithClock(now func() time.Time) *Registry {
	if now == nil {
		return New()
	}
	return newRegistry(now)
}

func newRegistry(now clock) *Registry {
	return &Registry{
		now:      now,
		counters: map[string]int64{},
		gauges:   map[string]float64{},
		hists:    map[string]*histogram{},
		spans:    map[string]*spanStats{},
	}
}

// StreamTo attaches a streaming event sink: every subsequent Emit is
// also written through the sink's mutex-guarded encoder, one JSON
// object per line. A nil sink detaches.
func (r *Registry) StreamTo(s *EventSink) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sink = s
}

// Add implements Recorder.
func (r *Registry) Add(name string, delta int64) {
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Gauge implements Recorder.
func (r *Registry) Gauge(name string, v float64) {
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// GaugeAdd adjusts the named gauge by delta, creating it at delta if
// absent. Counters only go up; gauges that track a level (replication
// backlog, bytes in flight) need atomic up-and-down movement from
// concurrent writers, which read-modify-write through Gauge would race.
func (r *Registry) GaugeAdd(name string, delta float64) {
	r.mu.Lock()
	r.gauges[name] += delta
	r.mu.Unlock()
}

// Observe implements Recorder.
func (r *Registry) Observe(name string, v float64) {
	r.mu.Lock()
	r.observeLocked(name, v)
	r.mu.Unlock()
}

func (r *Registry) observeLocked(name string, v float64) {
	h := r.hists[name]
	if h == nil {
		h = &histogram{
			bounds: DefaultBuckets,
			counts: make([]uint64, len(DefaultBuckets)+1),
		}
		r.hists[name] = h
	}
	h.observe(v)
}

// Span implements Recorder: it reads the clock once at start and once
// at end, then folds the duration into the span aggregate and the
// "<name>_ns" histogram.
func (r *Registry) Span(name string) func() {
	start := r.now()
	return func() {
		ns := r.now().Sub(start).Nanoseconds()
		if ns < 0 {
			ns = 0
		}
		r.mu.Lock()
		s := r.spans[name]
		if s == nil {
			s = &spanStats{minNs: ns, maxNs: ns}
			r.spans[name] = s
		}
		s.count++
		s.totalNs += ns
		if ns < s.minNs {
			s.minNs = ns
		}
		if ns > s.maxNs {
			s.maxNs = ns
		}
		r.observeLocked(name+"_ns", float64(ns))
		r.mu.Unlock()
	}
}

// Emit implements Recorder. Events receive their buffer-order Seq
// under the registry lock; when a stream sink is attached the event is
// forwarded through it (the sink assigns its own stream-order Seq and
// serializes whole lines, so concurrent emitters never interleave).
func (r *Registry) Emit(e Event) {
	r.mu.Lock()
	e.Seq = r.seq
	r.seq++
	if len(r.events) >= maxBufferedEvents {
		drop := len(r.events) - maxBufferedEvents + 1
		r.events = r.events[:copy(r.events, r.events[drop:])]
		r.dropped += int64(drop)
	}
	r.events = append(r.events, e)
	sink := r.sink
	r.mu.Unlock()
	if sink != nil {
		// Outside the registry lock: the sink owns its own mutex, and a
		// slow writer must not stall counter updates.
		_ = sink.write(e)
	}
}

// Snapshot exports a deterministic point-in-time copy: every section
// sorted by name, buffered events in emission order.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{SchemaVersion: SchemaVersion}
	for name, v := range r.counters {
		s.Counters = append(s.Counters, Counter{Name: name, Value: v})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	for name, v := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: name, Value: v})
	}
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	for name, h := range r.hists {
		hist := Histogram{
			Name:   name,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: append([]uint64(nil), h.counts...),
			Sum:    h.sum,
		}
		s.Histograms = append(s.Histograms, hist)
	}
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	for name, sp := range r.spans {
		s.Spans = append(s.Spans, SpanStats{
			Name: name, Count: sp.count,
			TotalNs: sp.totalNs, MinNs: sp.minNs, MaxNs: sp.maxNs,
		})
	}
	sort.Slice(s.Spans, func(i, j int) bool { return s.Spans[i].Name < s.Spans[j].Name })
	s.Events = append([]Event(nil), r.events...)
	s.DroppedEvents = r.dropped
	return s
}

var _ Recorder = (*Registry)(nil)
var _ Snapshotter = (*Registry)(nil)
var _ fmt.Stringer = (*Registry)(nil)

// String summarizes the registry for debug prints.
func (r *Registry) String() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return fmt.Sprintf("obs.Registry{%d counters, %d gauges, %d histograms, %d spans, %d events}",
		len(r.counters), len(r.gauges), len(r.hists), len(r.spans), len(r.events))
}
