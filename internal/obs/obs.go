// Package obs is the reproduction's zero-dependency observability
// layer: counters, gauges, fixed-bucket histograms, span-style phase
// timers and a structured event sink, behind one small Recorder
// interface that the solver stack (core → gibbs → accel → fault)
// accepts by injection.
//
// Two invariants shape the design:
//
//   - A nil Recorder is the fast path. Every instrumentation point in
//     the inference stack guards on nil (via the package-level helpers
//     below), records only at sweep/phase granularity — never per
//     site — and costs nothing when observability is off.
//   - Metrics never touch the RNG streams. The recorder reads clocks
//     and counters only; an observed run draws the exact same random
//     sequence as an unobserved one, so seeded label maps are
//     byte-identical with the recorder on or off (tests enforce this
//     across every backend and worker count).
//
// The concrete implementation is Registry (mutex-guarded, safe for the
// engine's worker goroutines); its Snapshot serializes to a
// deterministic, schema-validatable JSON document (sorted names), and
// Handler exposes the live registry over HTTP as Prometheus text,
// expvar-style JSON and net/http/pprof.
package obs

import "time"

// Recorder is the instrumentation surface injected into the inference
// stack. Implementations must be safe for concurrent use: the fault
// monitors emit events from the sweep engine's worker goroutines.
//
// Callers inside the solver stack should prefer the package-level
// nil-guard helpers (Add, Gauge, Observe, Span, Emit) so a nil
// recorder stays a no-op without call-site branching.
type Recorder interface {
	// Add increments the named counter by delta.
	Add(name string, delta int64)
	// Gauge sets the named gauge to v.
	Gauge(name string, v float64)
	// Observe records v into the named fixed-bucket histogram.
	Observe(name string, v float64)
	// Span starts a phase timer; invoking the returned func ends the
	// span, folding its duration into the span's aggregate stats and
	// the "<name>_ns" histogram.
	Span(name string) func()
	// Emit appends a structured event to the recorder's event buffer
	// and, when a streaming sink is attached, writes it through the
	// sink's mutex-guarded encoder.
	Emit(e Event)
}

// Event is one structured observability record: checkpoint writes,
// fault detections, run lifecycle marks. Fields is encoded with sorted
// keys (encoding/json's map ordering), so event streams from a seeded
// run are deterministic up to wall-clock-free fields.
type Event struct {
	// Seq is the global sequence number, assigned at emission by the
	// Registry (buffer order) or the EventSink (stream order).
	Seq int64 `json:"seq"`
	// Kind names the event class, dotted lowercase ("checkpoint.save",
	// "fault.detect", "fault.audit").
	Kind string `json:"kind"`
	// Fields carries the event payload.
	Fields map[string]any `json:"fields,omitempty"`
}

// noop is the shared no-op span terminator returned for nil recorders.
var noop = func() {}

// Add increments a counter on r, or does nothing when r is nil.
func Add(r Recorder, name string, delta int64) {
	if r != nil {
		r.Add(name, delta)
	}
}

// Gauge sets a gauge on r, or does nothing when r is nil.
func Gauge(r Recorder, name string, v float64) {
	if r != nil {
		r.Gauge(name, v)
	}
}

// Observe records a histogram sample on r, or does nothing when r is
// nil.
func Observe(r Recorder, name string, v float64) {
	if r != nil {
		r.Observe(name, v)
	}
}

// Span starts a phase timer on r; the returned func ends it. For a nil
// recorder both ends are free.
func Span(r Recorder, name string) func() {
	if r == nil {
		return noop
	}
	return r.Span(name)
}

// Emit sends an event to r, or does nothing when r is nil.
func Emit(r Recorder, kind string, fields map[string]any) {
	if r != nil {
		r.Emit(Event{Kind: kind, Fields: fields})
	}
}

// Snapshotter is implemented by recorders that can export a
// point-in-time Snapshot; core.Solve uses it to attach Result.Metrics
// when the injected recorder is (or wraps) a Registry.
type Snapshotter interface {
	Snapshot() *Snapshot
}

// clock is the wall-time source of a Registry. It is a stored func
// value — never a direct time.Now() call inside library code — so
// tests inject a deterministic clock and the detrand invariant (no
// wall-clock reads feeding simulation state) stays auditable: span
// durations are observability output only and never flow back into
// the chain.
type clock func() time.Time
