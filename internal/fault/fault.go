// Package fault is the deterministic fault-injection and recovery
// subsystem for the RSU-G stack (paper §9 reliability discussion:
// chromophore wear-out, SPAD dark counts, the 4-cycle quiescence
// hazard). It has three layers:
//
//   - Injection: a Schedule, parsed from a small DSL and replayable
//     from a seed, arms typed faults (dead/hot SPAD, stuck-at intensity
//     bits, accelerated wear-out, quiescence-hazard leakage, TTF
//     shift-register wrap) at chosen sweeps and units or at Poisson
//     arrival rates. Compile expands the schedule into a Timeline of
//     concrete fault Instances — all randomness is consumed up front,
//     so the set of injected faults is a pure function of
//     (schedule, seed, geometry) and never depends on worker count.
//   - Detection: per-replica online monitors (Observe) watch every
//     TTF measurement — stall/zero-run watchdogs, a fire-rate EWMA
//     against the expected intensity, code-readback and dark-channel
//     checks — and raise structured Events with unit/sweep provenance.
//   - Degradation: a Session applies the selected Policy (spare-circuit
//     remap, bounded resample, quarantine, CMOS-fallback) and keeps an
//     Audit that reconciles injected against detected faults.
//
// Everything in this package is deterministic for a fixed seed and
// schedule; Session state is sharded per unit so the gibbs engine's
// row-parallel sweeps stay worker-count-invariant (a unit is an image
// row, touched by exactly one worker per color pass).
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/rng"
)

// Kind is a fault type from the taxonomy (DESIGN.md §9).
type Kind int

// The fault taxonomy. Per-circuit kinds target one physical RET
// replica and can be remapped around; unit-wide kinds corrupt shared
// pipeline state and force escalation past remap.
const (
	// Dead is a dead SPAD: the detector never fires, every TTF
	// saturates (§9 "SPAD dark counts" dual — zero efficiency).
	Dead Kind = iota
	// Hot is a dark-count storm: the SPAD fires at Storm × the
	// circuit's full-on rate regardless of the commanded intensity.
	Hot
	// Stuck forces bit Bit of the 4-bit LED intensity code to Val.
	Stuck
	// Wearout accelerates chromophore photobleaching: the effective
	// rate decays by exp(-Accel × sweeps-active).
	Wearout
	// Quiesce is a quiescence-hazard violation (§5.3): a replica
	// reused inside its 4-cycle window carries residual excitation,
	// adding a spurious Leak × full-on rate to the race. Unit-wide
	// (the replica scheduler, not one circuit, is at fault).
	Quiesce
	// Wrap is TTF shift-register overflow: instead of saturating at
	// max count, a measurement past the window wraps to a junk phase
	// of the free-running register. Unit-wide (the register is shared
	// selection-stage state).
	Wrap

	numKinds
)

var kindNames = [numKinds]string{"dead", "hot", "stuck", "wearout", "quiesce", "wrap"}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k < 0 || k >= numKinds {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// ParseKind parses a DSL kind name.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if s == name {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("fault: unknown kind %q", s)
}

// UnitWide reports whether the kind corrupts shared per-unit pipeline
// state (true) or a single physical RET replica (false). Remap cannot
// route around a unit-wide fault and escalates to fallback.
func (k Kind) UnitWide() bool { return k == Quiesce || k == Wrap }

// Clause is one parsed schedule clause: either a targeted fault
// (Rate == 0, armed at Unit/Sweep) or a Poisson arrival process
// (Rate > 0, one process per unit).
type Clause struct {
	Kind Kind
	// Unit targets one unit (-1: every unit). Rate clauses ignore it.
	Unit int
	// Sweep is the arming sweep for targeted clauses.
	Sweep int
	// Dur is the active duration in sweeps (0: permanent). -1 selects
	// the kind default at Compile time (permanent for dead/stuck/
	// wearout, transient for hot/quiesce/wrap).
	Dur int
	// Rate is the Poisson arrival rate in faults per site-sample
	// (0: targeted clause).
	Rate float64
	// Replica targets one physical replica (-1: chosen by the
	// compile-time RNG for rate clauses, replica 0 for targeted).
	Replica int
	// Bit and Val parameterize Stuck (force intensity bit Bit to Val).
	Bit, Val uint8
	// Storm is the Hot dark-count rate as a multiple of full-on.
	Storm float64
	// Accel is the Wearout decay constant per active sweep.
	Accel float64
	// Leak is the Quiesce residual-excitation rate as a multiple of
	// full-on.
	Leak float64
}

// Schedule is a parsed fault schedule plus the seed that makes its
// Poisson expansion reproducible.
type Schedule struct {
	Seed    uint64
	Clauses []Clause
}

// Parse parses the schedule DSL:
//
//	schedule := clause (';' clause)*
//	clause   := kind [':' key '=' val (',' key '=' val)*]
//	kind     := dead | hot | stuck | wearout | quiesce | wrap
//	key      := unit | sweep | dur | rate | replica | bit | val |
//	            storm | accel | leak
//
// Examples:
//
//	"dead:unit=3,sweep=10"            kill unit 3's replica 0 at sweep 10
//	"hot:rate=1e-3,storm=4,dur=3"     Poisson dark-count storms
//	"stuck:unit=0,bit=3,val=0,dur=5"  clear intensity bit 3 for 5 sweeps
//
// An empty spec parses to an empty (fault-free) schedule. The seed is
// left zero; callers set it before Compile.
func Parse(spec string) (*Schedule, error) {
	s := &Schedule{}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return s, nil
	}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		c, err := parseClause(part)
		if err != nil {
			return nil, err
		}
		s.Clauses = append(s.Clauses, c)
	}
	return s, nil
}

func parseClause(part string) (Clause, error) {
	c := Clause{Unit: -1, Dur: -1, Replica: -1, Bit: 3, Storm: 4, Accel: 0.5, Leak: 2}
	head, rest, hasArgs := strings.Cut(part, ":")
	kind, err := ParseKind(strings.TrimSpace(head))
	if err != nil {
		return c, err
	}
	c.Kind = kind
	if !hasArgs {
		return c, nil
	}
	for _, kv := range strings.Split(rest, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return c, fmt.Errorf("fault: clause %q: want key=value, got %q", part, kv)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "unit":
			c.Unit, err = parseInt(key, val, -1, 1<<20)
		case "sweep":
			c.Sweep, err = parseInt(key, val, 0, 1<<20)
		case "dur":
			c.Dur, err = parseInt(key, val, 0, 1<<20)
		case "replica":
			c.Replica, err = parseInt(key, val, -1, 63)
		case "bit":
			var b int
			b, err = parseInt(key, val, 0, 3)
			c.Bit = uint8(b)
		case "val":
			var v int
			v, err = parseInt(key, val, 0, 1)
			c.Val = uint8(v)
		case "rate":
			c.Rate, err = parseFloat(key, val)
		case "storm":
			c.Storm, err = parseFloat(key, val)
		case "accel":
			c.Accel, err = parseFloat(key, val)
		case "leak":
			c.Leak, err = parseFloat(key, val)
		default:
			return c, fmt.Errorf("fault: clause %q: unknown key %q", part, key)
		}
		if err != nil {
			return c, err
		}
	}
	return c, nil
}

func parseInt(key, val string, min, max int) (int, error) {
	v, err := strconv.Atoi(val)
	if err != nil || v < min || v > max {
		return 0, fmt.Errorf("fault: %s=%q outside [%d,%d]", key, val, min, max)
	}
	return v, nil
}

func parseFloat(key, val string) (float64, error) {
	v, err := strconv.ParseFloat(val, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("fault: %s=%q is not a non-negative number", key, val)
	}
	return v, nil
}

// String renders the schedule back into the DSL (canonical form:
// every non-default key spelled out, clauses in order).
func (s *Schedule) String() string {
	var b strings.Builder
	for i, c := range s.Clauses {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(c.Kind.String())
		var kvs []string
		if c.Rate > 0 {
			kvs = append(kvs, "rate="+formatFloat(c.Rate))
		} else {
			if c.Unit >= 0 {
				kvs = append(kvs, "unit="+strconv.Itoa(c.Unit))
			}
			if c.Sweep != 0 {
				kvs = append(kvs, "sweep="+strconv.Itoa(c.Sweep))
			}
		}
		if c.Dur >= 0 {
			kvs = append(kvs, "dur="+strconv.Itoa(c.Dur))
		}
		if c.Replica >= 0 {
			kvs = append(kvs, "replica="+strconv.Itoa(c.Replica))
		}
		switch c.Kind {
		case Stuck:
			kvs = append(kvs, "bit="+strconv.Itoa(int(c.Bit)), "val="+strconv.Itoa(int(c.Val)))
		case Hot:
			kvs = append(kvs, "storm="+formatFloat(c.Storm))
		case Wearout:
			kvs = append(kvs, "accel="+formatFloat(c.Accel))
		case Quiesce:
			kvs = append(kvs, "leak="+formatFloat(c.Leak))
		}
		if len(kvs) > 0 {
			b.WriteByte(':')
			b.WriteString(strings.Join(kvs, ","))
		}
	}
	return b.String()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Instance is one concrete injected fault, produced by Compile.
type Instance struct {
	// Seq is the injection sequence number (stable audit identity).
	Seq int `json:"seq"`
	// Kind is the fault type.
	Kind Kind `json:"-"`
	// KindName is Kind's DSL name (for the JSON log).
	KindName string `json:"kind"`
	// Unit is the fault domain index (image row for the gibbs chain,
	// RSU-G array element for the accelerator model).
	Unit int `json:"unit"`
	// Replica is the physical RET replica hit (-1: unit-wide).
	Replica int `json:"replica"`
	// Start is the first active sweep; Dur the active duration in
	// sweeps (0: permanent).
	Start int `json:"start"`
	Dur   int `json:"dur"`
	// Bit/Val/Storm/Accel/Leak carry the kind parameters.
	Bit   uint8   `json:"bit,omitempty"`
	Val   uint8   `json:"val,omitempty"`
	Storm float64 `json:"storm,omitempty"`
	Accel float64 `json:"accel,omitempty"`
	Leak  float64 `json:"leak,omitempty"`
}

// ActiveAt reports whether the instance is active during sweep.
func (i Instance) ActiveAt(sweep int) bool {
	if sweep < i.Start {
		return false
	}
	return i.Dur == 0 || sweep < i.Start+i.Dur
}

// End returns the first sweep after the active window (-1: permanent).
func (i Instance) End() int {
	if i.Dur == 0 {
		return -1
	}
	return i.Start + i.Dur
}

// Timeline is a compiled schedule: every fault instance that will be
// injected over the run, indexed by unit. Immutable after Compile, so
// concurrent per-unit readers are safe.
type Timeline struct {
	Units, Sweeps, Replicas int

	insts   []Instance
	perUnit [][]int // unit -> indices into insts, sorted by Start
}

// defaultDur is the compile-time Dur for clauses that left it unset:
// structural faults persist, noise bursts are transient.
func defaultDur(k Kind) int {
	switch k {
	case Hot, Quiesce, Wrap:
		return 3
	default:
		return 0
	}
}

// Compile expands the schedule over a concrete geometry: units fault
// domains, a run of sweeps sweeps, sitesPerUnit site-samples per unit
// per sweep (sets the exposure of rate clauses), and replicas primary
// physical RET circuits per unit (spares are assumed screened at test
// and fault-free). All Poisson randomness derives from Schedule.Seed
// via per-(clause,unit) streams, so the expansion is independent of
// any chain or worker state.
func (s *Schedule) Compile(units, sweeps, sitesPerUnit, replicas int) (*Timeline, error) {
	if units < 1 || sweeps < 1 || sitesPerUnit < 1 || replicas < 1 {
		return nil, fmt.Errorf("fault: invalid geometry units=%d sweeps=%d sites=%d replicas=%d",
			units, sweeps, sitesPerUnit, replicas)
	}
	t := &Timeline{Units: units, Sweeps: sweeps, Replicas: replicas}
	for ci, c := range s.Clauses {
		dur := c.Dur
		if dur < 0 {
			dur = defaultDur(c.Kind)
		}
		if c.Rate > 0 {
			perSweep := c.Rate * float64(sitesPerUnit)
			for u := 0; u < units; u++ {
				src := clauseStream(s.Seed, ci, u)
				for at := src.Exponential(perSweep); at < float64(sweeps); at += src.Exponential(perSweep) {
					rep := c.Replica
					if rep < 0 {
						rep = src.Intn(replicas)
					}
					t.add(c, u, int(at), dur, rep)
				}
			}
			continue
		}
		if c.Sweep >= sweeps {
			continue
		}
		rep := c.Replica
		if rep < 0 {
			rep = 0
		}
		if c.Unit >= 0 {
			if c.Unit < units {
				t.add(c, c.Unit, c.Sweep, dur, rep)
			}
			continue
		}
		for u := 0; u < units; u++ {
			t.add(c, u, c.Sweep, dur, rep)
		}
	}
	t.index()
	return t, nil
}

func (t *Timeline) add(c Clause, unit, start, dur, replica int) {
	if replica >= t.Replicas {
		replica = t.Replicas - 1
	}
	if c.Kind.UnitWide() {
		replica = -1
	}
	t.insts = append(t.insts, Instance{
		Kind: c.Kind, KindName: c.Kind.String(),
		Unit: unit, Replica: replica, Start: start, Dur: dur,
		Bit: c.Bit, Val: c.Val, Storm: c.Storm, Accel: c.Accel, Leak: c.Leak,
	})
}

// index sorts instances into canonical (Start, Unit, clause-order)
// order, assigns Seq, and builds the per-unit index.
func (t *Timeline) index() {
	sort.SliceStable(t.insts, func(a, b int) bool {
		ia, ib := t.insts[a], t.insts[b]
		if ia.Start != ib.Start {
			return ia.Start < ib.Start
		}
		return ia.Unit < ib.Unit
	})
	t.perUnit = make([][]int, t.Units)
	for i := range t.insts {
		t.insts[i].Seq = i
		u := t.insts[i].Unit
		t.perUnit[u] = append(t.perUnit[u], i)
	}
}

// Injected returns all compiled fault instances in Seq order.
func (t *Timeline) Injected() []Instance { return t.insts }

// Active appends the instances live on (unit, sweep) to out.
func (t *Timeline) Active(unit, sweep int, out []Instance) []Instance {
	if unit < 0 || unit >= t.Units {
		return out
	}
	for _, i := range t.perUnit[unit] {
		if inst := t.insts[i]; inst.ActiveAt(sweep) {
			out = append(out, inst)
		}
	}
	return out
}

// clauseStream derives the deterministic RNG stream for (seed, clause,
// unit) by SplitMix-style avalanche mixing — unrelated (clause, unit)
// pairs get decorrelated streams without any shared mutable state.
func clauseStream(seed uint64, clause, unit int) *rng.Source {
	h := seed ^ 0x6a09e667f3bcc909
	for _, v := range [...]uint64{uint64(clause) + 1, uint64(unit) + 1} {
		h ^= v * 0x9e3779b97f4a7c15
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return rng.New(h)
}
