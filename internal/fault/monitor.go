package fault

import (
	"fmt"

	"repro/internal/fixed"
)

// This file holds the online-detection side: per-replica monitor state
// fed one Obs per TTF measurement by rsu.(*Unit).SampleFaulty. The
// monitors are hardware-plausible — everything they read is visible at
// the RSU pipeline's selection stage (commanded vs. applied intensity
// code, the quantized TTF count, the saturation flag) plus the
// expected count the map table implies, which the controller can
// precompute per intensity code.

// Suspect classifies what a monitor believes is wrong. Each suspect
// class maps onto the fault kind it is designed to catch; the audit
// uses that mapping to reconcile injected against detected faults.
type Suspect int

// Monitor suspect classes.
const (
	// SuspectStall: the TTF register saturates on channels bright
	// enough that saturation is (statistically) impossible — a dead
	// SPAD or a fully bleached circuit.
	SuspectStall Suspect = iota
	// SuspectStorm: zero-count fires on channels dim enough that
	// near-instant arrival is implausible — a dark-count storm.
	SuspectStorm
	// SuspectSlow: the fire-rate EWMA drifted far above the expected
	// count — gradual rate decay (accelerated wear-out).
	SuspectSlow
	// SuspectFast: the EWMA drifted far below expectation — a spurious
	// extra rate in the race (quiescence-hazard leakage).
	SuspectFast
	// SuspectReadback: the applied intensity code differs from the
	// commanded one — a stuck-at bit in the intensity register.
	SuspectReadback
	// SuspectDarkFire: a channel with zero commanded rate produced a
	// non-saturated count. Primary signature of a TTF register wrap
	// (the free-running register latched at a junk phase), but any
	// spurious race clock — a dark-count storm or quiescence leakage —
	// also fires dark channels, so the audit accepts it for those too.
	SuspectDarkFire

	numSuspects
)

var suspectNames = [numSuspects]string{
	"stall", "storm", "ewma-slow", "ewma-fast", "readback", "dark-fire",
}

// String implements fmt.Stringer.
func (s Suspect) String() string {
	if s < 0 || s >= numSuspects {
		return fmt.Sprintf("Suspect(%d)", int(s))
	}
	return suspectNames[s]
}

// Catches returns the fault kind a suspect class is designed to
// detect.
func (s Suspect) Catches() Kind {
	switch s {
	case SuspectStall:
		return Dead
	case SuspectStorm:
		return Hot
	case SuspectSlow:
		return Wearout
	case SuspectFast:
		return Quiesce
	case SuspectReadback:
		return Stuck
	default:
		return Wrap
	}
}

// MonitorConfig sets the detection thresholds (DESIGN.md §9 table).
type MonitorConfig struct {
	// EWMAAlpha is the smoothing factor of the per-replica fire-count
	// ratio EWMA.
	EWMAAlpha float64
	// RatioHigh / RatioLow are the EWMA trip thresholds on
	// observed/expected count (high: firing too slowly; low: too
	// fast). Hysteresis clears a trip only when the EWMA returns
	// inside [RatioLow×1.5, RatioHigh/1.5].
	RatioHigh, RatioLow float64
	// MinSamples is the EWMA warm-up: no EWMA trip before this many
	// observations of a replica.
	MinSamples int
	// StallWindow is the consecutive-saturation run length on
	// bright channels that trips SuspectStall.
	StallWindow int
	// StormWindow is the consecutive-zero-count run length on dim
	// channels that trips SuspectStorm.
	StormWindow int
	// StallMaxExpTicks gates the stall watchdog: only channels whose
	// expected count is below this many ticks are considered "bright
	// enough" that saturation is suspicious.
	StallMaxExpTicks float64
	// StormMinExpTicks gates the storm watchdog: only channels whose
	// expected count is at least this many ticks are "dim enough"
	// that a zero count is suspicious.
	StormMinExpTicks float64
	// CodeReadback enables the commanded-vs-applied intensity check.
	CodeReadback bool
	// DarkFire enables the dark-channel-fired register-wrap check.
	DarkFire bool
}

// DefaultMonitorConfig returns the thresholds used by the bench
// harness and documented in DESIGN.md §9.
func DefaultMonitorConfig() MonitorConfig {
	return MonitorConfig{
		EWMAAlpha:        0.02,
		RatioHigh:        3.0,
		RatioLow:         1.0 / 3.0,
		MinSamples:       48,
		StallWindow:      12,
		StormWindow:      12,
		StallMaxExpTicks: 64,
		StormMinExpTicks: 8,
		CodeReadback:     true,
		DarkFire:         true,
	}
}

// Obs is one TTF measurement as seen by the selection stage, fed to
// UnitCtx.Observe by the sampling pipeline.
type Obs struct {
	// Replica is the physical RET replica that sampled.
	Replica int
	// Commanded is the intensity code the map table produced;
	// Applied is the code the LED driver actually latched (differs
	// under a stuck-at fault).
	Commanded, Applied fixed.Intensity
	// Dark reports that the commanded code has zero nominal rate, so
	// the channel must saturate.
	Dark bool
	// ExpCount is the expected quantized TTF count of the commanded
	// code (saturation-aware; see rsu.TTFTimer.ExpectedCount).
	ExpCount float64
	// Count is the quantized TTF register readout; Saturated reports
	// the register hit max count (no fire within the window).
	Count     uint32
	Saturated bool
}

// repMon is the monitor state of one physical RET replica.
type repMon struct {
	samples     int
	ewma        float64
	ewmaN       int
	stallRun    int
	zeroRun     int
	darkSatRun  int
	cleanReads  int
	readbackBad bool
	saturations uint64
	// removedAt is the sweep the remap policy retired this replica
	// (-1: in service).
	removedAt int
	tripped   [numSuspects]bool
}

func newRepMon() repMon {
	return repMon{removedAt: -1}
}

// inService reports whether the replica is still mapped into a
// logical lane slot.
func (m *repMon) inService() bool { return m.removedAt < 0 }
