package fault

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// driveSweeps pushes the session through sweeps [from, to) with a
// deterministic observation pattern that exercises trips, degradation
// reactions, and counter growth.
func driveSweeps(t *testing.T, sess *Session, from, to int) {
	t.Helper()
	cfg := DefaultMonitorConfig()
	for sweep := from; sweep < to; sweep++ {
		sess.BeginSweep(sweep)
		for u := 0; u < sess.tl.Units; u++ {
			uc := sess.Unit(u)
			if uc.Directive() == DirectiveSkip {
				continue
			}
			uc.BeginSample()
			rep := uc.NextReplica()
			// Units 0/1 see a stall burst on even sweeps, clean reads
			// otherwise; the rest stay healthy.
			if u < 2 && sweep%2 == 0 {
				for i := 0; i < cfg.StallWindow; i++ {
					uc.Observe(brightSat(rep))
				}
			} else {
				uc.Observe(healthy(rep))
			}
			uc.AfterSample(0)
		}
	}
}

// newStateSession builds the fixed session geometry the round-trip
// tests share (the fingerprint one layer up guarantees this identity
// in production).
func newStateSession(t *testing.T, policy Policy) *Session {
	t.Helper()
	return testSession(t, "hot:rate=2e-2;dead:unit=1,sweep=3", policy, 16)
}

// auditJSON renders the session audit to canonical bytes.
func auditJSON(t *testing.T, sess *Session) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sess.Audit().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSessionStateRoundTrip: a session restored mid-run from its
// serialized state and then driven to the end produces a byte-identical
// audit to one that ran uninterrupted — the fault-subsystem half of the
// resume-equivalence guarantee.
func TestSessionStateRoundTrip(t *testing.T) {
	for _, policy := range []Policy{PolicyNone, PolicyRemap, PolicyResample, PolicyQuarantine, PolicyFallback} {
		t.Run(policy.String(), func(t *testing.T) {
			golden := newStateSession(t, policy)
			driveSweeps(t, golden, 0, 12)

			// Interrupted twin: run to the sweep-6 boundary, serialize,
			// restore into a fresh session, finish.
			first := newStateSession(t, policy)
			driveSweeps(t, first, 0, 6)
			blob, err := first.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}

			resumed := newStateSession(t, policy)
			if err := resumed.UnmarshalBinary(blob); err != nil {
				t.Fatal(err)
			}
			// The restore is byte-stable: re-marshal reproduces the blob.
			blob2, err := resumed.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(blob, blob2) {
				t.Fatal("marshal/unmarshal/marshal is not byte-stable")
			}

			driveSweeps(t, resumed, 6, 12)
			if g, r := auditJSON(t, golden), auditJSON(t, resumed); !bytes.Equal(g, r) {
				t.Fatalf("resumed audit diverged from golden:\n--- golden ---\n%s\n--- resumed ---\n%s", g, r)
			}
		})
	}
}

// mutateState unmarshals the blob into a generic tree, applies the
// mutation, and re-marshals — corrupt-input construction for the
// rejection tests.
func mutateState(t *testing.T, blob []byte, mutate func(map[string]any)) []byte {
	t.Helper()
	var tree map[string]any
	if err := json.Unmarshal(blob, &tree); err != nil {
		t.Fatal(err)
	}
	mutate(tree)
	out, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func firstUnit(tree map[string]any) map[string]any {
	return tree["unit_state"].([]any)[0].(map[string]any)
}

// TestSessionStateRejectsCorrupt: every shape violation is rejected
// before any field is committed — a failed restore leaves the target
// session untouched.
func TestSessionStateRejectsCorrupt(t *testing.T) {
	src := newStateSession(t, PolicyRemap)
	driveSweeps(t, src, 0, 6)
	blob, err := src.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func(map[string]any)
		want   string
	}{
		{"version skew", func(m map[string]any) { m["version"] = 99.0 }, "version"},
		{"unit count", func(m map[string]any) { m["units"] = 3.0 }, "units"},
		{"replica count", func(m map[string]any) { m["replicas"] = 2.0 }, "replicas"},
		{"phys count", func(m map[string]any) { m["phys"] = 1.0 }, "physical"},
		{"slot out of range", func(m map[string]any) {
			firstUnit(m)["slot"].([]any)[0] = 99.0
		}, "slot"},
		{"monitor count", func(m map[string]any) {
			u := firstUnit(m)
			u["mons"] = u["mons"].([]any)[:2]
		}, "monitors"},
		{"trip flag count", func(m map[string]any) {
			mon := firstUnit(m)["mons"].([]any)[0].(map[string]any)
			mon["tripped"] = []any{true}
		}, "trip flags"},
		{"suspect id", func(m map[string]any) {
			u := firstUnit(m)
			u["events"] = []any{map[string]any{"sweep": 1.0, "replica": 0.0, "suspect_id": 99.0}}
		}, "suspect id"},
		{"spares overflow", func(m map[string]any) {
			firstUnit(m)["spares_used"] = 99.0
		}, "spares"},
	}
	for _, tc := range cases {
		bad := mutateState(t, blob, tc.mutate)
		target := newStateSession(t, PolicyRemap)
		err := target.UnmarshalBinary(bad)
		if err == nil {
			t.Errorf("%s: corrupt state accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
		// The failed restore must not have perturbed the target: it
		// still round-trips as a fresh session.
		fresh := newStateSession(t, PolicyRemap)
		want, err := fresh.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		got, err := target.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("%s: failed restore mutated the session", tc.name)
		}
	}

	if err := newStateSession(t, PolicyRemap).UnmarshalBinary([]byte("{garbage")); err == nil {
		t.Error("malformed JSON accepted")
	}
}

// TestSessionStateGeometryMismatch: a blob from one geometry cannot be
// restored into a session with another.
func TestSessionStateGeometryMismatch(t *testing.T) {
	src := newStateSession(t, PolicyNone)
	blob, err := src.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	s, err := Parse("hot:rate=2e-2")
	if err != nil {
		t.Fatal(err)
	}
	tl, err := s.Compile(2, 16, 32, 4) // 2 units instead of 4
	if err != nil {
		t.Fatal(err)
	}
	other := NewSession(tl, Options{Policy: PolicyNone})
	if err := other.UnmarshalBinary(blob); err == nil {
		t.Fatal("cross-geometry restore accepted")
	}
}
