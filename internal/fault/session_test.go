package fault

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fixed"
)

// testSession compiles a schedule over a small geometry and opens a
// session on it.
func testSession(t *testing.T, spec string, policy Policy, sweeps int) *Session {
	t.Helper()
	s, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := s.Compile(4, sweeps, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	return NewSession(tl, Options{Policy: policy})
}

// brightSat is a saturated observation on a bright channel (stall
// signature); dimZero an instant fire on a dim channel (storm
// signature).
func brightSat(rep int) Obs {
	return Obs{Replica: rep, Commanded: fixed.NewIntensity(15), Applied: fixed.NewIntensity(15),
		ExpCount: 10, Count: 255, Saturated: true}
}

func dimZero(rep int) Obs {
	return Obs{Replica: rep, Commanded: fixed.NewIntensity(2), Applied: fixed.NewIntensity(2),
		ExpCount: 50, Count: 0}
}

func healthy(rep int) Obs {
	return Obs{Replica: rep, Commanded: fixed.NewIntensity(8), Applied: fixed.NewIntensity(8),
		ExpCount: 20, Count: 18}
}

// lastEvent returns the most recent event of a unit, or nil.
func lastEvent(uc *UnitCtx) *Event {
	if len(uc.events) == 0 {
		return nil
	}
	return &uc.events[len(uc.events)-1]
}

// TestStallWatchdog: StallWindow consecutive saturations on a bright
// channel trip SuspectStall; a single fire resets the run.
func TestStallWatchdog(t *testing.T) {
	sess := testSession(t, "", PolicyNone, 10)
	uc := sess.Unit(0)
	cfg := DefaultMonitorConfig()

	uc.BeginSample()
	for i := 0; i < cfg.StallWindow-1; i++ {
		uc.Observe(brightSat(0))
	}
	if len(uc.events) != 0 {
		t.Fatalf("tripped before the window: %+v", uc.events)
	}
	uc.Observe(healthy(0)) // reset
	for i := 0; i < cfg.StallWindow-1; i++ {
		uc.Observe(brightSat(0))
	}
	if len(uc.events) != 0 {
		t.Fatal("reset did not clear the run")
	}
	uc.Observe(brightSat(0))
	e := lastEvent(uc)
	if e == nil || e.suspect != SuspectStall || e.Replica != 0 {
		t.Fatalf("want stall trip on replica 0, got %+v", e)
	}
	if uc.AfterSample(0) != ReactAccept {
		t.Error("PolicyNone must accept")
	}
}

// TestStormWatchdog: StormWindow instant fires on dim channels trip
// SuspectStorm long before the EWMA would drift.
func TestStormWatchdog(t *testing.T) {
	sess := testSession(t, "", PolicyNone, 10)
	uc := sess.Unit(0)
	cfg := DefaultMonitorConfig()

	uc.BeginSample()
	for i := 0; i < cfg.StormWindow; i++ {
		if len(uc.events) != 0 {
			t.Fatalf("tripped after %d zeros", i)
		}
		uc.Observe(dimZero(1))
	}
	e := lastEvent(uc)
	if e == nil || e.suspect != SuspectStorm || e.Replica != 1 {
		t.Fatalf("want storm trip on replica 1, got %+v", e)
	}
}

// TestReadbackSticky: a commanded/applied mismatch trips immediately
// and interleaved clean readbacks must NOT clear the trip — only a long
// uninterrupted clean run does (stuck bits corrupt only codes that
// exercise them).
func TestReadbackSticky(t *testing.T) {
	sess := testSession(t, "", PolicyNone, 10)
	uc := sess.Unit(0)
	cfg := DefaultMonitorConfig()

	bad := healthy(0)
	bad.Applied = fixed.NewIntensity(int(bad.Commanded) ^ 8) // bit 3 flipped
	uc.BeginSample()
	uc.Observe(bad)
	if e := lastEvent(uc); e == nil || e.suspect != SuspectReadback {
		t.Fatalf("mismatch did not trip: %+v", e)
	}
	n := len(uc.events)

	// Alternate clean and bad: no new events (trip stays up), no clear.
	for i := 0; i < 3*cfg.StallWindow; i++ {
		if i%2 == 0 {
			uc.Observe(healthy(0))
		} else {
			uc.Observe(bad)
		}
	}
	if len(uc.events) != n {
		t.Errorf("re-tripped while up: %d new events", len(uc.events)-n)
	}
	if len(uc.clears) != 0 {
		t.Error("interleaved clean reads cleared the trip")
	}

	// A long clean run clears; the next mismatch is a new rising edge.
	for i := 0; i < 2*cfg.StallWindow; i++ {
		uc.Observe(healthy(0))
	}
	if len(uc.clears) != 1 {
		t.Fatalf("clean run did not clear: %+v", uc.clears)
	}
	uc.Observe(bad)
	if len(uc.events) != n+1 {
		t.Error("no rising edge after clear")
	}
}

// TestDarkFireSticky: a dark channel firing trips per-replica; only a
// run of properly saturating dark reads clears.
func TestDarkFireSticky(t *testing.T) {
	sess := testSession(t, "", PolicyNone, 10)
	uc := sess.Unit(0)
	cfg := DefaultMonitorConfig()

	darkOK := Obs{Replica: 2, Dark: true, ExpCount: 255, Count: 255, Saturated: true}
	darkFire := Obs{Replica: 2, Dark: true, ExpCount: 255, Count: 17}

	uc.BeginSample()
	uc.Observe(darkFire)
	e := lastEvent(uc)
	if e == nil || e.suspect != SuspectDarkFire || e.Replica != 2 {
		t.Fatalf("dark fire did not trip per-replica: %+v", e)
	}
	for i := 0; i < cfg.StormWindow-1; i++ {
		uc.Observe(darkOK)
	}
	if len(uc.clears) != 0 {
		t.Error("cleared before the window")
	}
	uc.Observe(darkOK)
	if len(uc.clears) != 1 {
		t.Error("saturating run did not clear")
	}
}

// TestEWMATrips: sustained slow firing trips SuspectSlow per-replica;
// when every replica is depressed at once the unit-wide SuspectFast
// fires instead of blaming one circuit.
func TestEWMATrips(t *testing.T) {
	cfg := DefaultMonitorConfig()

	t.Run("slow", func(t *testing.T) {
		sess := testSession(t, "", PolicyNone, 10)
		uc := sess.Unit(0)
		slow := healthy(0)
		slow.Count = 200 // 10x expected
		uc.BeginSample()
		for i := 0; i < cfg.MinSamples+1; i++ {
			uc.Observe(slow)
		}
		e := lastEvent(uc)
		if e == nil || e.suspect != SuspectSlow || e.Replica != 0 {
			t.Fatalf("want ewma-slow, got %+v", e)
		}
	})

	t.Run("corroborated fast", func(t *testing.T) {
		sess := testSession(t, "", PolicyNone, 10)
		uc := sess.Unit(0)
		uc.BeginSample()
		// The EWMA (alpha 0.02, warm-started at 1) needs ~70 samples
		// of a depressed ratio to drift below RatioLow; drive every
		// replica round-robin so they warm up and drift together.
		for i := 0; i < cfg.MinSamples*2*4; i++ {
			fast := healthy(i % 4)
			fast.Count = 1 // far below the expected 20 ticks, no zero-run
			uc.Observe(fast)
		}
		var sawFast bool
		for _, e := range uc.events {
			if e.suspect == SuspectFast {
				sawFast = true
				if e.Replica != -1 {
					t.Errorf("fast trip not unit-wide: %+v", e)
				}
			}
		}
		if !sawFast {
			t.Fatalf("no unit-wide fast trip: %+v", uc.events)
		}
	})
}

// tripOnce drives one sample that trips the stall watchdog on rep.
func tripOnce(t *testing.T, uc *UnitCtx, rep int) Reaction {
	t.Helper()
	cfg := DefaultMonitorConfig()
	uc.BeginSample()
	for i := 0; i < cfg.StallWindow; i++ {
		uc.Observe(brightSat(rep))
	}
	return uc.AfterSample(0)
}

func TestPolicyResampleBounded(t *testing.T) {
	sess := testSession(t, "", PolicyResample, 10)
	uc := sess.Unit(0)
	cfg := DefaultMonitorConfig()
	uc.BeginSample()
	for i := 0; i < cfg.StallWindow; i++ {
		uc.Observe(brightSat(0))
	}
	for tries := 0; tries < 3; tries++ {
		if r := uc.AfterSample(tries); r != ReactResample {
			t.Fatalf("try %d: %v, want resample", tries, r)
		}
	}
	if r := uc.AfterSample(3); r != ReactReject {
		t.Errorf("exhausted tries: %v, want reject", r)
	}
	if uc.resamples != 3 || uc.rejects != 1 {
		t.Errorf("counters: resamples=%d rejects=%d", uc.resamples, uc.rejects)
	}
}

// TestPolicyRemapRotatesSpares: the first trip retires the replica and
// rewires its lane slots to a spare; exhausting the spares escalates to
// fallback.
func TestPolicyRemapRotatesSpares(t *testing.T) {
	sess := testSession(t, "", PolicyRemap, 10)
	uc := sess.Unit(0)

	if r := tripOnce(t, uc, 0); r != ReactReject {
		t.Fatalf("remap reaction %v", r)
	}
	if uc.sparesUsed != 1 || uc.mons[0].inService() {
		t.Fatalf("replica 0 not retired: spares=%d", uc.sparesUsed)
	}
	for i := 0; i < 8; i++ {
		if rep := uc.NextReplica(); rep == 0 {
			t.Fatal("slot still serves the retired replica")
		}
	}
	if uc.Directive() != DirectiveSample {
		t.Fatal("remap escalated with spares left")
	}

	if tripOnce(t, uc, 1); uc.sparesUsed != 2 {
		t.Fatalf("second trip: spares=%d", uc.sparesUsed)
	}
	// Third suspect replica: no spare left -> fallback escalation.
	tripOnce(t, uc, 2)
	if uc.Directive() != DirectiveFallback {
		t.Error("spare exhaustion did not escalate to fallback")
	}
}

// TestPolicyRemapEscalatesUnitWide: a unit-wide suspect cannot be
// remapped around — straight to fallback even with spares left.
func TestPolicyRemapEscalatesUnitWide(t *testing.T) {
	sess := testSession(t, "", PolicyRemap, 10)
	uc := sess.Unit(0)
	cfg := DefaultMonitorConfig()
	uc.BeginSample()
	for i := 0; i < cfg.MinSamples*2*4; i++ {
		fast := healthy(i % 4)
		fast.Count = 1
		uc.Observe(fast)
	}
	uc.AfterSample(0)
	if uc.Directive() != DirectiveFallback {
		t.Error("unit-wide fast suspect did not escalate remap to fallback")
	}
}

func TestPolicyQuarantineFreezes(t *testing.T) {
	sess := testSession(t, "", PolicyQuarantine, 10)
	uc := sess.Unit(0)
	if r := tripOnce(t, uc, 0); r != ReactReject {
		t.Fatalf("reaction %v", r)
	}
	if uc.Directive() != DirectiveSkip {
		t.Error("quarantine did not freeze the unit")
	}
}

func TestPolicyFallbackReroutes(t *testing.T) {
	sess := testSession(t, "", PolicyFallback, 10)
	uc := sess.Unit(0)
	if r := tripOnce(t, uc, 0); r != ReactReject {
		t.Fatalf("reaction %v", r)
	}
	if uc.Directive() != DirectiveFallback {
		t.Error("fallback did not reroute the unit")
	}
}

// TestAuditBuckets: synthetic runs land instances in the right audit
// buckets.
func TestAuditBuckets(t *testing.T) {
	t.Run("detected", func(t *testing.T) {
		sess := testSession(t, "dead:unit=0,sweep=2", PolicyNone, 10)
		sess.BeginSweep(2)
		uc := sess.Unit(0)
		tripOnce(t, uc, 0)
		sum := sess.Audit().Summary
		if sum.Detected != 1 || sum.Unaccounted != 0 || sum.FalseAlarms != 0 {
			t.Errorf("summary %+v", sum)
		}
	})

	t.Run("unaccounted", func(t *testing.T) {
		sess := testSession(t, "dead:unit=0,sweep=2", PolicyNone, 10)
		sum := sess.Audit().Summary // no observations at all
		if sum.Unaccounted != 1 || sum.Detected != 0 {
			t.Errorf("summary %+v", sum)
		}
	})

	t.Run("late", func(t *testing.T) {
		// Dead has a 2-sweep latency budget; arming at the last sweep
		// of a 10-sweep run cannot be detected in time.
		sess := testSession(t, "dead:unit=0,sweep=9", PolicyNone, 10)
		sum := sess.Audit().Summary
		if sum.Late != 1 || sum.Unaccounted != 0 {
			t.Errorf("summary %+v", sum)
		}
	})

	t.Run("false alarm", func(t *testing.T) {
		sess := testSession(t, "", PolicyNone, 10)
		tripOnce(t, sess.Unit(3), 0) // trip with nothing injected
		sum := sess.Audit().Summary
		if sum.FalseAlarms != 1 || sum.Events != 1 || sum.Injected != 0 {
			t.Errorf("summary %+v", sum)
		}
	})

	t.Run("masked by prior degradation", func(t *testing.T) {
		// Quarantine the unit at sweep 0, then a fault arrives at
		// sweep 5 on the frozen unit: masked, not unaccounted.
		sess := testSession(t, "dead:unit=0,sweep=5", PolicyQuarantine, 10)
		tripOnce(t, sess.Unit(0), 0) // false-positive trip freezes unit 0 at sweep 0
		sess.BeginSweep(5)
		sum := sess.Audit().Summary
		if sum.Masked != 1 || sum.Unaccounted != 0 {
			t.Errorf("summary %+v", sum)
		}
	})
}

// TestAuditJSONStable: WriteJSON output is byte-identical across calls
// (the CI smoke diffs it against a golden).
func TestAuditJSONStable(t *testing.T) {
	sess := testSession(t, "dead:unit=0,sweep=2", PolicyNone, 10)
	sess.BeginSweep(2)
	tripOnce(t, sess.Unit(0), 0)
	var a, b bytes.Buffer
	if err := sess.Audit().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := sess.Audit().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("audit JSON not stable across calls")
	}
}

// TestFaultCodeLintIgnoreFree: the fault subsystem must pass rsulint
// without suppressing any determinism, bit-width or hot-path analyzer —
// those invariants apply to the fault path exactly as to the healthy
// path. The one sanctioned exception is rsulint/ckptfield: Event
// carries fields that are derived on restore rather than serialized
// (Seq, Unit, Suspect), and each such acknowledgment must name the
// analyzer explicitly and state its reason.
func TestFaultCodeLintIgnoreFree(t *testing.T) {
	files, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	// The needles are assembled at run time so this test's own source
	// does not match them.
	ignoreNeedle := "lint:" + "ignore"
	needles := []string{ignoreNeedle, "no" + "lint"}
	allowed := ignoreNeedle + " rsulint/ckptfield "
	for _, f := range files {
		if strings.HasSuffix(f, "_test.go") {
			continue
		}
		checked++
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(string(src), "\n") {
			for _, needle := range needles {
				if !strings.Contains(line, needle) {
					continue
				}
				if idx := strings.Index(line, allowed); idx >= 0 && len(strings.TrimSpace(line[idx+len(allowed):])) > 0 {
					continue // reasoned ckptfield acknowledgment
				}
				t.Errorf("%s contains a lint suppression outside the sanctioned ckptfield form: %s", f, strings.TrimSpace(line))
			}
		}
	}
	if checked == 0 {
		t.Fatal("no sources found")
	}
}
